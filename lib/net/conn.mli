(** One buffered, non-blocking connection: byte buffers on both sides of a
    socket, with incremental frame extraction on the read side.

    The read path accumulates whatever [read] returns and hands out complete
    frames via {!next_frame} ({!Sh_persist.Frame.scan_frame} under the hood),
    so a frame split across any number of TCP segments — or trickled in a
    byte at a time by a slow-loris client — is reassembled without blocking
    the serve loop.  The write path queues whole encoded frames and drains
    them as the socket accepts bytes; {!flush} never blocks. *)

type t

val create : Unix.file_descr -> t
(** Takes ownership of [fd] and switches it to non-blocking mode. *)

val fd : t -> Unix.file_descr

val read_into : t -> [ `Data of int | `Eof | `Again ]
(** Pull once from the socket into the input buffer. [`Again] means the
    socket had nothing right now ([EAGAIN]/[EINTR]); [`Eof] covers both an
    orderly shutdown and a connection reset. *)

val buffered : t -> int
(** Bytes sitting in the input buffer not yet consumed. *)

val peek : t -> int -> string option
(** [peek t n] is the first [n] buffered bytes, without consuming them;
    [None] if fewer than [n] are buffered. *)

val consume : t -> int -> unit
(** Drop the first [n] buffered bytes (e.g. a validated preamble). *)

val next_frame : ?max_len:int -> t -> Sh_persist.Codec.reader option
(** Extract the next complete frame, consuming its bytes. [None] when the
    buffer holds only a partial frame.  Raises {!Sh_persist.Codec.Corrupt}
    on a CRC mismatch, malformed length or a payload longer than
    [max_len]. *)

val send : t -> string -> unit
(** Queue an encoded frame (or preamble) for writing. *)

val pending_out : t -> bool

val flush : t -> [ `Flushed | `Blocked | `Closed ]
(** Write queued bytes until done or the socket blocks. [`Closed] when the
    peer is gone ([EPIPE]/[ECONNRESET]). *)

val bytes_in : t -> int
val bytes_out : t -> int

val touch : t -> unit
(** Record activity now (see {!idle_for}). *)

val idle_for : t -> float
(** Seconds since the last {!touch} / successful read or write. *)

val close : t -> unit
(** Close the socket; idempotent. *)

val closed : t -> bool
