(** The binary wire protocol: message types and their frame codec.

    A connection opens with a fixed 5-byte preamble in each direction
    ({!preamble}: magic ["SHNW"] + one version byte), then carries a
    sequence of {!Sh_persist.Frame} frames — the same length-prefixed,
    CRC-32-guarded layout as the snapshot files, so the persistence
    layer's incremental scanner ({!Sh_persist.Frame.scan_frame}) is the
    socket decoder.  Each frame wraps exactly one message: a one-byte tag
    followed by {!Sh_persist.Codec} primitives.  See DESIGN.md section 15
    for the grammar and the version-bump policy (shared with the snapshot
    codec: any layout change bumps {!protocol_version}, peers reject
    foreign versions with a typed error).  Version 2 adds scoped queries
    ({!Stream_histogram.Query_op.scope}), snapshot interchange, and
    partial answers — the aggregation-plane vocabulary.

    Every decoding failure raises {!Sh_persist.Codec.Corrupt} (or
    [Version_mismatch] for a foreign preamble) — the typed errors the
    server answers with an error frame and a closed connection, never a
    crash. *)

module Q := Stream_histogram.Query_op

val magic : string
(** ["SHNW"] — stream-histogram network wire. *)

val protocol_version : int

val preamble : string
(** The 5 bytes each side must send first. *)

val preamble_len : int

val check_preamble : string -> unit
(** Validate a received preamble.  Raises {!Sh_persist.Codec.Corrupt} on a
    bad magic or length, {!Sh_persist.Codec.Version_mismatch} on a foreign
    version byte. *)

val max_frame_payload : int
(** Upper bound (16 MiB) every peer imposes on a declared frame payload
    length; a larger length prefix is rejected as {!Sh_persist.Codec.Corrupt}
    before any buffering happens. *)

(** {2 Messages} *)

type request =
  | Ingest of (int * float array) array
      (** Batched arrivals as [(key, values)] runs — decoded straight into
          {!Sh_par.Shard_engine.ingest_groups} without per-point pairs.
          Values must be finite (enforced at decode time). *)
  | Query of (Q.scope * Q.t) array
      (** Batched scoped estimation queries, answered positionally with
          one float each ({!Stream_histogram.Query_op}'s clamping
          contract; a [Global] scope folds over every key behind the
          answering peer). *)
  | Stats  (** Engine geometry + cumulative counters. *)
  | Metrics  (** Prometheus text exposition of the metric registry. *)
  | Checkpoint  (** Write the server's configured checkpoint file now. *)
  | Snapshot
      (** Ask for the engine's checkpoint byte stream in one reply frame —
          the aggregation plane's interchange format
          ({!Sh_par.Shard_engine.snapshot_bytes}). *)
  | Ping
  | Shutdown  (** Ask the server to flush, close and exit its serve loop. *)

type stats = {
  shards : int;
  window : int;
  buckets : int;
  total_points : int;
  batches : int;
  queries : int;
  backpressure_waits : int;
  lock_ops : int;
  query_lock_ops : int;
  snapshots_published : int;
}

type response =
  | Ack of int  (** Ingest applied; the count of points now in the engine. *)
  | Answers of float array
  | Answers_partial of { answers : float array; leaves_missing : int }
      (** An aggregator's degraded reply: positional answers computed from
          the leaves that responded, plus how many leaves were
          unreachable.  Never sent with [leaves_missing = 0]. *)
  | Stats_reply of stats
  | Metrics_reply of string
  | Checkpointed of string  (** The path the checkpoint was published to. *)
  | Snapshot_reply of string
      (** The engine's checkpoint bytes ({!Sh_par.Shard_engine.snapshot_bytes}),
          decodable with {!Sh_par.Shard_engine.decode_snapshot}. *)
  | Pong
  | Shutting_down
  | Error_reply of string
      (** Semantic rejection (bad key, no checkpoint configured, snapshot
          too large for a frame) or the last frame before the server
          closes a misbehaving connection. *)

val points_in_groups : (int * float array) array -> int

(** {2 Codec}

    [encode_*] return one complete wire frame (ready to write to the
    socket); [decode_*] consume a frame payload reader as returned by
    {!Sh_persist.Frame.scan_frame} and verify it is exactly one message. *)

val encode_request : request -> string
val decode_request : Sh_persist.Codec.reader -> request
val encode_response : response -> string
val decode_response : Sh_persist.Codec.reader -> response
