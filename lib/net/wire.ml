module Codec = Sh_persist.Codec
module Frame = Sh_persist.Frame
module Q = Stream_histogram.Query_op

let magic = "SHNW"
let protocol_version = 2
let preamble_len = 5

let preamble =
  let b = Buffer.create preamble_len in
  Buffer.add_string b magic;
  Codec.put_u8 b protocol_version;
  Buffer.contents b

let check_preamble s =
  if String.length s <> preamble_len then
    Codec.corruptf "preamble: %d byte(s), expected %d" (String.length s)
      preamble_len;
  if not (String.equal (String.sub s 0 4) magic) then
    Codec.corruptf "bad protocol magic %S: not a shist peer" (String.sub s 0 4);
  let v = Char.code s.[4] in
  if v <> protocol_version then
    raise (Codec.Version_mismatch { found = v; expected = protocol_version })

let max_frame_payload = 1 lsl 24

(* --- messages ------------------------------------------------------- *)

type request =
  | Ingest of (int * float array) array
  | Query of (Q.scope * Q.t) array
  | Stats
  | Metrics
  | Checkpoint
  | Snapshot
  | Ping
  | Shutdown

type stats = {
  shards : int;
  window : int;
  buckets : int;
  total_points : int;
  batches : int;
  queries : int;
  backpressure_waits : int;
  lock_ops : int;
  query_lock_ops : int;
  snapshots_published : int;
}

type response =
  | Ack of int
  | Answers of float array
  | Answers_partial of { answers : float array; leaves_missing : int }
  | Stats_reply of stats
  | Metrics_reply of string
  | Checkpointed of string
  | Snapshot_reply of string
  | Pong
  | Shutting_down
  | Error_reply of string

let points_in_groups groups =
  Array.fold_left (fun n (_, vs) -> n + Array.length vs) 0 groups

(* --- request/response tags (one byte, request < 0x80 <= response) --- *)

let tag_ingest = 0x01
let tag_query = 0x02
let tag_stats = 0x03
let tag_metrics = 0x04
let tag_checkpoint = 0x05
let tag_ping = 0x06
let tag_shutdown = 0x07
let tag_snapshot = 0x08
let tag_ack = 0x81
let tag_answers = 0x82
let tag_stats_reply = 0x83
let tag_metrics_reply = 0x84
let tag_checkpointed = 0x85
let tag_pong = 0x86
let tag_shutting_down = 0x87
let tag_snapshot_reply = 0x88
let tag_answers_partial = 0x89
let tag_error = 0xFF

(* Query sub-tags live with the variant itself: {!Stream_histogram.Query_op}
   owns [put]/[get]/[put_scope]/[get_scope], so the wire encoding cannot
   drift from the engine's vocabulary. *)

(* --- encode --------------------------------------------------------- *)

let frame_of buf = Frame.frame_string (Buffer.contents buf)

let encode_request req =
  let buf = Buffer.create 64 in
  (match req with
  | Ingest groups ->
    Codec.put_u8 buf tag_ingest;
    Codec.put_varint buf (Array.length groups);
    Array.iter
      (fun (k, vs) ->
        if k < 0 then invalid_arg "Wire.encode_request: negative key";
        Codec.put_varint buf k;
        Codec.put_float_array buf vs)
      groups
  | Query qs ->
    Codec.put_u8 buf tag_query;
    Codec.put_varint buf (Array.length qs);
    Array.iter
      (fun (scope, q) ->
        Q.put_scope buf scope;
        Q.put buf q)
      qs
  | Stats -> Codec.put_u8 buf tag_stats
  | Metrics -> Codec.put_u8 buf tag_metrics
  | Checkpoint -> Codec.put_u8 buf tag_checkpoint
  | Snapshot -> Codec.put_u8 buf tag_snapshot
  | Ping -> Codec.put_u8 buf tag_ping
  | Shutdown -> Codec.put_u8 buf tag_shutdown);
  frame_of buf

let encode_response resp =
  let buf = Buffer.create 64 in
  (match resp with
  | Ack n ->
    Codec.put_u8 buf tag_ack;
    Codec.put_varint buf n
  | Answers a ->
    Codec.put_u8 buf tag_answers;
    Codec.put_float_array buf a
  | Answers_partial { answers; leaves_missing } ->
    Codec.put_u8 buf tag_answers_partial;
    Codec.put_float_array buf answers;
    Codec.put_varint buf leaves_missing
  | Stats_reply s ->
    Codec.put_u8 buf tag_stats_reply;
    Codec.put_varint buf s.shards;
    Codec.put_varint buf s.window;
    Codec.put_varint buf s.buckets;
    Codec.put_varint buf s.total_points;
    Codec.put_varint buf s.batches;
    Codec.put_varint buf s.queries;
    Codec.put_varint buf s.backpressure_waits;
    Codec.put_varint buf s.lock_ops;
    Codec.put_varint buf s.query_lock_ops;
    Codec.put_varint buf s.snapshots_published
  | Metrics_reply text ->
    Codec.put_u8 buf tag_metrics_reply;
    Codec.put_string buf text
  | Checkpointed path ->
    Codec.put_u8 buf tag_checkpointed;
    Codec.put_string buf path
  | Snapshot_reply bytes ->
    Codec.put_u8 buf tag_snapshot_reply;
    Codec.put_string buf bytes
  | Pong -> Codec.put_u8 buf tag_pong
  | Shutting_down -> Codec.put_u8 buf tag_shutting_down
  | Error_reply msg ->
    Codec.put_u8 buf tag_error;
    Codec.put_string buf msg);
  frame_of buf

(* --- decode --------------------------------------------------------- *)

let get_groups r =
  let n = Codec.get_varint r in
  (* each group needs at least a key byte and a length byte *)
  if n > Codec.remaining r / 2 then
    Codec.corruptf "ingest group count %d exceeds %d remaining byte(s)" n
      (Codec.remaining r);
  Array.init n (fun _ ->
      let k = Codec.get_varint r in
      let vs = Codec.get_float_array r in
      for i = 0 to Array.length vs - 1 do
        if not (Float.is_finite vs.(i)) then
          Codec.corruptf "non-finite value in ingest frame (key %d)" k
      done;
      (k, vs))

let decode_request r =
  let t = Codec.get_u8 r in
  let req =
    if t = tag_ingest then Ingest (get_groups r)
    else if t = tag_query then begin
      let n = Codec.get_varint r in
      if n > Codec.remaining r / 2 then
        Codec.corruptf "query count %d exceeds %d remaining byte(s)" n
          (Codec.remaining r);
      Query
        (Array.init n (fun _ ->
             let scope = Q.get_scope r in
             (scope, Q.get r)))
    end
    else if t = tag_stats then Stats
    else if t = tag_metrics then Metrics
    else if t = tag_checkpoint then Checkpoint
    else if t = tag_snapshot then Snapshot
    else if t = tag_ping then Ping
    else if t = tag_shutdown then Shutdown
    else Codec.corruptf "bad request tag %d" t
  in
  Codec.expect_end r ~what:"request";
  req

let decode_response r =
  let t = Codec.get_u8 r in
  let resp =
    if t = tag_ack then Ack (Codec.get_varint r)
    else if t = tag_answers then Answers (Codec.get_float_array r)
    else if t = tag_answers_partial then begin
      let answers = Codec.get_float_array r in
      let leaves_missing = Codec.get_varint r in
      Answers_partial { answers; leaves_missing }
    end
    else if t = tag_stats_reply then begin
      let shards = Codec.get_varint r in
      let window = Codec.get_varint r in
      let buckets = Codec.get_varint r in
      let total_points = Codec.get_varint r in
      let batches = Codec.get_varint r in
      let queries = Codec.get_varint r in
      let backpressure_waits = Codec.get_varint r in
      let lock_ops = Codec.get_varint r in
      let query_lock_ops = Codec.get_varint r in
      let snapshots_published = Codec.get_varint r in
      Stats_reply
        {
          shards;
          window;
          buckets;
          total_points;
          batches;
          queries;
          backpressure_waits;
          lock_ops;
          query_lock_ops;
          snapshots_published;
        }
    end
    else if t = tag_metrics_reply then Metrics_reply (Codec.get_string r)
    else if t = tag_checkpointed then Checkpointed (Codec.get_string r)
    else if t = tag_snapshot_reply then Snapshot_reply (Codec.get_string r)
    else if t = tag_pong then Pong
    else if t = tag_shutting_down then Shutting_down
    else if t = tag_error then Error_reply (Codec.get_string r)
    else Codec.corruptf "bad response tag %d" t
  in
  Codec.expect_end r ~what:"response";
  resp
