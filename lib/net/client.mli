(** Blocking client for the wire protocol, with optional connect retries —
    the substrate of [shist loadgen], the network tests and the micro-net
    bench.

    A client owns one connection.  {!send} and {!recv} are split so a
    caller can pipeline: queue several requests onto the socket, then
    collect the responses in order (the server's per-connection ordering
    guarantee makes this sound).  {!call} is the one-shot convenience.

    Every transport-level failure — refused/absent peer after the retry
    budget, timeout, mid-frame EOF, reset — raises {!Net_error} with a
    human-readable reason.  Protocol-level garbage from the peer raises
    the usual {!Sh_persist.Codec.Corrupt} / [Version_mismatch]. *)

exception Net_error of string

type t

val connect :
  ?timeout:float ->
  ?retries:int ->
  ?retry_delay:float ->
  Addr.t ->
  t
(** Connect, send our preamble and validate the server's.  [timeout]
    (default 30 s) bounds every subsequent socket wait, not just the
    connect.  [retries] (default 0) extra attempts are made on refused /
    missing / reset peers, [retry_delay] (default 0.2 s) apart — the
    reconnect story for a server that is restarting from a checkpoint. *)

val send : t -> Wire.request -> unit
(** Write one request frame (blocks until the kernel has all of it). *)

val recv : t -> Wire.response
(** Read the next response frame, blocking up to the connect [timeout]. *)

val call : t -> Wire.request -> Wire.response
(** [send] then [recv]. *)

(** {2 Typed conveniences}

    Each performs one {!call} and unwraps the expected arm; an
    [Error_reply] raises {!Net_error}, any other mismatched response is
    protocol corruption. *)

val ingest : t -> (int * float array) array -> int
(** Returns the acked point count. *)

val query :
  t ->
  (Stream_histogram.Query_op.scope * Stream_histogram.Query_op.t) array ->
  float array
(** Strict form: an {!Wire.response.Answers_partial} degraded reply is
    protocol corruption here — use {!query_partial} when talking to an
    aggregator that may be missing leaves. *)

val query_partial :
  t ->
  (Stream_histogram.Query_op.scope * Stream_histogram.Query_op.t) array ->
  float array * int
(** Like {!query} but accepting degraded replies: returns the positional
    answers and the number of leaves the answering peer could not reach
    ([0] for a complete {!Wire.response.Answers}). *)

val snapshot : t -> string
(** The peer engine's checkpoint byte stream
    ({!Sh_par.Shard_engine.snapshot_bytes}). *)

val stats : t -> Wire.stats
val metrics : t -> string
val checkpoint : t -> string
val ping : t -> unit
val shutdown : t -> unit

val bytes_in : t -> int
val bytes_out : t -> int

val close : t -> unit
(** Idempotent. *)
