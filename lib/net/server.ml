module Codec = Sh_persist.Codec
module SE = Sh_par.Shard_engine
module Q = Stream_histogram.Query_op
module FW = Stream_histogram.Fixed_window
module M = Sh_obs.Metric
module Obs = Sh_obs.Obs

type config = {
  max_coalesce_points : int;
  max_frame_payload : int;
  idle_timeout : float;
  read_watermark : int;
  checkpoint : string option;
  checkpoint_every : int option;
}

let default_config =
  {
    max_coalesce_points = 65536;
    max_frame_payload = Wire.max_frame_payload;
    idle_timeout = 30.0;
    read_watermark = 1 lsl 20;
    checkpoint = None;
    checkpoint_every = None;
  }

type report = {
  connections : int;
  frames_in : int;
  frames_out : int;
  bytes_in : int;
  bytes_out : int;
  points : int;
  ingest_rounds : int;
  queries_served : int;
  protocol_errors : int;
  idle_closes : int;
  backpressure_stalls : int;
  checkpoints_written : int;
}

let listen addr =
  (match addr with
  | Addr.Unix_sock path when Sys.file_exists path -> (
    try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ -> ());
  let fd = Addr.socket_for addr in
  (try
     Unix.bind fd (Addr.to_sockaddr addr);
     Unix.listen fd 64
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  Unix.set_nonblock fd;
  fd

(* One decoded request, tagged for in-order response generation.  Ingest
   groups are pulled out for cross-connection coalescing; [Op_bad] is a
   semantic rejection that keeps the connection open. *)
type op =
  | Op_ingest of int (* points in this request's groups *)
  | Op_query of (Q.scope * Q.t) array
  | Op_stats
  | Op_metrics
  | Op_checkpoint
  | Op_snapshot
  | Op_ping
  | Op_shutdown
  | Op_bad of string

type client = {
  conn : Conn.t;
  mutable preamble_ok : bool;
  mutable ops : op list; (* this iteration's requests, reversed *)
  mutable close_after_flush : bool;
}

let keys_ok shards arr = Array.for_all (fun (k, _) -> k >= 0 && k < shards) arr

let scopes_ok shards qs =
  Array.for_all
    (fun (scope, _) ->
      match scope with Q.Key k -> k >= 0 && k < shards | Q.Global -> true)
    qs

let run ?(config = default_config) ?(stop = fun () -> false) ?max_points
    ~engine ~listeners () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let c_conns = Obs.counter "net.connections" in
  let c_frames_in = Obs.counter "net.frames_in" in
  let c_frames_out = Obs.counter "net.frames_out" in
  let c_bytes_in = Obs.counter "net.bytes_in" in
  let c_bytes_out = Obs.counter "net.bytes_out" in
  let c_points = Obs.counter "net.points" in
  let c_queries = Obs.counter "net.queries" in
  let c_proto_errors = Obs.counter "net.protocol_errors" in
  let c_idle_closes = Obs.counter "net.idle_closes" in
  let c_stalls = Obs.counter "net.backpressure_stalls" in
  let shards = SE.shard_count engine in
  (* Geometry is fixed at engine creation; capture it once for Stats. *)
  let window, buckets =
    SE.fold engine ~init:(0, 0) ~f:(fun (w, b) _ fw ->
        (max w (FW.window fw), max b (FW.buckets fw)))
  in
  let r_connections = ref 0 in
  let r_frames_in = ref 0 in
  let r_frames_out = ref 0 in
  let r_bytes_in = ref 0 in
  let r_bytes_out = ref 0 in
  let r_rounds = ref 0 in
  let r_queries = ref 0 in
  let r_proto_errors = ref 0 in
  let r_idle_closes = ref 0 in
  let r_stalls = ref 0 in
  let r_checkpoints = ref 0 in
  let clients = ref ([] : client list) in
  let finishing = ref false in
  let stalled = ref false in
  let base_points = SE.total_points engine in
  let served_points () = SE.total_points engine - base_points in
  let write_checkpoint () =
    match config.checkpoint with
    | None -> None
    | Some file ->
      SE.checkpoint engine ~file;
      incr r_checkpoints;
      Some file
  in
  let stats_reply () =
    Wire.Stats_reply
      {
        shards;
        window;
        buckets;
        total_points = SE.total_points engine;
        batches = SE.batches engine;
        queries = SE.queries engine;
        backpressure_waits = SE.backpressure_waits engine;
        lock_ops = SE.lock_ops engine;
        query_lock_ops = SE.query_lock_ops engine;
        snapshots_published = SE.snapshots_published engine;
      }
  in
  let send cl resp =
    Conn.send cl.conn (Wire.encode_response resp);
    incr r_frames_out;
    M.incr c_frames_out
  in
  let protocol_error cl msg =
    incr r_proto_errors;
    M.incr c_proto_errors;
    send cl (Wire.Error_reply msg);
    cl.close_after_flush <- true
  in
  let accept_all lfd =
    let continue = ref true in
    while !continue do
      match Unix.accept lfd with
      | fd, _ ->
        let cl =
          {
            conn = Conn.create fd;
            preamble_ok = false;
            ops = [];
            close_after_flush = false;
          }
        in
        Conn.send cl.conn Wire.preamble;
        incr r_connections;
        M.incr c_conns;
        clients := cl :: !clients
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
        continue := false
    done
  in
  (* Decode the complete frames [cl] has buffered into [cl.ops], stopping
     once the iteration's coalescing [budget] (in points) is spent.
     Accumulates ingest groups into [groups_acc] in arrival order
     (reversed); returns the points taken from the budget. *)
  let decode_client cl ~budget groups_acc =
    let budget_left = ref budget in
    (try
       if not cl.preamble_ok then begin
         match Conn.peek cl.conn Wire.preamble_len with
         | None -> ()
         | Some s ->
           Wire.check_preamble s;
           Conn.consume cl.conn Wire.preamble_len;
           cl.preamble_ok <- true
       end;
       if cl.preamble_ok then begin
         let continue = ref true in
         while !continue && !budget_left > 0 do
           match Conn.next_frame ~max_len:config.max_frame_payload cl.conn with
           | None -> continue := false
           | Some payload -> (
             incr r_frames_in;
             M.incr c_frames_in;
             match Wire.decode_request payload with
             | Wire.Ingest gs ->
               if keys_ok shards gs then begin
                 let pts = Wire.points_in_groups gs in
                 budget_left := !budget_left - pts;
                 cl.ops <- Op_ingest pts :: cl.ops;
                 Array.iter (fun g -> groups_acc := g :: !groups_acc) gs
               end
               else
                 cl.ops <-
                   Op_bad (Printf.sprintf "key out of range [0, %d)" shards)
                   :: cl.ops
             | Wire.Query qs ->
               cl.ops <-
                 (if scopes_ok shards qs then Op_query qs
                  else
                    Op_bad (Printf.sprintf "key out of range [0, %d)" shards))
                 :: cl.ops
             | Wire.Stats -> cl.ops <- Op_stats :: cl.ops
             | Wire.Metrics -> cl.ops <- Op_metrics :: cl.ops
             | Wire.Checkpoint -> cl.ops <- Op_checkpoint :: cl.ops
             | Wire.Snapshot -> cl.ops <- Op_snapshot :: cl.ops
             | Wire.Ping -> cl.ops <- Op_ping :: cl.ops
             | Wire.Shutdown -> cl.ops <- Op_shutdown :: cl.ops)
         done
       end
     with
    | Codec.Corrupt msg -> protocol_error cl ("corrupt frame: " ^ msg)
    | Codec.Version_mismatch { found; expected } ->
      protocol_error cl
        (Printf.sprintf "protocol version %d, this server speaks %d" found
           expected));
    budget - !budget_left
  in
  let respond cl =
    List.iter
      (fun opn ->
        match opn with
        | Op_ingest pts -> send cl (Wire.Ack pts)
        | Op_query qs ->
          let answers = SE.query_many engine qs in
          r_queries := !r_queries + Array.length qs;
          M.add c_queries (Array.length qs);
          send cl (Wire.Answers answers)
        | Op_stats -> send cl (stats_reply ())
        | Op_metrics -> send cl (Wire.Metrics_reply (Obs.render Obs.Prom))
        | Op_checkpoint -> (
          match write_checkpoint () with
          | Some file -> send cl (Wire.Checkpointed file)
          | None -> send cl (Wire.Error_reply "no checkpoint path configured"))
        | Op_snapshot ->
          let bytes = SE.snapshot_bytes engine in
          (* frame overhead: one tag byte + the string's varint length
             prefix; leave a conservative margin *)
          if String.length bytes + 16 > config.max_frame_payload then
            send cl
              (Wire.Error_reply
                 (Printf.sprintf
                    "snapshot is %d byte(s), larger than the %d-byte frame \
                     limit"
                    (String.length bytes) config.max_frame_payload))
          else send cl (Wire.Snapshot_reply bytes)
        | Op_ping -> send cl Wire.Pong
        | Op_shutdown ->
          finishing := true;
          send cl Wire.Shutting_down
        | Op_bad msg -> send cl (Wire.Error_reply msg))
      (List.rev cl.ops);
    cl.ops <- []
  in
  let points_done () =
    match max_points with None -> false | Some n -> served_points () >= n
  in
  let running = ref true in
  while !running do
    (* -- build fd sets ------------------------------------------------ *)
    let read_fds =
      if !stalled || !finishing then []
      else
        List.filter_map
          (fun cl ->
            if
              cl.close_after_flush
              || Conn.closed cl.conn
              || Conn.buffered cl.conn >= config.read_watermark
            then None
            else Some (Conn.fd cl.conn))
          !clients
    in
    let read_fds =
      if !finishing then read_fds else List.rev_append listeners read_fds
    in
    let write_fds =
      List.filter_map
        (fun cl ->
          if Conn.pending_out cl.conn && not (Conn.closed cl.conn) then
            Some (Conn.fd cl.conn)
          else None)
        !clients
    in
    if !stalled then begin
      incr r_stalls;
      M.incr c_stalls;
      stalled := false
    end;
    let readable, _writable, _ =
      try Unix.select read_fds write_fds [] 0.05
      with Unix.Unix_error (EINTR, _, _) -> ([], [], [])
    in
    (* -- accept + read ------------------------------------------------ *)
    List.iter
      (fun fd ->
        if List.memq fd listeners then accept_all fd
        else
          match
            List.find_opt
              (fun cl -> (not (Conn.closed cl.conn)) && Conn.fd cl.conn == fd)
              !clients
          with
          | None -> ()
          | Some cl -> (
            match Conn.read_into cl.conn with
            | `Data n ->
              r_bytes_in := !r_bytes_in + n;
              M.add c_bytes_in n
            | `Again -> ()
            | `Eof -> Conn.close cl.conn))
      readable;
    (* -- decode + coalesce + apply ------------------------------------ *)
    let groups_acc = ref [] in
    let budget = ref config.max_coalesce_points in
    List.iter
      (fun cl ->
        if !budget > 0 && not (cl.close_after_flush || Conn.closed cl.conn)
        then budget := !budget - decode_client cl ~budget:!budget groups_acc)
      !clients;
    (match !groups_acc with
    | [] -> ()
    | gs ->
      let groups = Array.of_list (List.rev gs) in
      let pts = Wire.points_in_groups groups in
      let bp0 = SE.backpressure_waits engine in
      SE.ingest_groups engine groups;
      incr r_rounds;
      M.add c_points pts;
      if SE.backpressure_waits engine > bp0 then stalled := true;
      match config.checkpoint_every with
      | Some k when !r_rounds mod k = 0 -> ignore (write_checkpoint ())
      | _ -> ());
    (* -- respond in per-connection request order ---------------------- *)
    List.iter
      (fun cl -> if cl.ops <> [] && not (Conn.closed cl.conn) then respond cl)
      !clients;
    (* -- flush + reap ------------------------------------------------- *)
    List.iter
      (fun cl ->
        if Conn.pending_out cl.conn && not (Conn.closed cl.conn) then begin
          let before = Conn.bytes_out cl.conn in
          (match Conn.flush cl.conn with
          | `Flushed | `Blocked -> ()
          | `Closed -> Conn.close cl.conn);
          let n = Conn.bytes_out cl.conn - before in
          r_bytes_out := !r_bytes_out + n;
          M.add c_bytes_out n
        end)
      !clients;
    clients :=
      List.filter
        (fun cl ->
          let gone = Conn.closed cl.conn in
          let flushed_goodbye =
            cl.close_after_flush && not (Conn.pending_out cl.conn)
          in
          let idle_kill =
            config.idle_timeout > 0.
            && Conn.idle_for cl.conn > config.idle_timeout
            && ((not cl.preamble_ok) || Conn.buffered cl.conn > 0)
          in
          if idle_kill && not gone then begin
            incr r_idle_closes;
            M.incr c_idle_closes
          end;
          if gone || flushed_goodbye || idle_kill then begin
            Conn.close cl.conn;
            false
          end
          else true)
        !clients;
    (* -- termination -------------------------------------------------- *)
    if stop () || points_done () then running := false
    else if
      !finishing
      && List.for_all (fun cl -> not (Conn.pending_out cl.conn)) !clients
    then running := false
  done;
  List.iter (fun cl -> Conn.close cl.conn) !clients;
  {
    connections = !r_connections;
    frames_in = !r_frames_in;
    frames_out = !r_frames_out;
    bytes_in = !r_bytes_in;
    bytes_out = !r_bytes_out;
    points = served_points ();
    ingest_rounds = !r_rounds;
    queries_served = !r_queries;
    protocol_errors = !r_proto_errors;
    idle_closes = !r_idle_closes;
    backpressure_stalls = !r_stalls;
    checkpoints_written = !r_checkpoints;
  }
