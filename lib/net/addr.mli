(** Listen/connect addresses for the wire protocol: TCP or a Unix-domain
    socket path, with one textual syntax shared by [serve --listen],
    [loadgen --connect] and the tests. *)

type t =
  | Tcp of string * int  (** host (name or dotted quad), port *)
  | Unix_sock of string  (** filesystem socket path *)

val of_string : string -> (t, string) result
(** Accepted forms: ["unix:PATH"], ["tcp:HOST:PORT"], ["HOST:PORT"], and
    [":PORT"] (which binds/connects on 127.0.0.1).  The error is a
    human-readable reason. *)

val to_string : t -> string
(** Round-trips through {!of_string}: ["unix:PATH"] / ["tcp:HOST:PORT"]. *)

val to_sockaddr : t -> Unix.sockaddr
(** Resolve to a [Unix.sockaddr].  Hostnames go through [gethostbyname];
    raises [Failure] if the host cannot be resolved. *)

val socket_for : t -> Unix.file_descr
(** A fresh stream socket of the right family ([PF_UNIX] / [PF_INET]),
    with [SO_REUSEADDR] set on TCP sockets. *)
