module Codec = Sh_persist.Codec
module Frame = Sh_persist.Frame

exception Net_error of string

let net_errorf fmt = Printf.ksprintf (fun s -> raise (Net_error s)) fmt

type t = {
  sock : Unix.file_descr;
  timeout : float;
  mutable inbuf : Buffer.t; (* bytes read, not yet consumed by a frame *)
  mutable in_pos : int; (* consumed prefix of [inbuf] *)
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable closed : bool;
}

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try Unix.close t.sock with Unix.Unix_error _ -> ())
  end

let bytes_in t = t.bytes_in
let bytes_out t = t.bytes_out

let wait_readable t =
  match Unix.select [ t.sock ] [] [] t.timeout with
  | [], _, _ -> net_errorf "timeout after %gs waiting for the server" t.timeout
  | _ -> ()
  | exception Unix.Unix_error (EINTR, _, _) -> ()

(* Read until [inbuf] holds at least [n] unconsumed bytes. *)
let fill t n =
  let buf = Bytes.create 65536 in
  while Buffer.length t.inbuf - t.in_pos < n do
    wait_readable t;
    match Unix.read t.sock buf 0 (Bytes.length buf) with
    | 0 -> net_errorf "connection closed by server mid-message"
    | got ->
      Buffer.add_subbytes t.inbuf buf 0 got;
      t.bytes_in <- t.bytes_in + got
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) ->
      net_errorf "connection reset by server"
  done

let compact t =
  if t.in_pos > 0 && t.in_pos = Buffer.length t.inbuf then begin
    Buffer.clear t.inbuf;
    t.in_pos <- 0
  end
  else if t.in_pos > 65536 then begin
    let rest =
      Buffer.sub t.inbuf t.in_pos (Buffer.length t.inbuf - t.in_pos)
    in
    Buffer.clear t.inbuf;
    Buffer.add_string t.inbuf rest;
    t.in_pos <- 0
  end

let take t n =
  fill t n;
  let s = Buffer.sub t.inbuf t.in_pos n in
  t.in_pos <- t.in_pos + n;
  compact t;
  s

let next_frame t =
  let rec go () =
    let s = Buffer.contents t.inbuf in
    match
      Frame.scan_frame ~max_len:Wire.max_frame_payload s ~pos:t.in_pos
        ~len:(String.length s - t.in_pos)
    with
    | Frame.Frame { payload; consumed } ->
      t.in_pos <- t.in_pos + consumed;
      compact t;
      payload
    | Frame.Incomplete ->
      fill t (Buffer.length t.inbuf - t.in_pos + 1);
      go ()
  in
  go ()

let write_all t s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    match Unix.write_substring t.sock s !off (len - !off) with
    | n ->
      off := !off + n;
      t.bytes_out <- t.bytes_out + n
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | exception Unix.Unix_error ((EPIPE | ECONNRESET), _, _) ->
      net_errorf "connection reset by server"
  done

let connect_once ~timeout addr =
  let sock = Addr.socket_for addr in
  match
    Unix.connect sock (Addr.to_sockaddr addr);
    sock
  with
  | sock ->
    let t =
      {
        sock;
        timeout;
        inbuf = Buffer.create 65536;
        in_pos = 0;
        bytes_in = 0;
        bytes_out = 0;
        closed = false;
      }
    in
    (try
       write_all t Wire.preamble;
       Wire.check_preamble (take t Wire.preamble_len)
     with e ->
       close t;
       raise e);
    t
  | exception e ->
    (try Unix.close sock with Unix.Unix_error _ -> ());
    raise e

let connect ?(timeout = 30.) ?(retries = 0) ?(retry_delay = 0.2) addr =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let rec go attempt =
    match connect_once ~timeout addr with
    | t -> t
    | exception
        ( Unix.Unix_error
            ((ECONNREFUSED | ENOENT | ECONNRESET | EPIPE | ETIMEDOUT), _, _)
        | Net_error _ )
      when attempt < retries ->
      Unix.sleepf retry_delay;
      go (attempt + 1)
    | exception Unix.Unix_error (e, _, _) ->
      net_errorf "connect %s: %s" (Addr.to_string addr) (Unix.error_message e)
  in
  go 0

let send t req = write_all t (Wire.encode_request req)
let recv t = Wire.decode_response (next_frame t)

let call t req =
  send t req;
  recv t

let unexpected what resp =
  match resp with
  | Wire.Error_reply msg -> net_errorf "server rejected %s: %s" what msg
  | _ -> Codec.corruptf "unexpected response to %s" what

let ingest t groups =
  match call t (Wire.Ingest groups) with
  | Wire.Ack n -> n
  | resp -> unexpected "ingest" resp

let query t qs =
  match call t (Wire.Query qs) with
  | Wire.Answers a -> a
  | resp -> unexpected "query" resp

let query_partial t qs =
  match call t (Wire.Query qs) with
  | Wire.Answers a -> (a, 0)
  | Wire.Answers_partial { answers; leaves_missing } -> (answers, leaves_missing)
  | resp -> unexpected "query" resp

let snapshot t =
  match call t Wire.Snapshot with
  | Wire.Snapshot_reply bytes -> bytes
  | resp -> unexpected "snapshot" resp

let stats t =
  match call t Wire.Stats with
  | Wire.Stats_reply s -> s
  | resp -> unexpected "stats" resp

let metrics t =
  match call t Wire.Metrics with
  | Wire.Metrics_reply s -> s
  | resp -> unexpected "metrics" resp

let checkpoint t =
  match call t Wire.Checkpoint with
  | Wire.Checkpointed path -> path
  | resp -> unexpected "checkpoint" resp

let ping t =
  match call t Wire.Ping with
  | Wire.Pong -> ()
  | resp -> unexpected "ping" resp

let shutdown t =
  match call t Wire.Shutdown with
  | Wire.Shutting_down -> ()
  | resp -> unexpected "shutdown" resp
