module Codec = Sh_persist.Codec
module Frame = Sh_persist.Frame

let chunk = 64 * 1024

type t = {
  sock : Unix.file_descr;
  mutable inbuf : bytes;
  mutable in_start : int; (* first live byte *)
  mutable in_len : int; (* live bytes from in_start *)
  mutable content_gen : int; (* bumped when buffer bytes move or grow *)
  mutable cache : string; (* snapshot of the live region, for scanning *)
  mutable cache_gen : int; (* content_gen the snapshot was taken at *)
  mutable cache_start : int; (* in_start the snapshot was taken at *)
  outq : string Queue.t;
  mutable out_off : int; (* bytes of the queue head already written *)
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable last_activity : float;
  mutable closed : bool;
}

let create sock =
  Unix.set_nonblock sock;
  {
    sock;
    inbuf = Bytes.create chunk;
    in_start = 0;
    in_len = 0;
    content_gen = 0;
    cache = "";
    cache_gen = -1;
    cache_start = 0;
    outq = Queue.create ();
    out_off = 0;
    bytes_in = 0;
    bytes_out = 0;
    last_activity = Unix.gettimeofday ();
    closed = false;
  }

let fd t = t.sock
let buffered t = t.in_len
let bytes_in t = t.bytes_in
let bytes_out t = t.bytes_out
let touch t = t.last_activity <- Unix.gettimeofday ()
let idle_for t = Unix.gettimeofday () -. t.last_activity

let closed t = t.closed

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try Unix.close t.sock with Unix.Unix_error _ -> ())
  end

(* Make room for at least [n] more input bytes: slide the live region to
   the front, doubling the buffer if it is simply too small. *)
let reserve t n =
  let cap = Bytes.length t.inbuf in
  if t.in_start + t.in_len + n > cap then begin
    if t.in_len + n > cap then begin
      let cap' = max (cap * 2) (t.in_len + n) in
      let b = Bytes.create cap' in
      Bytes.blit t.inbuf t.in_start b 0 t.in_len;
      t.inbuf <- b
    end
    else Bytes.blit t.inbuf t.in_start t.inbuf 0 t.in_len;
    t.in_start <- 0;
    t.content_gen <- t.content_gen + 1
  end

let read_into t =
  if t.closed then `Eof
  else begin
    reserve t chunk;
    match Unix.read t.sock t.inbuf (t.in_start + t.in_len) chunk with
    | 0 -> `Eof
    | n ->
      t.in_len <- t.in_len + n;
      t.content_gen <- t.content_gen + 1;
      t.bytes_in <- t.bytes_in + n;
      touch t;
      `Data n
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
      `Again
    | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> `Eof
  end

(* The live region as [(snapshot, offset)]: the snapshot string holds the
   region as of the last content change, and consuming frames only moves
   the offset, so draining a buffer of many frames copies its bytes once,
   not once per frame. *)
let live t =
  if t.cache_gen <> t.content_gen then begin
    t.cache <- Bytes.sub_string t.inbuf t.in_start t.in_len;
    t.cache_gen <- t.content_gen;
    t.cache_start <- t.in_start
  end;
  (t.cache, t.in_start - t.cache_start)

let consume t n =
  if n < 0 || n > t.in_len then invalid_arg "Conn.consume";
  t.in_start <- t.in_start + n;
  t.in_len <- t.in_len - n;
  if t.in_len = 0 then begin
    (* Restart at the buffer front; the stale snapshot mapping is fine
       because [live] is never consulted on an empty buffer, and the next
       read bumps [content_gen]. *)
    t.in_start <- 0;
    t.content_gen <- t.content_gen + 1
  end

let peek t n =
  if t.in_len < n then None
  else Some (Bytes.sub_string t.inbuf t.in_start n)

let next_frame ?max_len t =
  if t.in_len = 0 then None
  else begin
    let s, pos = live t in
    match Frame.scan_frame ?max_len s ~pos ~len:t.in_len with
    | Frame.Incomplete -> None
    | Frame.Frame { payload; consumed } ->
      (* The payload reader aliases the immutable snapshot string, so it
         stays valid after the bytes are consumed here. *)
      consume t consumed;
      Some payload
  end

let send t frame =
  if not t.closed then Queue.push frame t.outq

let pending_out t = not (Queue.is_empty t.outq)

let rec flush t =
  if t.closed then `Closed
  else
    match Queue.peek_opt t.outq with
    | None -> `Flushed
    | Some s -> (
      let len = String.length s - t.out_off in
      match Unix.write_substring t.sock s t.out_off len with
      | n ->
        t.bytes_out <- t.bytes_out + n;
        touch t;
        if n = len then begin
          ignore (Queue.pop t.outq);
          t.out_off <- 0;
          flush t
        end
        else begin
          t.out_off <- t.out_off + n;
          `Blocked
        end
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
        `Blocked
      | exception Unix.Unix_error ((EPIPE | ECONNRESET), _, _) -> `Closed)
