(** The serve loop: a single-threaded, [select]-driven event loop that owns
    one {!Sh_par.Shard_engine} and any number of client connections.

    Single-threaded is not a simplification here — it is the concurrency
    model the engine demands: ingest is single-producer, so the loop {e is}
    the producer, and the wire protocol's batching becomes the engine's
    batching.  Each iteration drains every readable socket, decodes the
    complete frames each connection has buffered, coalesces {e all}
    connections' ingest groups into one {!Sh_par.Shard_engine.ingest_groups}
    call (capped at [max_coalesce_points] per iteration), and only then
    queues each connection's responses in its request order.  An [Ack] is
    therefore a durability-in-window statement: the points it covers are in
    the engine before the ack bytes exist.

    Backpressure is propagated, not absorbed: when an ingest round reports
    new [engine.backpressure_waits], the next iteration reads from no
    socket (one stall, counted), and any connection holding more than
    [read_watermark] undecoded bytes is excluded from the read set until it
    drains — kernel socket buffers fill and the TCP window closes back to
    the sender.  Nothing acknowledged is ever dropped; nothing is buffered
    without bound.

    Malformed input (bad magic, foreign version, CRC mismatch, oversized
    length prefix, trailing bytes) earns the connection a final
    [Error_reply] and a close; a connection that trickles a partial frame
    and then stalls is reaped after [idle_timeout].  Either way the loop
    and the other connections are unaffected. *)

module SE := Sh_par.Shard_engine

type config = {
  max_coalesce_points : int;  (** per-iteration ingest coalescing cap *)
  max_frame_payload : int;  (** reject larger declared payloads *)
  idle_timeout : float;  (** seconds before a half-frame conn is reaped *)
  read_watermark : int;  (** max undecoded bytes buffered per conn *)
  checkpoint : string option;  (** path served to [Checkpoint] requests *)
  checkpoint_every : int option;  (** also checkpoint every k ingest rounds *)
}

val default_config : config
(** 65536 points, {!Wire.max_frame_payload}, 30 s, 1 MiB, no checkpoint. *)

type report = {
  connections : int;  (** accepted over the run *)
  frames_in : int;
  frames_out : int;
  bytes_in : int;
  bytes_out : int;
  points : int;  (** ingested (and acked) over the run *)
  ingest_rounds : int;  (** coalesced {!SE.ingest_groups} calls *)
  queries_served : int;  (** individual query elements answered *)
  protocol_errors : int;
  idle_closes : int;
  backpressure_stalls : int;
  checkpoints_written : int;
}

val listen : Addr.t -> Unix.file_descr
(** Bind + listen (backlog 64) a non-blocking listener.  A Unix-socket
    path is unlinked first if present, so restarts rebind cleanly. *)

val run :
  ?config:config ->
  ?stop:(unit -> bool) ->
  ?max_points:int ->
  engine:SE.t ->
  listeners:Unix.file_descr list ->
  unit ->
  report
(** Serve until a client sends [Shutdown] (the loop then drains and closes
    every connection), [stop ()] turns true, or [max_points] have been
    ingested over the wire.  Closes the accepted connections but leaves
    the listener fds to the caller.  [SIGPIPE] is ignored for the
    process. *)
