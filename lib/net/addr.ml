type t = Tcp of string * int | Unix_sock of string

let strip_prefix ~prefix s =
  let pl = String.length prefix in
  if String.length s >= pl && String.equal (String.sub s 0 pl) prefix then
    Some (String.sub s pl (String.length s - pl))
  else None

let host_port s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "bad address %S: expected HOST:PORT" s)
  | Some i ->
    let host = String.sub s 0 i in
    let port_s = String.sub s (i + 1) (String.length s - i - 1) in
    (match int_of_string_opt port_s with
    | Some port when port > 0 && port < 65536 ->
      Ok (Tcp ((if host = "" then "127.0.0.1" else host), port))
    | _ -> Error (Printf.sprintf "bad port %S in address %S" port_s s))

let of_string s =
  match strip_prefix ~prefix:"unix:" s with
  | Some "" -> Error "bad address: empty unix socket path"
  | Some path -> Ok (Unix_sock path)
  | None ->
    (match strip_prefix ~prefix:"tcp:" s with
    | Some rest -> host_port rest
    | None -> host_port s)

let to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ ->
    (match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
      failwith (Printf.sprintf "cannot resolve host %S" host)
    | { Unix.h_addr_list; _ } -> h_addr_list.(0))

let to_sockaddr = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp (host, port) -> Unix.ADDR_INET (resolve host, port)

let socket_for = function
  | Unix_sock _ -> Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0
  | Tcp _ ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    fd
