(** Optimal V-optimal histogram construction — the O(n^2 B) dynamic program
    of Jagadish et al. [JKM+98], Figure 2 of the paper.

    The recurrence: HERROR\[j, k\] = min over i < j of
    HERROR\[i, k-1\] + SQERROR\[i+1, j\], with SQERROR evaluated in O(1)
    from prefix sums.  This is the "Exact" series of Figure 6 and the test
    oracle for both streaming algorithms. *)

val optimal_error : Sh_prefix.Prefix_sums.t -> buckets:int -> float
(** Minimum achievable SSE with the given number of buckets.  With
    [buckets >= n] the error is 0. *)

val build_prefix : Sh_prefix.Prefix_sums.t -> buckets:int -> Histogram.t
(** The optimal histogram itself, by backtracking the DP choices.  Uses
    min(buckets, n) buckets. *)

val build : float array -> buckets:int -> Histogram.t
(** Convenience wrapper: preprocess then {!build_prefix}. *)

val herror_row : Sh_prefix.Prefix_sums.t -> buckets:int -> float array
(** [herror_row prefix ~buckets] is the array h with h.(j) = HERROR\[j,
    buckets\] for j in 0..n (h.(0) = 0) — the error of optimally
    histogramming each prefix.  Exposed for the monotonicity property tests
    and as an oracle for the streaming algorithms. *)

(** {2 Scratch-reusing variants}

    The DP allocates two length-(n+1) float rows plus, when backtracking,
    a (b+1) x (n+1) choice matrix.  A caller that runs the oracle
    repeatedly (the exact-baseline window maintainer, benchmark sweeps)
    owns one {!scratch} and calls the [_with] variants: buffers grow to
    the largest problem seen, then every further run is allocation-free up
    to the result histogram.  Results are identical to the one-shot API. *)

type scratch
(** Reusable DP workspace.  Not domain-safe: one scratch per domain. *)

val scratch : unit -> scratch
(** A fresh empty workspace (buffers grow on first use). *)

val optimal_error_with : scratch -> Sh_prefix.Prefix_sums.t -> buckets:int -> float
(** {!optimal_error} reusing the given workspace. *)

val build_prefix_with : scratch -> Sh_prefix.Prefix_sums.t -> buckets:int -> Histogram.t
(** {!build_prefix} reusing the given workspace. *)
