(** Classic heuristic histogram constructions.

    These are the non-optimal baselines that predate the V-optimal family;
    they are cheap to build and serve as additional comparison points in the
    benchmarks (the paper's related-work section surveys them via
    [IP95]). *)

val equi_width : Sh_prefix.Prefix_sums.t -> buckets:int -> Histogram.t
(** Buckets of (near-)equal index length. *)

val max_diff : Sh_prefix.Prefix_sums.t -> values:float array -> buckets:int -> Histogram.t
(** Bucket boundaries at the B-1 largest adjacent differences
    [|v_{i+1} - v_i|] — the MaxDiff(V, A) heuristic. *)

val greedy_merge : Sh_prefix.Prefix_sums.t -> buckets:int -> Histogram.t
(** Bottom-up agglomerative merging: start from singleton buckets and
    repeatedly merge the adjacent pair whose merge increases SSE least,
    until B buckets remain.  O(n log n) with a heap. *)
