module Prefix_sums = Sh_prefix.Prefix_sums

(* Run the DP up to [buckets] rows.  Returns the final HERROR row and, when
   [record_choices], the argmin table used to backtrack bucket boundaries.
   Row k is HERROR[., k]; only two float rows are live at a time. *)
let dp prefix ~buckets ~record_choices =
  let n = Prefix_sums.length prefix in
  if buckets < 1 then invalid_arg "Vopt: buckets must be >= 1";
  let b = min buckets n in
  let prev = Array.make (n + 1) 0.0 in
  let cur = Array.make (n + 1) 0.0 in
  let choices = if record_choices then Array.make_matrix (b + 1) (n + 1) 0 else [||] in
  for j = 1 to n do
    prev.(j) <- Prefix_sums.sqerror prefix ~lo:1 ~hi:j
  done;
  for k = 2 to b do
    for j = 0 to n do
      cur.(j) <- 0.0
    done;
    for j = k to n do
      (* Last bucket is [i+1 .. j]; the rest is an optimal (k-1)-histogram
         of [1 .. i].  i ranges over [k-1 .. j-1] so no bucket is empty. *)
      let best = ref infinity in
      let best_i = ref (k - 1) in
      for i = k - 1 to j - 1 do
        let cost = prev.(i) +. Prefix_sums.sqerror prefix ~lo:(i + 1) ~hi:j in
        if cost < !best then begin
          best := cost;
          best_i := i
        end
      done;
      cur.(j) <- !best;
      if record_choices then choices.(k).(j) <- !best_i
    done;
    Array.blit cur 0 prev 0 (n + 1)
  done;
  (prev, choices, b)

let optimal_error prefix ~buckets =
  let n = Prefix_sums.length prefix in
  if buckets >= n then 0.0
  else begin
    let row, _, _ = dp prefix ~buckets ~record_choices:false in
    row.(n)
  end

let herror_row prefix ~buckets =
  let row, _, _ = dp prefix ~buckets ~record_choices:false in
  row

let build_prefix prefix ~buckets =
  let n = Prefix_sums.length prefix in
  let _, choices, b = dp prefix ~buckets ~record_choices:true in
  (* Walk the choice table backwards to recover the right endpoints. *)
  let boundaries = Array.make b 0 in
  boundaries.(b - 1) <- n;
  let j = ref n in
  for k = b downto 2 do
    j := choices.(k).(!j);
    boundaries.(k - 2) <- !j
  done;
  Histogram.of_boundaries prefix ~boundaries

let build values ~buckets = build_prefix (Prefix_sums.make values) ~buckets
