module Prefix_sums = Sh_prefix.Prefix_sums

(* Reusable DP workspace: the O(n^2 B) oracle used to reallocate its two
   float rows and the choice matrix on every invocation, which dominates
   the allocation profile of the exact baseline when it is queried per
   arrival.  Callers that query repeatedly own one [scratch] and use the
   [_with] variants; buffers grow to the largest (n, b) seen and are then
   reused verbatim.  The one-shot API below allocates a fresh workspace
   per call, exactly as before. *)
type scratch = {
  mutable prev : float array;        (* row k-1 of HERROR, length >= n+1 *)
  mutable cur : float array;         (* row k under construction         *)
  mutable choices : int array array; (* argmin table for backtracking    *)
  sq : float array;                  (* sqerror_into out-param cell      *)
}

let scratch () = { prev = [||]; cur = [||]; choices = [||]; sq = Array.make 1 0.0 }

let ensure_rows s n =
  if Array.length s.prev < n + 1 then begin
    s.prev <- Array.make (n + 1) 0.0;
    s.cur <- Array.make (n + 1) 0.0
  end

let ensure_choices s ~b ~n =
  if
    Array.length s.choices < b + 1
    || Array.length s.choices.(0) < n + 1
  then s.choices <- Array.make_matrix (b + 1) (n + 1) 0

(* Run the DP up to [buckets] rows inside [s].  Returns min(buckets, n);
   the final HERROR row is left in [s.prev] (entries 0 .. n) and, when
   [record_choices], the argmin table in [s.choices].  Row k is
   HERROR[., k]; only two float rows are live at a time.  Reused buffers
   may be longer than needed — every cell read is written first. *)
let dp_with s prefix ~buckets ~record_choices =
  let n = Prefix_sums.length prefix in
  if buckets < 1 then invalid_arg "Vopt: buckets must be >= 1";
  let b = min buckets n in
  ensure_rows s n;
  if record_choices then ensure_choices s ~b ~n;
  let prev = s.prev and cur = s.cur and choices = s.choices and sq = s.sq in
  prev.(0) <- 0.0;
  for j = 1 to n do
    Prefix_sums.sqerror_into prefix ~lo:1 ~hi:j prev j
  done;
  for k = 2 to b do
    for j = 0 to n do
      cur.(j) <- 0.0
    done;
    for j = k to n do
      (* Last bucket is [i+1 .. j]; the rest is an optimal (k-1)-histogram
         of [1 .. i].  i ranges over [k-1 .. j-1] so no bucket is empty. *)
      let best = ref infinity in
      let best_i = ref (k - 1) in
      for i = k - 1 to j - 1 do
        Prefix_sums.sqerror_into prefix ~lo:(i + 1) ~hi:j sq 0;
        let cost = prev.(i) +. sq.(0) in
        if cost < !best then begin
          best := cost;
          best_i := i
        end
      done;
      cur.(j) <- !best;
      if record_choices then choices.(k).(j) <- !best_i
    done;
    Array.blit cur 0 prev 0 (n + 1)
  done;
  b

let optimal_error_with s prefix ~buckets =
  let n = Prefix_sums.length prefix in
  if buckets >= n then 0.0
  else begin
    let _b = dp_with s prefix ~buckets ~record_choices:false in
    s.prev.(n)
  end

let build_prefix_with s prefix ~buckets =
  let n = Prefix_sums.length prefix in
  let b = dp_with s prefix ~buckets ~record_choices:true in
  (* Walk the choice table backwards to recover the right endpoints. *)
  let boundaries = Array.make b 0 in
  boundaries.(b - 1) <- n;
  let j = ref n in
  for k = b downto 2 do
    j := s.choices.(k).(!j);
    boundaries.(k - 2) <- !j
  done;
  Histogram.of_boundaries prefix ~boundaries

let optimal_error prefix ~buckets = optimal_error_with (scratch ()) prefix ~buckets

let herror_row prefix ~buckets =
  let s = scratch () in
  let _b = dp_with s prefix ~buckets ~record_choices:false in
  (* the fresh scratch sizes prev at exactly n + 1, the documented shape *)
  s.prev

let build_prefix prefix ~buckets = build_prefix_with (scratch ()) prefix ~buckets
let build values ~buckets = build_prefix (Prefix_sums.make values) ~buckets
