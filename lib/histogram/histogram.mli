(** Serial (index-partitioning) histograms.

    A histogram over a sequence [v_1 .. v_n] is a partition of the index
    range [\[1, n\]] into B contiguous buckets, each represented by a single
    value [h_i] (here always the bucket mean, which minimises SSE).  This is
    the representation H_B of Section 3 of the paper.

    All indices are 1-based and bucket ranges inclusive, matching the paper. *)

type bucket = {
  lo : int;      (** first index covered, 1-based *)
  hi : int;      (** last index covered, inclusive *)
  value : float; (** representative (the bucket mean) *)
}

type t = private {
  n : int;                (** length of the approximated sequence *)
  buckets : bucket array; (** contiguous, sorted, covering [1..n] *)
}

val make : n:int -> bucket array -> t
(** Validates that buckets are non-empty, contiguous and cover [\[1, n\]].
    Raises [Invalid_argument] otherwise. *)

val of_boundaries : Sh_prefix.Prefix_sums.t -> boundaries:int array -> t
(** [of_boundaries prefix ~boundaries] builds the histogram whose bucket
    right-endpoints are [boundaries] (strictly increasing, last equal to the
    sequence length); bucket values are the exact range means. *)

val bucket_count : t -> int

val find_bucket : t -> int -> bucket
(** Bucket containing index [i], by binary search in O(log B). *)

val point_estimate : t -> int -> float
(** Estimated v_i: the value of the covering bucket. *)

val range_sum_estimate : t -> lo:int -> hi:int -> float
(** Estimated sum of [v_lo .. v_hi] under the uniform-within-bucket
    assumption: each bucket contributes (overlap length) x (bucket value). *)

val range_avg_estimate : t -> lo:int -> hi:int -> float

val to_series : t -> float array
(** The length-n reconstructed approximation (0-based array;
    element [i-1] approximates v_i). *)

val sse_against : t -> Sh_prefix.Prefix_sums.t -> float
(** Exact SSE of the histogram against the data it summarises:
    E_X(H_B) of the paper, computed in O(B) from prefix sums. *)

val pp : Format.formatter -> t -> unit
