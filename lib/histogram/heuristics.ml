module Prefix_sums = Sh_prefix.Prefix_sums
module Heap = Sh_util.Heap

let equi_width prefix ~buckets =
  let n = Prefix_sums.length prefix in
  let b = min (max 1 buckets) n in
  (* Distribute the remainder so bucket lengths differ by at most one. *)
  let boundaries =
    Array.init b (fun i ->
        let pos = (n * (i + 1)) / b in
        max (i + 1) pos)
  in
  boundaries.(b - 1) <- n;
  Histogram.of_boundaries prefix ~boundaries

let max_diff prefix ~values ~buckets =
  let n = Prefix_sums.length prefix in
  if Array.length values <> n then invalid_arg "Heuristics.max_diff: length mismatch";
  let b = min (max 1 buckets) n in
  if b = 1 then Histogram.of_boundaries prefix ~boundaries:[| n |]
  else begin
    (* Rank positions by the jump between consecutive values; the b-1
       largest jumps become bucket boundaries. *)
    let diffs = Array.init (n - 1) (fun i -> (Float.abs (values.(i + 1) -. values.(i)), i + 1)) in
    Array.sort (fun (d1, _) (d2, _) -> compare d2 d1) diffs;
    let cut = Array.sub diffs 0 (b - 1) in
    let boundaries = Array.map snd cut in
    Array.sort compare boundaries;
    let all = Array.append boundaries [| n |] in
    Histogram.of_boundaries prefix ~boundaries:all
  end

(* Bottom-up merging.  Buckets live in a doubly linked structure encoded by
   [next]/[prev] index arrays; the heap holds (cost, left, stamp) candidate
   merges, invalidated lazily via per-bucket stamps. *)
let greedy_merge prefix ~buckets =
  let n = Prefix_sums.length prefix in
  let b = min (max 1 buckets) n in
  if b >= n then Histogram.of_boundaries prefix ~boundaries:(Array.init n (fun i -> i + 1))
  else begin
    let hi = Array.init n (fun i -> i + 1) in
    (* hi.(i) = right endpoint of the bucket starting at position i+1 *)
    let next = Array.init n (fun i -> i + 1) in
    let prev = Array.init n (fun i -> i - 1) in
    let alive = Array.make n true in
    let stamp = Array.make n 0 in
    let merge_cost left =
      let right = next.(left) in
      let lo = left + 1 in
      Prefix_sums.sqerror prefix ~lo ~hi:hi.(right)
      -. Prefix_sums.sqerror prefix ~lo ~hi:hi.(left)
      -. Prefix_sums.sqerror prefix ~lo:(right + 1) ~hi:hi.(right)
    in
    let heap = Heap.create ~cmp:(fun (c1, _, _, _) (c2, _, _, _) -> compare (c1 : float) c2) in
    for i = 0 to n - 2 do
      Heap.add heap (merge_cost i, i, stamp.(i), stamp.(i + 1))
    done;
    let remaining = ref n in
    while !remaining > b do
      match Heap.pop heap with
      | None -> remaining := b (* unreachable: there is always a mergeable pair *)
      | Some (_, left, s_left, s_right) ->
        let right = if alive.(left) && next.(left) < n then next.(left) else -1 in
        let valid =
          right >= 0 && alive.(right)
          && stamp.(left) = s_left
          && stamp.(right) = s_right
        in
        if valid then begin
          hi.(left) <- hi.(right);
          alive.(right) <- false;
          stamp.(left) <- stamp.(left) + 1;
          let after = next.(right) in
          next.(left) <- after;
          if after < n then prev.(after) <- left;
          decr remaining;
          if !remaining > b then begin
            if next.(left) < n then
              Heap.add heap (merge_cost left, left, stamp.(left), stamp.(next.(left)));
            let before = prev.(left) in
            if before >= 0 then
              Heap.add heap (merge_cost before, before, stamp.(before), stamp.(left))
          end
        end
    done;
    let boundaries = ref [] in
    let i = ref 0 in
    while !i < n do
      boundaries := hi.(!i) :: !boundaries;
      i := next.(!i)
    done;
    Histogram.of_boundaries prefix ~boundaries:(Array.of_list (List.rev !boundaries))
  end
