module Prefix_sums = Sh_prefix.Prefix_sums

type bucket = { lo : int; hi : int; value : float }
type t = { n : int; buckets : bucket array }

let make ~n buckets =
  let count = Array.length buckets in
  if n < 1 then invalid_arg "Histogram.make: n must be >= 1";
  if count = 0 then invalid_arg "Histogram.make: at least one bucket required";
  if buckets.(0).lo <> 1 then invalid_arg "Histogram.make: first bucket must start at 1";
  if buckets.(count - 1).hi <> n then invalid_arg "Histogram.make: last bucket must end at n";
  for i = 0 to count - 1 do
    let b = buckets.(i) in
    if b.lo > b.hi then invalid_arg "Histogram.make: empty bucket";
    if i > 0 && b.lo <> buckets.(i - 1).hi + 1 then
      invalid_arg "Histogram.make: buckets must be contiguous"
  done;
  { n; buckets = Array.copy buckets }

let of_boundaries prefix ~boundaries =
  let n = Prefix_sums.length prefix in
  let count = Array.length boundaries in
  if count = 0 || boundaries.(count - 1) <> n then
    invalid_arg "Histogram.of_boundaries: last boundary must equal n";
  let buckets =
    Array.mapi
      (fun i hi ->
        let lo = if i = 0 then 1 else boundaries.(i - 1) + 1 in
        if lo > hi then invalid_arg "Histogram.of_boundaries: boundaries must increase";
        { lo; hi; value = Prefix_sums.range_mean prefix ~lo ~hi })
      boundaries
  in
  make ~n buckets

let bucket_count t = Array.length t.buckets

let find_bucket t i =
  if i < 1 || i > t.n then invalid_arg "Histogram.find_bucket: index out of range";
  let rec search lo hi =
    if lo >= hi then t.buckets.(lo)
    else begin
      let mid = (lo + hi) / 2 in
      if t.buckets.(mid).hi < i then search (mid + 1) hi else search lo mid
    end
  in
  search 0 (Array.length t.buckets - 1)

let point_estimate t i = (find_bucket t i).value

let range_sum_estimate t ~lo ~hi =
  if lo > hi then 0.0
  else begin
    if lo < 1 || hi > t.n then invalid_arg "Histogram.range_sum_estimate: range out of bounds";
    let acc = ref 0.0 in
    let i = ref 0 in
    (* Skip buckets entirely left of the range, then accumulate overlaps. *)
    while t.buckets.(!i).hi < lo do
      incr i
    done;
    let continue = ref true in
    while !continue && !i < Array.length t.buckets do
      let b = t.buckets.(!i) in
      if b.lo > hi then continue := false
      else begin
        let o_lo = max b.lo lo and o_hi = min b.hi hi in
        acc := !acc +. (Float.of_int (o_hi - o_lo + 1) *. b.value);
        incr i
      end
    done;
    !acc
  end

let range_avg_estimate t ~lo ~hi =
  if lo > hi then 0.0
  else range_sum_estimate t ~lo ~hi /. Float.of_int (hi - lo + 1)

let to_series t =
  let out = Array.make t.n 0.0 in
  Array.iter
    (fun b ->
      for i = b.lo to b.hi do
        out.(i - 1) <- b.value
      done)
    t.buckets;
  out

let sse_against t prefix =
  if Prefix_sums.length prefix <> t.n then
    invalid_arg "Histogram.sse_against: length mismatch";
  (* Per bucket: sum_{i} (v_i - h)^2 = SQSUM - 2 h SUM + len h^2. *)
  let acc = ref 0.0 in
  Array.iter
    (fun b ->
      let s = Prefix_sums.range_sum prefix ~lo:b.lo ~hi:b.hi in
      let q = Prefix_sums.range_sqsum prefix ~lo:b.lo ~hi:b.hi in
      let len = Float.of_int (b.hi - b.lo + 1) in
      acc := !acc +. Float.max 0.0 (q -. (2.0 *. b.value *. s) +. (len *. b.value *. b.value)))
    t.buckets;
  !acc

let pp ppf t =
  Format.fprintf ppf "@[<v>histogram n=%d B=%d" t.n (Array.length t.buckets);
  Array.iter (fun b -> Format.fprintf ppf "@,  [%d..%d] = %.6g" b.lo b.hi b.value) t.buckets;
  Format.fprintf ppf "@]"
