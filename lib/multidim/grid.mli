(** Two-dimensional prefix sums (summed-area tables) over a frequency or
    measure grid — the 2-D analogue of {!Sh_prefix.Prefix_sums}, the
    substrate for multidimensional histograms ([PI97], [LKC99] in the
    paper's bibliography).

    Cells are addressed by 0-based [(row, col)]; ranges are inclusive. *)

type t

val make : float array array -> t
(** Preprocess a rectangular grid in O(rows x cols).  Raises on an empty
    or ragged grid. *)

val rows : t -> int
val cols : t -> int

val range_sum : t -> r0:int -> c0:int -> r1:int -> c1:int -> float
(** Sum over the cell block [\[r0..r1\] x \[c0..c1\]], O(1).  Empty ranges
    ([r0 > r1] or [c0 > c1]) sum to [0.]. *)

val range_sqsum : t -> r0:int -> c0:int -> r1:int -> c1:int -> float

val sse : t -> r0:int -> c0:int -> r1:int -> c1:int -> float
(** SSE of representing the block by its mean — the 2-D SQERROR. *)

val mean : t -> r0:int -> c0:int -> r1:int -> c1:int -> float
