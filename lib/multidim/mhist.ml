module Heap = Sh_util.Heap

type bucket = { r0 : int; c0 : int; r1 : int; c1 : int; value : float }
type t = { grid_rows : int; grid_cols : int; buckets : bucket array }

type region = { rr0 : int; rc0 : int; rr1 : int; rc1 : int; err : float }

(* Best split of a region: try every horizontal and vertical cut; return
   the resulting pair with the smallest combined SSE, or None for unit
   regions.  Cost ties are broken towards the more balanced cut (on flat
   cost landscapes — e.g. symmetric mass — unbalanced first cuts would
   strand the budget on slivers). *)
let best_split grid region =
  let { rr0; rc0; rr1; rc1; _ } = region in
  let area r = (r.rr1 - r.rr0 + 1) * (r.rc1 - r.rc0 + 1) in
  let best = ref None in
  let consider a b =
    let cost = a.err +. b.err in
    let balance = abs (area a - area b) in
    let better =
      match !best with
      | None -> true
      | Some (c, bal, _, _) ->
        let tie = Float.abs (cost -. c) <= 1e-9 *. (1.0 +. Float.abs c) in
        cost < c && not tie || (tie && balance < bal)
    in
    if better then best := Some (cost, balance, a, b)
  in
  let mk r0 c0 r1 c1 =
    { rr0 = r0; rc0 = c0; rr1 = r1; rc1 = c1; err = Grid.sse grid ~r0 ~c0 ~r1 ~c1 }
  in
  for r = rr0 to rr1 - 1 do
    consider (mk rr0 rc0 r rc1) (mk (r + 1) rc0 rr1 rc1)
  done;
  for c = rc0 to rc1 - 1 do
    consider (mk rr0 rc0 rr1 c) (mk rr0 (c + 1) rr1 rc1)
  done;
  match !best with None -> None | Some (_, _, a, b) -> Some (a, b)

let build cells ~buckets =
  if buckets < 1 then invalid_arg "Mhist.build: buckets must be >= 1";
  let grid = Grid.make cells in
  let nr = Grid.rows grid and nc = Grid.cols grid in
  (* max-heap on region SSE: always split the worst bucket *)
  let heap = Heap.create ~cmp:(fun a b -> compare b.err a.err) in
  Heap.add heap { rr0 = 0; rc0 = 0; rr1 = nr - 1; rc1 = nc - 1;
                  err = Grid.sse grid ~r0:0 ~c0:0 ~r1:(nr - 1) ~c1:(nc - 1) };
  let finished = ref [] in
  let continue = ref true in
  while !continue && Heap.length heap + List.length !finished < buckets do
    match Heap.pop heap with
    | None -> continue := false
    | Some worst ->
      if worst.err <= 0.0 then begin
        (* everything remaining is already exact *)
        finished := worst :: !finished;
        continue := Heap.length heap > 0
      end
      else begin
        match best_split grid worst with
        | None -> finished := worst :: !finished (* unit region, unsplittable *)
        | Some (a, b) ->
          Heap.add heap a;
          Heap.add heap b
      end
  done;
  let regions = ref !finished in
  Heap.iter (fun r -> regions := r :: !regions) heap;
  let to_bucket r =
    {
      r0 = r.rr0;
      c0 = r.rc0;
      r1 = r.rr1;
      c1 = r.rc1;
      value = Grid.mean grid ~r0:r.rr0 ~c0:r.rc0 ~r1:r.rr1 ~c1:r.rc1;
    }
  in
  { grid_rows = nr; grid_cols = nc; buckets = Array.of_list (List.map to_bucket !regions) }

let bucket_count t = Array.length t.buckets

let point_estimate t ~row ~col =
  if row < 0 || row >= t.grid_rows || col < 0 || col >= t.grid_cols then
    invalid_arg "Mhist.point_estimate: cell out of bounds";
  let found = ref None in
  Array.iter
    (fun b ->
      if row >= b.r0 && row <= b.r1 && col >= b.c0 && col <= b.c1 then found := Some b.value)
    t.buckets;
  match !found with
  | Some v -> v
  | None -> assert false (* buckets tile the grid *)

let range_sum_estimate t ~r0 ~c0 ~r1 ~c1 =
  if r0 > r1 || c0 > c1 then 0.0
  else begin
    if r0 < 0 || c0 < 0 || r1 >= t.grid_rows || c1 >= t.grid_cols then
      invalid_arg "Mhist.range_sum_estimate: block out of bounds";
    let acc = ref 0.0 in
    Array.iter
      (fun b ->
        let or0 = max r0 b.r0 and or1 = min r1 b.r1 in
        let oc0 = max c0 b.c0 and oc1 = min c1 b.c1 in
        if or0 <= or1 && oc0 <= oc1 then
          acc := !acc +. (b.value *. Float.of_int ((or1 - or0 + 1) * (oc1 - oc0 + 1))))
      t.buckets;
    !acc
  end

let sse t cells =
  let acc = ref 0.0 in
  Array.iter
    (fun b ->
      for r = b.r0 to b.r1 do
        for c = b.c0 to b.c1 do
          let d = cells.(r).(c) -. b.value in
          acc := !acc +. (d *. d)
        done
      done)
    t.buckets;
  !acc

let pp ppf t =
  Format.fprintf ppf "@[<v>mhist %dx%d B=%d" t.grid_rows t.grid_cols (Array.length t.buckets);
  Array.iter
    (fun b ->
      Format.fprintf ppf "@,  [%d..%d]x[%d..%d] = %.6g" b.r0 b.r1 b.c0 b.c1 b.value)
    t.buckets;
  Format.fprintf ppf "@]"
