(** MHIST-style multidimensional histograms (Poosala & Ioannidis [PI97],
    "Selectivity Estimation Without the Attribute Value Independence
    Assumption" — the query-optimisation line of work the paper's
    introduction builds on).

    Greedy recursive partitioning of a 2-D grid into B rectangular
    buckets: repeatedly pick the bucket with the largest SSE and split it
    at the (dimension, position) that reduces SSE the most.  Each bucket
    is represented by its mean; 2-D range sums are answered under the
    uniform-within-bucket assumption.

    This generalises the 1-D V-optimal goal greedily (the exact 2-D
    problem is NP-hard), and reduces to a near-V-optimal partition when
    the grid is a single row. *)

type bucket = {
  r0 : int;
  c0 : int;
  r1 : int;
  c1 : int;     (** inclusive cell block *)
  value : float;(** block mean *)
}

type t = private {
  grid_rows : int;
  grid_cols : int;
  buckets : bucket array; (** disjoint blocks covering the grid *)
}

val build : float array array -> buckets:int -> t
(** Partition the grid into at most [buckets] rectangles. *)

val bucket_count : t -> int

val sse : t -> float array array -> float
(** Exact SSE of the representation against the grid. *)

val point_estimate : t -> row:int -> col:int -> float
(** Estimated cell value (the covering bucket's mean). *)

val range_sum_estimate : t -> r0:int -> c0:int -> r1:int -> c1:int -> float
(** Estimated sum over a cell block: per-bucket mean x overlap area. *)

val pp : Format.formatter -> t -> unit
