type t = {
  rows : int;
  cols : int;
  (* (rows+1) x (cols+1) summed-area tables; entry (r, c) covers the cell
     block [0..r-1] x [0..c-1] *)
  sum : float array array;
  sqsum : float array array;
}

let make cells =
  let rows = Array.length cells in
  if rows = 0 then invalid_arg "Grid.make: empty grid";
  let cols = Array.length cells.(0) in
  if cols = 0 then invalid_arg "Grid.make: empty grid";
  Array.iter
    (fun row -> if Array.length row <> cols then invalid_arg "Grid.make: ragged grid")
    cells;
  let sum = Array.make_matrix (rows + 1) (cols + 1) 0.0 in
  let sqsum = Array.make_matrix (rows + 1) (cols + 1) 0.0 in
  for r = 1 to rows do
    for c = 1 to cols do
      let v = cells.(r - 1).(c - 1) in
      sum.(r).(c) <- v +. sum.(r - 1).(c) +. sum.(r).(c - 1) -. sum.(r - 1).(c - 1);
      sqsum.(r).(c) <-
        (v *. v) +. sqsum.(r - 1).(c) +. sqsum.(r).(c - 1) -. sqsum.(r - 1).(c - 1)
    done
  done;
  { rows; cols; sum; sqsum }

let rows t = t.rows
let cols t = t.cols

let block table ~r0 ~c0 ~r1 ~c1 =
  table.(r1 + 1).(c1 + 1) -. table.(r0).(c1 + 1) -. table.(r1 + 1).(c0) +. table.(r0).(c0)

let check t ~r0 ~c0 ~r1 ~c1 =
  if r0 < 0 || c0 < 0 || r1 >= t.rows || c1 >= t.cols then
    invalid_arg "Grid: block out of bounds"

let range_sum t ~r0 ~c0 ~r1 ~c1 =
  if r0 > r1 || c0 > c1 then 0.0
  else begin
    check t ~r0 ~c0 ~r1 ~c1;
    block t.sum ~r0 ~c0 ~r1 ~c1
  end

let range_sqsum t ~r0 ~c0 ~r1 ~c1 =
  if r0 > r1 || c0 > c1 then 0.0
  else begin
    check t ~r0 ~c0 ~r1 ~c1;
    block t.sqsum ~r0 ~c0 ~r1 ~c1
  end

let mean t ~r0 ~c0 ~r1 ~c1 =
  if r0 > r1 || c0 > c1 then 0.0
  else begin
    let cells = Float.of_int ((r1 - r0 + 1) * (c1 - c0 + 1)) in
    range_sum t ~r0 ~c0 ~r1 ~c1 /. cells
  end

let sse t ~r0 ~c0 ~r1 ~c1 =
  if r0 > r1 || c0 > c1 then 0.0
  else begin
    let s = range_sum t ~r0 ~c0 ~r1 ~c1 in
    let q = range_sqsum t ~r0 ~c0 ~r1 ~c1 in
    let cells = Float.of_int ((r1 - r0 + 1) * (c1 - c0 + 1)) in
    Float.max 0.0 (q -. (s *. s /. cells))
  end
