(** Greenwald-Khanna epsilon-approximate quantile summary \[GK01\]
    (cited by the paper as the state of the art for streaming order
    statistics).

    Maintains, in one pass and O((1/epsilon) log(epsilon n)) space, a
    summary from which any quantile can be answered with rank error at most
    [epsilon * n]: for a query phi the returned value's true rank r
    satisfies |r - ceil(phi * n)| <= epsilon * n.

    The implementation lives in the zero-dependency {!Sh_gk.Gk} (shared
    with the telemetry layer's latency quantiles); this module re-exports
    it, so the two views are type-compatible. *)

include module type of struct
  include Sh_gk.Gk
end
