(** Reservoir sampling (Vitter's algorithm R): a uniform random sample of a
    stream of unknown length in one pass — the random-sampling baseline of
    the related-work section ([SRL99]). *)

type t

val create : Sh_util.Rng.t -> size:int -> t
(** Reservoir of [size] slots; [size >= 1]. *)

val add : t -> float -> unit

val seen : t -> int
(** Stream length so far. *)

val sample : t -> float array
(** Current sample (length [min size seen]), in reservoir order. *)

val quantile : t -> float -> float
(** Sample quantile — an estimate of the stream quantile.  Raises
    [Invalid_argument] when empty. *)

val mean : t -> float
(** Sample mean (estimates the stream mean).  Raises when empty. *)

val sum_estimate : t -> float
(** Sample-scaled estimate of the stream sum: mean x seen. *)
