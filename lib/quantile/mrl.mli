(** Merge-and-prune approximate quantiles, after Manku, Rajagopalan &
    Lindsay \[SRL98\] (whose buffer-collapse scheme descends from Munro &
    Paterson \[MP80\] — both cited by the paper).  This is the baseline GK
    \[GK01\] improves on.

    Structure: a cascade of buffers of [buffer_size] sorted values, one
    per level; a buffer at level l represents each stored value with
    weight 2^l.  When two buffers meet at a level they are merged and
    halved (every other element of the merged order survives, with an
    alternating offset to keep ranks unbiased), producing one buffer a
    level up.  Space is O(buffer_size x log(n / buffer_size)); the rank
    error of a query grows with the number of collapses, roughly
    (levels / 2) x (n / buffer_size x levels)... in practice
    n x levels / (2 x buffer_size).  {!rank_error_bound} reports the
    structure's own conservative bound for the current state. *)

type t

val create : buffer_size:int -> t
(** [buffer_size >= 2]. *)

val count : t -> int

val size : t -> int
(** Total values currently stored across all buffers. *)

val insert : t -> float -> unit

val quantile : t -> float -> float
(** [quantile t phi], phi in [\[0, 1\]].  Raises when empty. *)

val rank_error_bound : t -> int
(** Conservative bound on the absolute rank error of any quantile answer,
    given the collapses performed so far. *)
