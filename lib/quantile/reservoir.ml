module Rng = Sh_util.Rng
module Stats = Sh_util.Stats

type t = { rng : Rng.t; slots : float array; mutable filled : int; mutable seen : int }

let create rng ~size =
  if size < 1 then invalid_arg "Reservoir.create: size must be >= 1";
  { rng; slots = Array.make size 0.0; filled = 0; seen = 0 }

let add t v =
  t.seen <- t.seen + 1;
  if t.filled < Array.length t.slots then begin
    t.slots.(t.filled) <- v;
    t.filled <- t.filled + 1
  end
  else begin
    (* Keep v with probability size/seen, replacing a uniform victim. *)
    let j = Rng.int t.rng t.seen in
    if j < Array.length t.slots then t.slots.(j) <- v
  end

let seen t = t.seen
let sample t = Array.sub t.slots 0 t.filled

let quantile t phi =
  if t.filled = 0 then invalid_arg "Reservoir.quantile: empty reservoir";
  Stats.quantile (sample t) phi

let mean t =
  if t.filled = 0 then invalid_arg "Reservoir.mean: empty reservoir";
  Stats.mean (sample t)

let sum_estimate t = if t.filled = 0 then 0.0 else mean t *. Float.of_int t.seen
