(* The GK implementation lives in the zero-dependency [sh_gk] library so
   that lib/obs (which sits below sh_util, and therefore below this
   library) can host latency quantiles on the same summary without a
   dependency cycle.  [Sh_quantile.Gk] stays the public entry point. *)
include Sh_gk.Gk
