type t = {
  k : int;
  mutable pending : float list; (* unsorted level-0 accumulation *)
  mutable pending_len : int;
  mutable levels : float array option array; (* levels.(l): sorted buffer, weight 2^l *)
  mutable n : int;
  mutable flip : bool; (* alternating halving offset keeps ranks unbiased *)
}

let create ~buffer_size =
  if buffer_size < 2 then invalid_arg "Mrl.create: buffer_size must be >= 2";
  { k = buffer_size; pending = []; pending_len = 0; levels = Array.make 8 None; n = 0; flip = false }

let count t = t.n

let size t =
  Array.fold_left (fun acc -> function None -> acc | Some b -> acc + Array.length b)
    t.pending_len t.levels

(* Merge two sorted same-weight buffers and keep every other element of
   the merged order. *)
let merge_halve t a b =
  let k = t.k in
  let merged = Array.make (2 * k) 0.0 in
  let i = ref 0 and j = ref 0 in
  for m = 0 to (2 * k) - 1 do
    if !i < k && (!j >= k || a.(!i) <= b.(!j)) then begin
      merged.(m) <- a.(!i);
      incr i
    end
    else begin
      merged.(m) <- b.(!j);
      incr j
    end
  done;
  let offset = if t.flip then 1 else 0 in
  t.flip <- not t.flip;
  Array.init k (fun m -> merged.((2 * m) + offset))

let rec place t buf level =
  if level >= Array.length t.levels then begin
    let bigger = Array.make (2 * Array.length t.levels) None in
    Array.blit t.levels 0 bigger 0 (Array.length t.levels);
    t.levels <- bigger
  end;
  match t.levels.(level) with
  | None -> t.levels.(level) <- Some buf
  | Some other ->
    t.levels.(level) <- None;
    place t (merge_halve t other buf) (level + 1)

let insert t v =
  if not (Float.is_finite v) then invalid_arg "Mrl.insert: non-finite value";
  t.n <- t.n + 1;
  t.pending <- v :: t.pending;
  t.pending_len <- t.pending_len + 1;
  if t.pending_len = t.k then begin
    let buf = Array.of_list t.pending in
    Array.sort compare buf;
    t.pending <- [];
    t.pending_len <- 0;
    place t buf 0
  end

let quantile t phi =
  if phi < 0.0 || phi > 1.0 then invalid_arg "Mrl.quantile: phi out of [0, 1]";
  if t.n = 0 then invalid_arg "Mrl.quantile: empty summary";
  (* weighted merge of everything retained *)
  let entries = ref (List.map (fun v -> (v, 1)) t.pending) in
  Array.iteri
    (fun level slot ->
      match slot with
      | None -> ()
      | Some buf ->
        let w = 1 lsl level in
        Array.iter (fun v -> entries := (v, w) :: !entries) buf)
    t.levels;
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) !entries in
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 sorted in
  let target = max 1 (min total (int_of_float (ceil (phi *. Float.of_int total)))) in
  let rec walk acc = function
    | [] -> invalid_arg "Mrl.quantile: empty summary"
    | [ (v, _) ] -> v
    | (v, w) :: rest -> if acc + w >= target then v else walk (acc + w) rest
  in
  walk 0 sorted

(* A buffer that reached level l went through l merge-and-halve steps; each
   step at weight w adds at most w rank uncertainty, so its contribution is
   bounded by 2^l - 1.  Query error is at most the sum over live buffers. *)
let rank_error_bound t =
  let acc = ref 0 in
  Array.iteri
    (fun level slot -> match slot with None -> () | Some _ -> acc := !acc + ((1 lsl level) - 1))
    t.levels;
  !acc
