(** Two-tier distributed aggregation: a root that owns client
    connections to N leaf [shist serve] processes and answers the same
    wire protocol they do.

    {2 Key space}

    Each leaf owns a contiguous slice of the global key space in the
    order its address was given: leaf [i] with [s_i] shards owns global
    keys [offset_i .. offset_i + s_i - 1] where
    [offset_i = s_0 + ... + s_{i-1}].  [Key k] requests are routed to
    the owning leaf with the key rebased into the leaf's local space;
    [Global] requests pull one engine snapshot per leaf (the checkpoint
    byte stream over the wire), decode them with the persistence codec,
    splice the per-leaf summaries into one disjoint-key
    {!Stream_histogram.Fw_group} and fold in ascending key order from
    [0.0] — the exact float association the single-process engine's
    [query_global] uses, so a complete answer is bit-identical to a
    one-process oracle fed the same per-key streams.

    {2 Degradation}

    A leaf failure is never a hang and never an exception out of
    {!query} / {!ingest} / {!stats}: every leaf touch is bounded by the
    aggregator timeout, a failed touch marks the leaf down (one cheap
    reconnect attempt per subsequent request), and the caller sees a
    typed partial result — [leaves_missing > 0] with the unreachable
    leaves' contributions answered as [0.0] (queries) or dropped from
    the ack (ingest).  Only {!create} requires every leaf up, because
    that is where the key-space layout is fixed. *)

type t

val create : ?timeout:float -> Sh_net.Addr.t list -> t
(** Connect to every leaf (all must be reachable), probe geometry via
    [Stats] and fix the key-space layout.  Raises
    {!Stream_histogram.Summary_intf.Merge_incompatible} if the leaves
    disagree on [(window, buckets)], {!Sh_net.Client.Net_error} if a leaf is
    unreachable.  [timeout] (default 5 s) bounds every later leaf
    touch. *)

val total_shards : t -> int
val leaf_count : t -> int
val window : t -> int
val buckets : t -> int
val leaf_addrs : t -> Sh_net.Addr.t array

val query :
  t ->
  (Stream_histogram.Query_op.scope * Stream_histogram.Query_op.t) array ->
  float array * int
(** Fan a scoped batch out and merge.  Returns the positional answers
    and the number of distinct leaves that could not contribute; with a
    leaf down, its [Key] answers and its slice of every [Global] answer
    are [0.0].  Raises [Invalid_argument] on an out-of-range key. *)

val ingest : t -> (int * float array) array -> int * int
(** Split the batch across the owning leaves.  Returns
    [(points acked, leaves missing)] — a down leaf's sub-batch is
    dropped, not retried.  Raises [Invalid_argument] on an out-of-range
    key. *)

val stats : t -> Sh_net.Wire.stats * int
(** The tree's geometry with the live leaves' counters summed, plus how
    many leaves could not be reached. *)

val close : t -> unit
(** Drop every leaf connection.  Idempotent. *)

(** {2 Serving the wire protocol}

    The root speaks the same protocol as a leaf, so [shist loadgen] and
    {!Sh_net.Client} work unchanged against it.  [Checkpoint] and [Snapshot]
    are refused with an [Error_reply] (the root holds no state); a
    degraded [Query] answers {!Sh_net.Wire.response.Answers_partial}. *)

type report = {
  connections : int;
  frames_in : int;
  frames_out : int;
  bytes_in : int;
  bytes_out : int;
  points_forwarded : int;  (** points acked by leaves on forwarded ingest *)
  queries_served : int;  (** individual query elements answered *)
  partial_replies : int;  (** [Answers_partial] frames sent *)
  protocol_errors : int;
  idle_closes : int;
}

val run :
  ?idle_timeout:float ->
  ?stop:(unit -> bool) ->
  listeners:Unix.file_descr list ->
  t ->
  unit ->
  report
(** Serve until [Shutdown] or [stop ()].  [listeners] are bound,
    listening, non-blocking sockets (see {!Sh_net.Server.listen}).  Leaf
    fan-out is inline and blocking, bounded per leaf by the aggregator
    timeout. *)
