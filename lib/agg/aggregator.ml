module Codec = Sh_persist.Codec
module SE = Sh_par.Shard_engine
module Q = Stream_histogram.Query_op
module FG = Stream_histogram.Fw_group
module SI = Stream_histogram.Summary_intf
module Wire = Sh_net.Wire
module Client = Sh_net.Client
module Conn = Sh_net.Conn
module Addr = Sh_net.Addr
module Obs = Sh_obs.Obs
module M = Sh_obs.Metric

(* One leaf `shist serve` process.  [shards] and [offset] are fixed at
   creation: the leaf owns global keys [offset .. offset + shards - 1].
   [client] is None while the leaf is down; every touch goes through
   [with_leaf], which reconnects on demand (zero retries, bounded by the
   aggregator timeout) and marks the leaf down again on any transport or
   protocol failure — a dead leaf costs one fast failed connect per
   request, never a hang. *)
type leaf = {
  addr : Addr.t;
  shards : int;
  offset : int;
  mutable client : Client.t option;
}

type t = {
  leaves : leaf array;
  total_shards : int;
  window : int;
  buckets : int;
  timeout : float;
  c_fanouts : M.counter;
  c_leaf_failures : M.counter;
  c_partial : M.counter;
}

let total_shards t = t.total_shards
let leaf_count t = Array.length t.leaves
let window t = t.window
let buckets t = t.buckets

let leaf_addrs t = Array.map (fun l -> l.addr) t.leaves

let create ?(timeout = 5.0) addrs =
  if addrs = [] then invalid_arg "Aggregator.create: no leaves";
  let probed =
    List.map
      (fun addr ->
        let c = Client.connect ~timeout addr in
        let s = Client.stats c in
        (addr, c, s))
      addrs
  in
  (match probed with
  | [] -> assert false
  | (addr0, _, s0) :: rest ->
    List.iter
      (fun (addr, _, s) ->
        if s.Wire.window <> s0.Wire.window || s.Wire.buckets <> s0.Wire.buckets
        then
          SI.merge_incompatiblef
            "aggregate: leaf %s geometry (window %d, buckets %d) differs \
             from leaf %s (window %d, buckets %d)"
            (Addr.to_string addr) s.Wire.window s.Wire.buckets
            (Addr.to_string addr0) s0.Wire.window s0.Wire.buckets)
      rest);
  let offset = ref 0 in
  let leaves =
    Array.of_list
      (List.map
         (fun (addr, c, s) ->
           let l = { addr; shards = s.Wire.shards; offset = !offset; client = Some c } in
           offset := !offset + s.Wire.shards;
           l)
         probed)
  in
  let _, _, s0 = List.hd probed in
  let labels = [ ("instance", Obs.instance "agg") ] in
  {
    leaves;
    total_shards = !offset;
    window = s0.Wire.window;
    buckets = s0.Wire.buckets;
    timeout;
    c_fanouts = Obs.counter ~labels "agg.fanouts";
    c_leaf_failures = Obs.counter ~labels "agg.leaf_failures";
    c_partial = Obs.counter ~labels "agg.partial_replies";
  }

let mark_down t l =
  (match l.client with Some c -> Client.close c | None -> ());
  l.client <- None;
  M.incr t.c_leaf_failures

let close t =
  Array.iter
    (fun l ->
      match l.client with
      | Some c ->
        Client.close c;
        l.client <- None
      | None -> ())
    t.leaves

(* Run [f] against a leaf's client, reconnecting a down leaf on demand
   (one attempt, fail-fast).  Any transport error, protocol garbage, or
   mergeability violation (a leaf restarted with different geometry)
   marks the leaf down and yields [None] — the caller degrades, never
   crashes, never hangs beyond the client timeout. *)
let with_leaf t l f =
  let client =
    match l.client with
    | Some c -> Some c
    | None -> (
      match Client.connect ~timeout:t.timeout ~retries:0 l.addr with
      | c ->
        l.client <- Some c;
        Some c
      | exception (Client.Net_error _ | Codec.Corrupt _ | Codec.Version_mismatch _)
        ->
        M.incr t.c_leaf_failures;
        None
      | exception Unix.Unix_error (_, _, _) ->
        M.incr t.c_leaf_failures;
        None)
  in
  match client with
  | None -> None
  | Some c -> (
    match f c with
    | v -> Some v
    | exception
        ( Client.Net_error _ | Codec.Corrupt _ | Codec.Version_mismatch _
        | SI.Merge_incompatible _ ) ->
      mark_down t l;
      None
    | exception Unix.Unix_error (_, _, _) ->
      mark_down t l;
      None)

let check_key t k =
  if k < 0 || k >= t.total_shards then
    invalid_arg
      (Printf.sprintf "Aggregator: key %d out of range [0, %d)" k t.total_shards)

(* The leaf owning global key [k] (offsets are cumulative and ascending;
   leaf counts are tiny, so a linear scan beats bookkeeping). *)
let route t k =
  let li = ref 0 in
  while k >= t.leaves.(!li).offset + t.leaves.(!li).shards do
    incr li
  done;
  !li

let count_missing missing =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 missing

(* Fan a scoped query batch out.  [Key] elements are routed to their
   owning leaf (rebased to the leaf's local key space) and answered by
   the leaf's own view plane; [Global] elements pull one snapshot per
   live leaf, decode it with the persistence codec, splice the per-leaf
   summaries into one disjoint-key {!Fw_group} and fold — the exact
   ascending-key association the single-process engine uses, so complete
   answers are bit-identical to a one-process oracle over the same
   per-key streams.  Elements whose leaf is down answer 0.0 and the leaf
   counts once toward [leaves_missing]. *)
let query t qs =
  M.incr t.c_fanouts;
  let n = Array.length qs in
  let answers = Array.make n 0.0 in
  let missing = Array.make (Array.length t.leaves) false in
  let per_leaf = Array.make (Array.length t.leaves) [] in
  let globals = ref [] in
  Array.iteri
    (fun i (scope, q) ->
      match scope with
      | Q.Key k ->
        check_key t k;
        let li = route t k in
        per_leaf.(li) <-
          (i, (Q.Key (k - t.leaves.(li).offset), q)) :: per_leaf.(li)
      | Q.Global -> globals := (i, q) :: !globals)
    qs;
  Array.iteri
    (fun li elems ->
      match elems with
      | [] -> ()
      | elems -> (
        let elems = Array.of_list (List.rev elems) in
        let sub = Array.map snd elems in
        match with_leaf t t.leaves.(li) (fun c -> Client.query c sub) with
        | Some out when Array.length out = Array.length elems ->
          Array.iteri (fun j (i, _) -> answers.(i) <- out.(j)) elems
        | Some _ ->
          mark_down t t.leaves.(li);
          missing.(li) <- true
        | None -> missing.(li) <- true))
    per_leaf;
  (match List.rev !globals with
  | [] -> ()
  | gs ->
    let group = ref FG.empty in
    Array.iteri
      (fun li l ->
        match
          with_leaf t l (fun c ->
              FG.of_summaries ~base:l.offset
                (SE.decode_snapshot (Client.snapshot c)))
        with
        | Some g -> group := FG.merge !group g
        | None -> missing.(li) <- true)
      t.leaves;
    List.iter (fun (i, q) -> answers.(i) <- FG.eval_global !group q) gs);
  let lm = count_missing missing in
  if lm > 0 then M.incr t.c_partial;
  (answers, lm)

(* Split an ingest batch across the owning leaves (rebasing keys) and
   forward each sub-batch.  Returns the points actually acked plus how
   many leaves were unreachable — their sub-batches are dropped, which
   the partial ack surfaces to the producer. *)
let ingest t groups =
  M.incr t.c_fanouts;
  Array.iter (fun (k, _) -> check_key t k) groups;
  let per_leaf = Array.make (Array.length t.leaves) [] in
  Array.iter
    (fun (k, vs) ->
      let li = route t k in
      per_leaf.(li) <- (k - t.leaves.(li).offset, vs) :: per_leaf.(li))
    groups;
  let acked = ref 0 in
  let missing = ref 0 in
  Array.iteri
    (fun li gs ->
      match gs with
      | [] -> ()
      | gs -> (
        let sub = Array.of_list (List.rev gs) in
        match with_leaf t t.leaves.(li) (fun c -> Client.ingest c sub) with
        | Some n -> acked := !acked + n
        | None -> incr missing))
    per_leaf;
  (!acked, !missing)

(* Aggregated stats: the tree's geometry plus the sum of the live
   leaves' cumulative counters (a down leaf contributes nothing). *)
let stats t =
  let acc =
    ref
      {
        Wire.shards = t.total_shards;
        window = t.window;
        buckets = t.buckets;
        total_points = 0;
        batches = 0;
        queries = 0;
        backpressure_waits = 0;
        lock_ops = 0;
        query_lock_ops = 0;
        snapshots_published = 0;
      }
  in
  let missing = ref 0 in
  Array.iter
    (fun l ->
      match with_leaf t l Client.stats with
      | Some s ->
        acc :=
          {
            !acc with
            Wire.total_points = !acc.Wire.total_points + s.Wire.total_points;
            batches = !acc.Wire.batches + s.Wire.batches;
            queries = !acc.Wire.queries + s.Wire.queries;
            backpressure_waits =
              !acc.Wire.backpressure_waits + s.Wire.backpressure_waits;
            lock_ops = !acc.Wire.lock_ops + s.Wire.lock_ops;
            query_lock_ops = !acc.Wire.query_lock_ops + s.Wire.query_lock_ops;
            snapshots_published =
              !acc.Wire.snapshots_published + s.Wire.snapshots_published;
          }
      | None -> incr missing)
    t.leaves;
  (!acc, !missing)

(* --- the root serve loop --------------------------------------------- *)

type report = {
  connections : int;
  frames_in : int;
  frames_out : int;
  bytes_in : int;
  bytes_out : int;
  points_forwarded : int;
  queries_served : int;
  partial_replies : int;
  protocol_errors : int;
  idle_closes : int;
}

type client_conn = {
  conn : Conn.t;
  mutable preamble_ok : bool;
  mutable close_after_flush : bool;
}

let keys_ok t arr =
  Array.for_all (fun (k, _) -> k >= 0 && k < t.total_shards) arr

let scopes_ok t qs =
  Array.for_all
    (fun (scope, _) ->
      match scope with
      | Q.Key k -> k >= 0 && k < t.total_shards
      | Q.Global -> true)
    qs

(* Same select/accept/flush skeleton as {!Sh_net.Server.run}, minus the
   cross-connection ingest coalescing (the aggregator holds no engine):
   each request is answered inline by a blocking fan-out to the leaves,
   bounded by the aggregator timeout per leaf touch.  Degradation is in
   the reply, never the transport: a down leaf yields a partial ack or an
   [Answers_partial] frame, and the loop keeps serving. *)
let run ?(idle_timeout = 30.0) ?(stop = fun () -> false) ~listeners t () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let r_connections = ref 0 in
  let r_frames_in = ref 0 in
  let r_frames_out = ref 0 in
  let r_bytes_in = ref 0 in
  let r_bytes_out = ref 0 in
  let r_points = ref 0 in
  let r_queries = ref 0 in
  let r_partial = ref 0 in
  let r_proto_errors = ref 0 in
  let r_idle_closes = ref 0 in
  let clients = ref ([] : client_conn list) in
  let finishing = ref false in
  let send cl resp =
    Conn.send cl.conn (Wire.encode_response resp);
    incr r_frames_out
  in
  let protocol_error cl msg =
    incr r_proto_errors;
    send cl (Wire.Error_reply msg);
    cl.close_after_flush <- true
  in
  let handle cl req =
    match req with
    | Wire.Ingest gs ->
      if not (keys_ok t gs) then
        send cl
          (Wire.Error_reply
             (Printf.sprintf "key out of range [0, %d)" t.total_shards))
      else begin
        let acked, _missing = ingest t gs in
        r_points := !r_points + acked;
        send cl (Wire.Ack acked)
      end
    | Wire.Query qs ->
      if not (scopes_ok t qs) then
        send cl
          (Wire.Error_reply
             (Printf.sprintf "key out of range [0, %d)" t.total_shards))
      else begin
        let answers, leaves_missing = query t qs in
        r_queries := !r_queries + Array.length qs;
        if leaves_missing = 0 then send cl (Wire.Answers answers)
        else begin
          incr r_partial;
          send cl (Wire.Answers_partial { answers; leaves_missing })
        end
      end
    | Wire.Stats ->
      let s, _missing = stats t in
      send cl (Wire.Stats_reply s)
    | Wire.Metrics -> send cl (Wire.Metrics_reply (Obs.render Obs.Prom))
    | Wire.Checkpoint ->
      send cl (Wire.Error_reply "aggregator holds no state to checkpoint")
    | Wire.Snapshot ->
      send cl (Wire.Error_reply "aggregator holds no state to snapshot")
    | Wire.Ping -> send cl Wire.Pong
    | Wire.Shutdown ->
      finishing := true;
      send cl Wire.Shutting_down
  in
  let accept_all lfd =
    let continue = ref true in
    while !continue do
      match Unix.accept lfd with
      | fd, _ ->
        let cl =
          { conn = Conn.create fd; preamble_ok = false; close_after_flush = false }
        in
        Conn.send cl.conn Wire.preamble;
        incr r_connections;
        clients := cl :: !clients
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
        continue := false
    done
  in
  let drain_client cl =
    try
      if not cl.preamble_ok then begin
        match Conn.peek cl.conn Wire.preamble_len with
        | None -> ()
        | Some s ->
          Wire.check_preamble s;
          Conn.consume cl.conn Wire.preamble_len;
          cl.preamble_ok <- true
      end;
      if cl.preamble_ok then begin
        let continue = ref true in
        while !continue do
          match Conn.next_frame ~max_len:Wire.max_frame_payload cl.conn with
          | None -> continue := false
          | Some payload ->
            incr r_frames_in;
            handle cl (Wire.decode_request payload)
        done
      end
    with
    | Codec.Corrupt msg -> protocol_error cl ("corrupt frame: " ^ msg)
    | Codec.Version_mismatch { found; expected } ->
      protocol_error cl
        (Printf.sprintf "protocol version %d, this aggregator speaks %d" found
           expected)
  in
  let running = ref true in
  while !running do
    let read_fds =
      if !finishing then []
      else
        List.rev_append listeners
          (List.filter_map
             (fun cl ->
               if cl.close_after_flush || Conn.closed cl.conn then None
               else Some (Conn.fd cl.conn))
             !clients)
    in
    let write_fds =
      List.filter_map
        (fun cl ->
          if Conn.pending_out cl.conn && not (Conn.closed cl.conn) then
            Some (Conn.fd cl.conn)
          else None)
        !clients
    in
    let readable, _, _ =
      try Unix.select read_fds write_fds [] 0.05
      with Unix.Unix_error (EINTR, _, _) -> ([], [], [])
    in
    List.iter
      (fun fd ->
        if List.memq fd listeners then accept_all fd
        else
          match
            List.find_opt
              (fun cl -> (not (Conn.closed cl.conn)) && Conn.fd cl.conn == fd)
              !clients
          with
          | None -> ()
          | Some cl -> (
            match Conn.read_into cl.conn with
            | `Data n ->
              r_bytes_in := !r_bytes_in + n;
              drain_client cl
            | `Again -> ()
            | `Eof -> Conn.close cl.conn))
      readable;
    List.iter
      (fun cl ->
        if Conn.pending_out cl.conn && not (Conn.closed cl.conn) then begin
          let before = Conn.bytes_out cl.conn in
          (match Conn.flush cl.conn with
          | `Flushed | `Blocked -> ()
          | `Closed -> Conn.close cl.conn);
          r_bytes_out := !r_bytes_out + (Conn.bytes_out cl.conn - before)
        end)
      !clients;
    clients :=
      List.filter
        (fun cl ->
          let gone = Conn.closed cl.conn in
          let flushed_goodbye =
            cl.close_after_flush && not (Conn.pending_out cl.conn)
          in
          let idle_kill =
            idle_timeout > 0.
            && Conn.idle_for cl.conn > idle_timeout
            && ((not cl.preamble_ok) || Conn.buffered cl.conn > 0)
          in
          if idle_kill && not gone then incr r_idle_closes;
          if gone || flushed_goodbye || idle_kill then begin
            Conn.close cl.conn;
            false
          end
          else true)
        !clients;
    if stop () then running := false
    else if
      !finishing
      && List.for_all (fun cl -> not (Conn.pending_out cl.conn)) !clients
    then running := false
  done;
  List.iter (fun cl -> Conn.close cl.conn) !clients;
  {
    connections = !r_connections;
    frames_in = !r_frames_in;
    frames_out = !r_frames_out;
    bytes_in = !r_bytes_in;
    bytes_out = !r_bytes_out;
    points_forwarded = !r_points;
    queries_served = !r_queries;
    partial_replies = !r_partial;
    protocol_errors = !r_proto_errors;
    idle_closes = !r_idle_closes;
  }
