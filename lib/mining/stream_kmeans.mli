(** One-pass k-means clustering of a stream of vectors, after the
    two-phase STREAM scheme of Guha, Mishra, Motwani & O'Callaghan
    \[GMMO00\] (cited by the paper as the companion stream-clustering
    result): buffer a chunk of points, reduce it to k weighted centroids
    with (weighted) k-means++, keep only the centroids, and periodically
    re-cluster the retained centroids so memory stays bounded.

    The guarantee of the original paper is for k-median; this
    implementation follows the same structure with the k-means objective,
    which is what the experiments use. *)

type t

val create : Sh_util.Rng.t -> k:int -> dim:int -> chunk_size:int -> t
(** [chunk_size] points are buffered per phase-1 reduction;
    [chunk_size >= k >= 1]. *)

val add : t -> float array -> unit
(** Feed the next vector (length [dim]). *)

val points_seen : t -> int

val centroids : t -> (float array * float) array
(** Current k (or fewer) cluster centres with their absorbed weights.
    Flushes buffered points first. *)

val assign : t -> float array -> int
(** Index (into {!centroids}) of the nearest centre.  Raises
    [Invalid_argument] before any point has been added. *)

val cost : t -> float array array -> float
(** Sum over the given vectors of squared distance to their nearest
    centre — the k-means objective, for evaluating clustering quality. *)

val kmeans :
  Sh_util.Rng.t ->
  k:int -> ?weights:float array -> ?iterations:int -> float array array ->
  (float array * float) array
(** The offline weighted k-means++ used internally, exposed as the
    batch baseline: returns (centre, weight) pairs. *)
