(** Misra-Gries heavy hitters: one-pass frequency estimation over a
    stream of (discretised) values in O(capacity) space.

    Guarantee: for every value v with true count c(v) over n stream
    points, the reported estimate e(v) satisfies
    [c(v) - n / (capacity + 1) <= e(v) <= c(v)], so every value occurring
    more than [n / (capacity + 1)] times is present in the summary.
    Complements the histogram synopses with a frequency view (fault /
    flow-type streams in the paper's introduction). *)

type t

val create : capacity:int -> t
(** Track at most [capacity] candidate values ([>= 1]). *)

val add : ?count:int -> t -> float -> unit
(** Observe a value ([count] occurrences at once, default 1). *)

val total : t -> int
(** Stream length so far (sum of counts). *)

val estimate : t -> float -> int
(** Estimated count for a value; 0 when not tracked. *)

val heavy_hitters : t -> threshold:float -> (float * int) list
(** Values whose estimated frequency is at least [threshold] (a fraction
    of the stream), with estimates, most frequent first.  Guaranteed to
    include every value with true frequency
    [>= threshold + 1 / (capacity + 1)]. *)

val tracked : t -> (float * int) list
(** Full summary contents, most frequent first. *)

(** {2 Introspection} *)

type work_counters = {
  observations : int;  (** stream length so far — equals {!total} *)
  adds : int;  (** {!add} calls *)
  decrement_rounds : int;  (** Misra-Gries decrement steps performed *)
  evictions : int;  (** counters dropped at zero during those steps *)
}

val work_counters : t -> work_counters
(** Cumulative per-instance work accounting, backed by the shared
    {!Sh_obs} registry (series [hh.*{instance="hh<i>"}]) rather than
    private fields — the same accessor shape as
    [Fixed_window.work_counters]. *)
