module Rng = Sh_util.Rng

let sq_dist a b =
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  !acc

let nearest centres p =
  let best = ref 0 and best_d = ref infinity in
  Array.iteri
    (fun i c ->
      let d = sq_dist c p in
      if d < !best_d then begin
        best_d := d;
        best := i
      end)
    centres;
  (!best, !best_d)

(* Weighted k-means++ seeding: each next seed is drawn with probability
   proportional to weight x squared distance to the nearest seed so far. *)
let seed_plus_plus rng ~k ~weights points =
  let n = Array.length points in
  let seeds = Array.make k points.(Rng.int rng n) in
  let d2 = Array.init n (fun i -> weights.(i) *. sq_dist points.(i) seeds.(0)) in
  for s = 1 to k - 1 do
    let total = Array.fold_left ( +. ) 0.0 d2 in
    let pick =
      if total <= 0.0 then Rng.int rng n
      else begin
        let target = Rng.float rng total in
        let acc = ref 0.0 and chosen = ref (n - 1) in
        (try
           Array.iteri
             (fun i d ->
               acc := !acc +. d;
               if !acc >= target then begin
                 chosen := i;
                 raise Exit
               end)
             d2
         with Exit -> ());
        !chosen
      end
    in
    seeds.(s) <- points.(pick);
    Array.iteri
      (fun i p -> d2.(i) <- Float.min d2.(i) (weights.(i) *. sq_dist p seeds.(s)))
      points
  done;
  seeds

let kmeans rng ~k ?weights ?(iterations = 20) points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Stream_kmeans.kmeans: no points";
  if k < 1 then invalid_arg "Stream_kmeans.kmeans: k must be >= 1";
  let dim = Array.length points.(0) in
  let weights = match weights with None -> Array.make n 1.0 | Some w -> w in
  if Array.length weights <> n then invalid_arg "Stream_kmeans.kmeans: weights length mismatch";
  let k = min k n in
  let centres = Array.map Array.copy (seed_plus_plus rng ~k ~weights points) in
  let assignment = Array.make n 0 in
  let changed = ref true in
  let iter = ref 0 in
  while !changed && !iter < iterations do
    incr iter;
    changed := false;
    Array.iteri
      (fun i p ->
        let a, _ = nearest centres p in
        if a <> assignment.(i) then begin
          assignment.(i) <- a;
          changed := true
        end)
      points;
    (* weighted centroid update; empty clusters keep their centre *)
    let sums = Array.init k (fun _ -> Array.make dim 0.0) in
    let mass = Array.make k 0.0 in
    Array.iteri
      (fun i p ->
        let a = assignment.(i) in
        mass.(a) <- mass.(a) +. weights.(i);
        for d = 0 to dim - 1 do
          sums.(a).(d) <- sums.(a).(d) +. (weights.(i) *. p.(d))
        done)
      points;
    Array.iteri
      (fun c s ->
        if mass.(c) > 0.0 then
          centres.(c) <- Array.map (fun x -> x /. mass.(c)) s)
      sums
  done;
  (* attach final weights *)
  let mass = Array.make k 0.0 in
  Array.iteri (fun i p -> let a, _ = nearest centres p in mass.(a) <- mass.(a) +. weights.(i))
    points;
  Array.init k (fun c -> (centres.(c), mass.(c)))

type t = {
  rng : Rng.t;
  k : int;
  dim : int;
  chunk_size : int;
  buffer : float array Sh_util.Vec.t;           (* raw points awaiting reduction *)
  summary : (float array * float) Sh_util.Vec.t;(* weighted centroids retained *)
  mutable seen : int;
}

let create rng ~k ~dim ~chunk_size =
  if k < 1 then invalid_arg "Stream_kmeans.create: k must be >= 1";
  if dim < 1 then invalid_arg "Stream_kmeans.create: dim must be >= 1";
  if chunk_size < k then invalid_arg "Stream_kmeans.create: chunk_size must be >= k";
  {
    rng;
    k;
    dim;
    chunk_size;
    buffer = Sh_util.Vec.create ();
    summary = Sh_util.Vec.create ();
    seen = 0;
  }

(* Phase-1 reduction of the raw buffer into k weighted centroids. *)
let reduce_buffer t =
  if not (Sh_util.Vec.is_empty t.buffer) then begin
    let points = Sh_util.Vec.to_array t.buffer in
    Sh_util.Vec.clear t.buffer;
    Array.iter (fun c -> Sh_util.Vec.push t.summary c) (kmeans t.rng ~k:t.k points)
  end

(* Phase-2: when the retained centroids outgrow a chunk, re-cluster them
   (weighted) back down to k. *)
let compact_summary t =
  if Sh_util.Vec.length t.summary > t.chunk_size then begin
    let entries = Sh_util.Vec.to_array t.summary in
    Sh_util.Vec.clear t.summary;
    let points = Array.map fst entries in
    let weights = Array.map snd entries in
    Array.iter (fun c -> Sh_util.Vec.push t.summary c) (kmeans t.rng ~k:t.k ~weights points)
  end

let add t p =
  if Array.length p <> t.dim then invalid_arg "Stream_kmeans.add: dimension mismatch";
  t.seen <- t.seen + 1;
  Sh_util.Vec.push t.buffer (Array.copy p);
  if Sh_util.Vec.length t.buffer >= t.chunk_size then begin
    reduce_buffer t;
    compact_summary t
  end

let points_seen t = t.seen

let centroids t =
  reduce_buffer t;
  compact_summary t;
  if Sh_util.Vec.is_empty t.summary then [||]
  else begin
    let entries = Sh_util.Vec.to_array t.summary in
    if Array.length entries <= t.k then entries
    else begin
      let points = Array.map fst entries in
      let weights = Array.map snd entries in
      kmeans t.rng ~k:t.k ~weights points
    end
  end

let assign t p =
  let cs = centroids t in
  if Array.length cs = 0 then invalid_arg "Stream_kmeans.assign: no points seen";
  fst (nearest (Array.map fst cs) p)

let cost t data =
  let cs = centroids t in
  if Array.length cs = 0 then invalid_arg "Stream_kmeans.cost: no points seen";
  let centres = Array.map fst cs in
  Array.fold_left (fun acc p -> acc +. snd (nearest centres p)) 0.0 data
