(** Distribution-change detection on a stream from histogram synopses —
    the stream-mining application the paper's conclusion singles out
    ("the incremental nature of our algorithms makes them applicable to
    mining problems in data streams").

    The detector maintains two fixed-window histograms: one over the most
    recent [window] points and one over the [window] points before those.
    A change is flagged when the L2 distance between the reconstructed
    window approximations exceeds [threshold].  Everything is computed
    from the synopses; the raw stream is never retained beyond the
    reference lag. *)

type t

type verdict = Stable | Drift of float  (** distance that crossed the threshold *)

val create :
  window:int -> buckets:int -> epsilon:float -> threshold:float -> ?check_every:int -> unit -> t
(** [check_every] (default [window / 8]) limits how often the (costly)
    histogram refresh runs. *)

val push : t -> float -> verdict
(** Feed the next point; returns [Drift d] on ticks where the detector
    re-evaluated and found the windows further apart than the threshold. *)

val last_distance : t -> float
(** Distance from the most recent evaluation ([0.] before the first). *)

val points_seen : t -> int
