type t = {
  capacity : int;
  counters : (float, int ref) Hashtbl.t;
  mutable total : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Heavy_hitters.create: capacity must be >= 1";
  { capacity; counters = Hashtbl.create (2 * capacity); total = 0 }

(* Misra-Gries decrement step: when a new value needs a slot and all
   [capacity] slots are taken, decrement every counter and evict zeros. *)
let make_room t =
  let victims = ref [] in
  Hashtbl.iter
    (fun v c ->
      decr c;
      if !c <= 0 then victims := v :: !victims)
    t.counters;
  List.iter (Hashtbl.remove t.counters) !victims

let add ?(count = 1) t v =
  if count < 1 then invalid_arg "Heavy_hitters.add: count must be >= 1";
  t.total <- t.total + count;
  match Hashtbl.find_opt t.counters v with
  | Some c -> c := !c + count
  | None ->
    if Hashtbl.length t.counters < t.capacity then Hashtbl.replace t.counters v (ref count)
    else begin
      (* absorb the new value's occurrences one decrement round at a time;
         for batched counts, rounds repeat until the count is exhausted or
         the value wins a slot *)
      let remaining = ref count in
      while !remaining > 0 do
        if Hashtbl.length t.counters < t.capacity then begin
          Hashtbl.replace t.counters v (ref !remaining);
          remaining := 0
        end
        else begin
          make_room t;
          decr remaining
        end
      done
    end

let total t = t.total

let estimate t v = match Hashtbl.find_opt t.counters v with Some c -> !c | None -> 0

let tracked t =
  let entries = Hashtbl.fold (fun v c acc -> (v, !c) :: acc) t.counters [] in
  List.sort (fun (_, c1) (_, c2) -> compare c2 c1) entries

let heavy_hitters t ~threshold =
  let cutoff = threshold *. Float.of_int t.total in
  List.filter (fun (_, c) -> Float.of_int c >= cutoff) (tracked t)
