module Obs = Sh_obs.Obs
module M = Sh_obs.Metric

type work_counters = {
  observations : int;
  adds : int;
  decrement_rounds : int;
  evictions : int;
}

type t = {
  capacity : int;
  counters : (float, int ref) Hashtbl.t;
  (* Work accounting in per-instance registry series (hh.*{instance=...}),
     replacing the private total field: the stream length is now the
     hh.observations counter, shared with the exposition sinks. *)
  c_observations : M.counter;
  c_adds : M.counter;
  c_rounds : M.counter;
  c_evictions : M.counter;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Heavy_hitters.create: capacity must be >= 1";
  let labels = [ ("instance", Obs.instance "hh") ] in
  let c name = Obs.counter ~labels name in
  {
    capacity;
    counters = Hashtbl.create (2 * capacity);
    c_observations = c "hh.observations";
    c_adds = c "hh.adds";
    c_rounds = c "hh.decrement_rounds";
    c_evictions = c "hh.evictions";
  }

(* Misra-Gries decrement step: when a new value needs a slot and all
   [capacity] slots are taken, decrement every counter and evict zeros. *)
let make_room t =
  M.incr t.c_rounds;
  let victims = ref [] in
  Hashtbl.iter
    (fun v c ->
      decr c;
      if !c <= 0 then victims := v :: !victims)
    t.counters;
  M.add t.c_evictions (List.length !victims);
  List.iter (Hashtbl.remove t.counters) !victims

let add ?(count = 1) t v =
  if count < 1 then invalid_arg "Heavy_hitters.add: count must be >= 1";
  M.incr t.c_adds;
  M.add t.c_observations count;
  match Hashtbl.find_opt t.counters v with
  | Some c -> c := !c + count
  | None ->
    if Hashtbl.length t.counters < t.capacity then Hashtbl.replace t.counters v (ref count)
    else begin
      (* absorb the new value's occurrences one decrement round at a time;
         for batched counts, rounds repeat until the count is exhausted or
         the value wins a slot *)
      let remaining = ref count in
      while !remaining > 0 do
        if Hashtbl.length t.counters < t.capacity then begin
          Hashtbl.replace t.counters v (ref !remaining);
          remaining := 0
        end
        else begin
          make_room t;
          decr remaining
        end
      done
    end

let total t = M.value t.c_observations

let estimate t v = match Hashtbl.find_opt t.counters v with Some c -> !c | None -> 0

let tracked t =
  let entries = Hashtbl.fold (fun v c acc -> (v, !c) :: acc) t.counters [] in
  List.sort (fun (_, c1) (_, c2) -> compare c2 c1) entries

let heavy_hitters t ~threshold =
  let cutoff = threshold *. Float.of_int (total t) in
  List.filter (fun (_, c) -> Float.of_int c >= cutoff) (tracked t)

let work_counters t =
  {
    observations = M.value t.c_observations;
    adds = M.value t.c_adds;
    decrement_rounds = M.value t.c_rounds;
    evictions = M.value t.c_evictions;
  }
