module FW = Stream_histogram.Fixed_window
module H = Sh_histogram.Histogram

type t = {
  recent : FW.t;
  reference : FW.t;
  lag : float Queue.t; (* values in flight between the two windows *)
  window : int;
  threshold : float;
  check_every : int;
  mutable seen : int;
  mutable last_distance : float;
}

type verdict = Stable | Drift of float

let create ~window ~buckets ~epsilon ~threshold ?check_every () =
  if threshold <= 0.0 then invalid_arg "Change_detector.create: threshold must be > 0";
  let check_every = match check_every with None -> max 1 (window / 8) | Some c -> max 1 c in
  {
    recent = FW.create ~window ~buckets ~epsilon;
    reference = FW.create ~window ~buckets ~epsilon;
    lag = Queue.create ();
    window;
    threshold;
    check_every;
    seen = 0;
    last_distance = 0.0;
  }

(* Root-mean-square distance between the two reconstructed windows. *)
let distance t =
  let a = H.to_series (FW.current_histogram t.recent) in
  let b = H.to_series (FW.current_histogram t.reference) in
  sqrt (Sh_util.Metrics.sse a b /. Float.of_int (Array.length a))

let push t v =
  t.seen <- t.seen + 1;
  FW.push t.recent v;
  Queue.push v t.lag;
  if Queue.length t.lag > t.window then FW.push t.reference (Queue.pop t.lag);
  (* evaluate only once both windows are fully populated *)
  if t.seen >= 2 * t.window && t.seen mod t.check_every = 0 then begin
    let d = distance t in
    t.last_distance <- d;
    if d > t.threshold then Drift d else Stable
  end
  else Stable

let last_distance t = t.last_distance
let points_seen t = t.seen
