(* Open-addressing int-key -> float memo table with O(1) generational
   clear.  Built for per-refresh memoisation on streaming hot paths:

   - keys are single immediates (callers pack whatever tuple they need
     into one int), values live in an unboxed float array — no boxing on
     lookup or insert;
   - linear probing over a power-of-two table, 50% max load;
   - [next_generation] invalidates every entry by bumping a stamp instead
     of refilling the arrays, so "clearing" between refreshes is O(1) and
     the arena is reused forever — steady state allocates nothing. *)

type t = {
  mutable keys : int array;
  mutable vals : float array;
  mutable stamps : int array; (* slot is live iff stamps.(i) = gen *)
  mutable mask : int;         (* capacity - 1; capacity is a power of two *)
  mutable live : int;         (* live entries in the current generation *)
  mutable gen : int;          (* current generation; stamps start at 0 *)
}

let create ?(init_bits = 10) () =
  if init_bits < 1 || init_bits > 40 then invalid_arg "Intmemo.create: bad init_bits";
  let cap = 1 lsl init_bits in
  { keys = Array.make cap 0; vals = Array.make cap 0.0; stamps = Array.make cap 0;
    mask = cap - 1; live = 0; gen = 1 }

let capacity t = t.mask + 1
let live t = t.live
let generation t = t.gen

let next_generation t =
  t.gen <- t.gen + 1;
  t.live <- 0

(* Murmur3 finalizer (truncated to OCaml's 63-bit ints): cheap and mixes
   the packed-tuple keys well enough for linear probing. *)
let[@inline] mix k =
  let k = k lxor (k lsr 33) in
  let k = k * 0xFF51AFD7ED558CC in
  let k = k lxor (k lsr 29) in
  let k = k * 0x4CF5AD432745937 in
  k lxor (k lsr 32)

(* Live slot holding [key], or -1.  No allocation. *)
let find_slot t key =
  let mask = t.mask in
  let keys = t.keys and stamps = t.stamps in
  let gen = t.gen in
  let i = ref (mix key land mask) in
  let res = ref (-2) in
  while !res = -2 do
    if Array.unsafe_get stamps !i <> gen then res := -1
    else if Array.unsafe_get keys !i = key then res := !i
    else i := (!i + 1) land mask
  done;
  if !res = -1 then -1 else !res

let[@inline] get t slot = Array.unsafe_get t.vals slot

let vals t = t.vals

let rec grow t =
  let ocap = t.mask + 1 in
  let okeys = t.keys and ovals = t.vals and ostamps = t.stamps in
  let ogen = t.gen in
  t.keys <- Array.make (2 * ocap) 0;
  t.vals <- Array.make (2 * ocap) 0.0;
  t.stamps <- Array.make (2 * ocap) 0;
  t.mask <- (2 * ocap) - 1;
  t.live <- 0;
  for i = 0 to ocap - 1 do
    if ostamps.(i) = ogen then begin
      let s = reserve t okeys.(i) in
      Array.unsafe_set t.vals s ovals.(i)
    end
  done

(* The slot for [key] — the live one holding it, or a fresh claim.
   Amortised O(1); doubles (rehashing only the live generation) past 50%
   load, so probe chains stay short.  Split from [add] so callers can
   store the value themselves: passing a float across the module boundary
   would box it (see Sliding_prefix.sqerror_into), whereas an int slot
   plus a store into {!vals} never allocates. *)
and reserve t key =
  if 2 * (t.live + 1) > t.mask + 1 then grow t;
  let mask = t.mask in
  let keys = t.keys and stamps = t.stamps in
  let gen = t.gen in
  let i = ref (mix key land mask) in
  while Array.unsafe_get stamps !i = gen && Array.unsafe_get keys !i <> key do
    i := (!i + 1) land mask
  done;
  if Array.unsafe_get stamps !i <> gen then begin
    t.live <- t.live + 1;
    Array.unsafe_set stamps !i gen;
    Array.unsafe_set keys !i key
  end;
  !i

let add t key value =
  let s = reserve t key in
  Array.unsafe_set t.vals s value
