let sum xs =
  (* Kahan summation: the compensation term recovers low-order bits lost
     when adding a small element to a large running total. *)
  let total = ref 0.0 and comp = ref 0.0 in
  for i = 0 to Array.length xs - 1 do
    let y = xs.(i) -. !comp in
    let t = !total +. y in
    comp := t -. !total -. y;
    total := t
  done;
  !total

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else sum xs /. Float.of_int n

let variance xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.map (fun x -> (x -. m) *. (x -. m)) xs in
    sum acc /. Float.of_int n
  end

let stddev xs = sqrt (variance xs)

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty array";
  let lo = ref xs.(0) and hi = ref xs.(0) in
  for i = 1 to Array.length xs - 1 do
    if xs.(i) < !lo then lo := xs.(i);
    if xs.(i) > !hi then hi := xs.(i)
  done;
  (!lo, !hi)

let quantile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.quantile: empty array";
  if p < 0.0 || p > 1.0 then invalid_arg "Stats.quantile: p out of [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let pos = p *. Float.of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = pos -. Float.of_int lo in
    ((1.0 -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))
  end

let median xs = quantile xs 0.5

let sse_about_mean xs lo hi =
  if lo > hi then 0.0
  else begin
    let slice = Array.sub xs lo (hi - lo + 1) in
    let m = mean slice in
    sum (Array.map (fun x -> (x -. m) *. (x -. m)) slice)
  end

let histogram_counts xs ~bins ~lo ~hi =
  if bins <= 0 then invalid_arg "Stats.histogram_counts: bins must be positive";
  if hi <= lo then invalid_arg "Stats.histogram_counts: empty range";
  let counts = Array.make bins 0 in
  let width = (hi -. lo) /. Float.of_int bins in
  Array.iter
    (fun x ->
      let b = int_of_float ((x -. lo) /. width) in
      let b = if b < 0 then 0 else if b >= bins then bins - 1 else b in
      counts.(b) <- counts.(b) + 1)
    xs;
  counts
