(* Struct-of-arrays row store: a fixed set of unboxed [float array] and
   [int array] columns sharing one length and one capacity.  Replaces
   boxed-record Vecs on hot paths — a row is spread across flat columns,
   so pushing a row allocates nothing (stores into preallocated arrays)
   and scans touch only the columns they read.

   Like Vec, growth doubles capacity and [clear] keeps the backing
   arrays, so steady-state clear-and-refill cycles are allocation-free;
   the [soa.allocations] gauge counts every backing growth so regression
   tests can pin that. *)

type t = {
  nf : int;
  ni : int;
  mutable cap : int;
  mutable len : int;
  mutable fcols : float array array; (* nf arrays of length cap *)
  mutable icols : int array array;   (* ni arrays of length cap *)
}

let allocations = Sh_obs.Obs.gauge "soa.allocations"

let create ?(init_cap = 0) ~fcols ~icols () =
  if fcols < 0 || icols < 0 || fcols + icols = 0 then
    invalid_arg "Soa.create: need at least one column";
  if init_cap < 0 then invalid_arg "Soa.create: negative capacity";
  {
    nf = fcols;
    ni = icols;
    cap = init_cap;
    len = 0;
    fcols = Array.init fcols (fun _ -> Array.make (max init_cap 1) 0.0);
    icols = Array.init icols (fun _ -> Array.make (max init_cap 1) 0);
  }

let length t = t.len
let capacity t = t.cap
let is_empty t = t.len = 0
let float_cols t = t.nf
let int_cols t = t.ni
let clear t = t.len <- 0

let grow t =
  let ncap = max 8 (2 * t.cap) in
  t.fcols <-
    Array.map
      (fun col ->
        let ncol = Array.make ncap 0.0 in
        Array.blit col 0 ncol 0 t.len;
        ncol)
      t.fcols;
  t.icols <-
    Array.map
      (fun col ->
        let ncol = Array.make ncap 0 in
        Array.blit col 0 ncol 0 t.len;
        ncol)
      t.icols;
  t.cap <- ncap;
  Sh_obs.Metric.gincr allocations

(* Append one row (fields keep whatever the buffer held; callers set every
   column they read) and return its index. *)
let add_row t =
  if t.len = t.cap then grow t;
  let r = t.len in
  t.len <- r + 1;
  r

let check_row t i = if i < 0 || i >= t.len then invalid_arg "Soa: row out of bounds"

let[@inline] get_f t ~col i =
  check_row t i;
  t.fcols.(col).(i)

let[@inline] set_f t ~col i x =
  check_row t i;
  t.fcols.(col).(i) <- x

let[@inline] get_i t ~col i =
  check_row t i;
  t.icols.(col).(i)

let[@inline] set_i t ~col i x =
  check_row t i;
  t.icols.(col).(i) <- x

(* Raw column access for hot loops: the backing array, of length
   [capacity t] >= [length t], valid until the next growth.  Callers must
   confine reads to rows [0 .. length t - 1]. *)
let[@inline] fcol t col = t.fcols.(col)
let[@inline] icol t col = t.icols.(col)

(* First row in [lo, hi) whose [col] value is >= [target] ([hi] when none):
   the standard lower-bound search, valid when the column is sorted
   non-decreasing over the range. *)
let bsearch_ge t ~col ?(lo = 0) ?hi target =
  let hi = match hi with None -> t.len | Some h -> h in
  if lo < 0 || hi > t.len || lo > hi then invalid_arg "Soa.bsearch_ge: bad range";
  let c = t.icols.(col) in
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Array.unsafe_get c mid >= target then hi := mid else lo := mid + 1
  done;
  !lo
