(** Minimal growable array (OCaml 5.1 predates stdlib [Dynarray]). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Append at the end; amortised O(1). *)

val get : 'a t -> int -> 'a
(** 0-based.  Raises [Invalid_argument] when out of bounds. *)

val set : 'a t -> int -> 'a -> unit

val last : 'a t -> 'a
(** Raises [Invalid_argument] when empty. *)

val clear : 'a t -> unit
(** Drop all elements (keeps capacity). *)

val binary_search : ?lo:int -> ?hi:int -> 'a t -> f:('a -> bool) -> int
(** Partition point: the smallest index [i] in [\[lo, hi)] (default the whole
    vector) with [f (get t i)] true, or [hi] when no element satisfies [f].
    Requires [f] to be monotone along the vector — false on a (possibly
    empty) prefix, true from some index on.  Raises [Invalid_argument] on a
    bad range. *)

val iter : ('a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_array : 'a t -> 'a array

val allocations : Sh_obs.Metric.gauge
(** Process-wide count of backing-array growths, exported as the
    ["vec.allocations"] gauge: steady-state streaming (clear-and-refill
    per refresh) must not move it. *)
