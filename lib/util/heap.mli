(** Array-backed binary min-heap with an explicit comparator. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Empty heap ordered by [cmp] (smallest element at the top). *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val add : 'a t -> 'a -> unit
(** O(log n). *)

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element.  O(log n). *)

val pop_exn : 'a t -> 'a
(** Like {!pop} but raises [Invalid_argument] on an empty heap. *)

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t

val iter : ('a -> unit) -> 'a t -> unit
(** Visit every element in unspecified (heap-internal) order. *)
