(** Open-addressing int-key -> float memo table with O(1) generational
    clear.

    The per-refresh cache of the fixed-window kernel: keys are single
    immediate ints (pack composite keys yourself), values are unboxed
    floats, probing is linear over a power-of-two table kept under 50%
    load.  {!next_generation} invalidates everything by bumping a stamp —
    no refill — so a table cleared between refreshes reuses its arena and
    allocates only on capacity growth (amortised never, in steady state).

    Lookup is split into {!find_slot} / {!get} so the hit path returns the
    value without boxing an option. *)

type t

val create : ?init_bits:int -> unit -> t
(** A table of [2^init_bits] slots (default 10).  Raises
    [Invalid_argument] outside [1 .. 40]. *)

val capacity : t -> int
val live : t -> int
(** Entries stored in the current generation. *)

val generation : t -> int

val next_generation : t -> unit
(** Invalidate every entry in O(1).  Slots and capacity are kept. *)

val find_slot : t -> int -> int
(** The live slot holding the key, or [-1].  Never allocates. *)

val get : t -> int -> float
(** Value at a slot returned by {!find_slot} ([>= 0]), valid until the
    next {!add} or {!next_generation}.  Trusted index — no bounds check. *)

val add : t -> int -> float -> unit
(** Insert or overwrite: {!reserve} plus the value store.  Amortised O(1);
    doubling rehashes only the live generation.  Note the float argument
    crosses the module boundary boxed — allocation-free callers should use
    {!reserve} / {!vals} instead. *)

val reserve : t -> int -> int
(** The slot for a key — the live slot already holding it, or a fresh
    claim (growing if needed).  The caller stores the value into {!vals}
    at the returned index; an unwritten reserved slot holds a stale value.
    Never allocates except on growth. *)

val vals : t -> float array
(** The value column, indexed by {!find_slot} / {!reserve} slots.  Valid
    until the next growth — re-fetch after any {!reserve} / {!add}. *)
