(** Estimation-error metrics used throughout the evaluation.

    Section 5.1 of the paper measures accuracy as the average error of a
    batch of random range queries; this module provides that aggregation
    together with the standard companions (RMSE, relative error). *)

type summary = {
  count : int;          (** number of (estimate, truth) pairs *)
  mae : float;          (** mean absolute error *)
  rmse : float;         (** root mean squared error *)
  mean_rel : float;     (** mean relative error, guarded against 0 truth *)
  max_abs : float;      (** worst absolute error *)
}

val pp_summary : Format.formatter -> summary -> unit

val summarize : estimates:float array -> truths:float array -> summary
(** Pairwise error summary.  Raises [Invalid_argument] if lengths differ or
    are zero.  Relative error for a pair with [|truth| < 1.] uses
    denominator [1.] (the usual sanity bound, since stream values are
    integers). *)

val sse : float array -> float array -> float
(** Sum of squared differences between two equal-length arrays. *)
