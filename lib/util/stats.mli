(** Descriptive statistics over float arrays. *)

val sum : float array -> float
(** Kahan-compensated sum. *)

val mean : float array -> float
(** Arithmetic mean; [0.] on the empty array. *)

val variance : float array -> float
(** Population variance (divide by n); [0.] on arrays of length < 1. *)

val stddev : float array -> float
(** Square root of {!variance}. *)

val min_max : float array -> float * float
(** Smallest and largest element.  Raises [Invalid_argument] on empty. *)

val quantile : float array -> float -> float
(** [quantile xs p] for [p] in [\[0,1\]], linear interpolation between order
    statistics.  Sorts a copy; O(n log n).  Raises on empty input. *)

val median : float array -> float

val sse_about_mean : float array -> int -> int -> float
(** [sse_about_mean xs lo hi] is the sum of squared deviations of
    [xs.(lo..hi)] (inclusive) about their mean — the per-bucket V-optimal
    error, computed naively.  Used as the test oracle for the prefix-sum
    based computation. *)

val histogram_counts : float array -> bins:int -> lo:float -> hi:float -> int array
(** Equi-width bin counts of the values falling in [\[lo, hi\]]; values
    outside the range are clamped into the end bins. *)
