(** Struct-of-arrays row store: unboxed [float array] / [int array]
    columns sharing one length, with capacity-doubling growth.

    The allocation-free counterpart of ['a Vec.t] for records of floats
    and ints: a row lives spread across flat columns, so appending a row
    stores into preallocated arrays instead of boxing a record, and
    {!clear} keeps the backing arrays for reuse.  The [soa.allocations]
    registry gauge counts backing-array growths process-wide, mirroring
    [vec.allocations]. *)

type t

val allocations : Sh_obs.Metric.gauge
(** Backing-array growths across every Soa in the process. *)

val create : ?init_cap:int -> fcols:int -> icols:int -> unit -> t
(** A store with [fcols] float columns and [icols] int columns ([>= 1]
    total).  Raises [Invalid_argument] on a negative count or capacity. *)

val length : t -> int
val capacity : t -> int
val is_empty : t -> bool
val float_cols : t -> int
val int_cols : t -> int

val clear : t -> unit
(** Drop all rows, keeping the backing arrays (no allocation). *)

val add_row : t -> int
(** Append one row and return its index.  The new row's fields are
    unspecified (whatever the backing buffers held); set every column you
    later read.  Amortised O(1); doubles capacity when full. *)

val get_f : t -> col:int -> int -> float
val set_f : t -> col:int -> int -> float -> unit
val get_i : t -> col:int -> int -> int
val set_i : t -> col:int -> int -> int -> unit
(** Typed cell access.  Raise [Invalid_argument] on a row index outside
    [0 .. length - 1]; column indices are trusted (library-internal use). *)

val fcol : t -> int -> float array
val icol : t -> int -> int array
(** The backing array of a column, for hand-written hot loops: length is
    {!capacity} (>= {!length}), contents beyond [length - 1] are
    unspecified, and the array is only valid until the next growth. *)

val bsearch_ge : t -> col:int -> ?lo:int -> ?hi:int -> int -> int
(** [bsearch_ge t ~col target] is the first row index in [\[lo, hi)]
    (default the whole store) whose [col] value is [>= target], or [hi]
    when none is — a lower-bound binary search requiring the column to be
    sorted non-decreasing over the range.  Raises [Invalid_argument] on a
    bad range. *)
