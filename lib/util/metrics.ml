type summary = {
  count : int;
  mae : float;
  rmse : float;
  mean_rel : float;
  max_abs : float;
}

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mae=%.4g rmse=%.4g rel=%.4g max=%.4g"
    s.count s.mae s.rmse s.mean_rel s.max_abs

let summarize ~estimates ~truths =
  let n = Array.length estimates in
  if n = 0 || n <> Array.length truths then
    invalid_arg "Metrics.summarize: arrays must be equal-length and non-empty";
  let abs_errs = Array.init n (fun i -> Float.abs (estimates.(i) -. truths.(i))) in
  let sq_errs = Array.map (fun e -> e *. e) abs_errs in
  let rel_errs =
    Array.init n (fun i ->
        let denom = Float.max 1.0 (Float.abs truths.(i)) in
        abs_errs.(i) /. denom)
  in
  {
    count = n;
    mae = Stats.mean abs_errs;
    rmse = sqrt (Stats.mean sq_errs);
    mean_rel = Stats.mean rel_errs;
    max_abs = snd (Stats.min_max abs_errs);
  }

let sse xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Metrics.sse: arrays must be equal-length";
  let acc = Array.init (Array.length xs) (fun i ->
      let d = xs.(i) -. ys.(i) in
      d *. d)
  in
  Stats.sum acc
