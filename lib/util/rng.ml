type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: used only to expand the user seed into xoshiro state, per the
   xoshiro authors' recommendation.  State must never be all-zero. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k = Int64.(logor (shift_left x k) (shift_right_logical x (64 - k)))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let state = ref (bits64 t) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

(* Indexed split for sharded parallel workloads: child [i] is a pure
   function of the parent's current state and [i], and the parent is NOT
   advanced — so shard i's stream is the same whether the shards are
   created in any order, from any domain, or in any count.  The parent
   state is folded into one word (rotations keep all four words
   influential) and perturbed by the index times the splitmix64 golden
   gamma, then expanded through splitmix64 like [create]. *)
let split_ix t i =
  if i < 0 then invalid_arg "Rng.split_ix: index must be >= 0";
  let open Int64 in
  let mix = logxor (logxor t.s0 (rotl t.s1 17)) (logxor (rotl t.s2 33) (rotl t.s3 49)) in
  let state = ref (add mix (mul (of_int (i + 1)) 0x9E3779B97F4A7C15L)) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top 62 bits (OCaml's native int is 63-bit,
     so a 63-bit draw would wrap negative) to avoid modulo bias. *)
  let rec draw () =
    let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
    let v = r mod bound in
    if r - v > max_int - bound + 1 then draw () else v
  in
  draw ()

let float t bound =
  (* 53 top bits, as in the reference implementation. *)
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  r *. (1.0 /. 9007199254740992.0) *. bound

let uniform t ~lo ~hi = lo +. float t (hi -. lo)
let bool t = Int64.compare (bits64 t) 0L < 0

let gaussian t ~mean ~stddev =
  let rec polar () =
    let u = uniform t ~lo:(-1.0) ~hi:1.0 in
    let v = uniform t ~lo:(-1.0) ~hi:1.0 in
    let s = (u *. u) +. (v *. v) in
    if s >= 1.0 || s = 0.0 then polar ()
    else u *. sqrt (-2.0 *. log s /. s)
  in
  mean +. (stddev *. polar ())

let exponential t ~rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: rate must be positive";
  -.log1p (-.float t 1.0) /. rate

let pareto t ~shape ~scale =
  if shape <= 0.0 || scale <= 0.0 then invalid_arg "Rng.pareto: parameters must be positive";
  scale /. ((1.0 -. float t 1.0) ** (1.0 /. shape))

(* Rejection-inversion sampling for the Zipf distribution (Hörmann &
   Derflinger 1996).  H is an integral upper envelope of the Zipf mass
   function; we invert it and accept/reject. *)
let zipf t ~n ~skew =
  if n <= 0 then invalid_arg "Rng.zipf: n must be positive";
  if skew <= 0.0 then invalid_arg "Rng.zipf: skew must be positive";
  if n = 1 then 1
  else begin
    let q = skew in
    let h x = if q = 1.0 then log x else (x ** (1.0 -. q)) /. (1.0 -. q) in
    let h_inv x = if q = 1.0 then exp x else ((1.0 -. q) *. x) ** (1.0 /. (1.0 -. q)) in
    let h_x1 = h 1.5 -. 1.0 in
    let h_n = h (Float.of_int n +. 0.5) in
    let rec draw () =
      let u = h_x1 +. (float t 1.0 *. (h_n -. h_x1)) in
      let x = h_inv u in
      let k = Float.round x in
      let k = if k < 1.0 then 1.0 else if k > Float.of_int n then Float.of_int n else k in
      if u >= h (k +. 0.5) -. (k ** -.q) then int_of_float k else draw ()
    in
    draw ()
  end
