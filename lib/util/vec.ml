type 'a t = { mutable data : 'a array; mutable len : int }

(* Backing-array growths across every Vec in the process: steady-state
   streaming (interval lists cleared and refilled per refresh) must not
   move this gauge — the window-slide memory-reuse regression test pins
   that. *)
let allocations = Sh_obs.Obs.gauge "vec.allocations"

let create () = { data = [||]; len = 0 }
let length t = t.len
let is_empty t = t.len = 0

let push t x =
  if t.len = Array.length t.data then begin
    let ncap = max 8 (2 * Array.length t.data) in
    let ndata = Array.make ncap x in
    Array.blit t.data 0 ndata 0 t.len;
    t.data <- ndata;
    Sh_obs.Metric.gincr allocations
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: index out of bounds";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Vec.set: index out of bounds";
  t.data.(i) <- x

let last t =
  if t.len = 0 then invalid_arg "Vec.last: empty";
  t.data.(t.len - 1)

let clear t = t.len <- 0

let binary_search ?(lo = 0) ?(hi = -1) t ~f =
  let hi = if hi < 0 then t.len else hi in
  if lo < 0 || hi > t.len || lo > hi then invalid_arg "Vec.binary_search: bad range";
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if f t.data.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_array t = Array.init t.len (fun i -> t.data.(i))
