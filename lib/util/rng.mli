(** Deterministic pseudo-random number generation.

    All workloads in this repository are driven by explicit generator state
    seeded by the caller, so every experiment and every test is exactly
    reproducible.  The generator is xoshiro256** seeded through splitmix64,
    which is the standard seeding recipe recommended by its authors. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator from a 63-bit seed.  Equal seeds yield
    equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator whose future output equals
    [t]'s future output. *)

val split : t -> t
(** [split t] derives a new, statistically independent generator from [t],
    advancing [t].  Used to give each sub-workload its own stream. *)

val split_ix : t -> int -> t
(** [split_ix t i] derives the [i]-th child generator ([i >= 0]) as a pure
    function of [t]'s current state and [i], without advancing [t]:
    children of distinct indices are statistically independent, and shard
    [i] receives the same stream no matter how many shards exist, in what
    order they are created, or how work is spread over domains — the
    reproducibility contract of the parallel generators (lib/par). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** Fair coin. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Normal deviate by the Marsaglia polar method. *)

val exponential : t -> rate:float -> float
(** Exponential deviate with the given rate (mean [1. /. rate]). *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto deviate: heavy-tailed, minimum value [scale]. *)

val zipf : t -> n:int -> skew:float -> int
(** [zipf t ~n ~skew] is a rank in [\[1, n\]] with Zipfian probability
    proportional to [1 / rank^skew].  Uses the rejection-inversion method of
    Hörmann & Derflinger, so no O(n) table is materialised. *)
