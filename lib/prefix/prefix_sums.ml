type t = { sum : float array; sqsum : float array }
(* sum.(i) = v_1 + ... + v_i, with sum.(0) = 0; likewise sqsum for squares. *)

let of_sub values ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Array.length values then
    invalid_arg "Prefix_sums.of_sub: slice out of bounds";
  let sum = Array.make (len + 1) 0.0 in
  let sqsum = Array.make (len + 1) 0.0 in
  for i = 1 to len do
    let v = values.(pos + i - 1) in
    sum.(i) <- sum.(i - 1) +. v;
    sqsum.(i) <- sqsum.(i - 1) +. (v *. v)
  done;
  { sum; sqsum }

let make values = of_sub values ~pos:0 ~len:(Array.length values)

let length t = Array.length t.sum - 1

let check t ~lo ~hi =
  if lo < 1 || hi > length t then invalid_arg "Prefix_sums: range out of bounds"

let range_sum t ~lo ~hi =
  if lo > hi then 0.0
  else begin
    check t ~lo ~hi;
    t.sum.(hi) -. t.sum.(lo - 1)
  end

let range_sqsum t ~lo ~hi =
  if lo > hi then 0.0
  else begin
    check t ~lo ~hi;
    t.sqsum.(hi) -. t.sqsum.(lo - 1)
  end

let range_mean t ~lo ~hi =
  if lo > hi then 0.0
  else range_sum t ~lo ~hi /. Float.of_int (hi - lo + 1)

let sqerror t ~lo ~hi =
  if lo > hi then 0.0
  else begin
    let s = range_sum t ~lo ~hi in
    let q = range_sqsum t ~lo ~hi in
    let n = Float.of_int (hi - lo + 1) in
    Float.max 0.0 (q -. (s *. s /. n))
  end
