type t = { sum : float array; sqsum : float array }
(* sum.(i) = v_1 + ... + v_i, with sum.(0) = 0; likewise sqsum for squares. *)

let of_sub values ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Array.length values then
    invalid_arg "Prefix_sums.of_sub: slice out of bounds";
  let sum = Array.make (len + 1) 0.0 in
  let sqsum = Array.make (len + 1) 0.0 in
  for i = 1 to len do
    let v = values.(pos + i - 1) in
    sum.(i) <- sum.(i - 1) +. v;
    sqsum.(i) <- sqsum.(i - 1) +. (v *. v)
  done;
  { sum; sqsum }

let make values = of_sub values ~pos:0 ~len:(Array.length values)

let length t = Array.length t.sum - 1

(* In-place refill for repeated queries over same-length windows: the
   exact-baseline maintainer recomputes prefix sums of its whole window on
   every query, and reusing the two arrays keeps that recomputation
   allocation-free once the window is full. *)
let refill_sub t values ~pos ~len =
  if len <> length t then invalid_arg "Prefix_sums.refill_sub: length mismatch";
  if pos < 0 || pos + len > Array.length values then
    invalid_arg "Prefix_sums.refill_sub: slice out of bounds";
  let sum = t.sum and sqsum = t.sqsum in
  for i = 1 to len do
    let v = values.(pos + i - 1) in
    sum.(i) <- sum.(i - 1) +. v;
    sqsum.(i) <- sqsum.(i - 1) +. (v *. v)
  done

(* The query chain is [@inline]-annotated for in-module callers
   (sqerror_into below); see Sliding_prefix on why cross-module calls
   still box their float results under -opaque. *)
let[@inline] check t ~lo ~hi =
  if lo < 1 || hi > length t then invalid_arg "Prefix_sums: range out of bounds"

let[@inline] range_sum t ~lo ~hi =
  if lo > hi then 0.0
  else begin
    check t ~lo ~hi;
    t.sum.(hi) -. t.sum.(lo - 1)
  end

let[@inline] range_sqsum t ~lo ~hi =
  if lo > hi then 0.0
  else begin
    check t ~lo ~hi;
    t.sqsum.(hi) -. t.sqsum.(lo - 1)
  end

let range_mean t ~lo ~hi =
  if lo > hi then 0.0
  else range_sum t ~lo ~hi /. Float.of_int (hi - lo + 1)

let[@inline] sqerror t ~lo ~hi =
  if lo > hi then 0.0
  else begin
    let s = range_sum t ~lo ~hi in
    let q = range_sqsum t ~lo ~hi in
    let n = Float.of_int (hi - lo + 1) in
    (* branch instead of Float.max: identical on non-NaN data (the only
       kind reaching the clamp) and it keeps the result unboxed. *)
    let d = q -. (s *. s /. n) in
    if d > 0.0 then d else 0.0
  end

(* Out-param variant for allocation-free callers (the DP inner loop):
   stores SQERROR into [dst.(i)] without boxing the result. *)
let sqerror_into t ~lo ~hi dst i = dst.(i) <- sqerror t ~lo ~hi
