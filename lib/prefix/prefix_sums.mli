(** Static prefix sums over a finite sequence.

    This is the SUM / SQSUM pair of Equation 3 in the paper: given data
    [v_1 .. v_n], it stores the cumulative sums of values and of squared
    values so that the V-optimal bucket error SQERROR(i, j) of Equation 2
    is an O(1) computation.

    Indices are 1-based and ranges are inclusive, matching the paper's
    notation; index 0 denotes the empty prefix. *)

type t

val make : float array -> t
(** [make values] preprocesses [values] in O(n). *)

val of_sub : float array -> pos:int -> len:int -> t
(** [of_sub values ~pos ~len] preprocesses the slice
    [values.(pos .. pos+len-1)] without copying it twice. *)

val refill_sub : t -> float array -> pos:int -> len:int -> unit
(** [refill_sub t values ~pos ~len] recomputes [t] in place over a new
    slice of exactly [length t] points, reusing the backing arrays — the
    allocation-free path for maintainers that re-preprocess a fixed-size
    window per query.  Raises [Invalid_argument] when [len <> length t] or
    the slice is out of bounds. *)

val length : t -> int
(** Number of data points n. *)

val range_sum : t -> lo:int -> hi:int -> float
(** Sum of [v_lo .. v_hi].  Requires [1 <= lo] and [hi <= n]; an empty range
    ([lo > hi]) sums to [0.]. *)

val range_sqsum : t -> lo:int -> hi:int -> float
(** Sum of squares over the range, same conventions. *)

val range_mean : t -> lo:int -> hi:int -> float
(** Mean of the range; [0.] on an empty range. *)

val sqerror : t -> lo:int -> hi:int -> float
(** SQERROR(lo, hi) of Equation 2: the SSE of representing the range by its
    mean.  Clamped to be non-negative (floating-point round-off can push the
    algebraic form slightly below zero). *)

val sqerror_into : t -> lo:int -> hi:int -> float array -> int -> unit
(** [sqerror_into t ~lo ~hi dst i] stores {!sqerror}[ t ~lo ~hi] into
    [dst.(i)] without boxing the result — for callers (the V-optimal DP
    inner loop) that must not allocate per evaluation. *)
