type t = {
  cap : int;
  rebase_every : int;
  sum : float array;    (* ring of cap+1 cumulative sums from a past origin *)
  sqsum : float array;
  mutable pos : int;    (* ring slot of the most recent cumulative value *)
  mutable count : int;  (* points currently in the window *)
  mutable since_rebase : int;
}

let create_rebasing ~rebase_every ~capacity =
  if capacity < 1 then invalid_arg "Sliding_prefix.create: capacity must be >= 1";
  if rebase_every < 1 then invalid_arg "Sliding_prefix.create: rebase_every must be >= 1";
  {
    cap = capacity;
    rebase_every;
    sum = Array.make (capacity + 1) 0.0;
    sqsum = Array.make (capacity + 1) 0.0;
    pos = 0;
    count = 0;
    since_rebase = 0;
  }

let create ~capacity = create_rebasing ~rebase_every:capacity ~capacity

let capacity t = t.cap
let length t = t.count

(* Ring slot of the cumulative value for window-relative index i,
   where i = 0 is the sentinel just before the window's oldest point.

   The query chain below (slot / check / range_sum / range_sqsum /
   sqerror) is [@inline]-annotated: these run once per probe of the
   fixed-window search kernel, and without inlining each call boxes its
   float return (no flambda), which is the bulk of the kernel's
   allocation.  Inlined into the caller, the whole computation stays in
   float registers and the probe loop allocates nothing. *)
let[@inline] slot t i = (t.pos - t.count + i + (2 * (t.cap + 1))) mod (t.cap + 1)

(* Shift the origin to the start of the current window: subtract the
   sentinel cumulative from every live slot.  Differences are unchanged. *)
let rebase t =
  let base_sum = t.sum.(slot t 0) in
  let base_sq = t.sqsum.(slot t 0) in
  for i = 0 to t.count do
    let s = slot t i in
    t.sum.(s) <- t.sum.(s) -. base_sum;
    t.sqsum.(s) <- t.sqsum.(s) -. base_sq
  done;
  t.since_rebase <- 0

let push t v =
  let prev = t.pos in
  t.pos <- (t.pos + 1) mod (t.cap + 1);
  t.sum.(t.pos) <- t.sum.(prev) +. v;
  t.sqsum.(t.pos) <- t.sqsum.(prev) +. (v *. v);
  if t.count < t.cap then t.count <- t.count + 1;
  t.since_rebase <- t.since_rebase + 1;
  if t.since_rebase >= t.rebase_every then rebase t

let[@inline] check t ~lo ~hi =
  if lo < 1 || hi > t.count then invalid_arg "Sliding_prefix: range out of bounds"

let[@inline] range_sum t ~lo ~hi =
  if lo > hi then 0.0
  else begin
    check t ~lo ~hi;
    t.sum.(slot t hi) -. t.sum.(slot t (lo - 1))
  end

let[@inline] range_sqsum t ~lo ~hi =
  if lo > hi then 0.0
  else begin
    check t ~lo ~hi;
    t.sqsum.(slot t hi) -. t.sqsum.(slot t (lo - 1))
  end

let range_mean t ~lo ~hi =
  if lo > hi then 0.0
  else range_sum t ~lo ~hi /. Float.of_int (hi - lo + 1)

let[@inline] sqerror t ~lo ~hi =
  if lo > hi then 0.0
  else begin
    let s = range_sum t ~lo ~hi in
    let q = range_sqsum t ~lo ~hi in
    let n = Float.of_int (hi - lo + 1) in
    (* branch instead of Float.max: the Stdlib call would box both the
       argument and the result on this per-probe path (NaN can't reach
       here — pushes reject non-finite values). *)
    let d = q -. (s *. s /. n) in
    if d > 0.0 then d else 0.0
  end

(* Raw cumulative ring values for snapshot capture: window-relative index
   i in [0 .. count], where 0 is the sentinel just before the oldest
   point.  [range_sum ~lo ~hi] is exactly
   [cumulative_sum hi -. cumulative_sum (lo-1)], so a caller that copies
   these values and subtracts pairs of the copies reproduces live range
   sums bit for bit (copying [range_sum ~lo:1 ~hi:i] instead would
   re-associate the subtraction and drift in the last ulp). *)
let cumulative_sum t i =
  if i < 0 || i > t.count then
    invalid_arg "Sliding_prefix.cumulative_sum: index out of range";
  t.sum.(slot t i)

let cumulative_sqsum t i =
  if i < 0 || i > t.count then
    invalid_arg "Sliding_prefix.cumulative_sqsum: index out of range";
  t.sqsum.(slot t i)

(* Out-param variant for allocation-free callers: dev-profile builds pass
   -opaque, which strips cross-module Clambda approximations, so the
   [@inline] annotations above only help callers inside this module — an
   external [sqerror] call still boxes its float return.  Storing into a
   caller-owned float array crosses the module boundary with ints only;
   [sqerror] inlines here (same module), so the value goes from registers
   straight into the array. *)
let sqerror_into t ~lo ~hi dst i = dst.(i) <- sqerror t ~lo ~hi

(* --- persistence ---------------------------------------------------- *)

module C = Sh_persist.Codec

let encode buf t =
  C.put_varint buf t.cap;
  C.put_varint buf t.rebase_every;
  C.put_varint buf t.pos;
  C.put_varint buf t.count;
  C.put_varint buf t.since_rebase;
  C.put_float_array buf t.sum;
  C.put_float_array buf t.sqsum

let check_finite name a =
  Array.iter
    (fun v ->
       if not (Float.is_finite v) then
         C.corruptf "Sliding_prefix.decode: non-finite %s entry" name)
    a

let decode r =
  let cap = C.get_varint r in
  let rebase_every = C.get_varint r in
  let pos = C.get_varint r in
  let count = C.get_varint r in
  let since_rebase = C.get_varint r in
  if cap < 1 then C.corruptf "Sliding_prefix.decode: capacity %d < 1" cap;
  if rebase_every < 1 then
    C.corruptf "Sliding_prefix.decode: rebase_every %d < 1" rebase_every;
  if pos > cap then C.corruptf "Sliding_prefix.decode: pos %d > cap %d" pos cap;
  if count > cap then
    C.corruptf "Sliding_prefix.decode: count %d > cap %d" count cap;
  if since_rebase >= rebase_every then
    C.corruptf "Sliding_prefix.decode: since_rebase %d >= rebase_every %d"
      since_rebase rebase_every;
  let sum = C.get_float_array r in
  let sqsum = C.get_float_array r in
  if Array.length sum <> cap + 1 || Array.length sqsum <> cap + 1 then
    C.corruptf "Sliding_prefix.decode: ring length %d/%d, expected %d"
      (Array.length sum) (Array.length sqsum) (cap + 1);
  check_finite "sum" sum;
  check_finite "sqsum" sqsum;
  { cap; rebase_every; sum; sqsum; pos; count; since_rebase }
