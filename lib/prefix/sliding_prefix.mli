(** Sliding-window prefix sums — the paper's SUM' / SQSUM' structure
    (Section 4.5).

    The structure ingests a stream one point at a time and supports O(1)
    range-sum, range-square-sum and SQERROR queries over the window of the
    most recent [capacity] points.  Internally it keeps cumulative sums from
    a past origin in a ring of [capacity + 1] slots; differences of
    cumulative values are origin-independent, and the origin is shifted
    ("rebased") every [capacity] insertions so magnitudes stay bounded —
    exactly the amortised-O(1) trick described in the paper.

    Window-relative indices are 1-based: index 1 is the oldest point
    currently in the window, [length t] the newest. *)

type t

val create : capacity:int -> t
(** Window over the last [capacity] points, rebased every [capacity]
    insertions.  [capacity >= 1]. *)

val create_rebasing : rebase_every:int -> capacity:int -> t
(** Like {!create} with an explicit rebase period: larger periods trade
    fewer O(capacity) rebase passes for more floating-point drift in the
    stored cumulative sums (exposed for the rebase-period ablation
    benchmark).  Both arguments [>= 1]. *)

val capacity : t -> int

val length : t -> int
(** Number of points currently held, [<= capacity]. *)

val push : t -> float -> unit
(** Append the next stream value; evicts the oldest once full.  Amortised
    O(1), worst case O(capacity) on rebase ticks. *)

val range_sum : t -> lo:int -> hi:int -> float
(** Sum of window points [lo .. hi] inclusive; empty ranges sum to [0.].
    Requires [1 <= lo] and [hi <= length t] when non-empty. *)

val range_sqsum : t -> lo:int -> hi:int -> float

val sqerror : t -> lo:int -> hi:int -> float
(** SQERROR(lo, hi) over the current window, clamped non-negative. *)

val sqerror_into : t -> lo:int -> hi:int -> float array -> int -> unit
(** [sqerror_into t ~lo ~hi dst i] stores {!sqerror}[ t ~lo ~hi] into
    [dst.(i)] without boxing the result — the hot-path variant for callers
    that must not allocate per query (a cross-module float return is a
    boxed float under the dev profile's [-opaque]; an int-indexed store
    into a caller-owned array is not). *)

val range_mean : t -> lo:int -> hi:int -> float

val cumulative_sum : t -> int -> float
(** Raw cumulative sum at window-relative index [i] in [\[0, length t\]]
    ([0] is the sentinel just before the oldest point; the origin is
    arbitrary).  {!range_sum}[ ~lo ~hi] is exactly
    [cumulative_sum hi -. cumulative_sum (lo - 1)], so snapshotting these
    values and subtracting pairs of the copies reproduces live range sums
    bit for bit — the capture hook for the published read views.  Raises
    [Invalid_argument] out of range. *)

val cumulative_sqsum : t -> int -> float
(** {!cumulative_sum} for the squared sums. *)

(** {2 Persistence} *)

val encode : Buffer.t -> t -> unit
(** Append the full structure state (capacity, rebase period, cursor, and
    both cumulative rings) to a snapshot payload.  Read-only: encoding
    never perturbs the structure. *)

val decode : Sh_persist.Codec.reader -> t
(** Rebuild a structure from {!encode}'s bytes.  The round trip is
    bit-identical — every stored cumulative sum is restored verbatim, so
    subsequent queries and rebase ticks behave exactly as if the process
    had never stopped.  Raises {!Sh_persist.Codec.Corrupt} on truncated
    input, non-finite entries, or inconsistent geometry. *)
