module Obs = Sh_obs.Obs
module M = Sh_obs.Metric

exception Corrupt = Codec.Corrupt
exception Version_mismatch = Codec.Version_mismatch

let format_version = Frame.format_version
let c_snapshots = Obs.counter "persist.snapshots"
let c_restores = Obs.counter "persist.restores"
let c_corrupt_rejections = Obs.counter "persist.corrupt_rejections"
let c_bytes_written = Obs.counter "persist.bytes_written"
let c_bytes_read = Obs.counter "persist.bytes_read"
let c_files_written = Obs.counter "persist.files_written"
let c_faults_injected = Obs.counter "persist.faults_injected"

let write_whole path s =
  let oc = open_out_bin path in
  (try output_string oc s with e -> close_out_noerr oc; raise e);
  close_out oc

let write_file_atomic ~path ~header ~frames:frame_list =
  Obs.with_span "persist.write_file" @@ fun () ->
  let tmp = path ^ ".tmp" in
  let image () = String.concat "" (header :: frame_list) in
  let publish img =
    write_whole tmp img;
    Sys.rename tmp path;
    M.add c_bytes_written (String.length img);
    M.incr c_files_written
  in
  match Fault.take () with
  | None -> publish (image ())
  | Some inj ->
    M.incr c_faults_injected;
    (match inj with
     | Fault.Truncate_at k ->
       let img = image () in
       publish (String.sub img 0 (max 0 (min k (String.length img))))
     | Fault.Flip_bit bit ->
       let img = Bytes.of_string (image ()) in
       let byte = bit / 8 in
       if byte >= 0 && byte < Bytes.length img then
         Bytes.set img byte
           (Char.chr (Char.code (Bytes.get img byte) lxor (1 lsl (bit land 7))));
       publish (Bytes.to_string img)
     | Fault.Crash_before_rename ->
       write_whole tmp (image ());
       raise (Fault.Injected "crash before rename")
     | Fault.Crash_after_frames n ->
       let oc = open_out_bin tmp in
       let crash written =
         close_out_noerr oc;
         raise
           (Fault.Injected
              (Printf.sprintf "crash after %d frame(s), before rename" written))
       in
       (try
          output_string oc header;
          List.iteri
            (fun i frame ->
               if i >= n then crash i;
               output_string oc frame)
            frame_list;
          close_out oc
        with
        | Fault.Injected _ as e -> raise e
        | e -> close_out_noerr oc; raise e);
       (* n >= frame count: every frame made it, crash before the rename. *)
       raise
         (Fault.Injected
            (Printf.sprintf "crash after %d frame(s), before rename"
               (List.length frame_list))))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
       let n = in_channel_length ic in
       let s = really_input_string ic n in
       M.add c_bytes_read n;
       s)

let rejecting f =
  try f () with
  | (Corrupt _ | Version_mismatch _) as e ->
    M.incr c_corrupt_rejections;
    raise e
