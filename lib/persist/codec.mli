(** Primitive binary codec for snapshot payloads.

    Writers append to a [Buffer.t]; readers consume a bounded slice of a
    string.  Integers use unsigned LEB128 varints (1 byte for values below
    128 — the common case for lengths, counts, and policy tags), floats
    are IEEE 754 binary64 little-endian via [Int64.bits_of_float], so the
    round trip is bit-identical including subnormals and signed zeros.

    Every decoding failure — truncation, overlong varint, bad bool byte,
    trailing garbage — raises {!Corrupt} with a human-readable reason.
    Nothing here touches the filesystem. *)

exception Corrupt of string
(** The input is not a well-formed snapshot (truncated, checksum mismatch,
    bad tag, impossible field value, ...). *)

exception Version_mismatch of { found : int; expected : int }
(** The input is framed correctly but written by a different format
    version; the caller must not attempt to decode the payload. *)

val corruptf : ('a, unit, string, 'b) format4 -> 'a
(** [corruptf fmt ...] raises {!Corrupt} with a formatted message. *)

(** {1 Writers} *)

val put_u8 : Buffer.t -> int -> unit
(** Append the low 8 bits of the int as one byte. *)

val put_u32 : Buffer.t -> int -> unit
(** Append the low 32 bits as 4 little-endian bytes (used for CRCs). *)

val put_varint : Buffer.t -> int -> unit
(** Append a non-negative int as an unsigned LEB128 varint (at most 9
    bytes for the full 62-bit range).  Raises [Invalid_argument] on
    negative input. *)

val put_bool : Buffer.t -> bool -> unit
val put_float : Buffer.t -> float -> unit

val put_string : Buffer.t -> string -> unit
(** Varint length followed by the raw bytes. *)

val put_float_array : Buffer.t -> float array -> unit
(** Varint length followed by the elements. *)

(** {1 Readers} *)

type reader
(** A cursor over a bounded byte range of an immutable string. *)

val of_string : ?pos:int -> ?len:int -> string -> reader
(** Reader over [s.[pos .. pos+len)]; defaults cover the whole string.
    Raises [Invalid_argument] if the range is out of bounds. *)

val src : reader -> string
(** The underlying string (shared, not copied). *)

val pos : reader -> int
(** Current absolute offset into {!src}. *)

val remaining : reader -> int
val at_end : reader -> bool

val sub_reader : reader -> int -> reader
(** [sub_reader r n] carves the next [n] bytes into their own bounded
    reader and advances [r] past them.  Raises {!Corrupt} if fewer than
    [n] bytes remain. *)

val get_u8 : reader -> int
val get_u32 : reader -> int
val get_varint : reader -> int
val get_bool : reader -> bool
val get_float : reader -> float
val get_string : reader -> string
val get_float_array : reader -> float array
val get_raw : reader -> int -> string
(** [get_raw r n] reads exactly [n] raw bytes (no length prefix). *)

val expect_end : reader -> what:string -> unit
(** Raise {!Corrupt} if the reader has bytes left — decoding a payload
    must consume it exactly. *)
