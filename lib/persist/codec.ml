exception Corrupt of string
exception Version_mismatch of { found : int; expected : int }

let corruptf fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* --- writers ------------------------------------------------------- *)

let put_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))
let put_u32 buf v = Buffer.add_int32_le buf (Int32.of_int v)

let put_varint buf n =
  if n < 0 then invalid_arg "Codec.put_varint: negative";
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.unsafe_chr n)
    else begin
      Buffer.add_char buf (Char.unsafe_chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let put_bool buf b = put_u8 buf (if b then 1 else 0)
let put_float buf f = Buffer.add_int64_le buf (Int64.bits_of_float f)

let put_string buf s =
  put_varint buf (String.length s);
  Buffer.add_string buf s

let put_float_array buf a =
  put_varint buf (Array.length a);
  Array.iter (fun f -> put_float buf f) a

(* --- readers ------------------------------------------------------- *)

type reader = { src : string; mutable pos : int; limit : int }

let of_string ?(pos = 0) ?len src =
  let limit =
    match len with None -> String.length src | Some l -> pos + l
  in
  if pos < 0 || pos > limit || limit > String.length src then
    invalid_arg "Codec.of_string: bad range";
  { src; pos; limit }

let src r = r.src
let pos r = r.pos
let remaining r = r.limit - r.pos
let at_end r = r.pos >= r.limit

let need r n what =
  if r.limit - r.pos < n then
    corruptf "truncated input: needed %d byte(s) for %s, %d left" n what
      (r.limit - r.pos)

let sub_reader r n =
  need r n "sub-frame";
  let s = { src = r.src; pos = r.pos; limit = r.pos + n } in
  r.pos <- r.pos + n;
  s

let get_u8 r =
  need r 1 "u8";
  let c = Char.code (String.unsafe_get r.src r.pos) in
  r.pos <- r.pos + 1;
  c

let get_u32 r =
  need r 4 "u32";
  let v = Int32.to_int (String.get_int32_le r.src r.pos) land 0xFFFFFFFF in
  r.pos <- r.pos + 4;
  v

let get_varint r =
  (* Shifts 0,7,...,56 cover the 62-bit non-negative int range; a
     continuation past shift 56, or a decoded value with the sign bit set,
     cannot come from [put_varint]. *)
  let rec go acc shift =
    if shift > 56 then corruptf "varint too long";
    let b = get_u8 r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b < 0x80 then acc else go acc (shift + 7)
  in
  let v = go 0 0 in
  if v < 0 then corruptf "varint overflow";
  v

let get_bool r =
  match get_u8 r with
  | 0 -> false
  | 1 -> true
  | n -> corruptf "bad bool byte %d" n

let get_float r =
  need r 8 "float";
  let v = Int64.float_of_bits (String.get_int64_le r.src r.pos) in
  r.pos <- r.pos + 8;
  v

let get_raw r n =
  need r n "raw bytes";
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let get_string r =
  let n = get_varint r in
  get_raw r n

let get_float_array r =
  let n = get_varint r in
  if n > remaining r / 8 then
    corruptf "float array length %d exceeds %d remaining byte(s)" n
      (remaining r);
  Array.init n (fun _ -> get_float r)

let expect_end r ~what =
  if not (at_end r) then
    corruptf "%d trailing byte(s) after %s" (remaining r) what
