(** Snapshot file framing: a magic + format-version header followed by a
    sequence of CRC-guarded, length-prefixed frames.

    {v
    file   := header frame*
    header := magic "SHSB" (4 bytes) | format_version (varint)
    frame  := payload_len (varint) | payload bytes | crc32(payload) (u32 LE)
    v}

    Readers verify the magic, the version, each frame's length against the
    bytes actually present, and each frame's CRC before handing the payload
    to a decoder — so a decoder never sees torn or bit-flipped bytes. *)

val magic : string
(** ["SHSB"] — stream-histogram snapshot binary. *)

val format_version : int
(** Current on-disk format version.  Bump on any layout change; readers
    raise {!Codec.Version_mismatch} on anything else (see DESIGN.md §11
    for the bump policy). *)

val add_header : Buffer.t -> unit
val header_string : unit -> string

val read_header : Codec.reader -> unit
(** Verify magic and version.  Raises {!Codec.Corrupt} on a bad magic or
    truncated header, {!Codec.Version_mismatch} on a foreign version. *)

val add_frame : Buffer.t -> string -> unit
(** Append one frame wrapping [payload]. *)

val frame_string : string -> string
(** One frame wrapping [payload], as a standalone string. *)

val read_frame : Codec.reader -> Codec.reader
(** Read the next frame: verifies length and CRC, advances the outer
    reader past the frame, and returns a bounded reader over the payload.
    Raises {!Codec.Corrupt} on truncation or checksum mismatch. *)

val has_frame : Codec.reader -> bool
(** Whether any bytes remain (a further frame is expected). *)

(** {2 Incremental decode}

    Streaming transports (the [Sh_net] wire protocol) receive frames in
    arbitrary chunks; {!scan_frame} distinguishes "not enough bytes yet"
    from structural corruption without consuming input, so a socket reader
    can buffer and retry. *)

type scan =
  | Incomplete
      (** The range could still be a prefix of a valid frame — read more
          bytes and rescan. *)
  | Frame of { payload : Codec.reader; consumed : int }
      (** One whole CRC-verified frame starts at [pos]: [payload] is a
          bounded reader over its payload bytes, [consumed] the total
          frame size (length prefix + payload + CRC). *)

val scan_frame : ?max_len:int -> string -> pos:int -> len:int -> scan
(** Scan [s.[pos .. pos+len)] for one leading frame.  Raises
    {!Codec.Corrupt} only on structural damage — an overlong length
    varint, a declared payload length above [max_len] (default
    unbounded), a CRC mismatch — and returns {!Incomplete} on mere
    truncation.  Raises [Invalid_argument] if the range is out of
    bounds. *)
