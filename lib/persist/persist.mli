(** Durable snapshot I/O: atomic file publication, typed failure modes,
    and the [persist.*] telemetry series.

    A snapshot file is always published with write-to-temp + atomic
    rename ([path ^ ".tmp"], then [Sys.rename]), so readers observe either
    the previous complete file or the new complete file — never a torn
    one.  The armed {!Fault} injection (if any) is consumed here, which is
    what lets the test suite exercise crashes at every point of the write
    protocol.

    This module only moves validated bytes; framing lives in {!Frame} and
    payload decoding in the summary types themselves. *)

exception Corrupt of string
(** Re-export of {!Codec.Corrupt}: the file is not a well-formed snapshot. *)

exception Version_mismatch of { found : int; expected : int }
(** Re-export of {!Codec.Version_mismatch}. *)

val format_version : int
(** Alias of {!Frame.format_version}. *)

val write_file_atomic : path:string -> header:string -> frames:string list -> unit
(** Concatenate [header] and [frames] into [path ^ ".tmp"], then rename
    over [path].  Frame boundaries only matter to fault injection
    ([Crash_after_frames] counts them); the bytes are written verbatim.
    Raises [Fault.Injected] at a simulated crash point and [Sys_error] on
    real I/O failure — in both cases [path] still holds its previous
    contents (the mangling injections [Truncate_at]/[Flip_bit] deliberately
    publish a damaged image instead; see {!Fault}). *)

val read_file : string -> string
(** Read a whole snapshot file into memory.  Raises [Sys_error] if the
    file cannot be opened or read. *)

(** {2 Telemetry}

    Registered eagerly under [persist.*]; snapshot/restore call sites
    (the [Snapshot] functor, [Shard_engine.checkpoint]) bump the
    operation counters, file I/O here accounts bytes. *)

val c_snapshots : Sh_obs.Metric.counter
(** [persist.snapshots] — summary/engine snapshot operations. *)

val c_restores : Sh_obs.Metric.counter
(** [persist.restores] — successful restore operations. *)

val c_corrupt_rejections : Sh_obs.Metric.counter
(** [persist.corrupt_rejections] — restores rejected with {!Corrupt} or
    {!Version_mismatch}. *)

val c_bytes_written : Sh_obs.Metric.counter
(** [persist.bytes_written] — bytes handed to {!write_file_atomic}. *)

val c_bytes_read : Sh_obs.Metric.counter
(** [persist.bytes_read] — bytes loaded by {!read_file}. *)

val c_files_written : Sh_obs.Metric.counter
(** [persist.files_written] — successful atomic publications. *)

val c_faults_injected : Sh_obs.Metric.counter
(** [persist.faults_injected] — {!Fault} injections consumed. *)

val rejecting : (unit -> 'a) -> 'a
(** Run a restore thunk, counting {!Corrupt}/{!Version_mismatch} into
    [persist.corrupt_rejections] before re-raising. *)
