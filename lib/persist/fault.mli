(** Injectable failure points for the persistence layer.

    A test arms exactly one injection; the next atomic file write consumes
    it and simulates the corresponding failure.  This lets the test suite
    prove the crash-consistency story instead of asserting it: every
    partial or mangled write must either leave the previous checkpoint
    restorable or make [restore] raise a typed error — never succeed with
    silently wrong state.

    The registry is a single global slot intended for tests on one domain;
    it is not synchronised across domains. *)

type injection =
  | Truncate_at of int
      (** Write only the first [k] bytes of the image, then publish it via
          rename anyway — models a torn write that the filesystem promoted
          (e.g. rename reordered before the data blocks reached disk). *)
  | Flip_bit of int
      (** Flip bit [i] (byte [i/8], bit [i mod 8]) of the image and publish
          it — models post-rename media corruption. *)
  | Crash_after_frames of int
      (** Crash after [n] frames of the payload have been written to the
          temp file: the temp file is left behind, the rename never
          happens, the previous checkpoint (if any) is untouched.  If [n]
          is at least the frame count, the crash lands between the last
          write and the rename. *)
  | Crash_before_rename
      (** Write the complete image to the temp file, then crash just
          before the rename. *)

exception Injected of string
(** Raised by the writer at the simulated crash point ([Crash_*]
    injections only; the mangling injections return normally, the damage
    surfaces at [restore] time). *)

val arm : injection -> unit
(** Arm an injection for the next atomic write (replacing any armed one). *)

val disarm : unit -> unit
(** Clear the armed injection, if any. *)

val armed : unit -> injection option
(** Peek at the armed injection without consuming it. *)

val take : unit -> injection option
(** Consume the armed injection: returns it, disarms, and counts it as
    fired.  Used by the writer; injections are one-shot. *)

val fired_count : unit -> int
(** How many injections have fired since the program started. *)
