let magic = "SHSB"
let format_version = 1

let add_header buf =
  Buffer.add_string buf magic;
  Codec.put_varint buf format_version

let header_string () =
  let b = Buffer.create 8 in
  add_header b;
  Buffer.contents b

let read_header r =
  if Codec.remaining r < String.length magic then
    raise (Codec.Corrupt "missing snapshot header");
  let m = Codec.get_raw r (String.length magic) in
  if not (String.equal m magic) then
    Codec.corruptf "bad magic %S: not a snapshot file" m;
  let v = Codec.get_varint r in
  if v <> format_version then
    raise (Codec.Version_mismatch { found = v; expected = format_version })

let add_frame buf payload =
  Codec.put_varint buf (String.length payload);
  Buffer.add_string buf payload;
  Codec.put_u32 buf (Crc32.string payload)

let frame_string payload =
  let b = Buffer.create (String.length payload + 8) in
  add_frame b payload;
  Buffer.contents b

let read_frame r =
  let len = Codec.get_varint r in
  if Codec.remaining r < len + 4 then
    Codec.corruptf "truncated frame: %d payload + 4 CRC byte(s) declared, %d left"
      len (Codec.remaining r);
  let start = Codec.pos r in
  let payload = Codec.sub_reader r len in
  let stored = Codec.get_u32 r in
  let actual = Crc32.sub (Codec.src r) ~pos:start ~len in
  if stored <> actual then
    Codec.corruptf "frame CRC mismatch: stored %08x, computed %08x" stored
      actual;
  payload

let has_frame r = not (Codec.at_end r)

(* --- incremental decode -------------------------------------------- *)

type scan =
  | Incomplete
  | Frame of { payload : Codec.reader; consumed : int }

(* Streaming transports receive frames in arbitrary chunks, so truncation
   is the steady state, not corruption: only structurally impossible input
   (overlong varint, oversized declared length, CRC mismatch) raises;
   anything that a few more bytes could complete returns [Incomplete]. *)
let scan_frame ?(max_len = max_int) s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Frame.scan_frame: bad range";
  let limit = pos + len in
  (* the length-prefix varint, byte by byte: [None] = ran out of input *)
  let rec varint acc shift i =
    if shift > 56 then Codec.corruptf "varint too long";
    if i >= limit then None
    else begin
      let b = Char.code (String.unsafe_get s i) in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b < 0x80 then begin
        if acc < 0 then Codec.corruptf "varint overflow";
        Some (acc, i + 1)
      end
      else varint acc (shift + 7) (i + 1)
    end
  in
  match varint 0 0 pos with
  | None -> Incomplete
  | Some (plen, body) ->
    if plen > max_len then
      Codec.corruptf "frame payload length %d exceeds the %d-byte limit" plen
        max_len;
    if limit - body < plen + 4 then Incomplete
    else begin
      let stored =
        Int32.to_int (String.get_int32_le s (body + plen)) land 0xFFFFFFFF
      in
      let actual = Crc32.sub s ~pos:body ~len:plen in
      if stored <> actual then
        Codec.corruptf "frame CRC mismatch: stored %08x, computed %08x" stored
          actual;
      Frame
        {
          payload = Codec.of_string ~pos:body ~len:plen s;
          consumed = body + plen + 4 - pos;
        }
    end
