let magic = "SHSB"
let format_version = 1

let add_header buf =
  Buffer.add_string buf magic;
  Codec.put_varint buf format_version

let header_string () =
  let b = Buffer.create 8 in
  add_header b;
  Buffer.contents b

let read_header r =
  if Codec.remaining r < String.length magic then
    raise (Codec.Corrupt "missing snapshot header");
  let m = Codec.get_raw r (String.length magic) in
  if not (String.equal m magic) then
    Codec.corruptf "bad magic %S: not a snapshot file" m;
  let v = Codec.get_varint r in
  if v <> format_version then
    raise (Codec.Version_mismatch { found = v; expected = format_version })

let add_frame buf payload =
  Codec.put_varint buf (String.length payload);
  Buffer.add_string buf payload;
  Codec.put_u32 buf (Crc32.string payload)

let frame_string payload =
  let b = Buffer.create (String.length payload + 8) in
  add_frame b payload;
  Buffer.contents b

let read_frame r =
  let len = Codec.get_varint r in
  if Codec.remaining r < len + 4 then
    Codec.corruptf "truncated frame: %d payload + 4 CRC byte(s) declared, %d left"
      len (Codec.remaining r);
  let start = Codec.pos r in
  let payload = Codec.sub_reader r len in
  let stored = Codec.get_u32 r in
  let actual = Crc32.sub (Codec.src r) ~pos:start ~len in
  if stored <> actual then
    Codec.corruptf "frame CRC mismatch: stored %08x, computed %08x" stored
      actual;
  payload

let has_frame r = not (Codec.at_end r)
