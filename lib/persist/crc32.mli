(** CRC-32 (IEEE 802.3 polynomial, reflected), the checksum guarding every
    snapshot frame.  Table-driven, no dependencies.  The reference vector is
    [string "123456789" = 0xCBF43926]. *)

val sub : string -> pos:int -> len:int -> int
(** CRC-32 of the byte range [\[pos, pos+len)] of the string.  No copy is
    made, so frame verification can run directly against a file image.
    Raises [Invalid_argument] if the range is out of bounds. *)

val string : string -> int
(** CRC-32 of a whole string. *)
