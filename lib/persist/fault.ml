type injection =
  | Truncate_at of int
  | Flip_bit of int
  | Crash_after_frames of int
  | Crash_before_rename

exception Injected of string

let current : injection option ref = ref None
let fired = ref 0
let arm i = current := Some i
let disarm () = current := None
let armed () = !current

let take () =
  match !current with
  | None -> None
  | Some _ as i ->
    current := None;
    incr fired;
    i

let fired_count () = !fired
