(** Circular buffer over the most recent [capacity] stream values — the
    buffer M of Section 3 of the paper ("buffer M operates in a cyclic
    fashion... acts as a sliding window of length n over the data stream").

    Window-relative indices are 1-based: index 1 is the temporally oldest
    point in the window (the paper's M\[0\]), [length t] the newest. *)

type t

val create : capacity:int -> t
(** Empty buffer for a window of [capacity] points.  [capacity >= 1]. *)

val capacity : t -> int
val length : t -> int
val is_full : t -> bool

val push : t -> float -> unit
(** Append the next stream value, evicting the oldest once full. *)

val get : t -> int -> float
(** [get t i] is the i-th oldest point in the window, [1 <= i <= length t]. *)

val oldest : t -> float
(** Equivalent to [get t 1].  Raises [Invalid_argument] when empty. *)

val newest : t -> float
(** Equivalent to [get t (length t)].  Raises [Invalid_argument] when empty. *)

val to_array : t -> float array
(** Window contents oldest-first, as a fresh array of [length t] values. *)

val blit_to : t -> float array -> unit
(** Copy the window oldest-first into the prefix of the destination array,
    which must have length at least [length t].  Avoids allocation in the
    per-point wavelet rebuild. *)

val iteri : t -> (int -> float -> unit) -> unit
(** [iteri t f] applies [f i v] for every window index i oldest-first. *)

val clear : t -> unit

val allocations : Sh_obs.Metric.gauge
(** Process-wide count of ring creations, exported as the
    ["ring_buffer.allocations"] gauge; rings never reallocate after
    [create], so slides leave it unchanged. *)

(** {2 Persistence} *)

val encode : Buffer.t -> t -> unit
(** Append the full buffer state (capacity, head, count, backing array)
    to a snapshot payload; read-only. *)

val decode : Sh_persist.Codec.reader -> t
(** Rebuild a buffer from {!encode}'s bytes, bit-identical including slot
    layout, so post-restore slides behave exactly as pre-crash.  Raises
    {!Sh_persist.Codec.Corrupt} on truncation, inconsistent geometry, or
    a non-finite live value. *)
