type t = {
  data : float array;
  mutable head : int;   (* slot of the oldest element *)
  mutable count : int;
}

(* Ring buffers allocate exactly once, at creation; sliding never
   reallocates.  The gauge makes that visible next to vec.allocations and
   is pinned by a reuse regression test. *)
let allocations = Sh_obs.Obs.gauge "ring_buffer.allocations"

let create ~capacity =
  if capacity < 1 then invalid_arg "Ring_buffer.create: capacity must be >= 1";
  Sh_obs.Metric.gincr allocations;
  { data = Array.make capacity 0.0; head = 0; count = 0 }

let capacity t = Array.length t.data
let length t = t.count
let is_full t = t.count = Array.length t.data

let push t v =
  let cap = Array.length t.data in
  if t.count < cap then begin
    t.data.((t.head + t.count) mod cap) <- v;
    t.count <- t.count + 1
  end
  else begin
    t.data.(t.head) <- v;
    t.head <- (t.head + 1) mod cap
  end

let get t i =
  if i < 1 || i > t.count then invalid_arg "Ring_buffer.get: index out of window";
  t.data.((t.head + i - 1) mod Array.length t.data)

let oldest t = get t 1
let newest t = get t t.count

let blit_to t dst =
  if Array.length dst < t.count then invalid_arg "Ring_buffer.blit_to: destination too small";
  let cap = Array.length t.data in
  let first = min t.count (cap - t.head) in
  Array.blit t.data t.head dst 0 first;
  if first < t.count then Array.blit t.data 0 dst first (t.count - first)

let to_array t =
  let out = Array.make t.count 0.0 in
  blit_to t out;
  out

let iteri t f =
  for i = 1 to t.count do
    f i (get t i)
  done

let clear t =
  t.head <- 0;
  t.count <- 0

(* --- persistence ---------------------------------------------------- *)

module C = Sh_persist.Codec

let encode buf t =
  C.put_varint buf (Array.length t.data);
  C.put_varint buf t.head;
  C.put_varint buf t.count;
  C.put_float_array buf t.data

let decode r =
  let cap = C.get_varint r in
  let head = C.get_varint r in
  let count = C.get_varint r in
  if cap < 1 then C.corruptf "Ring_buffer.decode: capacity %d < 1" cap;
  if head >= cap then C.corruptf "Ring_buffer.decode: head %d >= cap %d" head cap;
  if count > cap then C.corruptf "Ring_buffer.decode: count %d > cap %d" count cap;
  let data = C.get_float_array r in
  if Array.length data <> cap then
    C.corruptf "Ring_buffer.decode: data length %d, expected %d"
      (Array.length data) cap;
  for i = 0 to count - 1 do
    if not (Float.is_finite data.((head + i) mod cap)) then
      C.corruptf "Ring_buffer.decode: non-finite live value"
  done;
  Sh_obs.Metric.gincr allocations;
  { data; head; count }
