(** Sharded multi-stream engine: S independent fixed-window summaries
    (one per stream key), batched parallel ingest, batched refresh.

    This is the multi-tenant regime of the ROADMAP north star: maintaining
    one windowed epsilon-approximate histogram per key (tenant, sensor,
    router port ...) at line rate.  Shards are fully independent — the
    paper's per-stream algorithm (Theorem 1) needs no cross-stream state —
    so the engine needs no histogram-level locking: a batch is routed by
    key, each touched shard becomes one task on the {!Domain_pool}, and a
    per-shard mutex is the entire ownership discipline.

    Results are bit-identical to driving one sequential
    {!Stream_histogram.Fixed_window.t} per key with the same per-key
    subsequences (property-tested for domain counts 1, 2 and 4): shard
    independence means parallel execution changes only wall-clock, never
    answers. *)

type t

val create :
  ?policy:Stream_histogram.Params.refresh_policy ->
  pool:Domain_pool.t ->
  shards:int ->
  window:int ->
  buckets:int ->
  epsilon:float ->
  unit ->
  t
(** An engine of [shards] summaries ([>= 1]), each a fixed-window
    maintainer with the given window/buckets/epsilon and refresh [policy]
    (default [Lazy]).  Stream keys are [0 .. shards - 1].  The pool is
    borrowed, not owned: several engines may share one pool, and
    {!Domain_pool.shutdown} remains the caller's job. *)

val shard_count : t -> int
val pool : t -> Domain_pool.t

val ingest : t -> (int * float) array -> unit
(** Route one batch of [(key, value)] arrivals to their shards and ingest
    each shard's sub-batch with [push_slice] — one pool task per shard
    (untouched shards no-op), refresh policy applied per shard per batch.
    Routing runs through a per-engine arena of reusable buffers, so a
    steady-state batch allocates nothing beyond pool submission; the same
    arena makes ingest single-producer — at most one [ingest] per engine
    at a time (queries and {!refresh_all} may still run concurrently).
    Raises [Invalid_argument] (before ingesting anything) if any key is
    out of range or any value non-finite. *)

val refresh_all : ?cold:bool -> t -> unit
(** Rebuild every stale shard's interval lists across the pool — the
    batched counterpart of {!Stream_histogram.Fixed_window.refresh};
    [~cold:true] forces from-scratch rebuilds (the correctness oracle). *)

(** {2 Per-key queries} — each locks its shard, so they may race freely
    with {!ingest} of other keys (and serialise with ingest of the same
    key). *)

val length : t -> key:int -> int
val current_error : t -> key:int -> float
val current_histogram : t -> key:int -> Sh_histogram.Histogram.t
val herror : t -> key:int -> k:int -> x:int -> float
val work_counters : t -> key:int -> Stream_histogram.Fixed_window.work_counters

val fold : t -> init:'a -> f:('a -> int -> Stream_histogram.Fixed_window.t -> 'a) -> 'a
(** Fold over shards in key order, holding each shard's lock in turn
    while [f] runs on it.  [f] must not call back into the engine. *)

(** {2 Introspection} *)

val total_points : t -> int
(** Points ingested since creation (also the ["engine.points"] series). *)

val batches : t -> int
