(** Sharded multi-stream engine: S independent fixed-window summaries
    (one per stream key), batched parallel ingest, batched refresh.

    This is the multi-tenant regime of the ROADMAP north star: maintaining
    one windowed epsilon-approximate histogram per key (tenant, sensor,
    router port ...) at line rate.  Shards are fully independent — the
    paper's per-stream algorithm (Theorem 1) needs no cross-stream state —
    so the engine needs no histogram-level locking: a batch is routed by
    key, each touched shard becomes one task on the {!Domain_pool}, and a
    per-shard mutex is the entire ownership discipline.

    Results are bit-identical to driving one sequential
    {!Stream_histogram.Fixed_window.t} per key with the same per-key
    subsequences (property-tested for domain counts 1, 2 and 4): shard
    independence means parallel execution changes only wall-clock, never
    answers. *)

type t

val create :
  pool:Domain_pool.t ->
  shards:int ->
  window:int ->
  buckets:int ->
  epsilon:float ->
  t
(** An engine of [shards] summaries ([>= 1]), each a fixed-window
    maintainer with the given window/buckets/epsilon and the default
    ([Lazy]) refresh policy — use {!set_refresh_policy} for another.
    Stream keys are [0 .. shards - 1].  The pool is borrowed, not owned:
    several engines may share one pool, and {!Domain_pool.shutdown}
    remains the caller's job. *)

val create_legacy :
  ?policy:Stream_histogram.Params.refresh_policy ->
  pool:Domain_pool.t ->
  shards:int ->
  window:int ->
  buckets:int ->
  epsilon:float ->
  unit ->
  t
[@@ocaml.deprecated
  "the trailing unit is gone: use Shard_engine.create (and \
   set_refresh_policy for a non-default policy)"]
(** Pre-redesign spelling of {!create}; kept for one release. *)

val set_refresh_policy : t -> Stream_histogram.Params.refresh_policy -> unit
(** Set the arrival-time refresh policy of every shard (locking each in
    turn).  Raises [Invalid_argument] on [Every k] with [k < 1]. *)

val shard_count : t -> int
val pool : t -> Domain_pool.t

val ingest : t -> (int * float) array -> unit
(** Route one batch of [(key, value)] arrivals to their shards and ingest
    each shard's sub-batch with [push_slice] — one pool task per shard
    (untouched shards no-op), refresh policy applied per shard per batch.
    Routing runs through a per-engine arena of reusable buffers, so a
    steady-state batch allocates nothing beyond pool submission; the same
    arena makes ingest single-producer — at most one [ingest] per engine
    at a time (queries and {!refresh_all} may still run concurrently).
    Raises [Invalid_argument] (before ingesting anything) if any key is
    out of range or any value non-finite. *)

val refresh_all : ?cold:bool -> t -> unit
(** Rebuild every stale shard's interval lists across the pool — the
    batched counterpart of {!Stream_histogram.Fixed_window.refresh};
    [~cold:true] forces from-scratch rebuilds (the correctness oracle). *)

(** {2 Per-key queries} — each locks its shard, so they may race freely
    with {!ingest} of other keys (and serialise with ingest of the same
    key). *)

val length : t -> key:int -> int
val current_error : t -> key:int -> float
val current_histogram : t -> key:int -> Sh_histogram.Histogram.t
val herror : t -> key:int -> k:int -> x:int -> float
val work_counters : t -> key:int -> Stream_histogram.Fixed_window.work_counters

val fold : t -> init:'a -> f:('a -> int -> Stream_histogram.Fixed_window.t -> 'a) -> 'a
(** Fold over shards in key order, holding each shard's lock in turn
    while [f] runs on it.  [f] must not call back into the engine. *)

(** {2 Introspection} *)

val total_points : t -> int
(** Points ingested since creation (also the ["engine.points"] series). *)

val batches : t -> int

(** {2 Durability}

    A checkpoint is one {!Sh_persist.Frame}-formatted file: header, an
    engine meta frame (shard count, cumulative counters), then one
    {!Stream_histogram.Fixed_window} frame per shard.  Files are published
    with write-to-temp + atomic rename, so a crash during {!checkpoint}
    always leaves the previous checkpoint readable (proved by the
    fault-injection suite). *)

val checkpoint : t -> file:string -> unit
(** Capture every shard (each encoded under its own mutex, one at a time
    — queries keep running concurrently) and atomically publish the file.
    Do not run concurrently with {!ingest}: frames are per-shard
    consistent, but a mid-batch checkpoint would split that batch across
    the checkpoint boundary. *)

val restore_from : pool:Domain_pool.t -> file:string -> t
(** Rebuild an engine from a {!checkpoint} file: geometry, per-shard
    window state (each rebuilt with one cold refresh), policies, and the
    cumulative {!total_points}/{!batches} counters all come from the file.
    Raises {!Sh_persist.Persist.Corrupt} on any damaged or truncated file,
    {!Sh_persist.Persist.Version_mismatch} on a foreign format version,
    and [Sys_error] if the file cannot be read — never returns a silently
    wrong engine. *)
