(** Sharded multi-stream engine: S independent fixed-window summaries
    (one per stream key), batched parallel ingest, batched refresh.

    This is the multi-tenant regime of the ROADMAP north star: maintaining
    one windowed epsilon-approximate histogram per key (tenant, sensor,
    router port ...) at line rate.  Shards are fully independent — the
    paper's per-stream algorithm (Theorem 1) needs no cross-stream state —
    so the engine needs no histogram-level locking.  A batch reaches the
    shards through the lock-free pipeline: the producer routes each value
    into a bounded {!Spsc_ring} per shard — one array store plus one
    atomic store, no mutex, no CAS — and one drain task per {e owner}
    applies each owned shard's sub-batch.  Owners are static contiguous
    slices of the shard space, at most one per pool domain, so no two
    tasks ever touch the same shard.  A full ring spills to a per-shard
    overflow buffer (bounded by the batch size) and counts
    [engine.backpressure_waits].  Refresh sweeps are work-stealing: each
    owner claims its own slice through an atomic cursor, then steals from
    slower owners, so a Zipf-hot slice cannot serialise the sweep.

    (The historical [Locked] mutex-per-shard mode is retired; the
    [engine.lock_ops] / [engine.query_lock_ops] counters remain and stay
    exactly flat — the lock-freedom witnesses the tests and CI pin.)

    Results are bit-identical to driving one sequential
    {!Stream_histogram.Fixed_window.t} per key with the same per-key
    subsequences (property-tested for domain counts 1, 2 and 4): shard
    independence means parallel execution changes only wall-clock, never
    answers. *)

type t

val create :
  pool:Domain_pool.t ->
  shards:int ->
  window:int ->
  buckets:int ->
  epsilon:float ->
  t
(** An engine of [shards] summaries ([>= 1]), each a fixed-window
    maintainer with the given window/buckets/epsilon and the default
    ([Lazy]) refresh policy — use {!set_refresh_policy} for another.
    Stream keys are [0 .. shards - 1].  Rings hold
    {!default_ring_capacity} values ({!create_with_ring} for another).
    The pool is borrowed, not owned: several engines may share one pool,
    and {!Domain_pool.shutdown} remains the caller's job. *)

val create_with_ring :
  ring_capacity:int ->
  pool:Domain_pool.t ->
  shards:int ->
  window:int ->
  buckets:int ->
  epsilon:float ->
  t
(** {!create} with an explicit per-shard ring capacity ([>= 1], rounded up
    to a power of two).  Smaller rings trade memory for earlier
    backpressure spills; capacity only affects wall-clock and the
    [engine.backpressure_waits] count, never answers. *)

val default_ring_capacity : int

val set_refresh_policy : t -> Stream_histogram.Params.refresh_policy -> unit
(** Set the arrival-time refresh policy of every shard.  Raises
    [Invalid_argument] on [Every k] with [k < 1]. *)

val shard_count : t -> int
val ring_capacity : t -> int
(** Actual (power-of-two) per-shard ring capacity. *)

val pool : t -> Domain_pool.t

val ingest : t -> (int * float) array -> unit
(** Route one batch of [(key, value)] arrivals to their shards and apply
    each shard's sub-batch as a single
    {!Stream_histogram.Fixed_window.push_slice} in arrival order — so the
    per-batch refresh amortisation of the sequential path carries over
    unchanged.  Returns once every point of the batch is applied (the
    rings are fully drained — no value is ever left in flight between
    calls).  The engine is single-producer: at most one [ingest] per
    engine at a time.  Raises [Invalid_argument] (before ingesting
    anything) if any key is out of range or any value non-finite. *)

val ingest_groups : t -> (int * float array) array -> unit
(** {!ingest} for a batch that arrives pre-grouped as [(key, values)] runs
    — the shape of a decoded network ingest frame — routed without ever
    materialising per-point [(key, value)] pairs.  Keys may repeat; a
    shard's sub-batch is its groups' values concatenated in group order,
    so [ingest_groups t gs] is observationally identical to [ingest t]
    of the flattened pairs (same single-producer contract, same
    validation, same per-batch refresh cadence). *)

val refresh_all : ?cold:bool -> t -> unit
(** Rebuild every stale shard's interval lists across the pool — the
    batched counterpart of {!Stream_histogram.Fixed_window.refresh};
    [~cold:true] forces from-scratch rebuilds (the correctness oracle).
    Sweeps are work-stealing (see [engine.refresh_steals]). *)

(** {2 Per-key queries — the concurrency contract}

    Every shard carries, next to its live summary, a {e published read
    view} ({!Stream_histogram.Fixed_window.View}): an immutable snapshot
    behind a padded atomic pointer, republished by the shard's owner at
    every publication point.  Publication points are refresh completions —
    a {!refresh_all} sweep, or an arrival-driven rebuild inside {!ingest}
    ([Eager] every batch, [Every k] whenever a batch crosses the cadence
    boundary).

    {!current_error}, {!current_histogram}, {!herror}, {!length},
    {!query_many} and {!query_global} answer from the published view:
    wait-free loads that never take a lock ([engine.query_lock_ops] stays
    exactly flat — the read-side lock-freedom witness), never touch the
    live summary, and are therefore safe from any domain concurrent with
    an in-flight {!ingest} / {!refresh_all}.  The price is bounded
    staleness: answers reflect the shard as of its last publication
    point, i.e. at most one refresh cadence behind the live summary
    ([Lazy] defers publication to the next {!refresh_all} — quiesce with
    it before reading if you need current answers).  After any engine
    call returns, the published generation equals the live generation of
    every shard that call refreshed (property-tested);
    {!generation_lag} / {!publication_lag} expose the distance.

    View answers are bit-identical to querying the quiesced live summary
    at the same generation — the snapshot-equivalence property the test
    suite pins against the sequential {!Stream_histogram.Fixed_window}
    oracle.

    Live-shard escape hatches ({!with_key}, {!fold}, {!work_counters},
    {!set_refresh_policy}, {!checkpoint}, {!snapshot_bytes}) bypass the
    view and require the same exclusivity as {!ingest} itself (no overlap
    with an in-flight engine call — the single producer that drives
    ingest may use them between batches, which is every in-tree usage). *)

val length : t -> key:int -> int
(** Window length, from the published view (not counted as an estimation
    query). *)

val current_error : t -> key:int -> float
val current_histogram : t -> key:int -> Sh_histogram.Histogram.t
val herror : t -> key:int -> k:int -> x:int -> float

val view : t -> key:int -> Stream_histogram.Fixed_window.View.t
(** The shard's currently published view — one wait-free atomic load.
    The natural input for {!Sh_query.Estimator}-style read-side consumers
    that want a stable snapshot across several estimates. *)

val read_gen : t -> key:int -> int
(** Generation stamp of the published view (also the ["engine.read_gen"]
    gauge, which tracks the most recent publication engine-wide). *)

val generation_lag : t -> key:int -> int
(** Live refresh generation minus published view generation: [0] whenever
    the shard is clean and published, transiently [1] inside an engine
    call.  Reads the live stamp without the ownership token — racy but
    memory-safe mid-flight; telemetry-grade. *)

val publication_lag : t -> key:int -> int
(** Points pushed into the live shard since its published view was cut —
    the staleness bound in points.  Same read discipline as
    {!generation_lag}. *)

(** {2 Batched queries}

    The query vocabulary and its clamping contract live in
    {!Stream_histogram.Query_op} — one shared definition consumed by this
    engine, the wire codec, and the root aggregator. *)

val query_many :
  t ->
  (Stream_histogram.Query_op.scope * Stream_histogram.Query_op.t) array ->
  float array
(** Answer a batch of scoped queries, one float per element.  A
    [Key key] element is a wait-free view load + one
    {!Stream_histogram.Query_op.eval_view} (with a per-domain HERROR memo
    amortising repeated [Herror] probes against the same view); raises
    [Invalid_argument] on an out-of-range key.  A [Global] element is
    answered inline as {!query_global}.  Counted in ["engine.queries"]
    per element and timed as one ["latency.query"] observation. *)

val query_global : t -> Stream_histogram.Query_op.t -> float
(** Answer one query over {e every} key: the fold of the per-key view
    answers in ascending key order, accumulated left-to-right from [0.0]
    — {!Stream_histogram.Query_op.scope}'s [Global] contract, with its
    fixed float association.  Bit-identical to
    {!Stream_histogram.Fw_group.eval_global} over the same per-key window
    contents, which is how the root aggregator's leaf-merged answers are
    proved against this single-process oracle.  Wait-free (published
    views only — quiesce with {!refresh_all} first for current
    answers). *)

val with_key :
  t -> key:int -> f:(Stream_histogram.Fixed_window.t -> 'a) -> 'a
(** Run [f] against the {e live} summary of one shard — the quiesced-read
    escape hatch (recorders, oracles, tests).  Caller must guarantee no
    concurrent engine call.  If [f] refreshed the shard, its view is
    republished before returning. *)

val work_counters : t -> key:int -> Stream_histogram.Fixed_window.work_counters

val fold : t -> init:'a -> f:('a -> int -> Stream_histogram.Fixed_window.t -> 'a) -> 'a
(** Fold over live shards in key order (see the live-shard contract
    above).  [f] must not call back into the engine. *)

(** {2 Introspection} *)

val total_points : t -> int
(** Points ingested since creation (also the ["engine.points"] series). *)

val batches : t -> int

val lock_ops : t -> int
(** Mutex acquisitions this engine has performed (["engine.lock_ops"]).
    Always [0] since the [Locked] mode's retirement — kept as the
    steady-state lock-freedom witness (CI greps it). *)

val backpressure_waits : t -> int
(** Values that found their ring full and were spilled to the overflow
    buffer (["engine.backpressure_waits"]).  No value is ever dropped;
    a non-zero count means ring capacity is small for the batch shape. *)

val refresh_steals : t -> int
(** Shards refreshed by a non-owner during {!refresh_all} work-stealing
    sweeps (["engine.refresh_steals"]). *)

val queries : t -> int
(** Estimation queries answered (["engine.queries"]): single-query calls
    plus one per {!query_many} element. *)

val query_lock_ops : t -> int
(** Mutex acquisitions performed by the query plane
    (["engine.query_lock_ops"]).  Always [0] — the read-side wait-freedom
    witness, pinned even under a mixed ingest+query run. *)

val snapshots_published : t -> int
(** Read views published since creation (["engine.snapshots_published"]),
    including the initial per-shard captures. *)

(** {2 Durability & snapshot interchange}

    A checkpoint is one {!Sh_persist.Frame}-formatted byte stream:
    header, an engine meta frame (shard count, cumulative counters), then
    one {!Stream_histogram.Fixed_window} frame per shard in key order.
    {!checkpoint} publishes those bytes as a file (write-to-temp + atomic
    rename, so a crash during {!checkpoint} always leaves the previous
    checkpoint readable — proved by the fault-injection suite);
    {!snapshot_bytes} returns the {e same bytes} in memory — the
    interchange format the aggregation plane ships over the wire and
    decodes with {!decode_snapshot}. *)

val checkpoint : t -> file:string -> unit
(** Capture every shard and atomically publish the file.  The engine is
    quiesced first: any residual ring/overflow contents are drained into
    their shards on the caller, so every frame captures a shard with no
    in-flight values.  Do not run concurrently with {!ingest}: frames are
    per-shard consistent, but a mid-batch checkpoint would split that
    batch across the checkpoint boundary. *)

val snapshot_bytes : t -> string
(** The checkpoint byte stream, in memory — byte-identical to what
    {!checkpoint} would write.  Same quiescence and exclusivity contract
    as {!checkpoint}. *)

val decode_snapshot : string -> Stream_histogram.Fixed_window.t array
(** Decode {!snapshot_bytes} (or a checkpoint file's contents) into its
    per-shard summaries, in key order — each rebuilt with one cold
    refresh, so every answer is bit-identical to the source shard's at
    capture.  The aggregation plane's half of the interchange contract:
    it feeds these to {!Stream_histogram.Fw_group.of_summaries} without
    knowing the engine's framing.  Raises {!Sh_persist.Persist.Corrupt}
    on damaged bytes, {!Sh_persist.Persist.Version_mismatch} on a foreign
    format version. *)

val restore_from : pool:Domain_pool.t -> file:string -> t
(** Rebuild an engine from a {!checkpoint} file: geometry, per-shard
    window state (each rebuilt with one cold refresh), policies, and the
    cumulative {!total_points}/{!batches} counters all come from the
    file.  Raises {!Sh_persist.Persist.Corrupt} on any damaged or
    truncated file, {!Sh_persist.Persist.Version_mismatch} on a foreign
    format version, and [Sys_error] if the file cannot be read — never
    returns a silently wrong engine. *)
