(** Sharded multi-stream engine: S independent fixed-window summaries
    (one per stream key), batched parallel ingest, batched refresh.

    This is the multi-tenant regime of the ROADMAP north star: maintaining
    one windowed epsilon-approximate histogram per key (tenant, sensor,
    router port ...) at line rate.  Shards are fully independent — the
    paper's per-stream algorithm (Theorem 1) needs no cross-stream state —
    so the engine needs no histogram-level locking; what varies is how a
    batch reaches the shards:

    {ul
    {- {!Pinned} (the lock-free pipeline, default everywhere in-tree): the
       producer routes each value into a bounded {!Spsc_ring} per shard —
       one array store plus one atomic store, no mutex, no CAS — and one
       drain task per {e owner} applies each owned shard's sub-batch.
       Owners are static contiguous slices of the shard space, at most one
       per pool domain, so no two tasks ever touch the same shard.  A full
       ring spills to a per-shard overflow buffer (bounded by the batch
       size) and counts [engine.backpressure_waits].  Refresh sweeps are
       work-stealing: each owner claims its own slice through an atomic
       cursor, then steals from slower owners, so a Zipf-hot slice cannot
       serialise the sweep.}
    {- {!Locked} (the PR 3 engine, kept one release for head-to-head
       benchmarking): per-shard mutexes, one pool task per touched shard.
       [engine.lock_ops] counts every mutex acquisition in this mode — and
       stays flat in [Pinned] mode, which is the lock-freedom proof the
       tests pin.}}

    Results are bit-identical across modes and to driving one sequential
    {!Stream_histogram.Fixed_window.t} per key with the same per-key
    subsequences (property-tested for domain counts 1, 2 and 4): shard
    independence means parallel execution changes only wall-clock, never
    answers. *)

type t

type mode =
  | Locked  (** per-shard mutex, one pool task per touched shard *)
  | Pinned  (** SPSC rings + domain-pinned shard owners; lock-free ingest *)

val mode_to_string : mode -> string
val mode_of_string : string -> mode option
(** ["locked"] / ["pinned"]. *)

val create :
  mode:mode ->
  pool:Domain_pool.t ->
  shards:int ->
  window:int ->
  buckets:int ->
  epsilon:float ->
  t
(** An engine of [shards] summaries ([>= 1]), each a fixed-window
    maintainer with the given window/buckets/epsilon and the default
    ([Lazy]) refresh policy — use {!set_refresh_policy} for another.
    Stream keys are [0 .. shards - 1].  [Pinned] rings hold
    {!default_ring_capacity} values ({!create_with_ring} for another).
    The pool is borrowed, not owned: several engines may share one pool,
    and {!Domain_pool.shutdown} remains the caller's job. *)

val create_with_ring :
  mode:mode ->
  ring_capacity:int ->
  pool:Domain_pool.t ->
  shards:int ->
  window:int ->
  buckets:int ->
  epsilon:float ->
  t
(** {!create} with an explicit per-shard ring capacity ([>= 1], rounded up
    to a power of two).  Smaller rings trade memory for earlier
    backpressure spills; capacity only affects wall-clock and the
    [engine.backpressure_waits] count, never answers. *)

val default_ring_capacity : int

val set_refresh_policy : t -> Stream_histogram.Params.refresh_policy -> unit
(** Set the arrival-time refresh policy of every shard.  Raises
    [Invalid_argument] on [Every k] with [k < 1]. *)

val shard_count : t -> int
val mode : t -> mode
val ring_capacity : t -> int
(** Actual (power-of-two) per-shard ring capacity. *)

val pool : t -> Domain_pool.t

val ingest : t -> (int * float) array -> unit
(** Route one batch of [(key, value)] arrivals to their shards and apply
    each shard's sub-batch as a single
    {!Stream_histogram.Fixed_window.push_slice} in arrival order — so the
    per-batch refresh amortisation of the sequential path carries over
    unchanged in both modes, and answers cannot depend on the mode.
    Returns once every point of the batch is applied (the [Pinned] rings
    are fully drained — no value is ever left in flight between calls).
    The engine is single-producer: at most one [ingest] per engine at a
    time.  Raises [Invalid_argument] (before ingesting anything) if any
    key is out of range or any value non-finite. *)

val ingest_groups : t -> (int * float array) array -> unit
(** {!ingest} for a batch that arrives pre-grouped as [(key, values)] runs
    — the shape of a decoded network ingest frame — routed without ever
    materialising per-point [(key, value)] pairs.  Keys may repeat; a
    shard's sub-batch is its groups' values concatenated in group order,
    so [ingest_groups t gs] is observationally identical to [ingest t]
    of the flattened pairs (same single-producer contract, same
    validation, same per-batch refresh cadence). *)

val refresh_all : ?cold:bool -> t -> unit
(** Rebuild every stale shard's interval lists across the pool — the
    batched counterpart of {!Stream_histogram.Fixed_window.refresh};
    [~cold:true] forces from-scratch rebuilds (the correctness oracle).
    [Pinned] sweeps are work-stealing (see [engine.refresh_steals]). *)

(** {2 Per-key queries — the concurrency contract}

    Every shard carries, next to its live summary, a {e published read
    view} ({!Stream_histogram.Fixed_window.View}): an immutable snapshot
    behind a padded atomic pointer, republished by the shard's owner at
    every publication point.  Publication points are refresh completions —
    a {!refresh_all} sweep, an arrival-driven rebuild inside {!ingest}
    ([Eager] every batch, [Every k] whenever a batch crosses the cadence
    boundary), or a query-triggered rebuild under a [Locked] mutex.  The
    two modes then route queries differently:

    {ul
    {- [Locked] — {!current_error}, {!current_histogram}, {!herror},
       {!length} and {!query_many} answer from the {e live} shard under
       its mutex.  Safe concurrent with {!ingest} / {!refresh_all} from
       any domain, at the price of one mutex acquisition per query
       (counted in [engine.query_lock_ops] as well as [engine.lock_ops]),
       and answers always reflect every ingested point.}
    {- [Pinned] — the same calls answer from the {e published view}:
       wait-free loads that never take a lock ([engine.query_lock_ops]
       stays exactly flat — the read-side lock-freedom witness), never
       touch the live summary, and are therefore safe from any domain
       concurrent with an in-flight {!ingest} / {!refresh_all}.  The price
       is bounded staleness: answers reflect the shard as of its last
       publication point, i.e. at most one refresh cadence behind the live
       summary ([Lazy] defers publication to the next {!refresh_all} —
       quiesce with it before reading if you need current answers).  After
       any engine call returns, the published generation equals the live
       generation of every shard that call refreshed (property-tested);
       {!generation_lag} / {!publication_lag} expose the distance.}}

    View answers are bit-identical to querying the quiesced live summary
    at the same generation — the snapshot-equivalence property the test
    suite pins across modes and domain counts.

    Live-shard escape hatches ({!with_key}, {!fold}, {!work_counters},
    {!set_refresh_policy}, {!checkpoint}) bypass the view.  In [Locked]
    mode they lock per shard and remain safe concurrent with ingest; in
    [Pinned] mode they require the same exclusivity as {!ingest} itself
    (no overlap with an in-flight engine call — the single producer that
    drives ingest may use them between batches, which is every in-tree
    usage). *)

val length : t -> key:int -> int
(** Window length: live under the mutex in [Locked], from the published
    view in [Pinned] (not counted as an estimation query). *)

val current_error : t -> key:int -> float
val current_histogram : t -> key:int -> Sh_histogram.Histogram.t
val herror : t -> key:int -> k:int -> x:int -> float

val view : t -> key:int -> Stream_histogram.Fixed_window.View.t
(** The shard's currently published view — one wait-free atomic load, in
    either mode.  The natural input for {!Sh_query.Estimator}-style
    read-side consumers that want a stable snapshot across several
    estimates. *)

val read_gen : t -> key:int -> int
(** Generation stamp of the published view (also the ["engine.read_gen"]
    gauge, which tracks the most recent publication engine-wide). *)

val generation_lag : t -> key:int -> int
(** Live refresh generation minus published view generation: [0] whenever
    the shard is clean and published, transiently [1] inside an engine
    call.  Reads the live stamp without the ownership token — racy but
    memory-safe mid-flight; telemetry-grade. *)

val publication_lag : t -> key:int -> int
(** Points pushed into the live shard since its published view was cut —
    the staleness bound in points.  Same read discipline as
    {!generation_lag}. *)

(** {2 Batched queries} *)

type query =
  | Current_error  (** approximate HERROR\[n, B\] of the window *)
  | Window_length  (** points in the window, as a float *)
  | Herror of { k : int; x : int }
      (** HERROR\[x, k\]; [k] clamped to [\[1, B\]], [x] to [\[0, n\]] *)
  | Range_sum of { lo : int; hi : int }
      (** histogram range-sum estimate over window indices, intersected
          with [\[1, n\]] (empty intersection and empty window sum to 0) *)
  | Point_estimate of { index : int }
      (** histogram point estimate; 0 outside [\[1, n\]] *)

val query_many : t -> (int * query) array -> float array
(** Answer a batch of [(key, query)] pairs, one float per element, under
    the per-mode routing above ([Pinned]: each element is a wait-free view
    load + evaluation, with a per-domain HERROR memo amortising repeated
    [Herror] probes against the same view).  Unlike the single-query entry
    points, structural parameters are clamped to the answering state
    rather than raising — a remote client cannot know the instantaneous
    window length (see the per-constructor notes).  Counted in
    ["engine.queries"] per element and timed as one ["latency.query"]
    observation. *)

val with_key :
  t -> key:int -> f:(Stream_histogram.Fixed_window.t -> 'a) -> 'a
(** Run [f] against the {e live} summary of one shard — the quiesced-read
    escape hatch (recorders, oracles, tests).  [Locked]: under the shard's
    mutex.  [Pinned]: caller must guarantee no concurrent engine call.
    If [f] refreshed the shard, its view is republished before the
    exclusive section ends. *)

val work_counters : t -> key:int -> Stream_histogram.Fixed_window.work_counters

val fold : t -> init:'a -> f:('a -> int -> Stream_histogram.Fixed_window.t -> 'a) -> 'a
(** Fold over live shards in key order ([Locked]: holding each shard's
    lock in turn; [Pinned]: see the live-shard contract above).  [f] must
    not call back into the engine. *)

(** {2 Introspection} *)

val total_points : t -> int
(** Points ingested since creation (also the ["engine.points"] series). *)

val batches : t -> int

val lock_ops : t -> int
(** Mutex acquisitions this engine has performed (["engine.lock_ops"]).
    Grows with every batch and query in [Locked] mode; stays exactly flat
    in [Pinned] mode — the steady-state lock-freedom witness. *)

val backpressure_waits : t -> int
(** Values that found their ring full and were spilled to the overflow
    buffer (["engine.backpressure_waits"]).  No value is ever dropped;
    a non-zero count means ring capacity is small for the batch shape. *)

val refresh_steals : t -> int
(** Shards refreshed by a non-owner during {!refresh_all} work-stealing
    sweeps (["engine.refresh_steals"], [Pinned] only). *)

val queries : t -> int
(** Estimation queries answered (["engine.queries"]): single-query calls
    plus one per {!query_many} element. *)

val query_lock_ops : t -> int
(** Mutex acquisitions performed by the query plane
    (["engine.query_lock_ops"]).  Grows with every estimation query in
    [Locked] mode; stays exactly flat in [Pinned] mode even under a mixed
    ingest+query run — the read-side wait-freedom witness. *)

val snapshots_published : t -> int
(** Read views published since creation (["engine.snapshots_published"]),
    including the initial per-shard captures. *)

(** {2 Durability}

    A checkpoint is one {!Sh_persist.Frame}-formatted file: header, an
    engine meta frame (shard count, cumulative counters), then one
    {!Stream_histogram.Fixed_window} frame per shard.  Files are published
    with write-to-temp + atomic rename, so a crash during {!checkpoint}
    always leaves the previous checkpoint readable (proved by the
    fault-injection suite).  The mode is runtime configuration, not
    state: a checkpoint written by either mode restores into either. *)

val checkpoint : t -> file:string -> unit
(** Capture every shard and atomically publish the file.  [Pinned]
    engines are quiesced first: any residual ring/overflow contents are
    drained into their shards on the caller, so every frame captures a
    shard with no in-flight values.  Do not run concurrently with
    {!ingest}: frames are per-shard consistent, but a mid-batch
    checkpoint would split that batch across the checkpoint boundary. *)

val restore_from : mode:mode -> pool:Domain_pool.t -> file:string -> t
(** Rebuild an engine from a {!checkpoint} file: geometry, per-shard
    window state (each rebuilt with one cold refresh), policies, and the
    cumulative {!total_points}/{!batches} counters all come from the file;
    the ingest [mode] is chosen fresh by the caller.  Raises
    {!Sh_persist.Persist.Corrupt} on any damaged or truncated file,
    {!Sh_persist.Persist.Version_mismatch} on a foreign format version,
    and [Sys_error] if the file cannot be read — never returns a silently
    wrong engine. *)
