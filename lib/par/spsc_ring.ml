(* Classic bounded SPSC ring with cached-index fast paths.

   Cursors are monotone ints: [head] is the next position to pop (written
   only by the consumer), [tail] the next position to push (written only
   by the producer).  [tail - head] is the fill level; positions map into
   the flat float buffer through a power-of-two mask.  OCaml [Atomic]
   operations are sequentially consistent, so the producer's buffer store
   before [Atomic.set tail] happens-before the consumer's buffer load
   after [Atomic.get tail] (and symmetrically for [head]) — 8-byte float
   slots in a flat array cannot tear on 64-bit targets.

   False-sharing layout: each side's mutable state lives on its own cache
   line.  Inside the record, seven dummy words separate the producer's
   cursor cache from the consumer's; the two contended [Atomic.t] cells
   themselves are separate heap blocks, allocated with a 64-byte spacer
   block between them so the minor heap's bump allocator lands them on
   different lines (best effort — the GC may move them, but survivors are
   copied in allocation order, which preserves the separation). *)

type t = {
  buf : float array;
  mask : int;
  (* producer line: [tail] is written here, [head_cache] is the producer's
     stale view of the consumer cursor *)
  tail : int Atomic.t;
  mutable head_cache : int;
  _pad0 : int;
  _pad1 : int;
  _pad2 : int;
  _pad3 : int;
  _pad4 : int;
  _pad5 : int;
  _pad6 : int;
  (* consumer line *)
  head : int Atomic.t;
  mutable tail_cache : int;
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ~capacity =
  if capacity < 1 then invalid_arg "Spsc_ring.create: capacity must be >= 1";
  let cap = next_pow2 capacity in
  let tail = Atomic.make 0 in
  (* 64-byte spacer between the two contended atomic cells *)
  ignore (Sys.opaque_identity (Array.make 8 0));
  let head = Atomic.make 0 in
  {
    buf = Array.make cap 0.0;
    mask = cap - 1;
    tail;
    head_cache = 0;
    _pad0 = 0;
    _pad1 = 0;
    _pad2 = 0;
    _pad3 = 0;
    _pad4 = 0;
    _pad5 = 0;
    _pad6 = 0;
    head;
    tail_cache = 0;
  }

let capacity t = t.mask + 1

let try_push t v =
  let tl = Atomic.get t.tail in
  if tl - t.head_cache > t.mask then t.head_cache <- Atomic.get t.head;
  if tl - t.head_cache > t.mask then false
  else begin
    t.buf.(tl land t.mask) <- v;
    Atomic.set t.tail (tl + 1);
    true
  end

let pop t =
  let hd = Atomic.get t.head in
  if hd = t.tail_cache then t.tail_cache <- Atomic.get t.tail;
  if hd = t.tail_cache then None
  else begin
    let v = t.buf.(hd land t.mask) in
    Atomic.set t.head (hd + 1);
    Some v
  end

let pop_into t dst ~pos =
  if pos < 0 || pos > Array.length dst then
    invalid_arg "Spsc_ring.pop_into: pos out of range";
  let hd = Atomic.get t.head in
  if hd = t.tail_cache then t.tail_cache <- Atomic.get t.tail;
  let n = min (t.tail_cache - hd) (Array.length dst - pos) in
  if n > 0 then begin
    for i = 0 to n - 1 do
      dst.(pos + i) <- t.buf.((hd + i) land t.mask)
    done;
    Atomic.set t.head (hd + n)
  end;
  max n 0

let length t = Atomic.get t.tail - Atomic.get t.head
let is_empty t = length t = 0
