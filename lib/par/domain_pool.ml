(* Fixed-size domain pool on stdlib Domain/Mutex/Condition only (the
   toolchain has no domainslib).

   [create ~domains:n] spawns n - 1 worker domains; the caller is the
   n-th worker.  Tasks live in one shared FIFO guarded by a mutex and a
   condition.  Submitters always help: [await] drains the queue while its
   promise is pending, so a pool of 1 domain degenerates to plain inline
   execution (no workers, no context switches) and a task submitted from
   inside a task cannot deadlock the pool.  Results and exceptions travel
   through promises; [run] re-raises the first failure after the whole
   batch has settled, so shared state is never abandoned mid-batch. *)

type task = unit -> unit

type t = {
  domains : int;
  q : task Queue.t;
  m : Mutex.t;
  work : Condition.t; (* signalled on enqueue and on shutdown *)
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
  c_tasks : Sh_obs.Metric.counter;
}

type 'a state = Pending | Done of 'a | Failed of exn

type 'a promise = { pm : Mutex.t; pc : Condition.t; mutable state : 'a state }

let domains t = t.domains

let worker_loop pool =
  let rec loop () =
    Mutex.lock pool.m;
    while Queue.is_empty pool.q && not pool.stopping do
      Condition.wait pool.work pool.m
    done;
    match Queue.take_opt pool.q with
    | Some task ->
      Mutex.unlock pool.m;
      task ();
      loop ()
    | None ->
      (* stopping and drained *)
      Mutex.unlock pool.m
  in
  loop ()

let create ~domains =
  if domains < 1 then invalid_arg "Domain_pool.create: domains must be >= 1";
  let pool =
    {
      domains;
      q = Queue.create ();
      m = Mutex.create ();
      work = Condition.create ();
      stopping = false;
      workers = [];
      c_tasks = Sh_obs.Obs.counter "pool.tasks";
    }
  in
  pool.workers <- List.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let enqueue pool task =
  Mutex.lock pool.m;
  if pool.stopping then begin
    Mutex.unlock pool.m;
    invalid_arg "Domain_pool: pool is shut down"
  end;
  Queue.push task pool.q;
  Condition.signal pool.work;
  Mutex.unlock pool.m

let async pool f =
  let p = { pm = Mutex.create (); pc = Condition.create (); state = Pending } in
  enqueue pool (fun () ->
      let result = try Done (f ()) with e -> Failed e in
      Sh_obs.Metric.incr pool.c_tasks;
      Mutex.lock p.pm;
      p.state <- result;
      Condition.broadcast p.pc;
      Mutex.unlock p.pm);
  p

(* Steal one task from the pool queue, if any. *)
let try_help pool =
  Mutex.lock pool.m;
  let task = Queue.take_opt pool.q in
  Mutex.unlock pool.m;
  match task with
  | Some task ->
    task ();
    true
  | None -> false

let peek p =
  Mutex.lock p.pm;
  let s = p.state in
  Mutex.unlock p.pm;
  s

let await pool p =
  (* Help run queued tasks while the promise is pending: guarantees
     progress with zero workers (domains = 1) and keeps the caller busy
     instead of blocked while workers finish the tail of a batch. *)
  let rec drive () =
    match peek p with
    | Done v -> v
    | Failed e -> raise e
    | Pending ->
      if try_help pool then drive ()
      else begin
        (* queue empty: the task is running on a worker (or is this very
           promise being resolved) — block until resolved *)
        Mutex.lock p.pm;
        while p.state = Pending do
          Condition.wait p.pc p.pm
        done;
        Mutex.unlock p.pm;
        drive ()
      end
  in
  drive ()

let run pool thunks =
  let promises = Array.map (fun f -> async pool f) thunks in
  (* Settle every promise before surfacing a failure: a partial batch must
     not leave tasks mutating shared state after run returns. *)
  let first_error = ref None in
  let results =
    Array.map
      (fun p ->
        match await pool p with
        | v -> Some v
        | exception e ->
          if !first_error = None then first_error := Some e;
          None)
      promises
  in
  match !first_error with
  | Some e -> raise e
  | None -> Array.map Option.get results

let parallel_for ?chunk pool ~start ~finish body =
  if finish >= start then begin
    let n = finish - start + 1 in
    let chunk =
      match chunk with
      | Some c ->
        if c < 1 then invalid_arg "Domain_pool.parallel_for: chunk must be >= 1";
        c
      | None ->
        (* ~4 chunks per domain: enough slack for dynamic load balance,
           few enough that per-task overhead stays negligible *)
        max 1 ((n + (4 * pool.domains) - 1) / (4 * pool.domains))
    in
    let nchunks = (n + chunk - 1) / chunk in
    ignore
      (run pool
         (Array.init nchunks (fun ci ->
              fun () ->
               let lo = start + (ci * chunk) in
               let hi = min finish (lo + chunk - 1) in
               for i = lo to hi do
                 body i
               done)))
  end

let shutdown pool =
  Mutex.lock pool.m;
  let ws = pool.workers in
  pool.stopping <- true;
  pool.workers <- [];
  Condition.broadcast pool.work;
  Mutex.unlock pool.m;
  List.iter Domain.join ws

let with_pool ~domains f =
  let pool = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
