module FW = Stream_histogram.Fixed_window
module Params = Stream_histogram.Params
module Obs = Sh_obs.Obs
module M = Sh_obs.Metric

(* One shard = one independent fixed-window summary.  The mutex is the
   shard's ownership token: every touch of [fw] — batched ingest on a pool
   domain, refresh, queries — holds it.  Shards never share mutable state
   with each other (the histograms are per-shard, the telemetry counters
   per-instance and atomic), so there is no histogram-level locking and no
   lock ordering to get wrong: at most one shard lock is held at a time. *)
type shard = { fw : FW.t; lock : Mutex.t }

type t = {
  pool : Domain_pool.t;
  shards : shard array;
  c_points : M.counter;
  c_batches : M.counter;
  c_refreshes : M.counter;
}

let create ?policy ~pool ~shards ~window ~buckets ~epsilon () =
  if shards < 1 then invalid_arg "Shard_engine.create: shards must be >= 1";
  let labels = [ ("instance", Obs.instance "se") ] in
  let mk _ =
    let fw = FW.create ~window ~buckets ~epsilon in
    (match policy with Some p -> FW.set_refresh_policy fw p | None -> ());
    { fw; lock = Mutex.create () }
  in
  {
    pool;
    (* sequential creation: instance-name allocation stays deterministic
       (fw0, fw1, ... in key order) regardless of the pool size *)
    shards = Array.init shards mk;
    c_points = Obs.counter ~labels "engine.points";
    c_batches = Obs.counter ~labels "engine.batches";
    c_refreshes = Obs.counter ~labels "engine.refresh_sweeps";
  }

let shard_count t = Array.length t.shards

let check_key t key =
  if key < 0 || key >= Array.length t.shards then
    invalid_arg (Printf.sprintf "Shard_engine: key %d out of range [0, %d)" key (Array.length t.shards))

let with_shard t key f =
  check_key t key;
  let s = t.shards.(key) in
  Mutex.lock s.lock;
  match f s.fw with
  | v ->
    Mutex.unlock s.lock;
    v
  | exception e ->
    Mutex.unlock s.lock;
    raise e

(* Route a batch: bucket the values by key (two counting passes, no
   per-pair allocation), then run one task per non-empty shard on the
   pool.  Each task calls the shard's [push_many], so the per-batch
   refresh amortisation of the sequential path carries over unchanged —
   the parallelism is purely across shards. *)
let ingest t batch =
  let nb = Array.length batch in
  if nb > 0 then begin
    let s = Array.length t.shards in
    Array.iter (fun (k, _) -> check_key t k) batch;
    let counts = Array.make s 0 in
    Array.iter (fun (k, _) -> counts.(k) <- counts.(k) + 1) batch;
    let groups = Array.map (fun c -> Array.make c 0.0) counts in
    let fill = Array.make s 0 in
    Array.iter
      (fun (k, v) ->
        groups.(k).(fill.(k)) <- v;
        fill.(k) <- fill.(k) + 1)
      batch;
    let touched = ref [] in
    for k = s - 1 downto 0 do
      if counts.(k) > 0 then touched := k :: !touched
    done;
    let tasks =
      Array.of_list
        (List.map
           (fun k () -> with_shard t k (fun fw -> FW.push_many fw groups.(k)))
           !touched)
    in
    ignore (Domain_pool.run t.pool tasks);
    M.add t.c_points nb;
    M.incr t.c_batches
  end

(* Rebuild every stale shard's interval lists across the pool: the batched
   refresh.  One task per shard — shard costs are similar, and the pool
   queue load-balances the remainder. *)
let refresh_all ?(cold = false) t =
  Obs.with_span "engine.refresh_all" (fun () ->
      let tasks =
        Array.mapi
          (fun k _ -> fun () -> with_shard t k (fun fw -> FW.refresh ~cold fw))
          t.shards
      in
      ignore (Domain_pool.run t.pool tasks);
      M.incr t.c_refreshes)

let pool t = t.pool
let length t ~key = with_shard t key FW.length
let current_error t ~key = with_shard t key FW.current_error
let current_histogram t ~key = with_shard t key FW.current_histogram
let herror t ~key ~k ~x = with_shard t key (fun fw -> FW.herror fw ~k ~x)
let work_counters t ~key = with_shard t key FW.work_counters

let total_points t = M.value t.c_points
let batches t = M.value t.c_batches

let fold t ~init ~f =
  let acc = ref init in
  Array.iteri (fun k _ -> acc := with_shard t k (fun fw -> f !acc k fw)) t.shards;
  !acc
