module FW = Stream_histogram.Fixed_window
module Params = Stream_histogram.Params
module Obs = Sh_obs.Obs
module M = Sh_obs.Metric

(* One shard = one independent fixed-window summary.  The mutex is the
   shard's ownership token: every touch of [fw] — batched ingest on a pool
   domain, refresh, queries — holds it.  Shards never share mutable state
   with each other (the histograms are per-shard, the telemetry counters
   per-instance and atomic), so there is no histogram-level locking and no
   lock ordering to get wrong: at most one shard lock is held at a time. *)
type shard = { fw : FW.t; lock : Mutex.t }

type t = {
  pool : Domain_pool.t;
  shards : shard array;
  (* Routing arena, reused across batches (the engine used to allocate
     counts / groups / fill arrays and one closure per touched shard per
     batch): [counts] is the per-shard sub-batch size of the batch being
     ingested, [group_data.(k)] the per-shard value buffer (capacity
     doubling, never shrinks), and the task arrays are built once at
     creation.  The arena makes [ingest] single-producer: concurrent
     [ingest] calls on the same engine would race on it (queries and
     [refresh_all] remain safe alongside, per the shard locks). *)
  counts : int array;
  group_data : float array array;
  ingest_tasks : (unit -> unit) array;
  warm_tasks : (unit -> unit) array;
  cold_tasks : (unit -> unit) array;
  c_points : M.counter;
  c_batches : M.counter;
  c_refreshes : M.counter;
}

(* Wire an engine around an existing shard array — shared by [create]
   (fresh summaries) and [restore_from] (decoded ones). *)
let build ~pool shard_arr =
  let shards = Array.length shard_arr in
  let labels = [ ("instance", Obs.instance "se") ] in
  let counts = Array.make shards 0 in
  let group_data = Array.make shards [||] in
  let locked sh f =
    Mutex.lock sh.lock;
    match f sh.fw with
    | () -> Mutex.unlock sh.lock
    | exception e ->
      Mutex.unlock sh.lock;
      raise e
  in
  (* The prebuilt task closures capture the shard and the arena cells
     directly, so a batch submits the same immutable task array every
     time; a task for a shard the batch doesn't touch is a no-op. *)
  let ingest_task k =
    let sh = shard_arr.(k) in
    fun () ->
      let c = counts.(k) in
      if c > 0 then locked sh (fun fw -> FW.push_slice fw group_data.(k) ~pos:0 ~len:c)
  in
  let refresh_task ~cold k =
    let sh = shard_arr.(k) in
    fun () -> locked sh (fun fw -> FW.refresh ~cold fw)
  in
  {
    pool;
    shards = shard_arr;
    counts;
    group_data;
    ingest_tasks = Array.init shards ingest_task;
    warm_tasks = Array.init shards (refresh_task ~cold:false);
    cold_tasks = Array.init shards (refresh_task ~cold:true);
    c_points = Obs.counter ~labels "engine.points";
    c_batches = Obs.counter ~labels "engine.batches";
    c_refreshes = Obs.counter ~labels "engine.refresh_sweeps";
  }

let create ~pool ~shards ~window ~buckets ~epsilon =
  if shards < 1 then invalid_arg "Shard_engine.create: shards must be >= 1";
  (* sequential creation: instance-name allocation stays deterministic
     (fw0, fw1, ... in key order) regardless of the pool size *)
  build ~pool
    (Array.init shards (fun _ ->
         { fw = FW.create ~window ~buckets ~epsilon; lock = Mutex.create () }))

let shard_count t = Array.length t.shards

let check_key t key =
  if key < 0 || key >= Array.length t.shards then
    invalid_arg (Printf.sprintf "Shard_engine: key %d out of range [0, %d)" key (Array.length t.shards))

let with_shard t key f =
  check_key t key;
  let s = t.shards.(key) in
  Mutex.lock s.lock;
  match f s.fw with
  | v ->
    Mutex.unlock s.lock;
    v
  | exception e ->
    Mutex.unlock s.lock;
    raise e

(* Route a batch: bucket the values by key into the per-shard arena
   buffers (two counting passes, no per-pair allocation), then run the
   prebuilt task array on the pool — each touched shard ingests its slice
   via [push_slice], so the per-batch refresh amortisation of the
   sequential path carries over unchanged; the parallelism is purely
   across shards.  Steady state allocates nothing per batch beyond the
   pool's own submission bookkeeping: the value buffers double to the
   largest sub-batch seen and are then reused. *)
let ingest t batch =
  let nb = Array.length batch in
  if nb > 0 then begin
    let s = Array.length t.shards in
    for i = 0 to nb - 1 do
      let k, v = batch.(i) in
      check_key t k;
      if not (Float.is_finite v) then invalid_arg "Shard_engine.ingest: non-finite value"
    done;
    let counts = t.counts in
    Array.fill counts 0 s 0;
    for i = 0 to nb - 1 do
      let k, _ = batch.(i) in
      counts.(k) <- counts.(k) + 1
    done;
    for k = 0 to s - 1 do
      if Array.length t.group_data.(k) < counts.(k) then
        t.group_data.(k) <-
          Array.make (max counts.(k) (2 * Array.length t.group_data.(k))) 0.0
    done;
    (* second pass refills counts as fill cursors, then restores them *)
    Array.fill counts 0 s 0;
    for i = 0 to nb - 1 do
      let k, v = batch.(i) in
      t.group_data.(k).(counts.(k)) <- v;
      counts.(k) <- counts.(k) + 1
    done;
    ignore (Domain_pool.run t.pool t.ingest_tasks);
    M.add t.c_points nb;
    M.incr t.c_batches
  end

(* Rebuild every stale shard's interval lists across the pool: the batched
   refresh.  One task per shard — shard costs are similar, and the pool
   queue load-balances the remainder. *)
let refresh_all ?(cold = false) t =
  Obs.with_span "engine.refresh_all" (fun () ->
      ignore (Domain_pool.run t.pool (if cold then t.cold_tasks else t.warm_tasks));
      M.incr t.c_refreshes)

let pool t = t.pool
let length t ~key = with_shard t key FW.length
let current_error t ~key = with_shard t key FW.current_error
let current_histogram t ~key = with_shard t key FW.current_histogram
let herror t ~key ~k ~x = with_shard t key (fun fw -> FW.herror fw ~k ~x)
let work_counters t ~key = with_shard t key FW.work_counters

let total_points t = M.value t.c_points
let batches t = M.value t.c_batches

let fold t ~init ~f =
  let acc = ref init in
  Array.iteri (fun k _ -> acc := with_shard t k (fun fw -> f !acc k fw)) t.shards;
  !acc

let set_refresh_policy t policy =
  Array.iteri (fun k _ -> with_shard t k (fun fw -> FW.set_refresh_policy fw policy)) t.shards

let create_legacy ?policy ~pool ~shards ~window ~buckets ~epsilon () =
  let t = create ~pool ~shards ~window ~buckets ~epsilon in
  (match policy with Some p -> set_refresh_policy t p | None -> ());
  t

(* --- persistence ---------------------------------------------------- *)

module Codec = Sh_persist.Codec
module Frame = Sh_persist.Frame
module P = Sh_persist.Persist

let engine_tag = Char.code 'S'

let checkpoint t ~file =
  Obs.with_span "engine.checkpoint" @@ fun () ->
  let meta = Buffer.create 32 in
  Codec.put_u8 meta engine_tag;
  Codec.put_varint meta (Array.length t.shards);
  Codec.put_varint meta (M.value t.c_points);
  Codec.put_varint meta (M.value t.c_batches);
  Codec.put_varint meta (M.value t.c_refreshes);
  (* Each shard is encoded under its own mutex — the same ownership token
     as ingest and queries, taken one shard at a time — so every frame is
     an internally consistent summary and queries keep flowing while the
     checkpoint walks the shards.  The file itself is assembled in memory
     and published atomically only after every frame is captured. *)
  let shard_frames =
    Array.to_list
      (Array.mapi
         (fun k _ ->
            let payload = Buffer.create 256 in
            with_shard t k (fun fw -> FW.encode payload fw);
            Frame.frame_string (Buffer.contents payload))
         t.shards)
  in
  P.write_file_atomic ~path:file ~header:(Frame.header_string ())
    ~frames:(Frame.frame_string (Buffer.contents meta) :: shard_frames);
  M.incr P.c_snapshots

let restore_from ~pool ~file =
  Obs.with_span "engine.restore" @@ fun () ->
  P.rejecting @@ fun () ->
  let r = Codec.of_string (P.read_file file) in
  Frame.read_header r;
  let meta = Frame.read_frame r in
  let tag = Codec.get_u8 meta in
  if tag <> engine_tag then
    Codec.corruptf "Shard_engine.restore_from: tag %d is not an engine checkpoint"
      tag;
  let shards = Codec.get_varint meta in
  let points = Codec.get_varint meta in
  let batches = Codec.get_varint meta in
  let refreshes = Codec.get_varint meta in
  Codec.expect_end meta ~what:"engine meta frame";
  if shards < 1 then
    Codec.corruptf "Shard_engine.restore_from: shard count %d < 1" shards;
  (* Sequential decode in key order: deterministic instance names, and
     each shard's cold refresh happens inside FW.decode. *)
  let shard_arr =
    Array.init shards (fun _ ->
        let fr = Frame.read_frame r in
        let fw = FW.decode fr in
        Codec.expect_end fr ~what:"shard frame";
        { fw; lock = Mutex.create () })
  in
  Codec.expect_end r ~what:"engine checkpoint";
  let t = build ~pool shard_arr in
  M.add t.c_points points;
  M.add t.c_batches batches;
  M.add t.c_refreshes refreshes;
  M.incr P.c_restores;
  t
