module FW = Stream_histogram.Fixed_window
module Q = Stream_histogram.Query_op
module Intmemo = Sh_util.Intmemo
module Obs = Sh_obs.Obs
module M = Sh_obs.Metric
module L = Sh_obs.Latency
module Ring = Spsc_ring

(* One shard = one independent fixed-window summary, under static
   ownership: each owner (a slot of the domain pool) exclusively drains a
   contiguous slice of shards, the producer hands values over through one
   bounded SPSC ring per shard, and nothing on the per-point path locks or
   CASes.  (The historical [Locked] mutex-per-shard mode is retired; the
   [lock_ops] / [query_lock_ops] counters remain as flat-zero witnesses
   that nothing reintroduced a lock.) *)

let default_ring_capacity = 1024

(* Per-shard cells that one side writes while another reads across batch
   boundaries (overflow fill levels) are spread out by this stride so
   neighbouring shards — which may belong to different owners — never
   share a cache line.  8 words = 64 bytes on every 64-bit target. *)
let pad_stride = 8

type t = {
  pool : Domain_pool.t;
  shards : FW.t array;
  (* --- ownership map: owner o drains shards
     [slice_lo.(o) .. slice_hi.(o) - 1]; owners = min(domains, shards) so
     every owner has a non-empty slice. *)
  owners : int;
  slice_lo : int array;
  slice_hi : int array;
  (* --- ingest lane: one SPSC ring per (producer, shard) pair — the
     engine is single-producer (see [ingest]), so that is one ring per
     shard.  A full ring spills into the per-shard overflow buffer
     (growable, bounded by the batch size) and counts a backpressure
     event; [drain_buf] is the owner-side scratch a shard's ring + spill
     are assembled into so each shard still sees exactly one [push_slice]
     per batch. *)
  rings : Ring.t array;
  overflow : float array array;
  overflow_len : int array; (* slot k * pad_stride *)
  drain_buf : float array array;
  drain_tasks : (unit -> unit) array; (* one per owner *)
  drain_one : int -> unit; (* caller-side drain of one shard (quiesce) *)
  (* --- refresh: work-stealing sweep.  Each owner claims shards from its
     own slice through a per-owner atomic cursor, then steals from other
     owners' cursors once its slice is done — a Zipf-hot slice cannot
     serialise the sweep on one domain. *)
  cursors : int Atomic.t array;
  warm_sweep : (unit -> unit) array;
  cold_sweep : (unit -> unit) array;
  (* --- RCU read plane: one padded atomic slot per shard holding the
     immutable view published at that shard's last refresh.  The slot's
     owner (drain/sweep task) republishes whenever the live generation has
     advanced past the published one; readers [Atomic.get] the pointer and
     evaluate against the copy — wait-free, never touching the live
     summary or the owner's cache lines. *)
  views : FW.View.t Atomic.t array;
  publish : int -> unit; (* owner-side: republish shard k if stale *)
  (* Per-domain, per-shard HERROR memo for view-side reads, stamped with
     the view generation it was filled against (reader-private: a memo
     inside the shared view itself would be a cross-domain data race). *)
  reader_memos : (Intmemo.t array * int array) Domain.DLS.key;
  c_points : M.counter;
  c_batches : M.counter;
  c_refreshes : M.counter;
  c_lock_ops : M.counter;
  c_backpressure : M.counter;
  c_steals : M.counter;
  c_queries : M.counter;
  c_query_lock_ops : M.counter;
  c_published : M.counter;
  g_read_gen : M.gauge;
  (* --- latency trackers (gated by [Obs.set_latency_enabled]): drain and
     sweep durations are recorded inside the pool tasks, so each owner
     feeds its own domain's GK slot and the merged quantile sees the
     cross-domain distribution. *)
  l_ingest : L.t;
  l_query : L.t;
}

(* Wire an engine around an existing shard array — shared by [create]
   (fresh summaries) and [restore_from] (decoded ones). *)
let build ~ring_capacity ~pool shard_arr =
  let shards = Array.length shard_arr in
  let labels = [ ("instance", Obs.instance "se") ] in
  let c_lock_ops = Obs.counter ~labels "engine.lock_ops" in
  let c_backpressure = Obs.counter ~labels "engine.backpressure_waits" in
  let c_steals = Obs.counter ~labels "engine.refresh_steals" in
  let c_queries = Obs.counter ~labels "engine.queries" in
  let c_query_lock_ops = Obs.counter ~labels "engine.query_lock_ops" in
  let c_published = Obs.counter ~labels "engine.snapshots_published" in
  let g_read_gen = Obs.gauge ~labels "engine.read_gen" in
  let l_ingest = L.tracker ~labels "latency.ingest_batch" in
  let l_drain = L.tracker ~labels "latency.ring_drain" in
  let l_sweep = L.tracker ~labels "latency.refresh_sweep" in
  let l_query = L.tracker ~labels "latency.query" in
  (* Read-plane slots.  Every shard starts with a real view (capturing
     refreshes, which is a no-op on decoded shards and trivial on empty
     fresh ones), so readers never see a sentinel.  The throwaway spacer
     allocations keep consecutive atomics off one cache line (the
     spsc_ring idiom): a reader polling shard k must not contend with the
     owner publishing shard k+1. *)
  let views =
    Array.init shards (fun k ->
        ignore (Sys.opaque_identity (Array.make pad_stride 0));
        Atomic.make (FW.view shard_arr.(k)))
  in
  M.add c_published shards;
  M.set g_read_gen
    (Float.of_int (FW.View.generation (Atomic.get views.(shards - 1))));
  (* Republish shard k's view if its live generation moved past the
     published one.  Only called with exclusive access to the shard (its
     owner), which makes the needs_refresh/generation reads stable; the
     publication points are refresh completions — a drain that left the
     shard dirty under a [Lazy] / mid-cadence [Every k] policy publishes
     nothing. *)
  let publish k =
    let fw = shard_arr.(k) in
    if
      (not (FW.needs_refresh fw))
      && FW.generation fw <> FW.View.generation (Atomic.get views.(k))
    then begin
      let v = FW.view fw in
      Atomic.set views.(k) v;
      M.incr c_published;
      M.set g_read_gen (Float.of_int (FW.View.generation v))
    end
  in
  (* contiguous slices, remainder spread over the first owners *)
  let owners = max 1 (min (Domain_pool.domains pool) shards) in
  let slice_lo = Array.init owners (fun o -> o * shards / owners) in
  let slice_hi = Array.init owners (fun o -> (o + 1) * shards / owners) in
  let rings = Array.init shards (fun _ -> Ring.create ~capacity:ring_capacity) in
  let ring_cap = Ring.capacity rings.(0) in
  let overflow = Array.make shards [||] in
  let overflow_len = Array.make (shards * pad_stride) 0 in
  let drain_buf = Array.init shards (fun _ -> Array.make ring_cap 0.0) in
  (* Drain one shard: assemble ring contents then spilled overflow (older
     values first — the producer only spills once the ring is full and the
     ring is not consumed mid-routing, so this order is arrival order)
     into the shard's scratch, and apply them as a single push_slice. *)
  let drain_one k =
    let ring = rings.(k) in
    let spilled = overflow_len.(k * pad_stride) in
    let total = Ring.length ring + spilled in
    if total > 0 then begin
      if Array.length drain_buf.(k) < total then
        drain_buf.(k) <-
          Array.make (max total (2 * Array.length drain_buf.(k))) 0.0;
      let buf = drain_buf.(k) in
      let n = Ring.pop_into ring buf ~pos:0 in
      if spilled > 0 then begin
        Array.blit overflow.(k) 0 buf n spilled;
        overflow_len.(k * pad_stride) <- 0
      end;
      FW.push_slice shard_arr.(k) buf ~pos:0 ~len:(n + spilled);
      (* the Every-k boundary publication point: push_slice refreshed iff
         the policy fired, and publish keys off that *)
      publish k
    end
  in
  (* Timing is hand-rolled (no [L.time] closure) so the disabled path
     stays allocation-free: one boolean load per task. *)
  let drain_task o =
    fun () ->
      let lat = Obs.latency_enabled () in
      let t0 = if lat then Obs.now () else 0.0 in
      for k = slice_lo.(o) to slice_hi.(o) - 1 do
        drain_one k
      done;
      if lat then L.record l_drain (Obs.now () -. t0)
  in
  (* Work-stealing refresh sweep: claims go through per-owner cursors so
     an index is handed out exactly once; [refresh_all] resets the cursors
     before each sweep. *)
  let cursors = Array.init owners (fun o -> Atomic.make slice_lo.(o)) in
  let claim o =
    let k = Atomic.fetch_and_add cursors.(o) 1 in
    if k < slice_hi.(o) then k else -1
  in
  let sweep_task ~cold o =
    let refresh k =
      FW.refresh ~cold shard_arr.(k);
      publish k
    in
    fun () ->
      let lat = Obs.latency_enabled () in
      let t0 = if lat then Obs.now () else 0.0 in
      let k = ref (claim o) in
      while !k >= 0 do
        refresh !k;
        k := claim o
      done;
      for d = 1 to owners - 1 do
        let o' = (o + d) mod owners in
        let k = ref (claim o') in
        while !k >= 0 do
          M.incr c_steals;
          refresh !k;
          k := claim o'
        done
      done;
      if lat then L.record l_sweep (Obs.now () -. t0)
  in
  {
    pool;
    shards = shard_arr;
    owners;
    slice_lo;
    slice_hi;
    rings;
    overflow;
    overflow_len;
    drain_buf;
    drain_tasks = Array.init owners drain_task;
    drain_one;
    cursors;
    warm_sweep = Array.init owners (sweep_task ~cold:false);
    cold_sweep = Array.init owners (sweep_task ~cold:true);
    views;
    publish;
    reader_memos =
      Domain.DLS.new_key (fun () ->
          (Array.init shards (fun _ -> Intmemo.create ()), Array.make shards (-1)));
    c_points = Obs.counter ~labels "engine.points";
    c_batches = Obs.counter ~labels "engine.batches";
    c_refreshes = Obs.counter ~labels "engine.refresh_sweeps";
    c_lock_ops;
    c_backpressure;
    c_steals;
    c_queries;
    c_query_lock_ops;
    c_published;
    g_read_gen;
    l_ingest;
    l_query;
  }

let create_with_ring ~ring_capacity ~pool ~shards ~window ~buckets ~epsilon =
  if shards < 1 then invalid_arg "Shard_engine.create: shards must be >= 1";
  if ring_capacity < 1 then
    invalid_arg "Shard_engine.create: ring_capacity must be >= 1";
  (* sequential creation: instance-name allocation stays deterministic
     (fw0, fw1, ... in key order) regardless of the pool size *)
  build ~ring_capacity ~pool
    (Array.init shards (fun _ -> FW.create ~window ~buckets ~epsilon))

let create ~pool ~shards ~window ~buckets ~epsilon =
  create_with_ring ~ring_capacity:default_ring_capacity ~pool ~shards ~window
    ~buckets ~epsilon

let shard_count t = Array.length t.shards
let ring_capacity t = Ring.capacity t.rings.(0)

let check_key t key =
  if key < 0 || key >= Array.length t.shards then
    invalid_arg (Printf.sprintf "Shard_engine: key %d out of range [0, %d)" key (Array.length t.shards))

(* Run [f] on the live shard.  Exclusivity comes from the call-site
   discipline (live-shard access does not overlap an in-flight [ingest] /
   [refresh_all] call; see the .mli).  [f] may have refreshed the shard,
   so the view is republished before returning. *)
let with_shard t key f =
  check_key t key;
  let v = f t.shards.(key) in
  t.publish key;
  v

(* Spill one value that found its ring full.  Growable, never shrinks;
   bounded by the batch size (once a ring is full it stays full for the
   rest of the routing pass, so a shard spills at most one batch). *)
let spill t k v =
  let len = t.overflow_len.(k * pad_stride) in
  if Array.length t.overflow.(k) = len then begin
    let grown = Array.make (max 8 (2 * len)) 0.0 in
    Array.blit t.overflow.(k) 0 grown 0 len;
    t.overflow.(k) <- grown
  end;
  t.overflow.(k).(len) <- v;
  t.overflow_len.(k * pad_stride) <- len + 1;
  M.incr t.c_backpressure

(* Route a batch: validate everything first (a rejected batch ingests
   nothing), count points once per batch, and give every touched shard
   exactly one [push_slice] covering its sub-batch in arrival order — so
   the per-batch refresh amortisation of the sequential path carries over
   unchanged.  Each value goes into its shard's SPSC ring — no lock, no
   CAS — spilling to the overflow buffer on a full ring; then one drain
   task per owner applies each owned shard's ring + spill.  Steady state
   allocates nothing per batch beyond pool submission bookkeeping.

   The rings make [ingest] single-producer: concurrent [ingest] calls on
   the same engine would race on them. *)
let ingest t batch =
  let nb = Array.length batch in
  if nb > 0 then begin
    let lat = Obs.latency_enabled () in
    let t0 = if lat then Obs.now () else 0.0 in
    for i = 0 to nb - 1 do
      let k, v = batch.(i) in
      check_key t k;
      if not (Float.is_finite v) then invalid_arg "Shard_engine.ingest: non-finite value"
    done;
    for i = 0 to nb - 1 do
      let k, v = batch.(i) in
      if not (Ring.try_push t.rings.(k) v) then spill t k v
    done;
    ignore (Domain_pool.run t.pool t.drain_tasks);
    M.add t.c_points nb;
    M.incr t.c_batches;
    if lat then begin
      L.record t.l_ingest (Obs.now () -. t0);
      (* One window epoch per batch: "last k batches" latency windows. *)
      L.advance ()
    end
  end

(* Pre-grouped ingest: the batch arrives as (key, values) runs — the shape
   of a decoded network ingest frame — and is routed without ever building
   per-point (key, value) pairs.  Same contract and same observable
   behaviour as [ingest] of the flattened pairs. *)
let ingest_groups t groups =
  let ng = Array.length groups in
  let nb = ref 0 in
  for g = 0 to ng - 1 do
    nb := !nb + Array.length (snd groups.(g))
  done;
  let nb = !nb in
  if nb > 0 then begin
    let lat = Obs.latency_enabled () in
    let t0 = if lat then Obs.now () else 0.0 in
    for g = 0 to ng - 1 do
      let k, vs = groups.(g) in
      check_key t k;
      for i = 0 to Array.length vs - 1 do
        if not (Float.is_finite vs.(i)) then
          invalid_arg "Shard_engine.ingest_groups: non-finite value"
      done
    done;
    for g = 0 to ng - 1 do
      let k, vs = groups.(g) in
      let ring = t.rings.(k) in
      for i = 0 to Array.length vs - 1 do
        let v = vs.(i) in
        if not (Ring.try_push ring v) then spill t k v
      done
    done;
    ignore (Domain_pool.run t.pool t.drain_tasks);
    M.add t.c_points nb;
    M.incr t.c_batches;
    if lat then begin
      L.record t.l_ingest (Obs.now () -. t0);
      L.advance ()
    end
  end

(* Rebuild every stale shard's interval lists across the pool: the batched
   refresh, as a work-stealing sweep so skewed per-shard costs cannot
   serialise on one owner. *)
let refresh_all ?(cold = false) t =
  Obs.with_span "engine.refresh_all" (fun () ->
      Array.iteri (fun o c -> Atomic.set c t.slice_lo.(o)) t.cursors;
      ignore (Domain_pool.run t.pool (if cold then t.cold_sweep else t.warm_sweep));
      M.incr t.c_refreshes)

let pool t = t.pool

(* --- the read plane --------------------------------------------------- *)

let view t ~key =
  check_key t key;
  Atomic.get t.views.(key)

let read_gen t ~key = FW.View.generation (view t ~key)

(* Lag introspection reads the live generation / watermark fields without
   the shard's ownership token: plain mutable int reads, racy against the
   owner mid-flight but memory-safe (immediate ints cannot tear), and
   exact whenever the engine is between calls.  Telemetry-grade. *)
let generation_lag t ~key =
  check_key t key;
  let lag =
    FW.generation t.shards.(key) - FW.View.generation (Atomic.get t.views.(key))
  in
  if lag < 0 then 0 else lag

let publication_lag t ~key =
  check_key t key;
  let lag =
    FW.points_seen t.shards.(key)
    - FW.View.points_seen (Atomic.get t.views.(key))
  in
  if lag < 0 then 0 else lag

(* The calling domain's memo for view-side HERROR reads against shard
   [key], invalidated (O(1)) whenever the published generation moved. *)
let reader_memo t key v =
  let memos, gens = Domain.DLS.get t.reader_memos in
  let g = FW.View.generation v in
  if gens.(key) <> g then begin
    Intmemo.next_generation memos.(key);
    gens.(key) <- g
  end;
  memos.(key)

(* Estimation queries feed the "latency.query" tracker; the timers are
   hand-rolled like the task timers so the disabled path costs one boolean
   load and no closure beyond the continuation.  Every query answers from
   the published view — wait-free, no lock, no live-shard access. *)
let view_query t key f =
  let lat = Obs.latency_enabled () in
  let t0 = if lat then Obs.now () else 0.0 in
  let v = f (view t ~key) in
  if lat then L.record t.l_query (Obs.now () -. t0);
  v

let length t ~key = FW.View.length (view t ~key)

let current_error t ~key =
  M.incr t.c_queries;
  view_query t key FW.View.current_error

let current_histogram t ~key =
  M.incr t.c_queries;
  view_query t key FW.View.current_histogram

let herror t ~key ~k ~x =
  M.incr t.c_queries;
  view_query t key (fun v -> FW.View.herror ~memo:(reader_memo t key v) v ~k ~x)

let work_counters t ~key = with_shard t key FW.work_counters
let with_key t ~key ~f = with_shard t key f

(* --- batched queries --------------------------------------------------- *)

(* [Global]: the fold of the per-key answers over the published views in
   ascending key order, accumulated left-to-right from 0.0 —
   {!Query_op.scope}'s fixed float association, matching
   [Fw_group.eval_global] over the same per-key window contents
   bit-for-bit. *)
let eval_global t q =
  let acc = ref 0.0 in
  for key = 0 to Array.length t.shards - 1 do
    let v = Atomic.get t.views.(key) in
    acc := !acc +. Q.eval_view ~memo:(reader_memo t key v) v q
  done;
  !acc

let query_many t qs =
  let lat = Obs.latency_enabled () in
  let t0 = if lat then Obs.now () else 0.0 in
  let out = Array.make (Array.length qs) 0.0 in
  Array.iteri
    (fun i (scope, q) ->
      out.(i) <-
        (match scope with
        | Q.Key key ->
          check_key t key;
          let v = Atomic.get t.views.(key) in
          Q.eval_view ~memo:(reader_memo t key v) v q
        | Q.Global -> eval_global t q))
    qs;
  M.add t.c_queries (Array.length qs);
  if lat then L.record t.l_query (Obs.now () -. t0);
  out

let query_global t q =
  let lat = Obs.latency_enabled () in
  let t0 = if lat then Obs.now () else 0.0 in
  let v = eval_global t q in
  M.incr t.c_queries;
  if lat then L.record t.l_query (Obs.now () -. t0);
  v

let total_points t = M.value t.c_points
let batches t = M.value t.c_batches
let lock_ops t = M.value t.c_lock_ops
let backpressure_waits t = M.value t.c_backpressure
let refresh_steals t = M.value t.c_steals
let queries t = M.value t.c_queries
let query_lock_ops t = M.value t.c_query_lock_ops
let snapshots_published t = M.value t.c_published

let fold t ~init ~f =
  let acc = ref init in
  Array.iteri (fun k _ -> acc := with_shard t k (fun fw -> f !acc k fw)) t.shards;
  !acc

let set_refresh_policy t policy =
  Array.iteri (fun k _ -> with_shard t k (fun fw -> FW.set_refresh_policy fw policy)) t.shards

(* --- persistence ---------------------------------------------------- *)

module Codec = Sh_persist.Codec
module Frame = Sh_persist.Frame
module P = Sh_persist.Persist

let engine_tag = Char.code 'S'

(* Quiescence protocol: every batch drains its rings before [ingest]
   returns, so between engine calls the rings and overflow buffers are
   empty — but a snapshot must not silently trust that, so it drains any
   residual hand-off state into the shards (on the caller, which is safe
   under the no-concurrent-ingest contract) before encoding a frame.  A
   frame therefore always captures a shard with no in-flight values. *)
let quiesce t =
  for k = 0 to Array.length t.shards - 1 do
    t.drain_one k
  done

(* The checkpoint byte layout, shared verbatim by the on-disk file and the
   wire snapshot interchange frames: persist header, one meta frame (tag,
   shard count, point/batch/refresh totals), then one frame per shard in
   key order. *)
let encode_frames t =
  quiesce t;
  let meta = Buffer.create 32 in
  Codec.put_u8 meta engine_tag;
  Codec.put_varint meta (Array.length t.shards);
  Codec.put_varint meta (M.value t.c_points);
  Codec.put_varint meta (M.value t.c_batches);
  Codec.put_varint meta (M.value t.c_refreshes);
  let shard_frames =
    Array.to_list
      (Array.mapi
         (fun k _ ->
            let payload = Buffer.create 256 in
            with_shard t k (fun fw -> FW.encode payload fw);
            Frame.frame_string (Buffer.contents payload))
         t.shards)
  in
  (Frame.header_string (), Frame.frame_string (Buffer.contents meta) :: shard_frames)

let checkpoint t ~file =
  Obs.with_span "engine.checkpoint" @@ fun () ->
  let header, frames = encode_frames t in
  P.write_file_atomic ~path:file ~header ~frames;
  M.incr P.c_snapshots

let snapshot_bytes t =
  Obs.with_span "engine.snapshot" @@ fun () ->
  let header, frames = encode_frames t in
  String.concat "" (header :: frames)

let decode_shards r =
  Frame.read_header r;
  let meta = Frame.read_frame r in
  let tag = Codec.get_u8 meta in
  if tag <> engine_tag then
    Codec.corruptf "Shard_engine: tag %d is not an engine checkpoint" tag;
  let shards = Codec.get_varint meta in
  let points = Codec.get_varint meta in
  let batches = Codec.get_varint meta in
  let refreshes = Codec.get_varint meta in
  Codec.expect_end meta ~what:"engine meta frame";
  if shards < 1 then
    Codec.corruptf "Shard_engine: shard count %d < 1" shards;
  (* Sequential decode in key order: deterministic instance names, and
     each shard's cold refresh happens inside FW.decode. *)
  let shard_arr =
    Array.init shards (fun _ ->
        let fr = Frame.read_frame r in
        let fw = FW.decode fr in
        Codec.expect_end fr ~what:"shard frame";
        fw)
  in
  Codec.expect_end r ~what:"engine checkpoint";
  (shard_arr, points, batches, refreshes)

let decode_snapshot s =
  P.rejecting @@ fun () ->
  let arr, _, _, _ = decode_shards (Codec.of_string s) in
  arr

let restore_from ~pool ~file =
  Obs.with_span "engine.restore" @@ fun () ->
  P.rejecting @@ fun () ->
  let r = Codec.of_string (P.read_file file) in
  let shard_arr, points, batches, refreshes = decode_shards r in
  let t = build ~ring_capacity:default_ring_capacity ~pool shard_arr in
  M.add t.c_points points;
  M.add t.c_batches batches;
  M.add t.c_refreshes refreshes;
  M.incr P.c_restores;
  t
