(** Bounded single-producer / single-consumer ring queue of floats — the
    lock-free hand-off lane between the ingest producer and a shard's
    owning domain in {!Shard_engine}'s [Pinned] mode.

    Exactly one domain may push and exactly one domain may pop at any
    moment (the roles may migrate between domains across a synchronisation
    point such as {!Domain_pool.run} settling — only {e concurrent}
    producers or consumers are forbidden).  Under that discipline every
    operation is wait-free: a push is one array store plus one atomic
    store, a pop one array load plus one atomic store, and neither side
    ever takes a lock or retries a CAS.

    Both sides keep a cached copy of the opposite cursor and reload it
    only when the cache says the ring looks full (producer) or empty
    (consumer), so in steady state the hot path touches no shared cache
    line but its own cursor — the cached-index fast path of the classic
    SPSC design.  Cursor positions increase monotonically and are mapped
    into the buffer by a power-of-two mask; they would only wrap after
    [2^62] operations. *)

type t

val create : capacity:int -> t
(** A ring holding at most [capacity] pending values, with [capacity]
    rounded up to the next power of two (so [create ~capacity:5] actually
    holds 8 — read back {!capacity} for the real bound).  Raises
    [Invalid_argument] when [capacity < 1]. *)

val capacity : t -> int
(** The actual (power-of-two) capacity. *)

val try_push : t -> float -> bool
(** Producer side: enqueue one value, or return [false] when the ring is
    full ([Would_block] — the caller decides whether to spill, retry or
    drop; this module never blocks). *)

val pop : t -> float option
(** Consumer side: dequeue the oldest value, or [None] when empty. *)

val pop_into : t -> float array -> pos:int -> int
(** Consumer side: dequeue every currently-visible value into
    [dst.(pos) ..], bounded by the room left in [dst], and return how many
    were moved.  One atomic cursor publication for the whole run — the
    batched drain path. *)

val length : t -> int
(** Values currently enqueued.  Exact only while no push or pop is in
    flight (e.g. at a quiescence point); otherwise a snapshot. *)

val is_empty : t -> bool
