(** Fixed-size domain pool — the zero-dependency parallel substrate.

    Built on stdlib [Domain] / [Mutex] / [Condition] only (no domainslib
    in the toolchain).  A pool of [domains] workers shares one task FIFO:
    [create ~domains:n] spawns [n - 1] domains and the submitting caller
    is the n-th worker — {!await} and {!run} help drain the queue while
    they wait, so a pool with [domains = 1] runs every task inline on the
    caller (the sequential baseline of the scaling benchmarks costs no
    threading overhead), and nested submissions cannot deadlock.

    Ownership discipline: the pool synchronises task hand-off (a task
    observes everything written before its submission, and the awaiter
    observes everything the task wrote), but tasks that touch shared
    mutable structures must partition them or lock — see
    {!Shard_engine} for the per-shard pattern. *)

type t

type 'a promise
(** A single submitted task's pending result. *)

val create : domains:int -> t
(** A pool of [domains] total workers ([>= 1]), spawning [domains - 1]
    domains.  Raises [Invalid_argument] otherwise. *)

val domains : t -> int

val async : t -> (unit -> 'a) -> 'a promise
(** Submit one task.  Raises [Invalid_argument] if the pool was shut
    down.  The task runs on any pool domain (or on a caller inside
    {!await} / {!run}). *)

val await : t -> 'a promise -> 'a
(** Block until the task settles, helping run queued tasks meanwhile.
    Re-raises the task's exception if it failed. *)

val run : t -> (unit -> 'a) array -> 'a array
(** Submit a batch and await all results, in order.  Every task settles
    before [run] returns even on failure; the first exception (in array
    order) is then re-raised. *)

val parallel_for : ?chunk:int -> t -> start:int -> finish:int -> (int -> unit) -> unit
(** [parallel_for pool ~start ~finish body] runs [body i] for every
    [i] in [start .. finish] (inclusive; empty when [finish < start])
    across the pool, in chunks of [chunk] (default: about 4 chunks per
    domain).  Iterations must be independent.  Raises the first failing
    iteration's exception after the loop settles. *)

val shutdown : t -> unit
(** Drain remaining tasks, stop and join the worker domains.  Idempotent;
    subsequent submissions raise [Invalid_argument]. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [create], run the function, then {!shutdown} (also on exception). *)
