(** Wavelet-based selectivity histograms — Matias, Vitter & Wang [MVW],
    the wavelet baseline of the paper, on its home turf: compress the
    {e frequency vector} of the (discretised) value domain with a top-B
    Haar synopsis and answer range-selectivity queries from the
    coefficients.

    This complements {!Value_histogram}: same query interface, transform
    synopsis instead of bucketing. *)

type t

val build : float array -> coeffs:int -> domain_bins:int -> t
(** Discretise the value domain of the data into [domain_bins] cells,
    take the cell-frequency vector, and keep the [coeffs] largest Haar
    coefficients.  Raises on empty data. *)

val total : t -> float
(** Number of tuples summarised. *)

val stored_coefficients : t -> int

val selectivity_range : t -> lo:float -> hi:float -> float
(** Estimated fraction of tuples with value in [\[lo, hi\]], from the
    reconstructed frequency vector (clamped to [\[0, 1\]]; negative
    reconstructed frequencies are clipped at query time). *)

val estimate_count : t -> lo:float -> hi:float -> float
