module Gk = Sh_quantile.Gk
module Obs = Sh_obs.Obs
module M = Sh_obs.Metric

(* Selectivity estimates are issued per query-optimizer probe; the
   global counters expose probe volume next to build spans. *)
let c_range_estimates = Obs.counter "sel.range_estimates"
let c_eq_estimates = Obs.counter "sel.eq_estimates"

type bucket = { lo_v : float; hi_v : float; count : float; distinct : float }
type t = { total : float; buckets : bucket array }

let bucket_count t = Array.length t.buckets

let validate buckets =
  let n = Array.length buckets in
  if n = 0 then invalid_arg "Value_histogram: at least one bucket required";
  for i = 0 to n - 1 do
    if buckets.(i).hi_v < buckets.(i).lo_v then invalid_arg "Value_histogram: inverted bucket";
    if i > 0 && buckets.(i).lo_v <> buckets.(i - 1).hi_v then
      invalid_arg "Value_histogram: buckets must tile the value range"
  done

let make ~total buckets =
  validate buckets;
  { total; buckets }

(* Count of distinct values in a sorted array slice. *)
let distinct_in_sorted sorted lo_i hi_i =
  if hi_i < lo_i then 0.0
  else begin
    let d = ref 1 in
    for i = lo_i + 1 to hi_i do
      if sorted.(i) <> sorted.(i - 1) then incr d
    done;
    Float.of_int !d
  end

let equi_width data ~buckets =
  let n = Array.length data in
  if n = 0 then invalid_arg "Value_histogram.equi_width: empty data";
  Obs.with_span "sel.equi_width" @@ fun () ->
  let b = max 1 buckets in
  let lo, hi = Sh_util.Stats.min_max data in
  let hi = if hi = lo then lo +. 1.0 else hi in
  let width = (hi -. lo) /. Float.of_int b in
  let counts = Array.make b 0 in
  let seen = Array.make b [] in
  Array.iter
    (fun v ->
      let i = int_of_float ((v -. lo) /. width) in
      let i = if i < 0 then 0 else if i >= b then b - 1 else i in
      counts.(i) <- counts.(i) + 1;
      seen.(i) <- v :: seen.(i))
    data;
  let bucket i =
    let values = Array.of_list seen.(i) in
    Array.sort compare values;
    {
      lo_v = lo +. (Float.of_int i *. width);
      hi_v = (if i = b - 1 then hi else lo +. (Float.of_int (i + 1) *. width));
      count = Float.of_int counts.(i);
      distinct = Float.max 1.0 (distinct_in_sorted values 0 (Array.length values - 1));
    }
  in
  make ~total:(Float.of_int n) (Array.init b bucket)

let of_boundaries_sorted sorted ~cuts =
  (* [cuts] are indices into [sorted]: bucket i covers sorted.(cuts.(i-1) .. cuts.(i)-1). *)
  let n = Array.length sorted in
  let b = Array.length cuts in
  let bucket i =
    let start = if i = 0 then 0 else cuts.(i - 1) in
    let stop = cuts.(i) - 1 in
    let lo_v = if i = 0 then sorted.(0) else sorted.(cuts.(i - 1)) in
    let hi_v = if i = b - 1 then sorted.(n - 1) else sorted.(cuts.(i)) in
    {
      lo_v;
      hi_v;
      count = Float.of_int (stop - start + 1);
      distinct = Float.max 1.0 (distinct_in_sorted sorted start stop);
    }
  in
  make ~total:(Float.of_int n) (Array.init b bucket)

let equi_depth data ~buckets =
  let n = Array.length data in
  if n = 0 then invalid_arg "Value_histogram.equi_depth: empty data";
  Obs.with_span "sel.equi_depth" @@ fun () ->
  let b = min (max 1 buckets) n in
  let sorted = Array.copy data in
  Array.sort compare sorted;
  let cuts = Array.init b (fun i -> max (i + 1) (n * (i + 1) / b)) in
  cuts.(b - 1) <- n;
  of_boundaries_sorted sorted ~cuts

let equi_depth_of_gk g ~buckets =
  if Gk.count g = 0 then invalid_arg "Value_histogram.equi_depth_of_gk: empty summary";
  let b = max 1 buckets in
  let n = Float.of_int (Gk.count g) in
  let q i = Gk.quantile g (Float.of_int i /. Float.of_int b) in
  let bucket i =
    let lo_v = q i and hi_v = q (i + 1) in
    {
      lo_v;
      hi_v = Float.max hi_v lo_v;
      count = n /. Float.of_int b;
      (* the summary does not track distinct counts: assume a spread
         proportional to the bucket's value extent, floored at 1 *)
      distinct = Float.max 1.0 (Float.abs (hi_v -. lo_v));
    }
  in
  make ~total:n (Array.init b bucket)

let v_optimal data ~buckets ~domain_bins =
  let n = Array.length data in
  if n = 0 then invalid_arg "Value_histogram.v_optimal: empty data";
  if domain_bins < 1 then invalid_arg "Value_histogram.v_optimal: domain_bins must be >= 1";
  Obs.with_span "sel.v_optimal" @@ fun () ->
  let lo, hi = Sh_util.Stats.min_max data in
  let hi' = if hi = lo then lo +. 1.0 else hi in
  let width = (hi' -. lo) /. Float.of_int domain_bins in
  let freq = Array.make domain_bins 0.0 in
  let distinct_seen = Array.make domain_bins [] in
  Array.iter
    (fun v ->
      let i = int_of_float ((v -. lo) /. width) in
      let i = if i < 0 then 0 else if i >= domain_bins then domain_bins - 1 else i in
      freq.(i) <- freq.(i) +. 1.0;
      distinct_seen.(i) <- v :: distinct_seen.(i))
    data;
  (* V-optimal partition of the frequency vector: buckets of the value
     domain inside which frequencies are near-constant. *)
  let h = Sh_histogram.Vopt.build freq ~buckets:(max 1 buckets) in
  let buckets' =
    Array.map
      (fun bk ->
        let count = ref 0.0 and values = ref [] in
        for cell = bk.Sh_histogram.Histogram.lo - 1 to bk.Sh_histogram.Histogram.hi - 1 do
          count := !count +. freq.(cell);
          values := List.rev_append distinct_seen.(cell) !values
        done;
        let sorted = Array.of_list !values in
        Array.sort compare sorted;
        {
          lo_v = lo +. (Float.of_int (bk.Sh_histogram.Histogram.lo - 1) *. width);
          hi_v =
            (if bk.Sh_histogram.Histogram.hi = domain_bins then hi'
             else lo +. (Float.of_int bk.Sh_histogram.Histogram.hi *. width));
          count = !count;
          distinct = Float.max 1.0 (distinct_in_sorted sorted 0 (Array.length sorted - 1));
        })
      h.Sh_histogram.Histogram.buckets
  in
  make ~total:(Float.of_int n) buckets'

(* Value-domain selectivity from a published fixed-window read view: each
   bucket of the view's index histogram contributes its width (tuple
   count) as a mass point at its mean value; sorted and coalesced, the
   mass points become tiling value ranges [v_i, v_{i+1}) under the usual
   uniform-spread reading (the last range is the point [v_max, v_max]).
   A B-bucket sketch of the value distribution, buildable wait-free from
   the query plane while ingest continues. *)
let of_window_view v =
  match Stream_histogram.Fixed_window.View.histogram v with
  | None -> invalid_arg "Value_histogram.of_window_view: empty window view"
  | Some h ->
    Obs.with_span "sel.of_window_view" @@ fun () ->
    let module H = Sh_histogram.Histogram in
    let pts =
      Array.map
        (fun b -> (b.H.value, Float.of_int (b.H.hi - b.H.lo + 1)))
        h.H.buckets
    in
    Array.sort (fun (a, _) (b, _) -> compare a b) pts;
    (* coalesce buckets sharing a mean value *)
    let merged = ref [] in
    Array.iter
      (fun (value, count) ->
        match !merged with
        | (v0, c0) :: rest when v0 = value -> merged := (v0, c0 +. count) :: rest
        | _ -> merged := (value, count) :: !merged)
      pts;
    let pts = Array.of_list (List.rev !merged) in
    let m = Array.length pts in
    let bucket i =
      let value, count = pts.(i) in
      let hi_v = if i = m - 1 then value else fst pts.(i + 1) in
      { lo_v = value; hi_v; count; distinct = 1.0 }
    in
    make ~total:(Float.of_int h.H.n) (Array.init m bucket)

let overlap_fraction b ~lo ~hi =
  (* fraction of bucket [b]'s value extent covered by [lo, hi], uniform
     spread assumption; point-width buckets count fully when touched *)
  let width = b.hi_v -. b.lo_v in
  if width <= 0.0 then if lo <= b.lo_v && b.lo_v <= hi then 1.0 else 0.0
  else begin
    let o_lo = Float.max lo b.lo_v and o_hi = Float.min hi b.hi_v in
    if o_hi <= o_lo then 0.0 else (o_hi -. o_lo) /. width
  end

let selectivity_range t ~lo ~hi =
  M.incr c_range_estimates;
  if hi < lo || t.total <= 0.0 then 0.0
  else begin
    let acc = ref 0.0 in
    Array.iter (fun b -> acc := !acc +. (b.count *. overlap_fraction b ~lo ~hi)) t.buckets;
    Float.min 1.0 (Float.max 0.0 (!acc /. t.total))
  end

let selectivity_eq t v =
  M.incr c_eq_estimates;
  if t.total <= 0.0 then 0.0
  else begin
    let acc = ref 0.0 in
    Array.iteri
      (fun i b ->
        let touches =
          (v >= b.lo_v && v < b.hi_v)
          || (i = Array.length t.buckets - 1 && v = b.hi_v)
        in
        if touches then acc := !acc +. (b.count /. b.distinct))
      t.buckets;
    Float.min 1.0 (!acc /. t.total)
  end

let estimate_count t ~lo ~hi = selectivity_range t ~lo ~hi *. t.total

let pp ppf t =
  Format.fprintf ppf "@[<v>value histogram total=%g B=%d" t.total (Array.length t.buckets);
  Array.iter
    (fun b ->
      Format.fprintf ppf "@,  [%g, %g) count=%g distinct=%g" b.lo_v b.hi_v b.count b.distinct)
    t.buckets;
  Format.fprintf ppf "@]"
