(** Value-domain histograms for selectivity estimation.

    The serial histograms of {!Sh_histogram} partition the {e index} axis
    of a sequence; query optimisers instead need the {e value}
    distribution: "what fraction of tuples has [a <= v <= b]?"  ([PI97],
    [IP95] — the query-optimisation applications the paper's introduction
    motivates).  This module provides the classic constructions over a
    column of values:

    - equi-width: fixed-width value ranges;
    - equi-depth: ranges holding equal tuple counts (from exact quantiles
      offline, or from a one-pass GK summary on a stream);
    - V-optimal-on-frequencies: bucket the {e frequency vector} of the
      (discretised) value domain with the optimal DP, minimising the SSE
      of frequency estimates — the classic V-optimal(F, V) histogram.

    Estimators assume uniform spread inside a bucket, the standard
    assumption. *)

type bucket = {
  lo_v : float;    (** inclusive lower value bound *)
  hi_v : float;    (** exclusive upper value bound (inclusive for the last bucket) *)
  count : float;   (** number of tuples falling in the bucket *)
  distinct : float;(** distinct-value estimate inside the bucket (>= 1) *)
}

type t = private {
  total : float;          (** total tuple count *)
  buckets : bucket array; (** contiguous, increasing value ranges *)
}

val equi_width : float array -> buckets:int -> t
(** Fixed-width partition of [\[min, max\]].  Raises on empty input. *)

val equi_depth : float array -> buckets:int -> t
(** Boundaries at exact quantiles (sorts a copy). *)

val equi_depth_of_gk : Sh_quantile.Gk.t -> buckets:int -> t
(** Streaming equi-depth: boundaries from a GK summary, so the histogram
    is buildable in one pass and bucket counts are within the GK rank
    guarantee.  Raises on an empty summary. *)

val v_optimal : float array -> buckets:int -> domain_bins:int -> t
(** Discretise the value domain into [domain_bins] cells, then apply the
    V-optimal DP to the cell-frequency vector; bucket counts are exact. *)

val of_window_view : Stream_histogram.Fixed_window.View.t -> t
(** Value-domain sketch from a published fixed-window read view (the
    wait-free query plane): each bucket of the view's index histogram
    contributes its width as tuples at its mean value, and adjacent mass
    points become tiling value ranges under the uniform-spread
    assumption.  At most B buckets; buildable from a snapshot while
    ingest continues on the live summary.  Raises [Invalid_argument] on
    an empty-window view. *)

val bucket_count : t -> int

val selectivity_range : t -> lo:float -> hi:float -> float
(** Estimated fraction of tuples with value in [\[lo, hi\]], by uniform
    interpolation inside partially-overlapped buckets.  Clamped to
    [\[0, 1\]]. *)

val selectivity_eq : t -> float -> float
(** Estimated fraction of tuples equal to the given value (uniform spread
    over the bucket's distinct values). *)

val estimate_count : t -> lo:float -> hi:float -> float
(** [selectivity_range] scaled by the total tuple count. *)

val pp : Format.formatter -> t -> unit
