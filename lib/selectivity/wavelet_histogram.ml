module Syn = Sh_wavelet.Synopsis

type t = {
  total : float;
  lo : float;       (* domain minimum *)
  width : float;    (* cell width *)
  bins : int;
  synopsis : Syn.t; (* top-B Haar synopsis of the cell-frequency vector *)
}

let build data ~coeffs ~domain_bins =
  let n = Array.length data in
  if n = 0 then invalid_arg "Wavelet_histogram.build: empty data";
  if domain_bins < 1 then invalid_arg "Wavelet_histogram.build: domain_bins must be >= 1";
  let lo, hi = Sh_util.Stats.min_max data in
  let hi = if hi = lo then lo +. 1.0 else hi in
  let width = (hi -. lo) /. Float.of_int domain_bins in
  let freq = Array.make domain_bins 0.0 in
  Array.iter
    (fun v ->
      let i = int_of_float ((v -. lo) /. width) in
      let i = if i < 0 then 0 else if i >= domain_bins then domain_bins - 1 else i in
      freq.(i) <- freq.(i) +. 1.0)
    data;
  { total = Float.of_int n; lo; width; bins = domain_bins; synopsis = Syn.build freq ~coeffs }

let total t = t.total
let stored_coefficients t = Syn.stored_coefficients t.synopsis

let selectivity_range t ~lo ~hi =
  if hi < lo || t.total <= 0.0 then 0.0
  else begin
    (* cells whose range intersects [lo, hi] *)
    let first = int_of_float (Float.floor ((lo -. t.lo) /. t.width)) in
    let last = int_of_float (Float.floor ((hi -. t.lo) /. t.width)) in
    let first = max 0 first and last = min (t.bins - 1) last in
    if first > last then 0.0
    else begin
      (* reconstruct the covered cells; clip negative frequencies, a
         well-known artefact of thresholded wavelet reconstructions *)
      let acc = ref 0.0 in
      for cell = first to last do
        let f = Syn.point_estimate t.synopsis (cell + 1) in
        if f > 0.0 then begin
          (* partial overlap of boundary cells, uniform within the cell *)
          let c_lo = t.lo +. (Float.of_int cell *. t.width) in
          let c_hi = c_lo +. t.width in
          let o = (Float.min hi c_hi -. Float.max lo c_lo) /. t.width in
          let o = Float.min 1.0 (Float.max 0.0 o) in
          acc := !acc +. (f *. o)
        end
      done;
      Float.min 1.0 (Float.max 0.0 (!acc /. t.total))
    end
  end

let estimate_count t ~lo ~hi = selectivity_range t ~lo ~hi *. t.total
