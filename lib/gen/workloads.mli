(** Synthetic stream workloads.

    The paper evaluates on proprietary AT&T operational traces (network
    utilisation, fault/flow sequences, click streams, stock series).  These
    generators are the documented substitutes (see DESIGN.md): each
    reproduces the qualitative features that determine how the evaluated
    synopses behave — piecewise-smooth regions, diurnal periodicity, bursts
    with heavy-tailed magnitude, level shifts, and bounded integer values.

    Every workload takes its own {!Sh_util.Rng.t}, so experiments are
    reproducible and sub-workloads independent. *)

type network_params = {
  base_level : float;       (** mean utilisation level *)
  diurnal_amplitude : float;(** amplitude of the daily cycle *)
  period : int;             (** points per "day" *)
  ar_coefficient : float;   (** AR(1) smoothness of the noise, in [0,1) *)
  noise_stddev : float;     (** innovation scale of the AR(1) noise *)
  burst_probability : float;(** per-point probability a burst starts *)
  burst_shape : float;      (** Pareto tail index of burst magnitude *)
  burst_scale : float;      (** minimum burst magnitude *)
  shift_probability : float;(** per-point probability of a level shift *)
  shift_stddev : float;     (** scale of level shifts *)
  value_max : float;        (** values clamped to [0, value_max] *)
}

val default_network : network_params
(** Utilisation-like defaults: bounded in [0, 10000], mild bursts. *)

val network : Sh_util.Rng.t -> network_params -> Source.t
(** Router-utilisation-style stream: diurnal sinusoid + AR(1) noise +
    Pareto bursts + occasional level shifts, quantised to integers. *)

val random_walk :
  Sh_util.Rng.t -> ?start:float -> ?step_stddev:float -> ?lo:float -> ?hi:float -> unit -> Source.t
(** Stock-style reflected Gaussian random walk, quantised. *)

val step_signal :
  Sh_util.Rng.t ->
  ?segment_mean:int -> ?level_lo:float -> ?level_hi:float -> ?noise_stddev:float -> unit -> Source.t
(** Piecewise-constant levels of geometric duration plus Gaussian noise —
    the regime where V-optimal histograms are near-lossless.  Quantised. *)

val click_counts : Sh_util.Rng.t -> ?mean_rate:float -> ?zipf_n:int -> ?zipf_skew:float -> unit -> Source.t
(** Web click-stream style: per-tick request counts with Zipf-distributed
    object popularity driving heavy-tailed spikes. *)

val uniform_noise : Sh_util.Rng.t -> lo:float -> hi:float -> Source.t
(** Worst-case-for-histograms stream: i.i.d. uniform integers. *)

val series_family :
  Sh_util.Rng.t -> count:int -> len:int -> shapes:int -> noise:float -> float array array
(** A collection of [count] time series of length [len] for the similarity
    experiments: [shapes] distinct smooth prototypes (random Fourier
    mixtures), each series a noisy copy of one prototype.  Series of the
    same prototype are mutual nearest neighbours by construction, which
    gives the similarity benchmarks a known ground truth. *)

val step_family :
  Sh_util.Rng.t ->
  count:int -> len:int -> shapes:int -> steps:int -> noise:float -> float array array
(** Like {!series_family} but with piecewise-constant prototypes of
    [steps] random levels at random change points.  Step-structured series
    are where adaptive segment placement (V-optimal histograms, APCA)
    differs most from fixed segmentation, so this is the stress workload
    for the similarity experiments. *)
