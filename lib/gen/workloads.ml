module Rng = Sh_util.Rng

type network_params = {
  base_level : float;
  diurnal_amplitude : float;
  period : int;
  ar_coefficient : float;
  noise_stddev : float;
  burst_probability : float;
  burst_shape : float;
  burst_scale : float;
  shift_probability : float;
  shift_stddev : float;
  value_max : float;
}

let default_network =
  {
    base_level = 4000.0;
    diurnal_amplitude = 1500.0;
    period = 1440;
    ar_coefficient = 0.9;
    noise_stddev = 120.0;
    burst_probability = 0.003;
    burst_shape = 1.5;
    burst_scale = 300.0;
    shift_probability = 0.0005;
    shift_stddev = 800.0;
    value_max = 10000.0;
  }

let network rng p =
  if p.period <= 0 then invalid_arg "Workloads.network: period must be positive";
  let tick = ref 0 in
  let ar = ref 0.0 in
  let level = ref p.base_level in
  let raw () =
    let t = Float.of_int !tick in
    incr tick;
    let diurnal =
      p.diurnal_amplitude *. sin (2.0 *. Float.pi *. t /. Float.of_int p.period)
    in
    ar := (p.ar_coefficient *. !ar) +. Rng.gaussian rng ~mean:0.0 ~stddev:p.noise_stddev;
    if Rng.float rng 1.0 < p.shift_probability then
      level := !level +. Rng.gaussian rng ~mean:0.0 ~stddev:p.shift_stddev;
    let burst =
      if Rng.float rng 1.0 < p.burst_probability then
        Rng.pareto rng ~shape:p.burst_shape ~scale:p.burst_scale
      else 0.0
    in
    !level +. diurnal +. !ar +. burst
  in
  Source.quantize (Source.clamp ~lo:0.0 ~hi:p.value_max raw)

let random_walk rng ?(start = 100.0) ?(step_stddev = 1.0) ?(lo = 0.0) ?(hi = 1000.0) () =
  let x = ref start in
  let raw () =
    x := !x +. Rng.gaussian rng ~mean:0.0 ~stddev:step_stddev;
    (* Reflect at the boundaries so the walk stays in its bounded range. *)
    if !x < lo then x := lo +. (lo -. !x);
    if !x > hi then x := hi -. (!x -. hi);
    if !x < lo then x := lo;
    !x
  in
  Source.quantize raw

let step_signal rng ?(segment_mean = 100) ?(level_lo = 0.0) ?(level_hi = 1000.0)
    ?(noise_stddev = 2.0) () =
  if segment_mean < 1 then invalid_arg "Workloads.step_signal: segment_mean must be >= 1";
  let remaining = ref 0 in
  let level = ref (Rng.uniform rng ~lo:level_lo ~hi:level_hi) in
  let raw () =
    if !remaining <= 0 then begin
      (* Geometric segment length with the requested mean. *)
      remaining := 1 + int_of_float (Rng.exponential rng ~rate:(1.0 /. Float.of_int segment_mean));
      level := Rng.uniform rng ~lo:level_lo ~hi:level_hi
    end;
    decr remaining;
    !level +. Rng.gaussian rng ~mean:0.0 ~stddev:noise_stddev
  in
  Source.quantize (Source.clamp ~lo:level_lo ~hi:level_hi raw)

let click_counts rng ?(mean_rate = 50.0) ?(zipf_n = 1000) ?(zipf_skew = 1.1) () =
  let raw () =
    (* Requests this tick: Poisson-ish via exponential inter-arrivals, with
       each request weighted by the (heavy-tailed) size rank of the object
       it touches. *)
    let budget = ref (Rng.exponential rng ~rate:(1.0 /. mean_rate)) in
    let bytes = ref 0.0 in
    while !budget >= 1.0 do
      budget := !budget -. 1.0;
      let rank = Rng.zipf rng ~n:zipf_n ~skew:zipf_skew in
      bytes := !bytes +. (1000.0 /. Float.of_int rank)
    done;
    !bytes
  in
  Source.quantize raw

let uniform_noise rng ~lo ~hi =
  Source.quantize (fun () -> Rng.uniform rng ~lo ~hi)

let series_family rng ~count ~len ~shapes ~noise =
  if shapes < 1 || count < 1 || len < 1 then
    invalid_arg "Workloads.series_family: all sizes must be positive";
  let terms = 4 in
  let prototypes =
    Array.init shapes (fun _ ->
        let amplitude = Array.init terms (fun _ -> Rng.uniform rng ~lo:0.5 ~hi:2.0) in
        let freq = Array.init terms (fun _ -> Rng.uniform rng ~lo:1.0 ~hi:6.0) in
        let phase = Array.init terms (fun _ -> Rng.uniform rng ~lo:0.0 ~hi:(2.0 *. Float.pi)) in
        Array.init len (fun i ->
            let x = Float.of_int i /. Float.of_int len in
            let acc = ref 0.0 in
            for k = 0 to terms - 1 do
              acc := !acc +. (amplitude.(k) *. sin ((2.0 *. Float.pi *. freq.(k) *. x) +. phase.(k)))
            done;
            100.0 *. !acc))
  in
  Array.init count (fun i ->
      let proto = prototypes.(i mod shapes) in
      Array.map (fun v -> v +. Rng.gaussian rng ~mean:0.0 ~stddev:noise) proto)

let step_family rng ~count ~len ~shapes ~steps ~noise =
  if shapes < 1 || count < 1 || len < 1 || steps < 1 then
    invalid_arg "Workloads.step_family: all sizes must be positive";
  let prototypes =
    Array.init shapes (fun _ ->
        (* random change points and levels *)
        let cuts = Array.init (steps - 1) (fun _ -> 1 + Rng.int rng (len - 1)) in
        Array.sort compare cuts;
        let levels = Array.init steps (fun _ -> Rng.uniform rng ~lo:(-200.0) ~hi:200.0) in
        let proto = Array.make len 0.0 in
        let seg = ref 0 in
        for i = 0 to len - 1 do
          while !seg < steps - 1 && i >= cuts.(!seg) do
            incr seg
          done;
          proto.(i) <- levels.(!seg)
        done;
        proto)
  in
  Array.init count (fun i ->
      let proto = prototypes.(i mod shapes) in
      Array.map (fun v -> v +. Rng.gaussian rng ~mean:0.0 ~stddev:noise) proto)
