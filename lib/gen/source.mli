(** Infinite data-stream sources.

    A source produces one value per call, modelling the paper's "data source
    that produces a new data element at each time unit".  All sources built
    from an {!Sh_util.Rng.t} are deterministic given the generator state. *)

type t = unit -> float
(** A stream: each call yields the next point. *)

val take : t -> int -> float array
(** [take s n] materialises the next [n] points. *)

val drop : t -> int -> unit
(** [drop s n] discards the next [n] points. *)

val of_array : float array -> t
(** Replays the array, then cycles back to its start (so the source stays
    infinite, as the stream model requires). *)

val map : (float -> float) -> t -> t

val add : t -> t -> t
(** Pointwise sum of two sources. *)

val clamp : lo:float -> hi:float -> t -> t

val quantize : t -> t
(** Round every value to the nearest integer — the paper assumes "each value
    x_i is an integer drawn from some bounded range". *)

val of_file : string -> float array
(** Load one float per line; '#'-prefixed lines and blanks are skipped. *)

val to_file : string -> float array -> unit
(** Write one value per line (round-trips with {!of_file}). *)
