type t = unit -> float

let take s n = Array.init n (fun _ -> s ())

let drop s n =
  for _ = 1 to n do
    ignore (s () : float)
  done

let of_array xs =
  if Array.length xs = 0 then invalid_arg "Source.of_array: empty array";
  let i = ref 0 in
  fun () ->
    let v = xs.(!i) in
    i := (!i + 1) mod Array.length xs;
    v

let map f s () = f (s ())
let add a b () = a () +. b ()

let clamp ~lo ~hi s () =
  let v = s () in
  if v < lo then lo else if v > hi then hi else v

let quantize s () = Float.round (s ())

let of_file path =
  let ic = open_in path in
  let values = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" && line.[0] <> '#' then values := float_of_string line :: !values
     done
   with
  | End_of_file -> close_in ic
  | e ->
    close_in ic;
    raise e);
  Array.of_list (List.rev !values)

let to_file path xs =
  let oc = open_out path in
  Array.iter (fun v -> Printf.fprintf oc "%.12g\n" v) xs;
  close_out oc
