(* Tuples (v, g, delta) in non-decreasing order of v.  With rmin_i the sum
   of g over the prefix ending at i: the true rank of v_i lies in
   [rmin_i, rmin_i + delta_i].  The maintained invariant
   g_i + delta_i <= floor(2 epsilon n) yields the epsilon n rank error. *)
type tuple = { v : float; g : int; delta : int }

type t = {
  eps : float;
  mutable tuples : tuple list;
  mutable n : int;
  mutable since_compress : int;
  compress_period : int;
}

let create ~epsilon =
  if epsilon <= 0.0 || epsilon >= 1.0 then invalid_arg "Gk.create: epsilon must be in (0, 1)";
  {
    eps = epsilon;
    tuples = [];
    n = 0;
    since_compress = 0;
    compress_period = max 1 (int_of_float (1.0 /. (2.0 *. epsilon)));
  }

let epsilon t = t.eps
let count t = t.n
let size t = List.length t.tuples

let cap t = int_of_float (2.0 *. t.eps *. Float.of_int t.n)

(* Merge adjacent tuples while the merged (g, delta) stays within the cap.
   Merging tuple i into its successor keeps rank enclosures valid because
   the successor inherits the combined g.  The head tuple is never merged
   away: it carries the exact minimum (rank 1), which phi ~ 0 queries
   need; the maximum survives automatically since merges keep the right
   neighbour. *)
let compress t =
  let bound = cap t in
  let rec go = function
    | a :: b :: rest ->
      if a.g + b.g + b.delta < bound then go ({ b with g = a.g + b.g } :: rest)
      else a :: go (b :: rest)
    | rest -> rest
  in
  match t.tuples with
  | [] | [ _ ] -> ()
  | head :: rest -> t.tuples <- head :: go rest

let insert t v =
  if not (Float.is_finite v) then invalid_arg "Gk.insert: non-finite value";
  t.n <- t.n + 1;
  let fresh_interior = { v; g = 1; delta = max 0 (cap t - 1) } in
  let fresh_extreme = { v; g = 1; delta = 0 } in
  let rec place = function
    | [] -> [ fresh_extreme ]
    | x :: rest when v < x.v ->
      (* Inserting before x; if x is the head, v is a new minimum. *)
      fresh_interior :: x :: rest
    | x :: rest -> x :: place rest
  in
  (match t.tuples with
  | [] -> t.tuples <- [ fresh_extreme ]
  | first :: _ when v < first.v -> t.tuples <- fresh_extreme :: t.tuples
  | _ ->
    (* A new maximum must also carry delta = 0. *)
    let rec is_max = function
      | [] -> true
      | x :: rest -> v >= x.v && is_max rest
    in
    if is_max t.tuples then t.tuples <- t.tuples @ [ fresh_extreme ]
    else t.tuples <- place t.tuples);
  t.since_compress <- t.since_compress + 1;
  if t.since_compress >= t.compress_period then begin
    compress t;
    t.since_compress <- 0
  end

let quantile t phi =
  if phi < 0.0 || phi > 1.0 then invalid_arg "Gk.quantile: phi out of [0, 1]";
  if t.n = 0 then invalid_arg "Gk.quantile: empty summary";
  let target = Float.of_int (max 1 (int_of_float (ceil (phi *. Float.of_int t.n)))) in
  let allow = t.eps *. Float.of_int t.n in
  (* First tuple whose maximum possible rank stays within target + eps n. *)
  let rec go rmin best = function
    | [] -> best
    | x :: rest ->
      let rmin = rmin + x.g in
      if Float.of_int (rmin + x.delta) <= target +. allow then go rmin x.v rest else best
  in
  match t.tuples with
  | [] -> assert false
  | first :: _ -> go 0 first.v t.tuples

(* Structural merge (Agarwal et al.'s mergeable-summaries construction):
   two-pointer walk of both tuple lists in value order.  A tuple x drawn
   from one side keeps its g (it still covers the same g observations) and
   widens its delta by the uncertainty of where it lands between the other
   side's tuples: with y the other side's next-not-yet-consumed tuple,
   up to y.g + y.delta - 1 of y's covered observations may precede x.
   Summing both sides' per-summary enclosures widens each tuple by at most
   eps_a * n_a + eps_b * n_b <= max(eps_a, eps_b) * (n_a + n_b), which is
   within the merged summary's own g + delta <= 2 eps n cap — so the
   result honestly carries epsilon = max(eps_a, eps_b) and keeps the
   standard eps * n rank-error contract through the post-merge compress
   (which re-widens tuples against that cap) and any later inserts.

   Merging with an empty summary shares the non-empty operand's immutable
   tuple spine verbatim — answers are bit-identical to the operand's (the
   Mergeable identity law).  Neither operand is mutated. *)
let merge a b =
  let eps = Float.max a.eps b.eps in
  let period = max 1 (int_of_float (1.0 /. (2.0 *. eps))) in
  if b.n = 0 then
    { a with eps; since_compress = 0; compress_period = period }
  else if a.n = 0 then
    { b with eps; since_compress = 0; compress_period = period }
  else begin
    let rec go xs ys =
      match (xs, ys) with
      | [], rest | rest, [] -> rest
      | x :: xr, y :: yr ->
        if x.v <= y.v then
          { x with delta = x.delta + y.g + y.delta - 1 } :: go xr ys
        else { y with delta = y.delta + x.g + x.delta - 1 } :: go xs yr
    in
    let t =
      {
        eps;
        tuples = go a.tuples b.tuples;
        n = a.n + b.n;
        since_compress = 0;
        compress_period = period;
      }
    in
    compress t;
    t
  end

let rank_bounds_list tuples v =
  let rec go rmin lo hi = function
    | [] -> (lo, hi)
    | x :: rest ->
      let rmin = rmin + x.g in
      if x.v <= v then go rmin rmin (rmin + x.delta) rest else (lo, hi)
  in
  go 0 0 0 tuples

let rank_bounds t v = rank_bounds_list t.tuples v

let iter_values t f = List.iter (fun x -> f x.v) t.tuples

(* Combined quantile over several summaries without building a merged
   structure: every stored value is a candidate, its rank enclosure in the
   union stream is the sum of the per-summary [rank_bounds] enclosures
   (ranks are additive over disjoint streams), and we return the candidate
   whose enclosure midpoint sits closest to the target rank.  The error is
   bounded by sum_i (eps_i * n_i): each summary contributes at most
   eps_i * n_i of rank slack.

   Tuple lists are captured once per summary up front, so the walk is
   coherent even when owner domains keep inserting concurrently (the
   spines are immutable; a racy read just sees a slightly stale list). *)
let merged_quantile summaries phi =
  if phi < 0.0 || phi > 1.0 then invalid_arg "Gk.merged_quantile: phi out of [0, 1]";
  let views =
    summaries
    |> List.filter_map (fun t ->
           let tuples = t.tuples and n = t.n in
           if n = 0 || tuples = [] then None else Some (Array.of_list tuples, n))
    |> Array.of_list
  in
  let total = Array.fold_left (fun acc (_, n) -> acc + n) 0 views in
  if total = 0 then invalid_arg "Gk.merged_quantile: empty summaries";
  let target = Float.of_int (max 1 (int_of_float (ceil (phi *. Float.of_int total)))) in
  (* Candidates ascending; one monotone pointer per view keeps the whole
     scan O(candidates * views + total tuples) instead of re-walking every
     summary per candidate. *)
  let candidates =
    let c = Array.concat (Array.to_list (Array.map (fun (tu, _) -> Array.map (fun x -> x.v) tu) views)) in
    Array.sort Float.compare c;
    c
  in
  let nv = Array.length views in
  let ptr = Array.make nv 0
  and rmin = Array.make nv 0
  and lo = Array.make nv 0
  and hi = Array.make nv 0 in
  let best_v = ref candidates.(0) and best_gap = ref infinity in
  Array.iter
    (fun v ->
      for j = 0 to nv - 1 do
        let tu, _ = views.(j) in
        let len = Array.length tu in
        while ptr.(j) < len && (Array.unsafe_get tu ptr.(j)).v <= v do
          let x = Array.unsafe_get tu ptr.(j) in
          rmin.(j) <- rmin.(j) + x.g;
          lo.(j) <- rmin.(j);
          hi.(j) <- rmin.(j) + x.delta;
          ptr.(j) <- ptr.(j) + 1
        done
      done;
      let slo = ref 0 and shi = ref 0 in
      for j = 0 to nv - 1 do
        slo := !slo + lo.(j);
        shi := !shi + hi.(j)
      done;
      let mid = (Float.of_int !slo +. Float.of_int !shi) /. 2.0 in
      let gap = Float.abs (mid -. target) in
      if gap < !best_gap then begin
        best_gap := gap;
        best_v := v
      end)
    candidates;
  !best_v
