(** Greenwald-Khanna epsilon-approximate quantile summary \[GK01\]
    (cited by the paper as the state of the art for streaming order
    statistics).

    Maintains, in one pass and O((1/epsilon) log(epsilon n)) space, a
    summary from which any quantile can be answered with rank error at most
    [epsilon * n]: for a query phi the returned value's true rank r
    satisfies |r - ceil(phi * n)| <= epsilon * n. *)

type t

val create : epsilon:float -> t
(** [epsilon] in (0, 1). *)

val epsilon : t -> float

val count : t -> int
(** Values inserted so far. *)

val size : t -> int
(** Tuples currently stored (the space bound under test). *)

val insert : t -> float -> unit

val quantile : t -> float -> float
(** [quantile t phi] for phi in [\[0, 1\]].  Raises [Invalid_argument] when
    empty or phi out of range. *)

val rank_bounds : t -> float -> int * int
(** [rank_bounds t v] is a (min, max) enclosure of the rank of [v] among
    the inserted values, derived from the summary. *)

val iter_values : t -> (float -> unit) -> unit
(** Stored tuple values in non-decreasing order — the candidate set for
    cross-summary quantile queries. *)

val merge : t -> t -> t
(** [merge a b] is a summary of the union of the two streams (order-free),
    leaving both operands untouched: a two-pointer walk in value order
    widens each tuple's rank slack by the other side's local uncertainty
    (the mergeable-summaries construction).  The merged summary carries
    [epsilon = max (epsilon a) (epsilon b)] and honours the same contract
    a directly-built summary would: absolute rank error at most
    [epsilon *. (n_a + n_b)] (the classic mergeable-GK result — the
    widened slacks [epsilon a *. n_a +. epsilon b *. n_b] are within the
    merged cap, and the post-merge compression works against that cap,
    so the max-epsilon bound is the one that survives further inserts
    and merges).  Merging with an empty
    summary returns a copy whose answers are bit-identical to the
    non-empty operand's (the [Mergeable] identity law). *)

val merged_quantile : t list -> float -> float
(** [merged_quantile ts phi] answers a quantile over the union of the
    streams behind [ts] without structurally merging them: rank enclosures
    are summed per stored value (ranks are additive over disjoint streams)
    and the candidate with the closest enclosure midpoint wins.  Rank error
    is at most [sum_i (epsilon_i * n_i)].  Raises [Invalid_argument] when
    all summaries are empty or phi is out of range. *)
