(** Orthonormal Haar wavelet transform.

    The transform is orthonormal (each averaging/differencing step divides
    by sqrt 2), so it preserves the L2 norm (Parseval) and retaining the
    largest-magnitude coefficients is the L2-optimal thresholding — the
    property wavelet synopses [MVW] rely on.

    Coefficient layout for an input of length n = 2^d:
    index 0 is the scaling (overall average) coefficient; indices
    [2^l .. 2^(l+1) - 1] are the level-l details, coarsest first. *)

val is_pow2 : int -> bool
val next_pow2 : int -> int
(** Smallest power of two >= the argument (argument must be >= 1). *)

val transform : float array -> float array
(** Forward transform.  Input length must be a power of two. *)

val inverse : float array -> float array
(** Inverse transform; [inverse (transform a) = a] up to round-off. *)

val basis_value : n:int -> coeff:int -> pos:int -> float
(** psi_coeff(pos): value at 0-based position [pos] of the orthonormal
    basis vector for coefficient [coeff], in a length-[n] transform. *)

val basis_prefix_sum : n:int -> coeff:int -> prefix:int -> float
(** Sum of the basis vector over positions [0 .. prefix-1], in O(1).
    This is what makes range-sum estimation from a sparse coefficient set
    an O(#coefficients) computation. *)
