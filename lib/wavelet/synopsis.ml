type t = {
  n : int;                      (* original length *)
  n2 : int;                     (* padded power-of-two length *)
  coeffs : (int * float) array; (* retained (index, value), sorted by index *)
}

let build data ~coeffs:budget =
  let n = Array.length data in
  if n = 0 then invalid_arg "Synopsis.build: empty data";
  if budget < 1 then invalid_arg "Synopsis.build: coefficient budget must be >= 1";
  let n2 = Haar.next_pow2 n in
  let padded =
    if n2 = n then data
    else begin
      let mean = Sh_util.Stats.mean data in
      Array.init n2 (fun i -> if i < n then data.(i) else mean)
    end
  in
  let all = Haar.transform padded in
  let indexed = Array.mapi (fun i c -> (i, c)) all in
  (* Largest magnitudes first; drop exact zeros — they carry no information. *)
  Array.sort (fun (_, c1) (_, c2) -> compare (Float.abs c2) (Float.abs c1)) indexed;
  let kept = ref [] in
  let count = ref 0 in
  Array.iter
    (fun (i, c) ->
      if !count < budget && c <> 0.0 then begin
        kept := (i, c) :: !kept;
        incr count
      end)
    indexed;
  let coeffs = Array.of_list !kept in
  Array.sort (fun (i1, _) (i2, _) -> compare i1 i2) coeffs;
  { n; n2; coeffs }

let length t = t.n
let stored_coefficients t = Array.length t.coeffs

let point_estimate t i =
  if i < 1 || i > t.n then invalid_arg "Synopsis.point_estimate: index out of range";
  Array.fold_left
    (fun acc (k, c) -> acc +. (c *. Haar.basis_value ~n:t.n2 ~coeff:k ~pos:(i - 1)))
    0.0 t.coeffs

let prefix_sum t p =
  Array.fold_left
    (fun acc (k, c) -> acc +. (c *. Haar.basis_prefix_sum ~n:t.n2 ~coeff:k ~prefix:p))
    0.0 t.coeffs

let range_sum_estimate t ~lo ~hi =
  if lo > hi then 0.0
  else begin
    if lo < 1 || hi > t.n then invalid_arg "Synopsis.range_sum_estimate: range out of bounds";
    prefix_sum t hi -. prefix_sum t (lo - 1)
  end

let range_avg_estimate t ~lo ~hi =
  if lo > hi then 0.0
  else range_sum_estimate t ~lo ~hi /. Float.of_int (hi - lo + 1)

let to_series t =
  let full = Array.make t.n2 0.0 in
  Array.iter (fun (k, c) -> full.(k) <- c) t.coeffs;
  let rec_all = Haar.inverse full in
  Array.sub rec_all 0 t.n

let sse_against t data =
  if Array.length data <> t.n then invalid_arg "Synopsis.sse_against: length mismatch";
  Sh_util.Metrics.sse (to_series t) data
