module Heap = Sh_util.Heap

(* A detail coefficient for the dyadic block [start, start + size): adds
   [+d] over the first half and [-d] over the second.  Its L2 energy is
   d^2 * size, so thresholding weight is |d| * sqrt(size). *)
type coeff = { start : int; size : int; d : float }

type pending = { p_start : int; avg : float }

type t = {
  budget : int;
  kept : coeff Heap.t; (* min-heap by L2 weight, capped at budget *)
  mutable levels : pending option array; (* levels.(l): incomplete block of size 2^l *)
  mutable n : int;
}

let create ~budget =
  if budget < 1 then invalid_arg "Streaming.create: budget must be >= 1";
  let weight c = Float.abs c.d *. sqrt (Float.of_int c.size) in
  {
    budget;
    kept = Heap.create ~cmp:(fun a b -> compare (weight a) (weight b));
    levels = Array.make 8 None;
    n = 0;
  }

let count t = t.n
let stored_coefficients t = Heap.length t.kept

let weight c = Float.abs c.d *. sqrt (Float.of_int c.size)

let offer t c =
  if c.d <> 0.0 then begin
    if Heap.length t.kept < t.budget then Heap.add t.kept c
    else begin
      match Heap.peek t.kept with
      | Some smallest when weight c > weight smallest ->
        ignore (Heap.pop t.kept);
        Heap.add t.kept c
      | _ -> () (* below the retained threshold: dropped for good *)
    end
  end

let grow_levels t needed =
  if needed >= Array.length t.levels then begin
    let bigger = Array.make (2 * needed) None in
    Array.blit t.levels 0 bigger 0 (Array.length t.levels);
    t.levels <- bigger
  end

(* Online Haar pyramid: carry the new point up through the pending levels;
   each collision of two same-size blocks emits one detail coefficient and
   promotes their average. *)
let push t v =
  if not (Float.is_finite v) then invalid_arg "Streaming.push: non-finite value";
  let start = ref t.n and avg = ref v and level = ref 0 in
  t.n <- t.n + 1;
  let continue = ref true in
  while !continue do
    grow_levels t !level;
    match t.levels.(!level) with
    | None ->
      t.levels.(!level) <- Some { p_start = !start; avg = !avg };
      continue := false
    | Some left ->
      let size = 2 lsl !level in
      offer t { start = left.p_start; size; d = (left.avg -. !avg) /. 2.0 };
      t.levels.(!level) <- None;
      start := left.p_start;
      avg := (left.avg +. !avg) /. 2.0;
      incr level
  done

(* Overlap length of [lo, hi) with [0, p). *)
let overlap ~lo ~hi ~p = max 0 (min p hi - lo)

let prefix_sum t p =
  (* exact dyadic-block averages form the base approximation *)
  let acc = ref 0.0 in
  Array.iteri
    (fun level slot ->
      match slot with
      | None -> ()
      | Some { p_start; avg } ->
        let size = 1 lsl level in
        acc := !acc +. (avg *. Float.of_int (overlap ~lo:p_start ~hi:(p_start + size) ~p)))
    t.levels;
  (* retained detail coefficients refine within their blocks *)
  Heap.iter
    (fun c ->
      let mid = c.start + (c.size / 2) in
      let pos = overlap ~lo:c.start ~hi:mid ~p in
      let neg = overlap ~lo:mid ~hi:(c.start + c.size) ~p in
      acc := !acc +. (c.d *. Float.of_int (pos - neg)))
    t.kept;
  !acc

let range_sum_estimate t ~lo ~hi =
  if lo > hi then 0.0
  else begin
    if lo < 1 || hi > t.n then invalid_arg "Streaming.range_sum_estimate: range out of bounds";
    prefix_sum t hi -. prefix_sum t (lo - 1)
  end

let range_avg_estimate t ~lo ~hi =
  if lo > hi then 0.0
  else range_sum_estimate t ~lo ~hi /. Float.of_int (hi - lo + 1)

let point_estimate t i =
  if i < 1 || i > t.n then invalid_arg "Streaming.point_estimate: index out of range";
  let pos = i - 1 in
  let acc = ref 0.0 in
  Array.iteri
    (fun level slot ->
      match slot with
      | None -> ()
      | Some { p_start; avg } ->
        let size = 1 lsl level in
        if pos >= p_start && pos < p_start + size then acc := !acc +. avg)
    t.levels;
  Heap.iter
    (fun c ->
      let mid = c.start + (c.size / 2) in
      if pos >= c.start && pos < mid then acc := !acc +. c.d
      else if pos >= mid && pos < c.start + c.size then acc := !acc -. c.d)
    t.kept;
  !acc

let to_series t = Array.init t.n (fun i -> point_estimate t (i + 1))
