(** Streaming (agglomerative-model) wavelet synopsis.

    The paper's experiments rebuild wavelet synopses from scratch on every
    arrival; the stronger baseline it cites ([MVW00], dynamic maintenance
    of wavelet histograms) maintains the decomposition incrementally.
    This module provides that for an append-only stream:

    - an online Haar pyramid emits each detail coefficient exactly once,
      when its dyadic block completes (O(1) amortised per point);
    - the [budget] largest coefficients by L2 contribution are retained in
      a min-heap; smaller ones are dropped immediately (streaming
      thresholding — near the offline top-B selection, never above the
      budget);
    - the O(log N) averages of the currently incomplete dyadic blocks are
      kept exactly, so the synopsis always covers the whole stream.

    Point and range-sum estimates cost O(budget + log N). *)

type t

val create : budget:int -> t
(** Retain at most [budget] detail coefficients ([>= 1]). *)

val count : t -> int
(** Stream length so far. *)

val stored_coefficients : t -> int
(** Detail coefficients currently retained ([<= budget]). *)

val push : t -> float -> unit
(** Append the next value.  Raises on non-finite input. *)

val point_estimate : t -> int -> float
(** Estimated x_i, 1-based, [1 <= i <= count]. *)

val range_sum_estimate : t -> lo:int -> hi:int -> float
(** Estimated sum of x_lo .. x_hi (1-based, inclusive). *)

val range_avg_estimate : t -> lo:int -> hi:int -> float

val to_series : t -> float array
(** Full reconstruction of the approximation (length {!count}). *)
