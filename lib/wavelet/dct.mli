(** DCT-based compressed synopses — the "other transform" family of the
    paper's related work ([LKC99]: multidimensional selectivity estimation
    with compressed histogram information uses the discrete cosine
    transform).

    The orthonormal DCT-II concentrates the energy of smooth signals in a
    few low-frequency coefficients; keeping the largest coefficients gives
    an L2-optimal compressed representation of the sequence, exactly as
    for the Haar synopsis.  Unlike Haar, no power-of-two padding is
    needed, and basis prefix sums still have a closed form, so range sums
    cost O(stored coefficients). *)

val transform : float array -> float array
(** Orthonormal DCT-II, O(n^2) (synopsis construction is offline per
    window, so the direct form suffices at window sizes). *)

val inverse : float array -> float array
(** Orthonormal DCT-III; [inverse (transform a) = a] up to round-off. *)

val basis_value : n:int -> coeff:int -> pos:int -> float
(** Value of the orthonormal basis vector [coeff] at 0-based [pos]. *)

val basis_prefix_sum : n:int -> coeff:int -> prefix:int -> float
(** Closed-form sum of the basis vector over positions [0 .. prefix-1]. *)

type t
(** A top-B DCT synopsis. *)

val build : float array -> coeffs:int -> t
val length : t -> int
val stored_coefficients : t -> int
val point_estimate : t -> int -> float
val range_sum_estimate : t -> lo:int -> hi:int -> float
val range_avg_estimate : t -> lo:int -> hi:int -> float
val to_series : t -> float array
val sse_against : t -> float array -> float
