(** Wavelet synopses: keep the B largest-magnitude orthonormal Haar
    coefficients of a sequence — the wavelet-histogram comparator of the
    paper's experiments ([MVW], [MVW00]).

    Inputs of non-power-of-two length are padded to the next power of two
    with the sequence mean (zero-padding would fabricate an artificial
    step; mean padding keeps the coarse coefficients faithful).  Estimates
    are reported only for the original index range.

    Indices in the query API are 1-based with inclusive ranges, matching
    {!Sh_histogram.Histogram}. *)

type t

val build : float array -> coeffs:int -> t
(** Transform, then keep the [coeffs] largest coefficients by magnitude
    (orthonormal basis makes this the L2-optimal selection). *)

val length : t -> int
(** Original sequence length. *)

val stored_coefficients : t -> int
(** Number of retained coefficients ([<= coeffs] requested: zeros are never
    stored). *)

val point_estimate : t -> int -> float
(** Reconstructed v_i, O(stored) per query. *)

val range_sum_estimate : t -> lo:int -> hi:int -> float
(** Reconstructed sum over [lo .. hi], O(stored) via closed-form basis
    prefix sums. *)

val range_avg_estimate : t -> lo:int -> hi:int -> float

val to_series : t -> float array
(** Full reconstruction of the approximation (length {!length}). *)

val sse_against : t -> float array -> float
(** SSE of the reconstruction against the original data. *)
