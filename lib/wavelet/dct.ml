(* Orthonormal DCT-II: X_k = s_k * sum_i x_i cos(pi (2i+1) k / 2n), with
   s_0 = sqrt(1/n) and s_k = sqrt(2/n) otherwise; DCT-III inverts it. *)

let scale n k =
  if k = 0 then sqrt (1.0 /. Float.of_int n) else sqrt (2.0 /. Float.of_int n)

let transform x =
  let n = Array.length x in
  if n = 0 then invalid_arg "Dct.transform: empty input";
  Array.init n (fun k ->
      let acc = ref 0.0 in
      for i = 0 to n - 1 do
        acc :=
          !acc
          +. (x.(i)
             *. cos (Float.pi *. Float.of_int ((2 * i) + 1) *. Float.of_int k
                     /. (2.0 *. Float.of_int n)))
      done;
      scale n k *. !acc)

let inverse coeffs =
  let n = Array.length coeffs in
  if n = 0 then invalid_arg "Dct.inverse: empty input";
  Array.init n (fun i ->
      let acc = ref 0.0 in
      for k = 0 to n - 1 do
        acc :=
          !acc
          +. (scale n k *. coeffs.(k)
             *. cos (Float.pi *. Float.of_int ((2 * i) + 1) *. Float.of_int k
                     /. (2.0 *. Float.of_int n)))
      done;
      !acc)

let basis_value ~n ~coeff ~pos =
  if coeff < 0 || coeff >= n then invalid_arg "Dct.basis_value: coefficient out of range";
  if pos < 0 || pos >= n then invalid_arg "Dct.basis_value: position out of range";
  scale n coeff
  *. cos (Float.pi *. Float.of_int ((2 * pos) + 1) *. Float.of_int coeff
          /. (2.0 *. Float.of_int n))

(* sum_{i=0}^{p-1} cos((2i+1) theta) = sin(2 p theta) / (2 sin theta). *)
let basis_prefix_sum ~n ~coeff ~prefix =
  if coeff < 0 || coeff >= n then invalid_arg "Dct.basis_prefix_sum: coefficient out of range";
  if prefix < 0 || prefix > n then invalid_arg "Dct.basis_prefix_sum: prefix out of range";
  if coeff = 0 then scale n 0 *. Float.of_int prefix
  else begin
    let theta = Float.pi *. Float.of_int coeff /. (2.0 *. Float.of_int n) in
    scale n coeff *. sin (2.0 *. Float.of_int prefix *. theta) /. (2.0 *. sin theta)
  end

type t = { n : int; coeffs : (int * float) array }

let build data ~coeffs:budget =
  let n = Array.length data in
  if n = 0 then invalid_arg "Dct.build: empty data";
  if budget < 1 then invalid_arg "Dct.build: coefficient budget must be >= 1";
  let all = transform data in
  let indexed = Array.mapi (fun i c -> (i, c)) all in
  Array.sort (fun (_, c1) (_, c2) -> compare (Float.abs c2) (Float.abs c1)) indexed;
  let kept = ref [] and count = ref 0 in
  Array.iter
    (fun (i, c) ->
      if !count < budget && c <> 0.0 then begin
        kept := (i, c) :: !kept;
        incr count
      end)
    indexed;
  let coeffs = Array.of_list !kept in
  Array.sort (fun (i1, _) (i2, _) -> compare i1 i2) coeffs;
  { n; coeffs }

let length t = t.n
let stored_coefficients t = Array.length t.coeffs

let point_estimate t i =
  if i < 1 || i > t.n then invalid_arg "Dct.point_estimate: index out of range";
  Array.fold_left
    (fun acc (k, c) -> acc +. (c *. basis_value ~n:t.n ~coeff:k ~pos:(i - 1)))
    0.0 t.coeffs

let prefix_sum t p =
  Array.fold_left
    (fun acc (k, c) -> acc +. (c *. basis_prefix_sum ~n:t.n ~coeff:k ~prefix:p))
    0.0 t.coeffs

let range_sum_estimate t ~lo ~hi =
  if lo > hi then 0.0
  else begin
    if lo < 1 || hi > t.n then invalid_arg "Dct.range_sum_estimate: range out of bounds";
    prefix_sum t hi -. prefix_sum t (lo - 1)
  end

let range_avg_estimate t ~lo ~hi =
  if lo > hi then 0.0
  else range_sum_estimate t ~lo ~hi /. Float.of_int (hi - lo + 1)

let to_series t =
  let full = Array.make t.n 0.0 in
  Array.iter (fun (k, c) -> full.(k) <- c) t.coeffs;
  inverse full

let sse_against t data =
  if Array.length data <> t.n then invalid_arg "Dct.sse_against: length mismatch";
  Sh_util.Metrics.sse (to_series t) data
