let is_pow2 n = n >= 1 && n land (n - 1) = 0

let next_pow2 n =
  if n < 1 then invalid_arg "Haar.next_pow2: argument must be >= 1";
  let rec go p = if p >= n then p else go (2 * p) in
  go 1

let sqrt2 = sqrt 2.0

let transform input =
  let n = Array.length input in
  if not (is_pow2 n) then invalid_arg "Haar.transform: length must be a power of two";
  let a = Array.copy input in
  let tmp = Array.make n 0.0 in
  let len = ref n in
  (* Each pass halves the working prefix: averages go to the front,
     details stay behind them in place. *)
  while !len > 1 do
    let half = !len / 2 in
    for i = 0 to half - 1 do
      tmp.(i) <- (a.(2 * i) +. a.((2 * i) + 1)) /. sqrt2;
      tmp.(half + i) <- (a.(2 * i) -. a.((2 * i) + 1)) /. sqrt2
    done;
    Array.blit tmp 0 a 0 !len;
    len := half
  done;
  a

let inverse coeffs =
  let n = Array.length coeffs in
  if not (is_pow2 n) then invalid_arg "Haar.inverse: length must be a power of two";
  let a = Array.copy coeffs in
  let tmp = Array.make n 0.0 in
  let len = ref 1 in
  while !len < n do
    let half = !len in
    for i = 0 to half - 1 do
      tmp.(2 * i) <- (a.(i) +. a.(half + i)) /. sqrt2;
      tmp.((2 * i) + 1) <- (a.(i) -. a.(half + i)) /. sqrt2
    done;
    Array.blit tmp 0 a 0 (2 * half);
    len := 2 * half
  done;
  a

(* Geometry of coefficient [coeff] in a length-n transform: its level,
   support [s, e) of size n / 2^level, midpoint, and amplitude
   sqrt(2^level / n). *)
let geometry ~n ~coeff =
  let level = ref 0 and base = ref 1 in
  while coeff >= 2 * !base do
    base := 2 * !base;
    incr level
  done;
  let support = n / !base in
  let j = coeff - !base in
  let s = j * support in
  (s, s + (support / 2), s + support, sqrt (Float.of_int !base /. Float.of_int n))

let basis_value ~n ~coeff ~pos =
  if coeff < 0 || coeff >= n then invalid_arg "Haar.basis_value: coefficient out of range";
  if pos < 0 || pos >= n then invalid_arg "Haar.basis_value: position out of range";
  if coeff = 0 then 1.0 /. sqrt (Float.of_int n)
  else begin
    let s, mid, e, amp = geometry ~n ~coeff in
    if pos >= s && pos < mid then amp
    else if pos >= mid && pos < e then -.amp
    else 0.0
  end

let basis_prefix_sum ~n ~coeff ~prefix =
  if coeff < 0 || coeff >= n then invalid_arg "Haar.basis_prefix_sum: coefficient out of range";
  if prefix < 0 || prefix > n then invalid_arg "Haar.basis_prefix_sum: prefix out of range";
  if coeff = 0 then Float.of_int prefix /. sqrt (Float.of_int n)
  else begin
    let s, mid, e, amp = geometry ~n ~coeff in
    let clamp lo hi = max 0 (min prefix hi - lo) in
    let pos_count = clamp s mid and neg_count = clamp mid e in
    amp *. Float.of_int (pos_count - neg_count)
  end
