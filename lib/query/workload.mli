(** Query workload generation — Section 5.1 of the paper: "the starting
    points as well as the span of the queries (size of the requested
    aggregation range) is chosen uniformly and independently". *)

type range_query = { lo : int; hi : int }

val random_ranges : Sh_util.Rng.t -> n:int -> count:int -> range_query array
(** [count] queries over [\[1, n\]]: start uniform in [\[1, n\]], span
    uniform in [\[1, n - start + 1\]]. *)

val random_ranges_span :
  Sh_util.Rng.t -> n:int -> count:int -> max_span:int -> range_query array
(** Same with the span capped at [max_span] (short-range workload). *)

val random_points : Sh_util.Rng.t -> n:int -> count:int -> int array
(** Uniform point queries. *)
