module Histogram = Sh_histogram.Histogram
module Synopsis = Sh_wavelet.Synopsis
module Prefix_sums = Sh_prefix.Prefix_sums

type t = {
  name : string;
  n : int;
  point : int -> float;
  range_sum : lo:int -> hi:int -> float;
}

let range_avg t ~lo ~hi =
  if lo > hi then 0.0 else t.range_sum ~lo ~hi /. Float.of_int (hi - lo + 1)

let of_histogram ?(name = "histogram") h =
  {
    name;
    n = h.Histogram.n;
    point = Histogram.point_estimate h;
    range_sum = Histogram.range_sum_estimate h;
  }

let of_wavelet ?(name = "wavelet") w =
  {
    name;
    n = Synopsis.length w;
    point = Synopsis.point_estimate w;
    range_sum = Synopsis.range_sum_estimate w;
  }

let exact ?(name = "exact") prefix =
  {
    name;
    n = Prefix_sums.length prefix;
    point = (fun i -> Prefix_sums.range_sum prefix ~lo:i ~hi:i);
    range_sum = Prefix_sums.range_sum prefix;
  }

let of_series ?(name = "series") series =
  let prefix = Prefix_sums.make series in
  { (exact prefix) with name }

let of_fw_view ?(name = "fw-view") v =
  match Stream_histogram.Fixed_window.View.histogram v with
  | None -> invalid_arg "Estimator.of_fw_view: empty window view"
  | Some h -> of_histogram ~name h

let of_streaming_wavelet ?(name = "streaming-wavelet") s =
  {
    name;
    n = Sh_wavelet.Streaming.count s;
    point = Sh_wavelet.Streaming.point_estimate s;
    range_sum = Sh_wavelet.Streaming.range_sum_estimate s;
  }
