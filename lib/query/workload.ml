module Rng = Sh_util.Rng

type range_query = { lo : int; hi : int }

let random_ranges_span rng ~n ~count ~max_span =
  if n < 1 then invalid_arg "Workload.random_ranges: n must be >= 1";
  if max_span < 1 then invalid_arg "Workload.random_ranges: max_span must be >= 1";
  Array.init count (fun _ ->
      let lo = 1 + Rng.int rng n in
      let span = 1 + Rng.int rng (min max_span (n - lo + 1)) in
      { lo; hi = lo + span - 1 })

let random_ranges rng ~n ~count = random_ranges_span rng ~n ~count ~max_span:n

let random_points rng ~n ~count =
  if n < 1 then invalid_arg "Workload.random_points: n must be >= 1";
  Array.init count (fun _ -> 1 + Rng.int rng n)
