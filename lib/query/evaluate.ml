module Metrics = Sh_util.Metrics

let check_compatible (truth : Estimator.t) (est : Estimator.t) =
  if truth.Estimator.n <> est.Estimator.n then
    invalid_arg "Evaluate: estimators cover different index ranges"

let range_sum_errors ~truth est queries =
  check_compatible truth est;
  let truths =
    Array.map (fun { Workload.lo; hi } -> truth.Estimator.range_sum ~lo ~hi) queries
  in
  let estimates =
    Array.map (fun { Workload.lo; hi } -> est.Estimator.range_sum ~lo ~hi) queries
  in
  Metrics.summarize ~estimates ~truths

let point_errors ~truth est points =
  check_compatible truth est;
  let truths = Array.map truth.Estimator.point points in
  let estimates = Array.map est.Estimator.point points in
  Metrics.summarize ~estimates ~truths

let range_avg_errors ~truth est queries =
  check_compatible truth est;
  let truths =
    Array.map (fun { Workload.lo; hi } -> Estimator.range_avg truth ~lo ~hi) queries
  in
  let estimates =
    Array.map (fun { Workload.lo; hi } -> Estimator.range_avg est ~lo ~hi) queries
  in
  Metrics.summarize ~estimates ~truths
