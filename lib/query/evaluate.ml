module Metrics = Sh_util.Metrics
module Obs = Sh_obs.Obs
module M = Sh_obs.Metric

(* Query-volume accounting is global (not per-estimator): evaluation
   batches mix estimators over the same workload, so the interesting
   number is total queries answered per kind. *)
let c_range_sum = Obs.counter "query.range_sum_queries"
let c_point = Obs.counter "query.point_queries"
let c_range_avg = Obs.counter "query.range_avg_queries"

let check_compatible (truth : Estimator.t) (est : Estimator.t) =
  if truth.Estimator.n <> est.Estimator.n then
    invalid_arg "Evaluate: estimators cover different index ranges"

let range_sum_errors ~truth est queries =
  check_compatible truth est;
  Obs.with_span "query.range_sum" @@ fun () ->
  M.add c_range_sum (Array.length queries);
  let truths =
    Array.map (fun { Workload.lo; hi } -> truth.Estimator.range_sum ~lo ~hi) queries
  in
  let estimates =
    Array.map (fun { Workload.lo; hi } -> est.Estimator.range_sum ~lo ~hi) queries
  in
  Metrics.summarize ~estimates ~truths

let point_errors ~truth est points =
  check_compatible truth est;
  Obs.with_span "query.point" @@ fun () ->
  M.add c_point (Array.length points);
  let truths = Array.map truth.Estimator.point points in
  let estimates = Array.map est.Estimator.point points in
  Metrics.summarize ~estimates ~truths

let range_avg_errors ~truth est queries =
  check_compatible truth est;
  Obs.with_span "query.range_avg" @@ fun () ->
  M.add c_range_avg (Array.length queries);
  let truths =
    Array.map (fun { Workload.lo; hi } -> Estimator.range_avg truth ~lo ~hi) queries
  in
  let estimates =
    Array.map (fun { Workload.lo; hi } -> Estimator.range_avg est ~lo ~hi) queries
  in
  Metrics.summarize ~estimates ~truths
