(** Accuracy evaluation of a synopsis estimator against ground truth. *)

val range_sum_errors :
  truth:Estimator.t -> Estimator.t -> Workload.range_query array -> Sh_util.Metrics.summary
(** Run every range-sum query through both estimators and summarise the
    errors.  Raises [Invalid_argument] when the index ranges disagree. *)

val point_errors : truth:Estimator.t -> Estimator.t -> int array -> Sh_util.Metrics.summary

val range_avg_errors :
  truth:Estimator.t -> Estimator.t -> Workload.range_query array -> Sh_util.Metrics.summary
