(** A uniform query interface over every synopsis in the repository, plus
    exact ground truth — what the experiment harness sweeps over.

    Indices are 1-based; ranges inclusive. *)

type t = {
  name : string;
  n : int;                                   (** covered index range [1..n] *)
  point : int -> float;                      (** estimate of v_i *)
  range_sum : lo:int -> hi:int -> float;     (** estimate of sum v_lo..v_hi *)
}

val range_avg : t -> lo:int -> hi:int -> float

val of_histogram : ?name:string -> Sh_histogram.Histogram.t -> t
val of_wavelet : ?name:string -> Sh_wavelet.Synopsis.t -> t

val exact : ?name:string -> Sh_prefix.Prefix_sums.t -> t
(** Ground truth from prefix sums. *)

val of_series : ?name:string -> float array -> t
(** Estimator backed by an explicit approximation series (0-based array
    approximating v_1..v_n). *)

val of_streaming_wavelet : ?name:string -> Sh_wavelet.Streaming.t -> t
(** Estimator over an incrementally maintained wavelet synopsis. *)

val of_fw_view : ?name:string -> Stream_histogram.Fixed_window.View.t -> t
(** Estimator over a published fixed-window read view (the wait-free
    query plane of {!Sh_par.Shard_engine}): answers come from the view's
    precomputed histogram, so they are stable for the lifetime of the
    estimator even while ingest continues on the live summary.  Indices
    are window-relative (1 = oldest point in the captured window).
    Raises [Invalid_argument] on an empty-window view. *)
