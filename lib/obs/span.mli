(** Lightweight span tracing.

    [with_span name f] times [f] with the injected {!Control} clock and
    records a completed-span event carrying the nesting depth at entry, a
    completion sequence number, and the per-span deltas of every registry
    counter that moved while the span was open (children included — deltas
    are inclusive, as in any tracing system).  Each completion also bumps
    the ["obs.spans"] counter labelled with the span name and feeds the
    duration into an auto-registered ["<name>_duration"] histogram.

    When {!Control.enabled} is false the entire mechanism reduces to one
    boolean load before calling [f] — the disabled fast path relied on by
    the streaming hot paths.

    Domain-safety: the event buffer and sequence counter are protected by
    a mutex, and nesting depth is domain-local, so spans opened on
    parallel pool domains (lib/par) record correctly and never corrupt the
    trace.  Counter deltas are computed from the shared registry, so a
    span that runs concurrently with work on other domains attributes
    their increments to itself — deltas are exact on a single domain and
    an upper bound under parallelism. *)

type event = {
  name : string;
  depth : int;  (** nesting depth at entry on its domain; 0 for top-level *)
  seq : int;  (** completion order, 1-based; inner spans complete first *)
  start : float;  (** clock value at entry *)
  duration : float;  (** clock delta between entry and exit *)
  deltas : (string * Metric.labels * int) list;
      (** counters that changed while the span was open, sorted; the
          tracer's own ["obs.*"] bookkeeping series are excluded *)
}

val with_span : string -> (unit -> 'a) -> 'a
(** Exceptions from [f] propagate after the span is recorded. *)

val trace : unit -> event list
(** Completed spans in completion order (oldest first). *)

val trace_length : unit -> int

val set_capacity : int -> unit
(** Bound on retained events (default 4096); the oldest are dropped
    beyond it.  Raises [Invalid_argument] below 1. *)

val dropped_events : unit -> int
(** Events discarded due to the capacity bound since the last {!clear}. *)

val clear : unit -> unit
(** Drop all retained events and reset the sequence counter. *)
