(** Lightweight span tracing over per-domain rings.

    [with_span name f] times [f] with the injected {!Control} clock and
    records a completed-span event carrying the nesting depth at entry, a
    completion sequence number, and the per-span deltas of every registry
    counter that moved while the span was open (children included — deltas
    are inclusive, as in any tracing system).  Each completion also bumps
    the ["obs.spans"] counter labelled with the span name and feeds the
    duration into an auto-registered ["<name>_duration"] histogram.

    When {!Control.enabled} is false the entire mechanism reduces to one
    boolean load before calling [f] — the disabled fast path relied on by
    the streaming hot paths.

    Domain-safety: each domain records into its own {!Plane}-slot ring
    with plain stores (no lock, no shared-line traffic); the only shared
    write per completed span is one atomic fetch-and-add for the sequence
    number.  Nesting depth is domain-local.  A full ring overwrites its
    oldest event and counts the loss in [obs.dropped_spans].  The
    aggregate operations ({!trace}, {!trace_length}, {!set_capacity},
    {!dropped_events}, {!clear}) walk every ring and are exact only when
    recording domains are quiescent (joined/awaited) — call them between
    runs, not mid-ingest.  Counter deltas are computed from the shared
    registry, so a span that runs concurrently with work on other domains
    attributes their increments to itself — deltas are exact on a single
    domain and an upper bound under parallelism. *)

type event = {
  name : string;
  depth : int;  (** nesting depth at entry on its domain; 0 for top-level *)
  seq : int;  (** completion order, 1-based; inner spans complete first *)
  track : int;
      (** recording domain's plane slot — one Chrome-trace track per
          value; [Plane.max_slots] for slotless (overflow) domains *)
  start : float;  (** clock value at entry *)
  duration : float;  (** clock delta between entry and exit *)
  deltas : (string * Metric.labels * int) list;
      (** counters that changed while the span was open, sorted; the
          tracer's own ["obs.*"] bookkeeping series are excluded *)
}

val with_span : string -> (unit -> 'a) -> 'a
(** Exceptions from [f] propagate after the span is recorded. *)

val trace : unit -> event list
(** Completed spans merged across all rings, in completion order (oldest
    first). *)

val trace_length : unit -> int

val set_capacity : int -> unit
(** Bound on retained events per ring (default 4096); the oldest are
    dropped beyond it.  Rebuilds every ring, keeping the newest events.
    Raises [Invalid_argument] below 1. *)

val dropped_events : unit -> int
(** Events discarded to the capacity bound since the last {!clear} —
    ring-wrap overwrites (also counted on the [obs.dropped_spans]
    counter) plus events trimmed by a capacity reduction. *)

val clear : unit -> unit
(** Drop all retained events and reset the sequence counter. *)
