(** Runtime switches for the telemetry subsystem.

    [enabled] gates everything with a per-event cost beyond a single
    machine-word write: span tracing and histogram observations.  Counters
    and gauges stay live even when disabled — they are single int/float
    stores and double as the algorithms' work-accounting state (see
    {!Fixed_window.work_counters}), which must keep counting regardless of
    whether telemetry is being collected. *)

val enabled : bool ref
(** Exposed as a [ref] so hot paths can read it with one load; prefer
    {!is_enabled} elsewhere. *)

val set_enabled : bool -> unit
val is_enabled : unit -> bool

val set_clock : (unit -> float) -> unit
(** Inject the wall clock used for span timing, in seconds.  Defaults to
    [Sys.time] (CPU seconds); binaries that link unix should inject
    [Unix.gettimeofday]. *)

val now : unit -> float
