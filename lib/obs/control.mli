(** Runtime switches for the telemetry subsystem.

    [enabled] gates everything with a per-event cost beyond a single
    machine-word write: span tracing and histogram observations.  Counters
    and gauges stay live even when disabled — they are single int/float
    stores and double as the algorithms' work-accounting state (see
    {!Fixed_window.work_counters}), which must keep counting regardless of
    whether telemetry is being collected. *)

val enabled : bool Atomic.t
(** Exposed directly so hot paths can read it with one atomic load (a
    plain load on the usual platforms); prefer {!is_enabled} elsewhere.
    Atomic so parallel domains observe toggles without a data race. *)

val set_enabled : bool -> unit
val is_enabled : unit -> bool

val latency_enabled : bool Atomic.t
(** Gates {!Latency.record} / {!Latency.time} — independent of [enabled]
    so latency quantiles can run without span tracing (and vice versa). *)

val set_latency_enabled : bool -> unit
val is_latency_enabled : unit -> bool

val set_clock : (unit -> float) -> unit
(** Inject the wall clock used for span timing, in seconds.  Defaults to
    [Sys.time] (CPU seconds); binaries that link unix should inject
    [Unix.gettimeofday].  Not synchronised: set it at startup, before any
    domains are spawned. *)

val now : unit -> float
