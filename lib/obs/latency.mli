(** Self-hosted latency quantiles: duration distributions tracked in
    per-domain Greenwald-Khanna summaries ({!Sh_gk.Gk} — the same
    structure the paper uses for streaming order statistics) and merged
    only at snapshot time.

    Recording follows the {!Plane} discipline: a GK insert into the
    calling domain's own slot state, no shared-cacheline traffic; slotless
    domains fall back to a mutex-guarded overflow state and bump the
    [obs.plane_collisions] witness.  A merged quantile over the per-domain
    streams carries rank error at most [sum_i (epsilon * n_i)].

    Gated by {!Control.latency_enabled}, independently of span tracing:
    a GK insert per timed section is cheap but not free, and it must be
    possible to collect latency percentiles without full span capture.

    The optional sliding window ("last k batches") is driven by a global
    epoch: callers bump it with {!advance} once per batch, and each slot
    keeps a ring of per-epoch summaries rotated lazily by its owner.
    Aggregate reads ({!quantile}, {!count}, {!sum}) are exact when
    recording domains are quiescent, and memory-safe but possibly slightly
    stale mid-flight — same contract as the metric snapshot readers. *)

type t

val tracker : ?labels:Metric.labels -> ?epsilon:float -> string -> t
(** Get-or-create by (name, canonically sorted labels).  [epsilon]
    (default 0.001) bounds the per-summary rank error; the first
    registration's epsilon wins.  Raises [Invalid_argument] when epsilon
    is outside (0, 1). *)

val record : t -> float -> unit
(** Record one duration in seconds.  No-op while latency tracking is
    disabled; negative and non-finite values are ignored. *)

val time : t -> (unit -> 'a) -> 'a
(** Time [f] with the {!Control} clock and record the elapsed seconds.
    One boolean load when disabled; exceptions propagate after the
    duration is recorded. *)

val advance : unit -> unit
(** Advance the global window epoch — call once per ingest batch.  No-op
    while latency tracking is disabled. *)

val set_window : int -> unit
(** Window width in epochs (batches).  [0] (the default) disables the
    window: quantiles answer over all recorded durations.  [k > 0] makes
    {!quantile} answer over the last [k] epochs only.  Takes effect
    lazily per recording domain; raises [Invalid_argument] below 0. *)

val window : unit -> int

val name : t -> string
val labels : t -> Metric.labels
val epsilon : t -> float

val count : t -> int
(** All-time recorded durations (the Prometheus [_count]). *)

val sum : t -> float
(** All-time summed durations in seconds (the Prometheus [_sum]). *)

val quantile : t -> float -> float option
(** Merged quantile across the per-domain summaries — windowed when a
    window is set, all-time otherwise.  [None] when nothing is recorded
    (in the window). *)

val percentiles : float list
(** The quantiles every sink exposes: 0.5, 0.9, 0.99, 0.999. *)

val snapshot : unit -> t list
(** All trackers sorted by (name, labels) — the order sinks render. *)

val tracker_count : unit -> int

val reset : unit -> unit
(** Forget all recorded durations and rewind the epoch; registrations
    survive. *)

val clear : unit -> unit
(** Drop all tracker registrations (handles held by callers keep
    recording but are no longer exported); for test isolation. *)
