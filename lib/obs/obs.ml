(* Facade over the telemetry subsystem: the one module instrumented code
   and binaries interact with. *)

let set_enabled = Control.set_enabled
let enabled = Control.is_enabled
let set_latency_enabled = Control.set_latency_enabled
let latency_enabled = Control.is_latency_enabled
let set_clock = Control.set_clock
let now = Control.now

let counter = Registry.counter
let gauge = Registry.gauge
let histogram = Registry.histogram
let with_span = Span.with_span

let plane_collisions () = Atomic.get Metric.plane_collisions_cell

(* Per-structure instance names: "fw0", "fw1", ... per prefix, so every
   live structure exports its own label-distinguished series.  Mutexed so
   structures created from parallel domains never share a name. *)
let instance_seq : (string, int ref) Hashtbl.t = Hashtbl.create 8
let instance_m = Mutex.create ()

let instance prefix =
  Mutex.lock instance_m;
  let r =
    match Hashtbl.find_opt instance_seq prefix with
    | Some r -> r
    | None ->
      let r = ref 0 in
      Hashtbl.replace instance_seq prefix r;
      r
  in
  let id = !r in
  incr r;
  Mutex.unlock instance_m;
  prefix ^ string_of_int id

type format = Text | Json | Prom

let format_of_string = function
  | "text" -> Some Text
  | "json" -> Some Json
  | "prom" | "prometheus" -> Some Prom
  | _ -> None

let format_to_string = function Text -> "text" | Json -> "json" | Prom -> "prom"

let render fmt =
  let buf = Buffer.create 4096 in
  (match fmt with
  | Text -> Sink.text buf
  | Json -> Sink.json_lines buf
  | Prom -> Sink.prometheus buf);
  Buffer.contents buf

let render_trace () =
  let buf = Buffer.create 4096 in
  Sink.trace_json_lines buf;
  Buffer.contents buf

let render_chrome_trace () =
  let buf = Buffer.create 4096 in
  Sink.chrome_trace buf;
  Buffer.contents buf

let reset () =
  Registry.reset ();
  Latency.reset ();
  Span.clear ()

let clear () =
  Registry.clear ();
  Latency.clear ();
  Span.clear ();
  Mutex.lock instance_m;
  Hashtbl.reset instance_seq;
  Mutex.unlock instance_m
