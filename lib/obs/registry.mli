(** Global metric registry: get-or-create of named metric series.

    A series is identified by a metric name plus a label set (e.g.
    [("instance", "fw0")]); labels are canonically sorted on registration
    so label order never distinguishes series.  Registration costs one
    hashtable lookup and happens at structure-creation time; the returned
    handles are then recorded through directly ({!Metric}), keeping the
    hot paths O(1) with no lookups. *)

type metric =
  | Counter of Metric.counter
  | Gauge of Metric.gauge
  | Histogram of Metric.histogram

val counter : ?labels:Metric.labels -> string -> Metric.counter
(** Get-or-create.  Raises [Invalid_argument] when the name is malformed
    (allowed: [[a-zA-Z0-9_.]], starting with a letter) or the series
    exists with a different type. *)

val gauge : ?labels:Metric.labels -> string -> Metric.gauge
val histogram : ?labels:Metric.labels -> string -> Metric.histogram

val find : ?labels:Metric.labels -> string -> metric option

val iter : (metric -> unit) -> unit
(** Unordered iteration over all registered series. *)

val snapshot : unit -> metric list
(** All series sorted by (name, labels) — the stable order used by every
    sink.  The returned metrics are live handles, not copies. *)

val metric_name : metric -> string
val metric_labels : metric -> Metric.labels

val series_count : unit -> int

val reset : unit -> unit
(** Zero every value; registrations (and handles held by structures)
    survive.  Note this also zeroes the work-accounting counters backing
    e.g. [Fixed_window.work_counters]. *)

val clear : unit -> unit
(** Drop all registrations.  Handles already held by live structures keep
    counting but are no longer exported; intended for test isolation. *)
