(** Per-domain plane slots: the foundation of contention-free telemetry.

    Every plane-backed structure (counters, gauges, histograms, span
    rings, latency summaries) keeps one padded row per {e slot}; a slot is
    a small integer owned by exactly one live domain.  Writers only ever
    touch their own slot's row, so the steady-state recording paths
    perform zero shared-cacheline writes; readers aggregate across all
    rows at snapshot time.

    Slots are claimed lazily on a domain's first recording operation (via
    a [Domain.DLS]-cached lookup — one array read on the hot path) and
    recycled through [Domain.at_exit] when the domain terminates, so
    short-lived pool domains (lib/par spawns them per run) never exhaust
    the slot space.  A recycled slot's rows keep their accumulated values:
    counters are cumulative sums over everything every owner ever wrote.

    When more than {!max_slots} domains are alive at once, the extra
    domains fall back to shared overflow cells; each such write is counted
    by the [obs.plane_collisions] witness counter (see {!Metric}), which
    stays flat whenever the per-domain fast path is actually taken. *)

val max_slots : int
(** Number of per-domain slots (16).  Index range of every plane's row
    array; overflow writers use index [-1]. *)

val slot : unit -> int
(** This domain's slot in [0 .. max_slots - 1], or [-1] when all slots
    were taken by other live domains (overflow).  First call on a domain
    claims a slot; subsequent calls are one domain-local array read. *)

val slots_in_use : unit -> int
(** Currently claimed slots — diagnostic only. *)

val ov_mutex : Mutex.t
(** Serialises the shared overflow rows of the non-atomic plane structures
    (histograms, span rings, latency summaries).  Counters and gauges use
    atomic overflow cells instead and never take it. *)
