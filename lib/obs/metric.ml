type labels = (string * string) list

(* Every value cell is a per-domain plane: one padded row per Plane slot,
   written only by the slot's owner with plain (non-atomic) stores, read
   by aggregating accessors at snapshot time.  The steady-state recording
   path therefore touches no shared cacheline — the property the lock-free
   shard engine (lib/par) needs to scale — while [value]/[gvalue]/[hcount]
   remain exact once writers are quiescent (joins/awaits establish the
   necessary happens-before).  Mid-flight reads are memory-safe and at
   worst slightly stale.

   Rows are published through [Atomic.t] cells (an atomic load is a plain
   load on x86/ARM) so a snapshot on another domain never observes an
   unpublished row.  Rows are allocated lazily by their owner, which also
   places them in the owner's allocation region — adjacent slots never
   share a line.  [row_pad] keeps a row's payload a full cacheline even
   when the allocator packs blocks tightly. *)

let row_pad = 8

let no_irow : int array = [||]
let no_frow : float array = [||]

type counter = {
  c_name : string;
  c_labels : labels;
  c_rows : int array Atomic.t array;
  c_ov : int Atomic.t;  (* slotless-domain fallback, fetch-and-add *)
}

type gauge = {
  g_name : string;
  g_labels : labels;
  g_rows : float array Atomic.t array;
  g_base : float Atomic.t;  (* [set] target and slotless-domain adds *)
}

(* Log-scale histogram: bucket [i] counts observations v with
   le(i-1) < v <= le(i) where le(i) = 2^(i - bucket_offset); the last
   bucket is the +infinity overflow.  [observe] is O(1) via frexp. *)
let bucket_count = 64
let bucket_offset = 40

type hrow = { hb : int array; mutable hn : int; mutable hs : float }

let no_hrow = { hb = [||]; hn = 0; hs = 0.0 }

type histogram = {
  h_name : string;
  h_labels : labels;
  h_rows : hrow Atomic.t array;
  h_ov : hrow;  (* slotless-domain fallback, guarded by Plane.ov_mutex *)
}

let make_rows absent = Array.init Plane.max_slots (fun _ -> Atomic.make absent)

(* The [obs.plane_collisions] witness: bumped (with a single atomic RMW)
   every time a recording operation misses the per-domain fast path
   because more than [Plane.max_slots] domains are alive.  Registry wires
   this very cell in as the counter's overflow cell, so the registered
   series reads it with no special cases — and the overflow path below
   writes it directly rather than recursing through [incr]. *)
let plane_collisions_cell : int Atomic.t = Atomic.make 0

let note_collision (ov : int Atomic.t) =
  if ov != plane_collisions_cell then Atomic.incr plane_collisions_cell

(* -------------------------------------------------------------- counters *)

let c_row c s =
  let r = Atomic.get (Array.unsafe_get c.c_rows s) in
  if r != no_irow then r
  else begin
    let r = Array.make row_pad 0 in
    Atomic.set c.c_rows.(s) r;
    r
  end

let add c n =
  if n < 0 then invalid_arg "Obs: counters are monotone, negative increment";
  let s = Plane.slot () in
  if s >= 0 then begin
    let r = c_row c s in
    Array.unsafe_set r 0 (Array.unsafe_get r 0 + n)
  end
  else begin
    ignore (Atomic.fetch_and_add c.c_ov n);
    note_collision c.c_ov
  end

let incr c = add c 1

let value c =
  let acc = ref (Atomic.get c.c_ov) in
  for s = 0 to Plane.max_slots - 1 do
    let r = Atomic.get c.c_rows.(s) in
    if r != no_irow then acc := !acc + r.(0)
  done;
  !acc

let reset_counter c =
  for s = 0 to Plane.max_slots - 1 do
    let r = Atomic.get c.c_rows.(s) in
    if r != no_irow then r.(0) <- 0
  done;
  Atomic.set c.c_ov 0

(* ---------------------------------------------------------------- gauges *)

let g_row g s =
  let r = Atomic.get (Array.unsafe_get g.g_rows s) in
  if r != no_frow then r
  else begin
    let r = Array.make row_pad 0.0 in
    Atomic.set g.g_rows.(s) r;
    r
  end

let cells_sum g =
  let acc = ref 0.0 in
  for s = 0 to Plane.max_slots - 1 do
    let r = Atomic.get g.g_rows.(s) in
    if r != no_frow then acc := !acc +. r.(0)
  done;
  !acc

let gadd g v =
  let s = Plane.slot () in
  if s >= 0 then begin
    let r = g_row g s in
    Array.unsafe_set r 0 (Array.unsafe_get r 0 +. v)
  end
  else begin
    (* CAS retry: adds from several slotless domains are all reflected. *)
    let rec go () =
      let cur = Atomic.get g.g_base in
      if not (Atomic.compare_and_set g.g_base cur (cur +. v)) then go ()
    in
    go ();
    Atomic.incr plane_collisions_cell
  end

let gincr g = gadd g 1.0
let gvalue g = Atomic.get g.g_base +. cells_sum g

(* Rebase so the aggregate reads exactly [v].  Not atomic against
   concurrent [gadd]s — in-tree setters run at structure creation or on
   rare state changes (e.g. a window length change), never on recording
   hot paths. *)
let set g v = Atomic.set g.g_base (v -. cells_sum g)

let reset_gauge g =
  for s = 0 to Plane.max_slots - 1 do
    let r = Atomic.get g.g_rows.(s) in
    if r != no_frow then r.(0) <- 0.0
  done;
  Atomic.set g.g_base 0.0

(* ------------------------------------------------------------ histograms *)

let bucket_index v =
  if v <= 0.0 then 0
  else begin
    let m, e = Float.frexp v in
    (* frexp: v = m * 2^e with m in [0.5, 1); an exact power of two
       (m = 0.5) sits on its bucket's inclusive upper bound. *)
    let e = if m = 0.5 then e - 1 else e in
    if e < -bucket_offset then 0
    else if e >= bucket_count - 1 - bucket_offset then bucket_count - 1
    else e + bucket_offset
  end

let bucket_le i =
  if i < 0 || i >= bucket_count then invalid_arg "Obs: bucket index out of range";
  if i = bucket_count - 1 then infinity else Float.ldexp 1.0 (i - bucket_offset)

let h_row h s =
  let r = Atomic.get (Array.unsafe_get h.h_rows s) in
  if r != no_hrow then r
  else begin
    let r = { hb = Array.make bucket_count 0; hn = 0; hs = 0.0 } in
    Atomic.set h.h_rows.(s) r;
    r
  end

let hrow_observe r v =
  let i = bucket_index v in
  r.hb.(i) <- r.hb.(i) + 1;
  r.hn <- r.hn + 1;
  r.hs <- r.hs +. v

let observe h v =
  if Atomic.get Control.enabled then begin
    let s = Plane.slot () in
    if s >= 0 then hrow_observe (h_row h s) v
    else begin
      Mutex.lock Plane.ov_mutex;
      hrow_observe h.h_ov v;
      Mutex.unlock Plane.ov_mutex;
      Atomic.incr plane_collisions_cell
    end
  end

let fold_rows h ~init ~f =
  let acc = ref (f init h.h_ov) in
  for s = 0 to Plane.max_slots - 1 do
    let r = Atomic.get h.h_rows.(s) in
    if r != no_hrow then acc := f !acc r
  done;
  !acc

let hcount h = fold_rows h ~init:0 ~f:(fun acc r -> acc + r.hn)
let hsum h = fold_rows h ~init:0.0 ~f:(fun acc r -> acc +. r.hs)

let hmean h =
  let n = hcount h in
  if n = 0 then 0.0 else hsum h /. Float.of_int n

let bucket_value h i =
  if i < 0 || i >= bucket_count then invalid_arg "Obs: bucket index out of range";
  fold_rows h ~init:0 ~f:(fun acc r -> acc + r.hb.(i))

(* Cumulative count of observations <= bucket_le i, Prometheus-style. *)
let cumulative h i =
  let acc = ref 0 in
  for j = 0 to i do
    acc := !acc + bucket_value h j
  done;
  !acc

let reset_histogram h =
  let zero r =
    Array.fill r.hb 0 bucket_count 0;
    r.hn <- 0;
    r.hs <- 0.0
  in
  zero h.h_ov;
  for s = 0 to Plane.max_slots - 1 do
    let r = Atomic.get h.h_rows.(s) in
    if r != no_hrow then zero r
  done
