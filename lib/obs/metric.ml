type labels = (string * string) list

type counter = { c_name : string; c_labels : labels; mutable c_value : int }
type gauge = { g_name : string; g_labels : labels; mutable g_value : float }

(* Log-scale histogram: bucket [i] counts observations v with
   le(i-1) < v <= le(i) where le(i) = 2^(i - bucket_offset); the last
   bucket is the +infinity overflow.  [observe] is O(1) via frexp. *)
let bucket_count = 64
let bucket_offset = 40

type histogram = {
  h_name : string;
  h_labels : labels;
  h_buckets : int array;
  mutable h_count : int;
  mutable h_sum : float;
}

let incr c = c.c_value <- c.c_value + 1

let add c n =
  if n < 0 then invalid_arg "Obs: counters are monotone, negative increment";
  c.c_value <- c.c_value + n

let value c = c.c_value

let set g v = g.g_value <- v
let gadd g v = g.g_value <- g.g_value +. v
let gincr g = g.g_value <- g.g_value +. 1.0
let gvalue g = g.g_value

let bucket_index v =
  if v <= 0.0 then 0
  else begin
    let m, e = Float.frexp v in
    (* frexp: v = m * 2^e with m in [0.5, 1); an exact power of two
       (m = 0.5) sits on its bucket's inclusive upper bound. *)
    let e = if m = 0.5 then e - 1 else e in
    if e < -bucket_offset then 0
    else if e >= bucket_count - 1 - bucket_offset then bucket_count - 1
    else e + bucket_offset
  end

let bucket_le i =
  if i < 0 || i >= bucket_count then invalid_arg "Obs: bucket index out of range";
  if i = bucket_count - 1 then infinity else Float.ldexp 1.0 (i - bucket_offset)

let observe h v =
  if !Control.enabled then begin
    h.h_buckets.(bucket_index v) <- h.h_buckets.(bucket_index v) + 1;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v
  end

let hcount h = h.h_count
let hsum h = h.h_sum
let hmean h = if h.h_count = 0 then 0.0 else h.h_sum /. Float.of_int h.h_count

(* Cumulative count of observations <= bucket_le i, Prometheus-style. *)
let cumulative h i =
  let acc = ref 0 in
  for j = 0 to i do
    acc := !acc + h.h_buckets.(j)
  done;
  !acc
