type labels = (string * string) list

(* Counters and gauges sit on [Atomic.t] cells: instrumented structures now
   run inside pool domains (lib/par), and a fetch-and-add is the cheapest
   primitive that loses no increments under concurrent bumping.  On one
   domain it is still a single read-modify-write instruction, which is what
   keeps the telemetry overhead budget (<3%, see EXPERIMENTS.md) intact. *)
type counter = { c_name : string; c_labels : labels; c_value : int Atomic.t }
type gauge = { g_name : string; g_labels : labels; g_value : float Atomic.t }

(* Log-scale histogram: bucket [i] counts observations v with
   le(i-1) < v <= le(i) where le(i) = 2^(i - bucket_offset); the last
   bucket is the +infinity overflow.  [observe] is O(1) via frexp.

   Histograms keep plain mutable fields: every in-tree [observe] happens
   under the span tracer's lock (see Span), and they are off unless
   telemetry is enabled.  Unsynchronised concurrent [observe] from user
   code may lose observations but never corrupts memory. *)
let bucket_count = 64
let bucket_offset = 40

type histogram = {
  h_name : string;
  h_labels : labels;
  h_buckets : int array;
  mutable h_count : int;
  mutable h_sum : float;
}

let incr c = Atomic.incr c.c_value

let add c n =
  if n < 0 then invalid_arg "Obs: counters are monotone, negative increment";
  ignore (Atomic.fetch_and_add c.c_value n)

let value c = Atomic.get c.c_value

let set g v = Atomic.set g.g_value v

(* Retry loop: [compare_and_set] on the exact boxed float we read succeeds
   iff no other domain stored in between. *)
let rec gadd g v =
  let cur = Atomic.get g.g_value in
  if not (Atomic.compare_and_set g.g_value cur (cur +. v)) then gadd g v

let gincr g = gadd g 1.0
let gvalue g = Atomic.get g.g_value

let bucket_index v =
  if v <= 0.0 then 0
  else begin
    let m, e = Float.frexp v in
    (* frexp: v = m * 2^e with m in [0.5, 1); an exact power of two
       (m = 0.5) sits on its bucket's inclusive upper bound. *)
    let e = if m = 0.5 then e - 1 else e in
    if e < -bucket_offset then 0
    else if e >= bucket_count - 1 - bucket_offset then bucket_count - 1
    else e + bucket_offset
  end

let bucket_le i =
  if i < 0 || i >= bucket_count then invalid_arg "Obs: bucket index out of range";
  if i = bucket_count - 1 then infinity else Float.ldexp 1.0 (i - bucket_offset)

let observe h v =
  if Atomic.get Control.enabled then begin
    h.h_buckets.(bucket_index v) <- h.h_buckets.(bucket_index v) + 1;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v
  end

let hcount h = h.h_count
let hsum h = h.h_sum
let hmean h = if h.h_count = 0 then 0.0 else h.h_sum /. Float.of_int h.h_count

(* Cumulative count of observations <= bucket_le i, Prometheus-style. *)
let cumulative h i =
  let acc = ref 0 in
  for j = 0 to i do
    acc := !acc + h.h_buckets.(j)
  done;
  !acc
