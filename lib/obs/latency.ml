module Gk = Sh_gk.Gk

(* Latency trackers: named duration series whose distribution is kept in
   per-domain Greenwald-Khanna summaries — the repo's own streaming
   order-statistics structure — and merged only at snapshot time via
   [Gk.merged_quantile].  Recording is owner-only (a GK insert into this
   domain's slot state, no shared line), so trackers follow the same plane
   discipline as counters; the merged p50/p90/p99/p999 carry rank error at
   most sum_i (eps * n_i) over the per-domain streams.

   The optional "last k batches" window rides on a global epoch counter:
   [advance] bumps it once per ingest batch, and each slot keeps a small
   ring of per-epoch GK summaries, lazily rotated by the owner the next
   time it records.  Windowed quantiles merge only the summaries whose
   epoch stamp falls inside the last k epochs. *)

type slot_state = {
  mutable all : Gk.t;  (* all-time summary *)
  mutable win : Gk.t array;  (* per-epoch ring, length = window k *)
  mutable win_epoch : int array;  (* epoch stamp per ring cell; -1 unused *)
  mutable lcount : int;
  mutable lsum : float;
}

type t = {
  l_name : string;
  l_labels : Metric.labels;
  l_eps : float;
  l_rows : slot_state Atomic.t array;
  l_ov : slot_state;  (* slotless-domain fallback, under Plane.ov_mutex *)
}

let default_epsilon = 0.001
let epoch = Atomic.make 0
let window_k = Atomic.make 0

let no_state =
  { all = Gk.create ~epsilon:0.5; win = [||]; win_epoch = [||]; lcount = 0; lsum = 0.0 }

let make_state eps =
  let k = Atomic.get window_k in
  {
    all = Gk.create ~epsilon:eps;
    win = Array.init k (fun _ -> Gk.create ~epsilon:eps);
    win_epoch = Array.make k (-1);
    lcount = 0;
    lsum = 0.0;
  }

(* ------------------------------------------------------- tracker registry *)

let key name labels =
  let buf = Buffer.create (String.length name + 16) in
  Buffer.add_string buf name;
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf '\x00';
      Buffer.add_string buf k;
      Buffer.add_char buf '\x01';
      Buffer.add_string buf v)
    labels;
  Buffer.contents buf

let table : (string, t) Hashtbl.t = Hashtbl.create 16
let m = Mutex.create ()

let tracker ?(labels = []) ?(epsilon = default_epsilon) name =
  if epsilon <= 0.0 || epsilon >= 1.0 then invalid_arg "Obs.Latency: epsilon must be in (0, 1)";
  let labels = List.sort compare labels in
  let k = key name labels in
  Mutex.lock m;
  let t =
    match Hashtbl.find_opt table k with
    | Some t -> t
    | None ->
      let t =
        {
          l_name = name;
          l_labels = labels;
          l_eps = epsilon;
          l_rows = Metric.make_rows no_state;
          l_ov = make_state epsilon;
        }
      in
      Hashtbl.replace table k t;
      t
  in
  Mutex.unlock m;
  t

let name t = t.l_name
let labels t = t.l_labels
let epsilon t = t.l_eps

(* ------------------------------------------------------------- recording *)

(* Owner-only: adapt the window ring lazily when [set_window] changed the
   width since this slot last recorded, rotate the current epoch's cell,
   then insert. *)
let record_into t st v =
  Gk.insert st.all v;
  st.lcount <- st.lcount + 1;
  st.lsum <- st.lsum +. v;
  let k = Atomic.get window_k in
  if k > 0 then begin
    if Array.length st.win <> k then begin
      st.win <- Array.init k (fun _ -> Gk.create ~epsilon:t.l_eps);
      st.win_epoch <- Array.make k (-1)
    end;
    let e = Atomic.get epoch in
    let idx = e mod k in
    if st.win_epoch.(idx) <> e then begin
      st.win.(idx) <- Gk.create ~epsilon:t.l_eps;
      st.win_epoch.(idx) <- e
    end;
    Gk.insert st.win.(idx) v
  end

let record t v =
  if Atomic.get Control.latency_enabled && Float.is_finite v && v >= 0.0 then begin
    let s = Plane.slot () in
    if s >= 0 then begin
      let st = Atomic.get (Array.unsafe_get t.l_rows s) in
      let st =
        if st != no_state then st
        else begin
          let st = make_state t.l_eps in
          Atomic.set t.l_rows.(s) st;
          st
        end
      in
      record_into t st v
    end
    else begin
      Mutex.lock Plane.ov_mutex;
      record_into t t.l_ov v;
      Mutex.unlock Plane.ov_mutex;
      Atomic.incr Metric.plane_collisions_cell
    end
  end

let time t f =
  if not (Atomic.get Control.latency_enabled) then f ()
  else begin
    let t0 = Control.now () in
    match f () with
    | r ->
      record t (Control.now () -. t0);
      r
    | exception e ->
      record t (Control.now () -. t0);
      raise e
  end

let advance () = if Atomic.get Control.latency_enabled then Atomic.incr epoch

let set_window k =
  if k < 0 then invalid_arg "Obs.Latency: window must be >= 0";
  Atomic.set window_k k

let window () = Atomic.get window_k

(* -------------------------------------------------------------- queries *)

let states t =
  let acc = ref [ t.l_ov ] in
  for s = Plane.max_slots - 1 downto 0 do
    let st = Atomic.get t.l_rows.(s) in
    if st != no_state then acc := st :: !acc
  done;
  !acc

let count t = List.fold_left (fun acc st -> acc + st.lcount) 0 (states t)
let sum t = List.fold_left (fun acc st -> acc +. st.lsum) 0.0 (states t)

let summaries t =
  let k = Atomic.get window_k in
  if k = 0 then List.filter_map (fun st -> if Gk.count st.all > 0 then Some st.all else None) (states t)
  else begin
    let e_now = Atomic.get epoch in
    List.concat_map
      (fun st ->
        let acc = ref [] in
        for idx = 0 to Array.length st.win - 1 do
          if st.win_epoch.(idx) > e_now - k && Gk.count st.win.(idx) > 0 then
            acc := st.win.(idx) :: !acc
        done;
        !acc)
      (states t)
  end

let quantile t phi =
  match summaries t with [] -> None | gks -> Some (Gk.merged_quantile gks phi)

let percentiles = [ 0.5; 0.9; 0.99; 0.999 ]

let snapshot () =
  Mutex.lock m;
  let all = Hashtbl.fold (fun _ t acc -> t :: acc) table [] in
  Mutex.unlock m;
  List.sort
    (fun a b ->
      match compare a.l_name b.l_name with 0 -> compare a.l_labels b.l_labels | c -> c)
    all

let tracker_count () =
  Mutex.lock m;
  let n = Hashtbl.length table in
  Mutex.unlock m;
  n

let reset () =
  let reset_state t st =
    st.all <- Gk.create ~epsilon:t.l_eps;
    Array.iteri (fun i _ -> st.win.(i) <- Gk.create ~epsilon:t.l_eps) st.win;
    Array.fill st.win_epoch 0 (Array.length st.win_epoch) (-1);
    st.lcount <- 0;
    st.lsum <- 0.0
  in
  Mutex.lock m;
  Hashtbl.iter (fun _ t -> List.iter (reset_state t) (states t)) table;
  Mutex.unlock m;
  Atomic.set epoch 0

let clear () =
  Mutex.lock m;
  Hashtbl.reset table;
  Mutex.unlock m;
  Atomic.set epoch 0
