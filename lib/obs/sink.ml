(* Exposition of the registry and the span trace in three formats: an
   aligned human-readable dump, JSON lines (one object per series /
   event), and Prometheus text format.  All sinks render the same
   Registry.snapshot order, so diffs between dumps are meaningful. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else if Float.is_finite f then Printf.sprintf "%.17g" f
  else "null"

(* ------------------------------------------------------------- text *)

(* 0.5 -> "p50", 0.99 -> "p99", 0.999 -> "p999" *)
let phi_label phi =
  let s = Printf.sprintf "%g" (phi *. 100.0) in
  "p" ^ String.concat "" (String.split_on_char '.' s)

let labels_to_string = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) labels)
    ^ "}"

let text buf =
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let series = Registry.snapshot () in
  let counters = List.filter_map (function Registry.Counter c -> Some c | _ -> None) series in
  let gauges = List.filter_map (function Registry.Gauge g -> Some g | _ -> None) series in
  let hists = List.filter_map (function Registry.Histogram h -> Some h | _ -> None) series in
  if counters <> [] then begin
    line "counters:";
    List.iter
      (fun (c : Metric.counter) ->
        line "  %-48s %d" (c.Metric.c_name ^ labels_to_string c.Metric.c_labels) (Metric.value c))
      counters
  end;
  if gauges <> [] then begin
    line "gauges:";
    List.iter
      (fun (g : Metric.gauge) ->
        line "  %-48s %g" (g.Metric.g_name ^ labels_to_string g.Metric.g_labels) (Metric.gvalue g))
      gauges
  end;
  if hists <> [] then begin
    line "histograms:";
    List.iter
      (fun (h : Metric.histogram) ->
        line "  %-48s count=%d sum=%g mean=%g"
          (h.Metric.h_name ^ labels_to_string h.Metric.h_labels)
          (Metric.hcount h) (Metric.hsum h) (Metric.hmean h))
      hists
  end;
  (match Latency.snapshot () with
  | [] -> ()
  | trackers ->
    line "latency:";
    List.iter
      (fun tr ->
        let quantiles =
          if Latency.count tr = 0 then ""
          else
            String.concat ""
              (List.map
                 (fun phi ->
                   match Latency.quantile tr phi with
                   | Some v -> Printf.sprintf " %s=%g" (phi_label phi) v
                   | None -> "")
                 Latency.percentiles)
        in
        line "  %-48s count=%d sum=%g%s"
          (Latency.name tr ^ labels_to_string (Latency.labels tr))
          (Latency.count tr) (Latency.sum tr) quantiles)
      trackers);
  if Span.trace_length () > 0 || Span.dropped_events () > 0 then
    line "spans: %d traced, %d dropped" (Span.trace_length ()) (Span.dropped_events ())

(* ------------------------------------------------------- JSON lines *)

let json_labels labels =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)) labels)
  ^ "}"

let json_lines buf =
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  List.iter
    (function
      | Registry.Counter c ->
        line "{\"type\":\"counter\",\"name\":\"%s\",\"labels\":%s,\"value\":%d}"
          (json_escape c.Metric.c_name) (json_labels c.Metric.c_labels) (Metric.value c)
      | Registry.Gauge g ->
        line "{\"type\":\"gauge\",\"name\":\"%s\",\"labels\":%s,\"value\":%s}"
          (json_escape g.Metric.g_name) (json_labels g.Metric.g_labels) (json_float (Metric.gvalue g))
      | Registry.Histogram h ->
        (* only occupied buckets, as (le, non-cumulative count) pairs *)
        let buckets = ref [] in
        for i = Metric.bucket_count - 1 downto 0 do
          let n = Metric.bucket_value h i in
          if n > 0 then
            buckets :=
              Printf.sprintf "{\"le\":%s,\"count\":%d}"
                (let le = Metric.bucket_le i in
                 if Float.is_finite le then json_float le else "\"+Inf\"")
                n
              :: !buckets
        done;
        line "{\"type\":\"histogram\",\"name\":\"%s\",\"labels\":%s,\"count\":%d,\"sum\":%s,\"buckets\":[%s]}"
          (json_escape h.Metric.h_name) (json_labels h.Metric.h_labels) (Metric.hcount h)
          (json_float (Metric.hsum h)) (String.concat "," !buckets))
    (Registry.snapshot ());
  List.iter
    (fun tr ->
      let quantiles =
        if Latency.count tr = 0 then ""
        else
          String.concat ","
            (List.filter_map
               (fun phi ->
                 match Latency.quantile tr phi with
                 | Some v -> Some (Printf.sprintf "\"%g\":%s" phi (json_float v))
                 | None -> None)
               Latency.percentiles)
      in
      line "{\"type\":\"summary\",\"name\":\"%s\",\"labels\":%s,\"count\":%d,\"sum\":%s,\"quantiles\":{%s}}"
        (json_escape (Latency.name tr))
        (json_labels (Latency.labels tr))
        (Latency.count tr)
        (json_float (Latency.sum tr))
        quantiles)
    (Latency.snapshot ())

let trace_json_lines buf =
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  List.iter
    (fun (ev : Span.event) ->
      let deltas =
        String.concat ","
          (List.map
             (fun (name, labels, d) ->
               Printf.sprintf "{\"counter\":\"%s\",\"labels\":%s,\"delta\":%d}" (json_escape name)
                 (json_labels labels) d)
             ev.Span.deltas)
      in
      line
        "{\"type\":\"span\",\"seq\":%d,\"name\":\"%s\",\"depth\":%d,\"start_s\":%s,\"duration_s\":%s,\"deltas\":[%s]}"
        ev.Span.seq (json_escape ev.Span.name) ev.Span.depth (json_float ev.Span.start)
        (json_float ev.Span.duration) deltas)
    (Span.trace ())

(* ------------------------------------------------------- Prometheus *)

(* Registry names use dots as namespace separators; Prometheus only
   allows [a-zA-Z0-9_:]. *)
let prom_name name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let prom_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let prom_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" (prom_name k) (prom_escape v)) labels)
    ^ "}"

let prom_float f =
  if f = infinity then "+Inf"
  else if f = neg_infinity then "-Inf"
  else if Float.is_nan f then "NaN"
  else Printf.sprintf "%.17g" f

let ends_with ~suffix s =
  let ls = String.length s and lf = String.length suffix in
  ls >= lf && String.sub s (ls - lf) lf = suffix

let prometheus buf =
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  (* snapshot order groups series of a family together, so a TYPE header
     is emitted exactly once per family *)
  let last_type_line = ref "" in
  let type_line family kind =
    let l = Printf.sprintf "# TYPE %s %s" family kind in
    if l <> !last_type_line then begin
      last_type_line := l;
      line "%s" l
    end
  in
  List.iter
    (function
      | Registry.Counter c ->
        let family =
          let n = prom_name c.Metric.c_name in
          if ends_with ~suffix:"_total" n then n else n ^ "_total"
        in
        type_line family "counter";
        line "%s%s %d" family (prom_labels c.Metric.c_labels) (Metric.value c)
      | Registry.Gauge g ->
        let family = prom_name g.Metric.g_name in
        type_line family "gauge";
        line "%s%s %s" family (prom_labels g.Metric.g_labels) (prom_float (Metric.gvalue g))
      | Registry.Histogram h ->
        let family = prom_name h.Metric.h_name in
        type_line family "histogram";
        (* cumulative buckets; skip empty ranges but always keep +Inf *)
        let cum = ref 0 in
        for i = 0 to Metric.bucket_count - 1 do
          let n = Metric.bucket_value h i in
          cum := !cum + n;
          if n > 0 && i < Metric.bucket_count - 1 then
            line "%s_bucket%s %d" family
              (prom_labels (h.Metric.h_labels @ [ ("le", prom_float (Metric.bucket_le i)) ]))
              !cum
        done;
        line "%s_bucket%s %d" family
          (prom_labels (h.Metric.h_labels @ [ ("le", "+Inf") ]))
          (Metric.hcount h);
        line "%s_sum%s %s" family (prom_labels h.Metric.h_labels) (prom_float (Metric.hsum h));
        line "%s_count%s %d" family (prom_labels h.Metric.h_labels) (Metric.hcount h))
    (Registry.snapshot ());
  List.iter
    (fun tr ->
      let family = prom_name (Latency.name tr) in
      let labels = Latency.labels tr in
      type_line family "summary";
      if Latency.count tr > 0 then
        List.iter
          (fun phi ->
            match Latency.quantile tr phi with
            | Some v ->
              line "%s%s %s" family
                (prom_labels (labels @ [ ("quantile", Printf.sprintf "%g" phi) ]))
                (prom_float v)
            | None -> ())
          Latency.percentiles;
      line "%s_sum%s %s" family (prom_labels labels) (prom_float (Latency.sum tr));
      line "%s_count%s %d" family (prom_labels labels) (Latency.count tr))
    (Latency.snapshot ())

(* ---------------------------------------------- Chrome trace (catapult) *)

(* The span rings rendered as a Trace Event Format JSON object that
   chrome://tracing / Perfetto load directly: one complete ("X") event per
   span, one track (tid) per recording domain's plane slot, timestamps and
   durations in microseconds relative to the earliest span.  A
   thread_name metadata event labels each occupied track. *)
let chrome_trace buf =
  let evs = Span.trace () in
  let t0 = List.fold_left (fun acc (ev : Span.event) -> Float.min acc ev.Span.start) infinity evs in
  let t0 = if Float.is_finite t0 then t0 else 0.0 in
  let us s = json_float (s *. 1e6) in
  let tracks = List.sort_uniq compare (List.map (fun (ev : Span.event) -> ev.Span.track) evs) in
  let track_name t = if t >= Plane.max_slots then "overflow" else Printf.sprintf "domain-%d" t in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let item fmt =
    Printf.ksprintf
      (fun s ->
        if !first then first := false else Buffer.add_char buf ',';
        Buffer.add_string buf s)
      fmt
  in
  List.iter
    (fun t ->
      item "{\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}" t
        (track_name t))
    tracks;
  List.iter
    (fun (ev : Span.event) ->
      let deltas =
        String.concat ","
          (List.map
             (fun (name, labels, d) ->
               Printf.sprintf "{\"counter\":\"%s\",\"labels\":%s,\"delta\":%d}" (json_escape name)
                 (json_labels labels) d)
             ev.Span.deltas)
      in
      item
        "{\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"name\":\"%s\",\"ts\":%s,\"dur\":%s,\"args\":{\"seq\":%d,\"depth\":%d,\"deltas\":[%s]}}"
        ev.Span.track (json_escape ev.Span.name)
        (us (ev.Span.start -. t0))
        (us ev.Span.duration) ev.Span.seq ev.Span.depth deltas)
    evs;
  Printf.bprintf buf "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_spans\":\"%d\"}}"
    (Span.dropped_events ())
