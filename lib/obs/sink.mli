(** Exposition sinks: render the current registry contents, the latency
    trackers and the span trace into a caller-supplied [Buffer.t].

    All sinks render series in {!Registry.snapshot} order followed by
    {!Latency.snapshot} order, so two dumps of the same state are
    byte-identical and diffs across runs line up.

    Zero-sample latency trackers (nothing recorded, or every sample aged
    out of the batch window) render with quantiles {e absent} in every
    format — no [p..=] fields in {!text}, an empty [quantiles] object in
    {!json_lines}, no [{quantile="..."}] samples in {!prometheus} — while
    [count] and [sum] are always emitted.  Never [0], [NaN] or an
    exception: {!Latency.quantile}'s [None] is the only empty signal the
    sinks consume. *)

val text : Buffer.t -> unit
(** Aligned human-readable dump: counters, gauges, histogram summaries,
    latency quantiles, span-trace totals. *)

val json_lines : Buffer.t -> unit
(** One JSON object per line per series.  Counters/gauges carry [value];
    histograms carry [count], [sum] and the occupied (le, count) buckets,
    with the overflow bucket's [le] rendered as the string ["+Inf"];
    latency trackers carry [type:"summary"] with a [quantiles] object
    keyed by phi. *)

val trace_json_lines : Buffer.t -> unit
(** One JSON object per completed span, completion order: name, depth,
    sequence number, start/duration (clock seconds), counter deltas. *)

val chrome_trace : Buffer.t -> unit
(** The span rings as one Chrome trace-event (catapult) JSON object —
    loadable by chrome://tracing and Perfetto.  One complete ("X") event
    per span, one track per recording domain (tid = plane slot, labelled
    by a thread_name metadata event), [ts]/[dur] in microseconds relative
    to the earliest span; counter deltas, seq and depth ride in [args].
    The drop count appears under [otherData.dropped_spans]. *)

val prometheus : Buffer.t -> unit
(** Prometheus text exposition format.  Dots in registry names become
    underscores, counter families get a [_total] suffix, histograms emit
    cumulative [_bucket{le=...}] series plus [_sum]/[_count], and latency
    trackers emit [summary] families: one [{quantile="..."}] sample per
    exposed percentile plus [_sum]/[_count]. *)

val prom_name : string -> string
(** The name sanitisation used by {!prometheus} (dots to underscores). *)

val phi_label : float -> string
(** Conventional percentile label: [0.5 -> "p50"], [0.99 -> "p99"],
    [0.999 -> "p999"]. *)
