(** Exposition sinks: render the current registry contents (and the span
    trace) into a caller-supplied [Buffer.t].

    All sinks render series in {!Registry.snapshot} order, so two dumps of
    the same state are byte-identical and diffs across runs line up. *)

val text : Buffer.t -> unit
(** Aligned human-readable dump: counters, gauges, histogram summaries,
    span-trace totals. *)

val json_lines : Buffer.t -> unit
(** One JSON object per line per series.  Counters/gauges carry [value];
    histograms carry [count], [sum] and the occupied (le, count) buckets,
    with the overflow bucket's [le] rendered as the string ["+Inf"]. *)

val trace_json_lines : Buffer.t -> unit
(** One JSON object per completed span, completion order: name, depth,
    sequence number, start/duration (clock seconds), counter deltas. *)

val prometheus : Buffer.t -> unit
(** Prometheus text exposition format.  Dots in registry names become
    underscores, counter families get a [_total] suffix, histograms emit
    cumulative [_bucket{le=...}] series plus [_sum]/[_count]. *)

val prom_name : string -> string
(** The name sanitisation used by {!prometheus} (dots to underscores). *)
