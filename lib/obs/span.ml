type event = {
  name : string;
  depth : int;
  seq : int;
  start : float;
  duration : float;
  deltas : (string * Metric.labels * int) list;
}

(* Completed spans, completion order, bounded: the oldest events are
   dropped once the buffer holds [capacity] of them.  The buffer, the
   capacity, the drop count and the sequence counter are shared across
   domains and protected by [m]; nesting depth is domain-local (a span
   opened on one pool domain is not a child of an unrelated span on
   another). *)
let events : event Queue.t = Queue.create ()
let capacity = ref 4096
let dropped = ref 0
let seq_ref = ref 0
let m = Mutex.create ()

let locked f =
  Mutex.lock m;
  match f () with
  | v ->
    Mutex.unlock m;
    v
  | exception e ->
    Mutex.unlock m;
    raise e

let depth_key = Domain.DLS.new_key (fun () -> ref 0)

let set_capacity n =
  if n < 1 then invalid_arg "Obs: trace capacity must be >= 1";
  locked (fun () ->
      capacity := n;
      while Queue.length events > n do
        ignore (Queue.pop events);
        incr dropped
      done)

(* Call only with [m] held. *)
let record ev =
  if Queue.length events >= !capacity then begin
    ignore (Queue.pop events);
    incr dropped
  end;
  Queue.push ev events

(* The tracer's own bookkeeping series (span counters, duration
   histograms) are excluded from per-span counter deltas so a nested span
   does not show up as work attributed to its parent. *)
let bookkeeping name =
  String.length name >= 4 && String.sub name 0 4 = "obs."

let counter_values () =
  let acc = ref [] in
  Registry.iter (function
    | Registry.Counter c when not (bookkeeping c.Metric.c_name) ->
      acc := (c, Atomic.get c.Metric.c_value) :: !acc
    | _ -> ());
  !acc

let with_span name f =
  if not (Atomic.get Control.enabled) then f ()
  else begin
    let start = Control.now () in
    let before = counter_values () in
    let depth = Domain.DLS.get depth_key in
    let d = !depth in
    incr depth;
    let finish () =
      decr depth;
      let duration = Control.now () -. start in
      Metric.incr (Registry.counter ~labels:[ ("span", name) ] "obs.spans");
      let h = Registry.histogram (name ^ "_duration") in
      let deltas =
        List.filter_map
          (fun ((c : Metric.counter), v0) ->
            let v = Atomic.get c.Metric.c_value in
            if v <> v0 then Some (c.Metric.c_name, c.Metric.c_labels, v - v0)
            else None)
          before
      in
      let deltas = List.sort compare deltas in
      locked (fun () ->
          (* histogram observes are serialised here — the one non-atomic
             metric write (see Metric.observe) *)
          Metric.observe h duration;
          incr seq_ref;
          record { name; depth = d; seq = !seq_ref; start; duration; deltas })
    in
    match f () with
    | r ->
      finish ();
      r
    | exception e ->
      finish ();
      raise e
  end

let trace () = locked (fun () -> List.of_seq (Queue.to_seq events))
let trace_length () = locked (fun () -> Queue.length events)
let dropped_events () = locked (fun () -> !dropped)

let clear () =
  locked (fun () ->
      Queue.clear events;
      dropped := 0;
      seq_ref := 0)
