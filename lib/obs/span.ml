type event = {
  name : string;
  depth : int;
  seq : int;
  track : int;
  start : float;
  duration : float;
  deltas : (string * Metric.labels * int) list;
}

(* Completed spans land in per-domain rings (one per Plane slot, plus a
   mutex-guarded overflow ring for slotless domains): the recording path
   is plain stores into the owner's own ring — no lock, no shared line —
   so parallel pool domains never serialise on the tracer.  Each ring
   keeps the newest [capacity] events and overwrites the oldest on wrap;
   overwrites are counted per ring and bumped onto the [obs.dropped_spans]
   counter so a wrapped buffer is never a silent loss.

   Completion order is still globally meaningful: [seq] comes from one
   atomic fetch-and-add per completed span (spans are coarse — a batch, a
   rebuild, a query — so this is nowhere near the per-point hot path), and
   [trace] merges the rings back into ascending [seq].

   [trace]/[set_capacity]/[clear] aggregate or mutate every ring and are
   exact only when recording domains are quiescent (joined/awaited) — the
   same contract as the metric snapshot readers. *)

type ring = {
  mutable evs : event option array;
  mutable pos : int;  (* events pushed since creation or last trim *)
  mutable rdropped : int;  (* overwritten or trimmed away *)
}

let no_ring = { evs = [||]; pos = 0; rdropped = 0 }
let rings : ring Atomic.t array = Metric.make_rows no_ring
let capacity = ref 4096
let seq_cell = Atomic.make 0

let make_ring () = { evs = Array.make !capacity None; pos = 0; rdropped = 0 }
let ov_ring = { evs = [||]; pos = 0; rdropped = 0 }

let depth_key = Domain.DLS.new_key (fun () -> ref 0)

let dropped_counter () = Registry.counter "obs.dropped_spans"

(* Push into [r], returning the number of events overwritten (0 or 1). *)
let ring_push r ev =
  if Array.length r.evs = 0 then r.evs <- Array.make !capacity None;
  let cap = Array.length r.evs in
  let idx = r.pos mod cap in
  let dropped = if r.pos >= cap then 1 else 0 in
  r.rdropped <- r.rdropped + dropped;
  r.evs.(idx) <- Some ev;
  r.pos <- r.pos + 1;
  dropped

let record ev =
  let s = Plane.slot () in
  let dropped =
    if s >= 0 then begin
      let r = Atomic.get rings.(s) in
      let r =
        if r != no_ring then r
        else begin
          let r = make_ring () in
          Atomic.set rings.(s) r;
          r
        end
      in
      ring_push r ev
    end
    else begin
      Mutex.lock Plane.ov_mutex;
      let d = ring_push ov_ring ev in
      Mutex.unlock Plane.ov_mutex;
      d
    end
  in
  if dropped > 0 then Metric.add (dropped_counter ()) dropped

(* The tracer's own bookkeeping series (span counters, duration
   histograms, drop/collision witnesses) are excluded from per-span
   counter deltas so a nested span does not show up as work attributed to
   its parent. *)
let bookkeeping name =
  String.length name >= 4 && String.sub name 0 4 = "obs."

let counter_values () =
  let acc = ref [] in
  Registry.iter (function
    | Registry.Counter c when not (bookkeeping c.Metric.c_name) ->
      acc := (c, Metric.value c) :: !acc
    | _ -> ());
  !acc

let with_span name f =
  if not (Atomic.get Control.enabled) then f ()
  else begin
    let start = Control.now () in
    let before = counter_values () in
    let depth = Domain.DLS.get depth_key in
    let d = !depth in
    incr depth;
    let finish () =
      decr depth;
      let duration = Control.now () -. start in
      Metric.incr (Registry.counter ~labels:[ ("span", name) ] "obs.spans");
      Metric.observe (Registry.histogram (name ^ "_duration")) duration;
      let deltas =
        List.filter_map
          (fun ((c : Metric.counter), v0) ->
            let v = Metric.value c in
            if v <> v0 then Some (c.Metric.c_name, c.Metric.c_labels, v - v0) else None)
          before
      in
      let deltas = List.sort compare deltas in
      let seq = Atomic.fetch_and_add seq_cell 1 + 1 in
      let track =
        let s = Plane.slot () in
        if s >= 0 then s else Plane.max_slots
      in
      record { name; depth = d; seq; track; start; duration; deltas }
    in
    match f () with
    | r ->
      finish ();
      r
    | exception e ->
      finish ();
      raise e
  end

let ring_events r =
  let cap = Array.length r.evs in
  if cap = 0 || r.pos = 0 then []
  else begin
    let first = if r.pos > cap then r.pos - cap else 0 in
    let acc = ref [] in
    for k = r.pos - 1 downto first do
      match r.evs.(k mod cap) with Some ev -> acc := ev :: !acc | None -> ()
    done;
    !acc
  end

let all_rings () =
  let acc = ref [ ov_ring ] in
  for s = Plane.max_slots - 1 downto 0 do
    let r = Atomic.get rings.(s) in
    if r != no_ring then acc := r :: !acc
  done;
  !acc

let trace () =
  let evs = List.concat_map ring_events (all_rings ()) in
  List.sort (fun a b -> compare a.seq b.seq) evs

let trace_length () =
  List.fold_left (fun acc r -> acc + min r.pos (Array.length r.evs)) 0 (all_rings ())

let dropped_events () = List.fold_left (fun acc r -> acc + r.rdropped) 0 (all_rings ())

let set_capacity n =
  if n < 1 then invalid_arg "Obs: trace capacity must be >= 1";
  capacity := n;
  List.iter
    (fun r ->
      let evs = ring_events r in
      let len = List.length evs in
      let keep = if len > n then List.filteri (fun i _ -> i >= len - n) evs else evs in
      let trimmed = len - List.length keep in
      let fresh = Array.make n None in
      List.iteri (fun i ev -> fresh.(i) <- Some ev) keep;
      r.evs <- fresh;
      r.pos <- List.length keep;
      r.rdropped <- r.rdropped + trimmed)
    (all_rings ())

let clear () =
  List.iter
    (fun r ->
      Array.fill r.evs 0 (Array.length r.evs) None;
      r.pos <- 0;
      r.rdropped <- 0)
    (all_rings ());
  Atomic.set seq_cell 0
