type event = {
  name : string;
  depth : int;
  seq : int;
  start : float;
  duration : float;
  deltas : (string * Metric.labels * int) list;
}

(* Completed spans, completion order, bounded: the oldest events are
   dropped once the buffer holds [capacity] of them. *)
let events : event Queue.t = Queue.create ()
let capacity = ref 4096
let dropped = ref 0
let depth_ref = ref 0
let seq_ref = ref 0

let set_capacity n =
  if n < 1 then invalid_arg "Obs: trace capacity must be >= 1";
  capacity := n;
  while Queue.length events > n do
    ignore (Queue.pop events);
    incr dropped
  done

let record ev =
  if Queue.length events >= !capacity then begin
    ignore (Queue.pop events);
    incr dropped
  end;
  Queue.push ev events

(* The tracer's own bookkeeping series (span counters, duration
   histograms) are excluded from per-span counter deltas so a nested span
   does not show up as work attributed to its parent. *)
let bookkeeping name =
  String.length name >= 4 && String.sub name 0 4 = "obs."

let counter_values () =
  let acc = ref [] in
  Registry.iter (function
    | Registry.Counter c when not (bookkeeping c.Metric.c_name) ->
      acc := (c, c.Metric.c_value) :: !acc
    | _ -> ());
  !acc

let with_span name f =
  if not !Control.enabled then f ()
  else begin
    let start = Control.now () in
    let before = counter_values () in
    let d = !depth_ref in
    incr depth_ref;
    let finish () =
      decr depth_ref;
      let duration = Control.now () -. start in
      Metric.incr (Registry.counter ~labels:[ ("span", name) ] "obs.spans");
      Metric.observe (Registry.histogram (name ^ "_duration")) duration;
      let deltas =
        List.filter_map
          (fun ((c : Metric.counter), v0) ->
            if c.Metric.c_value <> v0 then Some (c.Metric.c_name, c.Metric.c_labels, c.Metric.c_value - v0)
            else None)
          before
      in
      let deltas = List.sort compare deltas in
      incr seq_ref;
      record { name; depth = d; seq = !seq_ref; start; duration; deltas }
    in
    match f () with
    | r ->
      finish ();
      r
    | exception e ->
      finish ();
      raise e
  end

let trace () = List.of_seq (Queue.to_seq events)
let trace_length () = Queue.length events
let dropped_events () = !dropped

let clear () =
  Queue.clear events;
  dropped := 0;
  seq_ref := 0
