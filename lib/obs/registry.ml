type metric =
  | Counter of Metric.counter
  | Gauge of Metric.gauge
  | Histogram of Metric.histogram

(* Key = name + canonically sorted labels, flattened with unprintable
   separators so distinct label sets cannot collide. *)
let key name labels =
  let buf = Buffer.create (String.length name + 16) in
  Buffer.add_string buf name;
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf '\x00';
      Buffer.add_string buf k;
      Buffer.add_char buf '\x01';
      Buffer.add_string buf v)
    labels;
  Buffer.contents buf

(* All table access goes through [lock]: get-or-create races from parallel
   domains (two shards registering the same series name) must agree on one
   handle.  Registration happens at structure-creation time, never on the
   recording hot paths, so the mutex is uncontended in steady state. *)
let table : (string, metric) Hashtbl.t = Hashtbl.create 64
let m = Mutex.create ()

let locked f =
  Mutex.lock m;
  match f () with
  | v ->
    Mutex.unlock m;
    v
  | exception e ->
    Mutex.unlock m;
    raise e

let validate_name name =
  if String.length name = 0 then invalid_arg "Obs: empty metric name";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' -> ()
      | _ -> invalid_arg (Printf.sprintf "Obs: bad metric name %S (use [a-zA-Z0-9_.])" name))
    name;
  match name.[0] with
  | '0' .. '9' | '.' -> invalid_arg (Printf.sprintf "Obs: metric name %S must start with a letter" name)
  | _ -> ()

let canonical labels = List.sort compare labels

let get_or_register ~name ~labels ~found ~make =
  validate_name name;
  let labels = canonical labels in
  let k = key name labels in
  locked (fun () ->
      match Hashtbl.find_opt table k with
      | Some m -> found m
      | None ->
        let m, v = make labels in
        Hashtbl.replace table k m;
        v)

let type_clash name =
  invalid_arg (Printf.sprintf "Obs: metric %S already registered with a different type" name)

let counter ?(labels = []) name =
  get_or_register ~name ~labels
    ~found:(function Counter c -> c | _ -> type_clash name)
    ~make:(fun labels ->
      (* The plane-collision witness counter reads the module-level cell
         the metric overflow paths bump directly, so collisions that
         happened before (or without) registration are never lost. *)
      let ov =
        if name = "obs.plane_collisions" then Metric.plane_collisions_cell else Atomic.make 0
      in
      let c =
        {
          Metric.c_name = name;
          c_labels = labels;
          c_rows = Metric.make_rows Metric.no_irow;
          c_ov = ov;
        }
      in
      (Counter c, c))

let gauge ?(labels = []) name =
  get_or_register ~name ~labels
    ~found:(function Gauge g -> g | _ -> type_clash name)
    ~make:(fun labels ->
      let g =
        {
          Metric.g_name = name;
          g_labels = labels;
          g_rows = Metric.make_rows Metric.no_frow;
          g_base = Atomic.make 0.0;
        }
      in
      (Gauge g, g))

let histogram ?(labels = []) name =
  get_or_register ~name ~labels
    ~found:(function Histogram h -> h | _ -> type_clash name)
    ~make:(fun labels ->
      let ov = { Metric.hb = Array.make Metric.bucket_count 0; hn = 0; hs = 0.0 } in
      let h =
        {
          Metric.h_name = name;
          h_labels = labels;
          h_rows = Metric.make_rows Metric.no_hrow;
          h_ov = ov;
        }
      in
      (Histogram h, h))

let find ?(labels = []) name =
  let k = key name (canonical labels) in
  locked (fun () -> Hashtbl.find_opt table k)

(* Iteration holds the lock: [f] must not register or look up metrics (the
   mutex is not reentrant).  Every in-tree caller only reads values. *)
let iter f = locked (fun () -> Hashtbl.iter (fun _ m -> f m) table)

let metric_name = function
  | Counter c -> c.Metric.c_name
  | Gauge g -> g.Metric.g_name
  | Histogram h -> h.Metric.h_name

let metric_labels = function
  | Counter c -> c.Metric.c_labels
  | Gauge g -> g.Metric.g_labels
  | Histogram h -> h.Metric.h_labels

let snapshot () =
  let all = locked (fun () -> Hashtbl.fold (fun _ m acc -> m :: acc) table []) in
  List.sort
    (fun a b ->
      match compare (metric_name a) (metric_name b) with
      | 0 -> compare (metric_labels a) (metric_labels b)
      | c -> c)
    all

let series_count () = locked (fun () -> Hashtbl.length table)

let reset () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ -> function
          | Counter c -> Metric.reset_counter c
          | Gauge g -> Metric.reset_gauge g
          | Histogram h -> Metric.reset_histogram h)
        table)

let clear () = locked (fun () -> Hashtbl.reset table)
