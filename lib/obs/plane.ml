let max_slots = 16

(* Free slots, guarded by [m].  Claimed in ascending order so the main
   domain gets slot 0 and single-domain runs touch exactly one row. *)
let free : int list ref = ref (List.init max_slots Fun.id)
let m = Mutex.create ()
let ov_mutex = Mutex.create ()

let claim () =
  Mutex.lock m;
  let s =
    match !free with
    | [] -> -1
    | s :: rest ->
      free := rest;
      s
  in
  Mutex.unlock m;
  s

let release s =
  if s >= 0 then begin
    Mutex.lock m;
    free := s :: !free;
    Mutex.unlock m
  end

(* The DLS initialiser runs once per domain on its first [slot ()].  The
   release callback is registered here, i.e. before any at_exit callback
   the domain's task registers later — at_exit runs LIFO, so those later
   callbacks (which may still record metrics) fire before the slot is
   returned to the free list. *)
let slot_key =
  Domain.DLS.new_key (fun () ->
      let s = claim () in
      if s >= 0 then Domain.at_exit (fun () -> release s);
      s)

let slot () = Domain.DLS.get slot_key

let slots_in_use () =
  Mutex.lock m;
  let n = max_slots - List.length !free in
  Mutex.unlock m;
  n
