(* Global on/off switch and injectable clock shared by the span tracer.
   Kept in its own module so both the recording side (Span) and the facade
   (Obs) can reach it without a dependency cycle.

   [enabled] is an [Atomic.t] so parallel shard domains (lib/par) read and
   toggle it without a data race; the disabled fast path stays a single
   atomic load, which on every major platform compiles to the same plain
   load the old [bool ref] cost. *)

let enabled = Atomic.make false
let set_enabled b = Atomic.set enabled b
let is_enabled () = Atomic.get enabled

(* Latency quantile tracking has its own switch: a GK insert per timed
   section is far cheaper than span tracing but not free, and `shist
   serve` wants latency percentiles without paying for full span
   capture. *)
let latency_enabled = Atomic.make false
let set_latency_enabled b = Atomic.set latency_enabled b
let is_latency_enabled () = Atomic.get latency_enabled

(* The default clock is the portable [Sys.time] (CPU seconds); callers that
   link unix inject [Unix.gettimeofday], tests inject a fake.  Set at
   startup, before domains are spawned. *)
let clock : (unit -> float) ref = ref Sys.time
let set_clock f = clock := f
let now () = !clock ()
