(* Global on/off switch and injectable clock shared by the span tracer.
   Kept in its own module so both the recording side (Span) and the facade
   (Obs) can reach it without a dependency cycle. *)

let enabled = ref false
let set_enabled b = enabled := b
let is_enabled () = !enabled

(* The default clock is the portable [Sys.time] (CPU seconds); callers that
   link unix inject [Unix.gettimeofday], tests inject a fake. *)
let clock : (unit -> float) ref = ref Sys.time
let set_clock f = clock := f
let now () = !clock ()
