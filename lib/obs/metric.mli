(** Metric primitives: named counters, gauges, and log-scale histograms,
    backed by per-domain {!Plane} rows.

    Values are created through {!Registry} (get-or-create by name and
    label set).  Each handle holds one padded row per plane slot; a
    recording operation writes only the calling domain's own row with a
    plain store, so the hot paths perform {e zero shared-cacheline
    writes} — no atomic RMW, no false sharing between domains — and the
    aggregating readers ([value], [gvalue], [hcount], ...) sum the rows
    at snapshot time.  Totals are exact once writers are quiescent
    (domain joins / pool awaits establish the ordering); a snapshot taken
    mid-flight is memory-safe and at worst slightly stale.

    Domains beyond {!Plane.max_slots} fall back to shared overflow cells
    (atomic for counters/gauges, mutex-guarded for histograms); every such
    miss bumps the [obs.plane_collisions] witness counter, which stays
    flat whenever the contention-free fast path is actually in use.

    Counters and gauges ignore {!Control.enabled}: they double as the
    algorithms' work-accounting state, which must keep counting when
    telemetry collection is off.  Histogram {!observe} honours the
    switch. *)

type labels = (string * string) list
(** Label pairs, canonically sorted by {!Registry} on registration. *)

type counter = {
  c_name : string;
  c_labels : labels;
  c_rows : int array Atomic.t array;
  c_ov : int Atomic.t;
}

type gauge = {
  g_name : string;
  g_labels : labels;
  g_rows : float array Atomic.t array;
  g_base : float Atomic.t;
}

type hrow = { hb : int array; mutable hn : int; mutable hs : float }

type histogram = {
  h_name : string;
  h_labels : labels;
  h_rows : hrow Atomic.t array;
  h_ov : hrow;
}

val row_pad : int
(** Words per plane row (8 = one 64-byte cacheline of payload). *)

val no_irow : int array
val no_frow : float array

val no_hrow : hrow
(** Absent-row sentinels, compared physically: a plane row equal to one of
    these has not been claimed by its slot's owner yet. *)

val make_rows : 'a -> 'a Atomic.t array
(** A fresh plane of {!Plane.max_slots} unpublished rows holding the given
    absent-sentinel — used by {!Registry} and the span/latency planes. *)

val plane_collisions_cell : int Atomic.t
(** The cell behind the [obs.plane_collisions] counter ({!Registry} wires
    it in as that counter's overflow cell).  Exposed so the witness can be
    read even before the counter is registered. *)

(** {2 Counters} — monotone non-negative int, per-domain plane *)

val incr : counter -> unit
val add : counter -> int -> unit
(** Raises [Invalid_argument] on a negative increment. *)

val value : counter -> int
(** Sum over all plane rows plus the overflow cell. *)

(** {2 Gauges} — arbitrary float, per-domain plane *)

val set : gauge -> float -> unit
(** Rebase so {!gvalue} reads exactly the given value.  Not atomic against
    concurrent {!gadd}s; in-tree setters run at structure creation or on
    rare state changes, never on recording hot paths. *)

val gadd : gauge -> float -> unit
val gincr : gauge -> unit
val gvalue : gauge -> float

(** {2 Histograms} — base-2 log-scale buckets, O(1) record *)

val bucket_count : int
(** Number of buckets including the final +infinity overflow bucket. *)

val bucket_le : int -> float
(** Inclusive upper bound of bucket [i]: [2^(i - 40)] for
    [i < bucket_count - 1], [infinity] for the last.  Bucket 0 also absorbs
    everything below its bound (including zero and negatives). *)

val bucket_index : float -> int
(** The bucket whose [(le (i-1), le i]] range contains the value; exact
    powers of two land on their inclusive upper bound. *)

val observe : histogram -> float -> unit
(** Record one observation — O(1), on the caller's own plane row.  No-op
    while {!Control.enabled} is false. *)

val hcount : histogram -> int
val hsum : histogram -> float
val hmean : histogram -> float

val bucket_value : histogram -> int -> int
(** Observations in bucket [i], summed across all plane rows. *)

val cumulative : histogram -> int -> int
(** Observations in buckets [0 .. i], i.e. the Prometheus cumulative count
    for [le = bucket_le i]. *)

(** {2 Reset} — used by {!Registry.reset}; quiesce writers for exactness *)

val reset_counter : counter -> unit
val reset_gauge : gauge -> unit
val reset_histogram : histogram -> unit
