(** Metric primitives: named counters, gauges, and log-scale histograms.

    Values are created through {!Registry} (get-or-create by name and
    label set); handles are plain mutable records so the record operations
    compile to one or two machine-word stores — cheap enough to leave on
    unconditionally in the streaming hot paths.

    Counters and gauges ignore {!Control.enabled}: they double as the
    algorithms' work-accounting state, which must keep counting when
    telemetry collection is off.  Histogram {!observe} honours the switch
    (it is only ever fed derived measurements such as span durations). *)

type labels = (string * string) list
(** Label pairs, canonically sorted by {!Registry} on registration. *)

type counter = { c_name : string; c_labels : labels; mutable c_value : int }
type gauge = { g_name : string; g_labels : labels; mutable g_value : float }

type histogram = {
  h_name : string;
  h_labels : labels;
  h_buckets : int array;
  mutable h_count : int;
  mutable h_sum : float;
}

(** {2 Counters} — monotone non-negative int *)

val incr : counter -> unit
val add : counter -> int -> unit
(** Raises [Invalid_argument] on a negative increment. *)

val value : counter -> int

(** {2 Gauges} — arbitrary float *)

val set : gauge -> float -> unit
val gadd : gauge -> float -> unit
val gincr : gauge -> unit
val gvalue : gauge -> float

(** {2 Histograms} — base-2 log-scale buckets, O(1) record *)

val bucket_count : int
(** Number of buckets including the final +infinity overflow bucket. *)

val bucket_le : int -> float
(** Inclusive upper bound of bucket [i]: [2^(i - 40)] for
    [i < bucket_count - 1], [infinity] for the last.  Bucket 0 also absorbs
    everything below its bound (including zero and negatives). *)

val bucket_index : float -> int
(** The bucket whose [(le (i-1), le i]] range contains the value; exact
    powers of two land on their inclusive upper bound. *)

val observe : histogram -> float -> unit
(** Record one observation — O(1).  No-op while {!Control.enabled} is
    false. *)

val hcount : histogram -> int
val hsum : histogram -> float
val hmean : histogram -> float
val cumulative : histogram -> int -> int
(** Observations in buckets [0 .. i], i.e. the Prometheus cumulative count
    for [le = bucket_le i]. *)
