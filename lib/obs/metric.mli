(** Metric primitives: named counters, gauges, and log-scale histograms.

    Values are created through {!Registry} (get-or-create by name and
    label set); handles are records whose value cells are [Atomic.t], so
    counters and gauges are safe to bump from any number of domains
    without losing increments (lib/par runs instrumented structures on a
    domain pool).  On a single domain the operations are one
    read-modify-write instruction — still cheap enough to leave on
    unconditionally in the streaming hot paths.

    Counters and gauges ignore {!Control.enabled}: they double as the
    algorithms' work-accounting state, which must keep counting when
    telemetry collection is off.  Histogram {!observe} honours the switch
    (it is only ever fed derived measurements such as span durations) and
    is the one primitive that is not lock-free safe: all in-tree observes
    go through the span tracer, which serialises them. *)

type labels = (string * string) list
(** Label pairs, canonically sorted by {!Registry} on registration. *)

type counter = { c_name : string; c_labels : labels; c_value : int Atomic.t }
type gauge = { g_name : string; g_labels : labels; g_value : float Atomic.t }

type histogram = {
  h_name : string;
  h_labels : labels;
  h_buckets : int array;
  mutable h_count : int;
  mutable h_sum : float;
}

(** {2 Counters} — monotone non-negative int, atomic *)

val incr : counter -> unit
val add : counter -> int -> unit
(** Raises [Invalid_argument] on a negative increment. *)

val value : counter -> int

(** {2 Gauges} — arbitrary float, atomic *)

val set : gauge -> float -> unit
val gadd : gauge -> float -> unit
(** Atomic read-modify-write (CAS retry loop), so concurrent adds from
    several domains are all reflected. *)

val gincr : gauge -> unit
val gvalue : gauge -> float

(** {2 Histograms} — base-2 log-scale buckets, O(1) record *)

val bucket_count : int
(** Number of buckets including the final +infinity overflow bucket. *)

val bucket_le : int -> float
(** Inclusive upper bound of bucket [i]: [2^(i - 40)] for
    [i < bucket_count - 1], [infinity] for the last.  Bucket 0 also absorbs
    everything below its bound (including zero and negatives). *)

val bucket_index : float -> int
(** The bucket whose [(le (i-1), le i]] range contains the value; exact
    powers of two land on their inclusive upper bound. *)

val observe : histogram -> float -> unit
(** Record one observation — O(1).  No-op while {!Control.enabled} is
    false.  Not atomic: serialise concurrent observers externally (the
    span tracer already does). *)

val hcount : histogram -> int
val hsum : histogram -> float
val hmean : histogram -> float
val cumulative : histogram -> int -> int
(** Observations in buckets [0 .. i], i.e. the Prometheus cumulative count
    for [le = bucket_le i]. *)
