(** Telemetry facade: metric registry, span tracing, exposition.

    Instrumented structures register named series at creation time
    ({!counter} / {!gauge} / {!histogram} are get-or-create; per-structure
    series add an [("instance", {!instance} prefix)] label) and then record
    through the returned {!Metric} handles — single machine-word stores on
    the hot paths.  {!with_span} wraps coarse operations (a list rebuild, a
    query) and records wall time plus per-span counter deltas.

    {b Overhead model.}  Counters and gauges are always live: they are the
    algorithms' own work accounting (e.g. [Fixed_window.work_counters]) and
    cost no more than the plain int fields they replaced.  Everything with
    real per-event cost — span tracing, duration histograms — is gated by
    {!set_enabled}, whose disabled path is a single boolean load (measured
    < 3% total overhead on the fixed-window hot path; see EXPERIMENTS.md).
    Telemetry starts disabled. *)

(** {2 Runtime control} *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val set_latency_enabled : bool -> unit
(** Switch for {!Latency} duration tracking, independent of spans: a GK
    insert per timed section, collectable without full span capture. *)

val latency_enabled : unit -> bool

val set_clock : (unit -> float) -> unit
(** Clock used for span timing, in seconds.  Defaults to [Sys.time]; inject
    [Unix.gettimeofday] from binaries that link unix, a fake from tests. *)

val now : unit -> float

(** {2 Registration} *)

val counter : ?labels:Metric.labels -> string -> Metric.counter
val gauge : ?labels:Metric.labels -> string -> Metric.gauge
val histogram : ?labels:Metric.labels -> string -> Metric.histogram

val instance : string -> string
(** Fresh instance name for a structure family: ["fw0"], ["fw1"], ... —
    used as the [("instance", _)] label value of per-structure series. *)

(** {2 Spans} *)

val with_span : string -> (unit -> 'a) -> 'a
(** See {!Span.with_span}.  One boolean load when telemetry is disabled. *)

val plane_collisions : unit -> int
(** The [obs.plane_collisions] witness: recording operations that missed
    the per-domain plane fast path because more than {!Plane.max_slots}
    domains were alive.  Flat (zero) whenever the contention-free path is
    actually in use — the analogue of the engine's [engine.lock_ops]
    lock-freedom witness. *)

(** {2 Exposition} *)

type format = Text | Json | Prom

val format_of_string : string -> format option
(** ["text"], ["json"], ["prom"] (or ["prometheus"]). *)

val format_to_string : format -> string

val render : format -> string
(** Render the current registry contents in the given format. *)

val render_trace : unit -> string
(** The span trace as JSON lines (see {!Sink.trace_json_lines}). *)

val render_chrome_trace : unit -> string
(** The span trace as one Chrome trace-event JSON object, one track per
    recording domain (see {!Sink.chrome_trace}). *)

(** {2 Lifecycle} *)

val reset : unit -> unit
(** Zero all metric values and drop the span trace; registrations and the
    handles held by live structures survive.  Also zeroes work-accounting
    counters such as [Fixed_window.work_counters]. *)

val clear : unit -> unit
(** Drop all registrations, the trace, and instance-name sequences.
    Handles held by live structures keep counting but are no longer
    exported; for test isolation. *)
