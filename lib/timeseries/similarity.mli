(** Filter-and-refine similarity search over a collection of time series,
    following the GEMINI framework the paper's Section 5.2 experiments use:
    cheap lower-bounding distances on the synopses prune the collection,
    exact Euclidean distances refine the survivors.  Because every synopsis
    here lower-bounds the true distance, the search never drops a true
    match; quality differences between synopses show up as {e false
    positives} — exactly the metric the paper reports against APCA. *)

type collection = {
  name : string;
  series : float array array;  (** the raw data, kept for refinement *)
  synopses : Segments.t array; (** one synopsis per series *)
}

val make_collection :
  name:string -> synopsis:(float array -> Segments.t) -> float array array -> collection

type stats = {
  total : int;           (** collection size *)
  candidates : int;      (** series surviving the lower-bound filter *)
  false_positives : int; (** candidates rejected by exact refinement *)
  true_matches : int;
  pruning_power : float; (** fraction of the collection pruned without refinement *)
}

val range_search : collection -> query:float array -> radius:float -> int list * stats
(** Indices (ascending) of series within Euclidean [radius] of the query. *)

val knn_search : collection -> query:float array -> k:int -> (int * float) list * stats
(** The [k] nearest series as (index, exact distance), ascending by
    distance.  Uses the optimal filter-and-refine order (ascending lower
    bound, stop once the bound exceeds the k-th best exact distance);
    [candidates] counts the refinements performed, [false_positives] the
    refinements beyond the unavoidable [k]. *)

val sliding_windows : float array -> w:int -> step:int -> (int * float array) array
(** Subsequence-matching substrate: windows of length [w] starting every
    [step] positions, as (start index, window) pairs; start is 0-based. *)

val subsequence_collection :
  name:string -> synopsis:(float array -> Segments.t) -> data:float array -> w:int -> step:int ->
  collection * int array
(** Collection of all sliding windows plus the map from collection index
    back to window start position. *)
