let build data ~segments =
  let n = Array.length data in
  if n = 0 then invalid_arg "Paa.build: empty series";
  let m = min (max 1 segments) n in
  let boundaries = Array.init m (fun i -> max (i + 1) (n * (i + 1) / m)) in
  boundaries.(m - 1) <- n;
  Segments.of_means data ~boundaries
