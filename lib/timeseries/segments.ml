module Histogram = Sh_histogram.Histogram
module Prefix_sums = Sh_prefix.Prefix_sums

type segment = { hi : int; value : float }
type t = { n : int; segments : segment array }

let make ~n segments =
  let count = Array.length segments in
  if n < 1 then invalid_arg "Segments.make: n must be >= 1";
  if count = 0 then invalid_arg "Segments.make: at least one segment required";
  if segments.(count - 1).hi <> n then invalid_arg "Segments.make: last segment must end at n";
  for i = 1 to count - 1 do
    if segments.(i).hi <= segments.(i - 1).hi then
      invalid_arg "Segments.make: endpoints must strictly increase"
  done;
  if segments.(0).hi < 1 then invalid_arg "Segments.make: endpoints must be >= 1";
  { n; segments = Array.copy segments }

let of_histogram h =
  make ~n:h.Histogram.n
    (Array.map (fun b -> { hi = b.Histogram.hi; value = b.Histogram.value }) h.Histogram.buckets)

let of_means data ~boundaries =
  let prefix = Prefix_sums.make data in
  let n = Array.length data in
  let segs =
    Array.mapi
      (fun i hi ->
        let lo = if i = 0 then 1 else boundaries.(i - 1) + 1 in
        { hi; value = Prefix_sums.range_mean prefix ~lo ~hi })
      boundaries
  in
  make ~n segs

let segment_count t = Array.length t.segments

let to_series t =
  let out = Array.make t.n 0.0 in
  let lo = ref 1 in
  Array.iter
    (fun s ->
      for i = !lo to s.hi do
        out.(i - 1) <- s.value
      done;
      lo := s.hi + 1)
    t.segments;
  out

let euclidean a b =
  if Array.length a <> Array.length b then invalid_arg "Segments.euclidean: length mismatch";
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

let lower_bound_distance ~query t =
  if Array.length query <> t.n then invalid_arg "Segments.lower_bound_distance: length mismatch";
  let acc = ref 0.0 in
  let lo = ref 1 in
  let running = ref 0.0 in
  (* One pass over the query accumulates each segment's query mean. *)
  Array.iter
    (fun s ->
      for i = !lo to s.hi do
        running := !running +. query.(i - 1)
      done;
      let len = Float.of_int (s.hi - !lo + 1) in
      let qmean = !running /. len in
      let d = qmean -. s.value in
      acc := !acc +. (len *. d *. d);
      running := 0.0;
      lo := s.hi + 1)
    t.segments;
  sqrt !acc

let sse_of_approximation data t =
  if Array.length data <> t.n then invalid_arg "Segments.sse_of_approximation: length mismatch";
  Sh_util.Metrics.sse (to_series t) data
