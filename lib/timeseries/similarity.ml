module Heap = Sh_util.Heap

type collection = {
  name : string;
  series : float array array;
  synopses : Segments.t array;
}

let make_collection ~name ~synopsis series =
  if Array.length series = 0 then invalid_arg "Similarity.make_collection: empty collection";
  { name; series; synopses = Array.map synopsis series }

type stats = {
  total : int;
  candidates : int;
  false_positives : int;
  true_matches : int;
  pruning_power : float;
}

let range_search c ~query ~radius =
  let total = Array.length c.series in
  let candidates = ref 0 and fps = ref 0 in
  let hits = ref [] in
  for i = total - 1 downto 0 do
    if Segments.lower_bound_distance ~query c.synopses.(i) <= radius then begin
      incr candidates;
      if Segments.euclidean query c.series.(i) <= radius then hits := i :: !hits
      else incr fps
    end
  done;
  let true_matches = List.length !hits in
  ( !hits,
    {
      total;
      candidates = !candidates;
      false_positives = !fps;
      true_matches;
      pruning_power = 1.0 -. (Float.of_int !candidates /. Float.of_int total);
    } )

let knn_search c ~query ~k =
  let total = Array.length c.series in
  if k < 1 then invalid_arg "Similarity.knn_search: k must be >= 1";
  let k = min k total in
  (* Visit series in ascending lower-bound order; keep the k best exact
     distances in a max-heap (negated comparator); stop when the next lower
     bound already exceeds the current k-th best. *)
  let order = Array.init total (fun i -> (Segments.lower_bound_distance ~query c.synopses.(i), i)) in
  Array.sort (fun (a, _) (b, _) -> compare (a : float) b) order;
  let best = Heap.create ~cmp:(fun (d1, _) (d2, _) -> compare (d2 : float) d1) in
  let refined = ref 0 in
  let stop = ref false in
  let pos = ref 0 in
  while (not !stop) && !pos < total do
    let lb, i = order.(!pos) in
    let kth_full = Heap.length best = k in
    let kth = match Heap.peek best with Some (d, _) -> d | None -> infinity in
    if kth_full && lb > kth then stop := true
    else begin
      incr refined;
      let d = Segments.euclidean query c.series.(i) in
      if not kth_full then Heap.add best (d, i)
      else if d < kth then begin
        ignore (Heap.pop best);
        Heap.add best (d, i)
      end
    end;
    incr pos
  done;
  let rec drain acc = match Heap.pop best with None -> acc | Some x -> drain (x :: acc) in
  let results = List.map (fun (d, i) -> (i, d)) (drain []) in
  ( results,
    {
      total;
      candidates = !refined;
      false_positives = max 0 (!refined - k);
      true_matches = k;
      pruning_power = 1.0 -. (Float.of_int !refined /. Float.of_int total);
    } )

let sliding_windows data ~w ~step =
  let n = Array.length data in
  if w < 1 || w > n then invalid_arg "Similarity.sliding_windows: bad window length";
  if step < 1 then invalid_arg "Similarity.sliding_windows: step must be >= 1";
  let count = ((n - w) / step) + 1 in
  Array.init count (fun j ->
      let start = j * step in
      (start, Array.sub data start w))

let subsequence_collection ~name ~synopsis ~data ~w ~step =
  let windows = sliding_windows data ~w ~step in
  let starts = Array.map fst windows in
  let series = Array.map snd windows in
  (make_collection ~name ~synopsis series, starts)
