(** Adaptive Piecewise Constant Approximation — Keogh, Chakrabarti,
    Mehrotra & Pazzani [KCMP01], the similarity-search comparator of the
    paper's Section 5.2.

    [build] follows the original heuristic: Haar-transform the series,
    keep the [segments] largest coefficients, reconstruct (a piecewise-
    constant signal with more pieces than the budget), then greedily merge
    the cheapest adjacent pieces down to the budget.  Finally every segment
    value is replaced by the exact data mean over the segment, which both
    improves quality and establishes the lower-bounding property required
    for no-false-dismissal search. *)

val build : float array -> segments:int -> Segments.t

val build_optimal : float array -> segments:int -> Segments.t
(** The same representation with the segmentation chosen by the V-optimal
    dynamic program — what the paper's histogram algorithms approximate.
    Used to quantify how much segment placement (heuristic vs optimal)
    matters. *)
