module Prefix_sums = Sh_prefix.Prefix_sums
module Synopsis = Sh_wavelet.Synopsis

(* Greedily merge adjacent segments, cheapest SSE increase first, until at
   most [target] remain.  The candidate set is small (the Haar heuristic
   yields O(budget) pieces), so a quadratic scan is fine. *)
let merge_down prefix boundaries ~target =
  let bounds = ref (Array.to_list boundaries) in
  let list_length l = List.length l in
  let merge_cost lo_prev b b' =
    (* Cost of fusing segments (lo_prev+1 .. b) and (b+1 .. b'). *)
    Prefix_sums.sqerror prefix ~lo:(lo_prev + 1) ~hi:b'
    -. Prefix_sums.sqerror prefix ~lo:(lo_prev + 1) ~hi:b
    -. Prefix_sums.sqerror prefix ~lo:(b + 1) ~hi:b'
  in
  while list_length !bounds > target do
    (* Find the boundary whose removal costs least. *)
    let rec scan prev_end acc = function
      | b :: (b' :: _ as rest) ->
        let cost = merge_cost prev_end b b' in
        let acc =
          match acc with
          | Some (best, _) when best <= cost -> acc
          | _ -> Some (cost, b)
        in
        scan b acc rest
      | _ -> acc
    in
    match scan 0 None !bounds with
    | None -> bounds := !bounds (* single segment left: loop exits *)
    | Some (_, victim) -> bounds := List.filter (fun b -> b <> victim) !bounds
  done;
  Array.of_list !bounds

let boundaries_of_series series =
  let n = Array.length series in
  let out = ref [] in
  for i = n - 1 downto 1 do
    if series.(i) <> series.(i - 1) then out := i :: !out
  done;
  Array.of_list (!out @ [ n ])

let build data ~segments =
  let n = Array.length data in
  if n = 0 then invalid_arg "Apca.build: empty series";
  let m = min (max 1 segments) n in
  (* Step 1: Haar reconstruction from the m largest coefficients — a
     piecewise-constant signal with O(m) pieces at dyadic breakpoints. *)
  let sketch = Synopsis.to_series (Synopsis.build data ~coeffs:m) in
  let rough = boundaries_of_series sketch in
  let prefix = Prefix_sums.make data in
  let boundaries =
    if Array.length rough <= m then rough else merge_down prefix rough ~target:m
  in
  Segments.of_means data ~boundaries

let build_optimal data ~segments =
  let n = Array.length data in
  if n = 0 then invalid_arg "Apca.build_optimal: empty series";
  let m = min (max 1 segments) n in
  Segments.of_histogram (Sh_histogram.Vopt.build data ~buckets:m)
