(** GEMINI indexed similarity search: a k-d tree over PAA feature vectors
    with exact refinement — the indexed counterpart of the linear
    filter-and-refine scans in {!Similarity}.

    Feature map: a series of length n becomes its m PAA segment means,
    each scaled by sqrt(n / m).  Euclidean distance between two feature
    vectors then lower-bounds the true Euclidean distance between the
    series (per-segment Cauchy-Schwarz), so pruning in feature space never
    causes a false dismissal. *)

type t

val build : segments:int -> float array array -> t
(** Index a collection of equal-length series.  Raises on an empty or
    ragged collection. *)

val size : t -> int

val features : t -> float array -> float array
(** The feature vector of a (query) series — exposed for testing the
    lower-bounding property. *)

val range_search : t -> query:float array -> radius:float -> int list * Similarity.stats
(** Exact results (indices, ascending), with the same accounting as
    {!Similarity.range_search}: candidates = series whose feature distance
    passed the filter, false positives = candidates rejected on
    refinement. *)

val knn_search : t -> query:float array -> k:int -> (int * float) list * Similarity.stats
(** Exact k nearest series: candidates are generated in ascending
    feature-space distance until the feature bound exceeds the k-th best
    exact distance. *)
