type t = {
  series : float array array;
  segments : int;
  len : int;
  tree : Kdtree.t;
}

(* PAA feature map: segment means scaled by sqrt(segment length), so the
   L2 distance between feature vectors lower-bounds the series distance. *)
let features_of ~segments ~len s =
  let seg = Paa.build s ~segments in
  let segs = (seg : Segments.t).Segments.segments in
  ignore len;
  let lo = ref 1 in
  Array.map
    (fun { Segments.hi; value } ->
      let w = Float.of_int (hi - !lo + 1) in
      lo := hi + 1;
      value *. sqrt w)
    segs

let build ~segments series =
  if Array.length series = 0 then invalid_arg "Paa_index.build: empty collection";
  let len = Array.length series.(0) in
  if len = 0 then invalid_arg "Paa_index.build: empty series";
  Array.iter
    (fun s -> if Array.length s <> len then invalid_arg "Paa_index.build: ragged collection")
    series;
  let segments = min (max 1 segments) len in
  let points = Array.map (features_of ~segments ~len) series in
  { series; segments; len; tree = Kdtree.build points }

let size t = Array.length t.series

let features t q =
  if Array.length q <> t.len then invalid_arg "Paa_index.features: query length mismatch";
  features_of ~segments:t.segments ~len:t.len q

let stats_of ~total ~candidates ~true_matches =
  {
    Similarity.total;
    candidates;
    false_positives = candidates - true_matches;
    true_matches;
    pruning_power = 1.0 -. (Float.of_int candidates /. Float.of_int total);
  }

let range_search t ~query ~radius =
  let fq = features t query in
  let candidates = Kdtree.within t.tree fq ~radius in
  let hits =
    List.filter (fun i -> Segments.euclidean query t.series.(i) <= radius) candidates
  in
  ( hits,
    stats_of ~total:(size t) ~candidates:(List.length candidates)
      ~true_matches:(List.length hits) )

let knn_search t ~query ~k =
  if k < 1 then invalid_arg "Paa_index.knn_search: k must be >= 1";
  let total = size t in
  let k = min k total in
  let fq = features t query in
  (* Iterative deepening in feature space: refine the feature-space front
     until the next feature distance exceeds the k-th best exact one. *)
  let refined = Hashtbl.create 64 in
  let exact i =
    match Hashtbl.find_opt refined i with
    | Some d -> d
    | None ->
      let d = Segments.euclidean query t.series.(i) in
      Hashtbl.replace refined i d;
      d
  in
  let rec search fetch =
    let front = Kdtree.k_nearest t.tree fq ~k:fetch in
    let exacts =
      List.sort (fun (_, a) (_, b) -> compare (a : float) b)
        (List.map (fun (i, _) -> (i, exact i)) front)
    in
    let rec take n = function
      | x :: rest when n > 0 -> x :: take (n - 1) rest
      | _ -> []
    in
    let best_k = take k exacts in
    let kth = match List.rev best_k with (_, d) :: _ -> d | [] -> infinity in
    let frontier_lb = match List.rev front with (_, d) :: _ -> d | [] -> infinity in
    if fetch >= total || frontier_lb >= kth then best_k else search (min total (2 * fetch))
  in
  let results = search (min total (max k 16)) in
  (results, stats_of ~total ~candidates:(Hashtbl.length refined) ~true_matches:k)
