(** Piecewise Aggregate Approximation (Keogh et al. / Yi & Faloutsos
    [YF00]): equal-width segments, each the mean of its span — the
    fixed-segmentation baseline against the adaptive methods. *)

val build : float array -> segments:int -> Segments.t
(** [segments] is capped at the series length. *)
