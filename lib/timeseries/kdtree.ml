module Heap = Sh_util.Heap

type node =
  | Leaf of int array (* point indices *)
  | Split of { axis : int; threshold : float; left : node; right : node }

type t = { points : float array array; dim : int; root : node }

let leaf_size = 8

let sq_dist a b =
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  !acc

let build points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Kdtree.build: empty point set";
  let dim = Array.length points.(0) in
  if dim = 0 then invalid_arg "Kdtree.build: zero-dimensional points";
  Array.iter
    (fun p -> if Array.length p <> dim then invalid_arg "Kdtree.build: ragged point set")
    points;
  (* Recursive median split on the axis of largest spread. *)
  let rec make indices =
    if Array.length indices <= leaf_size then Leaf indices
    else begin
      let axis = ref 0 and best_spread = ref neg_infinity in
      for d = 0 to dim - 1 do
        let lo = ref infinity and hi = ref neg_infinity in
        Array.iter
          (fun i ->
            let v = points.(i).(d) in
            if v < !lo then lo := v;
            if v > !hi then hi := v)
          indices;
        if !hi -. !lo > !best_spread then begin
          best_spread := !hi -. !lo;
          axis := d
        end
      done;
      if !best_spread <= 0.0 then Leaf indices (* all points identical *)
      else begin
        let axis = !axis in
        let sorted = Array.copy indices in
        Array.sort (fun a b -> compare points.(a).(axis) points.(b).(axis)) sorted;
        let mid = Array.length sorted / 2 in
        let threshold = points.(sorted.(mid)).(axis) in
        (* guard against all-equal-to-median degeneracies *)
        let left = Array.sub sorted 0 mid in
        let right = Array.sub sorted mid (Array.length sorted - mid) in
        if Array.length left = 0 || Array.length right = 0 then Leaf indices
        else Split { axis; threshold; left = make left; right = make right }
      end
    end
  in
  { points; dim; root = make (Array.init n (fun i -> i)) }

let size t = Array.length t.points
let dim t = t.dim

let check_query t q =
  if Array.length q <> t.dim then invalid_arg "Kdtree: query dimension mismatch"

(* Branch-and-bound k-NN: keep the k best in a max-heap; descend the near
   side first, visit the far side only if the splitting plane is closer
   than the current k-th best. *)
let k_nearest t q ~k =
  check_query t q;
  if k < 1 then invalid_arg "Kdtree.k_nearest: k must be >= 1";
  let best = Heap.create ~cmp:(fun (d1, _) (d2, _) -> compare (d2 : float) d1) in
  let kth () = match Heap.peek best with Some (d, _) when Heap.length best = k -> d | _ -> infinity in
  let offer i =
    let d = sq_dist q t.points.(i) in
    if Heap.length best < k then Heap.add best (d, i)
    else if d < kth () then begin
      ignore (Heap.pop best);
      Heap.add best (d, i)
    end
  in
  let rec go = function
    | Leaf indices -> Array.iter offer indices
    | Split { axis; threshold; left; right } ->
      let delta = q.(axis) -. threshold in
      let near, far = if delta < 0.0 then (left, right) else (right, left) in
      go near;
      if delta *. delta < kth () then go far
  in
  go t.root;
  let rec drain acc = match Heap.pop best with None -> acc | Some x -> drain (x :: acc) in
  List.map (fun (d, i) -> (i, sqrt d)) (drain [])

let nearest t q =
  match k_nearest t q ~k:1 with
  | [ r ] -> r
  | _ -> assert false (* build rejects empty sets *)

let within t q ~radius =
  check_query t q;
  if radius < 0.0 then invalid_arg "Kdtree.within: negative radius";
  let r2 = radius *. radius in
  let hits = ref [] in
  let rec go = function
    | Leaf indices ->
      Array.iter (fun i -> if sq_dist q t.points.(i) <= r2 then hits := i :: !hits) indices
    | Split { axis; threshold; left; right } ->
      let delta = q.(axis) -. threshold in
      let near, far = if delta < 0.0 then (left, right) else (right, left) in
      go near;
      if delta *. delta <= r2 then go far
  in
  go t.root;
  List.sort compare !hits
