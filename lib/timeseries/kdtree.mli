(** A k-d tree over fixed-dimension float vectors, with exact
    nearest-neighbour and range (ball) queries under the Euclidean
    metric.  Substrate for GEMINI-style indexed similarity search: index
    the low-dimensional PAA features, refine candidates against the raw
    series (see {!Paa_index}). *)

type t

val build : float array array -> t
(** Build over the given points (indices into this array are the query
    results).  O(n log n) expected.  Raises on an empty or ragged set. *)

val size : t -> int
val dim : t -> int

val nearest : t -> float array -> int * float
(** Index and Euclidean distance of the closest indexed point. *)

val k_nearest : t -> float array -> k:int -> (int * float) list
(** The [k] closest points, ascending by distance. *)

val within : t -> float array -> radius:float -> int list
(** Indices (ascending) of all points within Euclidean [radius]. *)
