(** Piecewise-constant time-series approximations.

    Both APCA [KCMP01] and the paper's histogram synopses reduce a series
    to contiguous segments, each represented by its mean — so one shared
    representation serves the whole Section 5.2 similarity study.

    When every segment value is the exact mean of the original series over
    that segment, {!lower_bound_distance} never exceeds the true Euclidean
    distance (per-segment Cauchy-Schwarz), which is what guarantees
    no-false-dismissal filter-and-refine search. *)

type segment = { hi : int; value : float }
(** Right endpoint (1-based, inclusive); the left endpoint is the previous
    segment's [hi + 1] (or 1). *)

type t = private { n : int; segments : segment array }

val make : n:int -> segment array -> t
(** Validates endpoints are strictly increasing and end at [n]. *)

val of_histogram : Sh_histogram.Histogram.t -> t
(** Histograms are already piecewise-constant-by-mean. *)

val of_means : float array -> boundaries:int array -> t
(** Build from raw data and segment right-endpoints; values are computed
    as exact segment means. *)

val segment_count : t -> int
val to_series : t -> float array

val euclidean : float array -> float array -> float
(** Exact Euclidean distance between equal-length series. *)

val lower_bound_distance : query:float array -> t -> float
(** D_LB(Q, C'): project the query onto the approximation's segmentation
    and compare segment means, weighted by segment length.  A lower bound
    on [euclidean query original] when segment values are exact means. *)

val sse_of_approximation : float array -> t -> float
(** Reconstruction SSE of the approximation against the original. *)
