(** Durable snapshots of summaries: the {!Summary_intf.Persistable}
    payloads wrapped in the versioned, CRC-guarded {!Sh_persist.Frame}
    format, with atomic file publication.

    [restore (snapshot t)] is equivalent to never having crashed — pinned
    bit-identically by the round-trip property tests (see DESIGN.md §11
    for the crash-consistency argument). *)

module Make (S : Summary_intf.Persistable) : sig
  val snapshot : S.t -> string
  (** The complete snapshot image (header + one frame).  Read-only and
      O(state) — safe to take mid-stream. *)

  val restore : string -> S.t
  (** Inverse of {!snapshot}.  Raises {!Sh_persist.Persist.Corrupt} on any
      damage (bad magic, truncation, CRC mismatch, malformed payload,
      trailing bytes) and {!Sh_persist.Persist.Version_mismatch} on a
      foreign format version — never returns a silently wrong summary. *)

  val save : S.t -> file:string -> unit
  (** {!snapshot} written via write-to-temp + atomic rename: a crash mid-
      save leaves the previous file intact. *)

  val load : file:string -> S.t
  (** {!restore} of a file's contents.  Raises like {!restore}, plus
      [Sys_error] if the file cannot be read. *)
end

(** Pre-applied instances for the core summary types. *)

module Fixed_window : sig
  val snapshot : Fixed_window.t -> string
  val restore : string -> Fixed_window.t
  val save : Fixed_window.t -> file:string -> unit
  val load : file:string -> Fixed_window.t
end

module Exact_window : sig
  val snapshot : Exact_window.t -> string
  val restore : string -> Exact_window.t
  val save : Exact_window.t -> file:string -> unit
  val load : file:string -> Exact_window.t
end

module Agglomerative : sig
  val snapshot : Agglomerative.t -> string
  val restore : string -> Agglomerative.t
  val save : Agglomerative.t -> file:string -> unit
  val load : file:string -> Agglomerative.t
end
