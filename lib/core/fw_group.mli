(** A group of {!Fixed_window} summaries over {e disjoint global keys} —
    the mergeable shape of the fixed-window maintainer.

    A single [Fixed_window.t] summarises one totally-ordered stream; two of
    them cannot be merged into one window without re-interleaving the
    streams the structure deliberately forgot.  What {e is} mergeable is a
    keyed family: each key owns its window, and merging two families over
    disjoint key ranges is a union that moves every per-key summary
    verbatim.  No approximation error composes — each key's answers are
    exactly what the contributing summary would have said — which is why
    the aggregation plane's [Global] answers over fixed-window state are
    bit-identical to a single process that owns all the keys.

    Every summary in a group must share geometry (window, buckets,
    epsilon); mixed geometry and overlapping keys raise
    {!Summary_intf.Merge_incompatible}. *)

type t

val empty : t
(** The group over no keys — {!merge}'s identity. *)

val of_summaries : base:int -> Fixed_window.t array -> t
(** [of_summaries ~base fws] keys [fws.(i)] as [base + i] and cuts a
    published read view of each (refreshing stale summaries first).
    Raises [Invalid_argument] on a negative [base] and
    {!Summary_intf.Merge_incompatible} on mixed geometry. *)

val cardinal : t -> int
val keys : t -> int array
(** Keys present, ascending. *)

val merge : t -> t -> t
(** Disjoint-key union, leaving both operands untouched.  Per-key
    summaries travel verbatim — no error composition.  Raises
    {!Summary_intf.Merge_incompatible} on overlapping keys or differing
    geometry.  Merging with {!empty} shares the other operand's entries:
    answers are bit-identical (the [Mergeable] identity law). *)

val find : t -> int -> Fixed_window.View.t option
(** The published view of one key, if present.  O(log keys). *)

val eval_global : t -> Query_op.t -> float
(** Answer [q] over every key: the fold of the per-key
    {!Query_op.eval_view} answers in ascending key order, accumulated
    left-to-right from [0.0] — {!Query_op.scope}'s [Global] contract, with
    its fixed float association. *)
