(** The shared estimation-query vocabulary of the serving planes.

    One variant, one clamping contract, one wire encoding — consumed by
    {!Sh_par.Shard_engine.query_many}, the {!Sh_net.Wire} codec, and the
    {!Sh_agg} root aggregator, so a query means exactly the same thing
    whether it is answered in-process, by a leaf server, or by a merged
    multi-leaf snapshot.

    {b The clamping contract} (shared by every serving path): a remote
    client cannot know the instantaneous window length of the answering
    summary, so structural parameters are clamped to the answering state
    rather than raising — [Herror]'s [k] to [\[1, B\]] and [x] to
    [\[0, n\]]; [Range_sum]'s range is intersected with [\[1, n\]] (an
    empty intersection, or an empty window, sums to 0); [Point_estimate]
    answers 0 outside [\[1, n\]].  {!eval_view} is that contract's single
    implementation. *)

type t =
  | Current_error  (** approximate HERROR\[n, B\] of the window *)
  | Window_length  (** points in the window, as a float *)
  | Herror of { k : int; x : int }
      (** HERROR\[x, k\]; [k] clamped to [\[1, B\]], [x] to [\[0, n\]] *)
  | Range_sum of { lo : int; hi : int }
      (** histogram range-sum estimate over window indices, intersected
          with [\[1, n\]] (empty intersection and empty window sum to 0) *)
  | Point_estimate of { index : int }
      (** histogram point estimate; 0 outside [\[1, n\]] *)

type scope =
  | Key of int  (** one stream key (a shard of one engine, or a global key
                    routed to its owning leaf by an aggregator) *)
  | Global
      (** every key of every shard behind the answering peer.  A [Global]
          answer is the fold of the per-key answers in ascending key
          order, accumulated left-to-right from [0.0] — a fixed float
          association, so a single-process engine and a root aggregator
          merging the same keys answer bit-identically. *)

val to_string : t -> string

val eval_view :
  ?memo:Sh_util.Intmemo.t -> Fixed_window.View.t -> t -> float
(** Answer one query against a published fixed-window view under the
    clamping contract above.  [?memo] amortises repeated [Herror] probes
    against the same view (see {!Fixed_window.View.herror}); it never
    changes answers. *)

(** {2 Codec}

    The sub-tag bytes of the wire protocol's query frames (and of any
    future persisted query log), kept next to the variant so the encoding
    cannot drift from it.  [get]/[get_scope] raise
    {!Sh_persist.Codec.Corrupt} on an unknown tag. *)

val put : Buffer.t -> t -> unit
val get : Sh_persist.Codec.reader -> t
val put_scope : Buffer.t -> scope -> unit
val get_scope : Sh_persist.Codec.reader -> scope
