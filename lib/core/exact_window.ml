module RB = Sh_window.Ring_buffer
module P = Sh_prefix.Prefix_sums
module Obs = Sh_obs.Obs
module M = Sh_obs.Metric

type t = {
  ring : RB.t;
  buckets : int;
  epsilon : float;
      (* The DP is exact, so epsilon never changes a result; it is recorded
         so the baseline answers the same parameter accessors as the
         approximate maintainers (Summary_intf parity) and survives
         snapshot round trips. *)
  scratch : float array;
  (* Query scratch, reused across calls: the prefix-sum pair is refilled
     in place once the window length stabilises, and the O(n^2 B) DP runs
     inside one owned workspace — per-query allocation is just the result
     histogram.  [prefix_cache] is keyed by window length because a
     Prefix_sums.t has a fixed length; while the window is still filling
     each new length allocates one last time. *)
  vopt : Sh_histogram.Vopt.scratch;
  mutable prefix_cache : P.t option;
  c_pushes : M.counter;
  c_rebuilds : M.counter;
}

let mk ~ring ~buckets ~epsilon =
  if buckets < 1 then invalid_arg "Exact_window.create: buckets must be >= 1";
  if not (Float.is_finite epsilon) || epsilon < 0.0 then
    invalid_arg "Exact_window.create: epsilon must be finite and >= 0";
  let labels = [ ("instance", Obs.instance "ew") ] in
  {
    ring;
    buckets;
    epsilon;
    scratch = Array.make (RB.capacity ring) 0.0;
    vopt = Sh_histogram.Vopt.scratch ();
    prefix_cache = None;
    c_pushes = Obs.counter ~labels "ew.pushes";
    c_rebuilds = Obs.counter ~labels "ew.rebuilds";
  }

let create ~window ~buckets ~epsilon =
  mk ~ring:(RB.create ~capacity:window) ~buckets ~epsilon

let window t = RB.capacity t.ring
let buckets t = t.buckets
let epsilon t = t.epsilon
let length t = RB.length t.ring

let push t v =
  if not (Float.is_finite v) then invalid_arg "Exact_window.push: non-finite value";
  M.incr t.c_pushes;
  RB.push t.ring v

(* The exact baseline recomputes prefix sums of the whole window per
   query — the O(n) cost the streaming algorithm avoids; spanned so the
   trace shows where baseline time goes. *)
let prefix t =
  let n = RB.length t.ring in
  if n = 0 then invalid_arg "Exact_window.current_histogram: empty window";
  Obs.with_span "ew.rebuild" (fun () ->
      M.incr t.c_rebuilds;
      RB.blit_to t.ring t.scratch;
      match t.prefix_cache with
      | Some p when P.length p = n ->
        P.refill_sub p t.scratch ~pos:0 ~len:n;
        p
      | _ ->
        let p = P.of_sub t.scratch ~pos:0 ~len:n in
        t.prefix_cache <- Some p;
        p)

let current_histogram t =
  Sh_histogram.Vopt.build_prefix_with t.vopt (prefix t) ~buckets:t.buckets

let current_error t =
  Sh_histogram.Vopt.optimal_error_with t.vopt (prefix t) ~buckets:t.buckets

(* --- persistence ---------------------------------------------------- *)

module Codec = Sh_persist.Codec

let name = "exact_window"
let summary_tag = Char.code 'E'

let encode buf t =
  Codec.put_u8 buf summary_tag;
  Codec.put_varint buf t.buckets;
  Codec.put_float buf t.epsilon;
  RB.encode buf t.ring

let decode r =
  let tag = Codec.get_u8 r in
  if tag <> summary_tag then
    Codec.corruptf "Exact_window.decode: tag %d is not an exact-window payload"
      tag;
  let buckets = Codec.get_varint r in
  let epsilon = Codec.get_float r in
  let ring = RB.decode r in
  try mk ~ring ~buckets ~epsilon
  with Invalid_argument m -> Codec.corruptf "Exact_window.decode: %s" m
