module RB = Sh_window.Ring_buffer
module P = Sh_prefix.Prefix_sums

type t = { ring : RB.t; buckets : int; scratch : float array }

let create ~window ~buckets =
  if buckets < 1 then invalid_arg "Exact_window.create: buckets must be >= 1";
  { ring = RB.create ~capacity:window; buckets; scratch = Array.make window 0.0 }

let window t = RB.capacity t.ring
let buckets t = t.buckets
let length t = RB.length t.ring
let push t v =
  if not (Float.is_finite v) then invalid_arg "Exact_window.push: non-finite value";
  RB.push t.ring v

let prefix t =
  let n = RB.length t.ring in
  if n = 0 then invalid_arg "Exact_window.current_histogram: empty window";
  RB.blit_to t.ring t.scratch;
  P.of_sub t.scratch ~pos:0 ~len:n

let current_histogram t = Sh_histogram.Vopt.build_prefix (prefix t) ~buckets:t.buckets
let current_error t = Sh_histogram.Vopt.optimal_error (prefix t) ~buckets:t.buckets
