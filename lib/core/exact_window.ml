module RB = Sh_window.Ring_buffer
module P = Sh_prefix.Prefix_sums
module Obs = Sh_obs.Obs
module M = Sh_obs.Metric

type t = {
  ring : RB.t;
  buckets : int;
  scratch : float array;
  (* Query scratch, reused across calls: the prefix-sum pair is refilled
     in place once the window length stabilises, and the O(n^2 B) DP runs
     inside one owned workspace — per-query allocation is just the result
     histogram.  [prefix_cache] is keyed by window length because a
     Prefix_sums.t has a fixed length; while the window is still filling
     each new length allocates one last time. *)
  vopt : Sh_histogram.Vopt.scratch;
  mutable prefix_cache : P.t option;
  c_pushes : M.counter;
  c_rebuilds : M.counter;
}

let create ~window ~buckets =
  if buckets < 1 then invalid_arg "Exact_window.create: buckets must be >= 1";
  let labels = [ ("instance", Obs.instance "ew") ] in
  {
    ring = RB.create ~capacity:window;
    buckets;
    scratch = Array.make window 0.0;
    vopt = Sh_histogram.Vopt.scratch ();
    prefix_cache = None;
    c_pushes = Obs.counter ~labels "ew.pushes";
    c_rebuilds = Obs.counter ~labels "ew.rebuilds";
  }

let window t = RB.capacity t.ring
let buckets t = t.buckets
let length t = RB.length t.ring

let push t v =
  if not (Float.is_finite v) then invalid_arg "Exact_window.push: non-finite value";
  M.incr t.c_pushes;
  RB.push t.ring v

(* The exact baseline recomputes prefix sums of the whole window per
   query — the O(n) cost the streaming algorithm avoids; spanned so the
   trace shows where baseline time goes. *)
let prefix t =
  let n = RB.length t.ring in
  if n = 0 then invalid_arg "Exact_window.current_histogram: empty window";
  Obs.with_span "ew.rebuild" (fun () ->
      M.incr t.c_rebuilds;
      RB.blit_to t.ring t.scratch;
      match t.prefix_cache with
      | Some p when P.length p = n ->
        P.refill_sub p t.scratch ~pos:0 ~len:n;
        p
      | _ ->
        let p = P.of_sub t.scratch ~pos:0 ~len:n in
        t.prefix_cache <- Some p;
        p)

let current_histogram t =
  Sh_histogram.Vopt.build_prefix_with t.vopt (prefix t) ~buckets:t.buckets

let current_error t =
  Sh_histogram.Vopt.optimal_error_with t.vopt (prefix t) ~buckets:t.buckets
