module Histogram = Sh_histogram.Histogram
module Codec = Sh_persist.Codec

type t =
  | Current_error
  | Window_length
  | Herror of { k : int; x : int }
  | Range_sum of { lo : int; hi : int }
  | Point_estimate of { index : int }

type scope = Key of int | Global

let to_string = function
  | Current_error -> "current_error"
  | Window_length -> "window_length"
  | Herror { k; x } -> Printf.sprintf "herror[k=%d,x=%d]" k x
  | Range_sum { lo; hi } -> Printf.sprintf "range_sum[%d,%d]" lo hi
  | Point_estimate { index } -> Printf.sprintf "point_estimate[%d]" index

(* --- the clamping contract ------------------------------------------- *)

let clamp_herror ~b ~n ~k ~x =
  let k = if k < 1 then 1 else if k > b then b else k in
  let x = if x < 0 then 0 else if x > n then n else x in
  (k, x)

let eval_hist h ~n q =
  match q with
  | Range_sum { lo; hi } ->
    let lo = if lo < 1 then 1 else lo in
    let hi = if hi > n then n else hi in
    if lo > hi then 0.0 else Histogram.range_sum_estimate h ~lo ~hi
  | Point_estimate { index } ->
    if index < 1 || index > n then 0.0 else Histogram.point_estimate h index
  | Current_error | Window_length | Herror _ -> assert false

let eval_view ?memo v q =
  let module V = Fixed_window.View in
  match q with
  | Current_error -> V.current_error v
  | Window_length -> Float.of_int (V.length v)
  | Herror { k; x } ->
    let k, x = clamp_herror ~b:(V.buckets v) ~n:(V.length v) ~k ~x in
    V.herror ?memo v ~k ~x
  | (Range_sum _ | Point_estimate _) as q -> (
    match V.histogram v with
    | None -> 0.0
    | Some h -> eval_hist h ~n:(V.length v) q)

(* --- wire / snapshot encoding ---------------------------------------- *)

(* op sub-tags (one byte) *)
let qt_current_error = 0
let qt_window_length = 1
let qt_herror = 2
let qt_range_sum = 3
let qt_point_estimate = 4

(* scope sub-tags (one byte) *)
let st_key = 0
let st_global = 1

let put buf q =
  match q with
  | Current_error -> Codec.put_u8 buf qt_current_error
  | Window_length -> Codec.put_u8 buf qt_window_length
  | Herror { k; x } ->
    Codec.put_u8 buf qt_herror;
    Codec.put_varint buf k;
    Codec.put_varint buf x
  | Range_sum { lo; hi } ->
    Codec.put_u8 buf qt_range_sum;
    Codec.put_varint buf lo;
    Codec.put_varint buf hi
  | Point_estimate { index } ->
    Codec.put_u8 buf qt_point_estimate;
    Codec.put_varint buf index

let get r =
  let t = Codec.get_u8 r in
  if t = qt_current_error then Current_error
  else if t = qt_window_length then Window_length
  else if t = qt_herror then
    let k = Codec.get_varint r in
    let x = Codec.get_varint r in
    Herror { k; x }
  else if t = qt_range_sum then
    let lo = Codec.get_varint r in
    let hi = Codec.get_varint r in
    Range_sum { lo; hi }
  else if t = qt_point_estimate then Point_estimate { index = Codec.get_varint r }
  else Codec.corruptf "bad query tag %d" t

let put_scope buf s =
  match s with
  | Key k ->
    if k < 0 then invalid_arg "Query_op.put_scope: negative key";
    Codec.put_u8 buf st_key;
    Codec.put_varint buf k
  | Global -> Codec.put_u8 buf st_global

let get_scope r =
  let t = Codec.get_u8 r in
  if t = st_key then Key (Codec.get_varint r)
  else if t = st_global then Global
  else Codec.corruptf "bad query scope tag %d" t
