module Histogram = Sh_histogram.Histogram
module Vec = Sh_util.Vec
module Obs = Sh_obs.Obs
module M = Sh_obs.Metric

(* One interval of a level-k queue.  The right endpoint [idx] slides
   forward while HERROR[idx, k] stays within (1 + delta) of the value at
   the interval start; the running prefix sums are stored at the endpoint
   so SQERROR between any two endpoints is O(1) — the algorithm never
   retains the stream itself. *)
type entry = {
  mutable idx : int;
  mutable sum : float;    (* SUM[1 .. idx] *)
  mutable sqsum : float;  (* SQSUM[1 .. idx] *)
  mutable herror : float; (* HERROR[idx, k] *)
  a_idx : int;
  a_herror : float;
}

type work_counters = {
  pushes : int;
  candidate_evaluations : int;
  intervals_built : int;
  intervals_extended : int;
}

type t = {
  params : Params.t;
  horizon : int;              (* nominal window for Summary_intf parity;
                                 max_int = the whole stream (the GKS01
                                 algorithm is inherently unbounded) *)
  queues : entry Vec.t array; (* queues.(k-1) is the level-k queue, k = 1 .. B-1 *)
  herr : float array;         (* scratch: herr.(k) = HERROR[n, k] of this step *)
  mutable n : int;
  mutable sum : float;
  mutable sqsum : float;
  mutable last_error : float; (* HERROR[n, B] from the latest push *)
  c_pushes : M.counter;
  c_cand : M.counter;
  c_built : M.counter;
  c_extended : M.counter;
}

let mk ~params ~horizon =
  if horizon < 1 then invalid_arg "Agglomerative.create: window must be >= 1";
  let buckets = params.Params.buckets in
  let labels = [ ("instance", Obs.instance "ag") ] in
  let c name = Obs.counter ~labels name in
  {
    params;
    horizon;
    queues = Array.init (max 0 (buckets - 1)) (fun _ -> Vec.create ());
    herr = Array.make (buckets + 1) 0.0;
    n = 0;
    sum = 0.0;
    sqsum = 0.0;
    last_error = 0.0;
    c_pushes = c "ag.pushes";
    c_cand = c "ag.candidate_evals";
    c_built = c "ag.intervals_built";
    c_extended = c "ag.intervals_extended";
  }

let create_with_delta ~buckets ~epsilon ~delta =
  mk ~params:(Params.make_with_delta ~buckets ~epsilon ~delta) ~horizon:max_int

let create ~buckets ~epsilon =
  create_with_delta ~buckets ~epsilon ~delta:(epsilon /. (2.0 *. Float.of_int buckets))

let create_windowed ~window ~buckets ~epsilon =
  mk
    ~params:
      (Params.make_with_delta ~buckets ~epsilon
         ~delta:(epsilon /. (2.0 *. Float.of_int buckets)))
    ~horizon:window

let buckets t = t.params.Params.buckets
let epsilon t = t.params.Params.epsilon
let window t = t.horizon
let count t = t.n
let length t = t.n

(* SQERROR[e.idx + 1 .. idx] from stored prefix sums, clamped against
   floating-point cancellation. *)
let sqerror_from e ~idx ~sum ~sqsum =
  let len = Float.of_int (idx - e.idx) in
  let s = sum -. e.sum in
  let q = sqsum -. e.sqsum in
  Float.max 0.0 (q -. (s *. s /. len))

let push t v =
  if not (Float.is_finite v) then invalid_arg "Agglomerative.push: non-finite value";
  M.incr t.c_pushes;
  t.n <- t.n + 1;
  t.sum <- t.sum +. v;
  t.sqsum <- t.sqsum +. (v *. v);
  let b = buckets t in
  let n = t.n in
  (* HERROR[n, 1] = SQERROR[1, n]. *)
  t.herr.(1) <- Float.max 0.0 (t.sqsum -. (t.sum *. t.sum /. Float.of_int n));
  for k = 2 to b do
    if k >= n then t.herr.(k) <- 0.0
    else begin
      (* Minimise over right endpoints of the level-(k-1) queue; all of
         them are <= n-1 since queues were last extended at point n-1.
         Stored herror values are non-decreasing along the queue, so stop
         as soon as one alone reaches the current best. *)
      let q = t.queues.(k - 2) in
      let best = ref infinity in
      let i = ref 0 in
      let len = Vec.length q in
      let continue = ref true in
      while !continue && !i < len do
        let e = Vec.get q !i in
        M.incr t.c_cand;
        if e.herror >= !best then continue := false
        else begin
          if e.idx <= n - 1 then begin
            let cand = e.herror +. sqerror_from e ~idx:n ~sum:t.sum ~sqsum:t.sqsum in
            if cand < !best then best := cand
          end;
          incr i
        end
      done;
      t.herr.(k) <- (if !best = infinity then 0.0 else !best)
    end
  done;
  (* Lines 7-10 of Figure 3: extend the last interval of each queue, or
     start a new one when the error has grown past the (1 + delta) slack. *)
  let delta = t.params.Params.delta in
  for k = 1 to b - 1 do
    let q = t.queues.(k - 1) in
    let fresh () =
      M.incr t.c_built;
      Vec.push q
        {
          idx = n;
          sum = t.sum;
          sqsum = t.sqsum;
          herror = t.herr.(k);
          a_idx = n;
          a_herror = t.herr.(k);
        }
    in
    if Vec.is_empty q then fresh ()
    else begin
      let last = Vec.last q in
      if t.herr.(k) > (1.0 +. delta) *. last.a_herror then fresh ()
      else begin
        M.incr t.c_extended;
        last.idx <- n;
        last.sum <- t.sum;
        last.sqsum <- t.sqsum;
        last.herror <- t.herr.(k)
      end
    end
  done;
  t.last_error <- t.herr.(b)

let current_error t = t.last_error

(* Reconstruction walks the queues top-down.  At each level we split off
   the last bucket at the best stored endpoint strictly before the current
   position; if the level-(k-1) queue has no such endpoint (the prefix is
   still inside its first, zero-error interval) we cascade to lower-level
   queues, whose intervals are finer early in the stream. *)
let current_histogram t =
  if t.n = 0 then invalid_arg "Agglomerative.current_histogram: empty stream";
  Obs.with_span "ag.histogram" @@ fun () ->
  let bucket_between e_lo ~idx ~sum =
    let lo = e_lo.idx + 1 in
    let len = Float.of_int (idx - e_lo.idx) in
    { Histogram.lo; hi = idx; value = (sum -. e_lo.sum) /. len }
  in
  let origin = { idx = 0; sum = 0.0; sqsum = 0.0; herror = 0.0; a_idx = 0; a_herror = 0.0 } in
  let rec recon ~idx ~sum ~sqsum ~k acc =
    if idx <= 0 then acc
    else if k <= 1 then bucket_between origin ~idx ~sum :: acc
    else begin
      (* Deepest available level first is k-1; cascade down when it has no
         endpoint before [idx]. *)
      let rec pick level =
        if level < 1 then None
        else begin
          let q = t.queues.(level - 1) in
          let best = ref infinity and best_e = ref None in
          Vec.iter
            (fun e ->
              if e.idx < idx then begin
                let cand = e.herror +. sqerror_from e ~idx ~sum ~sqsum in
                if cand < !best then begin
                  best := cand;
                  best_e := Some e
                end
              end)
            q;
          match !best_e with
          | Some e -> Some (level, e)
          | None -> pick (level - 1)
        end
      in
      match pick (k - 1) with
      | None -> bucket_between origin ~idx ~sum :: acc
      | Some (level, e) ->
        recon ~idx:e.idx ~sum:e.sum ~sqsum:e.sqsum ~k:level
          (bucket_between e ~idx ~sum :: acc)
    end
  in
  let bs = recon ~idx:t.n ~sum:t.sum ~sqsum:t.sqsum ~k:(buckets t) [] in
  Histogram.make ~n:t.n (Array.of_list bs)

let space_in_entries t = Array.fold_left (fun acc q -> acc + Vec.length q) 0 t.queues
let interval_counts t = Array.map Vec.length t.queues

let work_counters t =
  {
    pushes = M.value t.c_pushes;
    candidate_evaluations = M.value t.c_cand;
    intervals_built = M.value t.c_built;
    intervals_extended = M.value t.c_extended;
  }

(* --- merge ----------------------------------------------------------- *)

let copy_entry e =
  { idx = e.idx; sum = e.sum; sqsum = e.sqsum; herror = e.herror;
    a_idx = e.a_idx; a_herror = e.a_herror }

let copy t =
  let c = mk ~params:t.params ~horizon:t.horizon in
  c.n <- t.n;
  c.sum <- t.sum;
  c.sqsum <- t.sqsum;
  c.last_error <- t.last_error;
  Array.iteri
    (fun i q -> Vec.iter (fun e -> Vec.push c.queues.(i) (copy_entry e)) q)
    t.queues;
  c

(* Merge = stream concatenation: the merged summary describes a's points
   followed by b's.  a's queue entries are kept verbatim (prefix sums over
   the concatenated stream agree with a's on a's prefix); b's entries are
   shifted into the concatenated index space (idx + a.n, sums + a's
   totals) with herror recomputed bottom-up against the already-merged
   level-(k-1) queue — the level-k prefix error of the concatenated stream
   at that endpoint, by the same minimisation push uses.  Shifted entries
   anchor on themselves (a_idx = idx, a_herror = recomputed herror), which
   conservatively preserves the (1 + delta) growth invariant for future
   pushes.  Error factors multiply across the splice point, so the merged
   summary carries eps = eps_a + eps_b + eps_a * eps_b. *)
let merge a b =
  if buckets a <> buckets b then
    Summary_intf.merge_incompatiblef
      "Agglomerative.merge: bucket budgets differ (%d vs %d)" (buckets a)
      (buckets b);
  if b.n = 0 then copy a
  else if a.n = 0 then copy b
  else begin
    let bkts = buckets a in
    let eps_a = epsilon a and eps_b = epsilon b in
    let params =
      Params.make_with_delta ~buckets:bkts
        ~epsilon:(eps_a +. eps_b +. (eps_a *. eps_b))
        ~delta:(Float.max a.params.Params.delta b.params.Params.delta)
    in
    let horizon =
      if a.horizon = max_int || b.horizon = max_int then max_int
      else a.horizon + b.horizon
    in
    let t = mk ~params ~horizon in
    t.n <- a.n + b.n;
    t.sum <- a.sum +. b.sum;
    t.sqsum <- a.sqsum +. b.sqsum;
    (* Full scan, no early stop: recomputed herrors in a merged queue are
       not guaranteed monotone the way push's incremental ones are. *)
    let min_over q ~idx ~sum ~sqsum =
      let best = ref infinity in
      Vec.iter
        (fun e ->
          if e.idx < idx then begin
            let cand = e.herror +. sqerror_from e ~idx ~sum ~sqsum in
            if cand < !best then best := cand
          end)
        q;
      !best
    in
    for k = 1 to bkts - 1 do
      let dst = t.queues.(k - 1) in
      Vec.iter (fun e -> Vec.push dst (copy_entry e)) a.queues.(k - 1);
      Vec.iter
        (fun e ->
          let idx = e.idx + a.n in
          let sum = e.sum +. a.sum in
          let sqsum = e.sqsum +. a.sqsum in
          let herror =
            if k = 1 then
              Float.max 0.0 (sqsum -. (sum *. sum /. Float.of_int idx))
            else begin
              (* a.n > 0, so the merged level-(k-1) queue always holds at
                 least one endpoint strictly before idx. *)
              let m = min_over t.queues.(k - 2) ~idx ~sum ~sqsum in
              if m = infinity then 0.0 else m
            end
          in
          Vec.push dst { idx; sum; sqsum; herror; a_idx = idx; a_herror = herror })
        b.queues.(k - 1)
    done;
    t.last_error <-
      (if bkts = 1 then
         Float.max 0.0 (t.sqsum -. (t.sum *. t.sum /. Float.of_int t.n))
       else if bkts >= t.n then 0.0
       else begin
         let m = min_over t.queues.(bkts - 2) ~idx:t.n ~sum:t.sum ~sqsum:t.sqsum in
         if m = infinity then 0.0 else m
       end);
    t
  end

module _ : Summary_intf.Mergeable with type t := t = struct
  let merge = merge
end

(* --- persistence ---------------------------------------------------- *)

module Codec = Sh_persist.Codec

let name = "agglomerative"
let summary_tag = Char.code 'A'

let encode buf t =
  Codec.put_u8 buf summary_tag;
  Codec.put_varint buf (buckets t);
  Codec.put_float buf (epsilon t);
  Codec.put_float buf t.params.Params.delta;
  Codec.put_varint buf t.horizon;
  Codec.put_varint buf t.n;
  Codec.put_float buf t.sum;
  Codec.put_float buf t.sqsum;
  Codec.put_float buf t.last_error;
  (* [herr] is per-push scratch, fully rewritten by the next push; the
     queues are the real small-space state (Figure 3). *)
  Array.iter
    (fun q ->
       Codec.put_varint buf (Vec.length q);
       Vec.iter
         (fun e ->
            Codec.put_varint buf e.idx;
            Codec.put_float buf e.sum;
            Codec.put_float buf e.sqsum;
            Codec.put_float buf e.herror;
            Codec.put_varint buf e.a_idx;
            Codec.put_float buf e.a_herror)
         q)
    t.queues

let get_finite r what =
  let v = Codec.get_float r in
  if not (Float.is_finite v) then
    Codec.corruptf "Agglomerative.decode: non-finite %s" what;
  v

let decode r =
  let tag = Codec.get_u8 r in
  if tag <> summary_tag then
    Codec.corruptf "Agglomerative.decode: tag %d is not an agglomerative payload"
      tag;
  let buckets = Codec.get_varint r in
  let epsilon = Codec.get_float r in
  let delta = Codec.get_float r in
  let horizon = Codec.get_varint r in
  let n = Codec.get_varint r in
  let sum = get_finite r "running sum" in
  let sqsum = get_finite r "running sqsum" in
  let last_error = get_finite r "last error" in
  let t =
    try mk ~params:(Params.make_with_delta ~buckets ~epsilon ~delta) ~horizon
    with Invalid_argument m -> Codec.corruptf "Agglomerative.decode: %s" m
  in
  t.n <- n;
  t.sum <- sum;
  t.sqsum <- sqsum;
  t.last_error <- last_error;
  Array.iter
    (fun q ->
       let len = Codec.get_varint r in
       let prev_idx = ref 0 in
       for _ = 1 to len do
         let idx = Codec.get_varint r in
         let sum = get_finite r "entry sum" in
         let sqsum = get_finite r "entry sqsum" in
         let herror = get_finite r "entry herror" in
         let a_idx = Codec.get_varint r in
         let a_herror = get_finite r "entry a_herror" in
         if idx <= !prev_idx || idx > n then
           Codec.corruptf
             "Agglomerative.decode: entry idx %d out of order (prev %d, n %d)"
             idx !prev_idx n;
         if a_idx < 1 || a_idx > idx then
           Codec.corruptf "Agglomerative.decode: entry a_idx %d outside [1, %d]"
             a_idx idx;
         prev_idx := idx;
         Vec.push q { idx; sum; sqsum; herror; a_idx; a_herror }
       done)
    t.queues;
  t

(* Strict Summary_intf.S conformance for the whole-stream maintainer: the
   primary API keeps its historical no-window [create] (and [count]); this
   view is what generic durability and test code programs against. *)
module Summary = struct
  type nonrec t = t

  let name = name
  let create = create_windowed
  let window = window
  let buckets = buckets
  let epsilon = epsilon
  let length = length
  let push = push
  let current_error = current_error
  let current_histogram = current_histogram
  let encode = encode
  let decode = decode
end
