(** Fixed-window data-stream histograms — Algorithm FixedWindowHistogram
    (Figure 5 of the paper), the paper's primary contribution.

    The structure maintains, over the window of the most recent [window]
    stream points, an epsilon-approximate B-bucket V-optimal histogram:
    the SSE of the produced histogram is within a (1 + epsilon) factor of
    the optimum for that window (Theorem 1), at
    O((B^3 / epsilon^2) log^3 n) work per data point.

    Per arrival the algorithm rebuilds, level by level, B - 1 lists of
    intervals that cover the window and approximate the prefix-error
    function HERROR\[., k\] to within a (1 + delta) factor per interval
    (delta = epsilon / 2B).  Each list is built by the [CreateList]
    binary-search procedure, touching only O((B / epsilon) log^2 n) window
    positions rather than all n — the paper's key idea.  Sliding prefix
    sums (SUM', SQSUM' of Section 4.5) make every SQERROR evaluation O(1).

    {2 Maintenance modes}

    {!push} honours the {!Params.refresh_policy} the maintainer was created
    with: [Lazy] (the default) only advances the window and its prefix
    sums, leaving the interval lists to the first query; [Eager] rebuilds
    them on every arrival (the paper's cost model); [Every k] rebuilds on
    every k-th arrival, amortising bulk loads.  {!refresh} /
    {!push_and_refresh} rebuild unconditionally.

    {2 Warm-start rebuilds}

    Between consecutive arrivals the window shifts by at most one point, so
    the previous lists' interval boundaries are near-perfect predictors of
    the new ones.  {!refresh} therefore keeps the last refresh's lists in a
    double buffer and seeds each CreateList boundary search from the
    corresponding previous boundary (shifted by the window slide), using a
    gallop-then-bisect search bracketed around the hint.  Because HERROR is
    non-decreasing in x, the search result is independent of the seed: warm
    and cold rebuilds produce identical lists, and [refresh ~cold:true]
    stays available as the correctness oracle (see DESIGN.md section 7).

    {2 Allocation-free kernel}

    The hot path is (amortised) allocation-free: interval lists live in
    struct-of-arrays stores ({!Sh_util.Soa}) rather than boxed-record
    vectors, rebuild scratch (double buffers, memo table, float out-param
    slots) is owned by [t] and reused across refreshes, and HERROR
    evaluations are deduplicated through a per-refresh memo table
    ({!Sh_util.Intmemo}) cleared in O(1) by generation stamp.  Once the
    backing arrays reach steady capacity, a push + warm refresh allocates
    ~zero minor-heap words (pinned by the allocation-budget test; see
    DESIGN.md section 10).  [refresh ~memo:false] disables the memo for
    one rebuild — with it, the probe sequence is identical to the pre-memo
    kernel, which the golden step-count tests rely on. *)

type t

val create : window:int -> buckets:int -> epsilon:float -> t
(** A maintainer for the last [window] points with [buckets] buckets and
    precision [epsilon], under the default [Lazy] refresh policy
    ({!set_refresh_policy} changes it).  Raises [Invalid_argument] on
    non-positive arguments. *)

val create_with_delta : window:int -> buckets:int -> epsilon:float -> delta:float -> t
(** Like {!create} with an explicit interval slack (ablation hook). *)

val window : t -> int
val buckets : t -> int
val epsilon : t -> float
val length : t -> int
(** Points currently in the window ([<= window]). *)

val generation : t -> int
(** Refresh generation: starts at 0 and increments once per interval-list
    rebuild (so any freshly created or decoded summary, both of which
    refresh, is at generation [>= 1]).  The epoch stamp of the published
    read views. *)

val points_seen : t -> int
(** Total points pushed since creation — a monotone watermark ([>=]
    {!length}; it keeps counting after the window fills).  Restored
    summaries restart at the recovered window length. *)

val refresh_policy : t -> Params.refresh_policy

val set_refresh_policy : t -> Params.refresh_policy -> unit
(** Change the arrival-time rebuild policy; takes effect from the next
    {!push}.  Raises [Invalid_argument] on [Every k] with [k < 1]. *)

val push : t -> float -> unit
(** Ingest the next stream point (evicting the oldest once the window is
    full), then rebuild the interval lists if the refresh policy calls for
    it. *)

val push_many : t -> float array -> unit
(** Batched arrivals (footnote 2 of the paper): append every point to the
    sliding prefix first, then rebuild at most once, per the refresh
    policy — the batch cost is O(batch) plus one refresh, and the
    warm-start machinery amortises across the whole batch.  Bookkeeping
    counts each batched point exactly like a single arrival ([Every k]
    periods include them); a batch that crosses a refresh boundary
    rebuilds once at the batch end rather than mid-batch, so query results
    are identical to repeated {!push} while arrival-time work is not.
    Raises [Invalid_argument] on non-finite values, before ingesting
    anything. *)

val push_batch : t -> float array -> unit
(** Alias of {!push_many} (historical name). *)

val push_slice : t -> float array -> pos:int -> len:int -> unit
(** {!push_many} over the sub-array [\[pos, pos + len)] without copying it
    out — the zero-allocation batch entry point (used by the sharded
    engine to feed per-shard slices from a pooled buffer).  Raises
    [Invalid_argument] on a slice out of bounds or a non-finite value in
    the slice (before ingesting anything). *)

val refresh : ?cold:bool -> ?memo:bool -> t -> unit
(** Rebuild the interval lists for the current window contents; no-op when
    they are already current.  [~cold:true] ignores the previous lists and
    rebuilds from scratch with full-range binary searches — the correctness
    oracle for the default warm-start rebuild, which produces identical
    lists in fewer HERROR evaluations.  [~memo] overrides the
    {!set_memoisation} setting for this one rebuild: [~memo:false] is the
    second oracle, re-evaluating every HERROR probe so step counters match
    the pre-memo kernel exactly. *)

val set_memoisation : t -> bool -> unit
(** Enable / disable the per-refresh HERROR memo (default on).  Purely a
    performance toggle: results are bit-identical either way. *)

val memoisation : t -> bool
(** Current {!set_memoisation} setting. *)

val push_and_refresh : t -> float -> unit
(** [push] then [refresh]: the paper's per-point maintenance. *)

val current_error : t -> float
(** The approximate HERROR\[n, B\] for the current window: an upper bound
    on the SSE of {!current_histogram} target that is within (1 + epsilon)
    of the optimal B-bucket SSE.  Refreshes if needed. *)

val current_histogram : t -> Sh_histogram.Histogram.t
(** The epsilon-approximate histogram of the current window, with indices
    1..{!length} (1 = oldest point in the window).  Bucket values are exact
    range means.  Refreshes if needed.  Raises [Invalid_argument] on an
    empty window. *)

val herror : t -> k:int -> x:int -> float
(** Approximate HERROR\[x, k\]: the error of summarising the oldest [x]
    window points with [k] buckets.  Requires [1 <= k <= buckets] and
    [0 <= x <= length]; levels below [buckets] read the interval lists,
    which are refreshed if needed.  Exposed for validation against the
    exact dynamic program. *)

(** {2 Published read views}

    A {!View.t} is a compact immutable snapshot of a refreshed summary:
    the raw cumulative prefix sums of the window, the endpoint columns of
    the interval lists, and precomputed whole-window answers, plus the
    {!generation} / {!points_seen} stamps of the moment it was cut.  Views
    hold no reference to the live summary and are never mutated, so they
    may be handed to other domains and read wait-free — the RCU payload of
    the sharded engine's query plane.

    View evaluation replicates the live kernel's float operations on the
    same values in the same order, so every view answer is bit-identical
    to the corresponding live query against the (quiesced) summary at the
    same generation.  Views never touch telemetry: reads cost no counter
    stores. *)

module View : sig
  type t

  val generation : t -> int
  (** {!Fixed_window.generation} of the source at capture. *)

  val points_seen : t -> int
  (** {!Fixed_window.points_seen} of the source at capture — compare with
      the live watermark for a staleness bound in points. *)

  val length : t -> int
  val buckets : t -> int
  val epsilon : t -> float

  val current_error : t -> float
  (** Precomputed at capture: O(1). *)

  val current_histogram : t -> Sh_histogram.Histogram.t
  (** Precomputed at capture: O(1).  Raises [Invalid_argument] on an
      empty window, like the live query. *)

  val histogram : t -> Sh_histogram.Histogram.t option
  (** {!current_histogram} without the exception: [None] iff empty. *)

  val herror : ?memo:Sh_util.Intmemo.t -> t -> k:int -> x:int -> float
  (** Approximate HERROR\[x, k\] evaluated against the view's arrays; same
      domain ([1 <= k <= buckets], [0 <= x <= length]) and same answers as
      the live {!Fixed_window.herror} at the view's generation.  [?memo]
      caches answers across calls under the live memo's packed keys; the
      table must be private to the calling domain, used with views of one
      summary only, and cleared ({!Sh_util.Intmemo.next_generation}) when
      switching to a view with a different {!generation}. *)
end

val view : t -> View.t
(** Cut a view of the current window, refreshing first if stale (so the
    view is always at the latest generation).  O(window + B log...) copy
    and precompute work, paid by the maintainer — the FEH trade: a little
    more at update time for O(1)-ish reads.  The caller owns publication;
    the summary keeps no reference to the view. *)

(** {2 Introspection} *)

type work_counters = {
  herror_evaluations : int; (** HERROR evaluations since creation (all modes) *)
  cold_evaluations : int;   (** evaluations spent in cold list rebuilds *)
  warm_evaluations : int;   (** evaluations spent in warm-start list rebuilds *)
  intervals_built : int;    (** interval-list entries created since creation *)
  refreshes : int;          (** list rebuilds performed *)
  cold_refreshes : int;     (** rebuilds that ignored the previous lists *)
  warm_refreshes : int;     (** rebuilds seeded from the previous lists *)
  search_steps : int;       (** probe steps across all binary / gallop searches
                                actually executed (memo hits skip their steps) *)
  scan_steps : int;         (** the subset of [search_steps] spent inside the
                                candidate-scan binary searches *)
  hint_hits : int;          (** boundary searches where the hinted boundary was exact *)
  hint_misses : int;        (** hinted boundary searches that had to move *)
  memo_probes : int;        (** HERROR evaluations that consulted the memo table *)
  memo_hits : int;          (** memo probes answered from the table (scan skipped) *)
}

val work_counters : t -> work_counters
(** Cumulative work counters, used by the complexity benchmarks to check
    the per-point cost grows polylogarithmically in the window length and
    by the regression tests pinning the warm-start speedup. *)

val pending_pushes : t -> int
(** Points ingested since the last refresh — the count an [Every k] policy
    compares against [k].  Introspection for the batch-bookkeeping tests. *)

val slide_since_refresh : t -> int
(** Evictions since the last refresh: how far the previous lists'
    coordinates have shifted (the warm-start hint offset). *)

val needs_refresh : t -> bool
(** Whether the interval lists are stale relative to the window. *)

val interval_counts : t -> int array
(** Number of intervals currently held per level k = 1 .. B-1; the paper
    bounds each by O((B / epsilon) log n).  Refreshes if needed. *)

val intervals : t -> k:int -> (int * float * int * float) array
(** The level-k interval list as [(a_idx, a_herror, b_idx, b_herror)]
    tuples, oldest-first.  Requires [1 <= k <= buckets - 1].  Refreshes if
    needed.  Validation hook for the warm-vs-cold equivalence tests. *)

(** {2 Persistence}

    See {!Summary_intf.S}.  Snapshots carry only parameters and the
    sliding prefix sums — O(window) bytes; {!decode} rebuilds the interval
    lists with one cold refresh, so the restored summary answers every
    query bit-identically to one that never stopped (pinned by the
    round-trip property tests). *)

val name : string
(** ["fixed_window"] — the {!Summary_intf.S} family name. *)

val encode : Buffer.t -> t -> unit
(** Append the snapshot payload (tag, params, policy, memoisation flag,
    arrival cadence, prefix-sum state).  Read-only; O(window) bytes. *)

val decode : Sh_persist.Codec.reader -> t
(** Rebuild a summary from {!encode}'s bytes: restores params and window
    state verbatim, performs one eager cold refresh, then restores the
    [Every k] arrival cadence.  Raises {!Sh_persist.Codec.Corrupt} on
    malformed input (bad tag, invalid params, inconsistent window). *)
