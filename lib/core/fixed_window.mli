(** Fixed-window data-stream histograms — Algorithm FixedWindowHistogram
    (Figure 5 of the paper), the paper's primary contribution.

    The structure maintains, over the window of the most recent [window]
    stream points, an epsilon-approximate B-bucket V-optimal histogram:
    the SSE of the produced histogram is within a (1 + epsilon) factor of
    the optimum for that window (Theorem 1), at
    O((B^3 / epsilon^2) log^3 n) work per data point.

    Per arrival the algorithm rebuilds, level by level, B - 1 lists of
    intervals that cover the window and approximate the prefix-error
    function HERROR\[., k\] to within a (1 + delta) factor per interval
    (delta = epsilon / 2B).  Each list is built by the [CreateList]
    binary-search procedure, touching only O((B / epsilon) log^2 n) window
    positions rather than all n — the paper's key idea.  Sliding prefix
    sums (SUM', SQSUM' of Section 4.5) make every SQERROR evaluation O(1).

    {2 Maintenance modes}

    {!push} is cheap: it only advances the window and its prefix sums.  The
    interval lists are (re)built lazily by the first query after a push, or
    eagerly by {!refresh} / {!push_and_refresh} — the latter matches the
    paper's cost model of doing the full per-point work on every arrival. *)

type t

val create : window:int -> buckets:int -> epsilon:float -> t
(** A maintainer for the last [window] points with [buckets] buckets and
    precision [epsilon].  Raises [Invalid_argument] on non-positive
    arguments. *)

val create_with_delta : window:int -> buckets:int -> epsilon:float -> delta:float -> t
(** Like {!create} with an explicit interval slack (ablation hook). *)

val window : t -> int
val buckets : t -> int
val epsilon : t -> float
val length : t -> int
(** Points currently in the window ([<= window]). *)

val push : t -> float -> unit
(** Ingest the next stream point (evicting the oldest once the window is
    full) without rebuilding the interval lists. *)

val push_batch : t -> float array -> unit
(** Batched arrivals (footnote 2 of the paper): ingest many points with a
    single deferred list rebuild.  Equivalent to pushing each point, but
    makes the batch cost explicit: O(batch) plus one refresh at the next
    query. *)

val refresh : t -> unit
(** Rebuild the interval lists for the current window contents; no-op when
    they are already current. *)

val push_and_refresh : t -> float -> unit
(** [push] then [refresh]: the paper's per-point maintenance. *)

val current_error : t -> float
(** The approximate HERROR\[n, B\] for the current window: an upper bound
    on the SSE of {!current_histogram} target that is within (1 + epsilon)
    of the optimal B-bucket SSE.  Refreshes if needed. *)

val current_histogram : t -> Sh_histogram.Histogram.t
(** The epsilon-approximate histogram of the current window, with indices
    1..{!length} (1 = oldest point in the window).  Bucket values are exact
    range means.  Refreshes if needed.  Raises [Invalid_argument] on an
    empty window. *)

val herror : t -> k:int -> x:int -> float
(** Approximate HERROR\[x, k\]: the error of summarising the oldest [x]
    window points with [k] buckets.  Requires [1 <= k <= buckets] and
    [0 <= x <= length]; levels below [buckets] read the interval lists,
    which are refreshed if needed.  Exposed for validation against the
    exact dynamic program. *)

(** {2 Introspection} *)

type work_counters = {
  herror_evaluations : int; (** HERROR evaluations since creation *)
  intervals_built : int;    (** interval-list entries created since creation *)
  refreshes : int;          (** list rebuilds performed *)
}

val work_counters : t -> work_counters
(** Cumulative work counters, used by the complexity benchmarks to check
    the per-point cost grows polylogarithmically in the window length. *)

val interval_counts : t -> int array
(** Number of intervals currently held per level k = 1 .. B-1; the paper
    bounds each by O((B / epsilon) log n).  Refreshes if needed. *)
