module FW = Fixed_window

type entry = { key : int; fw : FW.t; view : FW.View.t }
type t = { entries : entry array } (* strictly increasing [key] *)

let empty = { entries = [||] }
let cardinal g = Array.length g.entries
let keys g = Array.map (fun e -> e.key) g.entries

let geometry_of e = (FW.window e.fw, FW.buckets e.fw, FW.epsilon e.fw)

let of_summaries ~base fws =
  if base < 0 then invalid_arg "Fw_group.of_summaries: negative base key";
  (match Array.length fws with
  | 0 -> ()
  | _ ->
    let w = FW.window fws.(0)
    and b = FW.buckets fws.(0)
    and e = FW.epsilon fws.(0) in
    Array.iter
      (fun fw ->
        if FW.window fw <> w || FW.buckets fw <> b || FW.epsilon fw <> e then
          Summary_intf.merge_incompatiblef
            "Fw_group.of_summaries: mixed geometry (window %d buckets %d \
             epsilon %g vs window %d buckets %d epsilon %g)"
            (FW.window fw) (FW.buckets fw) (FW.epsilon fw) w b e)
      fws);
  { entries = Array.mapi (fun i fw -> { key = base + i; fw; view = FW.view fw }) fws }

(* Disjoint union: a sorted two-pointer merge of the entry arrays.  The
   per-key summaries travel verbatim — there is no error composition to
   account for — so merging only has to police geometry and key
   disjointness. *)
let merge a b =
  if Array.length a.entries = 0 then { entries = b.entries }
  else if Array.length b.entries = 0 then { entries = a.entries }
  else begin
    let wa, ba, ea = geometry_of a.entries.(0)
    and wb, bb, eb = geometry_of b.entries.(0) in
    if wa <> wb || ba <> bb || ea <> eb then
      Summary_intf.merge_incompatiblef
        "Fw_group.merge: geometry differs (window %d/%d, buckets %d/%d, \
         epsilon %g/%g)"
        wa wb ba bb ea eb;
    let la = Array.length a.entries and lb = Array.length b.entries in
    let out = Array.make (la + lb) a.entries.(0) in
    let i = ref 0 and j = ref 0 in
    for k = 0 to la + lb - 1 do
      let take_a =
        if !i >= la then false
        else if !j >= lb then true
        else begin
          let x = a.entries.(!i) and y = b.entries.(!j) in
          if x.key = y.key then
            Summary_intf.merge_incompatiblef "Fw_group.merge: overlapping key %d"
              x.key;
          x.key < y.key
        end
      in
      if take_a then begin
        out.(k) <- a.entries.(!i);
        incr i
      end
      else begin
        out.(k) <- b.entries.(!j);
        incr j
      end
    done;
    { entries = out }
  end

module _ : Summary_intf.Mergeable with type t := t = struct
  let merge = merge
end

let find g key =
  let rec go lo hi =
    if lo > hi then None
    else begin
      let mid = (lo + hi) / 2 in
      let e = g.entries.(mid) in
      if e.key = key then Some e.view
      else if e.key < key then go (mid + 1) hi
      else go lo (mid - 1)
    end
  in
  go 0 (Array.length g.entries - 1)

let eval_global g q =
  Array.fold_left (fun acc e -> acc +. Query_op.eval_view e.view q) 0.0 g.entries
