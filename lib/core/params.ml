type refresh_policy = Eager | Lazy | Every of int

let validate_policy = function
  | Every k when k < 1 -> invalid_arg "Params: Every period must be >= 1"
  | p -> p

let policy_to_string = function
  | Eager -> "eager"
  | Lazy -> "lazy"
  | Every k -> Printf.sprintf "every:%d" k

let policy_of_string s =
  match String.lowercase_ascii s with
  | "eager" -> Some Eager
  | "lazy" -> Some Lazy
  | s ->
    (match String.index_opt s ':' with
    | Some i when String.sub s 0 i = "every" ->
      (match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some k when k >= 1 -> Some (Every k)
      | _ -> None)
    | _ -> None)

type t = { buckets : int; epsilon : float; delta : float; policy : refresh_policy }

let make_with_delta ~buckets ~epsilon ~delta =
  if buckets < 1 then invalid_arg "Params: buckets must be >= 1";
  if epsilon <= 0.0 then invalid_arg "Params: epsilon must be > 0";
  if delta <= 0.0 then invalid_arg "Params: delta must be > 0";
  { buckets; epsilon; delta; policy = Lazy }

let make ~buckets ~epsilon =
  make_with_delta ~buckets ~epsilon ~delta:(epsilon /. (2.0 *. Float.of_int buckets))

let with_policy t policy = { t with policy = validate_policy policy }
