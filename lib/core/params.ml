type t = { buckets : int; epsilon : float; delta : float }

let make_with_delta ~buckets ~epsilon ~delta =
  if buckets < 1 then invalid_arg "Params: buckets must be >= 1";
  if epsilon <= 0.0 then invalid_arg "Params: epsilon must be > 0";
  if delta <= 0.0 then invalid_arg "Params: delta must be > 0";
  { buckets; epsilon; delta }

let make ~buckets ~epsilon =
  make_with_delta ~buckets ~epsilon ~delta:(epsilon /. (2.0 *. Float.of_int buckets))
