(** Agglomerative data-stream histograms — Algorithm AgglomerativeHistogram
    (Figure 3 of the paper, from Guha, Koudas & Shim \[GKS01\]).

    Maintains an epsilon-approximate B-bucket V-optimal histogram of the
    {e entire} stream seen so far, in one pass and small space:
    O((B^2 / epsilon) log n) stored interval entries, O((B^2 / epsilon)
    log n) amortised work per point.

    Per level k = 1 .. B-1 the algorithm keeps a queue of intervals over
    the stream indices; within an interval the prefix-error HERROR\[., k\]
    grows by at most a (1 + delta) factor (delta = epsilon / 2B).  Each
    queue entry stores the running prefix sums at its endpoint, so bucket
    errors between endpoints cost O(1) — the structure never retains the
    data itself. *)

type t

val create : buckets:int -> epsilon:float -> t
(** Whole-stream maintainer: no window bound ({!window} reports
    [max_int]). *)

val create_with_delta : buckets:int -> epsilon:float -> delta:float -> t

val create_windowed : window:int -> buckets:int -> epsilon:float -> t
(** {!Summary_intf.S}-shaped constructor: records [window] as the nominal
    horizon reported by {!window}.  The GKS01 algorithm itself is
    inherently whole-stream — the horizon is parameter parity, not an
    eviction policy.  [window >= 1]. *)

val buckets : t -> int
val epsilon : t -> float

val window : t -> int
(** Nominal horizon: the [window] given to {!create_windowed}, [max_int]
    for summaries from {!create}. *)

val count : t -> int
(** Number of stream points ingested so far (the paper's N). *)

val length : t -> int
(** Alias of {!count} ({!Summary_intf.S} parity). *)

val push : t -> float -> unit
(** Process the next stream point: lines 1-11 of Figure 3. *)

val current_error : t -> float
(** Approximate HERROR\[N, B\]: within (1 + epsilon) of the optimal
    B-bucket SSE of the whole stream so far.  O(queue length).  Returns
    [0.] before any point arrives. *)

val current_histogram : t -> Sh_histogram.Histogram.t
(** The epsilon-approximate histogram of the stream so far, indices
    1..{!count}.  Bucket values are exact range means recovered from the
    prefix sums stored at interval endpoints.  Raises [Invalid_argument]
    when empty. *)

val space_in_entries : t -> int
(** Total interval entries across all queues — the space-bound check for
    the O((B^2 / epsilon) log n) claim. *)

val interval_counts : t -> int array
(** Entries per level k = 1 .. B-1. *)

(** {2 Introspection} *)

type work_counters = {
  pushes : int;  (** stream points ingested *)
  candidate_evaluations : int;
      (** level-(k-1) queue entries examined across all per-push HERROR
          minimisations — the algorithm's dominant cost term *)
  intervals_built : int;  (** queue entries created *)
  intervals_extended : int;
      (** pushes absorbed by extending an existing interval in place *)
}

val work_counters : t -> work_counters
(** Cumulative per-instance work accounting, backed by the shared
    {!Sh_obs} registry (series [ag.*{instance="ag<i>"}]) — the
    agglomerative counterpart of [Fixed_window.work_counters]. *)

(** {2 Merging} *)

val merge : t -> t -> t
(** [merge a b] summarises the {e concatenation} of the two streams ([a]'s
    points then [b]'s), leaving both operands untouched: [a]'s interval
    queues are kept verbatim, [b]'s are shifted into the concatenated
    index space with prefix errors recomputed level by level.  Error
    factors multiply, so the result carries
    [epsilon = eps_a +. eps_b +. eps_a *. eps_b] (and the larger delta).

    Accuracy: [current_error] never drops below the concatenated
    stream's true optimum (every recomputed value minimises an exact
    bucket cost over candidates whose prefix values already
    upper-bound their optima), and for operands past a few dozen
    points it stays within the multiplied per-operand factors of that
    optimum (pinned against the exact V-optimal oracle by qcheck in
    [test_agg]).  The factor bound is {e not} unconditional: on tiny
    operands (roughly under 4B points each) the (1 + delta) pruning
    can collapse equal-error prefixes so aggressively that no retained
    candidate lands near the splice point, and the bucket spanning it
    overshoots the multiplied factors — observed up to ~12x optimal at
    4-12 points per operand, gone by 16.  Merge summaries, not
    samples.

    Merging with an empty summary returns a copy whose answers are
    bit-identical to the non-empty operand's.  Raises
    {!Summary_intf.Merge_incompatible} when the bucket budgets differ. *)

(** {2 Persistence} *)

val name : string
(** ["agglomerative"] — the {!Summary_intf.S} family name. *)

val encode : Buffer.t -> t -> unit
(** Append the snapshot payload: params, horizon, running prefix sums, and
    every queue entry verbatim (the [herr] per-push scratch is rebuilt by
    the next push).  Read-only. *)

val decode : Sh_persist.Codec.reader -> t
(** Rebuild a summary from {!encode}'s bytes, bit-identical: subsequent
    pushes, errors, and histograms match an uninterrupted run exactly.
    Raises {!Sh_persist.Codec.Corrupt} on malformed input (non-finite
    sums, out-of-order queue entries, bad params). *)

module Summary : Summary_intf.S with type t = t
(** The {!Summary_intf.S} view: [Summary.create] is {!create_windowed},
    [Summary.length] is {!count}; everything else is the primary API. *)
