(** Agglomerative data-stream histograms — Algorithm AgglomerativeHistogram
    (Figure 3 of the paper, from Guha, Koudas & Shim \[GKS01\]).

    Maintains an epsilon-approximate B-bucket V-optimal histogram of the
    {e entire} stream seen so far, in one pass and small space:
    O((B^2 / epsilon) log n) stored interval entries, O((B^2 / epsilon)
    log n) amortised work per point.

    Per level k = 1 .. B-1 the algorithm keeps a queue of intervals over
    the stream indices; within an interval the prefix-error HERROR\[., k\]
    grows by at most a (1 + delta) factor (delta = epsilon / 2B).  Each
    queue entry stores the running prefix sums at its endpoint, so bucket
    errors between endpoints cost O(1) — the structure never retains the
    data itself. *)

type t

val create : buckets:int -> epsilon:float -> t
val create_with_delta : buckets:int -> epsilon:float -> delta:float -> t

val buckets : t -> int
val epsilon : t -> float

val count : t -> int
(** Number of stream points ingested so far (the paper's N). *)

val push : t -> float -> unit
(** Process the next stream point: lines 1-11 of Figure 3. *)

val current_error : t -> float
(** Approximate HERROR\[N, B\]: within (1 + epsilon) of the optimal
    B-bucket SSE of the whole stream so far.  O(queue length).  Returns
    [0.] before any point arrives. *)

val current_histogram : t -> Sh_histogram.Histogram.t
(** The epsilon-approximate histogram of the stream so far, indices
    1..{!count}.  Bucket values are exact range means recovered from the
    prefix sums stored at interval endpoints.  Raises [Invalid_argument]
    when empty. *)

val space_in_entries : t -> int
(** Total interval entries across all queues — the space-bound check for
    the O((B^2 / epsilon) log n) claim. *)

val interval_counts : t -> int array
(** Entries per level k = 1 .. B-1. *)

(** {2 Introspection} *)

type work_counters = {
  pushes : int;  (** stream points ingested *)
  candidate_evaluations : int;
      (** level-(k-1) queue entries examined across all per-push HERROR
          minimisations — the algorithm's dominant cost term *)
  intervals_built : int;  (** queue entries created *)
  intervals_extended : int;
      (** pushes absorbed by extending an existing interval in place *)
}

val work_counters : t -> work_counters
(** Cumulative per-instance work accounting, backed by the shared
    {!Sh_obs} registry (series [ag.*{instance="ag<i>"}]) — the
    agglomerative counterpart of [Fixed_window.work_counters]. *)
