(** Shared parameter handling for the streaming histogram algorithms. *)

type t = private {
  buckets : int;  (** B, the space budget in buckets; >= 1 *)
  epsilon : float;(** the approximation precision; > 0 *)
  delta : float;  (** the per-level interval slack, epsilon / (2 B) as in the paper *)
}

val make : buckets:int -> epsilon:float -> t
(** Validates and derives [delta = epsilon /. (2. *. buckets)].
    Raises [Invalid_argument] on non-positive arguments. *)

val make_with_delta : buckets:int -> epsilon:float -> delta:float -> t
(** Same, but with an explicit [delta] — used by the delta-split ablation
    benchmark to decouple the interval slack from epsilon. *)
