(** Shared parameter handling for the streaming histogram algorithms. *)

type refresh_policy =
  | Eager        (** rebuild the interval lists on every arrival (paper cost model) *)
  | Lazy         (** never rebuild on arrival; the first query rebuilds *)
  | Every of int (** rebuild on every k-th arrival; queries still force a rebuild *)
(** When the fixed-window maintainer rebuilds its interval lists relative to
    arrivals.  Queries ([current_error] / [current_histogram] / [herror])
    always see fresh lists regardless of the policy. *)

val policy_to_string : refresh_policy -> string
(** ["eager"], ["lazy"], or ["every:<k>"] — the CLI / report spelling. *)

val policy_of_string : string -> refresh_policy option
(** Inverse of {!policy_to_string}; [None] on anything else. *)

type t = private {
  buckets : int;  (** B, the space budget in buckets; >= 1 *)
  epsilon : float;(** the approximation precision; > 0 *)
  delta : float;  (** the per-level interval slack, epsilon / (2 B) as in the paper *)
  policy : refresh_policy; (** arrival-time rebuild policy; [Lazy] unless {!with_policy}d *)
}

val make : buckets:int -> epsilon:float -> t
(** Validates and derives [delta = epsilon /. (2. *. buckets)].
    Raises [Invalid_argument] on non-positive arguments. *)

val make_with_delta : buckets:int -> epsilon:float -> delta:float -> t
(** Same, but with an explicit [delta] — used by the delta-split ablation
    benchmark to decouple the interval slack from epsilon. *)

val with_policy : t -> refresh_policy -> t
(** A copy with the given refresh policy.  Raises [Invalid_argument] on
    [Every k] with [k < 1]. *)
