module Obs = Sh_obs.Obs
module M = Sh_obs.Metric
module C = Sh_persist.Codec
module Frame = Sh_persist.Frame
module P = Sh_persist.Persist

(* Signature conformance proofs: breaking any summary away from the shared
   interface is a compile error here, not a drift discovered later. *)
module _ : Summary_intf.S with type t = Fixed_window.t = Fixed_window
module _ : Summary_intf.S with type t = Exact_window.t = Exact_window
module _ : Summary_intf.S with type t = Agglomerative.t = Agglomerative.Summary

module Make (S : Summary_intf.Persistable) = struct
  let payload t =
    let buf = Buffer.create 256 in
    S.encode buf t;
    Buffer.contents buf

  let snapshot t =
    Obs.with_span "persist.snapshot" @@ fun () ->
    let buf = Buffer.create 256 in
    Frame.add_header buf;
    Frame.add_frame buf (payload t);
    M.incr P.c_snapshots;
    Buffer.contents buf

  let restore s =
    Obs.with_span "persist.restore" @@ fun () ->
    P.rejecting @@ fun () ->
    let r = C.of_string s in
    Frame.read_header r;
    let fr = Frame.read_frame r in
    let t = S.decode fr in
    C.expect_end fr ~what:(S.name ^ " payload");
    C.expect_end r ~what:(S.name ^ " snapshot");
    M.incr P.c_restores;
    t

  let save t ~file =
    Obs.with_span "persist.snapshot" @@ fun () ->
    P.write_file_atomic ~path:file ~header:(Frame.header_string ())
      ~frames:[ Frame.frame_string (payload t) ];
    M.incr P.c_snapshots

  let load ~file = restore (P.read_file file)
end

module Fixed_window = Make (Fixed_window)
module Exact_window = Make (Exact_window)
module Agglomerative = Make (Agglomerative)
