(** The shared shape of a streaming summary: what every maintainer in this
    repository looks like to generic code (the {!Snapshot} functor, the
    durability tests, benchmark drivers).

    Conformance (checked by [module _ : S = ...] proofs in [Snapshot]):
    - {!Fixed_window} — the paper's sliding-window maintainer, directly;
    - {!Exact_window} — the exact DP baseline ([epsilon] recorded only);
    - {!Agglomerative} — via its [Summary] submodule (the primary API keeps
      the historical whole-stream [create] without a window).

    Convention pinned by this interface: [create] takes mandatory labelled
    geometry and nothing else — no trailing [unit], no optional arguments
    (OCaml cannot erase an optional that is followed only by labels, which
    is what the old trailing units worked around).  Optional knobs live in
    explicitly named variants ([create_with_delta], [create_rebasing]) or
    post-creation setters ([set_refresh_policy]). *)

exception Merge_incompatible of string
(** Raised by {!Mergeable.merge} when two summaries cannot be combined —
    mismatched bucket budgets, mismatched window geometry, overlapping key
    ranges.  A concrete exception (not part of the signature) so every
    implementation raises the {e same} constructor and generic aggregation
    code can catch one thing. *)

let merge_incompatiblef fmt =
  Printf.ksprintf (fun s -> raise (Merge_incompatible s)) fmt

module type Mergeable = sig
  type t

  val merge : t -> t -> t
  (** [merge a b] is a summary of [a]'s stream combined with [b]'s,
      leaving both operands untouched.  What "combined" means, and how the
      approximation error composes, is per-implementation and documented
      there:

      - {!Agglomerative} — stream concatenation ([a]'s points then [b]'s);
        error factors multiply: [eps = eps_a + eps_b + eps_a * eps_b].
      - [Sh_quantile.Gk] — stream union (order-free); rank error adds:
        at most [eps_a * n_a + eps_b * n_b], within [max eps_a eps_b] of
        the merged count.
      - {!Fw_group} — disjoint-key-range union; no error composition at
        all (per-key summaries are untouched), overlap raises.

      Identity: merging with an empty summary returns a summary whose
      answers are bit-identical to the non-empty operand's.  Raises
      {!Merge_incompatible} when the operands' geometry cannot combine. *)
end

module type Persistable = sig
  type t

  val name : string
  (** Family name used in error messages and benchmark labels. *)

  val encode : Buffer.t -> t -> unit
  (** Append the snapshot payload for {!decode}.  Must be read-only: a
      snapshot taken mid-stream leaves the summary untouched. *)

  val decode : Sh_persist.Codec.reader -> t
  (** Rebuild a summary from {!encode}'s bytes.  Raises
      {!Sh_persist.Codec.Corrupt} on malformed input; must consume the
      payload exactly (the caller checks for trailing bytes). *)
end

module type S = sig
  include Persistable

  val create : window:int -> buckets:int -> epsilon:float -> t
  (** Empty summary for a window of [window] points, a space budget of
      [buckets], and precision [epsilon].  Raises [Invalid_argument] on
      out-of-range geometry. *)

  val window : t -> int
  val buckets : t -> int
  val epsilon : t -> float

  val length : t -> int
  (** Points currently summarised ([<= window t] for bounded windows). *)

  val push : t -> float -> unit
  (** Ingest the next stream value.  Raises [Invalid_argument] on a
      non-finite value — NaN would silently poison the prefix sums. *)

  val current_error : t -> float
  val current_histogram : t -> Sh_histogram.Histogram.t
end
