(** The shared shape of a streaming summary: what every maintainer in this
    repository looks like to generic code (the {!Snapshot} functor, the
    durability tests, benchmark drivers).

    Conformance (checked by [module _ : S = ...] proofs in [Snapshot]):
    - {!Fixed_window} — the paper's sliding-window maintainer, directly;
    - {!Exact_window} — the exact DP baseline ([epsilon] recorded only);
    - {!Agglomerative} — via its [Summary] submodule (the primary API keeps
      the historical whole-stream [create] without a window).

    Convention pinned by this interface: [create] takes mandatory labelled
    geometry and nothing else — no trailing [unit], no optional arguments
    (OCaml cannot erase an optional that is followed only by labels, which
    is what the old trailing units worked around).  Optional knobs live in
    explicitly named variants ([create_with_delta], [create_rebasing]) or
    post-creation setters ([set_refresh_policy]). *)

module type Persistable = sig
  type t

  val name : string
  (** Family name used in error messages and benchmark labels. *)

  val encode : Buffer.t -> t -> unit
  (** Append the snapshot payload for {!decode}.  Must be read-only: a
      snapshot taken mid-stream leaves the summary untouched. *)

  val decode : Sh_persist.Codec.reader -> t
  (** Rebuild a summary from {!encode}'s bytes.  Raises
      {!Sh_persist.Codec.Corrupt} on malformed input; must consume the
      payload exactly (the caller checks for trailing bytes). *)
end

module type S = sig
  include Persistable

  val create : window:int -> buckets:int -> epsilon:float -> t
  (** Empty summary for a window of [window] points, a space budget of
      [buckets], and precision [epsilon].  Raises [Invalid_argument] on
      out-of-range geometry. *)

  val window : t -> int
  val buckets : t -> int
  val epsilon : t -> float

  val length : t -> int
  (** Points currently summarised ([<= window t] for bounded windows). *)

  val push : t -> float -> unit
  (** Ingest the next stream value.  Raises [Invalid_argument] on a
      non-finite value — NaN would silently poison the prefix sums. *)

  val current_error : t -> float
  val current_histogram : t -> Sh_histogram.Histogram.t
end
