(** The naive fixed-window baseline of Section 3 of the paper: keep the
    raw window in a circular buffer and run the optimal O(n^2 B) dynamic
    program on it whenever a histogram is needed ("a naive application of
    the optimal histogram construction algorithm to each subsequence").

    This is the "Exact" series of Figure 6: the quality ceiling the
    streaming algorithm approximates, at a per-query cost that is
    quadratic in the window length. *)

type t

val create : window:int -> buckets:int -> epsilon:float -> t
(** The DP is exact, so [epsilon] never changes a result; it is recorded
    (finite, [>= 0] — pass [0.0] for "exact") so the baseline presents the
    same {!Summary_intf.S} parameter surface as the approximate
    maintainers.  Raises [Invalid_argument] on bad geometry. *)

val window : t -> int
val buckets : t -> int

val epsilon : t -> float
(** The recorded nominal precision (accessor parity; never used by the DP). *)

val length : t -> int

val push : t -> float -> unit
(** O(1): append to the circular buffer.  Raises [Invalid_argument] on a
    non-finite value. *)

val current_histogram : t -> Sh_histogram.Histogram.t
(** Optimal B-bucket histogram of the current window, recomputed from
    scratch: O(n^2 B).  Raises [Invalid_argument] on an empty window. *)

val current_error : t -> float
(** The optimal SSE itself.  Raises [Invalid_argument] on an empty window. *)

(** {2 Persistence} *)

val name : string
(** ["exact_window"] — the {!Summary_intf.S} family name. *)

val encode : Buffer.t -> t -> unit
(** Append the snapshot payload (tag, params, raw ring buffer); read-only. *)

val decode : Sh_persist.Codec.reader -> t
(** Rebuild a baseline from {!encode}'s bytes — the ring is restored
    verbatim, queries re-run the exact DP as always.  Raises
    {!Sh_persist.Codec.Corrupt} on malformed input. *)
