(** The naive fixed-window baseline of Section 3 of the paper: keep the
    raw window in a circular buffer and run the optimal O(n^2 B) dynamic
    program on it whenever a histogram is needed ("a naive application of
    the optimal histogram construction algorithm to each subsequence").

    This is the "Exact" series of Figure 6: the quality ceiling the
    streaming algorithm approximates, at a per-query cost that is
    quadratic in the window length. *)

type t

val create : window:int -> buckets:int -> t

val window : t -> int
val buckets : t -> int
val length : t -> int

val push : t -> float -> unit
(** O(1): append to the circular buffer. *)

val current_histogram : t -> Sh_histogram.Histogram.t
(** Optimal B-bucket histogram of the current window, recomputed from
    scratch: O(n^2 B).  Raises [Invalid_argument] on an empty window. *)

val current_error : t -> float
(** The optimal SSE itself. *)
