module Sliding_prefix = Sh_prefix.Sliding_prefix
module Histogram = Sh_histogram.Histogram
module Vec = Sh_util.Vec
module Obs = Sh_obs.Obs
module M = Sh_obs.Metric

(* One interval [a_idx .. b_idx] of a level-k list.  Within the interval the
   (non-decreasing) function HERROR[., k] varies by at most a (1 + delta)
   factor: herror values are stored at both ends, and candidates are
   evaluated at right endpoints only (Section 4.2.1 of the paper). *)
type entry = { a_idx : int; a_herror : float; b_idx : int; b_herror : float }

type work_counters = {
  herror_evaluations : int;
  cold_evaluations : int;
  warm_evaluations : int;
  intervals_built : int;
  refreshes : int;
  cold_refreshes : int;
  warm_refreshes : int;
  search_steps : int;
  hint_hits : int;
  hint_misses : int;
}

(* Which activity an HERROR evaluation is charged to: list rebuilds with /
   without warm-start hints, or query-time reads. *)
type mode = Cold_rebuild | Warm_rebuild | Query

type t = {
  params : Params.t;
  sp : Sliding_prefix.t;
  (* Double buffer: [queues.(k-1)] holds the level-k list for the window as
     of the last refresh; [prev_queues.(k-1)] the one before, kept so warm
     rebuilds can seed boundary searches from the previous boundaries.  The
     two arrays are swapped at every refresh instead of reallocating. *)
  mutable queues : entry Vec.t array;
  mutable prev_queues : entry Vec.t array;
  mutable dirty : bool;
  mutable policy : Params.refresh_policy;
  mutable slide : int; (* evictions since the last refresh: how far the
                          prev_queues coordinates have shifted *)
  mutable pushes_since_refresh : int;
  mutable mode : mode;
  (* Work accounting lives in per-instance registry counters (labelled
     instance="fw<i>") so the same tallies back work_counters, the
     exposition sinks, and per-span deltas.  The handles are registered
     once at creation; recording is a single int store, unconditionally
     live (see Sh_obs.Obs on the overhead model). *)
  c_evals : M.counter;
  c_cold_evals : M.counter;
  c_warm_evals : M.counter;
  c_built : M.counter;
  c_refreshes : M.counter;
  c_cold_refreshes : M.counter;
  c_warm_refreshes : M.counter;
  c_steps : M.counter;
  c_hits : M.counter;
  c_misses : M.counter;
  g_length : M.gauge;
}

let create_with_delta ~window ~buckets ~epsilon ~delta =
  let params = Params.make_with_delta ~buckets ~epsilon ~delta in
  if window < 1 then invalid_arg "Fixed_window.create: window must be >= 1";
  let labels = [ ("instance", Obs.instance "fw") ] in
  let c name = Obs.counter ~labels name in
  {
    params;
    sp = Sliding_prefix.create ~capacity:window ();
    queues = Array.init (max 1 (buckets - 1)) (fun _ -> Vec.create ());
    prev_queues = Array.init (max 1 (buckets - 1)) (fun _ -> Vec.create ());
    dirty = true;
    policy = params.Params.policy;
    slide = 0;
    pushes_since_refresh = 0;
    mode = Query;
    c_evals = c "fw.herror_evals";
    c_cold_evals = c "fw.cold_evals";
    c_warm_evals = c "fw.warm_evals";
    c_built = c "fw.intervals_built";
    c_refreshes = c "fw.refreshes";
    c_cold_refreshes = c "fw.cold_refreshes";
    c_warm_refreshes = c "fw.warm_refreshes";
    c_steps = c "fw.search_steps";
    c_hits = c "fw.hint_hits";
    c_misses = c "fw.hint_misses";
    g_length = Obs.gauge ~labels "fw.window_length";
  }

let create ~window ~buckets ~epsilon =
  create_with_delta ~window ~buckets ~epsilon
    ~delta:(epsilon /. (2.0 *. Float.of_int buckets))

let window t = Sliding_prefix.capacity t.sp
let buckets t = t.params.Params.buckets
let epsilon t = t.params.Params.epsilon
let length t = Sliding_prefix.length t.sp
let refresh_policy t = t.policy
let pending_pushes t = t.pushes_since_refresh
let slide_since_refresh t = t.slide
let needs_refresh t = t.dirty

let set_refresh_policy t policy =
  (* Reuse the Params validation (rejects [Every k] with k < 1). *)
  t.policy <- (Params.with_policy t.params policy).Params.policy

let count_eval t =
  M.incr t.c_evals;
  match t.mode with
  | Cold_rebuild -> M.incr t.c_cold_evals
  | Warm_rebuild -> M.incr t.c_warm_evals
  | Query -> ()

(* Candidate scan shared by [eval_herror] and [best_split]: the approximate
   HERROR[x, k] for the current window, read off the level-(k-1) list, with
   the split position achieving it.  Requires k >= 2 and k < x.

   Candidates are the objective evaluated at list endpoints b < x, plus —
   when the interval covering x-1 extends to or past x — that interval's
   endpoint herror standing in for the "split at x-1" candidate
   (monotonicity makes it an upper bound on HERROR[x-1, k-1], and the
   interval invariant keeps it within (1 + delta) of it).

   Both ends of the scan are pruned by binary search instead of walking the
   list from entry 0: the covering entry is located directly on the sorted
   b_idx field, and — seeding the running best with its proxy candidate —
   entries whose SQERROR term alone already reaches that bound are skipped
   (SQERROR(b+1, x) only shrinks along the list, so they form a prefix). *)
let scan_candidates t ~k ~x =
  let q = t.queues.(k - 2) in
  let len = Vec.length q in
  let steps = ref 0 in
  let cover = Vec.binary_search q ~f:(fun e -> incr steps; e.b_idx >= x) in
  let best = ref infinity in
  let best_i = ref (x - 1) in
  (if cover < len then begin
     let e = Vec.get q cover in
     if e.a_idx <= x - 1 then begin
       best := e.b_herror;
       best_i := x - 1
     end
   end);
  let first =
    if cover = 0 || !best = infinity then 0
    else
      Vec.binary_search q ~lo:0 ~hi:cover ~f:(fun e ->
          incr steps;
          Sliding_prefix.sqerror t.sp ~lo:(e.b_idx + 1) ~hi:x < !best)
  in
  M.add t.c_steps !steps;
  let i = ref first in
  let continue = ref true in
  while !continue && !i < cover do
    let e = Vec.get q !i in
    (* Early exit: stored herror values are non-decreasing along the list,
       so once one alone reaches the current best, no later candidate
       (herror + non-negative SQERROR) can improve it. *)
    if e.b_herror >= !best then continue := false
    else begin
      let cand = e.b_herror +. Sliding_prefix.sqerror t.sp ~lo:(e.b_idx + 1) ~hi:x in
      if cand < !best then begin
        best := cand;
        best_i := e.b_idx
      end;
      incr i
    end
  done;
  (!best, !best_i)

(* Approximate HERROR[x, k] for the current window. *)
let eval_herror t ~k ~x =
  count_eval t;
  if x <= 0 then 0.0
  else if k >= x then 0.0 (* x points in >= x buckets: zero error *)
  else if k = 1 then Sliding_prefix.sqerror t.sp ~lo:1 ~hi:x
  else begin
    let best, _ = scan_candidates t ~k ~x in
    if best = infinity then 0.0 else best
  end

(* Largest c in [start, hi] with HERROR[c, k] <= threshold, and its herror.
   HERROR[., k] is non-decreasing in x, and the predicate holds at [start]
   (its herror defines the threshold), so the boundary is well defined and
   any bracketing strategy finds the same c.  Without a hint this is the
   plain binary search of CreateList (Figure 5); with one, a gallop outward
   from the hinted position brackets the boundary in O(log distance)
   evaluations — a near-perfect hint (the common case between consecutive
   arrivals) costs O(1) instead of O(log n). *)
let find_boundary t ~k ~start ~hi ~threshold ~h_start ~hint =
  let probe x =
    M.incr t.c_steps;
    eval_herror t ~k ~x
  in
  (* Largest good position in [lo, hi]; [h_lo] is HERROR[lo, k]. *)
  let bisect ~lo ~h_lo ~hi =
    let lo = ref lo and hi = ref hi and h = ref h_lo in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      let hm = probe mid in
      if hm <= threshold then begin
        lo := mid;
        h := hm
      end
      else hi := mid - 1
    done;
    (!lo, !h)
  in
  match hint with
  | None -> bisect ~lo:start ~h_lo:h_start ~hi
  | Some g0 ->
    let g = max start (min hi g0) in
    let h_g = if g = start then h_start else probe g in
    let c, h_c =
      if h_g <= threshold then begin
        (* Boundary at or past g: gallop right for the first bad position. *)
        let off = ref 1 and lo = ref g and h_lo = ref h_g and bad = ref (-1) in
        while !bad < 0 && g + !off <= hi do
          let p = g + !off in
          let hp = probe p in
          if hp <= threshold then begin
            lo := p;
            h_lo := hp;
            off := 2 * !off
          end
          else bad := p
        done;
        bisect ~lo:!lo ~h_lo:!h_lo ~hi:(if !bad < 0 then hi else !bad - 1)
      end
      else begin
        (* Boundary strictly before g: gallop left for a good position. *)
        let off = ref 1 and bad = ref g and lo = ref (-1) and h_lo = ref h_start in
        while !lo < 0 && g - !off > start do
          let p = g - !off in
          let hp = probe p in
          if hp <= threshold then begin
            lo := p;
            h_lo := hp
          end
          else begin
            bad := p;
            off := 2 * !off
          end
        done;
        let lo, h_lo = if !lo < 0 then (start, h_start) else (!lo, !h_lo) in
        bisect ~lo ~h_lo ~hi:(!bad - 1)
      end
    in
    if c = g0 then M.incr t.c_hits else M.incr t.c_misses;
    (c, h_c)

(* CreateList (Figure 5): cover [1 .. n] with maximal intervals whose
   HERROR[., k] spread stays within (1 + delta).  A warm rebuild seeds each
   boundary search from the previous refresh's boundary over the same
   stream points (the prev_queues entry covering this interval's start,
   shifted back by the window slide); the search result is independent of
   the seed, so warm and cold rebuilds produce identical lists. *)
let create_list t ~k ~warm =
  let q = t.queues.(k - 1) in
  Vec.clear q;
  let n = length t in
  let delta = t.params.Params.delta in
  let prev = t.prev_queues.(k - 1) in
  let plen = if warm then Vec.length prev else 0 in
  let slide = t.slide in
  let pcur = ref 0 in
  let a = ref 1 in
  while !a <= n do
    let start = !a in
    if start = n then begin
      let h = eval_herror t ~k ~x:start in
      Vec.push q { a_idx = start; a_herror = h; b_idx = start; b_herror = h };
      M.incr t.c_built;
      a := n + 1
    end
    else begin
      let h_start = eval_herror t ~k ~x:start in
      let threshold = (1.0 +. delta) *. h_start in
      let hint =
        if plen = 0 then None
        else begin
          let old_start = start + slide in
          while !pcur < plen && (Vec.get prev !pcur).b_idx < old_start do
            incr pcur
          done;
          if !pcur < plen then Some ((Vec.get prev !pcur).b_idx - slide) else None
        end
      in
      let c, h_c = find_boundary t ~k ~start ~hi:n ~threshold ~h_start ~hint in
      Vec.push q { a_idx = start; a_herror = h_start; b_idx = c; b_herror = h_c };
      M.incr t.c_built;
      a := c + 1
    end
  done

let refresh ?(cold = false) t =
  if t.dirty then
    Obs.with_span "fw.refresh" (fun () ->
        (* Swap buffers: the lists of the last refresh become the warm-start
           hints, their buffers the target of this rebuild. *)
        let tmp = t.queues in
        t.queues <- t.prev_queues;
        t.prev_queues <- tmp;
        let warm = not cold in
        t.mode <- (if warm then Warm_rebuild else Cold_rebuild);
        let b = buckets t in
        if length t > 0 then
          for k = 1 to b - 1 do
            create_list t ~k ~warm
          done;
        t.mode <- Query;
        t.dirty <- false;
        t.slide <- 0;
        t.pushes_since_refresh <- 0;
        M.incr t.c_refreshes;
        if warm then M.incr t.c_warm_refreshes else M.incr t.c_cold_refreshes)

let push t v =
  if not (Float.is_finite v) then invalid_arg "Fixed_window.push: non-finite value";
  if Sliding_prefix.length t.sp = Sliding_prefix.capacity t.sp then t.slide <- t.slide + 1;
  Sliding_prefix.push t.sp v;
  M.set t.g_length (Float.of_int (Sliding_prefix.length t.sp));
  t.dirty <- true;
  t.pushes_since_refresh <- t.pushes_since_refresh + 1;
  match t.policy with
  | Params.Eager -> refresh t
  | Params.Lazy -> ()
  | Params.Every k -> if t.pushes_since_refresh >= k then refresh t

(* Batch fast path: append the whole batch to the sliding prefix first,
   then refresh at most ONCE under the refresh policy, so the warm-start
   machinery amortises over the batch instead of rebuilding per point.
   Bookkeeping matches [push] per appended point — [slide] counts every
   eviction and [pushes_since_refresh] every point, so an [Every k] policy
   sees batched points exactly like single arrivals; the one divergence is
   deliberate: a batch that straddles a refresh boundary rebuilds once at
   the batch end (counter back to 0) rather than mid-batch, which is the
   amortisation this entry point exists for.  Queries observe identical
   results either way, since a refresh depends only on the current window
   contents (pinned by the test suite's push_many ≡ push property). *)
let push_many t vs =
  if Array.length vs > 0 then begin
    Array.iter
      (fun v ->
        if not (Float.is_finite v) then invalid_arg "Fixed_window.push_many: non-finite value")
      vs;
    Array.iter
      (fun v ->
        if Sliding_prefix.length t.sp = Sliding_prefix.capacity t.sp then t.slide <- t.slide + 1;
        Sliding_prefix.push t.sp v)
      vs;
    M.set t.g_length (Float.of_int (Sliding_prefix.length t.sp));
    t.dirty <- true;
    t.pushes_since_refresh <- t.pushes_since_refresh + Array.length vs;
    match t.policy with
    | Params.Eager -> refresh t
    | Params.Lazy -> ()
    | Params.Every k -> if t.pushes_since_refresh >= k then refresh t
  end

let push_batch = push_many

let push_and_refresh t v =
  push t v;
  refresh t

let current_error t =
  refresh t;
  eval_herror t ~k:(buckets t) ~x:(length t)

let herror t ~k ~x =
  if k < 1 || k > buckets t then invalid_arg "Fixed_window.herror: k out of range";
  if x < 0 || x > length t then invalid_arg "Fixed_window.herror: x out of range";
  refresh t;
  eval_herror t ~k ~x

(* Best split position for the last bucket of a k-bucket histogram of
   [1 .. x]: the argmin counterpart of [eval_herror].  Returns the chosen
   i (last bucket is [i+1 .. x]), in [1 .. x-1]. *)
let best_split t ~k ~x =
  count_eval t;
  let _, i = scan_candidates t ~k ~x in
  i

let current_histogram t =
  refresh t;
  let n = length t in
  if n = 0 then invalid_arg "Fixed_window.current_histogram: empty window";
  Obs.with_span "fw.histogram" @@ fun () ->
  let b = buckets t in
  (* Recover right endpoints top-down: split off the last bucket at each
     level, then recurse on the remaining prefix with one fewer bucket. *)
  let rec boundaries x k acc =
    if x <= 0 then acc
    else if k <= 1 || x <= k then begin
      (* Either a single remaining bucket, or x points fit in x singleton
         buckets at zero error. *)
      if k <= 1 then x :: acc
      else begin
        let acc = ref acc in
        for i = x downto 1 do
          acc := i :: !acc
        done;
        !acc
      end
    end
    else begin
      let i = best_split t ~k ~x in
      boundaries i (k - 1) (x :: acc)
    end
  in
  let ends = Array.of_list (boundaries n b []) in
  let bucket_of i hi =
    let lo = if i = 0 then 1 else ends.(i - 1) + 1 in
    { Histogram.lo; hi; value = Sliding_prefix.range_mean t.sp ~lo ~hi }
  in
  Histogram.make ~n (Array.mapi bucket_of ends)

(* Compatibility view over the registry-backed counters: same record, same
   values as the pre-registry private fields. *)
let work_counters t =
  {
    herror_evaluations = M.value t.c_evals;
    cold_evaluations = M.value t.c_cold_evals;
    warm_evaluations = M.value t.c_warm_evals;
    intervals_built = M.value t.c_built;
    refreshes = M.value t.c_refreshes;
    cold_refreshes = M.value t.c_cold_refreshes;
    warm_refreshes = M.value t.c_warm_refreshes;
    search_steps = M.value t.c_steps;
    hint_hits = M.value t.c_hits;
    hint_misses = M.value t.c_misses;
  }

let interval_counts t =
  refresh t;
  Array.map Vec.length t.queues

let intervals t ~k =
  if k < 1 || k > buckets t - 1 then invalid_arg "Fixed_window.intervals: k out of range";
  refresh t;
  Array.map
    (fun e -> (e.a_idx, e.a_herror, e.b_idx, e.b_herror))
    (Vec.to_array t.queues.(k - 1))
