module Sliding_prefix = Sh_prefix.Sliding_prefix
module Histogram = Sh_histogram.Histogram
module Vec = Sh_util.Vec

(* One interval [a_idx .. b_idx] of a level-k list.  Within the interval the
   (non-decreasing) function HERROR[., k] varies by at most a (1 + delta)
   factor: herror values are stored at both ends, and candidates are
   evaluated at right endpoints only (Section 4.2.1 of the paper). *)
type entry = { a_idx : int; a_herror : float; b_idx : int; b_herror : float }

type work_counters = {
  herror_evaluations : int;
  intervals_built : int;
  refreshes : int;
}

type t = {
  params : Params.t;
  sp : Sliding_prefix.t;
  queues : entry Vec.t array; (* queues.(k-1) holds the level-k list, k = 1..B-1 *)
  mutable dirty : bool;
  mutable evals : int;
  mutable built : int;
  mutable refreshes : int;
}

let create_with_delta ~window ~buckets ~epsilon ~delta =
  let params = Params.make_with_delta ~buckets ~epsilon ~delta in
  if window < 1 then invalid_arg "Fixed_window.create: window must be >= 1";
  {
    params;
    sp = Sliding_prefix.create ~capacity:window ();
    queues = Array.init (max 1 (buckets - 1)) (fun _ -> Vec.create ());
    dirty = true;
    evals = 0;
    built = 0;
    refreshes = 0;
  }

let create ~window ~buckets ~epsilon =
  create_with_delta ~window ~buckets ~epsilon
    ~delta:(epsilon /. (2.0 *. Float.of_int buckets))

let window t = Sliding_prefix.capacity t.sp
let buckets t = t.params.Params.buckets
let epsilon t = t.params.Params.epsilon
let length t = Sliding_prefix.length t.sp

let push t v =
  if not (Float.is_finite v) then invalid_arg "Fixed_window.push: non-finite value";
  Sliding_prefix.push t.sp v;
  t.dirty <- true

let push_batch t vs = Array.iter (push t) vs

(* Approximate HERROR[x, k] for the current window, reading the level-(k-1)
   list.  Candidates are the objective evaluated at list endpoints b < x,
   plus — when the interval covering x-1 extends to or past x — that
   interval's endpoint herror standing in for the "split at x-1" candidate
   (monotonicity makes it an upper bound on HERROR[x-1, k-1], and the
   interval invariant keeps it within (1 + delta) of it). *)
let eval_herror t ~k ~x =
  t.evals <- t.evals + 1;
  if x <= 0 then 0.0
  else if k >= x then 0.0 (* x points in >= x buckets: zero error *)
  else if k = 1 then Sliding_prefix.sqerror t.sp ~lo:1 ~hi:x
  else begin
    let q = t.queues.(k - 2) in
    let best = ref infinity in
    let i = ref 0 in
    let len = Vec.length q in
    let continue = ref true in
    while !continue && !i < len do
      let e = Vec.get q !i in
      if e.b_idx <= x - 1 then begin
        (* Early exit: stored herror values are non-decreasing along the
           list, so once one alone reaches the current best, no later
           candidate (herror + non-negative SQERROR) can improve it.  The
           covering interval's proxy candidate cannot improve either: its
           value is a later herror. *)
        if e.b_herror >= !best then continue := false
        else begin
          let cand = e.b_herror +. Sliding_prefix.sqerror t.sp ~lo:(e.b_idx + 1) ~hi:x in
          if cand < !best then best := cand;
          incr i
        end
      end
      else begin
        (* e is the interval covering x-1 (and beyond). *)
        if e.a_idx <= x - 1 && e.b_herror < !best then best := e.b_herror;
        continue := false
      end
    done;
    if !best = infinity then 0.0 else !best
  end

(* CreateList (Figure 5): cover [1 .. n] with maximal intervals whose
   HERROR[., k] spread stays within (1 + delta), found by binary search. *)
let create_list t ~k =
  let q = t.queues.(k - 1) in
  Vec.clear q;
  let n = length t in
  let delta = t.params.Params.delta in
  let a = ref 1 in
  while !a <= n do
    let start = !a in
    if start = n then begin
      let h = eval_herror t ~k ~x:start in
      Vec.push q { a_idx = start; a_herror = h; b_idx = start; b_herror = h };
      t.built <- t.built + 1;
      a := n + 1
    end
    else begin
      let h_start = eval_herror t ~k ~x:start in
      let threshold = (1.0 +. delta) *. h_start in
      (* Largest c in [start, n] with HERROR[c, k] <= threshold; c = start
         always qualifies. *)
      let lo = ref start and hi = ref n in
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        if eval_herror t ~k ~x:mid <= threshold then lo := mid else hi := mid - 1
      done;
      let c = !lo in
      let h_c = if c = start then h_start else eval_herror t ~k ~x:c in
      Vec.push q { a_idx = start; a_herror = h_start; b_idx = c; b_herror = h_c };
      t.built <- t.built + 1;
      a := c + 1
    end
  done

let refresh t =
  if t.dirty then begin
    let b = buckets t in
    if length t > 0 then
      for k = 1 to b - 1 do
        create_list t ~k
      done;
    t.dirty <- false;
    t.refreshes <- t.refreshes + 1
  end

let push_and_refresh t v =
  push t v;
  refresh t

let current_error t =
  refresh t;
  eval_herror t ~k:(buckets t) ~x:(length t)

let herror t ~k ~x =
  if k < 1 || k > buckets t then invalid_arg "Fixed_window.herror: k out of range";
  if x < 0 || x > length t then invalid_arg "Fixed_window.herror: x out of range";
  refresh t;
  eval_herror t ~k ~x

(* Best split position for the last bucket of a k-bucket histogram of
   [1 .. x]: the argmin counterpart of [eval_herror].  Returns the chosen
   i (last bucket is [i+1 .. x]), in [1 .. x-1]. *)
let best_split t ~k ~x =
  let q = t.queues.(k - 2) in
  let best = ref infinity in
  let best_i = ref (x - 1) in
  let i = ref 0 in
  let len = Vec.length q in
  let continue = ref true in
  while !continue && !i < len do
    let e = Vec.get q !i in
    if e.b_idx <= x - 1 then begin
      if e.b_herror >= !best then continue := false
      else begin
        let cand = e.b_herror +. Sliding_prefix.sqerror t.sp ~lo:(e.b_idx + 1) ~hi:x in
        if cand < !best then begin
          best := cand;
          best_i := e.b_idx
        end;
        incr i
      end
    end
    else begin
      if e.a_idx <= x - 1 && e.b_herror < !best then begin
        best := e.b_herror;
        best_i := x - 1
      end;
      continue := false
    end
  done;
  !best_i

let current_histogram t =
  refresh t;
  let n = length t in
  if n = 0 then invalid_arg "Fixed_window.current_histogram: empty window";
  let b = buckets t in
  (* Recover right endpoints top-down: split off the last bucket at each
     level, then recurse on the remaining prefix with one fewer bucket. *)
  let rec boundaries x k acc =
    if x <= 0 then acc
    else if k <= 1 || x <= k then begin
      (* Either a single remaining bucket, or x points fit in x singleton
         buckets at zero error. *)
      if k <= 1 then x :: acc
      else begin
        let acc = ref acc in
        for i = x downto 1 do
          acc := i :: !acc
        done;
        !acc
      end
    end
    else begin
      let i = best_split t ~k ~x in
      boundaries i (k - 1) (x :: acc)
    end
  in
  let ends = Array.of_list (boundaries n b []) in
  let bucket_of i hi =
    let lo = if i = 0 then 1 else ends.(i - 1) + 1 in
    { Histogram.lo; hi; value = Sliding_prefix.range_mean t.sp ~lo ~hi }
  in
  Histogram.make ~n (Array.mapi bucket_of ends)

let work_counters t =
  { herror_evaluations = t.evals; intervals_built = t.built; refreshes = t.refreshes }

let interval_counts t =
  refresh t;
  Array.map Vec.length t.queues
