module Sliding_prefix = Sh_prefix.Sliding_prefix
module Histogram = Sh_histogram.Histogram
module Soa = Sh_util.Soa
module Intmemo = Sh_util.Intmemo
module Obs = Sh_obs.Obs
module M = Sh_obs.Metric

(* The level-k list covers [1 .. n] with intervals [a_idx .. b_idx] inside
   which the (non-decreasing) function HERROR[., k] varies by at most a
   (1 + delta) factor: herror values are stored at both ends, and
   candidates are evaluated at right endpoints only (Section 4.2.1).

   Lists are stored struct-of-arrays (Soa): column layout below.  Rows
   live in flat int/float arrays, so a refresh that clears and refills
   every list allocates nothing once the columns reach steady capacity —
   the boxed-record representation this replaced allocated one record per
   interval per rebuild. *)
let col_a = 0 (* int col: a_idx    *)
let col_b = 1 (* int col: b_idx    *)
let col_ha = 0 (* float col: a_herror *)
let col_hb = 1 (* float col: b_herror *)

let new_list () = Soa.create ~fcols:2 ~icols:2 ()

type work_counters = {
  herror_evaluations : int;
  cold_evaluations : int;
  warm_evaluations : int;
  intervals_built : int;
  refreshes : int;
  cold_refreshes : int;
  warm_refreshes : int;
  search_steps : int;
  scan_steps : int;
  hint_hits : int;
  hint_misses : int;
  memo_probes : int;
  memo_hits : int;
}

(* Which activity an HERROR evaluation is charged to: list rebuilds with /
   without warm-start hints, or query-time reads. *)
type mode = Cold_rebuild | Warm_rebuild | Query

(* Slots of the float scratch column (see [fs] below): unboxed out-params
   for the hot internal calls, which would otherwise box a float (or a
   tuple) per return.  Mixed records box float fields on every store, so
   the scratch lives in a flat float array instead. *)
let fs_eval = 0 (* eval_herror_into result              *)
let fs_scan = 1 (* scan_candidates best candidate value *)
let fs_bnd = 2 (* find_boundary herror at the boundary *)
let fs_tmp = 3 (* sqerror_into scratch inside scans    *)
let fs_hstart = 4 (* find_boundary in-param: HERROR at the interval start *)
let fs_thresh = 5 (* find_boundary in-param: (1 + delta) * h_start        *)
let fs_len = 6

type t = {
  params : Params.t;
  sp : Sliding_prefix.t;
  (* Double buffer: [queues.(k-1)] holds the level-k list for the window as
     of the last refresh; [prev_queues.(k-1)] the one before, kept so warm
     rebuilds can seed boundary searches from the previous boundaries.  The
     two arrays are swapped at every refresh instead of reallocating. *)
  mutable queues : Soa.t array;
  mutable prev_queues : Soa.t array;
  (* Per-refresh HERROR memo: caches eval_herror results under packed
     (k, x) int keys for the duration of one refresh generation, so
     gallop/bisect searches never re-pay for a position another search of
     the same rebuild (or a query against the same window) already
     evaluated.  Owned by [t] — part of the reusable refresh arena. *)
  memo : Intmemo.t;
  memo_stride : int; (* key = x * memo_stride + k, stride = buckets + 1 *)
  mutable memo_on : bool;  (* master switch (set_memoisation)          *)
  mutable use_memo : bool; (* consulted by eval_herror_into            *)
  fs : float array; (* float out-param scratch, see fs_* slots *)
  mutable scan_best_i : int; (* scan_candidates argmin out-param  *)
  mutable bnd_c : int;       (* find_boundary boundary out-param  *)
  mutable gauge_len : int;   (* last length stored in g_length    *)
  mutable gen : int;  (* refresh generation: bumped once per rebuild, the
                         epoch stamp of the published read views *)
  mutable seen : int; (* points pushed since creation (monotone watermark;
                         restored snapshots restart at the window length) *)
  mutable dirty : bool;
  mutable policy : Params.refresh_policy;
  mutable slide : int; (* evictions since the last refresh: how far the
                          prev_queues coordinates have shifted *)
  mutable pushes_since_refresh : int;
  mutable mode : mode;
  (* Work accounting lives in per-instance registry counters (labelled
     instance="fw<i>") so the same tallies back work_counters, the
     exposition sinks, and per-span deltas.  The handles are registered
     once at creation; recording is a single int store, unconditionally
     live (see Sh_obs.Obs on the overhead model). *)
  c_evals : M.counter;
  c_cold_evals : M.counter;
  c_warm_evals : M.counter;
  c_built : M.counter;
  c_refreshes : M.counter;
  c_cold_refreshes : M.counter;
  c_warm_refreshes : M.counter;
  c_steps : M.counter;
  c_scan_steps : M.counter;
  c_hits : M.counter;
  c_misses : M.counter;
  c_memo_probes : M.counter;
  c_memo_hits : M.counter;
  g_length : M.gauge;
  g_alloc : M.gauge;
}

(* Shared constructor: everything but [params] and the prefix-sum state is
   derived or starts empty, which is also why [decode] below can rebuild a
   full summary from just those two (plus a cold refresh). *)
let mk ~params ~sp =
  let buckets = params.Params.buckets in
  let labels = [ ("instance", Obs.instance "fw") ] in
  let c name = Obs.counter ~labels name in
  {
    params;
    sp;
    queues = Array.init (max 1 (buckets - 1)) (fun _ -> new_list ());
    prev_queues = Array.init (max 1 (buckets - 1)) (fun _ -> new_list ());
    memo = Intmemo.create ();
    memo_stride = buckets + 1;
    memo_on = true;
    use_memo = true;
    fs = Array.make fs_len 0.0;
    scan_best_i = 0;
    bnd_c = 0;
    gauge_len = -1;
    gen = 0;
    seen = 0;
    dirty = true;
    policy = params.Params.policy;
    slide = 0;
    pushes_since_refresh = 0;
    mode = Query;
    c_evals = c "fw.herror_evals";
    c_cold_evals = c "fw.cold_evals";
    c_warm_evals = c "fw.warm_evals";
    c_built = c "fw.intervals_built";
    c_refreshes = c "fw.refreshes";
    c_cold_refreshes = c "fw.cold_refreshes";
    c_warm_refreshes = c "fw.warm_refreshes";
    c_steps = c "fw.search_steps";
    c_scan_steps = c "fw.scan_steps";
    c_hits = c "fw.hint_hits";
    c_misses = c "fw.hint_misses";
    c_memo_probes = c "fw.memo_probes";
    c_memo_hits = c "fw.memo_hits";
    g_length = Obs.gauge ~labels "fw.window_length";
    g_alloc = Obs.gauge ~labels "fw.alloc_words_per_push";
  }

let create_with_delta ~window ~buckets ~epsilon ~delta =
  let params = Params.make_with_delta ~buckets ~epsilon ~delta in
  if window < 1 then invalid_arg "Fixed_window.create: window must be >= 1";
  mk ~params ~sp:(Sliding_prefix.create ~capacity:window)

let create ~window ~buckets ~epsilon =
  create_with_delta ~window ~buckets ~epsilon
    ~delta:(epsilon /. (2.0 *. Float.of_int buckets))

let window t = Sliding_prefix.capacity t.sp
let buckets t = t.params.Params.buckets
let epsilon t = t.params.Params.epsilon
let length t = Sliding_prefix.length t.sp
let generation t = t.gen
let points_seen t = t.seen
let refresh_policy t = t.policy
let pending_pushes t = t.pushes_since_refresh
let slide_since_refresh t = t.slide
let needs_refresh t = t.dirty
let memoisation t = t.memo_on

let set_memoisation t on =
  t.memo_on <- on;
  t.use_memo <- on

let set_refresh_policy t policy =
  (* Reuse the Params validation (rejects [Every k] with k < 1). *)
  t.policy <- (Params.with_policy t.params policy).Params.policy

let count_eval t =
  M.incr t.c_evals;
  match t.mode with
  | Cold_rebuild -> M.incr t.c_cold_evals
  | Warm_rebuild -> M.incr t.c_warm_evals
  | Query -> ()

(* Candidate scan shared by [eval_herror_into] and [best_split]: the
   approximate HERROR[x, k] for the current window, read off the
   level-(k-1) list, with the split position achieving it.  Requires
   k >= 2 and k < x.  Writes the best value to [fs.(fs_scan)] and its
   split position to [scan_best_i] (out-params: a tuple return would box
   the float on every evaluation).

   Candidates are the objective evaluated at list endpoints b < x, plus —
   when the interval covering x-1 extends to or past x — that interval's
   endpoint herror standing in for the "split at x-1" candidate
   (monotonicity makes it an upper bound on HERROR[x-1, k-1], and the
   interval invariant keeps it within (1 + delta) of it).

   Both ends of the scan are pruned by binary search instead of walking the
   list from entry 0: the covering entry is located directly on the sorted
   b_idx column, and — seeding the running best with its proxy candidate —
   entries whose SQERROR term alone already reaches that bound are skipped
   (SQERROR(b+1, x) only shrinks along the list, so they form a prefix).

   Steps of both binary searches land in fw.search_steps (the legacy
   total) and, separately, fw.scan_steps — so rebuild-probe work and
   scan-internal work can be told apart (see work_counters). *)
let scan_candidates t ~k ~x =
  let q = t.queues.(k - 2) in
  let len = Soa.length q in
  let a_idx = Soa.icol q col_a and b_idx = Soa.icol q col_b in
  let b_her = Soa.fcol q col_hb in
  let steps = ref 0 in
  (* covering entry: first row with b_idx >= x *)
  let lo = ref 0 and hi = ref len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    incr steps;
    if Array.unsafe_get b_idx mid >= x then hi := mid else lo := mid + 1
  done;
  let cover = !lo in
  let best = ref infinity in
  let best_i = ref (x - 1) in
  if cover < len && Array.unsafe_get a_idx cover <= x - 1 then begin
    best := Array.unsafe_get b_her cover;
    best_i := x - 1
  end;
  (* SQERROR values flow through [fs.(fs_tmp)] (sqerror_into) rather than
     function returns: under -opaque a cross-module float return is a
     fresh boxed float per probe, which was the bulk of the kernel's
     remaining allocation. *)
  let first =
    if cover = 0 || !best = infinity then 0
    else begin
      let lo = ref 0 and hi = ref cover in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        incr steps;
        Sliding_prefix.sqerror_into t.sp ~lo:(Array.unsafe_get b_idx mid + 1) ~hi:x
          t.fs fs_tmp;
        if t.fs.(fs_tmp) < !best then hi := mid else lo := mid + 1
      done;
      !lo
    end
  in
  M.add t.c_steps !steps;
  M.add t.c_scan_steps !steps;
  let i = ref first in
  let continue = ref true in
  while !continue && !i < cover do
    let bh = Array.unsafe_get b_her !i in
    (* Early exit: stored herror values are non-decreasing along the list,
       so once one alone reaches the current best, no later candidate
       (herror + non-negative SQERROR) can improve it. *)
    if bh >= !best then continue := false
    else begin
      let b = Array.unsafe_get b_idx !i in
      Sliding_prefix.sqerror_into t.sp ~lo:(b + 1) ~hi:x t.fs fs_tmp;
      let cand = bh +. t.fs.(fs_tmp) in
      if cand < !best then begin
        best := cand;
        best_i := b
      end;
      incr i
    end
  done;
  t.fs.(fs_scan) <- !best;
  t.scan_best_i <- !best_i

(* Approximate HERROR[x, k] for the current window, written to
   [fs.(fs_eval)].  When memoisation is on, the scan is paid at most once
   per (k, x) per refresh generation: the memo caches the final value, and
   every evaluation still counts in fw.herror_evals (the legacy meaning —
   logical evaluations requested, hits included), with fw.memo_probes /
   fw.memo_hits recording the dedup separately. *)
let eval_herror_into t ~k ~x =
  count_eval t;
  if x <= 0 then t.fs.(fs_eval) <- 0.0
  else if k >= x then t.fs.(fs_eval) <- 0.0 (* x points in >= x buckets: zero error *)
  else if k = 1 then Sliding_prefix.sqerror_into t.sp ~lo:1 ~hi:x t.fs fs_eval
  else if t.use_memo then begin
    M.incr t.c_memo_probes;
    let key = (x * t.memo_stride) + k in
    let slot = Intmemo.find_slot t.memo key in
    if slot >= 0 then begin
      M.incr t.c_memo_hits;
      t.fs.(fs_eval) <- Array.unsafe_get (Intmemo.vals t.memo) slot
    end
    else begin
      scan_candidates t ~k ~x;
      let best = t.fs.(fs_scan) in
      let v = if best = infinity then 0.0 else best in
      (* reserve + raw store rather than Intmemo.add: the float stays
         unboxed on its way into the value column. *)
      let s = Intmemo.reserve t.memo key in
      Array.unsafe_set (Intmemo.vals t.memo) s v;
      t.fs.(fs_eval) <- v
    end
  end
  else begin
    scan_candidates t ~k ~x;
    let best = t.fs.(fs_scan) in
    t.fs.(fs_eval) <- (if best = infinity then 0.0 else best)
  end

(* Largest c in [start, hi] with HERROR[c, k] <= threshold; writes c to
   [bnd_c] and its herror to [fs.(fs_bnd)].  The float inputs arrive via
   scratch slots — [fs.(fs_hstart)] holds HERROR[start, k], [fs.(fs_thresh)]
   the threshold — because float arguments to a non-inlined call are boxed
   at every call site.  HERROR[., k] is non-decreasing
   in x, and the predicate holds at [start] (its herror defines the
   threshold), so the boundary is well defined and any bracketing strategy
   finds the same c.  Without a hint ([hint = min_int]) this is the plain
   binary search of CreateList (Figure 5); with one, a gallop outward from
   the hinted position brackets the boundary in O(log distance)
   evaluations — a near-perfect hint (the common case between consecutive
   arrivals) costs O(1) instead of O(log n).

   The shared bisect runs over refs seeded per branch; every probe is one
   fw.search_steps increment plus one eval_herror (identical to the
   pre-SoA implementation, so step counts match it exactly when
   memoisation is off). *)
let find_boundary t ~k ~start ~hi ~hint =
  let h_start = t.fs.(fs_hstart) in
  let threshold = t.fs.(fs_thresh) in
  (* bisect bracket: largest good position in [b_lo, b_hi], with b_h =
     HERROR[b_lo, k] already known. *)
  let b_lo = ref start and b_hi = ref hi and b_h = ref h_start in
  (if hint <> min_int then begin
     let g = max start (min hi hint) in
     let h_g =
       if g = start then h_start
       else begin
         M.incr t.c_steps;
         eval_herror_into t ~k ~x:g;
         t.fs.(fs_eval)
       end
     in
     if h_g <= threshold then begin
       (* Boundary at or past g: gallop right for the first bad position. *)
       let off = ref 1 and lo = ref g and h_lo = ref h_g and bad = ref (-1) in
       while !bad < 0 && g + !off <= hi do
         let p = g + !off in
         M.incr t.c_steps;
         eval_herror_into t ~k ~x:p;
         let hp = t.fs.(fs_eval) in
         if hp <= threshold then begin
           lo := p;
           h_lo := hp;
           off := 2 * !off
         end
         else bad := p
       done;
       b_lo := !lo;
       b_h := !h_lo;
       b_hi := if !bad < 0 then hi else !bad - 1
     end
     else begin
       (* Boundary strictly before g: gallop left for a good position. *)
       let off = ref 1 and bad = ref g and lo = ref (-1) and h_lo = ref h_start in
       while !lo < 0 && g - !off > start do
         let p = g - !off in
         M.incr t.c_steps;
         eval_herror_into t ~k ~x:p;
         let hp = t.fs.(fs_eval) in
         if hp <= threshold then begin
           lo := p;
           h_lo := hp
         end
         else begin
           bad := p;
           off := 2 * !off
         end
       done;
       if !lo < 0 then begin
         b_lo := start;
         b_h := h_start
       end
       else begin
         b_lo := !lo;
         b_h := !h_lo
       end;
       b_hi := !bad - 1
     end
   end);
  while !b_lo < !b_hi do
    let mid = (!b_lo + !b_hi + 1) / 2 in
    M.incr t.c_steps;
    eval_herror_into t ~k ~x:mid;
    let hm = t.fs.(fs_eval) in
    if hm <= threshold then begin
      b_lo := mid;
      b_h := hm
    end
    else b_hi := mid - 1
  done;
  if hint <> min_int then
    if !b_lo = hint then M.incr t.c_hits else M.incr t.c_misses;
  t.bnd_c <- !b_lo;
  t.fs.(fs_bnd) <- !b_h

(* CreateList (Figure 5): cover [1 .. n] with maximal intervals whose
   HERROR[., k] spread stays within (1 + delta).  A warm rebuild seeds each
   boundary search from the previous refresh's boundary over the same
   stream points (the prev_queues entry covering this interval's start,
   shifted back by the window slide); the search result is independent of
   the seed, so warm and cold rebuilds produce identical lists. *)
let create_list t ~k ~warm =
  let q = t.queues.(k - 1) in
  Soa.clear q;
  let n = length t in
  let delta = t.params.Params.delta in
  let prev = t.prev_queues.(k - 1) in
  let plen = if warm then Soa.length prev else 0 in
  let prev_b = Soa.icol prev col_b in
  let slide = t.slide in
  let pcur = ref 0 in
  (* Rows are written through the raw column arrays (re-fetched after each
     add_row, which may grow them): Soa.set_f would box its float argument
     at every cross-module call. *)
  let a = ref 1 in
  while !a <= n do
    let start = !a in
    if start = n then begin
      eval_herror_into t ~k ~x:start;
      let r = Soa.add_row q in
      (Soa.icol q col_a).(r) <- start;
      (Soa.icol q col_b).(r) <- start;
      (Soa.fcol q col_ha).(r) <- t.fs.(fs_eval);
      (Soa.fcol q col_hb).(r) <- t.fs.(fs_eval);
      M.incr t.c_built;
      a := n + 1
    end
    else begin
      eval_herror_into t ~k ~x:start;
      t.fs.(fs_hstart) <- t.fs.(fs_eval);
      t.fs.(fs_thresh) <- (1.0 +. delta) *. t.fs.(fs_eval);
      let hint =
        if plen = 0 then min_int
        else begin
          let old_start = start + slide in
          while !pcur < plen && Array.unsafe_get prev_b !pcur < old_start do
            incr pcur
          done;
          if !pcur < plen then Array.unsafe_get prev_b !pcur - slide else min_int
        end
      in
      find_boundary t ~k ~start ~hi:n ~hint;
      let c = t.bnd_c in
      let r = Soa.add_row q in
      (Soa.icol q col_a).(r) <- start;
      (Soa.icol q col_b).(r) <- c;
      (Soa.fcol q col_ha).(r) <- t.fs.(fs_hstart);
      (Soa.fcol q col_hb).(r) <- t.fs.(fs_bnd);
      M.incr t.c_built;
      a := c + 1
    end
  done

let do_refresh t ~warm =
  (* Swap buffers: the lists of the last refresh become the warm-start
     hints, their buffers the target of this rebuild. *)
  let tmp = t.queues in
  t.queues <- t.prev_queues;
  t.prev_queues <- tmp;
  (* O(1) memo clear: a new generation invalidates every cached HERROR
     without touching the arena. *)
  Intmemo.next_generation t.memo;
  t.mode <- (if warm then Warm_rebuild else Cold_rebuild);
  let b = buckets t in
  if length t > 0 then
    for k = 1 to b - 1 do
      create_list t ~k ~warm
    done;
  t.mode <- Query;
  t.dirty <- false;
  t.slide <- 0;
  t.pushes_since_refresh <- 0;
  t.gen <- t.gen + 1;
  M.incr t.c_refreshes;
  if warm then M.incr t.c_warm_refreshes else M.incr t.c_cold_refreshes

let refresh ?(cold = false) ?memo t =
  if t.dirty then begin
    let warm = not cold in
    t.use_memo <- (match memo with None -> t.memo_on | Some m -> m);
    if Obs.enabled () then begin
      (* fw.alloc_words_per_push: minor-heap words this rebuild cost per
         pending arrival.  Only maintained while telemetry is collecting —
         the gauge write itself boxes a float, which the allocation-free
         steady state must not pay unconditionally. *)
      let pushes = Float.of_int (max 1 t.pushes_since_refresh) in
      let w0 = Gc.minor_words () in
      Obs.with_span "fw.refresh" (fun () -> do_refresh t ~warm);
      M.set t.g_alloc ((Gc.minor_words () -. w0) /. pushes)
    end
    else do_refresh t ~warm;
    (* Queries against the unchanged window may keep hitting this
       generation's memo (values stay valid until the next rebuild). *)
    t.use_memo <- t.memo_on
  end

let push t v =
  if not (Float.is_finite v) then invalid_arg "Fixed_window.push: non-finite value";
  if Sliding_prefix.length t.sp = Sliding_prefix.capacity t.sp then t.slide <- t.slide + 1;
  Sliding_prefix.push t.sp v;
  t.seen <- t.seen + 1;
  let len = Sliding_prefix.length t.sp in
  if len <> t.gauge_len then begin
    (* Gauge stores box their float; once the window is full the length is
       constant, so skipping the redundant store keeps steady-state push
       allocation at zero. *)
    t.gauge_len <- len;
    M.set t.g_length (Float.of_int len)
  end;
  t.dirty <- true;
  t.pushes_since_refresh <- t.pushes_since_refresh + 1;
  match t.policy with
  | Params.Eager -> refresh t
  | Params.Lazy -> ()
  | Params.Every k -> if t.pushes_since_refresh >= k then refresh t

(* Batch fast path: append the whole batch to the sliding prefix first,
   then refresh at most ONCE under the refresh policy, so the warm-start
   machinery amortises over the batch instead of rebuilding per point.
   Bookkeeping matches [push] per appended point — [slide] counts every
   eviction and [pushes_since_refresh] every point, so an [Every k] policy
   sees batched points exactly like single arrivals; the one divergence is
   deliberate: a batch that straddles a refresh boundary rebuilds once at
   the batch end (counter back to 0) rather than mid-batch, which is the
   amortisation this entry point exists for.  Queries observe identical
   results either way, since a refresh depends only on the current window
   contents (pinned by the test suite's push_many ≡ push property). *)
let push_slice_named t vs ~pos ~len ~name =
  if pos < 0 || len < 0 || pos + len > Array.length vs then
    invalid_arg ("Fixed_window." ^ name ^ ": slice out of bounds");
  if len > 0 then begin
    for i = pos to pos + len - 1 do
      if not (Float.is_finite vs.(i)) then
        invalid_arg ("Fixed_window." ^ name ^ ": non-finite value")
    done;
    for i = pos to pos + len - 1 do
      if Sliding_prefix.length t.sp = Sliding_prefix.capacity t.sp then
        t.slide <- t.slide + 1;
      Sliding_prefix.push t.sp vs.(i)
    done;
    t.seen <- t.seen + len;
    let n = Sliding_prefix.length t.sp in
    if n <> t.gauge_len then begin
      t.gauge_len <- n;
      M.set t.g_length (Float.of_int n)
    end;
    t.dirty <- true;
    t.pushes_since_refresh <- t.pushes_since_refresh + len;
    match t.policy with
    | Params.Eager -> refresh t
    | Params.Lazy -> ()
    | Params.Every k -> if t.pushes_since_refresh >= k then refresh t
  end

let push_slice t vs ~pos ~len = push_slice_named t vs ~pos ~len ~name:"push_slice"
let push_many t vs = push_slice_named t vs ~pos:0 ~len:(Array.length vs) ~name:"push_many"
let push_batch = push_many

let push_and_refresh t v =
  push t v;
  refresh t

let current_error t =
  refresh t;
  eval_herror_into t ~k:(buckets t) ~x:(length t);
  t.fs.(fs_eval)

let herror t ~k ~x =
  if k < 1 || k > buckets t then invalid_arg "Fixed_window.herror: k out of range";
  if x < 0 || x > length t then invalid_arg "Fixed_window.herror: x out of range";
  refresh t;
  eval_herror_into t ~k ~x;
  t.fs.(fs_eval)

(* Best split position for the last bucket of a k-bucket histogram of
   [1 .. x]: the argmin counterpart of [eval_herror_into].  Returns the
   chosen i (last bucket is [i+1 .. x]), in [1 .. x-1].  Runs the scan
   directly — the memo caches only values, not argmins. *)
let best_split t ~k ~x =
  count_eval t;
  scan_candidates t ~k ~x;
  t.scan_best_i

let current_histogram t =
  refresh t;
  let n = length t in
  if n = 0 then invalid_arg "Fixed_window.current_histogram: empty window";
  Obs.with_span "fw.histogram" @@ fun () ->
  let b = buckets t in
  (* Recover right endpoints top-down: split off the last bucket at each
     level, then recurse on the remaining prefix with one fewer bucket. *)
  let rec boundaries x k acc =
    if x <= 0 then acc
    else if k <= 1 || x <= k then begin
      (* Either a single remaining bucket, or x points fit in x singleton
         buckets at zero error. *)
      if k <= 1 then x :: acc
      else begin
        let acc = ref acc in
        for i = x downto 1 do
          acc := i :: !acc
        done;
        !acc
      end
    end
    else begin
      let i = best_split t ~k ~x in
      boundaries i (k - 1) (x :: acc)
    end
  in
  let ends = Array.of_list (boundaries n b []) in
  let bucket_of i hi =
    let lo = if i = 0 then 1 else ends.(i - 1) + 1 in
    { Histogram.lo; hi; value = Sliding_prefix.range_mean t.sp ~lo ~hi }
  in
  Histogram.make ~n (Array.mapi bucket_of ends)

(* Compatibility view over the registry-backed counters: same record, same
   values as the pre-registry private fields. *)
let work_counters t =
  {
    herror_evaluations = M.value t.c_evals;
    cold_evaluations = M.value t.c_cold_evals;
    warm_evaluations = M.value t.c_warm_evals;
    intervals_built = M.value t.c_built;
    refreshes = M.value t.c_refreshes;
    cold_refreshes = M.value t.c_cold_refreshes;
    warm_refreshes = M.value t.c_warm_refreshes;
    search_steps = M.value t.c_steps;
    scan_steps = M.value t.c_scan_steps;
    hint_hits = M.value t.c_hits;
    hint_misses = M.value t.c_misses;
    memo_probes = M.value t.c_memo_probes;
    memo_hits = M.value t.c_memo_hits;
  }

let interval_counts t =
  refresh t;
  Array.map Soa.length t.queues

let intervals t ~k =
  if k < 1 || k > buckets t - 1 then invalid_arg "Fixed_window.intervals: k out of range";
  refresh t;
  let q = t.queues.(k - 1) in
  Array.init (Soa.length q) (fun i ->
      ( Soa.get_i q ~col:col_a i,
        Soa.get_f q ~col:col_ha i,
        Soa.get_i q ~col:col_b i,
        Soa.get_f q ~col:col_hb i ))

(* --- published read views -------------------------------------------- *)

(* A [View.t] is a compact immutable copy of everything a query needs —
   raw cumulative prefix sums, the endpoint columns of the interval lists,
   precomputed whole-window answers — cut from a refreshed summary by
   {!view}.  Readers on other domains evaluate against the copy alone:
   no telemetry stores, no scratch slots, no memo writes, no access to the
   live [t].  Every float operation below mirrors the corresponding live
   kernel operation on the same values in the same order, so view answers
   are bit-identical to querying the quiesced live summary at the same
   generation (pinned by the snapshot-equivalence property tests). *)
module View = struct
  type t = {
    gen : int;  (* refresh generation the copy was cut at *)
    seen : int; (* source points_seen when cut — the freshness watermark *)
    n : int;    (* window length *)
    b : int;    (* buckets *)
    eps : float;
    (* Raw cumulative sums for window-relative indices 0 .. n, copied
       verbatim from the sliding ring (index 0 is the sentinel before the
       oldest point).  Live range sums subtract exactly these values, so
       subtracting the copies reproduces them bit for bit. *)
    sum : float array;
    sqsum : float array;
    (* Level-k interval list endpoints (level k at index k - 1, for
       k = 1 .. B-1): trimmed copies of the three Soa columns the
       candidate scan reads. *)
    a_idx : int array array;
    b_idx : int array array;
    b_her : float array array;
    err : float;               (* HERROR[n, B] — the current_error answer *)
    hist : Histogram.t option; (* [None] iff the window is empty *)
  }

  let generation v = v.gen
  let points_seen v = v.seen
  let length v = v.n
  let buckets v = v.b
  let epsilon v = v.eps

  (* [Sliding_prefix.sqerror] over the copied cumulatives: same guard,
     same subtraction order, same clamp. *)
  let sqerror v ~lo ~hi =
    if lo > hi then 0.0
    else begin
      let s = v.sum.(hi) -. v.sum.(lo - 1) in
      let q = v.sqsum.(hi) -. v.sqsum.(lo - 1) in
      let n = Float.of_int (hi - lo + 1) in
      let d = q -. (s *. s /. n) in
      if d > 0.0 then d else 0.0
    end

  (* [scan_candidates] on the copied columns (see the live implementation
     for the pruning argument); requires 2 <= k < x.  Returns
     (best value, best split position) — a boxed pair is fine on the read
     plane, which has no allocation budget to defend. *)
  let scan v ~k ~x =
    let a_idx = v.a_idx.(k - 2) and b_idx = v.b_idx.(k - 2) in
    let b_her = v.b_her.(k - 2) in
    let len = Array.length b_idx in
    let lo = ref 0 and hi = ref len in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Array.unsafe_get b_idx mid >= x then hi := mid else lo := mid + 1
    done;
    let cover = !lo in
    let best = ref infinity in
    let best_i = ref (x - 1) in
    if cover < len && Array.unsafe_get a_idx cover <= x - 1 then begin
      best := Array.unsafe_get b_her cover;
      best_i := x - 1
    end;
    let first =
      if cover = 0 || !best = infinity then 0
      else begin
        let lo = ref 0 and hi = ref cover in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if sqerror v ~lo:(Array.unsafe_get b_idx mid + 1) ~hi:x < !best then
            hi := mid
          else lo := mid + 1
        done;
        !lo
      end
    in
    let i = ref first in
    let continue = ref true in
    while !continue && !i < cover do
      let bh = Array.unsafe_get b_her !i in
      if bh >= !best then continue := false
      else begin
        let b = Array.unsafe_get b_idx !i in
        let cand = bh +. sqerror v ~lo:(b + 1) ~hi:x in
        if cand < !best then begin
          best := cand;
          best_i := b
        end;
        incr i
      end
    done;
    (!best, !best_i)

  (* [eval_herror_into], branch for branch, sans memo and telemetry. *)
  let eval v ~k ~x =
    if x <= 0 then 0.0
    else if k >= x then 0.0
    else if k = 1 then sqerror v ~lo:1 ~hi:x
    else begin
      let best, _ = scan v ~k ~x in
      if best = infinity then 0.0 else best
    end

  let herror ?memo v ~k ~x =
    if k < 1 || k > v.b then invalid_arg "Fixed_window.herror: k out of range";
    if x < 0 || x > v.n then invalid_arg "Fixed_window.herror: x out of range";
    match memo with
    | None -> eval v ~k ~x
    | Some m ->
      (* packed like the live memo: key = x * (buckets + 1) + k *)
      let key = (x * (v.b + 1)) + k in
      let slot = Intmemo.find_slot m key in
      if slot >= 0 then (Intmemo.vals m).(slot)
      else begin
        let value = eval v ~k ~x in
        let s = Intmemo.reserve m key in
        (Intmemo.vals m).(s) <- value;
        value
      end

  let current_error v = v.err
  let histogram v = v.hist

  let current_histogram v =
    match v.hist with
    | Some h -> h
    | None -> invalid_arg "Fixed_window.current_histogram: empty window"

  (* The [current_histogram] boundary recursion with argmins from the
     view-side scan; bucket values are the same prefix-difference means. *)
  let hist_of v =
    if v.n = 0 then None
    else begin
      let rec boundaries x k acc =
        if x <= 0 then acc
        else if k <= 1 || x <= k then begin
          if k <= 1 then x :: acc
          else begin
            let acc = ref acc in
            for i = x downto 1 do
              acc := i :: !acc
            done;
            !acc
          end
        end
        else begin
          let _, i = scan v ~k ~x in
          boundaries i (k - 1) (x :: acc)
        end
      in
      let ends = Array.of_list (boundaries v.n v.b []) in
      let bucket_of i hi =
        let lo = if i = 0 then 1 else ends.(i - 1) + 1 in
        let value = (v.sum.(hi) -. v.sum.(lo - 1)) /. Float.of_int (hi - lo + 1) in
        { Histogram.lo; hi; value }
      in
      Some (Histogram.make ~n:v.n (Array.mapi bucket_of ends))
    end

  let make ~gen ~seen ~n ~b ~eps ~sum ~sqsum ~a_idx ~b_idx ~b_her =
    let v0 =
      { gen; seen; n; b; eps; sum; sqsum; a_idx; b_idx; b_her;
        err = 0.0; hist = None }
    in
    { v0 with err = eval v0 ~k:b ~x:n; hist = hist_of v0 }
end

let view t =
  refresh t;
  let n = length t in
  let b = buckets t in
  let sum = Array.init (n + 1) (fun i -> Sliding_prefix.cumulative_sum t.sp i) in
  let sqsum = Array.init (n + 1) (fun i -> Sliding_prefix.cumulative_sqsum t.sp i) in
  let levels = b - 1 in
  let trim_i col j = Array.init (Soa.length t.queues.(j)) (Array.get (Soa.icol t.queues.(j) col)) in
  let trim_f col j = Array.init (Soa.length t.queues.(j)) (Array.get (Soa.fcol t.queues.(j) col)) in
  View.make ~gen:t.gen ~seen:t.seen ~n ~b ~eps:(epsilon t) ~sum ~sqsum
    ~a_idx:(Array.init levels (trim_i col_a))
    ~b_idx:(Array.init levels (trim_i col_b))
    ~b_her:(Array.init levels (trim_f col_hb))

(* --- persistence ---------------------------------------------------- *)

module Codec = Sh_persist.Codec

let name = "fixed_window"
let summary_tag = Char.code 'F'

(* Snapshots carry only the irreducible state: parameters and the sliding
   prefix sums (Theorem 1's point — the interval lists are a deterministic
   function of the window, so [decode] rebuilds them with one cold refresh
   and the restored summary is indistinguishable from one that never
   stopped).  Derived scratch (queues, memo, fs) and telemetry counters are
   deliberately not persisted: counters restart at zero in the fresh
   process, like every other series in the registry. *)
let encode buf t =
  Codec.put_u8 buf summary_tag;
  Codec.put_float buf t.params.Params.epsilon;
  Codec.put_float buf t.params.Params.delta;
  Codec.put_varint buf t.params.Params.buckets;
  (match t.policy with
   | Params.Eager -> Codec.put_varint buf 0
   | Params.Lazy -> Codec.put_varint buf 1
   | Params.Every k ->
     Codec.put_varint buf 2;
     Codec.put_varint buf k);
  Codec.put_bool buf t.memo_on;
  Codec.put_varint buf t.pushes_since_refresh;
  Sliding_prefix.encode buf t.sp

let decode r =
  let tag = Codec.get_u8 r in
  if tag <> summary_tag then
    Codec.corruptf "Fixed_window.decode: tag %d is not a fixed-window payload"
      tag;
  let epsilon = Codec.get_float r in
  let delta = Codec.get_float r in
  let buckets = Codec.get_varint r in
  let policy =
    match Codec.get_varint r with
    | 0 -> Params.Eager
    | 1 -> Params.Lazy
    | 2 -> Params.Every (Codec.get_varint r)
    | n -> Codec.corruptf "Fixed_window.decode: unknown policy tag %d" n
  in
  let memo_on = Codec.get_bool r in
  let pending = Codec.get_varint r in
  let sp = Sliding_prefix.decode r in
  let params =
    try Params.with_policy (Params.make_with_delta ~buckets ~epsilon ~delta) policy
    with Invalid_argument m -> Codec.corruptf "Fixed_window.decode: %s" m
  in
  let t = mk ~params ~sp in
  t.policy <- params.Params.policy;
  set_memoisation t memo_on;
  (* Rebuild the interval lists from the restored window, then put the
     arrival-cadence counter back so an [Every k] policy resumes exactly
     where the snapshot left it. *)
  t.dirty <- true;
  refresh ~cold:true t;
  t.pushes_since_refresh <- pending;
  (* The watermark restarts at the restored window length: pre-snapshot
     history is not recoverable, and only deltas of [points_seen] are
     meaningful across a restore. *)
  t.seen <- length t;
  t
