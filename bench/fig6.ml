(* Figure 6 of the paper.

   (a),(b): accuracy of random range-sum queries over the sliding window,
   for fixed-window histograms ("Histogram"), the optimal histogram
   recomputed on the window ("Exact") and an equal-space wavelet synopsis
   ("Wavelet"), as the subsequence (window) length and B vary;
   epsilon = 0.1 for (a) and 0.01 for (b).

   (c),(d): elapsed time to maintain the fixed-window histogram over the
   whole stream, same epsilon split.  The paper's reported absolute times
   (about 18s over 1M points at B up to 100) are only consistent with
   deferred maintenance — a literal per-point rebuild costs
   Theta((B^3/eps^2) log^3 n) each — so maintenance here rebuilds the
   interval lists at query positions (every [t_refresh_every] points) and
   EXPERIMENTS.md documents the substitution. *)

module Rng = Sh_util.Rng
module Source = Sh_gen.Source
module Wk = Sh_gen.Workloads
module P = Sh_prefix.Prefix_sums
module RB = Sh_window.Ring_buffer
module V = Sh_histogram.Vopt
module FW = Stream_histogram.Fixed_window
module Syn = Sh_wavelet.Synopsis
module E = Sh_query.Estimator
module Q = Sh_query.Workload
module Ev = Sh_query.Evaluate

let stream ~len = Source.take (Wk.network (Rng.create ~seed:20020226) Wk.default_network) len

(* Average absolute range-sum error for one (window, B) configuration,
   averaged over evenly spaced slide positions.  All three methods see the
   same queries at the same positions. *)
let accuracy_of_config ~data ~window ~buckets ~eps ~checkpoints ~queries =
  let len = Array.length data in
  let fw = FW.create ~window ~buckets ~epsilon:eps in
  let ring = RB.create ~capacity:window in
  let gap = max 1 ((len - window) / checkpoints) in
  let exact_sum = ref 0.0 and hist_sum = ref 0.0 and wave_sum = ref 0.0 in
  let measured = ref 0 in
  Array.iteri
    (fun i v ->
      FW.push fw v;
      RB.push ring v;
      if i >= window - 1 && (i - (window - 1)) mod gap = gap / 2 && !measured < checkpoints
      then begin
        incr measured;
        let wdata = RB.to_array ring in
        let truth = E.exact (P.make wdata) in
        let qs = Q.random_ranges (Rng.create ~seed:(1000 + i)) ~n:window ~count:queries in
        let mae est = (Ev.range_sum_errors ~truth est qs).Sh_util.Metrics.mae in
        exact_sum := !exact_sum +. mae (E.of_histogram (V.build wdata ~buckets));
        hist_sum := !hist_sum +. mae (E.of_histogram (FW.current_histogram fw));
        wave_sum := !wave_sum +. mae (E.of_wavelet (Syn.build wdata ~coeffs:buckets))
      end)
    data;
  let d = Float.of_int (max 1 !measured) in
  (!exact_sum /. d, !hist_sum /. d, !wave_sum /. d)

let accuracy ~eps scale =
  let cfg = Bench_config.fig6_accuracy ~eps scale in
  let name = if eps < 0.05 then "Figure 6(b)" else "Figure 6(a)" in
  Report.section
    (Printf.sprintf "%s: range-sum accuracy, epsilon = %g (avg |error|, lower is better)" name eps);
  Report.note "series: Exact = optimal V-optimal on the window, Histogram = fixed-window, Wavelet = top-B Haar";
  Report.note "stream: %d synthetic network-utilisation points; %d checkpoints x %d queries"
    cfg.Bench_config.stream_len cfg.Bench_config.checkpoints cfg.Bench_config.queries;
  let data = stream ~len:cfg.Bench_config.stream_len in
  let headers =
    "subseq-len"
    :: List.concat_map
         (fun b ->
           [ Printf.sprintf "Exact(B=%d)" b; Printf.sprintf "Histogram(B=%d)" b;
             Printf.sprintf "Wavelet(B=%d)" b ])
         cfg.Bench_config.bucket_list
  in
  let rows =
    List.map
      (fun window ->
        string_of_int window
        :: List.concat_map
             (fun buckets ->
               let exact, hist, wave =
                 accuracy_of_config ~data ~window ~buckets ~eps
                   ~checkpoints:cfg.Bench_config.checkpoints ~queries:cfg.Bench_config.queries
               in
               [ Report.fmt_g exact; Report.fmt_g hist; Report.fmt_g wave ])
             cfg.Bench_config.bucket_list)
      cfg.Bench_config.windows
  in
  Report.table ~headers rows

let construction ~eps scale =
  let cfg = Bench_config.fig6_time ~eps scale in
  let name = if eps < 0.05 then "Figure 6(d)" else "Figure 6(c)" in
  Report.section
    (Printf.sprintf "%s: fixed-window maintenance time, epsilon = %g" name eps);
  Report.note "elapsed time to stream %d points with interval lists rebuilt every %d points"
    cfg.Bench_config.t_stream_len cfg.Bench_config.t_refresh_every;
  let data = stream ~len:cfg.Bench_config.t_stream_len in
  let headers =
    "subseq-len"
    :: List.map (fun b -> Printf.sprintf "Histogram(B=%d)" b) cfg.Bench_config.t_bucket_list
  in
  let rows =
    List.map
      (fun window ->
        string_of_int window
        :: List.map
             (fun buckets ->
               let fw = FW.create ~window ~buckets ~epsilon:eps in
               FW.set_refresh_policy fw
                 (Stream_histogram.Params.Every cfg.Bench_config.t_refresh_every);
               let (), dt = Report.time (fun () -> Array.iter (FW.push fw) data) in
               Report.fmt_time dt)
             cfg.Bench_config.t_bucket_list)
      cfg.Bench_config.t_windows
  in
  Report.table ~headers rows
