(* Experiment scaling.  The paper runs on 1M-point AT&T traces with B up to
   100; those parameters are infeasible for a per-checkpoint exact-optimal
   comparison (the exact DP alone is O(n^2 B) per checkpoint), so each
   experiment is sized by a scale knob.  `Full` approaches the paper's
   shapes most closely; `Default` keeps the whole suite to a few minutes;
   `Small` is a smoke test. *)

type scale = Small | Default | Full

let scale_of_string = function
  | "small" -> Some Small
  | "default" -> Some Default
  | "full" -> Some Full
  | _ -> None

type fig6_accuracy = {
  windows : int list;       (* subsequence lengths swept (x axis) *)
  bucket_list : int list;   (* the B series *)
  stream_len : int;
  checkpoints : int;        (* slide positions where accuracy is measured *)
  queries : int;            (* random range-sum queries per checkpoint *)
}

let fig6_accuracy ~eps scale =
  match (scale, eps < 0.05) with
  | Small, _ -> { windows = [ 128; 256 ]; bucket_list = [ 8 ]; stream_len = 4_000; checkpoints = 2; queries = 150 }
  | Default, false ->
    { windows = [ 256; 512; 1024; 2048 ]; bucket_list = [ 16; 32 ]; stream_len = 30_000;
      checkpoints = 4; queries = 300 }
  | Default, true ->
    (* tighter epsilon means much longer interval lists: fewer, smaller
       configurations keep the run tractable *)
    { windows = [ 256; 512; 1024 ]; bucket_list = [ 16; 32 ]; stream_len = 20_000;
      checkpoints = 2; queries = 300 }
  | Full, false ->
    { windows = [ 256; 512; 1024; 2048; 4096 ]; bucket_list = [ 16; 32; 64 ]; stream_len = 100_000;
      checkpoints = 8; queries = 500 }
  | Full, true ->
    { windows = [ 256; 512; 1024; 2048 ]; bucket_list = [ 16; 32 ]; stream_len = 50_000;
      checkpoints = 4; queries = 500 }

type fig6_time = {
  t_windows : int list;
  t_bucket_list : int list;
  t_stream_len : int;
  t_refresh_every : int; (* maintenance is amortised: lists rebuilt at query times *)
}

let fig6_time ~eps scale =
  match (scale, eps < 0.05) with
  | Small, _ -> { t_windows = [ 128; 256 ]; t_bucket_list = [ 8 ]; t_stream_len = 4_000; t_refresh_every = 1_000 }
  | Default, false ->
    { t_windows = [ 256; 512; 1024; 2048 ]; t_bucket_list = [ 8; 16 ]; t_stream_len = 20_000;
      t_refresh_every = 2_000 }
  | Default, true ->
    { t_windows = [ 256; 512; 1024 ]; t_bucket_list = [ 8; 16 ]; t_stream_len = 10_000;
      t_refresh_every = 2_000 }
  | Full, false ->
    { t_windows = [ 256; 512; 1024; 2048; 4096 ]; t_bucket_list = [ 16; 32 ]; t_stream_len = 100_000;
      t_refresh_every = 2_000 }
  | Full, true ->
    { t_windows = [ 256; 512; 1024; 2048 ]; t_bucket_list = [ 16; 32 ]; t_stream_len = 20_000;
      t_refresh_every = 2_000 }
