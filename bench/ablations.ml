(* Ablations over the design choices DESIGN.md calls out:
     - delta split (interval slack as a function of epsilon and B)
     - interval-list rebuild policy (per point vs per query)
     - sliding-prefix rebase period (float drift vs rebase cost)
     - wavelet maintenance policy (from-scratch per point vs stale reuse) *)

module Rng = Sh_util.Rng
module Source = Sh_gen.Source
module Wk = Sh_gen.Workloads
module P = Sh_prefix.Prefix_sums
module SP = Sh_prefix.Sliding_prefix
module RB = Sh_window.Ring_buffer
module H = Sh_histogram.Histogram
module V = Sh_histogram.Vopt
module FW = Stream_histogram.Fixed_window
module Syn = Sh_wavelet.Synopsis
module E = Sh_query.Estimator
module Q = Sh_query.Workload
module Ev = Sh_query.Evaluate

let network ~seed ~len = Source.take (Wk.network (Rng.create ~seed) Wk.default_network) len

(* ------------------------------------------------------------- delta *)

let delta scale =
  let window, buckets, eps =
    match scale with
    | Bench_config.Small -> (256, 8, 0.1)
    | Bench_config.Default -> (1024, 16, 0.1)
    | Bench_config.Full -> (2048, 32, 0.1)
  in
  Report.section "ABLATE-DELTA: interval slack delta vs accuracy and refresh cost";
  Report.note "paper uses delta = eps/(2B); window=%d B=%d eps=%g" window buckets eps;
  let data = network ~seed:3 ~len:(2 * window) in
  let p = P.of_sub data ~pos:window ~len:window in
  let opt = V.optimal_error p ~buckets in
  let rows =
    List.map
      (fun (label, delta) ->
        let fw = FW.create_with_delta ~window ~buckets ~epsilon:eps ~delta in
        Array.iter (FW.push fw) data;
        let (), t_refresh = Report.time (fun () -> FW.refresh fw) in
        let sse = H.sse_against (FW.current_histogram fw) p in
        let intervals = Array.fold_left ( + ) 0 (FW.interval_counts fw) in
        [
          label;
          Report.fmt_g delta;
          Printf.sprintf "%.5f" (if opt > 0.0 then sse /. opt else 1.0);
          string_of_int intervals;
          Report.fmt_time t_refresh;
        ])
      [
        ("eps/B", eps /. Float.of_int buckets);
        ("eps/2B (paper)", eps /. (2.0 *. Float.of_int buckets));
        ("eps/4B", eps /. (4.0 *. Float.of_int buckets));
        ("eps (coarse)", eps);
      ]
  in
  Report.table ~headers:[ "delta rule"; "delta"; "SSE/optimal"; "total intervals"; "refresh time" ] rows

(* ----------------------------------------------------- rebuild policy *)

let rebuild scale =
  let window, buckets, eps, stream_len =
    (* per-point rebuilds are the expensive arm: keep streams short *)
    match scale with
    | Bench_config.Small -> (128, 4, 0.5, 400)
    | Bench_config.Default -> (256, 8, 0.5, 1_000)
    | Bench_config.Full -> (512, 16, 0.2, 4_000)
  in
  Report.section "ABLATE-REBUILD: per-point vs amortised interval-list rebuilds";
  Report.note
    "queries see identical (freshly refreshed) state, so accuracy is unchanged; only cost moves";
  let data = network ~seed:4 ~len:stream_len in
  let rows =
    List.map
      (fun every ->
        let fw = FW.create ~window ~buckets ~epsilon:eps in
        let (), dt =
          Report.time (fun () ->
              Array.iteri
                (fun i v ->
                  FW.push fw v;
                  if (i + 1) mod every = 0 then FW.refresh fw)
                data)
        in
        let label = if every = 1 then "every point (paper)" else Printf.sprintf "every %d" every in
        [
          label;
          Report.fmt_time dt;
          Printf.sprintf "%.1f us" (dt /. Float.of_int stream_len *. 1e6);
          string_of_int (FW.work_counters fw).FW.refreshes;
        ])
      [ 1; 16; 128; 1024 ]
  in
  Report.table ~headers:[ "rebuild policy"; "total time"; "per point"; "refreshes" ] rows

(* ------------------------------------------------------ rebase period *)

let rebase scale =
  let capacity, pushes =
    match scale with
    | Bench_config.Small -> (256, 100_000)
    | Bench_config.Default -> (1024, 1_000_000)
    | Bench_config.Full -> (4096, 5_000_000)
  in
  Report.section "ABLATE-REBASE: sliding-prefix rebase period vs drift and throughput";
  Report.note
    "SQERROR drift vs exact recomputation after %d pushes of fractional values (integer streams stay exact)"
    pushes;
  let rng = Rng.create ~seed:5 in
  let values = Array.init (capacity * 4) (fun _ -> Rng.float rng 10_000.0) in
  let rows =
    List.map
      (fun (label, rebase_every) ->
        let sp = SP.create_rebasing ~rebase_every ~capacity in
        let ring = RB.create ~capacity in
        let (), dt =
          Report.time (fun () ->
              for i = 0 to pushes - 1 do
                let v = values.(i mod Array.length values) in
                SP.push sp v;
                RB.push ring v
              done)
        in
        (* worst absolute drift of per-bucket SSE vs exact: the quantity
           the histogram algorithms actually consume *)
        let wdata = RB.to_array ring in
        let p = P.make wdata in
        let drift = ref 0.0 in
        let n = capacity in
        let step = max 1 (n / 64) in
        let lo = ref 1 in
        while !lo <= n do
          let hi = ref !lo in
          while !hi <= n do
            drift :=
              Float.max !drift
                (Float.abs (SP.sqerror sp ~lo:!lo ~hi:!hi -. P.sqerror p ~lo:!lo ~hi:!hi));
            hi := !hi + step
          done;
          lo := !lo + step
        done;
        [
          label;
          Report.fmt_g !drift;
          Report.fmt_time dt;
          Printf.sprintf "%.0f ns/push" (dt /. Float.of_int pushes *. 1e9);
        ])
      [
        ("n (paper)", capacity);
        ("n/4", max 1 (capacity / 4));
        ("16n", 16 * capacity);
        ("never (2^30)", 1 lsl 30);
      ]
  in
  Report.table ~headers:[ "rebase period"; "max |drift|"; "total time"; "throughput" ] rows

(* ----------------------------------------------------- wavelet policy *)

let wavelet scale =
  let window, buckets, stream_len, queries =
    match scale with
    | Bench_config.Small -> (256, 16, 2_000, 100)
    | Bench_config.Default -> (1024, 32, 8_000, 200)
    | Bench_config.Full -> (4096, 32, 20_000, 400)
  in
  Report.section "ABLATE-WAVELET: rebuild-per-point (paper) vs stale periodic rebuilds";
  Report.note "stale synopses answer queries between rebuilds; accuracy decays with the period";
  let data = network ~seed:6 ~len:stream_len in
  let rows =
    List.map
      (fun every ->
        let ring = RB.create ~capacity:window in
        let syn = ref None in
        let err_sum = ref 0.0 and err_n = ref 0 in
        let (), dt =
          Report.time (fun () ->
              Array.iteri
                (fun i v ->
                  RB.push ring v;
                  if RB.is_full ring && (i + 1) mod every = 0 then
                    syn := Some (Syn.build (RB.to_array ring) ~coeffs:buckets);
                  (* a query arrives every 97 points *)
                  if RB.is_full ring && (i + 1) mod 97 = 0 then begin
                    match !syn with
                    | None -> ()
                    | Some s ->
                      let wdata = RB.to_array ring in
                      let truth = E.exact (P.make wdata) in
                      let qs =
                        Q.random_ranges (Rng.create ~seed:(i * 31)) ~n:window
                          ~count:(queries / 10)
                      in
                      let summary = Ev.range_sum_errors ~truth (E.of_wavelet s) qs in
                      err_sum := !err_sum +. summary.Sh_util.Metrics.mae;
                      incr err_n
                  end)
                data)
        in
        let label = if every = 1 then "every point (paper)" else Printf.sprintf "every %d" every in
        [
          label;
          Report.fmt_g (!err_sum /. Float.of_int (max 1 !err_n));
          Report.fmt_time dt;
          Printf.sprintf "%.1f us/point" (dt /. Float.of_int stream_len *. 1e6);
        ])
      [ 1; 64; 512 ]
  in
  Report.table ~headers:[ "rebuild policy"; "avg query err"; "total time"; "per point" ] rows
