(* Extension benchmarks (beyond the paper's own tables): a shoot-out of
   every sequence synopsis in the repository at equal space, and a
   selectivity-estimation comparison for the value-domain histograms. *)

module Rng = Sh_util.Rng
module Source = Sh_gen.Source
module Wk = Sh_gen.Workloads
module P = Sh_prefix.Prefix_sums
module V = Sh_histogram.Vopt
module Heur = Sh_histogram.Heuristics
module AG = Stream_histogram.Agglomerative
module Syn = Sh_wavelet.Synopsis
module SW = Sh_wavelet.Streaming
module Dct = Sh_wavelet.Dct
module E = Sh_query.Estimator
module Q = Sh_query.Workload
module Ev = Sh_query.Evaluate
module VH = Sh_selectivity.Value_histogram

let synopses scale =
  let n, buckets, queries =
    match scale with
    | Bench_config.Small -> (2_000, 16, 200)
    | Bench_config.Default -> (8_000, 32, 500)
    | Bench_config.Full -> (32_000, 32, 1_000)
  in
  Report.section "EXT-SYNOPSES: every sequence synopsis at equal space, range-sum accuracy";
  Report.note "n=%d points per workload, B=%d buckets / coefficients, %d queries (avg |error|)"
    n buckets queries;
  let workloads =
    [
      ("network", Source.take (Wk.network (Rng.create ~seed:71) Wk.default_network) n);
      ("steps", Source.take (Wk.step_signal (Rng.create ~seed:72) ~segment_mean:(n / 50) ()) n);
      ("uniform", Source.take (Wk.uniform_noise (Rng.create ~seed:73) ~lo:0.0 ~hi:10_000.0) n);
    ]
  in
  let method_names =
    [ "vopt"; "agglomerative"; "greedy"; "equiwidth"; "haar"; "streaming-haar"; "dct" ]
  in
  let run data name =
    let p = P.make data in
    let est =
      match name with
      | "vopt" -> E.of_histogram (V.build_prefix p ~buckets)
      | "agglomerative" ->
        let ag = AG.create ~buckets ~epsilon:0.1 in
        Array.iter (AG.push ag) data;
        E.of_histogram (AG.current_histogram ag)
      | "greedy" -> E.of_histogram (Heur.greedy_merge p ~buckets)
      | "equiwidth" -> E.of_histogram (Heur.equi_width p ~buckets)
      | "haar" -> E.of_wavelet (Syn.build data ~coeffs:buckets)
      | "streaming-haar" ->
        let sw = SW.create ~budget:buckets in
        Array.iter (SW.push sw) data;
        E.of_streaming_wavelet sw
      | "dct" ->
        let d = Dct.build data ~coeffs:buckets in
        {
          E.name = "dct";
          n = Dct.length d;
          point = Dct.point_estimate d;
          range_sum = Dct.range_sum_estimate d;
        }
      | _ -> assert false
    in
    let truth = E.exact p in
    let qs = Q.random_ranges (Rng.create ~seed:74) ~n ~count:queries in
    (Ev.range_sum_errors ~truth est qs).Sh_util.Metrics.mae
  in
  let rows =
    List.map
      (fun (wname, data) -> wname :: List.map (fun m -> Report.fmt_g (run data m)) method_names)
      workloads
  in
  Report.table ~headers:("workload" :: method_names) rows

let selectivity scale =
  let n, buckets, queries =
    match scale with
    | Bench_config.Small -> (20_000, 20, 50)
    | Bench_config.Default -> (100_000, 25, 100)
    | Bench_config.Full -> (500_000, 32, 200)
  in
  Report.section "EXT-SELECTIVITY: value-domain histograms on a skewed column";
  Report.note "%d tuples, Zipf(1.1) over 10k values, B=%d; avg |selectivity error| over %d random range predicates"
    n buckets queries;
  let rng = Rng.create ~seed:81 in
  let column = Array.init n (fun _ -> Float.of_int (Rng.zipf rng ~n:10_000 ~skew:1.1)) in
  let truth lo hi =
    let c = Array.fold_left (fun a v -> if v >= lo && v <= hi then a + 1 else a) 0 column in
    Float.of_int c /. Float.of_int n
  in
  let qrng = Rng.create ~seed:82 in
  let predicates =
    Array.init queries (fun _ ->
        (* skew the predicate starts like the data so hot ranges get hit *)
        let lo = Float.of_int (Rng.zipf qrng ~n:10_000 ~skew:1.1) in
        let hi = lo +. Float.of_int (Rng.int qrng 500) in
        (lo, hi))
  in
  let g = Sh_quantile.Gk.create ~epsilon:0.005 in
  Array.iter (Sh_quantile.Gk.insert g) column;
  let methods =
    [
      ("equi-width", VH.selectivity_range (VH.equi_width column ~buckets));
      ("equi-depth", VH.selectivity_range (VH.equi_depth column ~buckets));
      ("equi-depth-GK (1-pass)", VH.selectivity_range (VH.equi_depth_of_gk g ~buckets));
      ("v-optimal", VH.selectivity_range (VH.v_optimal column ~buckets ~domain_bins:(16 * buckets)));
      ( "wavelet [MVW]",
        Sh_selectivity.Wavelet_histogram.selectivity_range
          (Sh_selectivity.Wavelet_histogram.build column ~coeffs:buckets
             ~domain_bins:(16 * buckets)) );
    ]
  in
  let rows =
    List.map
      (fun (name, sel) ->
        let err = ref 0.0 and worst = ref 0.0 in
        Array.iter
          (fun (lo, hi) ->
            let e = Float.abs (sel ~lo ~hi -. truth lo hi) in
            err := !err +. e;
            worst := Float.max !worst e)
          predicates;
        [
          name;
          Printf.sprintf "%.5f" (!err /. Float.of_int queries);
          Printf.sprintf "%.5f" !worst;
        ])
      methods
  in
  Report.table ~headers:[ "method"; "avg |sel error|"; "worst |sel error|" ] rows
