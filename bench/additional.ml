(* Section 5.2 "Additional Experiments":
     - AgglomerativeHistogram vs a wavelet synopsis (accuracy and time)
     - AgglomerativeHistogram vs the optimal DP of Jagadish et al.
       (accuracy parity, construction-time savings growing with data size)
     - time-series similarity: histogram synopses vs APCA (false positives
       during filter-and-refine search), whole-match and subsequence-match *)

module Rng = Sh_util.Rng
module Source = Sh_gen.Source
module Wk = Sh_gen.Workloads
module P = Sh_prefix.Prefix_sums
module H = Sh_histogram.Histogram
module V = Sh_histogram.Vopt
module AG = Stream_histogram.Agglomerative
module FW = Stream_histogram.Fixed_window
module Syn = Sh_wavelet.Synopsis
module E = Sh_query.Estimator
module Q = Sh_query.Workload
module Ev = Sh_query.Evaluate
module Seg = Sh_timeseries.Segments
module Apca = Sh_timeseries.Apca
module Paa = Sh_timeseries.Paa
module Sim = Sh_timeseries.Similarity

(* ---------------------------- agglomerative vs wavelet (accuracy+time) *)

let agg_vs_wavelet scale =
  let sizes, buckets, queries =
    match scale with
    | Bench_config.Small -> ([ 5_000 ], 16, 200)
    | Bench_config.Default -> ([ 10_000; 30_000; 100_000 ], 16, 500)
    | Bench_config.Full -> ([ 10_000; 100_000; 1_000_000 ], 32, 1_000)
  in
  Report.section "EXP-AGG-WAV: agglomerative stream histogram vs wavelet (agglomerative model)";
  Report.note "one pass over the whole stream; accuracy = avg |error| of %d random range sums" queries;
  Report.note "stream-wav = incrementally maintained top-B wavelet (the [MVW00]-style baseline)";
  let rows =
    List.map
      (fun n ->
        let data = Source.take (Wk.network (Rng.create ~seed:7) Wk.default_network) n in
        let ag = AG.create ~buckets ~epsilon:0.1 in
        let (), t_agg = Report.time (fun () -> Array.iter (AG.push ag) data) in
        let wave = ref (Syn.build [| 0.0 |] ~coeffs:1) in
        let (), t_wav = Report.time (fun () -> wave := Syn.build data ~coeffs:buckets) in
        let sw = Sh_wavelet.Streaming.create ~budget:buckets in
        let (), t_sw = Report.time (fun () -> Array.iter (Sh_wavelet.Streaming.push sw) data) in
        let truth = E.exact (P.make data) in
        let qs = Q.random_ranges (Rng.create ~seed:5) ~n ~count:queries in
        let mae est = (Ev.range_sum_errors ~truth est qs).Sh_util.Metrics.mae in
        [
          string_of_int n;
          Report.fmt_g (mae (E.of_histogram (AG.current_histogram ag)));
          Report.fmt_g (mae (E.of_wavelet !wave));
          Report.fmt_g (mae (E.of_streaming_wavelet sw));
          Report.fmt_time t_agg;
          Report.fmt_time t_wav;
          Report.fmt_time t_sw;
          string_of_int (AG.space_in_entries ag);
        ])
      sizes
  in
  Report.table
    ~headers:
      [ "stream-len"; "agg avg-err"; "offline-wav err"; "stream-wav err"; "agg time";
        "offline-wav time"; "stream-wav time"; "agg entries" ]
    rows

(* -------------------------------- agglomerative vs optimal (Jagadish) *)

let agg_vs_opt scale =
  let sizes, buckets =
    match scale with
    | Bench_config.Small -> ([ 1_000; 2_000 ], 16)
    | Bench_config.Default -> ([ 1_000; 2_000; 5_000; 10_000; 20_000 ], 32)
    | Bench_config.Full -> ([ 2_000; 5_000; 10_000; 20_000; 50_000 ], 32)
  in
  Report.section "EXP-AGG-OPT: agglomerative vs optimal histogram construction";
  Report.note "SSE ratio should stay within (1 + eps) = 1.1; time savings grow with dataset size";
  let rows =
    List.map
      (fun n ->
        let data = Source.take (Wk.network (Rng.create ~seed:17) Wk.default_network) n in
        let p = P.make data in
        let ag = AG.create ~buckets ~epsilon:0.1 in
        let (), t_agg = Report.time (fun () -> Array.iter (AG.push ag) data) in
        let opt_hist = ref None in
        let (), t_opt = Report.time (fun () -> opt_hist := Some (V.build_prefix p ~buckets)) in
        let opt_sse =
          match !opt_hist with Some h -> H.sse_against h p | None -> assert false
        in
        let agg_sse = H.sse_against (AG.current_histogram ag) p in
        [
          string_of_int n;
          Report.fmt_g agg_sse;
          Report.fmt_g opt_sse;
          Printf.sprintf "%.4f" (if opt_sse > 0.0 then agg_sse /. opt_sse else 1.0);
          Report.fmt_time t_agg;
          Report.fmt_time t_opt;
          Printf.sprintf "%.1fx" (t_opt /. Float.max 1e-9 t_agg);
        ])
      sizes
  in
  Report.table
    ~headers:
      [ "n"; "agg SSE"; "optimal SSE"; "SSE ratio"; "agg time"; "optimal time"; "speedup" ]
    rows

(* ------------------------------------------- similarity: whole series *)

let synopses ~segments =
  [
    ("APCA", fun s -> Apca.build s ~segments);
    ("PAA", fun s -> Paa.build s ~segments);
    ( "AggHist",
      fun s ->
        let ag = AG.create ~buckets:segments ~epsilon:0.1 in
        Array.iter (AG.push ag) s;
        Seg.of_histogram (AG.current_histogram ag) );
    ( "FWHist",
      fun s ->
        let fw = FW.create ~window:(Array.length s) ~buckets:segments ~epsilon:0.1 in
        Array.iter (FW.push fw) s;
        Seg.of_histogram (FW.current_histogram fw) );
  ]

let run_similarity ~name ~series ~segments ~radius_quantile ~query_count =
  Report.note "synopsis budget: %d segments per series; %d series; %d queries" segments
    (Array.length series) query_count;
  (* Choose a radius that returns a small, non-trivial answer set: the
     given quantile of pairwise distances from the first series. *)
  let d0 = Array.map (fun s -> Seg.euclidean series.(0) s) series in
  Array.sort compare d0;
  let radius = d0.(int_of_float (radius_quantile *. Float.of_int (Array.length d0))) in
  let rows =
    List.map
      (fun (sname, synopsis) ->
        let coll, t_build =
          Report.time (fun () -> Sim.make_collection ~name:sname ~synopsis series)
        in
        let fp = ref 0 and cand = ref 0 and matches = ref 0 and fp_knn = ref 0 in
        for qi = 0 to query_count - 1 do
          let query = series.(qi * Array.length series / query_count) in
          let _, stats = Sim.range_search coll ~query ~radius in
          fp := !fp + stats.Sim.false_positives;
          cand := !cand + stats.Sim.candidates;
          matches := !matches + stats.Sim.true_matches;
          let _, kstats = Sim.knn_search coll ~query ~k:5 in
          fp_knn := !fp_knn + kstats.Sim.false_positives
        done;
        let per_query v = Float.of_int v /. Float.of_int query_count in
        [
          sname;
          Printf.sprintf "%.2f" (per_query !fp);
          Printf.sprintf "%.2f" (per_query !cand);
          Printf.sprintf "%.2f" (per_query !matches);
          Printf.sprintf "%.2f" (per_query !fp_knn);
          Report.fmt_time t_build;
        ])
      (synopses ~segments)
  in
  ignore name;
  Report.table
    ~headers:
      [ "synopsis"; "range FP/query"; "candidates/query"; "matches/query"; "kNN extra refs"; "build time" ]
    rows

let similarity_whole scale =
  let count, len, segments, queries =
    match scale with
    | Bench_config.Small -> (40, 128, 8, 10)
    | Bench_config.Default -> (120, 256, 12, 30)
    | Bench_config.Full -> (400, 512, 16, 60)
  in
  Report.section "EXP-SIM-WHOLE: whole-series similarity, histogram synopses vs APCA";
  Report.note "step-structured series: segment placement is what separates the synopses";
  let series =
    Wk.step_family (Rng.create ~seed:23) ~count ~len ~shapes:(count / 5)
      ~steps:(2 * segments) ~noise:8.0
  in
  run_similarity ~name:"whole" ~series ~segments ~radius_quantile:0.12 ~query_count:queries

let similarity_subseq scale =
  let data_len, w, step, segments, queries =
    match scale with
    | Bench_config.Small -> (2_000, 64, 16, 8, 8)
    | Bench_config.Default -> (8_000, 128, 16, 12, 20)
    | Bench_config.Full -> (30_000, 256, 16, 16, 40)
  in
  Report.section "EXP-SIM-SUB: subsequence similarity over a long stream";
  Report.note "windows of length %d every %d positions over a %d-point step signal" w step data_len;
  let data =
    Source.take
      (Wk.step_signal (Rng.create ~seed:29) ~segment_mean:(w / 6) ~noise_stddev:6.0 ())
      data_len
  in
  let windows = Array.map snd (Sim.sliding_windows data ~w ~step) in
  run_similarity ~name:"subseq" ~series:windows ~segments ~radius_quantile:0.08 ~query_count:queries
