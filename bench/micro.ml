(* Bechamel micro-benchmarks: one Test.make per core operation.  The
   fixed-window per-point series across window lengths is the check of
   Theorem 1's polylog growth: per-point cost should grow far slower than
   the window length. *)

open Bechamel
open Toolkit

module Rng = Sh_util.Rng
module Source = Sh_gen.Source
module Wk = Sh_gen.Workloads
module P = Sh_prefix.Prefix_sums
module SP = Sh_prefix.Sliding_prefix
module V = Sh_histogram.Vopt
module FW = Stream_histogram.Fixed_window
module AG = Stream_histogram.Agglomerative
module Syn = Sh_wavelet.Synopsis

let network ~seed ~len = Source.take (Wk.network (Rng.create ~seed) Wk.default_network) len

(* A cyclic feed so benchmarked closures never run out of input. *)
let feeder data =
  let i = ref 0 in
  fun () ->
    let v = data.(!i) in
    i := (!i + 1) mod Array.length data;
    v

let fw_push_and_refresh ~window ~buckets ~epsilon =
  let data = network ~seed:1 ~len:(2 * window) in
  let next = feeder data in
  let fw = FW.create ~window ~buckets ~epsilon in
  Array.iter (FW.push fw) data;
  FW.refresh fw;
  Test.make
    ~name:(Printf.sprintf "fw.push_and_refresh n=%d B=%d eps=%g" window buckets epsilon)
    (Staged.stage (fun () -> FW.push_and_refresh fw (next ())))

let fw_push_only =
  let fw = FW.create ~window:4096 ~buckets:16 ~epsilon:0.1 in
  let next = feeder (network ~seed:2 ~len:8192) in
  Test.make ~name:"fw.push (prefix update only)" (Staged.stage (fun () -> FW.push fw (next ())))

let ag_push =
  let ag = AG.create ~buckets:16 ~epsilon:0.1 in
  let next = feeder (network ~seed:3 ~len:8192) in
  Test.make ~name:"agglomerative.push B=16" (Staged.stage (fun () -> AG.push ag (next ())))

let sliding_push =
  let sp = SP.create ~capacity:4096 in
  let next = feeder (network ~seed:4 ~len:8192) in
  Test.make ~name:"sliding_prefix.push n=4096" (Staged.stage (fun () -> SP.push sp (next ())))

let vopt_build ~n ~buckets =
  let data = network ~seed:5 ~len:n in
  let p = P.make data in
  Test.make
    ~name:(Printf.sprintf "vopt.build n=%d B=%d" n buckets)
    (Staged.stage (fun () -> ignore (V.optimal_error p ~buckets)))

let wavelet_build ~n ~coeffs =
  let data = network ~seed:6 ~len:n in
  Test.make
    ~name:(Printf.sprintf "wavelet.build n=%d c=%d" n coeffs)
    (Staged.stage (fun () -> ignore (Syn.build data ~coeffs)))

let gk_insert =
  let g = Sh_quantile.Gk.create ~epsilon:0.01 in
  let next = feeder (network ~seed:7 ~len:8192) in
  Test.make ~name:"gk.insert eps=0.01" (Staged.stage (fun () -> Sh_quantile.Gk.insert g (next ())))

let streaming_wavelet_push =
  let sw = Sh_wavelet.Streaming.create ~budget:32 in
  let next = feeder (network ~seed:10 ~len:8192) in
  Test.make ~name:"streaming_wavelet.push c=32"
    (Staged.stage (fun () -> Sh_wavelet.Streaming.push sw (next ())))

let mrl_insert =
  let m = Sh_quantile.Mrl.create ~buffer_size:256 in
  let next = feeder (network ~seed:11 ~len:8192) in
  Test.make ~name:"mrl.insert k=256" (Staged.stage (fun () -> Sh_quantile.Mrl.insert m (next ())))

let heavy_hitters_add =
  let h = Sh_mining.Heavy_hitters.create ~capacity:64 in
  let next = feeder (network ~seed:12 ~len:8192) in
  Test.make ~name:"heavy_hitters.add k=64"
    (Staged.stage (fun () -> Sh_mining.Heavy_hitters.add h (next ())))

let mhist_build =
  let rng = Rng.create ~seed:13 in
  let cells = Array.init 32 (fun _ -> Array.init 32 (fun _ -> Float.of_int (Rng.int rng 100))) in
  Test.make ~name:"mhist.build 32x32 B=16"
    (Staged.stage (fun () -> ignore (Sh_multidim.Mhist.build cells ~buckets:16)))

let dct_build =
  let data = network ~seed:14 ~len:512 in
  Test.make ~name:"dct.build n=512 c=32"
    (Staged.stage (fun () -> ignore (Sh_wavelet.Dct.build data ~coeffs:32)))

let query_ops =
  let data = network ~seed:8 ~len:4096 in
  let h = V.build data ~buckets:32 in
  let s = Syn.build data ~coeffs:32 in
  let rng = Rng.create ~seed:9 in
  [
    Test.make ~name:"histogram.range_sum B=32"
      (Staged.stage (fun () ->
           let lo = 1 + Rng.int rng 4000 in
           ignore (Sh_histogram.Histogram.range_sum_estimate h ~lo ~hi:(lo + 90))));
    Test.make ~name:"wavelet.range_sum c=32"
      (Staged.stage (fun () ->
           let lo = 1 + Rng.int rng 4000 in
           ignore (Syn.range_sum_estimate s ~lo ~hi:(lo + 90))));
  ]

let pretty_ns ns =
  if Float.is_nan ns then "n/a"
  else if ns < 1e3 then Printf.sprintf "%.0f ns" ns
  else if ns < 1e6 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else if ns < 1e9 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else Printf.sprintf "%.2f s" (ns /. 1e9)

(* Run a bechamel group and return [(name, ns/op)] rows, sorted by name. *)
let measure_group ~quota tests =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"micro" tests) in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let est =
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) -> x
        | _ -> Float.nan
      in
      rows := (name, est) :: !rows)
    results;
  List.sort (fun (a, _) (b, _) -> compare a b) !rows

let run_group ~quota tests =
  Report.table ~headers:[ "operation"; "time/op" ]
    (List.map (fun (name, ns) -> [ name; pretty_ns ns ]) (measure_group ~quota tests))

(* --------------------------- cold vs warm fixed-window refresh head-to-head

   The warm-start rebuild (hint-seeded boundary searches + double-buffered
   lists) must beat a cold rebuild on both wall-clock and HERROR
   evaluations; this experiment measures both and feeds BENCH_fixed_window
   .json via --json so the speedup is tracked across PRs. *)

let fw_refresh_pair ~window ~buckets ~epsilon =
  let mk ~kind ~op =
    let data = network ~seed:21 ~len:(2 * window) in
    let next = feeder data in
    let fw = FW.create ~window ~buckets ~epsilon in
    Array.iter (FW.push fw) data;
    FW.refresh fw;
    Test.make
      ~name:(Printf.sprintf "fw.refresh.%s n=%d B=%d eps=%g" kind window buckets epsilon)
      (Staged.stage (fun () -> op fw (next ())))
  in
  [
    mk ~kind:"warm" ~op:(fun fw v -> FW.push_and_refresh fw v);
    mk ~kind:"cold" ~op:(fun fw v ->
        FW.push fw v;
        FW.refresh ~cold:true fw);
  ]

(* Per-arrival work counters for one slide each way, from identical
   states.  Three regimes share the same data: warm with the HERROR memo
   on (the production path), warm with the memo off (what every probe
   would cost if executed), and cold.  [steps] counts only executed probe
   steps, so warm-memo-on steps < warm-memo-off steps is the memo win. *)
type eval_stats = {
  evals : float;       (* logical HERROR evaluations / push (memo hits included) *)
  steps : float;       (* executed search steps / push *)
  scan : float;        (* subset of [steps] inside candidate scans / push *)
  hits : int;          (* boundary-hint hits over the whole run *)
  misses : int;
  memo_probes : int;
  memo_hits : int;
}

let fw_eval_stats ~window ~buckets ~epsilon ~pushes =
  let data = network ~seed:22 ~len:(window + pushes) in
  let run ~cold ~memo =
    let fw = FW.create ~window ~buckets ~epsilon in
    FW.set_memoisation fw memo;
    for i = 0 to window - 1 do
      FW.push fw data.(i)
    done;
    FW.refresh fw;
    let before = FW.work_counters fw in
    for i = window to window + pushes - 1 do
      FW.push fw data.(i);
      FW.refresh ~cold fw
    done;
    let after = FW.work_counters fw in
    let per f = Float.of_int (f after - f before) /. Float.of_int pushes in
    {
      evals = per (fun c -> c.FW.herror_evaluations);
      steps = per (fun c -> c.FW.search_steps);
      scan = per (fun c -> c.FW.scan_steps);
      hits = after.FW.hint_hits - before.FW.hint_hits;
      misses = after.FW.hint_misses - before.FW.hint_misses;
      memo_probes = after.FW.memo_probes - before.FW.memo_probes;
      memo_hits = after.FW.memo_hits - before.FW.memo_hits;
    }
  in
  (run ~cold:false ~memo:true, run ~cold:false ~memo:false, run ~cold:true ~memo:true)

(* ------------------------------------ steady-state allocation per push

   The SoA kernel owns every buffer it touches (interval columns, memo
   table, refresh scratch), so after warm-up a push + warm refresh should
   allocate almost nothing on the minor heap — the committed budget below
   is the CI regression gate (ci.yml fails the bench-smoke job when the
   measured figure exceeds it by more than 25%).  Measured at a fixed
   configuration regardless of --scale so the JSON is comparable across
   runs; the floor is ~2 words/push for the boxed float crossing the
   [push] boundary. *)
let alloc_window = 1024
let alloc_buckets = 8
let alloc_epsilon = 0.5
let budget_words_per_push = 64.0

let fw_alloc_stats ~pushes ~cold =
  let window = alloc_window in
  let warmup = 2 * window in
  let data = network ~seed:23 ~len:(window + warmup + pushes) in
  let fw = FW.create ~window ~buckets:alloc_buckets ~epsilon:alloc_epsilon in
  for i = 0 to window - 1 do
    FW.push fw data.(i)
  done;
  FW.refresh fw;
  (* warm-up slides: let the pooled buffers reach their steady-state sizes *)
  for i = window to window + warmup - 1 do
    FW.push fw data.(i);
    FW.refresh ~cold fw
  done;
  let w0 = Gc.minor_words () in
  for i = window + warmup to window + warmup + pushes - 1 do
    FW.push fw data.(i);
    FW.refresh ~cold fw
  done;
  (Gc.minor_words () -. w0) /. Float.of_int pushes

let run_fw scale =
  Report.section "BENCH-MICRO-FW: cold vs warm fixed-window refresh";
  let quota, windows, counter_window, pushes =
    match scale with
    | Bench_config.Small -> (0.25, [ 256; 1024 ], 1024, 4)
    | Bench_config.Default -> (0.5, [ 256; 1024; 4096 ], 4096, 8)
    | Bench_config.Full -> (1.0, [ 256; 1024; 4096 ], 4096, 8)
  in
  let buckets = 8 and epsilon = 0.5 in
  let rows =
    measure_group ~quota
      (List.concat_map (fun w -> fw_refresh_pair ~window:w ~buckets ~epsilon) windows)
  in
  Report.table ~headers:[ "operation"; "time/op" ]
    (List.map (fun (name, ns) -> [ name; pretty_ns ns ]) rows);
  let cb = 16 and ce = 0.1 in
  let warm, warm_nomemo, cold =
    fw_eval_stats ~window:counter_window ~buckets:cb ~epsilon:ce ~pushes
  in
  let hit_rate s =
    if s.memo_probes = 0 then 0.0
    else Float.of_int s.memo_hits /. Float.of_int s.memo_probes
  in
  Report.note "per push_and_refresh at n=%d B=%d eps=%g over %d arrivals:" counter_window cb ce
    pushes;
  Report.table
    ~headers:
      [ "rebuild"; "herror evals/push"; "search steps/push"; "scan steps/push"; "hint hits";
        "hint misses"; "memo hit rate" ]
    [
      [ "warm (memo)"; Report.fmt_g warm.evals; Report.fmt_g warm.steps; Report.fmt_g warm.scan;
        string_of_int warm.hits; string_of_int warm.misses;
        Printf.sprintf "%.3f" (hit_rate warm) ];
      [ "warm (no memo)"; Report.fmt_g warm_nomemo.evals; Report.fmt_g warm_nomemo.steps;
        Report.fmt_g warm_nomemo.scan; string_of_int warm_nomemo.hits;
        string_of_int warm_nomemo.misses; "-" ];
      [ "cold"; Report.fmt_g cold.evals; Report.fmt_g cold.steps; Report.fmt_g cold.scan;
        "-"; "-"; Printf.sprintf "%.3f" (hit_rate cold) ];
    ];
  Report.note "eval reduction (cold/warm): %.2fx; memo step reduction (no-memo/memo): %.2fx"
    (cold.evals /. warm.evals)
    (warm_nomemo.steps /. warm.steps);
  let alloc_pushes = match scale with Bench_config.Small -> 128 | _ -> 256 in
  let warm_words = fw_alloc_stats ~pushes:alloc_pushes ~cold:false in
  let cold_words = fw_alloc_stats ~pushes:alloc_pushes ~cold:true in
  Report.note "steady-state minor words/push at n=%d B=%d eps=%g over %d pushes:" alloc_window
    alloc_buckets alloc_epsilon alloc_pushes;
  Report.table
    ~headers:[ "rebuild"; "minor words/push"; "budget" ]
    [
      [ "warm"; Report.fmt_g warm_words; Report.fmt_g budget_words_per_push ];
      [ "cold"; Report.fmt_g cold_words; "-" ];
    ];
  let bench_json =
    Report.Jlist
      (List.map
         (fun (name, ns) -> Report.Jobj [ ("name", Report.Jstring name); ("ns_per_op", Report.Jfloat ns) ])
         rows)
  in
  let side s extra =
    Report.Jobj
      ([ ("herror_evals_per_push", Report.Jfloat s.evals);
         ("search_steps_per_push", Report.Jfloat s.steps);
         ("scan_steps_per_push", Report.Jfloat s.scan) ]
      @ extra)
  in
  let memo_fields s =
    [
      ("memo_probes", Report.Jint s.memo_probes);
      ("memo_hits", Report.Jint s.memo_hits);
      ("memo_hit_rate", Report.Jfloat (hit_rate s));
    ]
  in
  Report.json_add "fixed_window"
    (Report.Jobj
       [
         ("bench_params", Report.Jobj [ ("buckets", Report.Jint buckets); ("epsilon", Report.Jfloat epsilon) ]);
         ("benchmarks", bench_json);
         ("registry", Report.registry_json ());
         ( "work_counters",
           Report.Jobj
             [
               ("window", Report.Jint counter_window);
               ("buckets", Report.Jint cb);
               ("epsilon", Report.Jfloat ce);
               ("pushes", Report.Jint pushes);
               ( "warm",
                 side warm
                   ([ ("hint_hits", Report.Jint warm.hits);
                      ("hint_misses", Report.Jint warm.misses) ]
                   @ memo_fields warm) );
               ( "warm_no_memo",
                 side warm_nomemo
                   [ ("hint_hits", Report.Jint warm_nomemo.hits);
                     ("hint_misses", Report.Jint warm_nomemo.misses) ] );
               ("cold", side cold (memo_fields cold));
               ("eval_reduction", Report.Jfloat (cold.evals /. warm.evals));
               ("memo_step_reduction", Report.Jfloat (warm_nomemo.steps /. warm.steps));
             ] );
         ( "alloc",
           Report.Jobj
             [
               ("window", Report.Jint alloc_window);
               ("buckets", Report.Jint alloc_buckets);
               ("epsilon", Report.Jfloat alloc_epsilon);
               ("pushes", Report.Jint alloc_pushes);
               ("budget_words_per_push", Report.Jfloat budget_words_per_push);
               ("warm_words_per_push", Report.Jfloat warm_words);
               ("cold_words_per_push", Report.Jfloat cold_words);
             ] );
       ])

(* ------------------------------------------- telemetry overhead budget

   Disabled-mode telemetry must be invisible on the hottest path: the
   counters are the same single-word stores as the int fields they
   replaced, and spans cost one boolean load.  Measured with a
   deterministic fixed-work harness (fresh structure per rep over the
   identical stream segment — no cyclic-feed drift), the same shape used
   to record the pre-telemetry baseline in EXPERIMENTS.md. *)

let obs_push_rate ~window ~buckets ~epsilon ~pushes =
  let data = network ~seed:1 ~len:(window + pushes) in
  let run () =
    let fw = FW.create ~window ~buckets ~epsilon in
    for i = 0 to window - 1 do
      FW.push fw data.(i)
    done;
    FW.refresh fw;
    let t0 = Unix.gettimeofday () in
    for i = window to window + pushes - 1 do
      FW.push_and_refresh fw data.(i)
    done;
    (Unix.gettimeofday () -. t0) /. Float.of_int pushes *. 1e9
  in
  ignore (run ());
  (* warmup rep *)
  Array.init 4 (fun _ -> run ())

let run_obs scale =
  Report.section "BENCH-MICRO-OBS: telemetry overhead on fw.push_and_refresh";
  let window, buckets, epsilon, pushes =
    match scale with
    | Bench_config.Small -> (1024, 8, 0.5, 64)
    | Bench_config.Default | Bench_config.Full -> (4096, 16, 0.1, 40)
  in
  let mean a = Array.fold_left ( +. ) 0.0 a /. Float.of_int (Array.length a) in
  let was_enabled = Sh_obs.Obs.enabled () in
  Sh_obs.Obs.set_enabled false;
  let disabled = obs_push_rate ~window ~buckets ~epsilon ~pushes in
  Sh_obs.Obs.set_enabled true;
  let enabled = obs_push_rate ~window ~buckets ~epsilon ~pushes in
  Sh_obs.Obs.set_enabled was_enabled;
  let row tag a =
    [ tag; pretty_ns (mean a);
      String.concat " " (Array.to_list (Array.map (fun ns -> Printf.sprintf "%.0f" ns) a)) ]
  in
  Report.note "n=%d B=%d eps=%g, %d timed pushes per rep, 4 reps" window buckets epsilon pushes;
  Report.table
    ~headers:[ "telemetry"; "mean time/op"; "reps (ns/op)" ]
    [ row "disabled" disabled; row "enabled (spans on)" enabled ];
  Report.note "enabled/disabled ratio: %.4f" (mean enabled /. mean disabled);
  Report.json_add "obs_overhead"
    (Report.Jobj
       [
         ("window", Report.Jint window);
         ("buckets", Report.Jint buckets);
         ("epsilon", Report.Jfloat epsilon);
         ("pushes", Report.Jint pushes);
         ("disabled_ns_per_op", Report.Jlist (Array.to_list (Array.map (fun f -> Report.Jfloat f) disabled)));
         ("enabled_ns_per_op", Report.Jlist (Array.to_list (Array.map (fun f -> Report.Jfloat f) enabled)));
         ("enabled_over_disabled", Report.Jfloat (mean enabled /. mean disabled));
       ])

(* ----------------------------- cross-domain metric-plane contention

   The tentpole claim of the per-domain telemetry planes: N domains
   incrementing the SAME counter should scale like N independent plain
   stores, because each domain writes only its own padded row.  The
   baseline is what the registry used to do — every domain hammering one
   shared [Atomic.t] cell, serialising on its cache line.  Both variants
   run the identical spawn/barrier/loop harness, so the measured gap is
   cacheline traffic, not harness shape.  [obs.plane_collisions] must not
   move: every bench domain gets a DLS slot. *)

let contention_ns ~domains ~iters incr_fn =
  let go = Atomic.make false in
  let out = Array.make domains 0.0 in
  let workers =
    Array.init domains (fun d ->
        Domain.spawn (fun () ->
            while not (Atomic.get go) do
              Domain.cpu_relax ()
            done;
            let t0 = Unix.gettimeofday () in
            for _ = 1 to iters do
              incr_fn ()
            done;
            out.(d) <- (Unix.gettimeofday () -. t0) /. Float.of_int iters *. 1e9))
  in
  Atomic.set go true;
  Array.iter Domain.join workers;
  Array.fold_left ( +. ) 0.0 out /. Float.of_int domains

let run_contention scale =
  Report.section "BENCH-MICRO-CONTENTION: shared atomic vs per-domain plane counter";
  let iters =
    match scale with
    | Bench_config.Small -> 200_000
    | Bench_config.Default | Bench_config.Full -> 1_000_000
  in
  let domain_counts = [ 1; 2; 4 ] in
  let host_cores = Domain.recommended_domain_count () in
  let plane_counter = Sh_obs.Obs.counter "bench.plane_contention" in
  let collisions0 = Sh_obs.Obs.plane_collisions () in
  (* warmup: touch both paths once so lazy row allocation is off-clock *)
  ignore (contention_ns ~domains:1 ~iters:1000 (fun () -> Sh_obs.Metric.incr plane_counter));
  let rows =
    List.map
      (fun d ->
        let shared_cell = Atomic.make 0 in
        let shared = contention_ns ~domains:d ~iters (fun () -> Atomic.incr shared_cell) in
        let plane =
          contention_ns ~domains:d ~iters (fun () -> Sh_obs.Metric.incr plane_counter)
        in
        (d, shared, plane))
      domain_counts
  in
  let collisions = Sh_obs.Obs.plane_collisions () - collisions0 in
  Report.note "%d increments per domain per variant; host cores: %d%s" iters host_cores
    (if host_cores < List.fold_left max 1 domain_counts then
       " — multi-domain rows oversubscribe and mostly measure scheduling"
     else "");
  Report.table
    ~headers:[ "domains"; "shared atomic ns/incr"; "plane ns/incr"; "shared/plane" ]
    (List.map
       (fun (d, s, p) ->
         [ string_of_int d; Printf.sprintf "%.2f" s; Printf.sprintf "%.2f" p;
           Printf.sprintf "%.2fx" (s /. p) ])
       rows);
  Report.note "plane_collisions delta over the experiment: %d (must stay 0)" collisions;
  Report.json_add "contention"
    (Report.Jobj
       [
         ("iters_per_domain", Report.Jint iters);
         ("host_cores", Report.Jint host_cores);
         ("plane_collisions_delta", Report.Jint collisions);
         ( "rows",
           Report.Jlist
             (List.map
                (fun (d, s, p) ->
                  Report.Jobj
                    [
                      ("domains", Report.Jint d);
                      ("shared_atomic_ns_per_incr", Report.Jfloat s);
                      ("plane_ns_per_incr", Report.Jfloat p);
                      ("shared_over_plane", Report.Jfloat (s /. p));
                    ])
                rows) );
       ])

(* ------------------------------ parallel multi-stream ingest scaling

   Shard independence means the engine's answers cannot change with the
   pool size (property-tested in test_par); this experiment measures what
   does change: wall-clock throughput of batched ingest + refresh sweeps
   as the domain pool grows.  Speedups need real cores — the JSON records
   the host's recommended domain count so runs from single-core containers
   are legible (there, extra domains only add synchronisation cost). *)

module Pool = Sh_par.Domain_pool
module SE = Sh_par.Shard_engine
module Qop = Stream_histogram.Query_op
module FG = Stream_histogram.Fw_group

(* Pre-generated rounds of (key, value) arrivals, round-robin over shards,
   each shard's values drawn from its own split_ix-derived source — the
   same data for every pool size, so only wall-clock varies. *)
let par_round_data ~shards ~batch ~rounds ~seed =
  let root = Rng.create ~seed in
  let sources =
    Array.init shards (fun k -> Wk.network (Rng.split_ix root k) Wk.default_network)
  in
  Array.init rounds (fun _ ->
      Array.init batch (fun i ->
          let k = i mod shards in
          (k, sources.(k) ())))

let run_par scale =
  Report.section "BENCH-PARALLEL: sharded multi-stream ingest across a domain pool";
  let shards, window, buckets, epsilon, batch, rounds, domain_counts =
    match scale with
    | Bench_config.Small -> (16, 512, 8, 0.5, 256, 2, [ 1; 2 ])
    | Bench_config.Default | Bench_config.Full -> (16, 4096, 16, 0.1, 1024, 2, [ 1; 2; 4; 8 ])
  in
  let prefill = (par_round_data ~shards ~batch:(shards * window) ~rounds:1 ~seed:31).(0) in
  let round_data = par_round_data ~shards ~batch ~rounds ~seed:32 in
  let host_cores = Domain.recommended_domain_count () in
  let measure ~domains ~cold =
    Pool.with_pool ~domains (fun pool ->
        let eng = SE.create ~pool ~shards ~window ~buckets ~epsilon in
        (* steady state before the clock starts: windows full, lists warm *)
        SE.ingest eng prefill;
        SE.refresh_all eng;
        let t0 = Unix.gettimeofday () in
        Array.iter
          (fun b ->
            SE.ingest eng b;
            SE.refresh_all ~cold eng)
          round_data;
        let dt = Unix.gettimeofday () -. t0 in
        Float.of_int (batch * rounds) /. dt)
  in
  (* one mode left — the JSON keeps the [modes] list shape so report
     tooling and cross-run diffs stay stable *)
  let mode_rows =
    [
      ( "pinned",
        List.map
          (fun d -> (d, measure ~domains:d ~cold:false, measure ~domains:d ~cold:true))
          domain_counts );
    ]
  in
  Report.note "S=%d shards, window n=%d, B=%d, eps=%g; %d rounds of %d-point batches, each \
               followed by a full refresh sweep" shards window buckets epsilon rounds batch;
  Report.note "host cores (recommended domain count): %d%s" host_cores
    (if host_cores < List.fold_left max 1 domain_counts then
       " — domain counts above this only measure oversubscription"
     else "");
  Report.table
    ~headers:[ "mode"; "domains"; "warm pts/s"; "ns/pt"; "speedup"; "cold pts/s"; "speedup" ]
    (List.concat_map
       (fun (mode, rows) ->
         let warm1, cold1 =
           match rows with (_, w, c) :: _ -> (w, c) | [] -> (Float.nan, Float.nan)
         in
         List.map
           (fun (d, w, c) ->
             [ mode; string_of_int d; Printf.sprintf "%.0f" w;
               Printf.sprintf "%.0f" (1e9 /. w); Printf.sprintf "%.2fx" (w /. warm1);
               Printf.sprintf "%.0f" c; Printf.sprintf "%.2fx" (c /. cold1) ])
           rows)
       mode_rows);
  Report.json_add "parallel"
    (Report.Jobj
       [
         ("shards", Report.Jint shards);
         ("window", Report.Jint window);
         ("buckets", Report.Jint buckets);
         ("epsilon", Report.Jfloat epsilon);
         ("batch", Report.Jint batch);
         ("rounds", Report.Jint rounds);
         ("host_cores", Report.Jint host_cores);
         ("recommended_domain_count", Report.Jint host_cores);
         ( "modes",
           Report.Jlist
             (List.map
                (fun (mode, rows) ->
                  let warm1, cold1 =
                    match rows with (_, w, c) :: _ -> (w, c) | [] -> (Float.nan, Float.nan)
                  in
                  Report.Jobj
                    [
                      ("mode", Report.Jstring mode);
                      ( "scaling",
                        Report.Jlist
                          (List.map
                             (fun (d, w, c) ->
                               Report.Jobj
                                 [
                                   ("domains", Report.Jint d);
                                   ("warm_points_per_sec", Report.Jfloat w);
                                   ("warm_ns_per_point", Report.Jfloat (1e9 /. w));
                                   ("warm_speedup_vs_1", Report.Jfloat (w /. warm1));
                                   ("cold_points_per_sec", Report.Jfloat c);
                                   ("cold_ns_per_point", Report.Jfloat (1e9 /. c));
                                   ("cold_speedup_vs_1", Report.Jfloat (c /. cold1));
                                 ])
                             rows) );
                    ])
                mode_rows) );
       ])

(* -------------------------------------- reads concurrent with ingest

   The wait-free read plane's headline number: query throughput from a
   dedicated reader domain while the engine ingests continuously.
   Queries answer from the epoch-published snapshots and never touch a
   lock — engine.query_lock_ops, reported per row, stays zero and is
   asserted by CI.  Like run_par, speedups need real cores; host_cores
   is in the JSON so single-core runs are legible. *)
let run_read scale =
  Report.section "BENCH-MICRO-READ: snapshot queries concurrent with ingest";
  let shards, window, buckets, epsilon, batch, qbatch, qrounds, domain_counts =
    match scale with
    | Bench_config.Small -> (8, 512, 8, 0.5, 256, 64, 200, [ 1; 2 ])
    | Bench_config.Default | Bench_config.Full -> (8, 1024, 8, 0.5, 512, 64, 2000, [ 1; 2; 4 ])
  in
  let prefill = (par_round_data ~shards ~batch:(shards * window) ~rounds:1 ~seed:41).(0) in
  let rounds = 4 in
  let round_data = par_round_data ~shards ~batch ~rounds ~seed:42 in
  (* one deterministic pool of mixed query batches, reused by every row *)
  let queries =
    let rng = Rng.create ~seed:43 in
    Array.init 16 (fun _ ->
        Array.init qbatch (fun _ ->
            let scope =
              if Rng.int rng 16 = 0 then Qop.Global else Qop.Key (Rng.int rng shards)
            in
            let q =
              match Rng.int rng 5 with
              | 0 -> Qop.Current_error
              | 1 -> Qop.Window_length
              | 2 ->
                Qop.Herror { k = 1 + Rng.int rng buckets; x = Rng.int rng (window + 1) }
              | 3 ->
                let lo = 1 + Rng.int rng window in
                Qop.Range_sum { lo; hi = lo + Rng.int rng window }
              | _ -> Qop.Point_estimate { index = 1 + Rng.int rng window }
            in
            (scope, q)))
  in
  let host_cores = Domain.recommended_domain_count () in
  let measure ~domains =
    Pool.with_pool ~domains (fun pool ->
        let eng = SE.create ~pool ~shards ~window ~buckets ~epsilon in
        SE.set_refresh_policy eng (Stream_histogram.Params.Every 64);
        SE.ingest eng prefill;
        SE.refresh_all eng;
        let qlock0 = SE.query_lock_ops eng in
        let stop = Atomic.make false in
        let reader =
          Domain.spawn (fun () ->
              let t0 = Unix.gettimeofday () in
              for r = 0 to qrounds - 1 do
                ignore (SE.query_many eng queries.(r mod Array.length queries))
              done;
              let dt = Unix.gettimeofday () -. t0 in
              Atomic.set stop true;
              Float.of_int (qrounds * qbatch) /. dt)
        in
        (* continuous ingest pressure on the caller until the reader is done
           (publications keep landing every 64 points per shard) *)
        let ingested = ref 0 in
        let ri = ref 0 in
        let t0 = Unix.gettimeofday () in
        while not (Atomic.get stop) do
          SE.ingest eng round_data.(!ri mod rounds);
          incr ri;
          ingested := !ingested + batch
        done;
        let ingest_dt = Unix.gettimeofday () -. t0 in
        let qps = Domain.join reader in
        let ingest_rate =
          if !ingested = 0 then 0.0 else Float.of_int !ingested /. Float.max ingest_dt 1e-9
        in
        (qps, ingest_rate, SE.query_lock_ops eng - qlock0))
  in
  let mode_rows =
    [ ("pinned", List.map (fun d -> (d, measure ~domains:d)) domain_counts) ]
  in
  Report.note
    "S=%d shards, window n=%d, B=%d, eps=%g; reader fires %d batches of %d mixed queries \
     while the caller ingests %d-point batches (refresh every 64 points/shard)"
    shards window buckets epsilon qrounds qbatch batch;
  Report.note "host cores (recommended domain count): %d%s" host_cores
    (if host_cores < List.fold_left max 1 domain_counts + 1 then
       " — reader + pool oversubscribe this host; qps ratios are not meaningful"
     else "");
  Report.table
    ~headers:[ "mode"; "domains"; "queries/s"; "ns/query"; "ingest pts/s"; "query lock ops" ]
    (List.concat_map
       (fun (mode, rows) ->
         List.map
           (fun (d, (qps, ips, qlocks)) ->
             [ mode; string_of_int d; Printf.sprintf "%.0f" qps;
               Printf.sprintf "%.0f" (1e9 /. qps); Printf.sprintf "%.0f" ips;
               string_of_int qlocks ])
           rows)
       mode_rows);
  Report.json_add "micro_read"
    (Report.Jobj
       [
         ("shards", Report.Jint shards);
         ("window", Report.Jint window);
         ("buckets", Report.Jint buckets);
         ("epsilon", Report.Jfloat epsilon);
         ("batch", Report.Jint batch);
         ("query_batch", Report.Jint qbatch);
         ("query_rounds", Report.Jint qrounds);
         ("host_cores", Report.Jint host_cores);
         ( "modes",
           Report.Jlist
             (List.map
                (fun (mode, rows) ->
                  Report.Jobj
                    [
                      ("mode", Report.Jstring mode);
                      ( "scaling",
                        Report.Jlist
                          (List.map
                             (fun (d, (qps, ips, qlocks)) ->
                               Report.Jobj
                                 [
                                   ("domains", Report.Jint d);
                                   ("queries_per_sec", Report.Jfloat qps);
                                   ("ns_per_query", Report.Jfloat (1e9 /. qps));
                                   ("ingest_points_per_sec", Report.Jfloat ips);
                                   ("query_lock_ops", Report.Jint qlocks);
                                 ])
                             rows) );
                    ])
                mode_rows) );
       ])

(* ------------------------------------------------------ summary merges

   The Mergeable capability's combine costs, per summary family: GK is a
   two-pointer walk plus a compress, agglomerative shifts one operand's
   interval queues into the concatenated index space, and the
   fixed-window group union moves per-key summaries verbatim (so its
   cost is the sorted-array splice, independent of window contents).
   eval_global is benchmarked alongside because the aggregation plane
   pays one per Global query element. *)
let run_merge scale =
  Report.section "BENCH-MICRO-MERGE: mergeable-summary combine costs";
  (* the agglomerative merge recomputes the shifted side's prefix errors,
     so its operands are kept an order of magnitude smaller *)
  let n, n_ag, quota =
    match scale with
    | Bench_config.Small -> (2_000, 500, 0.25)
    | Bench_config.Default | Bench_config.Full -> (20_000, 2_000, 1.0)
  in
  let gk_eps = 0.01 in
  let mk_gk seed =
    let g = Sh_quantile.Gk.create ~epsilon:gk_eps in
    Array.iter (Sh_quantile.Gk.insert g) (network ~seed ~len:n);
    g
  in
  let ga = mk_gk 51 and gb = mk_gk 52 in
  let ag_buckets = 16 in
  let mk_ag seed =
    let ag = AG.create ~buckets:ag_buckets ~epsilon:0.1 in
    Array.iter (AG.push ag) (network ~seed ~len:n_ag);
    ag
  in
  let aa = mk_ag 53 and ab = mk_ag 54 in
  let shards = 8 and window = 1024 and fw_buckets = 8 in
  let fws =
    Pool.with_pool ~domains:1 (fun pool ->
        let eng = SE.create ~pool ~shards ~window ~buckets:fw_buckets ~epsilon:0.1 in
        let data = network ~seed:55 ~len:(shards * window) in
        SE.ingest eng (Array.mapi (fun i v -> (i mod shards, v)) data);
        SE.refresh_all eng;
        SE.decode_snapshot (SE.snapshot_bytes eng))
  in
  let half = shards / 2 in
  let left = FG.of_summaries ~base:0 (Array.sub fws 0 half) in
  let right = FG.of_summaries ~base:half (Array.sub fws half (shards - half)) in
  let group = FG.merge left right in
  let tests =
    [
      Test.make
        ~name:(Printf.sprintf "gk.merge eps=%g n=%d+%d" gk_eps n n)
        (Staged.stage (fun () -> ignore (Sh_quantile.Gk.merge ga gb)));
      Test.make
        ~name:(Printf.sprintf "agglomerative.merge B=%d n=%d+%d" ag_buckets n_ag n_ag)
        (Staged.stage (fun () -> ignore (AG.merge aa ab)));
      Test.make
        ~name:(Printf.sprintf "fw_group.merge S=%d+%d" half (shards - half))
        (Staged.stage (fun () -> ignore (FG.merge left right)));
      Test.make
        ~name:(Printf.sprintf "fw_group.eval_global range_sum S=%d" shards)
        (Staged.stage (fun () ->
             ignore
               (FG.eval_global group
                  (Qop.Range_sum { lo = 1; hi = window }))));
    ]
  in
  Report.note
    "GK: eps=%g, %d points per operand (%d and %d stored tuples); AG: B=%d, %d points per \
     operand; FW group: %d keys of window n=%d, split %d+%d"
    gk_eps n
    (Sh_quantile.Gk.size ga)
    (Sh_quantile.Gk.size gb)
    ag_buckets n_ag shards window half (shards - half);
  let rows = measure_group ~quota tests in
  Report.table ~headers:[ "operation"; "time/op" ]
    (List.map (fun (name, ns) -> [ name; pretty_ns ns ]) rows);
  Report.json_add "micro_merge"
    (Report.Jobj
       [
         ("points_per_operand", Report.Jint n);
         ("ag_points_per_operand", Report.Jint n_ag);
         ("gk_epsilon", Report.Jfloat gk_eps);
         ("ag_buckets", Report.Jint ag_buckets);
         ("fw_shards", Report.Jint shards);
         ("fw_window", Report.Jint window);
         ( "rows",
           Report.Jlist
             (List.map
                (fun (name, ns) ->
                  Report.Jobj
                    [ ("op", Report.Jstring name); ("ns_per_op", Report.Jfloat ns) ])
                rows) );
       ])

let run scale =
  Report.section "BENCH-MICRO: per-operation costs (bechamel, OLS estimate)";
  let quota, fw_windows =
    match scale with
    | Bench_config.Small -> (0.25, [ 256 ])
    | Bench_config.Default -> (0.5, [ 256; 1024 ])
    | Bench_config.Full -> (1.0, [ 256; 1024; 4096 ])
  in
  Report.note "fw.push_and_refresh across window lengths tests the polylog per-point growth";
  let fw_tests =
    List.map (fun w -> fw_push_and_refresh ~window:w ~buckets:8 ~epsilon:0.5) fw_windows
  in
  let tests =
    fw_tests
    @ [ fw_push_only; ag_push; sliding_push; gk_insert ]
    @ [ vopt_build ~n:512 ~buckets:16; wavelet_build ~n:4096 ~coeffs:32 ]
    @ [ streaming_wavelet_push; mrl_insert; heavy_hitters_add; mhist_build; dct_build ]
    @ query_ops
  in
  run_group ~quota tests

(* --------------------------------------- snapshot / restore micro costs

   BENCH-MICRO-PERSIST (EXPERIMENTS.md): the durability tax.  Snapshot
   size should be O(window) — two float arrays of prefix sums plus a few
   dozen bytes of parameters — and snapshot latency a memcpy-scale walk of
   that state; restore pays one extra cold refresh to rebuild the interval
   lists.  The shard-engine rows add the file-backed atomic write path
   (temp + fsync-free rename on the bench host). *)

module Snapshot = Stream_histogram.Snapshot
module Persist = Sh_persist.Persist

let timed_ns ~reps f =
  ignore (f ());
  (* warmup *)
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore (Sys.opaque_identity (f ()))
  done;
  (Unix.gettimeofday () -. t0) /. Float.of_int reps *. 1e9

let run_persist scale =
  Report.section "BENCH-MICRO-PERSIST: snapshot/restore and checkpoint costs";
  let fw_windows, reps, shards =
    match scale with
    | Bench_config.Small -> ([ 256; 1024 ], 20, 8)
    | Bench_config.Default | Bench_config.Full -> ([ 1024; 4096; 16384 ], 50, 8)
  in
  let buckets = 8 and epsilon = 0.5 in
  let fw_rows =
    List.map
      (fun window ->
        let fw = FW.create ~window ~buckets ~epsilon in
        Array.iter (FW.push fw) (network ~seed:21 ~len:(window + (window / 2)));
        FW.refresh fw;
        let image = Snapshot.Fixed_window.snapshot fw in
        let snap_ns = timed_ns ~reps (fun () -> Snapshot.Fixed_window.snapshot fw) in
        let restore_ns = timed_ns ~reps (fun () -> Snapshot.Fixed_window.restore image) in
        (window, String.length image, snap_ns, restore_ns))
      fw_windows
  in
  let ck_file = Filename.temp_file "shist_bench" ".ckpt" in
  let engine_row =
    Fun.protect
      ~finally:(fun () -> try Sys.remove ck_file with Sys_error _ -> ())
      (fun () ->
        Pool.with_pool ~domains:1 @@ fun pool ->
        let window = List.hd (List.rev fw_windows) in
        let eng = SE.create ~pool ~shards ~window ~buckets ~epsilon in
        SE.ingest eng (par_round_data ~shards ~batch:(shards * window) ~rounds:1 ~seed:22).(0);
        SE.refresh_all eng;
        let ck_ns = timed_ns ~reps:(max 5 (reps / 5)) (fun () -> SE.checkpoint eng ~file:ck_file) in
        let rs_ns =
          timed_ns ~reps:(max 5 (reps / 5)) (fun () ->
              SE.restore_from ~pool ~file:ck_file)
        in
        let bytes = String.length (Persist.read_file ck_file) in
        (window, bytes, ck_ns, rs_ns))
  in
  let bytes_per_point w b = Float.of_int b /. Float.of_int w in
  Report.note "fixed-window snapshots at B=%d eps=%g (in-memory, %d reps); engine checkpoint \
               S=%d via temp-file + atomic rename" buckets epsilon reps shards;
  Report.table
    ~headers:[ "state"; "bytes"; "bytes/point"; "snapshot"; "restore" ]
    (List.map
       (fun (w, b, s, r) ->
         [ Printf.sprintf "fw n=%d" w; string_of_int b;
           Printf.sprintf "%.1f" (bytes_per_point w b); pretty_ns s; pretty_ns r ])
       fw_rows
    @ [ (let w, b, s, r = engine_row in
         [ Printf.sprintf "engine S=%d n=%d" shards w; string_of_int b;
           Printf.sprintf "%.1f" (Float.of_int b /. Float.of_int (shards * w)); pretty_ns s;
           pretty_ns r ]) ]);
  Report.json_add "persist"
    (Report.Jobj
       [
         ("buckets", Report.Jint buckets);
         ("epsilon", Report.Jfloat epsilon);
         ("reps", Report.Jint reps);
         ( "fixed_window",
           Report.Jlist
             (List.map
                (fun (w, b, s, r) ->
                  Report.Jobj
                    [
                      ("window", Report.Jint w);
                      ("snapshot_bytes", Report.Jint b);
                      ("bytes_per_point", Report.Jfloat (bytes_per_point w b));
                      ("snapshot_ns", Report.Jfloat s);
                      ("restore_ns", Report.Jfloat r);
                    ])
                fw_rows) );
         ( "shard_engine",
           let w, b, s, r = engine_row in
           Report.Jobj
             [
               ("shards", Report.Jint shards);
               ("window", Report.Jint w);
               ("checkpoint_bytes", Report.Jint b);
               ("checkpoint_ns", Report.Jfloat s);
               ("restore_ns", Report.Jfloat r);
             ] );
       ])

(* ------------------------------------------ loopback wire vs in-process

   The networked ingest plane's headline number: a serve loop on a
   Unix-domain socket, driven by pipelined loadgen-style clients, against
   the same engine fed directly through Shard_engine.ingest_groups with
   identical batches.  The sweep is connections x batch size; the ratio
   at large batches is the cost of the wire (framing + CRC + syscalls +
   the select loop), which per-connection batching is meant to amortise.
   On a single-core container the server domain and the client timeshare
   one CPU, so the ratio there is a floor on what real hardware gives. *)

module Net_addr = Sh_net.Addr
module Net_server = Sh_net.Server
module Net_client = Sh_net.Client
module Wire = Sh_net.Wire
module Gk = Sh_quantile.Gk

(* Pre-grouped rounds: every (connection, round) gets its own groups
   array, round-robin keys, values from per-shard split_ix sources —
   identical data for the wire path and the in-process baseline. *)
let net_round_groups ~shards ~conns ~batch ~rounds ~seed =
  let root = Rng.create ~seed in
  let sources =
    Array.init shards (fun k -> Wk.network (Rng.split_ix root k) Wk.default_network)
  in
  Array.init rounds (fun _ ->
      Array.init conns (fun _ ->
          let per = max 1 (batch / shards) in
          let nkeys = min shards (max 1 (batch / per)) in
          let groups =
            Array.init nkeys (fun k ->
                let len = if k = nkeys - 1 then batch - (per * (nkeys - 1)) else per in
                (k, Array.init len (fun _ -> sources.(k) ())))
          in
          groups))

let run_net scale =
  Report.section "BENCH-MICRO-NET: loopback wire ingest vs in-process ingest_groups";
  let shards, window, buckets, epsilon, points, conn_counts, batch_sizes =
    match scale with
    | Bench_config.Small -> (16, 256, 8, 0.5, 8_192, [ 1; 2 ], [ 64; 512 ])
    | Bench_config.Default | Bench_config.Full ->
      (16, 512, 16, 0.1, 40_960, [ 1; 2; 4 ], [ 64; 512; 2048 ])
  in
  let host_cores = Domain.recommended_domain_count () in
  let policy = Stream_histogram.Params.Every 256 in
  let fresh_engine pool =
    let eng = SE.create ~pool ~shards ~window ~buckets ~epsilon in
    SE.set_refresh_policy eng policy;
    eng
  in
  (* one loopback measurement: points/s, bytes/point, rtt quantiles (us) *)
  let measure_wire ~conns ~batch =
    let rounds = max 1 (points / (conns * batch)) in
    let data = net_round_groups ~shards ~conns ~batch ~rounds ~seed:51 in
    let sock = Filename.temp_file "shist-bench-net" ".sock" in
    Unix.unlink sock;
    let addr = Net_addr.Unix_sock sock in
    let listener = Net_server.listen addr in
    let srv =
      Domain.spawn (fun () ->
          Pool.with_pool ~domains:1 (fun pool ->
              let eng = fresh_engine pool in
              Net_server.run ~engine:eng ~listeners:[ listener ] ()))
    in
    let cs = Array.init conns (fun _ -> Net_client.connect ~timeout:60. ~retries:50 addr) in
    let rtt = Gk.create ~epsilon:0.001 in
    let t_send = Array.make conns 0.0 in
    let acked = ref 0 in
    let t0 = Unix.gettimeofday () in
    Array.iter
      (fun per_conn ->
        Array.iteri
          (fun i groups ->
            t_send.(i) <- Unix.gettimeofday ();
            Net_client.send cs.(i) (Wire.Ingest groups))
          per_conn;
        Array.iteri
          (fun i _ ->
            (match Net_client.recv cs.(i) with
            | Wire.Ack n -> acked := !acked + n
            | _ -> failwith "micro-net: unexpected response");
            Gk.insert rtt (Unix.gettimeofday () -. t_send.(i)))
          per_conn)
      data;
    let dt = Unix.gettimeofday () -. t0 in
    let bytes =
      Array.fold_left
        (fun a c -> a + Net_client.bytes_in c + Net_client.bytes_out c)
        0 cs
    in
    Net_client.shutdown cs.(0);
    Array.iter Net_client.close cs;
    let rep = Domain.join srv in
    Unix.close listener;
    (try Unix.unlink sock with Unix.Unix_error _ | Sys_error _ -> ());
    assert (rep.Net_server.points = !acked);
    let pps = Float.of_int !acked /. dt in
    let bpp = Float.of_int bytes /. Float.of_int (max 1 !acked) in
    let q phi = 1e6 *. Gk.quantile rtt phi in
    (pps, bpp, q 0.5, q 0.99, q 0.999, rep.Net_server.ingest_rounds)
  in
  (* the baseline: same group batches straight into the engine *)
  let measure_in_process ~batch =
    let rounds = max 1 (points / batch) in
    let data = net_round_groups ~shards ~conns:1 ~batch ~rounds ~seed:51 in
    Pool.with_pool ~domains:1 (fun pool ->
        let eng = fresh_engine pool in
        let t0 = Unix.gettimeofday () in
        Array.iter (fun per_conn -> SE.ingest_groups eng per_conn.(0)) data;
        let dt = Unix.gettimeofday () -. t0 in
        Float.of_int (SE.total_points eng) /. dt)
  in
  let baselines = List.map (fun b -> (b, measure_in_process ~batch:b)) batch_sizes in
  let sweep =
    List.concat_map
      (fun conns ->
        List.map
          (fun batch ->
            let pps, bpp, p50, p99, p999, rounds = measure_wire ~conns ~batch in
            (conns, batch, pps, bpp, p50, p99, p999, rounds))
          batch_sizes)
      conn_counts
  in
  let baseline_for b = List.assoc b baselines in
  Report.note "S=%d shards, window n=%d, B=%d, eps=%g, %s refresh; %d points per sweep \
               point over a Unix-domain socket" shards window buckets epsilon
    (Stream_histogram.Params.policy_to_string policy) points;
  Report.note "host cores (recommended domain count): %d%s" host_cores
    (if host_cores < 2 then
       " — server domain and clients timeshare one CPU; the loopback/in-process ratio is \
        a floor"
     else "");
  Report.table
    ~headers:[ "conns"; "batch"; "wire pts/s"; "vs in-proc"; "bytes/pt"; "rtt p50 us";
               "rtt p99 us"; "rounds" ]
    (List.map
       (fun (c, b, pps, bpp, p50, p99, _p999, rounds) ->
         [ string_of_int c; string_of_int b; Printf.sprintf "%.0f" pps;
           Printf.sprintf "%.2fx" (pps /. baseline_for b); Printf.sprintf "%.2f" bpp;
           Printf.sprintf "%.0f" p50; Printf.sprintf "%.0f" p99; string_of_int rounds ])
       sweep);
  List.iter
    (fun (b, pps) -> Report.note "in-process ingest_groups batch=%d: %.0f points/s" b pps)
    baselines;
  (* the committed headline: best ratio across the sweep at batch >= 512 *)
  let headline =
    List.fold_left
      (fun best (_, b, pps, _, _, _, _, _) ->
        if b >= 512 then Float.max best (pps /. baseline_for b) else best)
      0.0 sweep
  in
  Report.note "headline: loopback/in-process ratio %.2fx at batch >= 512 (target >= 0.5x)"
    headline;
  Report.json_add "net"
    (Report.Jobj
       [
         ("shards", Report.Jint shards);
         ("window", Report.Jint window);
         ("buckets", Report.Jint buckets);
         ("epsilon", Report.Jfloat epsilon);
         ("points", Report.Jint points);
         ("host_cores", Report.Jint host_cores);
         ("transport", Report.Jstring "unix-domain socket");
         ( "in_process",
           Report.Jlist
             (List.map
                (fun (b, pps) ->
                  Report.Jobj
                    [ ("batch", Report.Jint b); ("points_per_sec", Report.Jfloat pps) ])
                baselines) );
         ( "sweep",
           Report.Jlist
             (List.map
                (fun (c, b, pps, bpp, p50, p99, p999, rounds) ->
                  Report.Jobj
                    [
                      ("connections", Report.Jint c);
                      ("batch", Report.Jint b);
                      ("points_per_sec", Report.Jfloat pps);
                      ("ratio_vs_in_process", Report.Jfloat (pps /. baseline_for b));
                      ("bytes_per_point", Report.Jfloat bpp);
                      ("rtt_p50_us", Report.Jfloat p50);
                      ("rtt_p99_us", Report.Jfloat p99);
                      ("rtt_p999_us", Report.Jfloat p999);
                      ("server_ingest_rounds", Report.Jint rounds);
                    ])
                sweep) );
         ("headline_ratio_batch_ge_512", Report.Jfloat headline);
       ])
