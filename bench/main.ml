(* Benchmark and experiment harness.

   Usage:
     dune exec bench/main.exe                      # every experiment, default scale
     dune exec bench/main.exe -- fig6a fig6c       # selected experiments
     dune exec bench/main.exe -- --scale small     # smoke-test sizes
     dune exec bench/main.exe -- --scale full all  # closest to paper sizes
     dune exec bench/main.exe -- --json BENCH_fixed_window.json micro-fw

   Experiments (see DESIGN.md section 3 for the per-experiment index):
     fig6a fig6b fig6c fig6d      Figure 6 of the paper
     agg-wavelet agg-opt          Section 5.2 additional experiments
     sim-whole sim-sub            Section 5.2 similarity experiments
     ablate-delta ablate-rebuild ablate-rebase ablate-wavelet
     micro                        bechamel per-operation benchmarks *)

let experiments : (string * (Bench_config.scale -> unit)) list =
  [
    ("fig6a", Fig6.accuracy ~eps:0.1);
    ("fig6b", Fig6.accuracy ~eps:0.01);
    ("fig6c", Fig6.construction ~eps:0.1);
    ("fig6d", Fig6.construction ~eps:0.01);
    ("agg-wavelet", Additional.agg_vs_wavelet);
    ("agg-opt", Additional.agg_vs_opt);
    ("sim-whole", Additional.similarity_whole);
    ("sim-sub", Additional.similarity_subseq);
    ("ablate-delta", Ablations.delta);
    ("ablate-rebuild", Ablations.rebuild);
    ("ablate-rebase", Ablations.rebase);
    ("ablate-wavelet", Ablations.wavelet);
    ("ext-synopses", Extensions.synopses);
    ("ext-selectivity", Extensions.selectivity);
    ("micro", Micro.run);
    ("micro-fw", Micro.run_fw);
    ("micro-obs", Micro.run_obs);
    ("micro-contention", Micro.run_contention);
    ("micro-par", Micro.run_par);
    ("micro-read", Micro.run_read);
    ("micro-merge", Micro.run_merge);
    ("micro-persist", Micro.run_persist);
    ("micro-net", Micro.run_net);
  ]

let usage () =
  Printf.printf "usage: main.exe [--scale small|default|full] [--json FILE] [experiment...]\n";
  Printf.printf "experiments: all %s\n" (String.concat " " (List.map fst experiments));
  Printf.printf "--json FILE  write machine-readable results of the selected experiments\n";
  exit 1

let () =
  let scale = ref Bench_config.Default in
  let json_file = ref None in
  let selected = ref [] in
  let rec parse = function
    | [] -> ()
    | "--scale" :: s :: rest ->
      (match Bench_config.scale_of_string s with
      | Some sc -> scale := sc
      | None -> usage ());
      parse rest
    | "--json" :: f :: rest ->
      json_file := Some f;
      parse rest
    | ("-h" | "--help") :: _ -> usage ()
    | name :: rest ->
      selected := name :: !selected;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  (* fail on an unwritable --json path now, not after minutes of benching *)
  (match !json_file with
  | Some path -> (
    try close_out (open_out path)
    with Sys_error msg ->
      Printf.eprintf "cannot write --json file: %s\n" msg;
      exit 1)
  | None -> ());
  let names =
    match List.rev !selected with
    | [] | [ "all" ] -> List.map fst experiments
    | names -> names
  in
  let scale_name =
    match !scale with
    | Bench_config.Small -> "small"
    | Bench_config.Default -> "default"
    | Bench_config.Full -> "full"
  in
  Printf.printf "stream-histograms experiment harness (scale: %s)\n" scale_name;
  Printf.printf "reproducing: Guha & Koudas, ICDE 2002 (see DESIGN.md / EXPERIMENTS.md)\n";
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some run ->
        let (), dt = Report.time (fun () -> run !scale) in
        Printf.printf "  [%s finished in %s]\n%!" name (Report.fmt_time dt)
      | None ->
        Printf.printf "unknown experiment: %s\n" name;
        usage ())
    names;
  (match !json_file with
  | Some path ->
    Report.json_out ~path;
    Printf.printf "\nwrote machine-readable results to %s\n" path
  | None -> ());
  Printf.printf "\ntotal elapsed: %s\n" (Report.fmt_time (Unix.gettimeofday () -. t0))
