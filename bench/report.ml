(* Plain-text tables for the experiment harness: each experiment prints the
   same rows/series shape as the corresponding table or figure in the
   paper, so EXPERIMENTS.md can cite the output verbatim. *)

let section title =
  let line = String.make (String.length title + 8) '=' in
  Printf.printf "\n%s\n=== %s ===\n%s\n" line title line

let note fmt = Printf.ksprintf (fun s -> Printf.printf "  # %s\n" s) fmt

let table ~headers rows =
  let ncols = List.length headers in
  let widths = Array.of_list (List.map String.length headers) in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
        row)
    rows;
  let print_row row =
    List.iteri
      (fun i cell ->
        if i < ncols then Printf.printf "  %-*s" (widths.(i) + 2) cell)
      row;
    print_newline ()
  in
  print_row headers;
  print_row (List.mapi (fun i _ -> String.make widths.(i) '-') headers);
  List.iter print_row rows;
  print_newline ()

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let fmt_time seconds =
  if seconds < 1e-3 then Printf.sprintf "%.1f us" (seconds *. 1e6)
  else if seconds < 1.0 then Printf.sprintf "%.2f ms" (seconds *. 1e3)
  else Printf.sprintf "%.2f s" seconds

let fmt_g v = Printf.sprintf "%.4g" v
