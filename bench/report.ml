(* Plain-text tables for the experiment harness: each experiment prints the
   same rows/series shape as the corresponding table or figure in the
   paper, so EXPERIMENTS.md can cite the output verbatim. *)

let section title =
  let line = String.make (String.length title + 8) '=' in
  Printf.printf "\n%s\n=== %s ===\n%s\n" line title line

let note fmt = Printf.ksprintf (fun s -> Printf.printf "  # %s\n" s) fmt

let table ~headers rows =
  let ncols = List.length headers in
  let widths = Array.of_list (List.map String.length headers) in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
        row)
    rows;
  let print_row row =
    List.iteri
      (fun i cell ->
        if i < ncols then Printf.printf "  %-*s" (widths.(i) + 2) cell)
      row;
    print_newline ()
  in
  print_row headers;
  print_row (List.mapi (fun i _ -> String.make widths.(i) '-') headers);
  List.iter print_row rows;
  print_newline ()

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* ------------------------------------------------ machine-readable output

   Experiments push (key, value) pairs into an accumulator as they run;
   main.exe dumps the collected object when --json FILE is given.  A tiny
   hand-rolled serializer keeps the harness dependency-free. *)

type json =
  | Jnull
  | Jbool of bool
  | Jint of int
  | Jfloat of float
  | Jstring of string
  | Jlist of json list
  | Jobj of (string * json) list

(* Shortest-first float printing: %.17g always round-trips but renders 0.1
   as 0.10000000000000001; %.12g is clean for every humanly-chosen
   parameter, so prefer it whenever it parses back to the same bits. *)
let float_to_json f =
  let short = Printf.sprintf "%.12g" f in
  if float_of_string short = f then short else Printf.sprintf "%.17g" f

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec json_to_buf buf ~indent j =
  let pad n = String.make n ' ' in
  match j with
  | Jnull -> Buffer.add_string buf "null"
  | Jbool b -> Buffer.add_string buf (if b then "true" else "false")
  | Jint i -> Buffer.add_string buf (string_of_int i)
  | Jfloat f ->
    if Float.is_finite f then Buffer.add_string buf (float_to_json f)
    else Buffer.add_string buf "null"
  | Jstring s -> Buffer.add_string buf (Printf.sprintf "\"%s\"" (escape_string s))
  | Jlist [] -> Buffer.add_string buf "[]"
  | Jlist items ->
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (indent + 2));
        json_to_buf buf ~indent:(indent + 2) item)
      items;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad indent);
    Buffer.add_char buf ']'
  | Jobj [] -> Buffer.add_string buf "{}"
  | Jobj fields ->
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (indent + 2));
        Buffer.add_string buf (Printf.sprintf "\"%s\": " (escape_string k));
        json_to_buf buf ~indent:(indent + 2) v)
      fields;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad indent);
    Buffer.add_char buf '}'

let json_to_string j =
  let buf = Buffer.create 1024 in
  json_to_buf buf ~indent:0 j;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let json_acc : (string * json) list ref = ref []
let json_add key value = json_acc := (key, value) :: !json_acc

let json_out ~path =
  let oc = open_out path in
  output_string oc (json_to_string (Jobj (List.rev !json_acc)));
  close_out oc

(* Snapshot of the telemetry registry in the accumulator's json type, so
   BENCH_*.json carries the work counters behind each timing row. *)
let registry_json () =
  let module M = Sh_obs.Metric in
  let module R = Sh_obs.Registry in
  let series m value_fields =
    let labels = R.metric_labels m in
    Jobj
      (("name", Jstring (R.metric_name m))
       :: (if labels = [] then []
           else [ ("labels", Jobj (List.map (fun (k, v) -> (k, Jstring v)) labels)) ])
      @ value_fields)
  in
  Jlist
    (List.map
       (fun m ->
         match m with
         | R.Counter c -> series m [ ("type", Jstring "counter"); ("value", Jint (M.value c)) ]
         | R.Gauge g -> series m [ ("type", Jstring "gauge"); ("value", Jfloat (M.gvalue g)) ]
         | R.Histogram h ->
           series m
             [
               ("type", Jstring "histogram");
               ("count", Jint (M.hcount h));
               ("sum", Jfloat (M.hsum h));
               ("mean", Jfloat (M.hmean h));
             ])
       (R.snapshot ()))

let fmt_time seconds =
  if seconds < 1e-3 then Printf.sprintf "%.1f us" (seconds *. 1e6)
  else if seconds < 1.0 then Printf.sprintf "%.2f ms" (seconds *. 1e3)
  else Printf.sprintf "%.2f s" seconds

let fmt_g v = Printf.sprintf "%.4g" v
