(* shist — command-line driver for the stream-histogram library.

   Subcommands:
     generate     synthesise a workload stream to a file
     build        build a histogram / wavelet synopsis of a data file
     stream       simulate fixed-window maintenance over a stream
     query        answer range-sum queries approximately and report error
     quantiles    one-pass GK quantile summary of a data file
     selectivity  value-histogram selectivity estimates
     heavy        Misra-Gries heavy hitters
     serve        multi-stream sharded ingest across a domain pool
                  (--listen serves the engine over the wire protocol)
     loadgen      drive a serve --listen endpoint over the wire *)

open Cmdliner

module Rng = Sh_util.Rng
module Source = Sh_gen.Source
module Wk = Sh_gen.Workloads
module P = Sh_prefix.Prefix_sums
module H = Sh_histogram.Histogram
module V = Sh_histogram.Vopt
module Heur = Sh_histogram.Heuristics
module FW = Stream_histogram.Fixed_window
module AG = Stream_histogram.Agglomerative
module Syn = Sh_wavelet.Synopsis
module E = Sh_query.Estimator
module Q = Sh_query.Workload
module Ev = Sh_query.Evaluate
module O = Sh_obs.Obs
module Lat = Sh_obs.Latency
module Pool = Sh_par.Domain_pool
module SE = Sh_par.Shard_engine
module Qop = Stream_histogram.Query_op
module Aggregator = Sh_agg.Aggregator
module Addr = Sh_net.Addr
module Net_server = Sh_net.Server
module Net_client = Sh_net.Client
module Wire = Sh_net.Wire
module Gk = Sh_quantile.Gk

(* ------------------------------------------------------- common args *)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed (reproducible runs).")

let buckets_arg =
  Arg.(value & opt int 32 & info [ "b"; "buckets" ] ~docv:"B" ~doc:"Space budget in buckets.")

let epsilon_arg =
  Arg.(value & opt float 0.1 & info [ "e"; "epsilon" ] ~docv:"EPS" ~doc:"Approximation precision.")

let file_arg p =
  Arg.(required & pos p (some string) None & info [] ~docv:"FILE" ~doc:"Data file, one value per line.")

(* ---------------------------------------------------- telemetry args *)

let metrics_arg =
  let fmt_conv =
    let parse s =
      match O.format_of_string s with
      | Some f -> Ok f
      | None -> Error (`Msg (Printf.sprintf "bad metrics format %S (text | json | prom)" s))
    in
    Arg.conv (parse, fun ppf f -> Format.pp_print_string ppf (O.format_to_string f))
  in
  Arg.(
    value
    & opt (some fmt_conv) None
    & info [ "metrics" ] ~docv:"FMT"
        ~doc:
          "Enable telemetry and dump the metric registry on exit: $(b,text) aligned dump, \
           $(b,json) JSON lines (one series per line), $(b,prom) Prometheus text exposition.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Enable span tracing and write the trace to $(docv) on exit as Chrome trace-event \
           JSON (loadable in chrome://tracing or Perfetto; one track per recording domain).")

(* Enable telemetry for the duration of [f] when either flag is given;
   spans get a real wall clock instead of the Sys.time default.  Metrics
   go to stdout after the command's own output, the trace to its file,
   even when [f] raises. *)
let with_obs metrics trace_out f =
  if metrics <> None || trace_out <> None then begin
    O.set_enabled true;
    O.set_clock Unix.gettimeofday
  end;
  let finish () =
    (match metrics with None -> () | Some fmt -> print_string (O.render fmt));
    match trace_out with
    | None -> ()
    | Some file ->
      let oc = open_out file in
      output_string oc (O.render_chrome_trace ());
      close_out oc
  in
  Fun.protect ~finally:finish f

let policy_conv =
  let parse s =
    match Stream_histogram.Params.policy_of_string s with
    | Some p -> Ok p
    | None ->
      Error
        (`Msg
          (Printf.sprintf "bad refresh policy %S (eager | lazy | every:K with K >= 1)" s))
  in
  Arg.conv (parse, fun ppf p -> Format.pp_print_string ppf (Stream_histogram.Params.policy_to_string p))

(* --------------------------------------------------------- generate *)

let generate_cmd =
  let workload =
    Arg.(
      value
      & opt (enum [ ("network", `Network); ("walk", `Walk); ("steps", `Steps); ("clicks", `Clicks); ("uniform", `Uniform) ]) `Network
      & info [ "w"; "workload" ] ~docv:"KIND" ~doc:"Workload: network | walk | steps | clicks | uniform.")
  in
  let count =
    Arg.(value & opt int 100_000 & info [ "n"; "count" ] ~docv:"N" ~doc:"Number of points.")
  in
  let out =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")
  in
  let run workload count out seed =
    let rng = Rng.create ~seed in
    let source =
      match workload with
      | `Network -> Wk.network rng Wk.default_network
      | `Walk -> Wk.random_walk rng ()
      | `Steps -> Wk.step_signal rng ()
      | `Clicks -> Wk.click_counts rng ()
      | `Uniform -> Wk.uniform_noise rng ~lo:0.0 ~hi:10_000.0
    in
    Source.to_file out (Source.take source count);
    Printf.printf "wrote %d points to %s\n" count out
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Synthesise a workload stream to a file")
    Term.(const run $ workload $ count $ out $ seed_arg)

(* ------------------------------------------------------------ build *)

let build_cmd =
  let algo =
    Arg.(
      value
      & opt
          (enum
             [ ("vopt", `Vopt); ("agglomerative", `Agg); ("wavelet", `Wavelet);
               ("equiwidth", `Equi); ("maxdiff", `Maxdiff); ("greedy", `Greedy) ])
          `Agg
      & info [ "a"; "algorithm" ] ~docv:"ALGO"
          ~doc:"vopt | agglomerative | wavelet | equiwidth | maxdiff | greedy.")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every bucket, not just the summary.")
  in
  let run algo file buckets epsilon verbose =
    let data = Source.of_file file in
    let n = Array.length data in
    let p = P.make data in
    let describe name sse buckets_used pp_detail =
      Printf.printf "%s: n=%d space=%d SSE=%.6g RMSE/point=%.6g\n" name n buckets_used sse
        (sqrt (sse /. Float.of_int n));
      if verbose then pp_detail ()
    in
    match algo with
    | `Wavelet ->
      let s = Syn.build data ~coeffs:buckets in
      describe "wavelet" (Syn.sse_against s data) (Syn.stored_coefficients s) (fun () -> ())
    | (`Vopt | `Agg | `Equi | `Maxdiff | `Greedy) as a ->
      let h =
        match a with
        | `Vopt -> V.build_prefix p ~buckets
        | `Equi -> Heur.equi_width p ~buckets
        | `Maxdiff -> Heur.max_diff p ~values:data ~buckets
        | `Greedy -> Heur.greedy_merge p ~buckets
        | `Agg ->
          let ag = AG.create ~buckets ~epsilon in
          Array.iter (AG.push ag) data;
          AG.current_histogram ag
      in
      let name =
        match a with
        | `Vopt -> "vopt" | `Equi -> "equiwidth" | `Maxdiff -> "maxdiff"
        | `Greedy -> "greedy" | `Agg -> "agglomerative"
      in
      describe name (H.sse_against h p) (H.bucket_count h) (fun () ->
          Format.printf "%a@." H.pp h)
  in
  Cmd.v
    (Cmd.info "build" ~doc:"Build a synopsis of a data file and report its SSE")
    Term.(const run $ algo $ file_arg 0 $ buckets_arg $ epsilon_arg $ verbose)

(* ----------------------------------------------------------- stream *)

let stream_cmd =
  let window =
    Arg.(value & opt int 1024 & info [ "n"; "window" ] ~docv:"N" ~doc:"Sliding window length.")
  in
  let report =
    Arg.(value & opt int 1000 & info [ "report-every" ] ~docv:"K" ~doc:"Report every K points.")
  in
  let policy =
    Arg.(
      value
      & opt policy_conv Stream_histogram.Params.Lazy
      & info [ "refresh" ] ~docv:"POLICY"
          ~doc:
            "Arrival-time rebuild policy: $(b,eager) rebuilds on every point (the paper's cost \
             model), $(b,lazy) only at queries, $(b,every:K) with K >= 1 amortises bulk loads \
             over K points ($(b,every:1) matches eager's cadence).")
  in
  let run file window buckets epsilon report policy metrics trace_out =
    with_obs metrics trace_out @@ fun () ->
    let data = Source.of_file file in
    let fw = FW.create ~window ~buckets ~epsilon in
    FW.set_refresh_policy fw policy;
    Array.iteri
      (fun i v ->
        FW.push fw v;
        if (i + 1) mod report = 0 then begin
          let err = FW.current_error fw in
          let h = FW.current_histogram fw in
          Printf.printf "t=%8d window=%d herror=%.6g buckets=%d\n%!" (i + 1) (FW.length fw) err
            (H.bucket_count h)
        end)
      data;
    let c = FW.work_counters fw in
    Printf.printf "done (%s): %d refreshes (%d warm, %d cold), %d herror evaluations, %d intervals built\n"
      (Stream_histogram.Params.policy_to_string policy)
      c.FW.refreshes c.FW.warm_refreshes c.FW.cold_refreshes c.FW.herror_evaluations
      c.FW.intervals_built;
    Printf.printf "warm-start: %d search steps (%d in candidate scans), %d hint hits / %d misses\n"
      c.FW.search_steps c.FW.scan_steps c.FW.hint_hits c.FW.hint_misses;
    if c.FW.memo_probes > 0 then
      Printf.printf "herror memo: %d hits / %d probes (%.1f%% hit rate)\n" c.FW.memo_hits
        c.FW.memo_probes
        (100.0 *. Float.of_int c.FW.memo_hits /. Float.of_int c.FW.memo_probes)
  in
  Cmd.v
    (Cmd.info "stream" ~doc:"Maintain a fixed-window histogram over a stream file")
    Term.(
      const run $ file_arg 0 $ window $ buckets_arg $ epsilon_arg $ report $ policy
      $ metrics_arg $ trace_out_arg)

(* ------------------------------------------------------------ query *)

let query_cmd =
  let queries =
    Arg.(value & opt int 1000 & info [ "q"; "queries" ] ~docv:"Q" ~doc:"Number of random range-sum queries.")
  in
  let run file buckets epsilon queries seed metrics trace_out =
    with_obs metrics trace_out @@ fun () ->
    let data = Source.of_file file in
    let n = Array.length data in
    let p = P.make data in
    let truth = E.exact p in
    let qs = Q.random_ranges (Rng.create ~seed) ~n ~count:queries in
    let report name est =
      let s = Ev.range_sum_errors ~truth est qs in
      Format.printf "%-14s %a@." name Sh_util.Metrics.pp_summary s
    in
    let ag = AG.create ~buckets ~epsilon in
    Array.iter (AG.push ag) data;
    report "agglomerative" (E.of_histogram (AG.current_histogram ag));
    report "vopt" (E.of_histogram (V.build_prefix p ~buckets));
    report "wavelet" (E.of_wavelet (Syn.build data ~coeffs:buckets));
    report "equiwidth" (E.of_histogram (Heur.equi_width p ~buckets))
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Compare synopses on random range-sum queries over a data file")
    Term.(
      const run $ file_arg 0 $ buckets_arg $ epsilon_arg $ queries $ seed_arg $ metrics_arg
      $ trace_out_arg)

(* ------------------------------------------------------ selectivity *)

let selectivity_cmd =
  let preds =
    Arg.(
      value
      & opt (list (pair ~sep:':' float float)) [ (0.0, 100.0) ]
      & info [ "p"; "predicates" ] ~docv:"LO:HI,..."
          ~doc:"Comma-separated value ranges to estimate selectivity for.")
  in
  let run file buckets preds metrics trace_out =
    with_obs metrics trace_out @@ fun () ->
    let data = Source.of_file file in
    let n = Array.length data in
    let module VH = Sh_selectivity.Value_histogram in
    let truth lo hi =
      let c = Array.fold_left (fun a v -> if v >= lo && v <= hi then a + 1 else a) 0 data in
      Float.of_int c /. Float.of_int n
    in
    let methods =
      [
        ("equi-width", VH.equi_width data ~buckets);
        ("equi-depth", VH.equi_depth data ~buckets);
        ("v-optimal", VH.v_optimal data ~buckets ~domain_bins:(8 * buckets));
      ]
    in
    List.iter
      (fun (lo, hi) ->
        Printf.printf "v IN [%g, %g]: true %.4f" lo hi (truth lo hi);
        List.iter
          (fun (name, h) -> Printf.printf "  %s %.4f" name (VH.selectivity_range h ~lo ~hi))
          methods;
        print_newline ())
      preds
  in
  Cmd.v
    (Cmd.info "selectivity" ~doc:"Value-histogram selectivity estimates over a data file")
    Term.(const run $ file_arg 0 $ buckets_arg $ preds $ metrics_arg $ trace_out_arg)

(* ------------------------------------------------------------ heavy *)

let heavy_cmd =
  let capacity =
    Arg.(value & opt int 20 & info [ "k"; "capacity" ] ~docv:"K" ~doc:"Counters to keep.")
  in
  let threshold =
    Arg.(value & opt float 0.01 & info [ "t"; "threshold" ] ~docv:"F" ~doc:"Frequency threshold.")
  in
  let run file capacity threshold metrics trace_out =
    with_obs metrics trace_out @@ fun () ->
    let data = Source.of_file file in
    let h = Sh_mining.Heavy_hitters.create ~capacity in
    Array.iter (Sh_mining.Heavy_hitters.add h) data;
    Printf.printf "n=%d, values at frequency >= %g:\n" (Sh_mining.Heavy_hitters.total h) threshold;
    List.iter
      (fun (v, c) ->
        Printf.printf "  %10g  count >= %d (%.2f%%)\n" v c
          (100.0 *. Float.of_int c /. Float.of_int (Sh_mining.Heavy_hitters.total h)))
      (Sh_mining.Heavy_hitters.heavy_hitters h ~threshold)
  in
  Cmd.v
    (Cmd.info "heavy" ~doc:"Misra-Gries heavy hitters of a data file")
    Term.(const run $ file_arg 0 $ capacity $ threshold $ metrics_arg $ trace_out_arg)

(* ------------------------------------------------------------ serve *)

let serve_cmd =
  let shards =
    Arg.(value & opt int 16 & info [ "s"; "shards" ] ~docv:"S" ~doc:"Independent stream keys.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "d"; "domains" ] ~docv:"N"
          ~doc:"Domain-pool size; 1 runs every shard inline (the sequential baseline).")
  in
  let count =
    Arg.(value & opt int 100_000 & info [ "n"; "count" ] ~docv:"N" ~doc:"Total points across all streams.")
  in
  let batch =
    Arg.(value & opt int 512 & info [ "batch" ] ~docv:"B" ~doc:"Arrivals ingested per batch.")
  in
  let window =
    Arg.(value & opt int 1024 & info [ "window" ] ~docv:"W" ~doc:"Sliding window length per stream.")
  in
  let policy =
    Arg.(
      value
      & opt policy_conv (Stream_histogram.Params.Every 256)
      & info [ "refresh" ] ~docv:"POLICY"
          ~doc:"Per-shard rebuild policy: eager | lazy | every:K (K >= 1).")
  in
  let dist =
    Arg.(
      value
      & opt (enum [ ("uniform", `Uniform); ("zipf", `Zipf); ("roundrobin", `RoundRobin) ]) `Uniform
      & info [ "dist" ] ~docv:"DIST"
          ~doc:"Key distribution across shards: $(b,uniform), $(b,zipf) (skewed hot shards), \
                $(b,roundrobin) (perfectly balanced).")
  in
  let skew =
    Arg.(value & opt float 1.1 & info [ "skew" ] ~docv:"A" ~doc:"Zipf skew (with --dist zipf).")
  in
  let checkpoint_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Write an atomic engine checkpoint to $(docv) when the run completes (and \
             periodically with $(b,--checkpoint-every)).")
  in
  let checkpoint_every =
    Arg.(
      value
      & opt (some int) None
      & info [ "checkpoint-every" ] ~docv:"K"
          ~doc:"Also checkpoint after every K batches (K >= 1; requires $(b,--checkpoint)).")
  in
  let restore_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "restore" ] ~docv:"FILE"
          ~doc:
            "Resume from a checkpoint: shard count, window geometry and per-shard state come \
             from $(docv) ($(b,--shards)/$(b,--window) etc. are ignored); the run then ingests \
             $(b,-n) further points.")
  in
  let record_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "record" ] ~docv:"FILE"
          ~doc:
            "Continuous evaluation: append one JSONL sample to $(docv) every \
             $(b,--record-every) batches — items ingested, ns/point, an exact-oracle SSE spot \
             check on a rotating key, resident heap words, backpressure/steal/lock counters \
             and the latency quantiles.")
  in
  let record_every =
    Arg.(
      value & opt int 1
      & info [ "record-every" ] ~docv:"K"
          ~doc:"Sample cadence in batches for $(b,--record) (K >= 1).")
  in
  let latency_window =
    Arg.(
      value & opt int 0
      & info [ "latency-window" ] ~docv:"K"
          ~doc:
            "Answer latency quantiles over the last K batches only (0, the default, means \
             all-time).")
  in
  let query_mix =
    Arg.(
      value & opt float 0.0
      & info [ "query-mix" ] ~docv:"R"
          ~doc:
            "Run estimation queries concurrent with ingest from a dedicated reader domain, \
             pacing towards $(docv) queries per ingested point (0, the default, disables \
             query traffic).  Queries answer from the wait-free published snapshots — zero \
             mutex acquisitions, witnessed by the end-of-run $(b,query_lock_ops=0) — and the \
             report counts queries served, throughput and snapshot generation lag.")
  in
  let addr_conv =
    let parse s =
      match Addr.of_string s with Ok a -> Ok a | Error msg -> Error (`Msg msg)
    in
    Arg.conv (parse, fun ppf a -> Format.pp_print_string ppf (Addr.to_string a))
  in
  let listen =
    Arg.(
      value
      & opt_all addr_conv []
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:
            "Serve the engine over the wire protocol instead of generating a local stream: \
             accept connections on $(docv) ($(b,unix:PATH), $(b,tcp:HOST:PORT), \
             $(b,HOST:PORT) or $(b,:PORT); repeatable).  Clients drive ingest and queries \
             ($(b,shist loadgen)); the generation flags ($(b,-n), $(b,--batch), $(b,--dist), \
             $(b,--query-mix), $(b,--record)) are ignored.  The run ends when a client sends \
             shutdown or $(b,--max-points) points have arrived.")
  in
  let max_points =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-points" ] ~docv:"N"
          ~doc:"With $(b,--listen): stop serving after $(docv) points have been ingested.")
  in
  let idle_timeout =
    Arg.(
      value & opt float 30.0
      & info [ "idle-timeout" ] ~docv:"SECS"
          ~doc:
            "With $(b,--listen): close a connection that sits on a partial frame (or never \
             completes its preamble) for $(docv) seconds — the slow-loris guard.")
  in
  let run shards domains count batch window buckets epsilon policy dist skew seed metrics
      trace_out checkpoint_file checkpoint_every restore_file record_file record_every
      latency_window query_mix listen max_points idle_timeout =
    with_obs metrics trace_out @@ fun () ->
    if batch < 1 then invalid_arg "serve: --batch must be >= 1";
    if record_every < 1 then invalid_arg "serve: --record-every must be >= 1";
    if latency_window < 0 then invalid_arg "serve: --latency-window must be >= 0";
    if query_mix < 0.0 || not (Float.is_finite query_mix) then
      invalid_arg "serve: --query-mix must be a finite ratio >= 0";
    (match checkpoint_every with
     | Some k when k < 1 -> invalid_arg "serve: --checkpoint-every must be >= 1"
     | Some _ when checkpoint_file = None ->
       invalid_arg "serve: --checkpoint-every requires --checkpoint"
     | _ -> ());
    (* serve always collects latency quantiles: a GK insert per timed
       section is far below the batch work it measures, and the end-of-run
       report depends on it. *)
    O.set_latency_enabled true;
    O.set_clock Unix.gettimeofday;
    Lat.set_window latency_window;
    let host_cores = Domain.recommended_domain_count () in
    if domains > host_cores then
      Printf.eprintf
        "serve: warning: --domains %d exceeds the %d core(s) this host reports; \
         expect oversubscription, not speedup\n%!"
        domains host_cores;
    Pool.with_pool ~domains @@ fun pool ->
    let eng =
      match restore_file with
      | None -> SE.create ~pool ~shards ~window ~buckets ~epsilon
      | Some file ->
        let eng = SE.restore_from ~pool ~file in
        Printf.printf "restored %d shards (%d points) from %s\n" (SE.shard_count eng)
          (SE.total_points eng) file;
        eng
    in
    SE.set_refresh_policy eng policy;
    let shards = SE.shard_count eng in
    if listen <> [] then begin
      (* ---- network mode: clients drive ingest and queries ------------- *)
      let listeners =
        List.map
          (fun a ->
            let fd = Net_server.listen a in
            Printf.printf "listening on %s\n%!" (Addr.to_string a);
            fd)
          listen
      in
      let config =
        {
          Net_server.default_config with
          idle_timeout;
          checkpoint = checkpoint_file;
          checkpoint_every;
        }
      in
      let t0 = Unix.gettimeofday () in
      let rep = Net_server.run ~config ?max_points ~engine:eng ~listeners () in
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        listeners;
      List.iter
        (function
          | Addr.Unix_sock p -> ( try Unix.unlink p with Sys_error _ | Unix.Unix_error _ -> ())
          | Addr.Tcp _ -> ())
        listen;
      let elapsed = Unix.gettimeofday () -. t0 in
      Printf.printf
        "net: %d connection(s), %d frame(s) in, %d out, %d protocol error(s), %d idle \
         close(s)\n"
        rep.Net_server.connections rep.Net_server.frames_in rep.Net_server.frames_out
        rep.Net_server.protocol_errors rep.Net_server.idle_closes;
      Printf.printf
        "net: %d bytes in, %d bytes out, %d ingest round(s), %d backpressure stall(s)\n"
        rep.Net_server.bytes_in rep.Net_server.bytes_out rep.Net_server.ingest_rounds
        rep.Net_server.backpressure_stalls;
      (match checkpoint_file with
       | Some file when rep.Net_server.checkpoints_written > 0 ->
         Printf.printf "checkpoint: wrote %s (%d write(s))\n" file
           rep.Net_server.checkpoints_written
       | _ -> ());
      Printf.printf "serve: %d points, %d batches over %d shards, %d domains (%s)\n"
        (SE.total_points eng) (SE.batches eng) shards domains
        (Stream_histogram.Params.policy_to_string policy);
      Printf.printf "pinned: %d backpressure spill(s), %d refresh steal(s), %d lock op(s)\n"
        (SE.backpressure_waits eng) (SE.refresh_steals eng) (SE.lock_ops eng);
      Printf.printf "queries: %d served, %.0f queries/s, query_lock_ops=%d\n"
        rep.Net_server.queries_served
        (Float.of_int rep.Net_server.queries_served /. Float.max elapsed 1e-9)
        (SE.query_lock_ops eng);
      Printf.printf "elapsed %.3fs  throughput %.0f points/s\n" elapsed
        (Float.of_int rep.Net_server.points /. Float.max elapsed 1e-9);
      match List.filter (fun t -> Lat.count t > 0) (Lat.snapshot ()) with
      | [] -> ()
      | lats ->
        Printf.printf "latency quantiles (ms):\n";
        List.iter
          (fun t ->
            Printf.printf "  %-22s count=%-8d" (Lat.name t) (Lat.count t);
            List.iter
              (fun phi ->
                match Lat.quantile t phi with
                | Some v -> Printf.printf " %s=%.4g" (Sh_obs.Sink.phi_label phi) (1e3 *. v)
                | None -> ())
              Lat.percentiles;
            print_newline ())
          lats
    end
    else begin
    let root = Rng.create ~seed in
    (* Every shard owns a deterministic value stream derived from the root
       seed and its key alone (split_ix), so a run is reproducible for any
       --domains and any key distribution. *)
    let sources =
      Array.init shards (fun k -> Wk.network (Rng.split_ix root k) Wk.default_network)
    in
    let key_rng = Rng.split_ix root shards in
    let rr = ref 0 in
    let next_key =
      match dist with
      | `Uniform -> fun () -> Rng.int key_rng shards
      | `Zipf -> fun () -> Rng.zipf key_rng ~n:shards ~skew - 1
      | `RoundRobin ->
        fun () ->
          let k = !rr in
          rr := (k + 1) mod shards;
          k
    in
    let checkpoints = ref 0 in
    let write_checkpoint () =
      match checkpoint_file with
      | None -> ()
      | Some file ->
        SE.checkpoint eng ~file;
        incr checkpoints
    in
    (* --- continuous-evaluation recorder --------------------------------
       Shadow per-key value rings mirror the exact content of each shard's
       window on the caller, so a sample can rebuild the exact V-optimal
       oracle over the very values the engine summarises and report the
       engine histogram's SSE next to the optimum.  After --restore the
       shadow starts empty while the engine window does not, so the spot
       check only reports once that key's shadow has filled. *)
    let eng_window, eng_buckets =
      SE.fold eng ~init:(window, buckets) ~f:(fun _ _ fw -> (FW.window fw, FW.buckets fw))
    in
    let recording = record_file <> None in
    let restored = restore_file <> None in
    let rec_oc =
      match record_file with
      | None -> None
      | Some f -> Some (open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 f)
    in
    let shadow =
      if recording then Array.init shards (fun _ -> Array.make eng_window 0.0) else [||]
    in
    let shadow_len = Array.make (max 1 shards) 0 in
    let shadow_pos = Array.make (max 1 shards) 0 in
    let note_arrival (k, v) =
      let buf = shadow.(k) in
      buf.(shadow_pos.(k)) <- v;
      shadow_pos.(k) <- (shadow_pos.(k) + 1) mod eng_window;
      if shadow_len.(k) < eng_window then shadow_len.(k) <- shadow_len.(k) + 1
    in
    let shadow_window k =
      let len = shadow_len.(k) in
      let buf = shadow.(k) in
      if len < eng_window then Array.sub buf 0 len
      else Array.init eng_window (fun i -> buf.((shadow_pos.(k) + i) mod eng_window))
    in
    let samples = ref 0 in
    let last_sample_t = ref (Unix.gettimeofday ()) in
    let last_sample_pts = ref (SE.total_points eng) in
    let emit_sample oc =
      let now = Unix.gettimeofday () in
      let pts = SE.total_points eng in
      let d_pts = pts - !last_sample_pts in
      let ns_per_point =
        if d_pts > 0 then (now -. !last_sample_t) *. 1e9 /. Float.of_int d_pts else 0.0
      in
      last_sample_t := now;
      last_sample_pts := pts;
      let spot_key = !samples mod shards in
      incr samples;
      let data = shadow_window spot_key in
      let spot_valid =
        Array.length data > 0 && ((not restored) || Array.length data = eng_window)
      in
      let sse, sse_opt =
        if not spot_valid then (0.0, 0.0)
        else begin
          let p = P.make data in
          (* the live summary, not the published snapshot: the shadow ring
             mirrors the live window exactly, so the SSE spot check must
             read through [with_key] or a stale [Pinned] view would be
             scored against data it has not seen yet *)
          let h = SE.with_key eng ~key:spot_key ~f:FW.current_histogram in
          (H.sse_against h p, H.sse_against (V.build_prefix p ~buckets:eng_buckets) p)
        end
      in
      let heap_words = (Gc.quick_stat ()).Gc.heap_words in
      let buf = Buffer.create 512 in
      Printf.bprintf buf
        "{\"batches\":%d,\"items\":%d,\"ns_per_point\":%.6g,\"spot_key\":%d,\"spot_n\":%d,\
         \"spot_valid\":%b,\"sse\":%.9g,\"sse_opt\":%.9g,\"resident_words\":%d,\
         \"backpressure_waits\":%d,\"refresh_steals\":%d,\"lock_ops\":%d,\"latency\":{"
        (SE.batches eng) pts ns_per_point spot_key (Array.length data) spot_valid sse sse_opt
        heap_words
        (SE.backpressure_waits eng) (SE.refresh_steals eng) (SE.lock_ops eng);
      let first = ref true in
      List.iter
        (fun t ->
          if Lat.count t > 0 then begin
            if not !first then Buffer.add_char buf ',';
            first := false;
            Printf.bprintf buf "\"%s\":{\"count\":%d" (Lat.name t) (Lat.count t);
            List.iter
              (fun phi ->
                match Lat.quantile t phi with
                | Some v -> Printf.bprintf buf ",\"%s\":%.9g" (Sh_obs.Sink.phi_label phi) v
                | None -> ())
              Lat.percentiles;
            Buffer.add_char buf '}'
          end)
        (Lat.snapshot ());
      Buffer.add_string buf "}}\n";
      output_string oc (Buffer.contents buf);
      flush oc
    in
    (* --- concurrent query traffic ---------------------------------------
       A reader domain outside the ingest pool fires batched estimation
       queries while the stream is live.  Every answer comes off the
       wait-free published snapshots — zero mutex acquisitions, which the
       report proves via engine.query_lock_ops — and the reader also
       samples the snapshot generation lag of random shards into a tiny
       histogram (the staleness contract, observed).  One scope in
       sixteen is [Global] — the all-keys fold over the published
       views. *)
    let q_stop = Atomic.make false in
    let query_domain =
      if query_mix <= 0.0 then None
      else
        Some
          (Domain.spawn (fun () ->
               let qrng = Rng.split_ix root (shards + 1) in
               let qbatch = 64 in
               let qs = Array.make qbatch (Qop.Key 0, Qop.Current_error) in
               let served = ref 0 in
               let lag = [| 0; 0; 0 |] in
               while not (Atomic.get q_stop) do
                 let target =
                   Float.to_int (query_mix *. Float.of_int (SE.total_points eng))
                 in
                 if !served >= target then Domain.cpu_relax ()
                 else begin
                   for i = 0 to qbatch - 1 do
                     let scope =
                       if Rng.int qrng 16 = 0 then Qop.Global
                       else Qop.Key (Rng.int qrng shards)
                     in
                     let q =
                       match Rng.int qrng 5 with
                       | 0 -> Qop.Current_error
                       | 1 -> Qop.Window_length
                       | 2 ->
                         Qop.Herror
                           {
                             k = 1 + Rng.int qrng eng_buckets;
                             x = Rng.int qrng (eng_window + 1);
                           }
                       | 3 ->
                         let lo = 1 + Rng.int qrng eng_window in
                         Qop.Range_sum { lo; hi = lo + Rng.int qrng eng_window }
                       | _ -> Qop.Point_estimate { index = 1 + Rng.int qrng eng_window }
                     in
                     qs.(i) <- (scope, q)
                   done;
                   ignore (SE.query_many eng qs);
                   served := !served + qbatch;
                   let l = SE.generation_lag eng ~key:(Rng.int qrng shards) in
                   let b = if l = 0 then 0 else if l = 1 then 1 else 2 in
                   lag.(b) <- lag.(b) + 1
                 end
               done;
               (!served, lag)))
    in
    let t0 = Unix.gettimeofday () in
    let remaining = ref count in
    let batches_done = ref 0 in
    while !remaining > 0 do
      let b = min batch !remaining in
      let arrivals =
        Array.init b (fun _ ->
            let k = next_key () in
            (k, sources.(k) ()))
      in
      SE.ingest eng arrivals;
      if recording then Array.iter note_arrival arrivals;
      remaining := !remaining - b;
      incr batches_done;
      (match rec_oc with
      | Some oc when !batches_done mod record_every = 0 -> emit_sample oc
      | _ -> ());
      match checkpoint_every with
      | Some k when !batches_done mod k = 0 -> write_checkpoint ()
      | _ -> ()
    done;
    let query_report =
      match query_domain with
      | None -> None
      | Some d ->
        Atomic.set q_stop true;
        Some (Domain.join d, Unix.gettimeofday () -. t0)
    in
    SE.refresh_all eng;
    write_checkpoint ();
    (match rec_oc with
    | Some oc ->
      emit_sample oc;
      close_out oc;
      Printf.printf "record: %d sample(s) appended to %s\n" !samples
        (Option.value record_file ~default:"")
    | None -> ());
    (match checkpoint_file with
     | Some file -> Printf.printf "checkpoint: wrote %s (%d write(s))\n" file !checkpoints
     | None -> ());
    let elapsed = Unix.gettimeofday () -. t0 in
    Printf.printf "serve: %d points, %d batches of <=%d over %d shards, %d domains (%s)\n"
      (SE.total_points eng) (SE.batches eng) batch shards domains
      (Stream_histogram.Params.policy_to_string policy);
    Printf.printf "pinned: %d backpressure spill(s), %d refresh steal(s), %d lock op(s)\n"
      (SE.backpressure_waits eng) (SE.refresh_steals eng) (SE.lock_ops eng);
    (match query_report with
    | None ->
      (* No query traffic was requested: say so explicitly (with the
         lock-op witness, which must be 0 even for the ingest-only run)
         instead of omitting the line. *)
      Printf.printf "queries: 0 served, 0 queries/s, query_lock_ops=%d\n"
        (SE.query_lock_ops eng)
    | Some ((served, lag), q_elapsed) ->
      Printf.printf "queries: %d served, %.0f queries/s, query_lock_ops=%d\n" served
        (Float.of_int served /. Float.max q_elapsed 1e-9)
        (SE.query_lock_ops eng);
      Printf.printf "query lag histogram: lag0=%d lag1=%d lag2plus=%d\n" lag.(0) lag.(1)
        lag.(2));
    Printf.printf "elapsed %.3fs  throughput %.0f points/s\n" elapsed
      (Float.of_int count /. Float.max elapsed 1e-9);
    (match List.filter (fun t -> Lat.count t > 0) (Lat.snapshot ()) with
    | [] -> ()
    | lats ->
      Printf.printf "latency quantiles%s (ms):\n"
        (if latency_window > 0 then Printf.sprintf ", last %d batches" latency_window else "");
      List.iter
        (fun t ->
          Printf.printf "  %-22s count=%-8d" (Lat.name t) (Lat.count t);
          List.iter
            (fun phi ->
              match Lat.quantile t phi with
              | Some v -> Printf.printf " %s=%.4g" (Sh_obs.Sink.phi_label phi) (1e3 *. v)
              | None -> ())
            Lat.percentiles;
          print_newline ())
        lats);
    let tot_refreshes, tot_intervals =
      SE.fold eng ~init:(0, 0) ~f:(fun (r, iv) key fw ->
          let c = FW.work_counters fw in
          Printf.printf "  key %3d: n=%d herror=%.6g refreshes=%d (%d warm)\n" key (FW.length fw)
            (FW.current_error fw) c.FW.refreshes c.FW.warm_refreshes;
          (r + c.FW.refreshes, iv + c.FW.intervals_built))
    in
    Printf.printf "total: %d refreshes, %d intervals built\n" tot_refreshes tot_intervals
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Ingest many independent streams in parallel across a sharded domain pool")
    Term.(
      const run $ shards $ domains $ count $ batch $ window $ buckets_arg $ epsilon_arg $ policy
      $ dist $ skew $ seed_arg $ metrics_arg $ trace_out_arg $ checkpoint_file $ checkpoint_every
      $ restore_file $ record_file $ record_every $ latency_window $ query_mix
      $ listen $ max_points $ idle_timeout)

(* ---------------------------------------------------------- loadgen *)

let loadgen_cmd =
  let connect =
    let addr_conv =
      let parse s =
        match Addr.of_string s with Ok a -> Ok a | Error msg -> Error (`Msg msg)
      in
      Arg.conv (parse, fun ppf a -> Format.pp_print_string ppf (Addr.to_string a))
    in
    Arg.(
      required
      & opt (some addr_conv) None
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:"Server address: $(b,unix:PATH), $(b,tcp:HOST:PORT), $(b,HOST:PORT) or $(b,:PORT).")
  in
  let connections =
    Arg.(
      value & opt int 4
      & info [ "c"; "connections" ] ~docv:"C" ~doc:"Concurrent connections (>= 1).")
  in
  let batch =
    Arg.(value & opt int 512 & info [ "batch" ] ~docv:"B" ~doc:"Points per ingest request.")
  in
  let count =
    Arg.(
      value & opt int 100_000
      & info [ "n"; "count" ] ~docv:"N" ~doc:"Total points to ingest across all connections.")
  in
  let dist =
    Arg.(
      value
      & opt (enum [ ("uniform", `Uniform); ("zipf", `Zipf); ("roundrobin", `RoundRobin) ]) `Uniform
      & info [ "dist" ] ~docv:"DIST" ~doc:"Key distribution: uniform | zipf | roundrobin.")
  in
  let skew =
    Arg.(value & opt float 1.1 & info [ "skew" ] ~docv:"A" ~doc:"Zipf skew (with --dist zipf).")
  in
  let query_mix =
    Arg.(
      value & opt float 0.0
      & info [ "query-mix" ] ~docv:"R"
          ~doc:"Interleave estimation queries, pacing towards $(docv) queries per ingested point.")
  in
  let global_mix =
    Arg.(
      value & opt float 0.0
      & info [ "global-mix" ] ~docv:"F"
          ~doc:
            "Fraction of $(b,--query-mix) traffic scoped $(b,global) (over all keys) instead of \
             a single key — exercises the all-keys fold on a leaf and the snapshot-merge path \
             on an aggregator.  The report counts degraded (partial) answers.")
  in
  let do_shutdown =
    Arg.(
      value & flag
      & info [ "shutdown" ] ~doc:"Send a shutdown request to the server when the run completes.")
  in
  let timeout =
    Arg.(
      value & opt float 10.0
      & info [ "timeout" ] ~docv:"SECS" ~doc:"Socket timeout for every wait on the server.")
  in
  let retries =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"K"
          ~doc:
            "Reconnect budget: on a connection failure, retry up to $(docv) times (0.2s apart) \
             and resend the unacknowledged request — rides out a server restart without \
             dropping acknowledged points.")
  in
  let run addr connections batch count dist skew seed query_mix global_mix do_shutdown timeout
      retries =
    if connections < 1 then invalid_arg "loadgen: --connections must be >= 1";
    if batch < 1 then invalid_arg "loadgen: --batch must be >= 1";
    if count < 0 then invalid_arg "loadgen: --count must be >= 0";
    if query_mix < 0.0 || not (Float.is_finite query_mix) then
      invalid_arg "loadgen: --query-mix must be a finite ratio >= 0";
    if global_mix < 0.0 || global_mix > 1.0 || not (Float.is_finite global_mix) then
      invalid_arg "loadgen: --global-mix must be a fraction in [0, 1]";
    let connect_one () =
      Net_client.connect ~timeout ~retries ~retry_delay:0.2 addr
    in
    let conns = Array.init connections (fun _ -> connect_one ()) in
    (* Wire bytes of connections we replace after a failure still count. *)
    let dead_bytes_in = ref 0 and dead_bytes_out = ref 0 in
    let close_all () =
      Array.iter (fun c -> try Net_client.close c with _ -> ()) conns
    in
    Fun.protect ~finally:close_all @@ fun () ->
    (* Learn the engine geometry from the server rather than flags: the
       keys and spot checks must fit whatever engine is actually serving. *)
    let st = Net_client.stats conns.(0) in
    let shards = st.Wire.shards in
    let eng_window = st.Wire.window in
    let root = Rng.create ~seed in
    let sources =
      Array.init shards (fun k -> Wk.network (Rng.split_ix root k) Wk.default_network)
    in
    let key_rng = Rng.split_ix root shards in
    let rr = ref 0 in
    let next_key =
      match dist with
      | `Uniform -> fun () -> Rng.int key_rng shards
      | `Zipf -> fun () -> Rng.zipf key_rng ~n:shards ~skew - 1
      | `RoundRobin ->
        fun () ->
          let k = !rr in
          rr := (k + 1) mod shards;
          k
    in
    (* Build one ingest request: [b] points grouped by key, each key's
       values in arrival order (shards are independent, so per-key order
       is the only order that matters). *)
    let make_batch b =
      let order = ref [] in
      let per_key = Hashtbl.create 64 in
      for _ = 1 to b do
        let k = next_key () in
        let bucket =
          match Hashtbl.find_opt per_key k with
          | Some l -> l
          | None ->
            let l = ref [] in
            Hashtbl.add per_key k l;
            order := k :: !order;
            l
        in
        bucket := sources.(k) () :: !bucket
      done;
      let groups =
        List.rev_map
          (fun k ->
            let l = Hashtbl.find per_key k in
            let vs = Array.of_list (List.rev !l) in
            (k, vs))
          !order
      in
      Array.of_list groups
    in
    let rtt_ingest = Gk.create ~epsilon:0.001 in
    let rtt_query = Gk.create ~epsilon:0.001 in
    let reconnect i =
      dead_bytes_in := !dead_bytes_in + Net_client.bytes_in conns.(i);
      dead_bytes_out := !dead_bytes_out + Net_client.bytes_out conns.(i);
      (try Net_client.close conns.(i) with _ -> ());
      conns.(i) <- connect_one ()
    in
    (* Send, then collect, resending the whole request on a fresh
       connection if this one died — at-least-once, so a server restart
       never costs an acknowledged point. *)
    let resend_sync i req =
      let attempts = ref 0 in
      let rec go () =
        reconnect i;
        match Net_client.call conns.(i) req with
        | resp -> resp
        | exception Net_client.Net_error _ when !attempts < retries ->
          incr attempts;
          go ()
      in
      go ()
    in
    let t0 = Unix.gettimeofday () in
    let sent = ref 0 in
    let acked = ref 0 in
    let q_sent = ref 0 in
    let q_partial = ref 0 in
    let inflight = Array.make connections None in
    let t_send = Array.make connections 0.0 in
    let round = ref 0 in
    while !sent < count do
      (* phase 1: one pipelined ingest request per connection *)
      let active = ref 0 in
      for i = 0 to connections - 1 do
        inflight.(i) <- None;
        if !sent < count then begin
          let b = min batch (count - !sent) in
          sent := !sent + b;
          let req = Wire.Ingest (make_batch b) in
          inflight.(i) <- Some (req, b);
          t_send.(i) <- Unix.gettimeofday ();
          incr active;
          try Net_client.send conns.(i) req
          with Net_client.Net_error _ | Unix.Unix_error _ ->
            (* collected (and resent) in phase 2 *)
            ()
        end
      done;
      (* phase 2: collect acks in send order *)
      for i = 0 to connections - 1 do
        match inflight.(i) with
        | None -> ()
        | Some (req, b) ->
          let resp =
            match Net_client.recv conns.(i) with
            | resp -> resp
            | exception (Net_client.Net_error _ | Unix.Unix_error _) when retries > 0 ->
              resend_sync i req
          in
          (match resp with
          | Wire.Ack n ->
            if n <> b then
              Printf.eprintf "loadgen: warning: acked %d of %d points\n%!" n b;
            acked := !acked + n
          | Wire.Error_reply msg -> failwith ("loadgen: server rejected ingest: " ^ msg)
          | _ -> failwith "loadgen: unexpected response to ingest");
          Gk.insert rtt_ingest (Unix.gettimeofday () -. t_send.(i))
      done;
      (* query traffic, paced against points acked so far *)
      if query_mix > 0.0 then begin
        let target = Float.to_int (query_mix *. Float.of_int !acked) in
        while !q_sent < target do
          let qb = min 64 (target - !q_sent) in
          let qs =
            Array.init qb (fun _ ->
                let scope =
                  if global_mix > 0.0 && Rng.float key_rng 1.0 < global_mix then Qop.Global
                  else Qop.Key (Rng.int key_rng shards)
                in
                match Rng.int key_rng 5 with
                | 0 -> (scope, Qop.Current_error)
                | 1 -> (scope, Qop.Window_length)
                | 2 ->
                  ( scope,
                    Qop.Herror
                      {
                        k = 1 + Rng.int key_rng (max 1 st.Wire.buckets);
                        x = Rng.int key_rng (eng_window + 1);
                      } )
                | 3 ->
                  let lo = 1 + Rng.int key_rng eng_window in
                  (scope, Qop.Range_sum { lo; hi = lo + Rng.int key_rng eng_window })
                | _ -> (scope, Qop.Point_estimate { index = 1 + Rng.int key_rng eng_window }))
          in
          let i = !round mod connections in
          let tq = Unix.gettimeofday () in
          let answers, missing =
            match Net_client.query_partial conns.(i) qs with
            | a -> a
            | exception (Net_client.Net_error _ | Unix.Unix_error _) when retries > 0 -> (
              match resend_sync i (Wire.Query qs) with
              | Wire.Answers a -> (a, 0)
              | Wire.Answers_partial { answers; leaves_missing } -> (answers, leaves_missing)
              | _ -> failwith "loadgen: unexpected response to query")
          in
          Gk.insert rtt_query (Unix.gettimeofday () -. tq);
          if Array.length answers <> qb then
            failwith "loadgen: short answer vector";
          if missing > 0 then incr q_partial;
          q_sent := !q_sent + qb
        done
      end;
      incr round
    done;
    let elapsed = Unix.gettimeofday () -. t0 in
    (* Spot-check the served state end to end: window lengths must sit in
       [0, window] for any engine that really ingested our stream. *)
    let spot_keys = min shards 8 in
    let spot, _spot_missing =
      Net_client.query_partial conns.(0)
        (Array.init spot_keys (fun k -> (Qop.Key k, Qop.Window_length)))
    in
    let spot_ok =
      Array.for_all (fun v -> v >= 0.0 && v <= Float.of_int eng_window) spot
    in
    let st1 = Net_client.stats conns.(0) in
    if do_shutdown then (try Net_client.shutdown conns.(0) with _ -> ());
    let bytes_out =
      !dead_bytes_out + Array.fold_left (fun a c -> a + Net_client.bytes_out c) 0 conns
    in
    let bytes_in =
      !dead_bytes_in + Array.fold_left (fun a c -> a + Net_client.bytes_in c) 0 conns
    in
    Printf.printf "loadgen: %d/%d points acked over %d connection(s), batch %d, %s keys\n"
      !acked count connections batch
      (match dist with `Uniform -> "uniform" | `Zipf -> "zipf" | `RoundRobin -> "roundrobin");
    Printf.printf "elapsed %.3fs  throughput %.0f points/s\n" elapsed
      (Float.of_int !acked /. Float.max elapsed 1e-9);
    Printf.printf "wire: %d bytes out, %d bytes in, %.2f bytes/point on the wire\n" bytes_out
      bytes_in
      (Float.of_int (bytes_out + bytes_in) /. Float.max 1.0 (Float.of_int !acked));
    let print_rtt name g =
      if Gk.count g = 0 then Printf.printf "rtt %s: no samples\n" name
      else
        Printf.printf "rtt %s (ms): p50=%.3f p99=%.3f p999=%.3f over %d round trip(s)\n" name
          (1e3 *. Gk.quantile g 0.5) (1e3 *. Gk.quantile g 0.99)
          (1e3 *. Gk.quantile g 0.999) (Gk.count g)
    in
    print_rtt "ingest" rtt_ingest;
    print_rtt "query" rtt_query;
    if !q_sent > 0 then
      Printf.printf "queries: %d sent, %d degraded (partial) batch(es)\n" !q_sent !q_partial;
    Printf.printf "spot queries: %s (%d key(s), window lengths within [0, %d])\n"
      (if spot_ok then "ok" else "FAILED")
      spot_keys eng_window;
    Printf.printf "server: %d total points, query_lock_ops=%d, backpressure_waits=%d\n"
      st1.Wire.total_points st1.Wire.query_lock_ops st1.Wire.backpressure_waits;
    if not spot_ok then exit 1
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Drive a shist serve --listen endpoint: concurrent connections, batched ingest, \
             mixed queries, RTT quantiles")
    Term.(
      const run $ connect $ connections $ batch $ count $ dist $ skew $ seed_arg $ query_mix
      $ global_mix $ do_shutdown $ timeout $ retries)

(* -------------------------------------------------------- aggregate *)

let addr_conv =
  let parse s =
    match Addr.of_string s with Ok a -> Ok a | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, fun ppf a -> Format.pp_print_string ppf (Addr.to_string a))

let aggregate_cmd =
  let connect =
    Arg.(
      non_empty
      & opt_all addr_conv []
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:
            "Leaf $(b,shist serve --listen) endpoint (repeatable).  Leaf $(docv) order fixes \
             the global key space: leaf i's shards follow leaf i-1's.  All leaves must be up \
             and agree on (window, buckets) at startup.")
  in
  let listen =
    Arg.(
      non_empty
      & opt_all addr_conv []
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:
            "Serve the aggregated tree over the same wire protocol the leaves speak \
             (repeatable) — $(b,shist loadgen) and $(b,shist peek) work unchanged against \
             the root.")
  in
  let timeout =
    Arg.(
      value & opt float 5.0
      & info [ "timeout" ] ~docv:"SECS"
          ~doc:"Bound on every leaf touch — a dead leaf degrades the reply, never hangs it.")
  in
  let idle_timeout =
    Arg.(
      value & opt float 30.0
      & info [ "idle-timeout" ] ~docv:"SECS"
          ~doc:"Close a client connection idle on a partial frame for $(docv) seconds.")
  in
  let run connect listen timeout idle_timeout =
    let agg = Aggregator.create ~timeout connect in
    Printf.printf "aggregate: %d leaves, %d shards total (window %d, buckets %d)\n%!"
      (Aggregator.leaf_count agg) (Aggregator.total_shards agg) (Aggregator.window agg)
      (Aggregator.buckets agg);
    let listeners =
      List.map
        (fun a ->
          let fd = Net_server.listen a in
          Printf.printf "listening on %s\n%!" (Addr.to_string a);
          fd)
        listen
    in
    let t0 = Unix.gettimeofday () in
    let rep = Aggregator.run ~idle_timeout ~listeners agg () in
    List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) listeners;
    List.iter
      (function
        | Addr.Unix_sock p -> ( try Unix.unlink p with Sys_error _ | Unix.Unix_error _ -> ())
        | Addr.Tcp _ -> ())
      listen;
    Aggregator.close agg;
    let elapsed = Unix.gettimeofday () -. t0 in
    Printf.printf
      "net: %d connection(s), %d frame(s) in, %d out, %d protocol error(s), %d idle close(s)\n"
      rep.Aggregator.connections rep.Aggregator.frames_in rep.Aggregator.frames_out
      rep.Aggregator.protocol_errors rep.Aggregator.idle_closes;
    Printf.printf "net: %d bytes in, %d bytes out\n" rep.Aggregator.bytes_in
      rep.Aggregator.bytes_out;
    Printf.printf
      "aggregate: %d point(s) forwarded, %d query element(s), %d partial (degraded) replies\n"
      rep.Aggregator.points_forwarded rep.Aggregator.queries_served
      rep.Aggregator.partial_replies;
    Printf.printf "elapsed %.3fs  throughput %.0f points/s\n" elapsed
      (Float.of_int rep.Aggregator.points_forwarded /. Float.max elapsed 1e-9)
  in
  Cmd.v
    (Cmd.info "aggregate"
       ~doc:
         "Root of a two-tier aggregation tree: fan ingest and scoped queries out over N leaf \
          shist serve processes, merge snapshot summaries for global answers, degrade (never \
          hang) on leaf failure")
    Term.(const run $ connect $ listen $ timeout $ idle_timeout)

(* ------------------------------------------------------------- peek *)

let peek_cmd =
  let connect =
    Arg.(
      required
      & pos 0 (some addr_conv) None
      & info [] ~docv:"ADDR" ~doc:"Endpoint to query: a leaf serve or an aggregate root.")
  in
  let timeout =
    Arg.(value & opt float 10.0 & info [ "timeout" ] ~docv:"SECS" ~doc:"Socket timeout.")
  in
  let retries =
    Arg.(value & opt int 0 & info [ "retries" ] ~docv:"K" ~doc:"Connect retry budget.")
  in
  let run addr timeout retries =
    let c = Net_client.connect ~timeout ~retries ~retry_delay:0.2 addr in
    Fun.protect ~finally:(fun () -> Net_client.close c) @@ fun () ->
    let st = Net_client.stats c in
    let w = st.Wire.window in
    let qs =
      [|
        (Qop.Global, Qop.Window_length);
        (Qop.Global, Qop.Range_sum { lo = 1; hi = w });
        (Qop.Global, Qop.Current_error);
      |]
    in
    let answers, missing = Net_client.query_partial c qs in
    (* %.17g: bit-faithful float text, so two endpoints answering the
       same state diff clean — the CI oracle comparison greps these. *)
    Printf.printf "global window_length answer=%.17g leaves_missing=%d\n" answers.(0) missing;
    Printf.printf "global range_sum[1,%d] answer=%.17g leaves_missing=%d\n" w answers.(1)
      missing;
    Printf.printf "global current_error answer=%.17g leaves_missing=%d\n" answers.(2) missing
  in
  Cmd.v
    (Cmd.info "peek"
       ~doc:
         "One-shot Global-scope queries against any wire endpoint, printed bit-faithfully — \
          the scale-out equivalence check")
    Term.(const run $ connect $ timeout $ retries)

(* -------------------------------------------------------- quantiles *)

let quantiles_cmd =
  let run file epsilon =
    let data = Source.of_file file in
    let g = Sh_quantile.Gk.create ~epsilon in
    Array.iter (Sh_quantile.Gk.insert g) data;
    Printf.printf "n=%d summary-size=%d\n" (Sh_quantile.Gk.count g) (Sh_quantile.Gk.size g);
    List.iter
      (fun phi -> Printf.printf "  q%.2f = %.6g\n" phi (Sh_quantile.Gk.quantile g phi))
      [ 0.0; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ]
  in
  Cmd.v
    (Cmd.info "quantiles" ~doc:"One-pass GK quantile summary of a data file")
    Term.(const run $ file_arg 0 $ epsilon_arg)

let () =
  let doc = "streaming histogram toolkit (Guha & Koudas, ICDE 2002 reproduction)" in
  let info = Cmd.info "shist" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ generate_cmd; build_cmd; stream_cmd; query_cmd; quantiles_cmd; selectivity_cmd; heavy_cmd; serve_cmd; loadgen_cmd; aggregate_cmd; peek_cmd ]))
