(* Time-series similarity search — the paper's Section 5.2 comparison:
   approximate every series in a collection with a B-segment synopsis,
   search with lower-bounding distances (never missing a true match), and
   count the false positives each synopsis admits.  Histogram synopses
   (this paper) place segment boundaries near-optimally; APCA [KCMP01]
   places them with a wavelet heuristic; PAA uses fixed segments.

     dune exec examples/similarity_search.exe *)

module Rng = Sh_util.Rng
module Wk = Sh_gen.Workloads
module V = Sh_histogram.Vopt
module Seg = Sh_timeseries.Segments
module Apca = Sh_timeseries.Apca
module Paa = Sh_timeseries.Paa
module Sim = Sh_timeseries.Similarity
module AG = Stream_histogram.Agglomerative

let () =
  let rng = Rng.create ~seed:4242 in
  let series = Wk.step_family rng ~count:100 ~len:256 ~shapes:20 ~steps:24 ~noise:10.0 in
  let segments = 12 in
  Printf.printf "collection: %d series of length 256, %d segments per synopsis\n\n"
    (Array.length series) segments;

  let methods =
    [
      ("PAA (fixed segments)", fun s -> Paa.build s ~segments);
      ("APCA (wavelet heuristic)", fun s -> Apca.build s ~segments);
      ( "Histogram (this paper)",
        fun s ->
          let ag = AG.create ~buckets:segments ~epsilon:0.1 in
          Array.iter (AG.push ag) s;
          Seg.of_histogram (AG.current_histogram ag) );
      ("V-optimal (offline bound)", fun s -> Apca.build_optimal s ~segments);
    ]
  in

  (* radius chosen so each query matches its own shape-family only *)
  let radius =
    let d = Array.map (fun s -> Seg.euclidean series.(0) s) series in
    Array.sort compare d;
    d.(5)
  in
  Printf.printf "range search radius: %.1f\n\n" radius;
  Printf.printf "%-28s %12s %14s %14s %12s\n" "synopsis" "SSE/series" "candidates/q" "false pos/q"
    "pruned";
  List.iter
    (fun (name, synopsis) ->
      let coll = Sim.make_collection ~name ~synopsis series in
      let sse =
        let acc = ref 0.0 in
        Array.iteri
          (fun i s -> acc := !acc +. Seg.sse_of_approximation s coll.Sim.synopses.(i))
          series;
        !acc /. Float.of_int (Array.length series)
      in
      let fp = ref 0 and cand = ref 0 and prune = ref 0.0 and queries = ref 0 in
      Array.iteri
        (fun i q ->
          if i mod 5 = 0 then begin
            incr queries;
            let _, stats = Sim.range_search coll ~query:q ~radius in
            fp := !fp + stats.Sim.false_positives;
            cand := !cand + stats.Sim.candidates;
            prune := !prune +. stats.Sim.pruning_power
          end)
        series;
      let f = Float.of_int !queries in
      Printf.printf "%-28s %12.0f %14.2f %14.2f %11.1f%%\n" name sse
        (Float.of_int !cand /. f)
        (Float.of_int !fp /. f)
        (100.0 *. !prune /. f))
    methods;
  Printf.printf
    "\nevery method returns exactly the true matches (lower bounds never dismiss a\n\
     real result); better segment placement means fewer false positives to refine.\n"
