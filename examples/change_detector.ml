(* Stream mining with histograms — the direction the paper's conclusion
   points at ("several data mining applications can make use of the
   superior quality histograms... the incremental nature of our algorithms
   makes them applicable to mining problems in data streams").

   A simple change-point monitor: maintain fixed-window histograms over
   two adjacent windows (recent vs reference) and raise an alert when the
   distance between their reconstructed distributions exceeds a threshold
   — all computed from synopses, not raw data.

     dune exec examples/change_detector.exe *)

module Rng = Sh_util.Rng
module Wk = Sh_gen.Workloads
module H = Sh_histogram.Histogram
module FW = Stream_histogram.Fixed_window

(* L2 distance between the reconstructed (per-position) approximations of
   two equal-length windows. *)
let histogram_distance h1 h2 =
  let a = H.to_series h1 and b = H.to_series h2 in
  sqrt (Sh_util.Metrics.sse a b /. Float.of_int (Array.length a))

let () =
  let w = 256 in
  let recent = FW.create ~window:w ~buckets:8 ~epsilon:0.2 in
  let reference = FW.create ~window:w ~buckets:8 ~epsilon:0.2 in
  let lag = Queue.create () in

  let rng = Rng.create ~seed:77 in
  (* a stream whose level shifts abruptly twice *)
  let value t =
    let base = if t < 3000 then 100.0 else if t < 6000 then 400.0 else 150.0 in
    base +. Wk.default_network.Wk.noise_stddev *. Rng.gaussian rng ~mean:0.0 ~stddev:0.2
  in

  Printf.printf "monitoring a stream with level shifts at t=3000 and t=6000 (threshold 50)\n\n";
  let alert_cooldown = ref 0 in
  for t = 1 to 9000 do
    let v = value t in
    FW.push recent v;
    Queue.push v lag;
    (* the reference window trails the recent one by w points *)
    if Queue.length lag > w then FW.push reference (Queue.pop lag);
    decr alert_cooldown;
    if t > 2 * w && t mod 64 = 0 && !alert_cooldown <= 0 then begin
      let d = histogram_distance (FW.current_histogram recent) (FW.current_histogram reference) in
      if d > 50.0 then begin
        Printf.printf "  t=%5d  ALERT: distribution shift detected (distance %.1f)\n" t d;
        alert_cooldown := w / 32
      end
    end
  done;
  Printf.printf "\ndetection used only the 8-bucket synopses of two %d-point windows.\n" w
