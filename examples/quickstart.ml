(* Quickstart: maintain an epsilon-approximate histogram over the last
   n points of a stream and answer range-sum queries from it.

     dune exec examples/quickstart.exe *)

module FW = Stream_histogram.Fixed_window
module H = Sh_histogram.Histogram

let () =
  (* A maintainer for the most recent 64 stream points, summarised by 4
     buckets, within 10% of the best possible 4-bucket summary. *)
  let fw = FW.create ~window:64 ~buckets:4 ~epsilon:0.1 in

  (* Feed a stream: a level shift halfway through, some noise at the end. *)
  for i = 1 to 200 do
    let v = if i mod 64 < 32 then 10.0 else 50.0 in
    let v = if i mod 7 = 0 then v +. 3.0 else v in
    FW.push fw v
  done;

  (* The histogram of the current window. *)
  let h = FW.current_histogram fw in
  Format.printf "window summary:@.%a@." H.pp h;
  Format.printf "approximation error (SSE, within 1.1x of optimal): %.2f@."
    (FW.current_error fw);

  (* Use it to answer queries about the window without the raw data:
     index 1 is the oldest of the 64 retained points. *)
  Format.printf "estimated sum of points 1..32:  %.1f@." (H.range_sum_estimate h ~lo:1 ~hi:32);
  Format.printf "estimated sum of points 33..64: %.1f@." (H.range_sum_estimate h ~lo:33 ~hi:64);
  Format.printf "estimated value at point 40:    %.1f@." (H.point_estimate h 40)
