(* Network monitoring over a data stream — the paper's motivating scenario:
   "network operators commonly pose queries, requesting the aggregate
   number of bytes over network interfaces for time windows of interest."

   A router produces one utilisation sample per time unit; we keep a
   fixed-window histogram of the last HOUR of samples and answer operator
   queries ("total bytes in the last 10 minutes", "average utilisation
   between t-40min and t-20min") from the synopsis, comparing against the
   exact answers the operator can no longer afford to compute.

     dune exec examples/network_monitor.exe *)

module Rng = Sh_util.Rng
module Source = Sh_gen.Source
module Wk = Sh_gen.Workloads
module RB = Sh_window.Ring_buffer
module P = Sh_prefix.Prefix_sums
module H = Sh_histogram.Histogram
module FW = Stream_histogram.Fixed_window

let minutes m = 60 * m (* one sample per second *)

let () =
  let window = minutes 60 in
  let fw = FW.create ~window ~buckets:48 ~epsilon:0.1 in
  (* rebuild the synopsis every 20 minutes so it never goes too stale between
     operator queries; queries themselves always force a fresh one *)
  FW.set_refresh_policy fw (Stream_histogram.Params.Every (minutes 20));
  (* the monitor also keeps the raw hour so this demo can show true errors *)
  let raw = RB.create ~capacity:window in

  let rng = Rng.create ~seed:1234 in
  let router = Wk.network rng { Wk.default_network with Wk.period = minutes 60 } in

  Printf.printf "simulating 3 hours of router samples (1/s, window = last hour)\n\n";
  let report_at = [ minutes 75; minutes 120; minutes 180 ] in
  let t = ref 0 in
  Source.drop router 0;
  while !t < minutes 180 do
    incr t;
    let v = router () in
    FW.push fw v;
    RB.push raw v;
    if List.mem !t report_at then begin
      let h = FW.current_histogram fw in
      let exact = P.make (RB.to_array raw) in
      let q name lo hi =
        let est = H.range_sum_estimate h ~lo ~hi in
        let tru = P.range_sum exact ~lo ~hi in
        Printf.printf "  %-42s estimate %12.0f   exact %12.0f   error %5.2f%%\n" name est tru
          (100.0 *. Float.abs (est -. tru) /. Float.max 1.0 tru)
      in
      Printf.printf "t = %d min; histogram uses %d buckets for %d samples\n" (!t / 60)
        (H.bucket_count h) window;
      q "bytes in the last 10 minutes" (window - minutes 10 + 1) window;
      q "bytes between t-40min and t-20min" (window - minutes 40 + 1) (window - minutes 20);
      q "bytes over the whole hour" 1 window;
      Printf.printf "\n"
    end
  done;
  let c = FW.work_counters fw in
  Printf.printf "maintenance: %d interval-list refreshes over %d samples\n" c.FW.refreshes
    (minutes 180);
  Printf.printf "warm-start: %d of %d boundary hints exact (%d herror evaluations total)\n"
    c.FW.hint_hits
    (c.FW.hint_hits + c.FW.hint_misses)
    c.FW.herror_evaluations
