(* Approximate querying in a data warehouse — the paper's Section 5.2
   scenario: build the histogram in ONE pass with AgglomerativeHistogram
   (instead of the O(n^2 B) optimal algorithm), then answer aggregation
   queries approximately.

   The demo measures what the paper reports: accuracy comparable to the
   optimal histogram, with construction-time savings that grow with the
   size of the underlying data set.

     dune exec examples/warehouse_approx.exe *)

module Rng = Sh_util.Rng
module Source = Sh_gen.Source
module Wk = Sh_gen.Workloads
module P = Sh_prefix.Prefix_sums
module H = Sh_histogram.Histogram
module V = Sh_histogram.Vopt
module AG = Stream_histogram.Agglomerative
module E = Sh_query.Estimator
module Q = Sh_query.Workload
module Ev = Sh_query.Evaluate

let time f =
  let t0 = Sys.time () in
  let r = f () in
  (r, Sys.time () -. t0)

let () =
  let buckets = 32 in
  Printf.printf "one-pass agglomerative vs optimal histogram, B = %d\n\n" buckets;
  Printf.printf "%10s %14s %14s %12s %12s %10s\n" "rows" "agg avg-err" "opt avg-err" "agg build"
    "opt build" "speedup";
  List.iter
    (fun n ->
      (* a "fact table measure column": daily totals with seasonality *)
      let data = Source.take (Wk.network (Rng.create ~seed:99) Wk.default_network) n in
      let ag, t_agg =
        time (fun () ->
            let ag = AG.create ~buckets ~epsilon:0.1 in
            Array.iter (AG.push ag) data;
            ag)
      in
      let p = P.make data in
      let opt, t_opt = time (fun () -> V.build_prefix p ~buckets) in
      let truth = E.exact p in
      let queries = Q.random_ranges (Rng.create ~seed:1) ~n ~count:500 in
      let mae h = (Ev.range_sum_errors ~truth (E.of_histogram h) queries).Sh_util.Metrics.mae in
      Printf.printf "%10d %14.1f %14.1f %11.3fs %11.3fs %9.1fx\n" n
        (mae (AG.current_histogram ag))
        (mae opt) t_agg t_opt
        (t_opt /. Float.max 1e-9 t_agg))
    [ 1_000; 2_000; 5_000; 10_000 ];
  Printf.printf
    "\nthe agglomerative histogram stays within (1+0.1)x of optimal SSE while its\n\
     one-pass construction scales near-linearly; the optimal DP is quadratic.\n"
