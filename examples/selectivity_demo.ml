(* Selectivity estimation for query optimisation — the database use case
   the paper's introduction motivates ([PI97], [IP95]): a query optimiser
   needs the fraction of tuples matching "value BETWEEN a AND b" without
   scanning the column.

   Builds equi-width, equi-depth (offline and one-pass via GK) and
   V-optimal value histograms over a skewed column and compares their
   selectivity estimates against the truth.

     dune exec examples/selectivity_demo.exe *)

module Rng = Sh_util.Rng
module VH = Sh_selectivity.Value_histogram
module Gk = Sh_quantile.Gk

let () =
  (* A Zipf-skewed column: a few hot values dominate (e.g. status codes,
     customer ids), a long cold tail. *)
  let rng = Rng.create ~seed:2002 in
  let n = 200_000 in
  let column = Array.init n (fun _ -> Float.of_int (Rng.zipf rng ~n:10_000 ~skew:1.1)) in

  let truth lo hi =
    let c = Array.fold_left (fun a v -> if v >= lo && v <= hi then a + 1 else a) 0 column in
    Float.of_int c /. Float.of_int n
  in

  let buckets = 25 in
  let g = Gk.create ~epsilon:0.005 in
  Array.iter (Gk.insert g) column;
  let methods =
    [
      ("equi-width", VH.equi_width column ~buckets);
      ("equi-depth", VH.equi_depth column ~buckets);
      ("equi-depth (GK, 1-pass)", VH.equi_depth_of_gk g ~buckets);
      ("v-optimal", VH.v_optimal column ~buckets ~domain_bins:400);
    ]
  in

  let predicates =
    [ (1.0, 1.0); (1.0, 5.0); (2.0, 20.0); (50.0, 200.0); (1000.0, 9999.0) ]
  in
  Printf.printf "column: %d tuples, Zipf(1.1) over 10k distinct values; B = %d buckets\n\n" n
    buckets;
  Printf.printf "%-26s" "predicate v IN [a,b]";
  List.iter (fun (name, _) -> Printf.printf " %22s" name) methods;
  Printf.printf " %12s\n" "true";
  List.iter
    (fun (lo, hi) ->
      Printf.printf "%-26s" (Printf.sprintf "[%.0f, %.0f]" lo hi);
      List.iter
        (fun (_, h) -> Printf.printf " %21.4f%%" (100.0 *. VH.selectivity_range h ~lo ~hi))
        methods;
      Printf.printf " %11.4f%%\n" (100.0 *. truth lo hi))
    predicates;
  Printf.printf
    "\nequi-width wastes buckets on the empty tail; the quantile-based and\n\
     V-optimal constructions track the skew, and the GK variant needs one pass.\n"
