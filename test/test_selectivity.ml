module VH = Sh_selectivity.Value_histogram
module Gk = Sh_quantile.Gk
module Rng = Sh_util.Rng

let true_selectivity data lo hi =
  let n = Array.length data in
  let c = Array.fold_left (fun acc v -> if v >= lo && v <= hi then acc + 1 else acc) 0 data in
  Float.of_int c /. Float.of_int n

let uniform_data ~seed ~n ~hi =
  let rng = Rng.create ~seed in
  Array.init n (fun _ -> Float.of_int (Rng.int rng hi))

(* ------------------------------------------------------------ building *)

let test_equi_width_structure () =
  let h = VH.equi_width [| 0.0; 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 7.0 |] ~buckets:4 in
  Alcotest.(check int) "buckets" 4 (VH.bucket_count h);
  Helpers.check_close "total covered" 1.0 (VH.selectivity_range h ~lo:0.0 ~hi:7.0)

let test_equi_depth_counts () =
  let data = Array.init 100 Float.of_int in
  let h = VH.equi_depth data ~buckets:4 in
  Alcotest.(check int) "buckets" 4 (VH.bucket_count h);
  (* each quartile holds 25 values *)
  Array.iter
    (fun b -> Helpers.check_close "equal depth" 25.0 b.VH.count)
    (h : VH.t).VH.buckets

let test_empty_rejected () =
  Alcotest.check_raises "equi_width empty" (Invalid_argument "Value_histogram.equi_width: empty data")
    (fun () -> ignore (VH.equi_width [||] ~buckets:2));
  Alcotest.check_raises "equi_depth empty" (Invalid_argument "Value_histogram.equi_depth: empty data")
    (fun () -> ignore (VH.equi_depth [||] ~buckets:2))

let test_constant_data () =
  let h = VH.equi_width (Array.make 10 5.0) ~buckets:3 in
  Helpers.check_close "all mass findable" 1.0 (VH.selectivity_range h ~lo:4.0 ~hi:6.0)

(* ----------------------------------------------------------- estimation *)

let test_range_selectivity_uniform () =
  let data = uniform_data ~seed:1 ~n:20_000 ~hi:1000 in
  List.iter
    (fun (name, h) ->
      List.iter
        (fun (lo, hi) ->
          let est = VH.selectivity_range h ~lo ~hi in
          let tru = true_selectivity data lo hi in
          Alcotest.(check bool)
            (Printf.sprintf "%s [%g,%g]: est %.4f vs true %.4f" name lo hi est tru)
            true
            (Float.abs (est -. tru) < 0.02))
        [ (0.0, 999.0); (100.0, 199.0); (250.0, 749.0); (900.0, 999.0) ])
    [
      ("equi_width", VH.equi_width data ~buckets:50);
      ("equi_depth", VH.equi_depth data ~buckets:50);
      ("v_optimal", VH.v_optimal data ~buckets:50 ~domain_bins:200);
    ]

let test_skewed_data_vopt_beats_equiwidth () =
  (* Zipf-like skew: most mass at small values.  V-optimal and equi-depth
     adapt; equi-width wastes buckets on the empty tail. *)
  let rng = Rng.create ~seed:3 in
  let data = Array.init 20_000 (fun _ -> Float.of_int (Rng.zipf rng ~n:1000 ~skew:1.2)) in
  let queries = List.init 20 (fun i -> (Float.of_int (i + 1), Float.of_int (i + 2))) in
  let total_err h =
    List.fold_left
      (fun acc (lo, hi) ->
        acc +. Float.abs (VH.selectivity_range h ~lo ~hi -. true_selectivity data lo hi))
      0.0 queries
  in
  let ew = total_err (VH.equi_width data ~buckets:20) in
  let ed = total_err (VH.equi_depth data ~buckets:20) in
  let vo = total_err (VH.v_optimal data ~buckets:20 ~domain_bins:500) in
  Alcotest.(check bool)
    (Printf.sprintf "equi-depth (%.3f) beats equi-width (%.3f) on skew" ed ew)
    true (ed < ew);
  Alcotest.(check bool)
    (Printf.sprintf "v-optimal (%.3f) beats equi-width (%.3f) on skew" vo ew)
    true (vo < ew)

let test_eq_selectivity () =
  (* 10 distinct values, each appearing 100 times: the uniform-spread
     assumption holds exactly, so every equality predicate is ~0.1 *)
  let data = Array.init 1000 (fun i -> Float.of_int (i mod 10)) in
  let h = VH.v_optimal data ~buckets:5 ~domain_bins:10 in
  let est = VH.selectivity_eq h 7.0 in
  Alcotest.(check bool)
    (Printf.sprintf "point selectivity %.3f near 0.1" est)
    true
    (Float.abs (est -. 0.1) < 0.02)

let test_estimate_count () =
  let data = Array.init 1000 Float.of_int in
  let h = VH.equi_depth data ~buckets:10 in
  let c = VH.estimate_count h ~lo:0.0 ~hi:999.0 in
  Helpers.check_close ~eps:1e-6 "full count" 1000.0 c

let test_out_of_domain_queries () =
  let h = VH.equi_width [| 10.0; 20.0; 30.0 |] ~buckets:2 in
  Helpers.check_close "below domain" 0.0 (VH.selectivity_range h ~lo:(-10.0) ~hi:5.0);
  Helpers.check_close "above domain" 0.0 (VH.selectivity_range h ~lo:50.0 ~hi:60.0);
  Helpers.check_close "inverted" 0.0 (VH.selectivity_range h ~lo:25.0 ~hi:15.0);
  Helpers.check_close "superset clamps to 1" 1.0 (VH.selectivity_range h ~lo:(-100.0) ~hi:100.0)

(* --------------------------------------------------- wavelet histograms *)

module WH = Sh_selectivity.Wavelet_histogram

let test_wavelet_histogram_uniform () =
  let data = uniform_data ~seed:9 ~n:20_000 ~hi:1000 in
  let h = WH.build data ~coeffs:40 ~domain_bins:256 in
  Alcotest.(check bool) "budget respected" true (WH.stored_coefficients h <= 40);
  Helpers.check_close ~eps:1e-9 "total" 20_000.0 (WH.total h);
  List.iter
    (fun (lo, hi) ->
      let est = WH.selectivity_range h ~lo ~hi in
      let tru = true_selectivity data lo hi in
      Alcotest.(check bool)
        (Printf.sprintf "[%g,%g] est %.4f vs true %.4f" lo hi est tru)
        true
        (Float.abs (est -. tru) < 0.03))
    [ (0.0, 999.0); (100.0, 199.0); (250.0, 749.0) ]

let test_wavelet_histogram_exact_with_full_budget () =
  (* enough coefficients: the frequency vector reconstructs exactly, so
     bin-aligned predicates are answered exactly *)
  let data = Array.init 400 (fun i -> Float.of_int (i mod 8)) in
  let h = WH.build data ~coeffs:8 ~domain_bins:8 in
  Helpers.check_close ~eps:1e-6 "half the domain" 0.5
    (WH.selectivity_range h ~lo:0.0 ~hi:3.5);
  Helpers.check_close ~eps:1e-6 "count scaling" 400.0 (WH.estimate_count h ~lo:(-1.0) ~hi:8.0)

let test_wavelet_histogram_bounds () =
  let data = uniform_data ~seed:10 ~n:500 ~hi:100 in
  let h = WH.build data ~coeffs:8 ~domain_bins:32 in
  Helpers.check_close "below domain" 0.0 (WH.selectivity_range h ~lo:(-50.0) ~hi:(-10.0));
  Helpers.check_close "inverted" 0.0 (WH.selectivity_range h ~lo:60.0 ~hi:40.0);
  let s = WH.selectivity_range h ~lo:(-1e9) ~hi:1e9 in
  Alcotest.(check bool) "clamped" true (s >= 0.0 && s <= 1.0);
  Alcotest.check_raises "empty" (Invalid_argument "Wavelet_histogram.build: empty data")
    (fun () -> ignore (WH.build [||] ~coeffs:4 ~domain_bins:4))

(* --------------------------------------------------------- gk streaming *)

let test_equi_depth_of_gk_matches_offline () =
  let data = uniform_data ~seed:7 ~n:50_000 ~hi:10_000 in
  let g = Gk.create ~epsilon:0.005 in
  Array.iter (Gk.insert g) data;
  let streaming = VH.equi_depth_of_gk g ~buckets:20 in
  let offline = VH.equi_depth data ~buckets:20 in
  List.iter
    (fun (lo, hi) ->
      let s = VH.selectivity_range streaming ~lo ~hi in
      let o = VH.selectivity_range offline ~lo ~hi in
      Alcotest.(check bool)
        (Printf.sprintf "[%g,%g] streaming %.4f vs offline %.4f" lo hi s o)
        true
        (Float.abs (s -. o) < 0.03))
    [ (0.0, 4999.0); (1000.0, 2000.0); (9000.0, 9999.0) ]

let test_gk_empty_rejected () =
  let g = Gk.create ~epsilon:0.1 in
  Alcotest.check_raises "empty summary"
    (Invalid_argument "Value_histogram.equi_depth_of_gk: empty summary") (fun () ->
      ignore (VH.equi_depth_of_gk g ~buckets:4))

(* ------------------------------------------------------------ properties *)

let prop_selectivity_additive =
  Helpers.qcheck_case ~count:50 ~name:"adjacent ranges sum to their union"
    QCheck2.Gen.(
      let* data = Helpers.gen_data ~min_len:10 ~max_len:200 ~vmax:100 () in
      let* mid = int_range 10 90 in
      return (data, Float.of_int mid))
    (fun (data, mid) ->
      let h = VH.equi_depth data ~buckets:8 in
      let a = VH.selectivity_range h ~lo:(-1.0) ~hi:mid in
      let b = VH.selectivity_range h ~lo:(mid +. 1e-9) ~hi:200.0 in
      let both = VH.selectivity_range h ~lo:(-1.0) ~hi:200.0 in
      Float.abs (a +. b -. both) < 1e-6)

let prop_selectivity_bounded =
  Helpers.qcheck_case ~count:50 ~name:"selectivity stays in [0,1]"
    QCheck2.Gen.(
      let* data = Helpers.gen_data ~min_len:1 ~max_len:200 ~vmax:1000 () in
      let* lo = float_range (-100.0) 1100.0 in
      let* span = float_range 0.0 500.0 in
      return (data, lo, span))
    (fun (data, lo, span) ->
      List.for_all
        (fun h ->
          let s = VH.selectivity_range h ~lo ~hi:(lo +. span) in
          s >= 0.0 && s <= 1.0)
        [
          VH.equi_width data ~buckets:7;
          VH.equi_depth data ~buckets:7;
          VH.v_optimal data ~buckets:7 ~domain_bins:50;
        ])

let () =
  Alcotest.run "sh_selectivity"
    [
      ( "building",
        [
          Alcotest.test_case "equi-width structure" `Quick test_equi_width_structure;
          Alcotest.test_case "equi-depth counts" `Quick test_equi_depth_counts;
          Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
          Alcotest.test_case "constant data" `Quick test_constant_data;
        ] );
      ( "estimation",
        [
          Alcotest.test_case "uniform ranges" `Quick test_range_selectivity_uniform;
          Alcotest.test_case "skewed data" `Quick test_skewed_data_vopt_beats_equiwidth;
          Alcotest.test_case "equality predicate" `Quick test_eq_selectivity;
          Alcotest.test_case "count scaling" `Quick test_estimate_count;
          Alcotest.test_case "out-of-domain" `Quick test_out_of_domain_queries;
          prop_selectivity_additive;
          prop_selectivity_bounded;
        ] );
      ( "wavelet_histogram",
        [
          Alcotest.test_case "uniform accuracy" `Quick test_wavelet_histogram_uniform;
          Alcotest.test_case "full budget exact" `Quick test_wavelet_histogram_exact_with_full_budget;
          Alcotest.test_case "bounds" `Quick test_wavelet_histogram_bounds;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "gk equi-depth" `Quick test_equi_depth_of_gk_matches_offline;
          Alcotest.test_case "gk empty" `Quick test_gk_empty_rejected;
        ] );
    ]
