(* lib/agg and the Mergeable capability: merge laws for the three
   mergeable summaries (GK quantiles, agglomerative histograms,
   fixed-window groups), composed-error accuracy against exact oracles,
   and the two-tier aggregation plane over live sockets — a two-leaf
   root must answer [Global] bit-identically to a single process fed the
   same per-key streams, and a killed leaf must degrade to a typed
   partial result, never a hang. *)

module Gk = Sh_quantile.Gk
module AG = Stream_histogram.Agglomerative
module FW = Stream_histogram.Fixed_window
module FG = Stream_histogram.Fw_group
module SI = Stream_histogram.Summary_intf
module Qop = Stream_histogram.Query_op
module Params = Stream_histogram.Params
module P = Sh_prefix.Prefix_sums
module V = Sh_histogram.Vopt
module SE = Sh_par.Shard_engine
module Pool = Sh_par.Domain_pool
module Addr = Sh_net.Addr
module Wire = Sh_net.Wire
module Server = Sh_net.Server
module Client = Sh_net.Client
module Aggregator = Sh_agg.Aggregator
module Rng = Sh_util.Rng

(* Compile-time witnesses: each summary satisfies the capability. *)
module _ : SI.Mergeable with type t := Gk.t = Gk
module _ : SI.Mergeable with type t := AG.t = AG
module _ : SI.Mergeable with type t := FG.t = FG

let bits = Int64.bits_of_float

let check_bits msg a b =
  if bits a <> bits b then Alcotest.failf "%s: %h <> %h (not bit-identical)" msg a b

let expect_incompatible what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Merge_incompatible" what
  | exception SI.Merge_incompatible _ -> ()

(* ------------------------------------------------------------ GK merge *)

let gk_of eps data =
  let g = Gk.create ~epsilon:eps in
  Array.iter (Gk.insert g) data;
  g

(* True-rank check against the sorted union: the answer's occupied rank
   interval must come within [bound] (+1 for rank discretisation) of the
   target rank phi * n. *)
let rank_ok union phi answer bound =
  let n = Array.length union in
  let target = phi *. float_of_int n in
  let lo = ref 1 and hi = ref 0 in
  Array.iteri
    (fun i v ->
      if v < answer then lo := i + 2;
      if v <= answer then hi := i + 1)
    union;
  let dist =
    if target < float_of_int !lo then float_of_int !lo -. target
    else if target > float_of_int !hi then target -. float_of_int !hi
    else 0.0
  in
  dist <= bound +. 1.0

let gk_phis = [ 0.01; 0.25; 0.5; 0.75; 0.99 ]

let prop_gk_merge_composed_rank_error =
  Helpers.qcheck_case ~count:60 ~name:"GK merge: answers within composed rank error"
    QCheck2.Gen.(pair (Helpers.gen_data ~max_len:200 ()) (Helpers.gen_data ~max_len:200 ()))
    (fun (da, db) ->
      let ea = 0.1 and eb = 0.05 in
      let a = gk_of ea da and b = gk_of eb db in
      (* commutativity claim: both orders summarise the same union *)
      let m = Gk.merge a b and m' = Gk.merge b a in
      let union = Array.append da db in
      Array.sort compare union;
      (* the merged summary's own contract: max-epsilon times the merged
         count (the post-merge compress works against that cap, so the
         tighter ea*na + eb*nb does not survive it — see gk.mli) *)
      let bound = Float.max ea eb *. float_of_int (Array.length union) in
      Gk.count m = Array.length union
      && Gk.count m' = Array.length union
      && Float.equal (Gk.epsilon m) (Float.max ea eb)
      && List.for_all
           (fun phi ->
             rank_ok union phi (Gk.quantile m phi) bound
             && rank_ok union phi (Gk.quantile m' phi) bound)
           gk_phis)

let test_gk_merge_identity () =
  let rng = Helpers.rng ~seed:42 in
  let data = Array.init 500 (fun _ -> float_of_int (Rng.int rng 1000)) in
  let a = gk_of 0.05 data in
  let empty () = Gk.create ~epsilon:0.05 in
  List.iter
    (fun (tag, m) ->
      Alcotest.(check int) (tag ^ ": count") (Gk.count a) (Gk.count m);
      List.iter
        (fun phi ->
          check_bits
            (Printf.sprintf "%s: quantile %.2f" tag phi)
            (Gk.quantile a phi) (Gk.quantile m phi))
        [ 0.0; 0.1; 0.5; 0.9; 1.0 ])
    [ ("a+empty", Gk.merge a (empty ())); ("empty+a", Gk.merge (empty ()) a) ]

let test_gk_merge_associative_bound () =
  (* Merge is not claimed bitwise-associative; both association orders
     must stay within the composed rank-error budget. *)
  let rng = Helpers.rng ~seed:7 in
  let mk n = Array.init n (fun _ -> float_of_int (Rng.int rng 500)) in
  let da = mk 300 and db = mk 200 and dc = mk 250 in
  let eps = 0.08 in
  let a = gk_of eps da and b = gk_of eps db and c = gk_of eps dc in
  let l = Gk.merge (Gk.merge a b) c and r = Gk.merge a (Gk.merge b c) in
  let union = Array.concat [ da; db; dc ] in
  Array.sort compare union;
  let bound = eps *. float_of_int (Array.length union) in
  Alcotest.(check int) "counts agree" (Gk.count l) (Gk.count r);
  List.iter
    (fun phi ->
      List.iter
        (fun (tag, m) ->
          if not (rank_ok union phi (Gk.quantile m phi) bound) then
            Alcotest.failf "%s: quantile %.2f outside composed rank bound" tag phi)
        [ ("(a+b)+c", l); ("a+(b+c)", r) ])
    gk_phis

(* ------------------------------------------------------------ AG merge *)

let feed_ag ag data = Array.iter (AG.push ag) data

let test_ag_merge_identity () =
  let rng = Helpers.rng ~seed:11 in
  let data = Array.init 300 (fun _ -> float_of_int (Rng.int rng 100)) in
  let a = AG.create ~buckets:4 ~epsilon:0.1 in
  feed_ag a data;
  List.iter
    (fun (tag, m) ->
      Alcotest.(check int) (tag ^ ": count") (AG.count a) (AG.count m);
      Alcotest.(check int)
        (tag ^ ": space") (AG.space_in_entries a) (AG.space_in_entries m);
      check_bits (tag ^ ": current_error") (AG.current_error a) (AG.current_error m))
    [
      ("a+empty", AG.merge a (AG.create ~buckets:4 ~epsilon:0.1));
      ("empty+a", AG.merge (AG.create ~buckets:4 ~epsilon:0.1) a);
    ]

let test_ag_merge_incompatible () =
  let a = AG.create ~buckets:4 ~epsilon:0.1 in
  let b = AG.create ~buckets:5 ~epsilon:0.1 in
  feed_ag a [| 1.0; 2.0 |];
  feed_ag b [| 3.0 |];
  expect_incompatible "differing bucket budgets" (fun () -> AG.merge a b)

let prop_ag_merge_within_composed_epsilon =
  Helpers.qcheck_case ~count:30
    ~name:"AG merge: error within composed (1+2eps) factors of optimal"
    QCheck2.Gen.(
      pair
        (Helpers.gen_data ~min_len:32 ~max_len:96 ())
        (Helpers.gen_data ~min_len:32 ~max_len:96 ()))
    (fun (da, db) ->
      let b = 4 in
      let a = AG.create ~buckets:b ~epsilon:0.1 in
      let bg = AG.create ~buckets:b ~epsilon:0.15 in
      feed_ag a da;
      feed_ag bg db;
      let m = AG.merge a bg in
      let concat = Array.append da db in
      let opt = V.optimal_error (P.make concat) ~buckets:b in
      (* Per-operand guarantees are (1 + 2 eps_i) (see test_core); the
         merged summary's factors multiply.  Operands stay >= 32 points:
         on tiny streams (< ~4B points) the (1 + delta) pruning can
         collapse equal-error prefixes so hard that no retained
         candidate lands near the splice, and the spanning bucket
         overshoots the multiplied factors — observed up to ~12x optimal
         at 4-12 points per operand, gone by 16 (see agglomerative.mli).
         The lower bound below is unconditional. *)
      let factor =
        (1.0 +. (2.0 *. AG.epsilon a)) *. (1.0 +. (2.0 *. AG.epsilon bg))
      in
      AG.count m = Array.length concat
      && AG.epsilon m > AG.epsilon a
      && AG.current_error m <= (factor *. opt) +. 1e-6
      && AG.current_error m >= opt -. 1e-6)

(* ------------------------------------------------------- FW group merge *)

let fw_window = 64
let fw_buckets = 4

let fw_of rng n =
  let fw = FW.create ~window:fw_window ~buckets:fw_buckets ~epsilon:0.1 in
  for _ = 1 to n do
    FW.push fw (float_of_int (Rng.int rng 100))
  done;
  fw

let global_queries =
  [
    Qop.Window_length;
    Qop.Current_error;
    Qop.Range_sum { lo = 1; hi = fw_window };
    Qop.Point_estimate { index = 3 };
    Qop.Herror { k = 2; x = 10 };
  ]

let test_fw_group_laws () =
  let rng = Helpers.rng ~seed:23 in
  let mk base n =
    FG.of_summaries ~base (Array.init n (fun _ -> fw_of rng (1 + Rng.int rng 80)))
  in
  let a = mk 0 3 and b = mk 3 2 and c = mk 5 4 in
  (* identity: merging with empty shares entries, answers bit-identical *)
  List.iter
    (fun q ->
      check_bits "identity left" (FG.eval_global a q)
        (FG.eval_global (FG.merge a FG.empty) q);
      check_bits "identity right" (FG.eval_global a q)
        (FG.eval_global (FG.merge FG.empty a) q))
    global_queries;
  (* disjoint-key union is commutative and associative, bitwise *)
  let ab = FG.merge a b in
  List.iter
    (fun q ->
      check_bits "commutative" (FG.eval_global ab q) (FG.eval_global (FG.merge b a) q);
      check_bits "associative"
        (FG.eval_global (FG.merge ab c) q)
        (FG.eval_global (FG.merge a (FG.merge b c)) q))
    global_queries;
  Alcotest.(check (array int))
    "merged keys ascending" (Array.init 9 Fun.id)
    (FG.keys (FG.merge ab c));
  expect_incompatible "overlapping keys" (fun () -> FG.merge a a);
  let alien =
    FG.of_summaries ~base:100 [| FW.create ~window:32 ~buckets:fw_buckets ~epsilon:0.1 |]
  in
  expect_incompatible "mixed geometry" (fun () -> FG.merge a alien)

let test_fw_group_matches_engine_global () =
  (* Snapshot an engine, splice the halves back together as a group: every
     Global answer must be bit-identical to the live engine's. *)
  let shards = 8 in
  Pool.with_pool ~domains:1 @@ fun pool ->
  let eng =
    SE.create ~pool ~shards ~window:fw_window ~buckets:fw_buckets ~epsilon:0.1
  in
  let rng = Helpers.rng ~seed:5 in
  Array.iter
    (fun k ->
      SE.ingest eng
        (Array.init
           (16 + (8 * k))
           (fun _ -> (k, float_of_int (Rng.int rng 100)))))
    (Array.init shards Fun.id);
  SE.refresh_all eng;
  let fws = SE.decode_snapshot (SE.snapshot_bytes eng) in
  Alcotest.(check int) "snapshot shard count" shards (Array.length fws);
  let half = shards / 2 in
  let left = FG.of_summaries ~base:0 (Array.sub fws 0 half) in
  let right = FG.of_summaries ~base:half (Array.sub fws half (shards - half)) in
  let g = FG.merge left right in
  List.iter
    (fun q -> check_bits (Qop.to_string q) (SE.query_global eng q) (FG.eval_global g q))
    global_queries

(* ----------------------------------------- aggregation plane, live wire *)

let geometry = (64, 4, 0.1)

type live_leaf = {
  addr : Addr.t;
  listener : Unix.file_descr;
  stop : bool Atomic.t;
  domain : Server.report Domain.t;
  sock_path : string;
}

(* One leaf server on its own domain, individually killable.  Eager
   refresh so published views (and snapshots) are current once an ingest
   is acked — the precondition for the bit-identity comparison. *)
let start_leaf ~shards () =
  let window, buckets, epsilon = geometry in
  let path = Filename.temp_file "shist_agg" ".sock" in
  Unix.unlink path;
  let addr = Addr.Unix_sock path in
  let listener = Server.listen addr in
  let stop = Atomic.make false in
  let domain =
    Domain.spawn (fun () ->
        Pool.with_pool ~domains:1 (fun pool ->
            let eng = SE.create ~pool ~shards ~window ~buckets ~epsilon in
            SE.set_refresh_policy eng Params.Eager;
            Server.run
              ~stop:(fun () -> Atomic.get stop)
              ~engine:eng ~listeners:[ listener ] ()))
  in
  { addr; listener; stop; domain; sock_path = path }

let kill_leaf l =
  Atomic.set l.stop true;
  ignore (Domain.join l.domain : Server.report);
  (try Unix.close l.listener with Unix.Unix_error _ -> ());
  try Unix.unlink l.sock_path with Unix.Unix_error _ | Sys_error _ -> ()

let scoped_batch ~shards ~window =
  Array.append
    (Array.concat
       (List.init shards (fun k ->
            [|
              (Qop.Key k, Qop.Window_length);
              (Qop.Key k, Qop.Range_sum { lo = 1; hi = window });
              (Qop.Key k, Qop.Current_error);
            |])))
    [|
      (Qop.Global, Qop.Window_length);
      (Qop.Global, Qop.Range_sum { lo = 1; hi = window });
      (Qop.Global, Qop.Current_error);
      (Qop.Global, Qop.Point_estimate { index = 7 });
    |]

let test_aggregator_matches_single_process () =
  let window, _, _ = geometry in
  let la = start_leaf ~shards:4 () in
  let lb = start_leaf ~shards:4 () in
  let oracle = start_leaf ~shards:8 () in
  Fun.protect ~finally:(fun () -> List.iter kill_leaf [ la; lb; oracle ]) @@ fun () ->
  let agg = Aggregator.create ~timeout:10.0 [ la.addr; lb.addr ] in
  let oc = Client.connect ~timeout:10.0 oracle.addr in
  Fun.protect
    ~finally:(fun () ->
      Aggregator.close agg;
      Client.close oc)
  @@ fun () ->
  Alcotest.(check int) "total shards" 8 (Aggregator.total_shards agg);
  Alcotest.(check int) "leaf count" 2 (Aggregator.leaf_count agg);
  Alcotest.(check int) "window" window (Aggregator.window agg);
  (* identical per-key streams into the tree and the single process *)
  let rng = Helpers.rng ~seed:99 in
  let groups =
    Array.init 8 (fun k ->
        (k, Array.init (40 + (8 * k)) (fun _ -> float_of_int (Rng.int rng 100))))
  in
  let total = Array.fold_left (fun acc (_, vs) -> acc + Array.length vs) 0 groups in
  let acked, missing = Aggregator.ingest agg groups in
  Alcotest.(check int) "aggregator acked all points" total acked;
  Alcotest.(check int) "no leaf missing on ingest" 0 missing;
  Alcotest.(check int) "oracle acked all points" total (Client.ingest oc groups);
  let qs = scoped_batch ~shards:8 ~window in
  let agg_answers, lm = Aggregator.query agg qs in
  Alcotest.(check int) "no leaf missing on query" 0 lm;
  let oracle_answers = Client.query oc qs in
  Alcotest.(check int) "answer counts" (Array.length oracle_answers)
    (Array.length agg_answers);
  Array.iteri
    (fun i expected ->
      let scope, q = qs.(i) in
      let tag =
        match scope with
        | Qop.Key k -> Printf.sprintf "key %d %s" k (Qop.to_string q)
        | Qop.Global -> Printf.sprintf "global %s" (Qop.to_string q)
      in
      check_bits tag expected agg_answers.(i))
    oracle_answers;
  let st, sm = Aggregator.stats agg in
  Alcotest.(check int) "stats: no leaf missing" 0 sm;
  Alcotest.(check int) "stats: shards" 8 st.Wire.shards;
  Alcotest.(check int) "stats: total points" total st.Wire.total_points

let test_aggregator_leaf_failure_partial () =
  let per_key = 10 in
  let la = start_leaf ~shards:2 () in
  let lb = start_leaf ~shards:2 () in
  let lb_killed = ref false in
  Fun.protect
    ~finally:(fun () ->
      kill_leaf la;
      if not !lb_killed then kill_leaf lb)
  @@ fun () ->
  let agg = Aggregator.create ~timeout:5.0 [ la.addr; lb.addr ] in
  Fun.protect ~finally:(fun () -> Aggregator.close agg) @@ fun () ->
  let groups =
    Array.init 4 (fun k -> (k, Array.init per_key (fun i -> float_of_int (k + i))))
  in
  let acked, missing = Aggregator.ingest agg groups in
  Alcotest.(check int) "all acked while healthy" (4 * per_key) acked;
  Alcotest.(check int) "no leaf missing while healthy" 0 missing;
  kill_leaf lb;
  lb_killed := true;
  let qs =
    [|
      (Qop.Key 0, Qop.Window_length);
      (Qop.Key 3, Qop.Window_length);
      (Qop.Global, Qop.Window_length);
    |]
  in
  (* typed partial result: the dead leaf's keys and its slice of the
     Global answer degrade to 0, the live leaf still answers *)
  let answers, lm = Aggregator.query agg qs in
  Alcotest.(check int) "one leaf missing" 1 lm;
  check_bits "live key answered" (float_of_int per_key) answers.(0);
  check_bits "dead leaf's key is 0" 0.0 answers.(1);
  check_bits "global covers live leaf only" (float_of_int (2 * per_key)) answers.(2);
  (* the leaf stays down across requests: reconnect fails fast, result
     stays typed-partial (and this test finishing at all is the no-hang
     guarantee) *)
  let answers2, lm2 = Aggregator.query agg qs in
  Alcotest.(check int) "still one leaf missing" 1 lm2;
  check_bits "still answers live key" (float_of_int per_key) answers2.(0);
  (* ingest degrades the same way: live sub-batch acked, dead one dropped *)
  let acked2, missing2 = Aggregator.ingest agg [| (0, [| 1.0 |]); (3, [| 1.0 |]) |] in
  Alcotest.(check int) "live leaf acked its point" 1 acked2;
  Alcotest.(check int) "ingest reports dead leaf" 1 missing2;
  (* a batch that never touches the dead leaf is complete, not partial:
     leaves_missing counts leaves asked to contribute that could not *)
  let answers3, lm3 = Aggregator.query agg [| (Qop.Key 0, Qop.Window_length) |] in
  Alcotest.(check int) "dead leaf not involved, not counted" 0 lm3;
  check_bits "live key grew by one" (float_of_int (per_key + 1)) answers3.(0)

let test_aggregator_rejects_bad_key () =
  let la = start_leaf ~shards:2 () in
  Fun.protect ~finally:(fun () -> kill_leaf la) @@ fun () ->
  let agg = Aggregator.create ~timeout:5.0 [ la.addr ] in
  Fun.protect ~finally:(fun () -> Aggregator.close agg) @@ fun () ->
  List.iter
    (fun k ->
      match Aggregator.query agg [| (Qop.Key k, Qop.Window_length) |] with
      | _ -> Alcotest.failf "key %d: expected Invalid_argument" k
      | exception Invalid_argument _ -> ())
    [ -1; 2; 100 ];
  match Aggregator.ingest agg [| (2, [| 1.0 |]) |] with
  | _ -> Alcotest.fail "ingest key 2: expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_aggregator_geometry_mismatch () =
  let window, buckets, epsilon = geometry in
  let la = start_leaf ~shards:2 () in
  (* a leaf with a different window must be refused at create time *)
  let path = Filename.temp_file "shist_agg" ".sock" in
  Unix.unlink path;
  let addr = Addr.Unix_sock path in
  let listener = Server.listen addr in
  let stop = Atomic.make false in
  let domain =
    Domain.spawn (fun () ->
        Pool.with_pool ~domains:1 (fun pool ->
            let eng =
              SE.create ~pool ~shards:2 ~window:(window * 2) ~buckets ~epsilon
            in
            Server.run
              ~stop:(fun () -> Atomic.get stop)
              ~engine:eng ~listeners:[ listener ] ()))
  in
  let lb = { addr; listener; stop; domain; sock_path = path } in
  Fun.protect ~finally:(fun () -> List.iter kill_leaf [ la; lb ]) @@ fun () ->
  expect_incompatible "window mismatch across leaves" (fun () ->
      let agg = Aggregator.create ~timeout:5.0 [ la.addr; lb.addr ] in
      Aggregator.close agg;
      agg)

let () =
  Alcotest.run "agg"
    [
      ( "merge laws",
        [
          prop_gk_merge_composed_rank_error;
          Alcotest.test_case "GK identity with empty" `Quick test_gk_merge_identity;
          Alcotest.test_case "GK associativity within bound" `Quick
            test_gk_merge_associative_bound;
          Alcotest.test_case "AG identity with empty" `Quick test_ag_merge_identity;
          Alcotest.test_case "AG bucket mismatch refused" `Quick
            test_ag_merge_incompatible;
          prop_ag_merge_within_composed_epsilon;
          Alcotest.test_case "FW group identity/commutative/associative" `Quick
            test_fw_group_laws;
          Alcotest.test_case "FW group == engine global (bitwise)" `Quick
            test_fw_group_matches_engine_global;
        ] );
      ( "aggregation plane",
        [
          Alcotest.test_case "two leaves == single process (bitwise)" `Quick
            test_aggregator_matches_single_process;
          Alcotest.test_case "killed leaf degrades to typed partial" `Quick
            test_aggregator_leaf_failure_partial;
          Alcotest.test_case "out-of-range keys rejected" `Quick
            test_aggregator_rejects_bad_key;
          Alcotest.test_case "leaf geometry mismatch refused" `Quick
            test_aggregator_geometry_mismatch;
        ] );
    ]
