(* lib/par: domain pool semantics, shard-engine == sequential equivalence,
   push_many == push, and multi-domain telemetry safety.

   Domain counts default to {1, 2, 4}; the CI multicore smoke overrides
   them via SH_TEST_DOMAINS (comma-separated) to exercise specific pool
   sizes on multi-core runners. *)

module Pool = Sh_par.Domain_pool
module SE = Sh_par.Shard_engine
module FW = Stream_histogram.Fixed_window
module Params = Stream_histogram.Params
module H = Sh_histogram.Histogram
module Rng = Sh_util.Rng
module M = Sh_obs.Metric
module Obs = Sh_obs.Obs

let domain_counts =
  match Sys.getenv_opt "SH_TEST_DOMAINS" with
  | None | Some "" -> [ 1; 2; 4 ]
  | Some s ->
    List.filter_map int_of_string_opt (String.split_on_char ',' s)

(* ---------------------------------------------------------- domain pool *)

let test_pool_validation () =
  Alcotest.check_raises "domains >= 1" (Invalid_argument "Domain_pool.create: domains must be >= 1")
    (fun () -> ignore (Pool.create ~domains:0));
  Pool.with_pool ~domains:2 (fun pool ->
      Alcotest.(check int) "domains accessor" 2 (Pool.domains pool))

let test_pool_run_results_in_order () =
  List.iter
    (fun d ->
      Pool.with_pool ~domains:d (fun pool ->
          let results = Pool.run pool (Array.init 37 (fun i -> fun () -> i * i)) in
          Alcotest.(check (array int))
            (Printf.sprintf "squares in order, %d domains" d)
            (Array.init 37 (fun i -> i * i))
            results))
    domain_counts

let test_pool_async_await () =
  Pool.with_pool ~domains:2 (fun pool ->
      let p = Pool.async pool (fun () -> 6 * 7) in
      Alcotest.(check int) "await" 42 (Pool.await pool p);
      Alcotest.(check int) "await is idempotent" 42 (Pool.await pool p))

let test_pool_exception_propagates () =
  List.iter
    (fun d ->
      Pool.with_pool ~domains:d (fun pool ->
          let hit = Atomic.make 0 in
          let tasks =
            Array.init 8 (fun i ->
                fun () ->
                 if i = 3 then raise Exit;
                 Atomic.incr hit)
          in
          (match Pool.run pool tasks with
          | _ -> Alcotest.fail "expected Exit"
          | exception Exit -> ());
          (* every non-failing task still ran: run settles the batch *)
          Alcotest.(check int)
            (Printf.sprintf "batch settled, %d domains" d)
            7 (Atomic.get hit)))
    domain_counts

let test_pool_parallel_for () =
  List.iter
    (fun d ->
      Pool.with_pool ~domains:d (fun pool ->
          let n = 1000 in
          let marks = Array.make n 0 in
          Pool.parallel_for pool ~start:0 ~finish:(n - 1) (fun i ->
              marks.(i) <- marks.(i) + 1);
          Alcotest.(check (array int))
            (Printf.sprintf "each index exactly once, %d domains" d)
            (Array.make n 1) marks;
          (* empty and singleton ranges *)
          Pool.parallel_for pool ~start:5 ~finish:4 (fun _ -> Alcotest.fail "empty range ran");
          let one = ref 0 in
          Pool.parallel_for pool ~start:9 ~finish:9 (fun i -> one := i);
          Alcotest.(check int) "singleton range" 9 !one))
    domain_counts

let test_pool_shutdown_rejects () =
  let pool = Pool.create ~domains:2 in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* idempotent *)
  Alcotest.check_raises "submit after shutdown" (Invalid_argument "Domain_pool: pool is shut down")
    (fun () -> ignore (Pool.async pool (fun () -> ())))

(* ------------------------------------------------- split_ix determinism *)

let test_split_ix_deterministic () =
  let draws rng = Array.init 8 (fun _ -> Rng.bits64 rng) in
  let root () = Rng.create ~seed:99 in
  let a = draws (Rng.split_ix (root ()) 3) in
  (* deriving other children first, or in another order, must not change
     child 3 — and must not advance the parent *)
  let r = root () in
  let _ = Rng.split_ix r 7 in
  let _ = Rng.split_ix r 0 in
  let b = draws (Rng.split_ix r 3) in
  Alcotest.(check (array int64)) "child independent of sibling order" a b;
  let c = draws r in
  let d = draws (root ()) in
  Alcotest.(check (array int64)) "parent not advanced" d c;
  Alcotest.(check bool) "distinct children differ" true
    (draws (Rng.split_ix (root ()) 1) <> draws (Rng.split_ix (root ()) 2));
  Alcotest.check_raises "negative index" (Invalid_argument "Rng.split_ix: index must be >= 0")
    (fun () -> ignore (Rng.split_ix (root ()) (-1)))

(* --------------------------------------- engine == sequential reference *)

let policies = [ Params.Lazy; Params.Eager; Params.Every 3 ]

(* Drive a Shard_engine and one plain Fixed_window per key with identical
   per-key data, then compare every observable: lengths, herror, and full
   histogram series. *)
let engine_matches_sequential ~domains ~shards ~window ~buckets ~epsilon ~policy ~batches =
  Pool.with_pool ~domains (fun pool ->
      let eng = SE.create ~pool ~shards ~window ~buckets ~epsilon in
      SE.set_refresh_policy eng policy;
      let refs =
        Array.init shards (fun _ ->
            let fw = FW.create ~window ~buckets ~epsilon in
            FW.set_refresh_policy fw policy;
            (* reference runs unmemoised: the comparison then also proves
               the engine's memoised, arena-pooled rebuilds answer exactly
               like the plain re-evaluating kernel *)
            FW.set_memoisation fw false;
            fw)
      in
      List.iter
        (fun batch ->
          SE.ingest eng batch;
          (* reference: same per-key subsequences, same batched entry *)
          Array.iteri
            (fun k _ ->
              let sub =
                Array.of_list
                  (List.filter_map
                     (fun (k', v) -> if k' = k then Some v else None)
                     (Array.to_list batch))
              in
              FW.push_many refs.(k) sub)
            refs)
        batches;
      let ok = ref true in
      Array.iteri
        (fun k fw ->
          if SE.length eng ~key:k <> FW.length fw then ok := false;
          if FW.length fw > 0 then begin
            let he = SE.current_error eng ~key:k and hr = FW.current_error fw in
            if not (Helpers.close he hr) then ok := false;
            let se = H.to_series (SE.current_histogram eng ~key:k) in
            let sr = H.to_series (FW.current_histogram fw) in
            if se <> sr then ok := false
          end)
        refs;
      !ok)

let prop_engine_equals_sequential =
  Helpers.qcheck_case ~count:25 ~name:"Shard_engine == one sequential Fixed_window per key"
    QCheck2.Gen.(
      let* shards = int_range 1 9 in
      let* window = int_range 4 48 in
      let* buckets = int_range 2 4 in
      let* policy = oneofl policies in
      let* nbatches = int_range 1 6 in
      let* batches =
        list_size (return nbatches)
          (list_size (int_range 0 40) (pair (int_range 0 (shards - 1)) (int_range 0 200)))
      in
      return (shards, window, buckets, policy, batches))
    (fun (shards, window, buckets, policy, batches) ->
      let batches =
        List.map
          (fun b -> Array.of_list (List.map (fun (k, v) -> (k, Float.of_int v)) b))
          batches
      in
      List.for_all
        (fun domains ->
          engine_matches_sequential ~domains ~shards ~window ~buckets ~epsilon:0.1 ~policy
            ~batches)
        domain_counts)

let prop_push_many_equals_push =
  Helpers.qcheck_case ~count:40 ~name:"push_many == repeated push (same query results)"
    QCheck2.Gen.(
      let* data = Helpers.gen_data ~min_len:1 ~max_len:120 ~vmax:500 () in
      let* window = int_range 2 40 in
      let* buckets = int_range 2 4 in
      let* policy = oneofl policies in
      let* cut = int_range 0 (Array.length data) in
      return (data, window, buckets, policy, cut))
    (fun (data, window, buckets, policy, cut) ->
      let mk () =
        let fw = FW.create ~window ~buckets ~epsilon:0.2 in
        FW.set_refresh_policy fw policy;
        fw
      in
      let single = mk () and batched = mk () in
      Array.iter (FW.push single) data;
      (* split into two batches at an arbitrary cut to also cover batch
         boundaries that straddle refresh periods *)
      FW.push_many batched (Array.sub data 0 cut);
      FW.push_many batched (Array.sub data cut (Array.length data - cut));
      FW.length single = FW.length batched
      && Helpers.close (FW.current_error single) (FW.current_error batched)
      && H.to_series (FW.current_histogram single) = H.to_series (FW.current_histogram batched))

(* Pinned bookkeeping for a batch that straddles an [Every k] refresh
   boundary: the batch counts every point, triggers exactly one rebuild at
   the batch end, and resets the period. *)
let test_push_many_every_k_bookkeeping () =
  let fw = FW.create ~window:4 ~buckets:2 ~epsilon:0.5 in
  FW.set_refresh_policy fw (Params.Every 4);
  List.iter (FW.push fw) [ 1.0; 2.0; 3.0 ];
  Alcotest.(check int) "3 pending before batch" 3 (FW.pending_pushes fw);
  Alcotest.(check int) "no refresh yet" 0 (FW.work_counters fw).FW.refreshes;
  Alcotest.(check bool) "dirty before batch" true (FW.needs_refresh fw);
  (* batch of 3 crosses the k=4 boundary at its first point; the window
     (capacity 4) evicts on the last two points *)
  FW.push_many fw [| 4.0; 5.0; 6.0 |];
  Alcotest.(check int) "one refresh for the whole batch" 1 (FW.work_counters fw).FW.refreshes;
  Alcotest.(check int) "period reset at batch end" 0 (FW.pending_pushes fw);
  Alcotest.(check int) "slide reset by refresh" 0 (FW.slide_since_refresh fw);
  Alcotest.(check bool) "clean after batched refresh" false (FW.needs_refresh fw);
  (* short follow-up batch: counted, under period, no rebuild *)
  FW.push_many fw [| 7.0; 8.0 |];
  Alcotest.(check int) "2 pending after follow-up" 2 (FW.pending_pushes fw);
  Alcotest.(check int) "evictions tracked" 2 (FW.slide_since_refresh fw);
  Alcotest.(check bool) "dirty again" true (FW.needs_refresh fw);
  Alcotest.(check int) "still one refresh" 1 (FW.work_counters fw).FW.refreshes;
  (* empty batch is a no-op *)
  FW.push_many fw [||];
  Alcotest.(check int) "empty batch ignored" 2 (FW.pending_pushes fw);
  Alcotest.check_raises "non-finite rejected before ingest"
    (Invalid_argument "Fixed_window.push_many: non-finite value") (fun () ->
      FW.push_many fw [| 9.0; Float.nan |]);
  Alcotest.(check int) "rejected batch ingested nothing" 2 (FW.pending_pushes fw)

(* ------------------------------------------------ engine odds and ends *)

let test_engine_validation () =
  Pool.with_pool ~domains:1 (fun pool ->
      Alcotest.check_raises "shards >= 1"
        (Invalid_argument "Shard_engine.create: shards must be >= 1") (fun () ->
          ignore (SE.create ~pool ~shards:0 ~window:8 ~buckets:2 ~epsilon:0.1));
      let eng = SE.create ~pool ~shards:4 ~window:8 ~buckets:2 ~epsilon:0.1 in
      Alcotest.(check int) "shard count" 4 (SE.shard_count eng);
      Alcotest.check_raises "key out of range"
        (Invalid_argument "Shard_engine: key 4 out of range [0, 4)") (fun () ->
          SE.ingest eng [| (4, 1.0) |]);
      (* the rejected batch must not have ingested its valid prefix *)
      Alcotest.(check int) "nothing ingested" 0 (SE.total_points eng);
      Alcotest.(check int) "shard untouched" 0 (SE.length eng ~key:0))

let test_engine_refresh_all_and_counters () =
  Pool.with_pool ~domains:2 (fun pool ->
      let eng = SE.create ~pool ~shards:3 ~window:16 ~buckets:3 ~epsilon:0.2 in
      let batch =
        Array.init 60 (fun i -> (i mod 3, Float.of_int ((i * 13) mod 97)))
      in
      SE.ingest eng batch;
      Alcotest.(check int) "points counted" 60 (SE.total_points eng);
      Alcotest.(check int) "one batch" 1 (SE.batches eng);
      Array.iter
        (fun k -> Alcotest.(check int) (Printf.sprintf "shard %d length" k) 16 (SE.length eng ~key:k))
        [| 0; 1; 2 |];
      SE.refresh_all eng;
      Array.iter
        (fun k ->
          Alcotest.(check bool)
            (Printf.sprintf "shard %d clean" k)
            false
            (SE.fold eng ~init:false ~f:(fun acc k' fw ->
                 if k = k' then FW.needs_refresh fw else acc)))
        [| 0; 1; 2 |];
      (* cold refresh is the oracle: answers must not move *)
      let errs = Array.init 3 (fun k -> SE.current_error eng ~key:k) in
      SE.refresh_all ~cold:true eng;
      Array.iteri
        (fun k e ->
          Helpers.check_close (Printf.sprintf "cold refresh agrees, shard %d" k) e
            (SE.current_error eng ~key:k))
        errs)

(* ------------------------------------------- telemetry under parallelism *)

let test_counter_no_lost_increments () =
  let c = Obs.counter "par.stress.counter" in
  let before = M.value c in
  let per_domain = 50_000 and nd = 4 in
  let ds =
    List.init nd (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              M.incr c
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "no increments lost across 4 domains" (before + (nd * per_domain))
    (M.value c)

let test_gauge_no_lost_adds () =
  let g = Obs.gauge "par.stress.gauge" in
  let before = M.gvalue g in
  let per_domain = 20_000 and nd = 4 in
  let ds =
    List.init nd (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              M.gadd g 1.0
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check (float 0.0)) "no gauge adds lost across 4 domains"
    (before +. Float.of_int (nd * per_domain))
    (M.gvalue g)

let test_registry_get_or_create_race () =
  let per_domain = 1_000 and nd = 4 in
  let ds =
    List.init nd (fun _ ->
        Domain.spawn (fun () ->
            (* get-or-create from every domain: all must agree on one series *)
            let c = Obs.counter "par.stress.race" in
            for _ = 1 to per_domain do
              M.incr c
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "one series, all increments" (nd * per_domain)
    (M.value (Obs.counter "par.stress.race"))

let test_spans_across_domains () =
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs.set_enabled false)
    (fun () ->
      let before = Sh_obs.Span.trace_length () in
      let nd = 4 and per_domain = 50 in
      let ds =
        List.init nd (fun _ ->
            Domain.spawn (fun () ->
                for _ = 1 to per_domain do
                  Obs.with_span "par.stress.span" (fun () -> ())
                done))
      in
      List.iter Domain.join ds;
      Alcotest.(check int) "every span recorded" (before + (nd * per_domain))
        (Sh_obs.Span.trace_length ()))

let () =
  Alcotest.run "sh_par"
    [
      ( "domain_pool",
        [
          Alcotest.test_case "validation" `Quick test_pool_validation;
          Alcotest.test_case "run keeps order" `Quick test_pool_run_results_in_order;
          Alcotest.test_case "async/await" `Quick test_pool_async_await;
          Alcotest.test_case "exceptions propagate" `Quick test_pool_exception_propagates;
          Alcotest.test_case "parallel_for covers range" `Quick test_pool_parallel_for;
          Alcotest.test_case "shutdown" `Quick test_pool_shutdown_rejects;
        ] );
      ("rng", [ Alcotest.test_case "split_ix deterministic" `Quick test_split_ix_deterministic ]);
      ( "shard_engine",
        [
          prop_engine_equals_sequential;
          prop_push_many_equals_push;
          Alcotest.test_case "push_many Every-k bookkeeping" `Quick
            test_push_many_every_k_bookkeeping;
          Alcotest.test_case "validation" `Quick test_engine_validation;
          Alcotest.test_case "refresh_all + counters" `Quick test_engine_refresh_all_and_counters;
        ] );
      ( "obs_domain_safety",
        [
          Alcotest.test_case "counter stress" `Quick test_counter_no_lost_increments;
          Alcotest.test_case "gauge stress" `Quick test_gauge_no_lost_adds;
          Alcotest.test_case "registry race" `Quick test_registry_get_or_create_race;
          Alcotest.test_case "spans across domains" `Quick test_spans_across_domains;
        ] );
    ]
