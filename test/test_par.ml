(* lib/par: domain pool semantics, shard-engine == sequential equivalence,
   push_many == push, and multi-domain telemetry safety.

   Domain counts default to {1, 2, 4}; the CI multicore smoke overrides
   them via SH_TEST_DOMAINS (comma-separated) to exercise specific pool
   sizes on multi-core runners. *)

module Pool = Sh_par.Domain_pool
module SE = Sh_par.Shard_engine
module Ring = Sh_par.Spsc_ring
module FW = Stream_histogram.Fixed_window
module Qop = Stream_histogram.Query_op
module Params = Stream_histogram.Params
module H = Sh_histogram.Histogram
module Rng = Sh_util.Rng
module M = Sh_obs.Metric
module Obs = Sh_obs.Obs

let domain_counts =
  match Sys.getenv_opt "SH_TEST_DOMAINS" with
  | None | Some "" -> [ 1; 2; 4 ]
  | Some s ->
    List.filter_map int_of_string_opt (String.split_on_char ',' s)

(* ---------------------------------------------------------- domain pool *)

let test_pool_validation () =
  Alcotest.check_raises "domains >= 1" (Invalid_argument "Domain_pool.create: domains must be >= 1")
    (fun () -> ignore (Pool.create ~domains:0));
  Pool.with_pool ~domains:2 (fun pool ->
      Alcotest.(check int) "domains accessor" 2 (Pool.domains pool))

let test_pool_run_results_in_order () =
  List.iter
    (fun d ->
      Pool.with_pool ~domains:d (fun pool ->
          let results = Pool.run pool (Array.init 37 (fun i -> fun () -> i * i)) in
          Alcotest.(check (array int))
            (Printf.sprintf "squares in order, %d domains" d)
            (Array.init 37 (fun i -> i * i))
            results))
    domain_counts

let test_pool_async_await () =
  Pool.with_pool ~domains:2 (fun pool ->
      let p = Pool.async pool (fun () -> 6 * 7) in
      Alcotest.(check int) "await" 42 (Pool.await pool p);
      Alcotest.(check int) "await is idempotent" 42 (Pool.await pool p))

let test_pool_exception_propagates () =
  List.iter
    (fun d ->
      Pool.with_pool ~domains:d (fun pool ->
          let hit = Atomic.make 0 in
          let tasks =
            Array.init 8 (fun i ->
                fun () ->
                 if i = 3 then raise Exit;
                 Atomic.incr hit)
          in
          (match Pool.run pool tasks with
          | _ -> Alcotest.fail "expected Exit"
          | exception Exit -> ());
          (* every non-failing task still ran: run settles the batch *)
          Alcotest.(check int)
            (Printf.sprintf "batch settled, %d domains" d)
            7 (Atomic.get hit)))
    domain_counts

let test_pool_parallel_for () =
  List.iter
    (fun d ->
      Pool.with_pool ~domains:d (fun pool ->
          let n = 1000 in
          let marks = Array.make n 0 in
          Pool.parallel_for pool ~start:0 ~finish:(n - 1) (fun i ->
              marks.(i) <- marks.(i) + 1);
          Alcotest.(check (array int))
            (Printf.sprintf "each index exactly once, %d domains" d)
            (Array.make n 1) marks;
          (* empty and singleton ranges *)
          Pool.parallel_for pool ~start:5 ~finish:4 (fun _ -> Alcotest.fail "empty range ran");
          let one = ref 0 in
          Pool.parallel_for pool ~start:9 ~finish:9 (fun i -> one := i);
          Alcotest.(check int) "singleton range" 9 !one))
    domain_counts

let test_pool_shutdown_rejects () =
  let pool = Pool.create ~domains:2 in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* idempotent *)
  Alcotest.check_raises "submit after shutdown" (Invalid_argument "Domain_pool: pool is shut down")
    (fun () -> ignore (Pool.async pool (fun () -> ())))

(* ------------------------------------------------- split_ix determinism *)

let test_split_ix_deterministic () =
  let draws rng = Array.init 8 (fun _ -> Rng.bits64 rng) in
  let root () = Rng.create ~seed:99 in
  let a = draws (Rng.split_ix (root ()) 3) in
  (* deriving other children first, or in another order, must not change
     child 3 — and must not advance the parent *)
  let r = root () in
  let _ = Rng.split_ix r 7 in
  let _ = Rng.split_ix r 0 in
  let b = draws (Rng.split_ix r 3) in
  Alcotest.(check (array int64)) "child independent of sibling order" a b;
  let c = draws r in
  let d = draws (root ()) in
  Alcotest.(check (array int64)) "parent not advanced" d c;
  Alcotest.(check bool) "distinct children differ" true
    (draws (Rng.split_ix (root ()) 1) <> draws (Rng.split_ix (root ()) 2));
  Alcotest.check_raises "negative index" (Invalid_argument "Rng.split_ix: index must be >= 0")
    (fun () -> ignore (Rng.split_ix (root ()) (-1)))

(* ------------------------------------------------------ SPSC ring queue *)

let test_ring_validation () =
  Alcotest.check_raises "capacity >= 1"
    (Invalid_argument "Spsc_ring.create: capacity must be >= 1") (fun () ->
      ignore (Ring.create ~capacity:0));
  Alcotest.(check int) "capacity rounds up to a power of two" 8
    (Ring.capacity (Ring.create ~capacity:5));
  Alcotest.(check int) "power of two kept" 4 (Ring.capacity (Ring.create ~capacity:4))

let test_ring_capacity_one () =
  let r = Ring.create ~capacity:1 in
  Alcotest.(check int) "capacity 1" 1 (Ring.capacity r);
  Alcotest.(check bool) "starts empty" true (Ring.is_empty r);
  Alcotest.(check bool) "push into empty" true (Ring.try_push r 1.0);
  Alcotest.(check bool) "second push blocks" false (Ring.try_push r 2.0);
  Alcotest.(check (option (float 0.0))) "pop" (Some 1.0) (Ring.pop r);
  Alcotest.(check (option (float 0.0))) "pop empty" None (Ring.pop r);
  (* the freed slot is reusable: the ring cycles forever at capacity 1 *)
  for i = 0 to 99 do
    Alcotest.(check bool) "cycle push" true (Ring.try_push r (Float.of_int i));
    Alcotest.(check (option (float 0.0))) "cycle pop" (Some (Float.of_int i)) (Ring.pop r)
  done

let test_ring_full_empty_boundary () =
  let r = Ring.create ~capacity:4 in
  for i = 0 to 3 do
    Alcotest.(check bool) (Printf.sprintf "push %d" i) true (Ring.try_push r (Float.of_int i))
  done;
  Alcotest.(check int) "full length" 4 (Ring.length r);
  Alcotest.(check bool) "push into full blocks" false (Ring.try_push r 99.0);
  Alcotest.(check bool) "still blocks (cache refreshed)" false (Ring.try_push r 99.0);
  for i = 0 to 3 do
    Alcotest.(check (option (float 0.0))) (Printf.sprintf "fifo pop %d" i)
      (Some (Float.of_int i)) (Ring.pop r)
  done;
  Alcotest.(check bool) "empty again" true (Ring.is_empty r);
  Alcotest.(check (option (float 0.0))) "pop empty" None (Ring.pop r)

let test_ring_wraparound () =
  (* drive 10x capacity values through a capacity-4 ring with a fill level
     of 3, so the cursors lap the buffer repeatedly: FIFO order must hold
     across every wrap *)
  let r = Ring.create ~capacity:4 in
  let next_in = ref 0 and next_out = ref 0 in
  for _ = 1 to 40 do
    while Ring.length r < 3 do
      Alcotest.(check bool) "push" true (Ring.try_push r (Float.of_int !next_in));
      incr next_in
    done;
    Alcotest.(check (option (float 0.0))) "fifo across wrap"
      (Some (Float.of_int !next_out)) (Ring.pop r);
    incr next_out
  done

let test_ring_pop_into () =
  let r = Ring.create ~capacity:8 in
  for i = 0 to 5 do
    ignore (Ring.try_push r (Float.of_int i))
  done;
  let dst = Array.make 10 Float.nan in
  (* bounded by the room left in dst *)
  Alcotest.(check int) "partial drain" 4 (Ring.pop_into r dst ~pos:6);
  Alcotest.(check (array (float 0.0))) "drained prefix in order"
    [| 0.0; 1.0; 2.0; 3.0 |] (Array.sub dst 6 4);
  Alcotest.(check int) "rest drains" 2 (Ring.pop_into r dst ~pos:0);
  Alcotest.(check (array (float 0.0))) "tail in order" [| 4.0; 5.0 |] (Array.sub dst 0 2);
  Alcotest.(check int) "empty drains zero" 0 (Ring.pop_into r dst ~pos:0);
  Alcotest.check_raises "pos out of range"
    (Invalid_argument "Spsc_ring.pop_into: pos out of range") (fun () ->
      ignore (Ring.pop_into r dst ~pos:11))

let test_ring_across_domains () =
  (* one producer domain, one consumer domain, a deliberately tiny ring:
     every pushed value must come out exactly once, in order *)
  let r = Ring.create ~capacity:4 in
  let n = 10_000 in
  let producer =
    Domain.spawn (fun () ->
        for i = 0 to n - 1 do
          while not (Ring.try_push r (Float.of_int i)) do
            Domain.cpu_relax ()
          done
        done)
  in
  let ok = ref true in
  for i = 0 to n - 1 do
    let rec next () =
      match Ring.pop r with
      | Some v -> v
      | None ->
        Domain.cpu_relax ();
        next ()
    in
    if next () <> Float.of_int i then ok := false
  done;
  Domain.join producer;
  Alcotest.(check bool) "10k values cross the ring in order" true !ok;
  Alcotest.(check bool) "ring drained" true (Ring.is_empty r)

(* --------------------------------------- engine == sequential reference *)

let policies = [ Params.Lazy; Params.Eager; Params.Every 3 ]

(* Drive a Shard_engine and one plain Fixed_window per key with identical
   per-key data, then compare every observable: lengths, herror, and full
   histogram series. *)
let engine_matches_sequential ~domains ~shards ~window ~buckets ~epsilon ~policy ~batches =
  Pool.with_pool ~domains (fun pool ->
      let eng = SE.create ~pool ~shards ~window ~buckets ~epsilon in
      SE.set_refresh_policy eng policy;
      let refs =
        Array.init shards (fun _ ->
            let fw = FW.create ~window ~buckets ~epsilon in
            FW.set_refresh_policy fw policy;
            (* reference runs unmemoised: the comparison then also proves
               the engine's memoised, arena-pooled rebuilds answer exactly
               like the plain re-evaluating kernel *)
            FW.set_memoisation fw false;
            fw)
      in
      List.iter
        (fun batch ->
          SE.ingest eng batch;
          (* reference: same per-key subsequences, same batched entry *)
          Array.iteri
            (fun k _ ->
              let sub =
                Array.of_list
                  (List.filter_map
                     (fun (k', v) -> if k' = k then Some v else None)
                     (Array.to_list batch))
              in
              FW.push_many refs.(k) sub)
            refs)
        batches;
      (* Quiesce the read plane before comparing: [Pinned] queries answer
         from the published snapshot, and under [Lazy] / mid-cadence
         [Every k] nothing is published until a refresh completes —
         [refresh_all] is the documented publication point. *)
      SE.refresh_all eng;
      let ok = ref true in
      Array.iteri
        (fun k fw ->
          if SE.length eng ~key:k <> FW.length fw then ok := false;
          if FW.length fw > 0 then begin
            let he = SE.current_error eng ~key:k and hr = FW.current_error fw in
            if not (Helpers.close he hr) then ok := false;
            let se = H.to_series (SE.current_histogram eng ~key:k) in
            let sr = H.to_series (FW.current_histogram fw) in
            if se <> sr then ok := false
          end)
        refs;
      !ok)

let prop_engine_equals_sequential =
  Helpers.qcheck_case ~count:25
    ~name:"Shard_engine == one sequential Fixed_window per key"
    QCheck2.Gen.(
      let* shards = int_range 1 9 in
      let* window = int_range 4 48 in
      let* buckets = int_range 2 4 in
      let* policy = oneofl policies in
      let* nbatches = int_range 1 6 in
      let* batches =
        list_size (return nbatches)
          (list_size (int_range 0 40) (pair (int_range 0 (shards - 1)) (int_range 0 200)))
      in
      return (shards, window, buckets, policy, batches))
    (fun (shards, window, buckets, policy, batches) ->
      let batches =
        List.map
          (fun b -> Array.of_list (List.map (fun (k, v) -> (k, Float.of_int v)) b))
          batches
      in
      (* the lock-free engine against the sequential oracle, at every
         domain count — the equivalence witness the Locked mode used to
         provide lives entirely here now *)
      List.for_all
        (fun domains ->
          engine_matches_sequential ~domains ~shards ~window ~buckets ~epsilon:0.1 ~policy
            ~batches)
        domain_counts)

let prop_push_many_equals_push =
  Helpers.qcheck_case ~count:40 ~name:"push_many == repeated push (same query results)"
    QCheck2.Gen.(
      let* data = Helpers.gen_data ~min_len:1 ~max_len:120 ~vmax:500 () in
      let* window = int_range 2 40 in
      let* buckets = int_range 2 4 in
      let* policy = oneofl policies in
      let* cut = int_range 0 (Array.length data) in
      return (data, window, buckets, policy, cut))
    (fun (data, window, buckets, policy, cut) ->
      let mk () =
        let fw = FW.create ~window ~buckets ~epsilon:0.2 in
        FW.set_refresh_policy fw policy;
        fw
      in
      let single = mk () and batched = mk () in
      Array.iter (FW.push single) data;
      (* split into two batches at an arbitrary cut to also cover batch
         boundaries that straddle refresh periods *)
      FW.push_many batched (Array.sub data 0 cut);
      FW.push_many batched (Array.sub data cut (Array.length data - cut));
      FW.length single = FW.length batched
      && Helpers.close (FW.current_error single) (FW.current_error batched)
      && H.to_series (FW.current_histogram single) = H.to_series (FW.current_histogram batched))

(* Pinned bookkeeping for a batch that straddles an [Every k] refresh
   boundary: the batch counts every point, triggers exactly one rebuild at
   the batch end, and resets the period. *)
let test_push_many_every_k_bookkeeping () =
  let fw = FW.create ~window:4 ~buckets:2 ~epsilon:0.5 in
  FW.set_refresh_policy fw (Params.Every 4);
  List.iter (FW.push fw) [ 1.0; 2.0; 3.0 ];
  Alcotest.(check int) "3 pending before batch" 3 (FW.pending_pushes fw);
  Alcotest.(check int) "no refresh yet" 0 (FW.work_counters fw).FW.refreshes;
  Alcotest.(check bool) "dirty before batch" true (FW.needs_refresh fw);
  (* batch of 3 crosses the k=4 boundary at its first point; the window
     (capacity 4) evicts on the last two points *)
  FW.push_many fw [| 4.0; 5.0; 6.0 |];
  Alcotest.(check int) "one refresh for the whole batch" 1 (FW.work_counters fw).FW.refreshes;
  Alcotest.(check int) "period reset at batch end" 0 (FW.pending_pushes fw);
  Alcotest.(check int) "slide reset by refresh" 0 (FW.slide_since_refresh fw);
  Alcotest.(check bool) "clean after batched refresh" false (FW.needs_refresh fw);
  (* short follow-up batch: counted, under period, no rebuild *)
  FW.push_many fw [| 7.0; 8.0 |];
  Alcotest.(check int) "2 pending after follow-up" 2 (FW.pending_pushes fw);
  Alcotest.(check int) "evictions tracked" 2 (FW.slide_since_refresh fw);
  Alcotest.(check bool) "dirty again" true (FW.needs_refresh fw);
  Alcotest.(check int) "still one refresh" 1 (FW.work_counters fw).FW.refreshes;
  (* empty batch is a no-op *)
  FW.push_many fw [||];
  Alcotest.(check int) "empty batch ignored" 2 (FW.pending_pushes fw);
  Alcotest.check_raises "non-finite rejected before ingest"
    (Invalid_argument "Fixed_window.push_many: non-finite value") (fun () ->
      FW.push_many fw [| 9.0; Float.nan |]);
  Alcotest.(check int) "rejected batch ingested nothing" 2 (FW.pending_pushes fw)

(* ------------------------------------------------ engine odds and ends *)

let test_engine_validation () =
  Pool.with_pool ~domains:1 (fun pool ->
      Alcotest.check_raises "shards >= 1"
        (Invalid_argument "Shard_engine.create: shards must be >= 1") (fun () ->
          ignore (SE.create ~pool ~shards:0 ~window:8 ~buckets:2 ~epsilon:0.1));
      Alcotest.check_raises "ring capacity >= 1"
        (Invalid_argument "Shard_engine.create: ring_capacity must be >= 1") (fun () ->
          ignore
            (SE.create_with_ring ~ring_capacity:0 ~pool ~shards:2 ~window:8 ~buckets:2
               ~epsilon:0.1));
      let eng = SE.create ~pool ~shards:4 ~window:8 ~buckets:2 ~epsilon:0.1 in
      Alcotest.(check int) "shard count" 4 (SE.shard_count eng);
      Alcotest.check_raises "key out of range"
        (Invalid_argument "Shard_engine: key 4 out of range [0, 4)") (fun () ->
          SE.ingest eng [| (4, 1.0) |]);
      (* the rejected batch must not have ingested its valid prefix *)
      Alcotest.(check int) "nothing ingested" 0 (SE.total_points eng);
      Alcotest.(check int) "shard untouched" 0 (SE.length eng ~key:0))

let test_engine_refresh_all_and_counters () =
  Pool.with_pool ~domains:2 (fun pool ->
      let eng = SE.create ~pool ~shards:3 ~window:16 ~buckets:3 ~epsilon:0.2 in
      let batch = Array.init 60 (fun i -> (i mod 3, Float.of_int ((i * 13) mod 97))) in
      SE.ingest eng batch;
      Alcotest.(check int) "points counted" 60 (SE.total_points eng);
      Alcotest.(check int) "one batch" 1 (SE.batches eng);
      (* publish the snapshots: lengths read the view, which under the
         default [Lazy] policy is only published at refresh *)
      SE.refresh_all eng;
      Array.iter
        (fun k ->
          Alcotest.(check int) (Printf.sprintf "shard %d length" k) 16 (SE.length eng ~key:k))
        [| 0; 1; 2 |];
      SE.refresh_all eng;
      Array.iter
        (fun k ->
          Alcotest.(check bool)
            (Printf.sprintf "shard %d clean" k)
            false
            (SE.fold eng ~init:false ~f:(fun acc k' fw ->
                 if k = k' then FW.needs_refresh fw else acc)))
        [| 0; 1; 2 |];
      (* cold refresh is the oracle: answers must not move *)
      let errs = Array.init 3 (fun k -> SE.current_error eng ~key:k) in
      SE.refresh_all ~cold:true eng;
      Array.iteri
        (fun k e ->
          Helpers.check_close (Printf.sprintf "cold refresh agrees, shard %d" k) e
            (SE.current_error eng ~key:k))
        errs)

(* ------------------------------------ lock-freedom and backpressure *)

(* The acceptance gate of the lock-free rework, kept as a flat-zero
   witness now that the Locked comparison mode is retired: the engine
   performs zero mutex lock/unlock operations over its whole lifetime,
   across ingest, refresh sweeps and queries. *)
let test_pinned_zero_lock_ops () =
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          let eng = SE.create ~pool ~shards:4 ~window:32 ~buckets:2 ~epsilon:0.3 in
          SE.ingest eng (Array.init 64 (fun i -> (i mod 4, Float.of_int i)));
          SE.refresh_all eng;
          for b = 1 to 5 do
            SE.ingest eng (Array.init 64 (fun i -> (i mod 4, Float.of_int (b * i))))
          done;
          SE.refresh_all eng;
          for k = 0 to 3 do
            ignore (SE.current_error eng ~key:k);
            ignore (SE.herror eng ~key:k ~k:2 ~x:16)
          done;
          ignore
            (SE.query_many eng
               (Array.init 8 (fun i ->
                    ( Qop.Key (i mod 4),
                      if i < 4 then Qop.Current_error else Qop.Herror { k = 2; x = 9 } ))));
          ignore (SE.query_global eng Qop.Window_length);
          Alcotest.(check int)
            (Printf.sprintf "zero lock ops over the lifetime, %d domains" domains)
            0 (SE.lock_ops eng);
          (* the wait-freedom witness: snapshot-backed queries never touch
             a mutex *)
          Alcotest.(check int)
            (Printf.sprintf "zero query lock ops, %d domains" domains)
            0 (SE.query_lock_ops eng)))
    domain_counts

(* Saturate deliberately tiny rings: every point must still land (spilled
   through the overflow path, counted as backpressure waits), and the
   results must stay bit-identical to the sequential reference. *)
let test_backpressure_no_point_dropped () =
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          let eng =
            SE.create_with_ring ~ring_capacity:4 ~pool ~shards:2 ~window:64 ~buckets:2
              ~epsilon:0.3
          in
          Alcotest.(check int) "tiny ring capacity" 4 (SE.ring_capacity eng);
          (* 90 of 100 points hit shard 0: its capacity-4 ring must spill *)
          let batch =
            Array.init 100 (fun i ->
                ((if i mod 10 = 9 then 1 else 0), Float.of_int ((i * 7) mod 53)))
          in
          let refs = Array.init 2 (fun _ -> FW.create ~window:64 ~buckets:2 ~epsilon:0.3) in
          Array.iter (fun fw -> FW.set_memoisation fw false) refs;
          SE.ingest eng batch;
          Array.iteri
            (fun k _ ->
              FW.push_many refs.(k)
                (Array.of_list
                   (List.filter_map
                      (fun (k', v) -> if k' = k then Some v else None)
                      (Array.to_list batch))))
            refs;
          Alcotest.(check bool)
            (Printf.sprintf "ring saturation spilled, %d domains" domains)
            true
            (SE.backpressure_waits eng > 0);
          Alcotest.(check int) "every point counted" 100 (SE.total_points eng);
          (* quiesce: publish the post-spill state so snapshot-backed
             queries see it (default policy is Lazy) *)
          SE.refresh_all eng;
          Array.iteri
            (fun k fw ->
              Alcotest.(check int)
                (Printf.sprintf "shard %d length matches sequential, %d domains" k domains)
                (FW.length fw) (SE.length eng ~key:k);
              Alcotest.(check bool)
                (Printf.sprintf "shard %d histogram matches sequential, %d domains" k domains)
                true
                (H.to_series (SE.current_histogram eng ~key:k) = H.to_series (FW.current_histogram fw)))
            refs))
    domain_counts

(* The work-stealing sweep must refresh every shard exactly once per
   refresh_all, whatever the owner/stealer interleaving — claims go
   through per-owner atomic cursors, so a double refresh or a skipped
   shard would surface here as a work-counter mismatch. *)
let test_work_stealing_sweep_exactly_once () =
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          let shards = 8 in
          let eng = SE.create ~pool ~shards ~window:16 ~buckets:2 ~epsilon:0.3 in
          (* Zipf-ish skew: every shard gets something, shard 0 gets most *)
          let batch =
            Array.init 200 (fun i ->
                let k = if i < 40 then i mod shards else 0 in
                (k, Float.of_int ((i * 11) mod 89)))
          in
          SE.ingest eng batch;
          let before =
            Array.init shards (fun k -> (SE.work_counters eng ~key:k).FW.refreshes)
          in
          SE.refresh_all eng;
          for k = 0 to shards - 1 do
            Alcotest.(check int)
              (Printf.sprintf "shard %d refreshed exactly once, %d domains" k domains)
              (before.(k) + 1)
              (SE.work_counters eng ~key:k).FW.refreshes
          done;
          Alcotest.(check bool) "steal counter is sane" true (SE.refresh_steals eng >= 0)))
    domain_counts

(* ------------------------------------------------ wait-free read plane *)

(* The read plane's central claim: a published snapshot answers
   current_error / current_histogram / herror bit-identically (plain
   float / structural equality, no tolerance) to the quiesced live
   summary it was captured from — across every domain count and all
   refresh policies. *)
let prop_snapshot_equals_quiesced_live =
  Helpers.qcheck_case ~count:15
    ~name:"published view == quiesced live shard (bit-identical)"
    QCheck2.Gen.(
      let* shards = int_range 1 5 in
      let* window = int_range 4 40 in
      let* buckets = int_range 2 5 in
      let* policy = oneofl policies in
      let* nbatches = int_range 1 4 in
      let* batches =
        list_size (return nbatches)
          (list_size (int_range 0 40) (pair (int_range 0 (shards - 1)) (int_range 0 200)))
      in
      return (shards, window, buckets, policy, batches))
    (fun (shards, window, buckets, policy, batches) ->
      let batches =
        List.map
          (fun b -> Array.of_list (List.map (fun (k, v) -> (k, Float.of_int v)) b))
          batches
      in
      List.for_all
        (fun domains ->
          Pool.with_pool ~domains (fun pool ->
              let eng = SE.create ~pool ~shards ~window ~buckets ~epsilon:0.15 in
              SE.set_refresh_policy eng policy;
              List.iter (SE.ingest eng) batches;
              SE.refresh_all eng;
              let ok = ref true in
              let check b = if not b then ok := false in
              for key = 0 to shards - 1 do
                let v = SE.view eng ~key in
                (* quiesced: published == live, generation and watermark *)
                check (SE.generation_lag eng ~key = 0);
                check (SE.publication_lag eng ~key = 0);
                let n = SE.with_key eng ~key ~f:FW.length in
                check (FW.View.length v = n);
                check (FW.View.buckets v = buckets);
                let live_err = SE.with_key eng ~key ~f:FW.current_error in
                check (Float.equal (FW.View.current_error v) live_err);
                check (Float.equal (SE.current_error eng ~key) live_err);
                if n > 0 then begin
                  let sv = H.to_series (FW.View.current_histogram v) in
                  check (sv = H.to_series (SE.with_key eng ~key ~f:FW.current_histogram));
                  check (sv = H.to_series (SE.current_histogram eng ~key));
                  List.iter
                    (fun k ->
                      List.iter
                        (fun x ->
                          let live =
                            SE.with_key eng ~key ~f:(fun fw -> FW.herror fw ~k ~x)
                          in
                          check (Float.equal (FW.View.herror v ~k ~x) live);
                          check (Float.equal (SE.herror eng ~key ~k ~x) live))
                        [ 0; 1; (n + 1) / 2; n ])
                    [ 1; buckets ]
                end
              done;
              (* the Global scope folds the same published views the per-key
                 reads above just checked: same association, from 0.0 *)
              let expect = ref 0.0 in
              for key = 0 to shards - 1 do
                expect := !expect +. Float.of_int (SE.length eng ~key)
              done;
              check (Float.equal (SE.query_global eng Qop.Window_length) !expect);
              check
                (Float.equal
                   (SE.query_global eng Qop.Window_length)
                   (SE.query_many eng [| (Qop.Global, Qop.Window_length) |]).(0));
              !ok))
        domain_counts)

(* Freshness: once any engine call has returned, the published generation
   never lags the live one — every refresh path (drain-triggered Eager /
   Every-k rebuilds, sweeps) republishes before handing the shard back.
   The staleness contract of the .mli, as a property. *)
let prop_view_never_stale =
  Helpers.qcheck_case ~count:15
    ~name:"published generation never lags a completed engine call"
    QCheck2.Gen.(
      let* shards = int_range 1 4 in
      let* window = int_range 4 24 in
      let* policy = oneofl policies in
      let* batches =
        list_size (int_range 1 5)
          (list_size (int_range 0 30) (pair (int_range 0 (shards - 1)) (int_range 0 99)))
      in
      return (shards, window, policy, batches))
    (fun (shards, window, policy, batches) ->
      let batches =
        List.map
          (fun b -> Array.of_list (List.map (fun (k, v) -> (k, Float.of_int v)) b))
          batches
      in
      List.for_all
        (fun domains ->
          Pool.with_pool ~domains (fun pool ->
              let eng = SE.create ~pool ~shards ~window ~buckets:3 ~epsilon:0.2 in
              SE.set_refresh_policy eng policy;
              let fresh () =
                let ok = ref true in
                for key = 0 to shards - 1 do
                  if SE.generation_lag eng ~key <> 0 then ok := false
                done;
                !ok
              in
              let ok = ref (fresh ()) in
              List.iter
                (fun b ->
                  SE.ingest eng b;
                  if not (fresh ()) then ok := false)
                batches;
              for key = 0 to shards - 1 do
                ignore (SE.current_error eng ~key);
                ignore (SE.length eng ~key)
              done;
              if not (fresh ()) then ok := false;
              SE.refresh_all eng;
              if not (fresh ()) then ok := false;
              (* after a full sweep the snapshot also carries every point *)
              for key = 0 to shards - 1 do
                if SE.publication_lag eng ~key <> 0 then ok := false
              done;
              !ok))
        domain_counts)

(* Serving-layer clamping of [query_many], against the strict single-query
   entry points; also pins down the query counters. *)
let test_query_many_clamping () =
  Pool.with_pool ~domains:2 (fun pool ->
      let eng = SE.create ~pool ~shards:2 ~window:8 ~buckets:2 ~epsilon:0.3 in
      SE.ingest eng (Array.init 16 (fun i -> (i mod 2, Float.of_int (i + 1))));
      SE.refresh_all eng;
      Alcotest.(check int) "window filled" 8 (SE.length eng ~key:0);
      let key0 = Qop.Key 0 in
      let qs =
        [|
          (key0, Qop.Window_length);
          (key0, Qop.Current_error);
          (key0, Qop.Herror { k = 99; x = 999 });      (* clamps to (buckets, n) *)
          (key0, Qop.Herror { k = 0; x = -5 });        (* clamps to (1, 0) -> 0 *)
          (key0, Qop.Range_sum { lo = -3; hi = 999 }); (* intersected with [1, n] *)
          (key0, Qop.Range_sum { lo = 6; hi = 2 });    (* empty -> 0 *)
          (key0, Qop.Point_estimate { index = 0 });    (* out of range -> 0 *)
          (key0, Qop.Point_estimate { index = 1 });
          (Qop.Key 1, Qop.Window_length);
          (Qop.Global, Qop.Window_length);             (* all-keys fold *)
        |]
      in
      let out = SE.query_many eng qs in
      let h = SE.current_histogram eng ~key:0 in
      Alcotest.(check (float 0.0)) "window length" 8.0 out.(0);
      Alcotest.(check (float 0.0)) "current error == single-query entry"
        (SE.current_error eng ~key:0) out.(1);
      Alcotest.(check (float 0.0)) "clamped herror == strict herror at the bounds"
        (SE.herror eng ~key:0 ~k:2 ~x:8) out.(2);
      Alcotest.(check (float 0.0)) "herror clamped to x=0 is 0" 0.0 out.(3);
      Alcotest.(check (float 1e-9)) "full-range sum estimate"
        (H.range_sum_estimate h ~lo:1 ~hi:8) out.(4);
      Alcotest.(check (float 0.0)) "inverted range" 0.0 out.(5);
      Alcotest.(check (float 0.0)) "point out of range" 0.0 out.(6);
      Alcotest.(check (float 1e-9)) "point estimate" (H.point_estimate h 1) out.(7);
      Alcotest.(check (float 0.0)) "second shard length" 8.0 out.(8);
      Alcotest.(check (float 0.0)) "global length sums both shards" 16.0 out.(9);
      (* a batched call counts each element once; the three single-query
         entries used above (histogram, error, herror) add three more *)
      Alcotest.(check int) "query counter" (10 + 3) (SE.queries eng);
      Alcotest.(check int) "no query lock ops" 0 (SE.query_lock_ops eng))

(* ------------------------------------------- telemetry under parallelism *)

let test_counter_no_lost_increments () =
  let c = Obs.counter "par.stress.counter" in
  let before = M.value c in
  let per_domain = 50_000 and nd = 4 in
  let ds =
    List.init nd (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              M.incr c
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "no increments lost across 4 domains" (before + (nd * per_domain))
    (M.value c)

let test_gauge_no_lost_adds () =
  let g = Obs.gauge "par.stress.gauge" in
  let before = M.gvalue g in
  let per_domain = 20_000 and nd = 4 in
  let ds =
    List.init nd (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              M.gadd g 1.0
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check (float 0.0)) "no gauge adds lost across 4 domains"
    (before +. Float.of_int (nd * per_domain))
    (M.gvalue g)

let test_registry_get_or_create_race () =
  let per_domain = 1_000 and nd = 4 in
  let ds =
    List.init nd (fun _ ->
        Domain.spawn (fun () ->
            (* get-or-create from every domain: all must agree on one series *)
            let c = Obs.counter "par.stress.race" in
            for _ = 1 to per_domain do
              M.incr c
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "one series, all increments" (nd * per_domain)
    (M.value (Obs.counter "par.stress.race"))

let test_spans_across_domains () =
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs.set_enabled false)
    (fun () ->
      let before = Sh_obs.Span.trace_length () in
      let nd = 4 and per_domain = 50 in
      let ds =
        List.init nd (fun _ ->
            Domain.spawn (fun () ->
                for _ = 1 to per_domain do
                  Obs.with_span "par.stress.span" (fun () -> ())
                done))
      in
      List.iter Domain.join ds;
      Alcotest.(check int) "every span recorded" (before + (nd * per_domain))
        (Sh_obs.Span.trace_length ()))

let () =
  Alcotest.run "sh_par"
    [
      ( "domain_pool",
        [
          Alcotest.test_case "validation" `Quick test_pool_validation;
          Alcotest.test_case "run keeps order" `Quick test_pool_run_results_in_order;
          Alcotest.test_case "async/await" `Quick test_pool_async_await;
          Alcotest.test_case "exceptions propagate" `Quick test_pool_exception_propagates;
          Alcotest.test_case "parallel_for covers range" `Quick test_pool_parallel_for;
          Alcotest.test_case "shutdown" `Quick test_pool_shutdown_rejects;
        ] );
      ("rng", [ Alcotest.test_case "split_ix deterministic" `Quick test_split_ix_deterministic ]);
      ( "spsc_ring",
        [
          Alcotest.test_case "validation" `Quick test_ring_validation;
          Alcotest.test_case "capacity 1" `Quick test_ring_capacity_one;
          Alcotest.test_case "full/empty boundary" `Quick test_ring_full_empty_boundary;
          Alcotest.test_case "wraparound fifo" `Quick test_ring_wraparound;
          Alcotest.test_case "pop_into batch drain" `Quick test_ring_pop_into;
          Alcotest.test_case "cross-domain hand-off" `Quick test_ring_across_domains;
        ] );
      ( "shard_engine",
        [
          prop_engine_equals_sequential;
          prop_push_many_equals_push;
          Alcotest.test_case "push_many Every-k bookkeeping" `Quick
            test_push_many_every_k_bookkeeping;
          Alcotest.test_case "validation" `Quick test_engine_validation;
          Alcotest.test_case "refresh_all + counters" `Quick test_engine_refresh_all_and_counters;
          Alcotest.test_case "Pinned performs zero lock ops" `Quick test_pinned_zero_lock_ops;
          Alcotest.test_case "backpressure drops nothing" `Quick
            test_backpressure_no_point_dropped;
          Alcotest.test_case "work-stealing sweep exactly once" `Quick
            test_work_stealing_sweep_exactly_once;
        ] );
      ( "read_plane",
        [
          prop_snapshot_equals_quiesced_live;
          prop_view_never_stale;
          Alcotest.test_case "query_many clamping + counters" `Quick test_query_many_clamping;
        ] );
      ( "obs_domain_safety",
        [
          Alcotest.test_case "counter stress" `Quick test_counter_no_lost_increments;
          Alcotest.test_case "gauge stress" `Quick test_gauge_no_lost_adds;
          Alcotest.test_case "registry race" `Quick test_registry_get_or_create_race;
          Alcotest.test_case "spans across domains" `Quick test_spans_across_domains;
        ] );
    ]
