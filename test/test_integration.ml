(* End-to-end pipelines: stream generation -> synopsis maintenance ->
   query estimation -> error evaluation, crossing every library. *)

module Rng = Sh_util.Rng
module Source = Sh_gen.Source
module Wk = Sh_gen.Workloads
module P = Sh_prefix.Prefix_sums
module RB = Sh_window.Ring_buffer
module H = Sh_histogram.Histogram
module V = Sh_histogram.Vopt
module FW = Stream_histogram.Fixed_window
module AG = Stream_histogram.Agglomerative
module Syn = Sh_wavelet.Synopsis
module E = Sh_query.Estimator
module Q = Sh_query.Workload
module Ev = Sh_query.Evaluate

(* Fixed-window pipeline over a realistic network stream: at several slide
   positions the fixed-window histogram must answer range sums more
   accurately than an equal-space wavelet, and both must beat nothing at
   all (the global-mean estimator). *)
let test_fixed_window_pipeline () =
  let rng = Rng.create ~seed:2024 in
  let stream = Source.take (Wk.network rng Wk.default_network) 4096 in
  let w = 512 and b = 24 in
  let fw = FW.create ~window:w ~buckets:b ~epsilon:0.1 in
  let ring = RB.create ~capacity:w in
  let qrng = Rng.create ~seed:7 in
  let checks = ref 0 in
  Array.iteri
    (fun i v ->
      FW.push fw v;
      RB.push ring v;
      if i >= w - 1 && (i + 1) mod 1024 = 0 then begin
        incr checks;
        let window = RB.to_array ring in
        let truth = E.exact (P.make window) in
        let queries = Q.random_ranges qrng ~n:w ~count:300 in
        let hist_err =
          (Ev.range_sum_errors ~truth (E.of_histogram (FW.current_histogram fw)) queries)
            .Sh_util.Metrics.mae
        in
        let wavelet_err =
          (Ev.range_sum_errors ~truth (E.of_wavelet (Syn.build window ~coeffs:b)) queries)
            .Sh_util.Metrics.mae
        in
        let mean = Sh_util.Stats.mean window in
        let flat_err =
          (Ev.range_sum_errors ~truth (E.of_series (Array.make w mean)) queries)
            .Sh_util.Metrics.mae
        in
        Alcotest.(check bool)
          (Printf.sprintf "histogram beats flat at %d (%.1f vs %.1f)" i hist_err flat_err)
          true (hist_err <= flat_err +. 1e-6);
        Alcotest.(check bool)
          (Printf.sprintf "histogram competitive with wavelet at %d (%.1f vs %.1f)" i hist_err
             wavelet_err)
          true
          (hist_err <= (2.0 *. wavelet_err) +. 1e-6)
      end)
    stream;
  Alcotest.(check bool) "pipeline exercised" true (!checks >= 3)

(* Agglomerative pipeline: one pass over a "warehouse" table, then
   approximate querying against exact answers, with accuracy close to the
   optimal histogram's. *)
let test_agglomerative_pipeline () =
  let rng = Rng.create ~seed:11 in
  let data = Source.take (Wk.step_signal rng ~segment_mean:64 ~noise_stddev:4.0 ()) 2048 in
  let b = 16 in
  let ag = AG.create ~buckets:b ~epsilon:0.1 in
  Array.iter (AG.push ag) data;
  let p = P.make data in
  let truth = E.exact p in
  let queries = Q.random_ranges (Rng.create ~seed:3) ~n:2048 ~count:400 in
  let ag_hist = AG.current_histogram ag in
  let opt_hist = V.build_prefix p ~buckets:b in
  let mae h = (Ev.range_sum_errors ~truth (E.of_histogram h) queries).Sh_util.Metrics.mae in
  let ag_mae = mae ag_hist and opt_mae = mae opt_hist in
  (* SSE guarantee transfers loosely to query error; assert a generous
     factor plus slack for the near-zero-error regime. *)
  Alcotest.(check bool)
    (Printf.sprintf "agglomerative mae %.2f close to optimal %.2f" ag_mae opt_mae)
    true
    (ag_mae <= (3.0 *. opt_mae) +. 50.0)

(* Histogram synopses (this paper) vs APCA (prior work) on similarity
   search: with equal budgets the optimal-placement synopsis must produce
   tighter lower bounds, hence no more candidates on average — the
   Section 5.2 claim. *)
let test_similarity_pipeline () =
  let rng = Rng.create ~seed:31 in
  let series = Wk.series_family rng ~count:40 ~len:128 ~shapes:8 ~noise:5.0 in
  let m = 8 in
  let apca =
    Sh_timeseries.Similarity.make_collection ~name:"apca"
      ~synopsis:(fun s -> Sh_timeseries.Apca.build s ~segments:m)
      series
  in
  let hist =
    Sh_timeseries.Similarity.make_collection ~name:"hist"
      ~synopsis:(fun s -> Sh_timeseries.Segments.of_histogram (V.build s ~buckets:m))
      series
  in
  let total_fp coll =
    let acc = ref 0 in
    Array.iteri
      (fun i q ->
        if i mod 4 = 0 then begin
          let _, stats = Sh_timeseries.Similarity.range_search coll ~query:q ~radius:60.0 in
          acc := !acc + stats.Sh_timeseries.Similarity.false_positives
        end)
      series;
    !acc
  in
  let fp_apca = total_fp apca and fp_hist = total_fp hist in
  Alcotest.(check bool)
    (Printf.sprintf "histogram false positives (%d) <= apca (%d) + slack" fp_hist fp_apca)
    true
    (fp_hist <= fp_apca + 3)

(* The full stack is deterministic end to end: same seeds, same outputs. *)
let test_end_to_end_determinism () =
  let run () =
    let rng = Rng.create ~seed:5 in
    let stream = Source.take (Wk.network rng Wk.default_network) 1024 in
    let fw = FW.create ~window:256 ~buckets:8 ~epsilon:0.2 in
    Array.iter (FW.push fw) stream;
    (FW.current_error fw, H.to_series (FW.current_histogram fw))
  in
  let e1, s1 = run () in
  let e2, s2 = run () in
  Helpers.check_close "same error" e1 e2;
  Alcotest.(check (array (float 0.0))) "same histogram" s1 s2

(* GK quantiles and histograms agree on coarse distribution shape. *)
let test_quantile_cross_check () =
  let rng = Rng.create ~seed:6 in
  let data = Source.take (Wk.uniform_noise rng ~lo:0.0 ~hi:1000.0) 20_000 in
  let g = Sh_quantile.Gk.create ~epsilon:0.01 in
  Array.iter (Sh_quantile.Gk.insert g) data;
  let med = Sh_quantile.Gk.quantile g 0.5 in
  let true_med = Sh_util.Stats.median data in
  Alcotest.(check bool)
    (Printf.sprintf "GK median %.0f near true %.0f" med true_med)
    true
    (Float.abs (med -. true_med) < 30.0)

let () =
  Alcotest.run "integration"
    [
      ( "pipelines",
        [
          Alcotest.test_case "fixed-window querying" `Slow test_fixed_window_pipeline;
          Alcotest.test_case "agglomerative warehouse" `Quick test_agglomerative_pipeline;
          Alcotest.test_case "similarity search" `Quick test_similarity_pipeline;
          Alcotest.test_case "determinism" `Quick test_end_to_end_determinism;
          Alcotest.test_case "quantile cross-check" `Quick test_quantile_cross_check;
        ] );
    ]
