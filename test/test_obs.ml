module Obs = Sh_obs.Obs
module M = Sh_obs.Metric
module R = Sh_obs.Registry
module Span = Sh_obs.Span
module Sink = Sh_obs.Sink

(* Every test starts from an empty registry, telemetry disabled, and the
   default clock; the registry is global so isolation is explicit. *)
let clean f () =
  Obs.clear ();
  Obs.set_enabled false;
  Obs.set_clock Sys.time;
  Span.set_capacity 4096;
  Fun.protect ~finally:(fun () ->
      Obs.clear ();
      Obs.set_enabled false;
      Obs.set_clock Sys.time)
    f

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Minimal JSON syntax checker for the json-lines sinks (the toolchain has
   no JSON library; this accepts exactly the RFC 8259 grammar). *)
let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let fail () = raise Exit in
  let peek () = if !pos < n then s.[!pos] else '\255' in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with ' ' | '\t' | '\n' | '\r' -> advance (); skip_ws () | _ -> ()
  in
  let expect c = if peek () = c then advance () else fail () in
  let lit w = String.iter (fun c -> if peek () = c then advance () else fail ()) w in
  let str () =
    expect '"';
    let rec go () =
      if !pos >= n then fail ();
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        if !pos >= n then fail ();
        advance ();
        go ()
      | _ -> advance (); go ()
    in
    go ()
  in
  let digits () =
    let d = ref 0 in
    while (match peek () with '0' .. '9' -> true | _ -> false) do
      advance ();
      incr d
    done;
    if !d = 0 then fail ()
  in
  let number () =
    if peek () = '-' then advance ();
    digits ();
    if peek () = '.' then begin advance (); digits () end;
    match peek () with
    | 'e' | 'E' ->
      advance ();
      (match peek () with '+' | '-' -> advance () | _ -> ());
      digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' -> obj ()
    | '[' -> arr ()
    | '"' -> str ()
    | 't' -> lit "true"
    | 'f' -> lit "false"
    | 'n' -> lit "null"
    | '-' | '0' .. '9' -> number ()
    | _ -> fail ()
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = '}' then advance ()
    else begin
      let rec fields () =
        skip_ws ();
        str ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with ',' -> advance (); fields () | '}' -> advance () | _ -> fail ()
      in
      fields ()
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = ']' then advance ()
    else begin
      let rec items () =
        value ();
        skip_ws ();
        match peek () with ',' -> advance (); items () | ']' -> advance () | _ -> fail ()
      in
      items ()
    end
  in
  match
    value ();
    skip_ws ();
    !pos = n
  with
  | b -> b
  | exception Exit -> false

let lines s = List.filter (fun l -> l <> "") (String.split_on_char '\n' s)

(* ------------------------------------------------------------- metrics *)

let test_counter_monotone () =
  let c = Obs.counter "t.count" in
  Alcotest.(check int) "starts at zero" 0 (M.value c);
  M.incr c;
  M.add c 4;
  Alcotest.(check int) "incr + add" 5 (M.value c);
  M.add c 0;
  Alcotest.(check int) "add zero ok" 5 (M.value c);
  Alcotest.check_raises "negative increment rejected"
    (Invalid_argument "Obs: counters are monotone, negative increment") (fun () -> M.add c (-1))

let test_counter_always_live () =
  (* counters back work_counters: they must count with telemetry off *)
  Alcotest.(check bool) "telemetry off" false (Obs.enabled ());
  let c = Obs.counter "t.live" in
  M.incr c;
  Alcotest.(check int) "counted while disabled" 1 (M.value c)

let test_gauge_ops () =
  let g = Obs.gauge "t.gauge" in
  M.set g 2.5;
  M.gadd g 1.0;
  M.gincr g;
  Alcotest.(check (float 1e-9)) "set/gadd/gincr" 4.5 (M.gvalue g)

let test_histogram_buckets () =
  (* bucket i covers (2^(i-41), 2^(i-40)]; exact powers of two land on
     their inclusive upper bound *)
  Alcotest.(check (float 0.0)) "le of bucket 40 is 1" 1.0 (M.bucket_le 40);
  Alcotest.(check (float 0.0)) "le of bucket 39 is 1/2" 0.5 (M.bucket_le 39);
  Alcotest.(check bool) "last le is +Inf" true (M.bucket_le (M.bucket_count - 1) = infinity);
  Alcotest.(check int) "1.0 -> bucket 40" 40 (M.bucket_index 1.0);
  Alcotest.(check int) "2.0 -> bucket 41" 41 (M.bucket_index 2.0);
  Alcotest.(check int) "1.5 -> bucket 41" 41 (M.bucket_index 1.5);
  Alcotest.(check int) "0.75 -> bucket 40" 40 (M.bucket_index 0.75);
  Alcotest.(check int) "0.5 -> bucket 39" 39 (M.bucket_index 0.5);
  Alcotest.(check int) "zero -> bucket 0" 0 (M.bucket_index 0.0);
  Alcotest.(check int) "negative -> bucket 0" 0 (M.bucket_index (-3.0));
  Alcotest.(check int) "tiny -> bucket 0" 0 (M.bucket_index 1e-30);
  Alcotest.(check int) "huge -> overflow bucket" (M.bucket_count - 1) (M.bucket_index 1e30);
  (* the bound itself is included, the next float is not *)
  let i = 45 in
  let le = M.bucket_le i in
  Alcotest.(check int) "bound inclusive" i (M.bucket_index le);
  Alcotest.(check int) "next float overflows" (i + 1)
    (M.bucket_index (Float.succ le))

let test_histogram_observe () =
  Obs.set_enabled true;
  let h = Obs.histogram "t.h" in
  List.iter (M.observe h) [ 1.0; 1.5; 3.0; 1e30 ];
  Alcotest.(check int) "count" 4 (M.hcount h);
  Alcotest.(check (float 1e20)) "sum" (1.0 +. 1.5 +. 3.0 +. 1e30) (M.hsum h);
  Alcotest.(check int) "cumulative at le=1" 1 (M.cumulative h 40);
  Alcotest.(check int) "cumulative at le=2" 2 (M.cumulative h 41);
  Alcotest.(check int) "cumulative at le=4" 3 (M.cumulative h 42);
  Alcotest.(check int) "cumulative at +Inf" 4 (M.cumulative h (M.bucket_count - 1))

let test_histogram_disabled_noop () =
  let h = Obs.histogram "t.h" in
  M.observe h 1.0;
  Alcotest.(check int) "no observations while disabled" 0 (M.hcount h);
  Alcotest.(check (float 0.0)) "no sum" 0.0 (M.hsum h)

(* ------------------------------------------------------------ registry *)

let test_registry_get_or_create () =
  let a = Obs.counter "t.c" in
  let b = Obs.counter "t.c" in
  Alcotest.(check bool) "same handle" true (a == b);
  (* label order never distinguishes series *)
  let l1 = Obs.counter ~labels:[ ("z", "1"); ("a", "2") ] "t.l" in
  let l2 = Obs.counter ~labels:[ ("a", "2"); ("z", "1") ] "t.l" in
  Alcotest.(check bool) "labels canonically sorted" true (l1 == l2);
  let other = Obs.counter ~labels:[ ("a", "3"); ("z", "1") ] "t.l" in
  Alcotest.(check bool) "different label value, different series" true (not (l1 == other));
  Alcotest.(check int) "three series" 3 (R.series_count ())

let test_registry_validation () =
  ignore (Obs.counter "t.c");
  Alcotest.check_raises "type clash"
    (Invalid_argument "Obs: metric \"t.c\" already registered with a different type") (fun () ->
      ignore (Obs.gauge "t.c"));
  Alcotest.check_raises "bad name"
    (Invalid_argument "Obs: metric name \"9bad\" must start with a letter") (fun () ->
      ignore (Obs.counter "9bad"));
  Alcotest.check_raises "bad char"
    (Invalid_argument "Obs: bad metric name \"a b\" (use [a-zA-Z0-9_.])") (fun () ->
      ignore (Obs.counter "a b"))

let test_registry_snapshot_sorted () =
  ignore (Obs.counter "t.b");
  ignore (Obs.counter "t.a");
  ignore (Obs.counter ~labels:[ ("instance", "x1") ] "t.a");
  ignore (Obs.counter ~labels:[ ("instance", "x0") ] "t.a");
  let names = List.map R.metric_name (R.snapshot ()) in
  Alcotest.(check (list string)) "sorted by name then labels"
    [ "t.a"; "t.a"; "t.a"; "t.b" ] names;
  match R.snapshot () with
  | _unlabelled :: second :: third :: _ ->
    Alcotest.(check (list (pair string string))) "label order within a name"
      [ ("instance", "x0") ] (R.metric_labels second);
    Alcotest.(check (list (pair string string))) "x1 after x0"
      [ ("instance", "x1") ] (R.metric_labels third)
  | _ -> Alcotest.fail "expected four series"

let test_registry_reset_and_clear () =
  Obs.set_enabled true;
  let c = Obs.counter "t.c" in
  let g = Obs.gauge "t.g" in
  let h = Obs.histogram "t.h" in
  M.add c 7;
  M.set g 3.0;
  M.observe h 1.0;
  Obs.reset ();
  Alcotest.(check int) "counter zeroed" 0 (M.value c);
  Alcotest.(check (float 0.0)) "gauge zeroed" 0.0 (M.gvalue g);
  Alcotest.(check int) "histogram zeroed" 0 (M.hcount h);
  Alcotest.(check int) "registrations survive reset" 3 (R.series_count ());
  Alcotest.(check bool) "reset returns the same handle" true (Obs.counter "t.c" == c);
  M.incr c;
  Obs.clear ();
  Alcotest.(check int) "clear drops registrations" 0 (R.series_count ());
  (* the old handle keeps counting but is detached from the registry *)
  M.incr c;
  Alcotest.(check int) "detached handle still counts" 2 (M.value c);
  Alcotest.(check bool) "re-registration is a fresh series" true (not (Obs.counter "t.c" == c))

let test_instance_names () =
  Alcotest.(check string) "first" "t0" (Obs.instance "t");
  Alcotest.(check string) "second" "t1" (Obs.instance "t");
  Alcotest.(check string) "per-prefix sequence" "u0" (Obs.instance "u");
  Obs.clear ();
  Alcotest.(check string) "clear resets sequences" "t0" (Obs.instance "t")

(* --------------------------------------------------------------- spans *)

let test_span_disabled_noop () =
  let r = Obs.with_span "t.sp" (fun () -> 41 + 1) in
  Alcotest.(check int) "result passes through" 42 r;
  Alcotest.(check int) "no events recorded" 0 (Span.trace_length ());
  Alcotest.(check int) "no series registered" 0 (R.series_count ())

let test_span_nesting () =
  Obs.set_enabled true;
  let t = ref 100.0 in
  Obs.set_clock (fun () -> !t);
  let c = Obs.counter "t.work" in
  Obs.with_span "outer" (fun () ->
      M.incr c;
      t := !t +. 1.0;
      Obs.with_span "inner" (fun () ->
          M.add c 2;
          t := !t +. 0.25);
      t := !t +. 1.0);
  match Span.trace () with
  | [ inner; outer ] ->
    Alcotest.(check string) "inner completes first" "inner" inner.Span.name;
    Alcotest.(check int) "inner seq" 1 inner.Span.seq;
    Alcotest.(check int) "inner depth" 1 inner.Span.depth;
    Alcotest.(check (float 1e-9)) "inner start" 101.0 inner.Span.start;
    Alcotest.(check (float 1e-9)) "inner duration" 0.25 inner.Span.duration;
    Alcotest.(check string) "outer name" "outer" outer.Span.name;
    Alcotest.(check int) "outer seq" 2 outer.Span.seq;
    Alcotest.(check int) "outer depth" 0 outer.Span.depth;
    Alcotest.(check (float 1e-9)) "outer duration" 2.25 outer.Span.duration;
    (* deltas are inclusive of children; obs.* bookkeeping is excluded *)
    Alcotest.(check (list (pair string int)))
      "inner deltas" [ ("t.work", 2) ]
      (List.map (fun (n, _, d) -> (n, d)) inner.Span.deltas);
    Alcotest.(check (list (pair string int)))
      "outer deltas include child's" [ ("t.work", 3) ]
      (List.map (fun (n, _, d) -> (n, d)) outer.Span.deltas)
  | evs -> Alcotest.fail (Printf.sprintf "expected 2 events, got %d" (List.length evs))

let test_span_side_metrics () =
  Obs.set_enabled true;
  let t = ref 0.0 in
  Obs.set_clock (fun () -> !t);
  Obs.with_span "t.op" (fun () -> t := !t +. 0.5);
  Obs.with_span "t.op" (fun () -> t := !t +. 0.5);
  (match R.find ~labels:[ ("span", "t.op") ] "obs.spans" with
  | Some (R.Counter c) -> Alcotest.(check int) "span completions counted" 2 (M.value c)
  | _ -> Alcotest.fail "obs.spans{span=t.op} missing");
  match R.find "t.op_duration" with
  | Some (R.Histogram h) ->
    Alcotest.(check int) "durations observed" 2 (M.hcount h);
    Alcotest.(check (float 1e-9)) "durations summed" 1.0 (M.hsum h)
  | _ -> Alcotest.fail "t.op_duration histogram missing"

let test_span_exception () =
  Obs.set_enabled true;
  Alcotest.check_raises "exception propagates" Exit (fun () ->
      Obs.with_span "t.fail" (fun () -> raise Exit));
  Alcotest.(check int) "failed span still recorded" 1 (Span.trace_length ());
  Alcotest.(check int) "depth unwound: next span is top-level" 0
    (Obs.with_span "t.after" (fun () -> ());
     match List.rev (Span.trace ()) with
     | ev :: _ -> ev.Span.depth
     | [] -> -1)

let test_span_capacity () =
  Obs.set_enabled true;
  Span.set_capacity 3;
  for i = 1 to 5 do
    Obs.with_span (Printf.sprintf "t.s%d" i) (fun () -> ())
  done;
  Alcotest.(check int) "bounded" 3 (Span.trace_length ());
  Alcotest.(check int) "drops counted" 2 (Span.dropped_events ());
  Alcotest.(check (list string)) "oldest dropped first" [ "t.s3"; "t.s4"; "t.s5" ]
    (List.map (fun e -> e.Span.name) (Span.trace ()));
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Obs: trace capacity must be >= 1") (fun () -> Span.set_capacity 0)

(* --------------------------------------------------------------- sinks *)

let populate () =
  Obs.set_enabled true;
  let t = ref 0.0 in
  Obs.set_clock (fun () -> !t);
  let c = Obs.counter ~labels:[ ("instance", "fw0") ] "fw.herror_evals" in
  M.add c 123;
  let g = Obs.gauge "vec.allocations" in
  M.set g 4.0;
  M.observe (Obs.histogram "t.big") 1e30;
  (* occupies the overflow bucket *)
  Obs.with_span "fw.refresh" (fun () ->
      M.add c 7;
      t := !t +. 0.5)

let test_text_sink () =
  populate ();
  let buf = Buffer.create 256 in
  Sink.text buf;
  let out = Buffer.contents buf in
  Alcotest.(check bool) "counter line" true
    (contains out "fw.herror_evals{instance=\"fw0\"}");
  Alcotest.(check bool) "value" true (contains out "130");
  Alcotest.(check bool) "gauge line" true (contains out "vec.allocations");
  Alcotest.(check bool) "histogram summary" true (contains out "fw.refresh_duration")

let test_json_lines_sink () =
  populate ();
  let buf = Buffer.create 256 in
  Sink.json_lines buf;
  let out = Buffer.contents buf in
  let ls = lines out in
  Alcotest.(check bool) "several series" true (List.length ls >= 4);
  List.iter
    (fun l -> Alcotest.(check bool) (Printf.sprintf "valid JSON: %s" l) true (json_valid l))
    ls;
  Alcotest.(check bool) "counter series present" true
    (List.exists (fun l -> contains l "\"fw.herror_evals\"" && contains l "130") ls);
  Alcotest.(check bool) "histogram overflow bucket le is the string +Inf" true
    (List.exists (fun l -> contains l "\"+Inf\"") ls)

let test_trace_sink () =
  populate ();
  let buf = Buffer.create 256 in
  Sink.trace_json_lines buf;
  let ls = lines (Buffer.contents buf) in
  Alcotest.(check int) "one event" 1 (List.length ls);
  let l = List.hd ls in
  Alcotest.(check bool) "valid JSON" true (json_valid l);
  Alcotest.(check bool) "span name" true (contains l "\"fw.refresh\"");
  Alcotest.(check bool) "deltas carried" true (contains l "\"delta\":7")

let test_prometheus_sink () =
  populate ();
  let buf = Buffer.create 256 in
  Sink.prometheus buf;
  let out = Buffer.contents buf in
  Alcotest.(check bool) "counter family typed" true
    (contains out "# TYPE fw_herror_evals_total counter");
  Alcotest.(check bool) "counter sample with labels" true
    (contains out "fw_herror_evals_total{instance=\"fw0\"} 130");
  Alcotest.(check bool) "gauge sample" true (contains out "\nvec_allocations 4");
  Alcotest.(check bool) "histogram typed" true
    (contains out "# TYPE fw_refresh_duration histogram");
  Alcotest.(check bool) "cumulative buckets" true
    (contains out "fw_refresh_duration_bucket{le=\"0.5\"} 1");
  Alcotest.(check bool) "+Inf bucket always present" true
    (contains out "fw_refresh_duration_bucket{le=\"+Inf\"} 1");
  Alcotest.(check bool) "sum and count" true
    (contains out "fw_refresh_duration_sum 0.5"
    && contains out "fw_refresh_duration_count 1");
  Alcotest.(check bool) "span completions exported" true
    (contains out "obs_spans_total{span=\"fw.refresh\"} 1");
  Alcotest.(check string) "prom_name sanitisation" "fw_herror_evals"
    (Sink.prom_name "fw.herror_evals")

let test_render_facade () =
  populate ();
  List.iter
    (fun (s, fmt) ->
      Alcotest.(check bool) (s ^ " round-trips") true (Obs.format_of_string s = Some fmt);
      Alcotest.(check bool) (s ^ " renders") true (String.length (Obs.render fmt) > 0))
    [ ("text", Obs.Text); ("json", Obs.Json); ("prom", Obs.Prom) ];
  Alcotest.(check bool) "prometheus alias" true (Obs.format_of_string "prometheus" = Some Obs.Prom);
  Alcotest.(check bool) "unknown rejected" true (Obs.format_of_string "xml" = None);
  Alcotest.(check bool) "trace renders" true (String.length (Obs.render_trace ()) > 0)

let () =
  Alcotest.run "sh_obs"
    [
      ( "metric",
        [
          Alcotest.test_case "counter monotone" `Quick (clean test_counter_monotone);
          Alcotest.test_case "counter always live" `Quick (clean test_counter_always_live);
          Alcotest.test_case "gauge ops" `Quick (clean test_gauge_ops);
          Alcotest.test_case "histogram buckets" `Quick (clean test_histogram_buckets);
          Alcotest.test_case "histogram observe" `Quick (clean test_histogram_observe);
          Alcotest.test_case "histogram disabled no-op" `Quick (clean test_histogram_disabled_noop);
        ] );
      ( "registry",
        [
          Alcotest.test_case "get-or-create" `Quick (clean test_registry_get_or_create);
          Alcotest.test_case "validation" `Quick (clean test_registry_validation);
          Alcotest.test_case "snapshot sorted" `Quick (clean test_registry_snapshot_sorted);
          Alcotest.test_case "reset and clear" `Quick (clean test_registry_reset_and_clear);
          Alcotest.test_case "instance names" `Quick (clean test_instance_names);
        ] );
      ( "span",
        [
          Alcotest.test_case "disabled no-op" `Quick (clean test_span_disabled_noop);
          Alcotest.test_case "nesting" `Quick (clean test_span_nesting);
          Alcotest.test_case "side metrics" `Quick (clean test_span_side_metrics);
          Alcotest.test_case "exception" `Quick (clean test_span_exception);
          Alcotest.test_case "capacity" `Quick (clean test_span_capacity);
        ] );
      ( "sink",
        [
          Alcotest.test_case "text" `Quick (clean test_text_sink);
          Alcotest.test_case "json lines" `Quick (clean test_json_lines_sink);
          Alcotest.test_case "trace json lines" `Quick (clean test_trace_sink);
          Alcotest.test_case "prometheus" `Quick (clean test_prometheus_sink);
          Alcotest.test_case "render facade" `Quick (clean test_render_facade);
        ] );
    ]
