module Obs = Sh_obs.Obs
module M = Sh_obs.Metric
module R = Sh_obs.Registry
module Span = Sh_obs.Span
module Sink = Sh_obs.Sink
module L = Sh_obs.Latency

(* Every test starts from an empty registry, telemetry disabled, and the
   default clock; the registry is global so isolation is explicit. *)
let clean f () =
  Obs.clear ();
  Obs.set_enabled false;
  Obs.set_latency_enabled false;
  L.set_window 0;
  Obs.set_clock Sys.time;
  Span.set_capacity 4096;
  Fun.protect ~finally:(fun () ->
      Obs.clear ();
      Obs.set_enabled false;
      Obs.set_latency_enabled false;
      L.set_window 0;
      Obs.set_clock Sys.time)
    f

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Minimal JSON syntax checker for the json-lines sinks (the toolchain has
   no JSON library; this accepts exactly the RFC 8259 grammar). *)
let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let fail () = raise Exit in
  let peek () = if !pos < n then s.[!pos] else '\255' in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with ' ' | '\t' | '\n' | '\r' -> advance (); skip_ws () | _ -> ()
  in
  let expect c = if peek () = c then advance () else fail () in
  let lit w = String.iter (fun c -> if peek () = c then advance () else fail ()) w in
  let str () =
    expect '"';
    let rec go () =
      if !pos >= n then fail ();
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        if !pos >= n then fail ();
        advance ();
        go ()
      | _ -> advance (); go ()
    in
    go ()
  in
  let digits () =
    let d = ref 0 in
    while (match peek () with '0' .. '9' -> true | _ -> false) do
      advance ();
      incr d
    done;
    if !d = 0 then fail ()
  in
  let number () =
    if peek () = '-' then advance ();
    digits ();
    if peek () = '.' then begin advance (); digits () end;
    match peek () with
    | 'e' | 'E' ->
      advance ();
      (match peek () with '+' | '-' -> advance () | _ -> ());
      digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' -> obj ()
    | '[' -> arr ()
    | '"' -> str ()
    | 't' -> lit "true"
    | 'f' -> lit "false"
    | 'n' -> lit "null"
    | '-' | '0' .. '9' -> number ()
    | _ -> fail ()
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = '}' then advance ()
    else begin
      let rec fields () =
        skip_ws ();
        str ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with ',' -> advance (); fields () | '}' -> advance () | _ -> fail ()
      in
      fields ()
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = ']' then advance ()
    else begin
      let rec items () =
        value ();
        skip_ws ();
        match peek () with ',' -> advance (); items () | ']' -> advance () | _ -> fail ()
      in
      items ()
    end
  in
  match
    value ();
    skip_ws ();
    !pos = n
  with
  | b -> b
  | exception Exit -> false

let lines s = List.filter (fun l -> l <> "") (String.split_on_char '\n' s)

(* ------------------------------------------------------------- metrics *)

let test_counter_monotone () =
  let c = Obs.counter "t.count" in
  Alcotest.(check int) "starts at zero" 0 (M.value c);
  M.incr c;
  M.add c 4;
  Alcotest.(check int) "incr + add" 5 (M.value c);
  M.add c 0;
  Alcotest.(check int) "add zero ok" 5 (M.value c);
  Alcotest.check_raises "negative increment rejected"
    (Invalid_argument "Obs: counters are monotone, negative increment") (fun () -> M.add c (-1))

let test_counter_always_live () =
  (* counters back work_counters: they must count with telemetry off *)
  Alcotest.(check bool) "telemetry off" false (Obs.enabled ());
  let c = Obs.counter "t.live" in
  M.incr c;
  Alcotest.(check int) "counted while disabled" 1 (M.value c)

let test_gauge_ops () =
  let g = Obs.gauge "t.gauge" in
  M.set g 2.5;
  M.gadd g 1.0;
  M.gincr g;
  Alcotest.(check (float 1e-9)) "set/gadd/gincr" 4.5 (M.gvalue g)

let test_histogram_buckets () =
  (* bucket i covers (2^(i-41), 2^(i-40)]; exact powers of two land on
     their inclusive upper bound *)
  Alcotest.(check (float 0.0)) "le of bucket 40 is 1" 1.0 (M.bucket_le 40);
  Alcotest.(check (float 0.0)) "le of bucket 39 is 1/2" 0.5 (M.bucket_le 39);
  Alcotest.(check bool) "last le is +Inf" true (M.bucket_le (M.bucket_count - 1) = infinity);
  Alcotest.(check int) "1.0 -> bucket 40" 40 (M.bucket_index 1.0);
  Alcotest.(check int) "2.0 -> bucket 41" 41 (M.bucket_index 2.0);
  Alcotest.(check int) "1.5 -> bucket 41" 41 (M.bucket_index 1.5);
  Alcotest.(check int) "0.75 -> bucket 40" 40 (M.bucket_index 0.75);
  Alcotest.(check int) "0.5 -> bucket 39" 39 (M.bucket_index 0.5);
  Alcotest.(check int) "zero -> bucket 0" 0 (M.bucket_index 0.0);
  Alcotest.(check int) "negative -> bucket 0" 0 (M.bucket_index (-3.0));
  Alcotest.(check int) "tiny -> bucket 0" 0 (M.bucket_index 1e-30);
  Alcotest.(check int) "huge -> overflow bucket" (M.bucket_count - 1) (M.bucket_index 1e30);
  (* the bound itself is included, the next float is not *)
  let i = 45 in
  let le = M.bucket_le i in
  Alcotest.(check int) "bound inclusive" i (M.bucket_index le);
  Alcotest.(check int) "next float overflows" (i + 1)
    (M.bucket_index (Float.succ le))

let test_histogram_observe () =
  Obs.set_enabled true;
  let h = Obs.histogram "t.h" in
  List.iter (M.observe h) [ 1.0; 1.5; 3.0; 1e30 ];
  Alcotest.(check int) "count" 4 (M.hcount h);
  Alcotest.(check (float 1e20)) "sum" (1.0 +. 1.5 +. 3.0 +. 1e30) (M.hsum h);
  Alcotest.(check int) "cumulative at le=1" 1 (M.cumulative h 40);
  Alcotest.(check int) "cumulative at le=2" 2 (M.cumulative h 41);
  Alcotest.(check int) "cumulative at le=4" 3 (M.cumulative h 42);
  Alcotest.(check int) "cumulative at +Inf" 4 (M.cumulative h (M.bucket_count - 1))

let test_histogram_disabled_noop () =
  let h = Obs.histogram "t.h" in
  M.observe h 1.0;
  Alcotest.(check int) "no observations while disabled" 0 (M.hcount h);
  Alcotest.(check (float 0.0)) "no sum" 0.0 (M.hsum h)

(* ------------------------------------------------------------ registry *)

let test_registry_get_or_create () =
  let a = Obs.counter "t.c" in
  let b = Obs.counter "t.c" in
  Alcotest.(check bool) "same handle" true (a == b);
  (* label order never distinguishes series *)
  let l1 = Obs.counter ~labels:[ ("z", "1"); ("a", "2") ] "t.l" in
  let l2 = Obs.counter ~labels:[ ("a", "2"); ("z", "1") ] "t.l" in
  Alcotest.(check bool) "labels canonically sorted" true (l1 == l2);
  let other = Obs.counter ~labels:[ ("a", "3"); ("z", "1") ] "t.l" in
  Alcotest.(check bool) "different label value, different series" true (not (l1 == other));
  Alcotest.(check int) "three series" 3 (R.series_count ())

let test_registry_validation () =
  ignore (Obs.counter "t.c");
  Alcotest.check_raises "type clash"
    (Invalid_argument "Obs: metric \"t.c\" already registered with a different type") (fun () ->
      ignore (Obs.gauge "t.c"));
  Alcotest.check_raises "bad name"
    (Invalid_argument "Obs: metric name \"9bad\" must start with a letter") (fun () ->
      ignore (Obs.counter "9bad"));
  Alcotest.check_raises "bad char"
    (Invalid_argument "Obs: bad metric name \"a b\" (use [a-zA-Z0-9_.])") (fun () ->
      ignore (Obs.counter "a b"))

let test_registry_snapshot_sorted () =
  ignore (Obs.counter "t.b");
  ignore (Obs.counter "t.a");
  ignore (Obs.counter ~labels:[ ("instance", "x1") ] "t.a");
  ignore (Obs.counter ~labels:[ ("instance", "x0") ] "t.a");
  let names = List.map R.metric_name (R.snapshot ()) in
  Alcotest.(check (list string)) "sorted by name then labels"
    [ "t.a"; "t.a"; "t.a"; "t.b" ] names;
  match R.snapshot () with
  | _unlabelled :: second :: third :: _ ->
    Alcotest.(check (list (pair string string))) "label order within a name"
      [ ("instance", "x0") ] (R.metric_labels second);
    Alcotest.(check (list (pair string string))) "x1 after x0"
      [ ("instance", "x1") ] (R.metric_labels third)
  | _ -> Alcotest.fail "expected four series"

let test_registry_reset_and_clear () =
  Obs.set_enabled true;
  let c = Obs.counter "t.c" in
  let g = Obs.gauge "t.g" in
  let h = Obs.histogram "t.h" in
  M.add c 7;
  M.set g 3.0;
  M.observe h 1.0;
  Obs.reset ();
  Alcotest.(check int) "counter zeroed" 0 (M.value c);
  Alcotest.(check (float 0.0)) "gauge zeroed" 0.0 (M.gvalue g);
  Alcotest.(check int) "histogram zeroed" 0 (M.hcount h);
  Alcotest.(check int) "registrations survive reset" 3 (R.series_count ());
  Alcotest.(check bool) "reset returns the same handle" true (Obs.counter "t.c" == c);
  M.incr c;
  Obs.clear ();
  Alcotest.(check int) "clear drops registrations" 0 (R.series_count ());
  (* the old handle keeps counting but is detached from the registry *)
  M.incr c;
  Alcotest.(check int) "detached handle still counts" 2 (M.value c);
  Alcotest.(check bool) "re-registration is a fresh series" true (not (Obs.counter "t.c" == c))

let test_instance_names () =
  Alcotest.(check string) "first" "t0" (Obs.instance "t");
  Alcotest.(check string) "second" "t1" (Obs.instance "t");
  Alcotest.(check string) "per-prefix sequence" "u0" (Obs.instance "u");
  Obs.clear ();
  Alcotest.(check string) "clear resets sequences" "t0" (Obs.instance "t")

(* --------------------------------------------------------------- spans *)

let test_span_disabled_noop () =
  let r = Obs.with_span "t.sp" (fun () -> 41 + 1) in
  Alcotest.(check int) "result passes through" 42 r;
  Alcotest.(check int) "no events recorded" 0 (Span.trace_length ());
  Alcotest.(check int) "no series registered" 0 (R.series_count ())

let test_span_nesting () =
  Obs.set_enabled true;
  let t = ref 100.0 in
  Obs.set_clock (fun () -> !t);
  let c = Obs.counter "t.work" in
  Obs.with_span "outer" (fun () ->
      M.incr c;
      t := !t +. 1.0;
      Obs.with_span "inner" (fun () ->
          M.add c 2;
          t := !t +. 0.25);
      t := !t +. 1.0);
  match Span.trace () with
  | [ inner; outer ] ->
    Alcotest.(check string) "inner completes first" "inner" inner.Span.name;
    Alcotest.(check int) "inner seq" 1 inner.Span.seq;
    Alcotest.(check int) "inner depth" 1 inner.Span.depth;
    Alcotest.(check (float 1e-9)) "inner start" 101.0 inner.Span.start;
    Alcotest.(check (float 1e-9)) "inner duration" 0.25 inner.Span.duration;
    Alcotest.(check string) "outer name" "outer" outer.Span.name;
    Alcotest.(check int) "outer seq" 2 outer.Span.seq;
    Alcotest.(check int) "outer depth" 0 outer.Span.depth;
    Alcotest.(check (float 1e-9)) "outer duration" 2.25 outer.Span.duration;
    (* deltas are inclusive of children; obs.* bookkeeping is excluded *)
    Alcotest.(check (list (pair string int)))
      "inner deltas" [ ("t.work", 2) ]
      (List.map (fun (n, _, d) -> (n, d)) inner.Span.deltas);
    Alcotest.(check (list (pair string int)))
      "outer deltas include child's" [ ("t.work", 3) ]
      (List.map (fun (n, _, d) -> (n, d)) outer.Span.deltas)
  | evs -> Alcotest.fail (Printf.sprintf "expected 2 events, got %d" (List.length evs))

let test_span_side_metrics () =
  Obs.set_enabled true;
  let t = ref 0.0 in
  Obs.set_clock (fun () -> !t);
  Obs.with_span "t.op" (fun () -> t := !t +. 0.5);
  Obs.with_span "t.op" (fun () -> t := !t +. 0.5);
  (match R.find ~labels:[ ("span", "t.op") ] "obs.spans" with
  | Some (R.Counter c) -> Alcotest.(check int) "span completions counted" 2 (M.value c)
  | _ -> Alcotest.fail "obs.spans{span=t.op} missing");
  match R.find "t.op_duration" with
  | Some (R.Histogram h) ->
    Alcotest.(check int) "durations observed" 2 (M.hcount h);
    Alcotest.(check (float 1e-9)) "durations summed" 1.0 (M.hsum h)
  | _ -> Alcotest.fail "t.op_duration histogram missing"

let test_span_exception () =
  Obs.set_enabled true;
  Alcotest.check_raises "exception propagates" Exit (fun () ->
      Obs.with_span "t.fail" (fun () -> raise Exit));
  Alcotest.(check int) "failed span still recorded" 1 (Span.trace_length ());
  Alcotest.(check int) "depth unwound: next span is top-level" 0
    (Obs.with_span "t.after" (fun () -> ());
     match List.rev (Span.trace ()) with
     | ev :: _ -> ev.Span.depth
     | [] -> -1)

let test_span_capacity () =
  Obs.set_enabled true;
  Span.set_capacity 3;
  for i = 1 to 5 do
    Obs.with_span (Printf.sprintf "t.s%d" i) (fun () -> ())
  done;
  Alcotest.(check int) "bounded" 3 (Span.trace_length ());
  Alcotest.(check int) "drops counted" 2 (Span.dropped_events ());
  Alcotest.(check (list string)) "oldest dropped first" [ "t.s3"; "t.s4"; "t.s5" ]
    (List.map (fun e -> e.Span.name) (Span.trace ()));
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Obs: trace capacity must be >= 1") (fun () -> Span.set_capacity 0)

(* --------------------------------------------------------------- sinks *)

let populate () =
  Obs.set_enabled true;
  let t = ref 0.0 in
  Obs.set_clock (fun () -> !t);
  let c = Obs.counter ~labels:[ ("instance", "fw0") ] "fw.herror_evals" in
  M.add c 123;
  let g = Obs.gauge "vec.allocations" in
  M.set g 4.0;
  M.observe (Obs.histogram "t.big") 1e30;
  (* occupies the overflow bucket *)
  Obs.with_span "fw.refresh" (fun () ->
      M.add c 7;
      t := !t +. 0.5)

let test_text_sink () =
  populate ();
  let buf = Buffer.create 256 in
  Sink.text buf;
  let out = Buffer.contents buf in
  Alcotest.(check bool) "counter line" true
    (contains out "fw.herror_evals{instance=\"fw0\"}");
  Alcotest.(check bool) "value" true (contains out "130");
  Alcotest.(check bool) "gauge line" true (contains out "vec.allocations");
  Alcotest.(check bool) "histogram summary" true (contains out "fw.refresh_duration")

let test_json_lines_sink () =
  populate ();
  let buf = Buffer.create 256 in
  Sink.json_lines buf;
  let out = Buffer.contents buf in
  let ls = lines out in
  Alcotest.(check bool) "several series" true (List.length ls >= 4);
  List.iter
    (fun l -> Alcotest.(check bool) (Printf.sprintf "valid JSON: %s" l) true (json_valid l))
    ls;
  Alcotest.(check bool) "counter series present" true
    (List.exists (fun l -> contains l "\"fw.herror_evals\"" && contains l "130") ls);
  Alcotest.(check bool) "histogram overflow bucket le is the string +Inf" true
    (List.exists (fun l -> contains l "\"+Inf\"") ls)

let test_trace_sink () =
  populate ();
  let buf = Buffer.create 256 in
  Sink.trace_json_lines buf;
  let ls = lines (Buffer.contents buf) in
  Alcotest.(check int) "one event" 1 (List.length ls);
  let l = List.hd ls in
  Alcotest.(check bool) "valid JSON" true (json_valid l);
  Alcotest.(check bool) "span name" true (contains l "\"fw.refresh\"");
  Alcotest.(check bool) "deltas carried" true (contains l "\"delta\":7")

let test_prometheus_sink () =
  populate ();
  let buf = Buffer.create 256 in
  Sink.prometheus buf;
  let out = Buffer.contents buf in
  Alcotest.(check bool) "counter family typed" true
    (contains out "# TYPE fw_herror_evals_total counter");
  Alcotest.(check bool) "counter sample with labels" true
    (contains out "fw_herror_evals_total{instance=\"fw0\"} 130");
  Alcotest.(check bool) "gauge sample" true (contains out "\nvec_allocations 4");
  Alcotest.(check bool) "histogram typed" true
    (contains out "# TYPE fw_refresh_duration histogram");
  Alcotest.(check bool) "cumulative buckets" true
    (contains out "fw_refresh_duration_bucket{le=\"0.5\"} 1");
  Alcotest.(check bool) "+Inf bucket always present" true
    (contains out "fw_refresh_duration_bucket{le=\"+Inf\"} 1");
  Alcotest.(check bool) "sum and count" true
    (contains out "fw_refresh_duration_sum 0.5"
    && contains out "fw_refresh_duration_count 1");
  Alcotest.(check bool) "span completions exported" true
    (contains out "obs_spans_total{span=\"fw.refresh\"} 1");
  Alcotest.(check string) "prom_name sanitisation" "fw_herror_evals"
    (Sink.prom_name "fw.herror_evals")

let test_render_facade () =
  populate ();
  List.iter
    (fun (s, fmt) ->
      Alcotest.(check bool) (s ^ " round-trips") true (Obs.format_of_string s = Some fmt);
      Alcotest.(check bool) (s ^ " renders") true (String.length (Obs.render fmt) > 0))
    [ ("text", Obs.Text); ("json", Obs.Json); ("prom", Obs.Prom) ];
  Alcotest.(check bool) "prometheus alias" true (Obs.format_of_string "prometheus" = Some Obs.Prom);
  Alcotest.(check bool) "unknown rejected" true (Obs.format_of_string "xml" = None);
  Alcotest.(check bool) "trace renders" true (String.length (Obs.render_trace ()) > 0)

(* ------------------------------------------------- per-domain planes *)

(* Domain counts default to {2, 4}; the CI multicore smoke overrides them
   via SH_TEST_DOMAINS (comma-separated), same contract as test_par. *)
let domain_counts =
  match Sys.getenv_opt "SH_TEST_DOMAINS" with
  | None | Some "" -> [ 2; 4 ]
  | Some s -> List.filter_map int_of_string_opt (String.split_on_char ',' s)

(* Run [f d i] for i in 1..iters in each of [domains] spawned domains,
   released together through a barrier so the writes genuinely overlap. *)
let hammer ~domains ~iters f =
  let go = Atomic.make false in
  let workers =
    Array.init domains (fun d ->
        Domain.spawn (fun () ->
            while not (Atomic.get go) do
              Domain.cpu_relax ()
            done;
            for i = 1 to iters do
              f d i
            done))
  in
  Atomic.set go true;
  Array.iter Domain.join workers

let test_plane_no_lost_increments () =
  List.iter
    (fun d ->
      Obs.clear ();
      Obs.set_enabled true;
      let c = Obs.counter "plane.c" in
      let g = Obs.gauge "plane.g" in
      let h = Obs.histogram "plane.h" in
      let iters = 10_000 in
      let collisions0 = Obs.plane_collisions () in
      hammer ~domains:d ~iters (fun _ i ->
          M.incr c;
          M.gadd g 1.5;
          M.observe h (Float.of_int (i mod 7)));
      Alcotest.(check int)
        (Printf.sprintf "counter exact, %d domains" d)
        (d * iters) (M.value c);
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "gauge exact, %d domains" d)
        (1.5 *. Float.of_int (d * iters))
        (M.gvalue g);
      Alcotest.(check int)
        (Printf.sprintf "histogram count exact, %d domains" d)
        (d * iters) (M.hcount h);
      Alcotest.(check int)
        (Printf.sprintf "collision witness flat, %d domains" d)
        collisions0 (Obs.plane_collisions ()))
    domain_counts

let test_plane_snapshot_reset_under_writers () =
  List.iter
    (fun d ->
      Obs.clear ();
      Obs.set_enabled true;
      let c = Obs.counter "plane.live" in
      let stop = Atomic.make false in
      let workers =
        Array.init d (fun _ ->
            Domain.spawn (fun () ->
                while not (Atomic.get stop) do
                  M.incr c
                done))
      in
      (* concurrent snapshot / render / reset must neither deadlock nor
         tear: every read is a sane non-negative total *)
      for _ = 1 to 50 do
        Alcotest.(check bool) "mid-flight value sane" true (M.value c >= 0);
        Alcotest.(check bool) "text renders mid-flight" true
          (String.length (Obs.render Obs.Text) > 0);
        Alcotest.(check bool) "prom renders mid-flight" true
          (String.length (Obs.render Obs.Prom) > 0)
      done;
      Obs.reset ();
      Alcotest.(check bool) "readable after racy reset" true (M.value c >= 0);
      Atomic.set stop true;
      Array.iter Domain.join workers;
      (* writers quiescent: reset now observably zeroes the series *)
      Obs.reset ();
      Alcotest.(check int) (Printf.sprintf "reset to zero, %d domains" d) 0 (M.value c))
    domain_counts

(* ------------------------------------------------- dropped spans *)

let test_dropped_spans_overflow () =
  Obs.set_enabled true;
  Span.set_capacity 4;
  for i = 1 to 10 do
    Obs.with_span (Printf.sprintf "s%d" i) (fun () -> ())
  done;
  Alcotest.(check int) "ring keeps newest capacity" 4 (Span.trace_length ());
  Alcotest.(check int) "drops counted" 6 (Span.dropped_events ());
  Alcotest.(check int) "obs.dropped_spans counter" 6 (M.value (Obs.counter "obs.dropped_spans"));
  Alcotest.(check bool) "text sink exports drops" true
    (contains (Obs.render Obs.Text) "obs.dropped_spans");
  Alcotest.(check bool) "prom sink exports drops" true
    (contains (Obs.render Obs.Prom) "obs_dropped_spans_total 6");
  Alcotest.(check bool) "chrome trace carries the drop count" true
    (contains (Obs.render_chrome_trace ()) "\"dropped_spans\":\"6\"")

(* ------------------------------------------------- label escaping *)

let test_prom_label_escaping () =
  let hostile = "a\\b\"c\nd" in
  let c = Obs.counter ~labels:[ ("path", hostile) ] "esc.counter" in
  M.add c 3;
  let prom = Obs.render Obs.Prom in
  Alcotest.(check bool) "backslash, quote and newline escaped" true
    (contains prom "path=\"a\\\\b\\\"c\\nd\"");
  Alcotest.(check bool) "no raw newline survives inside a label value" false
    (contains prom "c\nd");
  let json = Obs.render Obs.Json in
  List.iter
    (fun l -> Alcotest.(check bool) "json line valid with hostile label" true (json_valid l))
    (lines json)

(* ------------------------------------------------- chrome trace *)

let test_chrome_trace_valid () =
  Alcotest.(check bool) "empty trace is valid JSON" true
    (json_valid (Obs.render_chrome_trace ()));
  Obs.set_enabled true;
  Obs.with_span "outer" (fun () -> Obs.with_span "inner" (fun () -> ()));
  let ct = Obs.render_chrome_trace () in
  Alcotest.(check bool) "trace is valid JSON" true (json_valid ct);
  Alcotest.(check bool) "has traceEvents" true (contains ct "\"traceEvents\"");
  Alcotest.(check bool) "labels its track" true (contains ct "domain-");
  Alcotest.(check bool) "complete events" true (contains ct "\"ph\":\"X\"");
  Alcotest.(check bool) "span names present" true (contains ct "\"name\":\"inner\"")

(* ------------------------------------------------- latency quantiles *)

let test_latency_basic () =
  Obs.set_latency_enabled true;
  let t = L.tracker ~epsilon:0.01 "lat.basic" in
  for i = 1 to 1000 do
    L.record t (Float.of_int i)
  done;
  Alcotest.(check int) "count" 1000 (L.count t);
  Alcotest.(check (float 1e-6)) "sum" 500500.0 (L.sum t);
  (match L.quantile t 0.5 with
  | None -> Alcotest.fail "median present"
  | Some v ->
    Alcotest.(check bool)
      (Printf.sprintf "median within rank error (got %g)" v)
      true
      (Float.abs (v -. 500.0) <= 25.0));
  L.record t (-1.0);
  L.record t Float.nan;
  Alcotest.(check int) "junk durations ignored" 1000 (L.count t);
  Obs.set_latency_enabled false;
  L.record t 5.0;
  Alcotest.(check int) "disabled record is a no-op" 1000 (L.count t);
  Alcotest.check_raises "epsilon validated"
    (Invalid_argument "Obs.Latency: epsilon must be in (0, 1)") (fun () ->
      ignore (L.tracker ~epsilon:0.0 "lat.bad"))

let test_latency_merged_domains () =
  List.iter
    (fun d ->
      Obs.clear ();
      Obs.set_latency_enabled true;
      let t = L.tracker ~epsilon:0.01 "lat.merged" in
      let per = 2000 in
      (* domain j records the arithmetic slice j, j+d, j+2d, ... so the
         union across domains is exactly 0 .. d*per-1 *)
      hammer ~domains:d ~iters:per (fun j i -> L.record t (Float.of_int (j + (d * (i - 1)))));
      Alcotest.(check int) (Printf.sprintf "merged count, %d domains" d) (d * per) (L.count t);
      match L.quantile t 0.5 with
      | None -> Alcotest.fail "merged median present"
      | Some v ->
        let n = Float.of_int (d * per) in
        Alcotest.(check bool)
          (Printf.sprintf "merged median within summed rank error, %d domains (got %g)" d v)
          true
          (Float.abs (v -. (n /. 2.0)) <= 0.05 *. n))
    domain_counts

let test_latency_window () =
  Obs.set_latency_enabled true;
  let t = L.tracker "lat.win" in
  L.set_window 2;
  L.record t 1.0;
  L.advance ();
  L.record t 2.0;
  L.advance ();
  L.record t 3.0;
  (* window of 2 epochs = the current one and its predecessor: {2, 3} *)
  (match L.quantile t 0.999 with
  | Some v -> Alcotest.(check (float 1e-9)) "windowed p999" 3.0 v
  | None -> Alcotest.fail "windowed p999 present");
  (match L.quantile t 0.5 with
  | Some v -> Alcotest.(check bool) "window excludes the old epoch" true (v >= 2.0)
  | None -> Alcotest.fail "windowed median present");
  Alcotest.(check int) "count stays all-time" 3 (L.count t);
  L.set_window 0;
  (match L.quantile t 0.001 with
  | Some v -> Alcotest.(check bool) "all-time sees the old epoch" true (v <= 1.0)
  | None -> Alcotest.fail "all-time quantile present");
  Alcotest.check_raises "window validated"
    (Invalid_argument "Obs.Latency: window must be >= 0") (fun () -> L.set_window (-1))

let test_latency_sinks () =
  Obs.set_latency_enabled true;
  let t = L.tracker "lat.sink" in
  for i = 1 to 100 do
    L.record t (Float.of_int i /. 100.0)
  done;
  let text = Obs.render Obs.Text in
  Alcotest.(check bool) "text has p50" true (contains text "p50=");
  Alcotest.(check bool) "text has p999" true (contains text "p999=");
  let prom = Obs.render Obs.Prom in
  Alcotest.(check bool) "prom summary type" true (contains prom "# TYPE lat_sink summary");
  Alcotest.(check bool) "prom quantile sample" true (contains prom "lat_sink{quantile=\"0.5\"}");
  Alcotest.(check bool) "prom count" true (contains prom "lat_sink_count 100");
  let json = Obs.render Obs.Json in
  List.iter
    (fun l -> Alcotest.(check bool) "json line valid" true (json_valid l))
    (lines json);
  Alcotest.(check bool) "json summary line" true (contains json "\"type\":\"summary\"")

(* Zero-sample reads: a tracker with no recorded durations — fresh, or
   with every sample aged out of the batch window — answers [None] from
   [quantile] and renders with quantiles {e absent} (not 0, not NaN) in
   all three sinks, while count and sum stay present.  This is the layer
   that keeps the raising [Gk.quantile]/[Gk.merged_quantile] contract
   away from exposition: a query-latency tracker that has seen no
   traffic yet must never take a sink down. *)
let test_latency_zero_sample_sinks () =
  Obs.set_latency_enabled true;
  let t = L.tracker "lat.empty" in
  Alcotest.(check int) "fresh count" 0 (L.count t);
  Alcotest.(check bool) "fresh quantile is None" true (L.quantile t 0.5 = None);
  let check_rendering tag =
    let text = Obs.render Obs.Text in
    Alcotest.(check bool) (tag ^ ": text line present") true (contains text "lat.empty");
    Alcotest.(check bool) (tag ^ ": text has no quantiles") false (contains text "p50=");
    let json = Obs.render Obs.Json in
    let l = List.find (fun l -> contains l "\"lat.empty\"") (lines json) in
    Alcotest.(check bool) (tag ^ ": json line valid") true (json_valid l);
    Alcotest.(check bool) (tag ^ ": json quantiles empty object") true
      (contains l "\"quantiles\":{}");
    let prom = Obs.render Obs.Prom in
    Alcotest.(check bool) (tag ^ ": prom type line") true
      (contains prom "# TYPE lat_empty summary");
    Alcotest.(check bool) (tag ^ ": prom count present") true (contains prom "lat_empty_count");
    Alcotest.(check bool) (tag ^ ": prom sum present") true (contains prom "lat_empty_sum");
    Alcotest.(check bool) (tag ^ ": prom has no quantile sample") false
      (contains prom "lat_empty{quantile")
  in
  check_rendering "fresh";
  (* samples that aged out of the batch window: all-time count/sum stay,
     windowed quantiles go absent again — same rendering as fresh *)
  L.set_window 1;
  L.record t 0.5;
  (match L.quantile t 0.5 with
  | Some v -> Alcotest.(check (float 1e-9)) "in-window quantile" 0.5 v
  | None -> Alcotest.fail "in-window quantile present");
  L.advance ();
  L.advance ();
  Alcotest.(check int) "all-time count survives the window" 1 (L.count t);
  Alcotest.(check bool) "aged-out quantile is None" true (L.quantile t 0.5 = None);
  check_rendering "aged-out";
  L.set_window 0;
  (* the strict contract the None guard wraps *)
  Alcotest.check_raises "empty merged summary raises underneath"
    (Invalid_argument "Gk.merged_quantile: empty summaries") (fun () ->
      ignore (Sh_gk.Gk.merged_quantile [] 0.5))

let test_latency_time_and_reset () =
  Obs.set_latency_enabled true;
  let now = ref 10.0 in
  Obs.set_clock (fun () -> !now);
  let t = L.tracker "lat.time" in
  let v =
    L.time t (fun () ->
        now := !now +. 0.25;
        42)
  in
  Alcotest.(check int) "time returns the result" 42 v;
  Alcotest.(check int) "time recorded" 1 (L.count t);
  Alcotest.(check (float 1e-9)) "elapsed recorded" 0.25 (L.sum t);
  (try L.time t (fun () -> now := !now +. 1.0; failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "recorded on exception" 2 (L.count t);
  Obs.reset ();
  Alcotest.(check int) "reset forgets durations" 0 (L.count t);
  Alcotest.(check bool) "registration survives reset" true (L.tracker "lat.time" == t)

let () =
  Alcotest.run "sh_obs"
    [
      ( "metric",
        [
          Alcotest.test_case "counter monotone" `Quick (clean test_counter_monotone);
          Alcotest.test_case "counter always live" `Quick (clean test_counter_always_live);
          Alcotest.test_case "gauge ops" `Quick (clean test_gauge_ops);
          Alcotest.test_case "histogram buckets" `Quick (clean test_histogram_buckets);
          Alcotest.test_case "histogram observe" `Quick (clean test_histogram_observe);
          Alcotest.test_case "histogram disabled no-op" `Quick (clean test_histogram_disabled_noop);
        ] );
      ( "registry",
        [
          Alcotest.test_case "get-or-create" `Quick (clean test_registry_get_or_create);
          Alcotest.test_case "validation" `Quick (clean test_registry_validation);
          Alcotest.test_case "snapshot sorted" `Quick (clean test_registry_snapshot_sorted);
          Alcotest.test_case "reset and clear" `Quick (clean test_registry_reset_and_clear);
          Alcotest.test_case "instance names" `Quick (clean test_instance_names);
        ] );
      ( "span",
        [
          Alcotest.test_case "disabled no-op" `Quick (clean test_span_disabled_noop);
          Alcotest.test_case "nesting" `Quick (clean test_span_nesting);
          Alcotest.test_case "side metrics" `Quick (clean test_span_side_metrics);
          Alcotest.test_case "exception" `Quick (clean test_span_exception);
          Alcotest.test_case "capacity" `Quick (clean test_span_capacity);
        ] );
      ( "sink",
        [
          Alcotest.test_case "text" `Quick (clean test_text_sink);
          Alcotest.test_case "json lines" `Quick (clean test_json_lines_sink);
          Alcotest.test_case "trace json lines" `Quick (clean test_trace_sink);
          Alcotest.test_case "prometheus" `Quick (clean test_prometheus_sink);
          Alcotest.test_case "render facade" `Quick (clean test_render_facade);
          Alcotest.test_case "prom label escaping" `Quick (clean test_prom_label_escaping);
          Alcotest.test_case "chrome trace" `Quick (clean test_chrome_trace_valid);
        ] );
      ( "plane",
        [
          Alcotest.test_case "no lost increments" `Quick (clean test_plane_no_lost_increments);
          Alcotest.test_case "snapshot and reset under writers" `Quick
            (clean test_plane_snapshot_reset_under_writers);
          Alcotest.test_case "dropped spans on overflow" `Quick
            (clean test_dropped_spans_overflow);
        ] );
      ( "latency",
        [
          Alcotest.test_case "basic quantiles" `Quick (clean test_latency_basic);
          Alcotest.test_case "merged across domains" `Quick (clean test_latency_merged_domains);
          Alcotest.test_case "batch window" `Quick (clean test_latency_window);
          Alcotest.test_case "time and reset" `Quick (clean test_latency_time_and_reset);
          Alcotest.test_case "sinks" `Quick (clean test_latency_sinks);
          Alcotest.test_case "zero-sample sinks" `Quick (clean test_latency_zero_sample_sinks);
        ] );
    ]
