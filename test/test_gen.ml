module Rng = Sh_util.Rng
module Source = Sh_gen.Source
module W = Sh_gen.Workloads

let is_integer v = Float.equal v (Float.round v)

let test_source_of_array_cycles () =
  let s = Source.of_array [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check (array (float 1e-9)))
    "cycles" [| 1.0; 2.0; 3.0; 1.0; 2.0 |] (Source.take s 5)

let test_source_combinators () =
  let s = Source.map (fun x -> 2.0 *. x) (Source.of_array [| 1.0; 2.0 |]) in
  Alcotest.(check (array (float 1e-9))) "map" [| 2.0; 4.0 |] (Source.take s 2);
  let s2 = Source.add (Source.of_array [| 1.0 |]) (Source.of_array [| 10.0 |]) in
  Helpers.check_close "add" 11.0 (s2 ());
  let s3 = Source.clamp ~lo:0.0 ~hi:1.0 (Source.of_array [| -5.0; 0.5; 7.0 |]) in
  Alcotest.(check (array (float 1e-9))) "clamp" [| 0.0; 0.5; 1.0 |] (Source.take s3 3);
  let s4 = Source.quantize (Source.of_array [| 1.4; 1.6 |]) in
  Alcotest.(check (array (float 1e-9))) "quantize" [| 1.0; 2.0 |] (Source.take s4 2)

let test_source_drop () =
  let s = Source.of_array [| 1.0; 2.0; 3.0 |] in
  Source.drop s 2;
  Helpers.check_close "after drop" 3.0 (s ())

let test_file_roundtrip () =
  let path = Filename.temp_file "shtest" ".txt" in
  let data = [| 1.5; -2.0; 3.25 |] in
  Source.to_file path data;
  let back = Source.of_file path in
  Sys.remove path;
  Alcotest.(check (array (float 1e-9))) "roundtrip" data back

let test_file_comments () =
  let path = Filename.temp_file "shtest" ".txt" in
  let oc = open_out path in
  output_string oc "# header\n1.0\n\n2.0\n";
  close_out oc;
  let back = Source.of_file path in
  Sys.remove path;
  Alcotest.(check (array (float 1e-9))) "skips comments" [| 1.0; 2.0 |] back

let deterministic make =
  let a = Source.take (make (Rng.create ~seed:99)) 200 in
  let b = Source.take (make (Rng.create ~seed:99)) 200 in
  a = b

let test_network_deterministic () =
  Alcotest.(check bool) "same seed, same stream" true
    (deterministic (fun rng -> W.network rng W.default_network))

let test_network_bounds_and_integers () =
  let rng = Rng.create ~seed:7 in
  let s = W.network rng W.default_network in
  let xs = Source.take s 5000 in
  Alcotest.(check bool) "bounded" true
    (Array.for_all (fun v -> v >= 0.0 && v <= W.default_network.W.value_max) xs);
  Alcotest.(check bool) "integers" true (Array.for_all is_integer xs)

let test_network_not_constant () =
  let rng = Rng.create ~seed:7 in
  let xs = Source.take (W.network rng W.default_network) 2000 in
  Alcotest.(check bool) "has variance" true (Sh_util.Stats.stddev xs > 1.0)

let test_random_walk () =
  let rng = Rng.create ~seed:3 in
  let xs = Source.take (W.random_walk rng ~start:100.0 ~step_stddev:2.0 ~lo:0.0 ~hi:200.0 ()) 5000 in
  Alcotest.(check bool) "bounded" true (Array.for_all (fun v -> v >= 0.0 && v <= 200.0) xs);
  Alcotest.(check bool) "integers" true (Array.for_all is_integer xs);
  (* consecutive steps are small *)
  let max_step = ref 0.0 in
  for i = 1 to Array.length xs - 1 do
    max_step := Float.max !max_step (Float.abs (xs.(i) -. xs.(i - 1)))
  done;
  Alcotest.(check bool) "steps bounded" true (!max_step < 50.0)

let test_step_signal_piecewise () =
  let rng = Rng.create ~seed:11 in
  let xs = Source.take (W.step_signal rng ~segment_mean:50 ~noise_stddev:0.0 ()) 2000 in
  (* With zero noise the signal is exactly piecewise constant: the number
     of distinct adjacent changes should be near 2000/50. *)
  let changes = ref 0 in
  for i = 1 to Array.length xs - 1 do
    if xs.(i) <> xs.(i - 1) then incr changes
  done;
  Alcotest.(check bool) "few changes" true (!changes < 120);
  Alcotest.(check bool) "some changes" true (!changes > 5)

let test_click_counts_nonneg () =
  let rng = Rng.create ~seed:13 in
  let xs = Source.take (W.click_counts rng ()) 2000 in
  Alcotest.(check bool) "non-negative integers" true
    (Array.for_all (fun v -> v >= 0.0 && is_integer v) xs)

let test_uniform_noise () =
  let rng = Rng.create ~seed:17 in
  let xs = Source.take (W.uniform_noise rng ~lo:0.0 ~hi:100.0) 5000 in
  Alcotest.(check bool) "bounded" true (Array.for_all (fun v -> v >= 0.0 && v <= 100.0) xs);
  Alcotest.(check bool) "roughly uniform mean" true (Float.abs (Sh_util.Stats.mean xs -. 50.0) < 3.0)

let test_series_family_shapes () =
  let rng = Rng.create ~seed:19 in
  let fam = W.series_family rng ~count:12 ~len:64 ~shapes:3 ~noise:1.0 in
  Alcotest.(check int) "count" 12 (Array.length fam);
  Array.iter (fun s -> Alcotest.(check int) "len" 64 (Array.length s)) fam;
  (* Series sharing a prototype (indices congruent mod shapes) must be far
     closer than series from different prototypes, on average. *)
  let dist a b =
    let acc = ref 0.0 in
    Array.iteri (fun i x -> acc := !acc +. ((x -. b.(i)) ** 2.0)) a;
    sqrt !acc
  in
  let same = dist fam.(0) fam.(3) and diff = dist fam.(0) fam.(1) in
  Alcotest.(check bool) "ground truth separation" true (same *. 3.0 < diff)

let test_step_family_structure () =
  let rng = Rng.create ~seed:23 in
  let fam = W.step_family rng ~count:10 ~len:128 ~shapes:2 ~steps:6 ~noise:0.0 in
  Alcotest.(check int) "count" 10 (Array.length fam);
  (* noiseless copies of the same prototype are identical *)
  Alcotest.(check (array (float 1e-9))) "same prototype" fam.(0) fam.(2);
  (* a noiseless prototype has at most steps distinct adjacent changes *)
  let changes = ref 0 in
  for i = 1 to 127 do
    if fam.(0).(i) <> fam.(0).(i - 1) then incr changes
  done;
  Alcotest.(check bool) "piecewise constant" true (!changes <= 5)

let test_step_family_separation () =
  let rng = Rng.create ~seed:24 in
  let fam = W.step_family rng ~count:8 ~len:256 ~shapes:4 ~steps:8 ~noise:2.0 in
  let dist a b =
    let acc = ref 0.0 in
    Array.iteri (fun i x -> acc := !acc +. ((x -. b.(i)) ** 2.0)) a;
    sqrt !acc
  in
  let same = dist fam.(0) fam.(4) and diff = dist fam.(0) fam.(1) in
  Alcotest.(check bool) "same shape much closer" true (same *. 3.0 < diff)

let test_series_family_validation () =
  let rng = Rng.create ~seed:1 in
  Alcotest.check_raises "bad sizes"
    (Invalid_argument "Workloads.series_family: all sizes must be positive") (fun () ->
      ignore (W.series_family rng ~count:0 ~len:4 ~shapes:1 ~noise:0.0))

let () =
  Alcotest.run "sh_gen"
    [
      ( "source",
        [
          Alcotest.test_case "of_array cycles" `Quick test_source_of_array_cycles;
          Alcotest.test_case "combinators" `Quick test_source_combinators;
          Alcotest.test_case "drop" `Quick test_source_drop;
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
          Alcotest.test_case "file comments" `Quick test_file_comments;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "network deterministic" `Quick test_network_deterministic;
          Alcotest.test_case "network bounds" `Quick test_network_bounds_and_integers;
          Alcotest.test_case "network varies" `Quick test_network_not_constant;
          Alcotest.test_case "random walk" `Quick test_random_walk;
          Alcotest.test_case "step signal" `Quick test_step_signal_piecewise;
          Alcotest.test_case "click counts" `Quick test_click_counts_nonneg;
          Alcotest.test_case "uniform noise" `Quick test_uniform_noise;
          Alcotest.test_case "series family" `Quick test_series_family_shapes;
          Alcotest.test_case "step family structure" `Quick test_step_family_structure;
          Alcotest.test_case "step family separation" `Quick test_step_family_separation;
          Alcotest.test_case "series family validation" `Quick test_series_family_validation;
        ] );
    ]
