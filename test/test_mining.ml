module CD = Sh_mining.Change_detector
module KM = Sh_mining.Stream_kmeans
module HH = Sh_mining.Heavy_hitters
module Rng = Sh_util.Rng

(* -------------------------------------------------------- change detector *)

let test_cd_stable_on_stationary () =
  let cd = CD.create ~window:128 ~buckets:8 ~epsilon:0.2 ~threshold:30.0 () in
  let rng = Rng.create ~seed:1 in
  let drifted = ref false in
  for _ = 1 to 2000 do
    match CD.push cd (100.0 +. Rng.gaussian rng ~mean:0.0 ~stddev:5.0) with
    | CD.Stable -> ()
    | CD.Drift _ -> drifted := true
  done;
  Alcotest.(check bool) "no drift on stationary stream" false !drifted

let test_cd_detects_level_shift () =
  let cd = CD.create ~window:128 ~buckets:8 ~epsilon:0.2 ~threshold:30.0 () in
  let rng = Rng.create ~seed:2 in
  let first_alert = ref None in
  for t = 1 to 3000 do
    let base = if t <= 1500 then 100.0 else 400.0 in
    (match CD.push cd (base +. Rng.gaussian rng ~mean:0.0 ~stddev:5.0) with
    | CD.Stable -> ()
    | CD.Drift _ -> if !first_alert = None then first_alert := Some t)
  done;
  match !first_alert with
  | None -> Alcotest.fail "level shift missed"
  | Some t ->
    Alcotest.(check bool)
      (Printf.sprintf "alert at t=%d shortly after the shift" t)
      true
      (t > 1500 && t < 1500 + 300)

let test_cd_validation () =
  Alcotest.check_raises "bad threshold"
    (Invalid_argument "Change_detector.create: threshold must be > 0") (fun () ->
      ignore (CD.create ~window:16 ~buckets:2 ~epsilon:0.1 ~threshold:0.0 ()))

let test_cd_last_distance_tracks () =
  let cd = CD.create ~window:64 ~buckets:4 ~epsilon:0.2 ~threshold:1e9 ~check_every:16 () in
  Helpers.check_close "initial distance" 0.0 (CD.last_distance cd);
  (* stop while the recent window is post-shift and the reference window
     still straddles it, so the evaluated distance is large *)
  for t = 1 to 288 do
    ignore (CD.push cd (if t <= 200 then 0.0 else 100.0))
  done;
  Alcotest.(check bool) "distance grew across the shift" true (CD.last_distance cd > 10.0);
  Alcotest.(check int) "points counted" 288 (CD.points_seen cd)

(* --------------------------------------------------------- stream k-means *)

(* Three well-separated Gaussian blobs in 2D. *)
let blob_stream ~seed ~n =
  let rng = Rng.create ~seed in
  let centres = [| (0.0, 0.0); (100.0, 0.0); (0.0, 100.0) |] in
  Array.init n (fun i ->
      let cx, cy = centres.(i mod 3) in
      [| cx +. Rng.gaussian rng ~mean:0.0 ~stddev:3.0; cy +. Rng.gaussian rng ~mean:0.0 ~stddev:3.0 |])

let test_kmeans_offline_blobs () =
  let points = blob_stream ~seed:3 ~n:600 in
  let centres = KM.kmeans (Rng.create ~seed:4) ~k:3 points in
  Alcotest.(check int) "three centres" 3 (Array.length centres);
  (* every centre should sit near one blob centre *)
  Array.iter
    (fun (c, w) ->
      let near (x, y) = Float.abs (c.(0) -. x) < 10.0 && Float.abs (c.(1) -. y) < 10.0 in
      Alcotest.(check bool) "centre near a blob" true
        (near (0.0, 0.0) || near (100.0, 0.0) || near (0.0, 100.0));
      Alcotest.(check bool) "weight positive" true (w > 0.0))
    centres

let test_stream_kmeans_matches_batch_quality () =
  let points = blob_stream ~seed:5 ~n:3000 in
  let stream = KM.create (Rng.create ~seed:6) ~k:3 ~dim:2 ~chunk_size:200 in
  Array.iter (KM.add stream) points;
  let stream_cost = KM.cost stream points in
  (* batch baseline on the full data *)
  let batch = KM.kmeans (Rng.create ~seed:7) ~k:3 points in
  let batch_centres = Array.map fst batch in
  let batch_cost =
    Array.fold_left
      (fun acc p ->
        let best = ref infinity in
        Array.iter
          (fun c ->
            let d =
              ((p.(0) -. c.(0)) *. (p.(0) -. c.(0))) +. ((p.(1) -. c.(1)) *. (p.(1) -. c.(1)))
            in
            if d < !best then best := d)
          batch_centres;
        acc +. !best)
      0.0 points
  in
  Alcotest.(check bool)
    (Printf.sprintf "stream cost %.0f within 2x of batch %.0f" stream_cost batch_cost)
    true
    (stream_cost <= (2.0 *. batch_cost) +. 1e-6)

let test_stream_kmeans_assign () =
  let stream = KM.create (Rng.create ~seed:8) ~k:3 ~dim:2 ~chunk_size:100 in
  Array.iter (KM.add stream) (blob_stream ~seed:9 ~n:900);
  (* points from the same blob must map to the same cluster *)
  let a1 = KM.assign stream [| 0.0; 1.0 |] and a2 = KM.assign stream [| 2.0; -1.0 |] in
  let b1 = KM.assign stream [| 99.0; 1.0 |] in
  Alcotest.(check int) "same blob, same cluster" a1 a2;
  Alcotest.(check bool) "different blobs differ" true (a1 <> b1)

let test_stream_kmeans_bounded_memory () =
  let stream = KM.create (Rng.create ~seed:10) ~k:4 ~dim:2 ~chunk_size:64 in
  Array.iter (KM.add stream) (blob_stream ~seed:11 ~n:20_000);
  Alcotest.(check bool) "centroids capped at k" true (Array.length (KM.centroids stream) <= 4);
  Alcotest.(check int) "points counted" 20_000 (KM.points_seen stream)

let test_stream_kmeans_validation () =
  Alcotest.check_raises "chunk < k"
    (Invalid_argument "Stream_kmeans.create: chunk_size must be >= k") (fun () ->
      ignore (KM.create (Rng.create ~seed:1) ~k:5 ~dim:2 ~chunk_size:3));
  let s = KM.create (Rng.create ~seed:1) ~k:2 ~dim:2 ~chunk_size:10 in
  Alcotest.check_raises "dim mismatch" (Invalid_argument "Stream_kmeans.add: dimension mismatch")
    (fun () -> KM.add s [| 1.0 |]);
  Alcotest.check_raises "assign before data"
    (Invalid_argument "Stream_kmeans.assign: no points seen") (fun () ->
      ignore (KM.assign s [| 0.0; 0.0 |]))

(* ---------------------------------------------------------- heavy hitters *)

let test_hh_exact_when_small () =
  let h = HH.create ~capacity:10 in
  List.iter (fun v -> HH.add h v) [ 1.0; 2.0; 1.0; 3.0; 1.0; 2.0 ];
  Alcotest.(check int) "count of 1" 3 (HH.estimate h 1.0);
  Alcotest.(check int) "count of 2" 2 (HH.estimate h 2.0);
  Alcotest.(check int) "total" 6 (HH.total h)

let test_hh_guarantee () =
  (* value 7 occurs 30% of the time among uniform noise; a capacity-9
     summary must retain it with estimate within n/10 of truth *)
  let h = HH.create ~capacity:9 in
  let rng = Rng.create ~seed:12 in
  let n = 10_000 in
  let true_sevens = ref 0 in
  for _ = 1 to n do
    if Rng.float rng 1.0 < 0.3 then begin
      incr true_sevens;
      HH.add h 7.0
    end
    else HH.add h (Float.of_int (100 + Rng.int rng 1000))
  done;
  let est = HH.estimate h 7.0 in
  Alcotest.(check bool) "estimate never exceeds truth" true (est <= !true_sevens);
  Alcotest.(check bool)
    (Printf.sprintf "estimate %d within n/(k+1) of truth %d" est !true_sevens)
    true
    (!true_sevens - est <= n / 10);
  (* and it must appear in the heavy hitters at threshold 0.15 *)
  Alcotest.(check bool) "reported as heavy" true
    (List.mem_assoc 7.0 (HH.heavy_hitters h ~threshold:0.15))

let test_hh_batched_counts () =
  let h = HH.create ~capacity:4 in
  HH.add ~count:100 h 1.0;
  HH.add ~count:50 h 2.0;
  Alcotest.(check int) "batched count" 100 (HH.estimate h 1.0);
  Alcotest.(check int) "total" 150 (HH.total h)

let test_hh_tracked_sorted () =
  let h = HH.create ~capacity:8 in
  List.iter (fun v -> HH.add h v) [ 5.0; 5.0; 5.0; 2.0; 2.0; 9.0 ];
  match HH.tracked h with
  | (v1, c1) :: (v2, c2) :: _ ->
    Alcotest.(check (pair (float 0.0) int)) "most frequent first" (5.0, 3) (v1, c1);
    Alcotest.(check (pair (float 0.0) int)) "second" (2.0, 2) (v2, c2)
  | _ -> Alcotest.fail "expected at least two tracked values"

let test_hh_work_counters () =
  let h = HH.create ~capacity:2 in
  HH.add h 1.0;
  HH.add h 2.0;
  (* third distinct value with both slots taken: one Misra-Gries decrement
     round that evicts both zeroed counters *)
  HH.add h 3.0;
  let c = HH.work_counters h in
  Alcotest.(check int) "observations equal total" (HH.total h) c.HH.observations;
  Alcotest.(check int) "observations" 3 c.HH.observations;
  Alcotest.(check int) "adds" 3 c.HH.adds;
  Alcotest.(check int) "decrement rounds" 1 c.HH.decrement_rounds;
  Alcotest.(check int) "evictions" 2 c.HH.evictions;
  (* the counters are registry series, like Fixed_window's *)
  let found = ref false in
  Sh_obs.Registry.iter (fun m ->
      match m with
      | Sh_obs.Registry.Counter cc
        when cc.Sh_obs.Metric.c_name = "hh.observations"
             && Sh_obs.Metric.value cc = c.HH.observations ->
        found := true
      | _ -> ());
  Alcotest.(check bool) "observations visible in registry" true !found

let prop_hh_underestimates =
  Helpers.qcheck_case ~count:50 ~name:"MG estimates never exceed true counts"
    QCheck2.Gen.(
      let* values = list_size (int_range 1 500) (int_range 0 20) in
      let* cap = int_range 1 8 in
      return (values, cap))
    (fun (values, cap) ->
      let h = HH.create ~capacity:cap in
      List.iter (fun v -> HH.add h (Float.of_int v)) values;
      let n = List.length values in
      List.for_all
        (fun v ->
          let truth = List.length (List.filter (( = ) v) values) in
          let est = HH.estimate h (Float.of_int v) in
          est <= truth && truth - est <= n / (cap + 1))
        (List.sort_uniq compare values))

let () =
  Alcotest.run "sh_mining"
    [
      ( "change_detector",
        [
          Alcotest.test_case "stable" `Quick test_cd_stable_on_stationary;
          Alcotest.test_case "detects shift" `Quick test_cd_detects_level_shift;
          Alcotest.test_case "validation" `Quick test_cd_validation;
          Alcotest.test_case "distance tracking" `Quick test_cd_last_distance_tracks;
        ] );
      ( "stream_kmeans",
        [
          Alcotest.test_case "offline blobs" `Quick test_kmeans_offline_blobs;
          Alcotest.test_case "stream vs batch" `Quick test_stream_kmeans_matches_batch_quality;
          Alcotest.test_case "assign" `Quick test_stream_kmeans_assign;
          Alcotest.test_case "bounded memory" `Quick test_stream_kmeans_bounded_memory;
          Alcotest.test_case "validation" `Quick test_stream_kmeans_validation;
        ] );
      ( "heavy_hitters",
        [
          Alcotest.test_case "exact small" `Quick test_hh_exact_when_small;
          Alcotest.test_case "guarantee" `Quick test_hh_guarantee;
          Alcotest.test_case "batched" `Quick test_hh_batched_counts;
          Alcotest.test_case "sorted" `Quick test_hh_tracked_sorted;
          Alcotest.test_case "work counters" `Quick test_hh_work_counters;
          prop_hh_underestimates;
        ] );
    ]
