module P = Sh_prefix.Prefix_sums
module SP = Sh_prefix.Sliding_prefix

(* ---------------------------------------------------------- Prefix_sums *)

let test_basic () =
  let p = P.make [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check int) "length" 4 (P.length p);
  Helpers.check_close "full sum" 10.0 (P.range_sum p ~lo:1 ~hi:4);
  Helpers.check_close "sub sum" 5.0 (P.range_sum p ~lo:2 ~hi:3);
  Helpers.check_close "single" 3.0 (P.range_sum p ~lo:3 ~hi:3);
  Helpers.check_close "empty" 0.0 (P.range_sum p ~lo:3 ~hi:2);
  Helpers.check_close "sqsum" 13.0 (P.range_sqsum p ~lo:2 ~hi:3);
  Helpers.check_close "mean" 2.5 (P.range_mean p ~lo:1 ~hi:4)

let test_bounds_checked () =
  let p = P.make [| 1.0; 2.0 |] in
  Alcotest.check_raises "lo too small" (Invalid_argument "Prefix_sums: range out of bounds")
    (fun () -> ignore (P.range_sum p ~lo:0 ~hi:1));
  Alcotest.check_raises "hi too big" (Invalid_argument "Prefix_sums: range out of bounds")
    (fun () -> ignore (P.range_sum p ~lo:1 ~hi:3))

let test_of_sub () =
  let data = [| 9.0; 1.0; 2.0; 3.0; 9.0 |] in
  let p = P.of_sub data ~pos:1 ~len:3 in
  Alcotest.(check int) "length" 3 (P.length p);
  Helpers.check_close "sum" 6.0 (P.range_sum p ~lo:1 ~hi:3)

let test_sqerror_constant_zero () =
  let p = P.make [| 5.0; 5.0; 5.0 |] in
  Helpers.check_close "constant data has zero sqerror" 0.0 (P.sqerror p ~lo:1 ~hi:3)

let test_sqerror_known () =
  (* values 1,3: mean 2, SSE = 1 + 1 = 2 *)
  let p = P.make [| 1.0; 3.0 |] in
  Helpers.check_close "sse" 2.0 (P.sqerror p ~lo:1 ~hi:2)

let prop_sums_match_naive =
  Helpers.qcheck_case ~name:"range_sum matches naive" (Helpers.gen_data ()) (fun data ->
      let p = P.make data in
      let n = Array.length data in
      let ok = ref true in
      for lo = 1 to n do
        for hi = lo to n do
          if not (Helpers.close (P.range_sum p ~lo ~hi) (Helpers.naive_range_sum data lo hi))
          then ok := false
        done
      done;
      !ok)

let prop_sqerror_matches_naive =
  Helpers.qcheck_case ~name:"sqerror matches naive SSE-about-mean" (Helpers.gen_data ())
    (fun data ->
      let p = P.make data in
      let n = Array.length data in
      let ok = ref true in
      for lo = 1 to n do
        for hi = lo to n do
          if not (Helpers.close ~eps:1e-6 (P.sqerror p ~lo ~hi) (Helpers.naive_sqerror data lo hi))
          then ok := false
        done
      done;
      !ok)

(* The paper's first monotonicity lemma: for fixed j, SQERROR[i+1, j] is
   non-increasing as i increases. *)
let prop_sqerror_monotone =
  Helpers.qcheck_case ~name:"SQERROR[i+1,j] non-increasing in i" (Helpers.gen_data ())
    (fun data ->
      let p = P.make data in
      let n = Array.length data in
      let ok = ref true in
      let j = n in
      for i = 1 to n - 1 do
        if P.sqerror p ~lo:(i + 1) ~hi:j > P.sqerror p ~lo:i ~hi:j +. 1e-6 then ok := false
      done;
      !ok)

(* -------------------------------------------------------- Sliding_prefix *)

let test_sliding_basic () =
  let sp = SP.create ~capacity:3 in
  Alcotest.(check int) "capacity" 3 (SP.capacity sp);
  Alcotest.(check int) "empty" 0 (SP.length sp);
  SP.push sp 1.0;
  SP.push sp 2.0;
  Alcotest.(check int) "partial" 2 (SP.length sp);
  Helpers.check_close "partial sum" 3.0 (SP.range_sum sp ~lo:1 ~hi:2);
  SP.push sp 3.0;
  SP.push sp 4.0;
  (* window is now 2,3,4 *)
  Alcotest.(check int) "full" 3 (SP.length sp);
  Helpers.check_close "window sum" 9.0 (SP.range_sum sp ~lo:1 ~hi:3);
  Helpers.check_close "oldest" 2.0 (SP.range_sum sp ~lo:1 ~hi:1);
  Helpers.check_close "sqsum" 25.0 (SP.range_sqsum sp ~lo:2 ~hi:3)

let test_sliding_bounds () =
  let sp = SP.create ~capacity:2 in
  SP.push sp 1.0;
  Alcotest.check_raises "beyond length" (Invalid_argument "Sliding_prefix: range out of bounds")
    (fun () -> ignore (SP.range_sum sp ~lo:1 ~hi:2))

(* Drive a long stream through a small window, crossing many rebase
   boundaries, and compare every range query against a naive recompute. *)
let prop_sliding_matches_naive =
  Helpers.qcheck_case ~count:50 ~name:"sliding window matches naive across rebase"
    QCheck2.Gen.(
      let* cap = int_range 1 12 in
      let* stream = array_size (int_range 1 100) (int_range 0 50) in
      return (cap, Array.map Float.of_int stream))
    (fun (cap, stream) ->
      let sp = SP.create ~capacity:cap in
      let ok = ref true in
      Array.iteri
        (fun i v ->
          SP.push sp v;
          let len = min (i + 1) cap in
          if SP.length sp <> len then ok := false;
          let window = Array.sub stream (i + 1 - len) len in
          for lo = 1 to len do
            for hi = lo to len do
              let expect = Helpers.naive_range_sum window lo hi in
              if not (Helpers.close ~eps:1e-6 (SP.range_sum sp ~lo ~hi) expect) then ok := false;
              let expect_sq = Helpers.naive_sqerror window lo hi in
              if not (Helpers.close ~eps:1e-5 (SP.sqerror sp ~lo ~hi) expect_sq) then ok := false
            done
          done)
        stream;
      !ok)

let test_sliding_rebase_precision () =
  (* Large cumulative totals must not corrupt small window sums after many
     pushes: the periodic rebase keeps magnitudes bounded. *)
  let sp = SP.create ~capacity:4 in
  for i = 1 to 100_000 do
    SP.push sp (Float.of_int (i mod 7))
  done;
  (* last four values pushed: i = 99997..100000 -> mod 7 = 2,3,4,5 *)
  Helpers.check_close ~eps:1e-9 "sum exact" 14.0 (SP.range_sum sp ~lo:1 ~hi:4);
  Helpers.check_close ~eps:1e-9 "sqsum exact" 54.0 (SP.range_sqsum sp ~lo:1 ~hi:4)

let test_sliding_drift_regression () =
  (* The warm-start fixed-window path leans harder on the ring arithmetic:
     stream >= 100x the capacity through a small window and assert sqerror
     never drifts more than 1e-6 (relative) from a direct recomputation on
     the raw window — at the default rebase period and at the worst case
     rebase_every = 1. *)
  let cap = 8 in
  let total = 120 * cap in
  (* fractional values with a slow upward trend stress cancellation in the
     cumulative sums more than small integers do *)
  let value i = (Float.of_int ((i * 37) mod 101) /. 7.0) +. (Float.of_int i *. 0.25) in
  let run ?rebase_every label =
    let sp =
      match rebase_every with
      | None -> SP.create ~capacity:cap
      | Some rebase_every -> SP.create_rebasing ~rebase_every ~capacity:cap
    in
    let raw = Array.make cap 0.0 in
    for i = 0 to total - 1 do
      SP.push sp (value i);
      raw.((i mod cap)) <- value i;
      let len = SP.length sp in
      (* window oldest-first: positions i-len+1 .. i of the stream *)
      let window = Array.init len (fun j -> raw.((i - len + 1 + j) mod cap)) in
      for lo = 1 to len do
        for hi = lo to len do
          let expect = Helpers.naive_sqerror window lo hi in
          let got = SP.sqerror sp ~lo ~hi in
          if not (Helpers.close ~eps:1e-6 expect got) then
            Alcotest.failf "%s: sqerror drifted at t=%d [%d,%d]: expected %.12g, got %.12g"
              label i lo hi expect got
        done
      done
    done
  in
  run "default rebase";
  run ~rebase_every:1 "rebase_every=1"

let () =
  Alcotest.run "sh_prefix"
    [
      ( "prefix_sums",
        [
          Alcotest.test_case "basic" `Quick test_basic;
          Alcotest.test_case "bounds" `Quick test_bounds_checked;
          Alcotest.test_case "of_sub" `Quick test_of_sub;
          Alcotest.test_case "sqerror constant" `Quick test_sqerror_constant_zero;
          Alcotest.test_case "sqerror known" `Quick test_sqerror_known;
          prop_sums_match_naive;
          prop_sqerror_matches_naive;
          prop_sqerror_monotone;
        ] );
      ( "sliding_prefix",
        [
          Alcotest.test_case "basic" `Quick test_sliding_basic;
          Alcotest.test_case "bounds" `Quick test_sliding_bounds;
          Alcotest.test_case "rebase precision" `Quick test_sliding_rebase_precision;
          Alcotest.test_case "drift regression" `Quick test_sliding_drift_regression;
          prop_sliding_matches_naive;
        ] );
    ]
