(* lib/net: wire codec round trips, the incremental frame scanner against
   truncation and corruption, and a live serve loop driven over real Unix
   sockets — equivalence with the in-process engine, the no-drop
   backpressure contract, malformed-input rejection (fuzzed), slow-loris
   reaping, and checkpoint/restore across a server generation. *)

module Addr = Sh_net.Addr
module Wire = Sh_net.Wire
module Conn = Sh_net.Conn
module Server = Sh_net.Server
module Client = Sh_net.Client
module Codec = Sh_persist.Codec
module Frame = Sh_persist.Frame
module Pool = Sh_par.Domain_pool
module SE = Sh_par.Shard_engine
module FW = Stream_histogram.Fixed_window
module Qop = Stream_histogram.Query_op
module Params = Stream_histogram.Params
module Rng = Sh_util.Rng

let expect_corrupt what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Codec.Corrupt" what
  | exception Codec.Corrupt _ -> ()

(* ----------------------------------------------------------------- addr *)

let test_addr_parse () =
  let ok s exp =
    match Addr.of_string s with
    | Ok a -> Alcotest.(check string) s exp (Addr.to_string a)
    | Error e -> Alcotest.failf "%s: unexpected parse error %s" s e
  in
  ok "unix:/tmp/x.sock" "unix:/tmp/x.sock";
  ok "tcp:localhost:8080" "tcp:localhost:8080";
  ok "127.0.0.1:9" "tcp:127.0.0.1:9";
  ok ":8080" "tcp:127.0.0.1:8080";
  List.iter
    (fun s ->
      match Addr.of_string s with
      | Ok a -> Alcotest.failf "%S: expected parse error, got %s" s (Addr.to_string a)
      | Error _ -> ())
    [ "unix:"; "nonsense"; "host:0"; "host:notaport"; "host:70000"; "tcp:host" ]

(* ----------------------------------------------------------- wire codec *)

(* Encode a request/response, push the full frame through the incremental
   scanner, decode, compare. *)
let scan_payload s =
  match Frame.scan_frame s ~pos:0 ~len:(String.length s) with
  | Frame.Incomplete -> Alcotest.fail "scan: complete frame read as Incomplete"
  | Frame.Frame { payload; consumed } ->
    Alcotest.(check int) "whole frame consumed" (String.length s) consumed;
    payload

let req_round_trip r = Wire.decode_request (scan_payload (Wire.encode_request r))
let resp_round_trip r = Wire.decode_response (scan_payload (Wire.encode_response r))

let test_wire_request_round_trips () =
  let reqs =
    [
      Wire.Ingest [||];
      Wire.Ingest [| (0, [| 1.5; -2.25; 0.0 |]); (7, [||]); (0, [| 3.0 |]) |];
      Wire.Query
        [|
          (Qop.Key 0, Qop.Current_error);
          (Qop.Key 3, Qop.Window_length);
          (Qop.Key 1, Qop.Herror { k = 4; x = 17 });
          (Qop.Key 2, Qop.Range_sum { lo = 3; hi = 9 });
          (Qop.Key 5, Qop.Point_estimate { index = 11 });
          (Qop.Global, Qop.Range_sum { lo = 1; hi = 64 });
          (Qop.Global, Qop.Window_length);
        |];
      Wire.Stats;
      Wire.Snapshot;
      Wire.Metrics;
      Wire.Checkpoint;
      Wire.Ping;
      Wire.Shutdown;
    ]
  in
  List.iter (fun r -> Alcotest.(check bool) "request round trip" true (req_round_trip r = r)) reqs

let test_wire_response_round_trips () =
  let stats =
    {
      Wire.shards = 16;
      window = 1024;
      buckets = 8;
      total_points = 123456;
      batches = 99;
      queries = 7;
      backpressure_waits = 3;
      lock_ops = 0;
      query_lock_ops = 0;
      snapshots_published = 42;
    }
  in
  let resps =
    [
      Wire.Ack 0;
      Wire.Ack 65536;
      Wire.Answers [||];
      Wire.Answers [| 0.0; -1.5; 3.25e9 |];
      Wire.Answers_partial { answers = [| 1.0; 0.0 |]; leaves_missing = 1 };
      Wire.Snapshot_reply "SHSNAPBYTES\x00\x01";
      Wire.Stats_reply stats;
      Wire.Metrics_reply "engine_points 12\n";
      Wire.Checkpointed "/tmp/x.ckpt";
      Wire.Pong;
      Wire.Shutting_down;
      Wire.Error_reply "bad key";
    ]
  in
  List.iter
    (fun r -> Alcotest.(check bool) "response round trip" true (resp_round_trip r = r))
    resps

let test_wire_rejects_garbage () =
  (* non-finite ingest values must die at decode time, before any engine
     sees them *)
  expect_corrupt "nan ingest" (fun () ->
      req_round_trip (Wire.Ingest [| (0, [| Float.nan |]) |]));
  expect_corrupt "inf ingest" (fun () ->
      req_round_trip (Wire.Ingest [| (1, [| Float.infinity |]) |]));
  (* unknown tags, both directions *)
  expect_corrupt "bad request tag" (fun () ->
      Wire.decode_request (scan_payload (Frame.frame_string "\x7f")));
  expect_corrupt "bad response tag" (fun () ->
      Wire.decode_response (scan_payload (Frame.frame_string "\x80")));
  (* trailing bytes after a complete message *)
  expect_corrupt "trailing bytes" (fun () ->
      Wire.decode_request (scan_payload (Frame.frame_string "\x06\x00")));
  (* a group count that cannot fit the remaining payload *)
  let buf = Buffer.create 8 in
  Codec.put_u8 buf 0x01;
  Codec.put_varint buf 1_000_000;
  expect_corrupt "oversized group count" (fun () ->
      Wire.decode_request (scan_payload (Frame.frame_string (Buffer.contents buf))))

let test_preamble () =
  Wire.check_preamble Wire.preamble;
  expect_corrupt "bad magic" (fun () -> Wire.check_preamble "XXNW\x01");
  expect_corrupt "short" (fun () -> Wire.check_preamble "SH");
  match Wire.check_preamble "SHNW\x63" with
  | () -> Alcotest.fail "foreign version accepted"
  | exception Codec.Version_mismatch { found = 0x63; _ } -> ()
  | exception _ -> Alcotest.fail "foreign version: wrong error"

let prop_wire_ingest_round_trip =
  Helpers.qcheck_case ~count:120 ~name:"wire: Ingest encode/scan/decode round trip"
    QCheck2.Gen.(
      small_list
        (pair (int_range 0 63)
           (array_size (int_range 0 40) (map Float.of_int (int_range (-1000) 1000)))))
    (fun groups ->
      let r = Wire.Ingest (Array.of_list groups) in
      req_round_trip r = r)

let prop_wire_query_round_trip =
  Helpers.qcheck_case ~count:120 ~name:"wire: Query encode/scan/decode round trip"
    QCheck2.Gen.(
      small_list
        (pair
           (oneof [ map (fun k -> Qop.Key k) (int_range 0 63); return Qop.Global ])
           (oneof
              [
                return Qop.Current_error;
                return Qop.Window_length;
                (let* k = int_range 0 50 and* x = int_range 0 5000 in
                 return (Qop.Herror { k; x }));
                (let* lo = int_range 0 5000 and* hi = int_range 0 5000 in
                 return (Qop.Range_sum { lo; hi }));
                (let* index = int_range 0 5000 in
                 return (Qop.Point_estimate { index }));
              ])))
    (fun qs ->
      let r = Wire.Query (Array.of_list qs) in
      req_round_trip r = r)

(* --------------------------------------------------- incremental scanner *)

let test_scan_every_prefix () =
  let frame = Wire.encode_request (Wire.Ingest [| (3, [| 1.0; 2.0; 4.5 |]) |]) in
  let n = String.length frame in
  for len = 0 to n - 1 do
    match Frame.scan_frame frame ~pos:0 ~len with
    | Frame.Incomplete -> ()
    | Frame.Frame _ -> Alcotest.failf "prefix of %d/%d bytes decoded as a frame" len n
  done;
  ignore (scan_payload frame)

let test_scan_two_frames_and_pos () =
  let f1 = Wire.encode_request Wire.Ping in
  let f2 = Wire.encode_request (Wire.Ingest [| (1, [| 9.0 |]) |]) in
  let s = f1 ^ f2 in
  (match Frame.scan_frame s ~pos:0 ~len:(String.length s) with
  | Frame.Frame { consumed; payload } ->
    Alcotest.(check int) "first frame length" (String.length f1) consumed;
    Alcotest.(check bool) "first decodes" true (Wire.decode_request payload = Wire.Ping)
  | Frame.Incomplete -> Alcotest.fail "first frame incomplete");
  match Frame.scan_frame s ~pos:(String.length f1) ~len:(String.length f2) with
  | Frame.Frame { consumed; payload } ->
    Alcotest.(check int) "second frame length" (String.length f2) consumed;
    Alcotest.(check bool) "second decodes" true
      (Wire.decode_request payload = Wire.Ingest [| (1, [| 9.0 |]) |])
  | Frame.Incomplete -> Alcotest.fail "second frame incomplete"

let test_scan_bit_flips () =
  let frame = Wire.encode_request (Wire.Ingest [| (2, [| 5.0; 6.0 |]) |]) in
  let n = String.length frame in
  for i = 0 to n - 1 do
    for bit = 0 to 7 do
      let b = Bytes.of_string frame in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
      let s = Bytes.to_string b in
      (* A flip may turn the frame Incomplete (longer declared length) or
         Corrupt (CRC/varint damage) — but never an intact decode of the
         original payload. *)
      match Frame.scan_frame s ~pos:0 ~len:n with
      | Frame.Incomplete -> ()
      | exception Codec.Corrupt _ -> ()
      | Frame.Frame { payload; _ } ->
        (match Wire.decode_request payload with
        | req ->
          if req = Wire.Ingest [| (2, [| 5.0; 6.0 |]) |] then
            Alcotest.failf "flip byte %d bit %d: original payload survived CRC" i bit
        | exception Codec.Corrupt _ -> ())
    done
  done

let test_scan_oversized_and_overlong () =
  (* declared length above the cap is rejected before buffering *)
  let buf = Buffer.create 16 in
  Codec.put_varint buf (Wire.max_frame_payload + 1);
  Buffer.add_string buf "xxxx";
  let s = Buffer.contents buf in
  expect_corrupt "oversized declared length" (fun () ->
      Frame.scan_frame ~max_len:Wire.max_frame_payload s ~pos:0 ~len:(String.length s));
  (* an overlong varint can never be Incomplete *)
  let s = String.make 10 '\xff' in
  expect_corrupt "overlong varint" (fun () ->
      Frame.scan_frame s ~pos:0 ~len:(String.length s));
  (* bad range is a programming error, not a protocol one *)
  match Frame.scan_frame "abc" ~pos:2 ~len:5 with
  | _ -> Alcotest.fail "bad range accepted"
  | exception Invalid_argument _ -> ()

let prop_scan_split_stream =
  (* a frame stream chopped at an arbitrary point is Incomplete at the
     chop and decodes identically once the rest arrives *)
  Helpers.qcheck_case ~count:80 ~name:"scan: any split of a frame stream reassembles"
    QCheck2.Gen.(
      let* nframes = int_range 1 4 in
      let* payloads =
        list_size (return nframes) (string_size ~gen:printable (int_range 0 30))
      in
      let* cut_frac = float_bound_inclusive 1.0 in
      return (payloads, cut_frac))
    (fun (payloads, cut_frac) ->
      let stream = String.concat "" (List.map Frame.frame_string payloads) in
      let cut = Float.to_int (cut_frac *. Float.of_int (String.length stream)) in
      (* scan the whole stream, frame by frame *)
      let decoded = ref [] in
      let pos = ref 0 in
      let continue = ref true in
      while !continue do
        match Frame.scan_frame stream ~pos:!pos ~len:(String.length stream - !pos) with
        | Frame.Incomplete -> continue := false
        | Frame.Frame { payload; consumed } ->
          decoded := Codec.get_raw payload (Codec.remaining payload) :: !decoded;
          pos := !pos + consumed
      done;
      (* the prefix up to the cut never yields more frames than the whole *)
      let prefix_count = ref 0 in
      let p = ref 0 in
      let continue = ref true in
      while !continue do
        match Frame.scan_frame stream ~pos:!p ~len:(cut - !p) with
        | Frame.Incomplete -> continue := false
        | exception Invalid_argument _ -> continue := false
        | Frame.Frame { consumed; _ } ->
          incr prefix_count;
          p := !p + consumed
      done;
      List.rev !decoded = payloads && !prefix_count <= List.length payloads)

(* ------------------------------------------------------------ live serve *)

let with_temp_sock f =
  let path = Filename.temp_file "shist_net" ".sock" in
  Unix.unlink path;
  Fun.protect
    ~finally:(fun () -> try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    (fun () -> f (Addr.Unix_sock path))

(* A live engine + serve loop on its own domain.  The listener is bound
   before the domain spawns, so clients can connect immediately (the
   backlog holds them until the loop's first iteration). *)
let with_server ?config ?(policy = Params.Eager) ?(ring_capacity = SE.default_ring_capacity)
    ~shards ~window ~buckets ~epsilon addr f =
  let listener = Server.listen addr in
  let stop = Atomic.make false in
  let srv =
    Domain.spawn (fun () ->
        Pool.with_pool ~domains:1 (fun pool ->
            let eng =
              SE.create_with_ring ~ring_capacity ~pool ~shards ~window ~buckets ~epsilon
            in
            SE.set_refresh_policy eng policy;
            Server.run ?config ~stop:(fun () -> Atomic.get stop) ~engine:eng
              ~listeners:[ listener ] ()))
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      ignore (Domain.join srv : Server.report);
      try Unix.close listener with Unix.Unix_error _ -> ())
    (fun () -> f ())

let geometry = (8, 64, 4, 0.1)

(* Raw socket access, for speaking garbage the Client refuses to send. *)
let raw_connect addr =
  let fd = Addr.socket_for addr in
  Unix.connect fd (Addr.to_sockaddr addr);
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
  fd

let write_string fd s = ignore (Unix.write_substring fd s 0 (String.length s) : int)

(* Drain one fd to EOF (with the 5s receive timeout armed); returns all
   bytes read after the server's preamble was stripped by the caller. *)
let read_to_eof fd =
  let buf = Buffer.create 256 in
  let b = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd b 0 4096 with
    | 0 -> Buffer.contents buf
    | n ->
      Buffer.add_subbytes buf b 0 n;
      go ()
    | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> Buffer.contents buf
  in
  go ()

let read_exact fd n =
  let b = Bytes.create n in
  let off = ref 0 in
  while !off < n do
    match Unix.read fd b !off (n - !off) with
    | 0 -> Alcotest.fail "unexpected EOF"
    | got -> off := !off + got
  done;
  Bytes.to_string b

let test_serve_equivalence () =
  let shards, window, buckets, epsilon = geometry in
  with_temp_sock @@ fun addr ->
  with_server ~shards ~window ~buckets ~epsilon addr @@ fun () ->
  (* reference: the same batches through an in-process engine *)
  Pool.with_pool ~domains:1 @@ fun pool ->
  let ref_eng = SE.create ~pool ~shards ~window ~buckets ~epsilon in
  SE.set_refresh_policy ref_eng Params.Eager;
  let rng = Rng.create ~seed:7 in
  let c = Client.connect ~timeout:5. addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  for _round = 1 to 12 do
    let ngroups = 1 + Rng.int rng 5 in
    let groups =
      Array.init ngroups (fun _ ->
          let k = Rng.int rng shards in
          let len = Rng.int rng 40 in
          (k, Array.init len (fun _ -> Float.of_int (Rng.int rng 100))))
    in
    let sent = Wire.points_in_groups groups in
    let acked = Client.ingest c groups in
    Alcotest.(check int) "every point acked" sent acked;
    SE.ingest_groups ref_eng groups
  done;
  (* every query constructor, including out-of-range parameters that the
     clamping contract must normalise identically on both sides *)
  let qs =
    Array.concat
      (List.init shards (fun k ->
           [|
             (Qop.Key k, Qop.Current_error);
             (Qop.Key k, Qop.Window_length);
             (Qop.Key k, Qop.Herror { k = buckets + 3; x = window + 50 });
             (Qop.Key k, Qop.Herror { k = 1; x = 0 });
             (Qop.Key k, Qop.Range_sum { lo = 0; hi = window + 9 });
             (Qop.Key k, Qop.Point_estimate { index = 1 + (k mod window) });
           |])
      @ [
          [|
            (Qop.Global, Qop.Window_length);
            (Qop.Global, Qop.Range_sum { lo = 1; hi = window });
            (Qop.Global, Qop.Current_error);
          |];
        ])
  in
  let remote = Client.query c qs in
  let local = SE.query_many ref_eng qs in
  Alcotest.(check int) "answer count" (Array.length local) (Array.length remote);
  Array.iteri
    (fun i l ->
      if Int64.bits_of_float l <> Int64.bits_of_float remote.(i) then
        Alcotest.failf "query %d: local %.17g <> remote %.17g" i l remote.(i))
    local;
  let st = Client.stats c in
  Alcotest.(check int) "server points" (SE.total_points ref_eng) st.Wire.total_points;
  Alcotest.(check int) "query plane stayed lock-free" 0 st.Wire.query_lock_ops;
  (* the snapshot interchange frame decodes to the same shard summaries
     the in-process reference holds *)
  let fws = SE.decode_snapshot (Client.snapshot c) in
  Alcotest.(check int) "snapshot shard count" shards (Array.length fws);
  Array.iteri
    (fun k fw ->
      Alcotest.(check int)
        (Printf.sprintf "snapshot shard %d length" k)
        (SE.length ref_eng ~key:k) (FW.length fw))
    fws;
  Client.ping c

let test_serve_backpressure_no_drop () =
  let shards, window, buckets, epsilon = geometry in
  with_temp_sock @@ fun addr ->
  (* ring capacity 1: every batched point beyond the first per shard
     spills, so backpressure_waits must rise while nothing is lost *)
  with_server ~ring_capacity:1 ~policy:(Params.Every 64) ~shards ~window ~buckets ~epsilon
    addr
  @@ fun () ->
  let nconn = 3 and batches = 8 and batch = 256 in
  let cs = Array.init nconn (fun _ -> Client.connect ~timeout:5. addr) in
  Fun.protect ~finally:(fun () -> Array.iter Client.close cs) @@ fun () ->
  let rng = Rng.create ~seed:11 in
  let sent = ref 0 in
  let acked = ref 0 in
  for _ = 1 to batches do
    (* pipeline: all connections send, then all collect — forcing the
       server to coalesce competing batches in one iteration *)
    Array.iter
      (fun c ->
        let groups =
          Array.init 4 (fun _ ->
              let k = Rng.int rng shards in
              (k, Array.init (batch / 4) (fun _ -> Float.of_int (Rng.int rng 50))))
        in
        sent := !sent + Wire.points_in_groups groups;
        Client.send c (Wire.Ingest groups))
      cs;
    Array.iter
      (fun c ->
        match Client.recv c with
        | Wire.Ack n -> acked := !acked + n
        | _ -> Alcotest.fail "expected Ack")
      cs
  done;
  let st = Client.stats cs.(0) in
  Alcotest.(check int) "acked == sent" !sent !acked;
  Alcotest.(check int) "server holds every acked point" !sent st.Wire.total_points;
  Alcotest.(check bool)
    (Printf.sprintf "backpressure engaged (waits=%d)" st.Wire.backpressure_waits)
    true
    (st.Wire.backpressure_waits > 0)

let test_serve_rejects_bad_key_keeps_conn () =
  let shards, window, buckets, epsilon = geometry in
  with_temp_sock @@ fun addr ->
  with_server ~shards ~window ~buckets ~epsilon addr @@ fun () ->
  let c = Client.connect ~timeout:5. addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (match Client.call c (Wire.Ingest [| (shards, [| 1.0 |]) |]) with
  | Wire.Error_reply _ -> ()
  | _ -> Alcotest.fail "out-of-range key accepted");
  (* semantic rejection: the connection survives and serves the next
     request; the bad batch contributed nothing *)
  let n = Client.ingest c [| (0, [| 1.0; 2.0 |]) |] in
  Alcotest.(check int) "good batch acked after rejection" 2 n;
  let st = Client.stats c in
  Alcotest.(check int) "only the good points landed" 2 st.Wire.total_points

let test_serve_malformed_inputs () =
  let shards, window, buckets, epsilon = geometry in
  with_temp_sock @@ fun addr ->
  with_server ~shards ~window ~buckets ~epsilon addr @@ fun () ->
  (* 1. garbage preamble: error frame (or nothing) then EOF, never a hang *)
  let fd = raw_connect addr in
  ignore (read_exact fd Wire.preamble_len : string);
  write_string fd "GARBAGE!";
  let tail = read_to_eof fd in
  Unix.close fd;
  (match Frame.scan_frame tail ~pos:0 ~len:(String.length tail) with
  | Frame.Frame { payload; _ } -> (
    match Wire.decode_response payload with
    | Wire.Error_reply _ -> ()
    | _ -> Alcotest.fail "garbage preamble: expected Error_reply")
  | Frame.Incomplete -> Alcotest.fail "garbage preamble: no error frame before close");
  (* 2. valid preamble, then a CRC-corrupted frame *)
  let fd = raw_connect addr in
  ignore (read_exact fd Wire.preamble_len : string);
  write_string fd Wire.preamble;
  let frame = Bytes.of_string (Wire.encode_request Wire.Ping) in
  let last = Bytes.length frame - 1 in
  Bytes.set frame last (Char.chr (Char.code (Bytes.get frame last) lxor 0xFF));
  write_string fd (Bytes.to_string frame);
  let tail = read_to_eof fd in
  Unix.close fd;
  (match Frame.scan_frame tail ~pos:0 ~len:(String.length tail) with
  | Frame.Frame { payload; _ } -> (
    match Wire.decode_response payload with
    | Wire.Error_reply _ -> ()
    | _ -> Alcotest.fail "corrupt frame: expected Error_reply")
  | Frame.Incomplete -> Alcotest.fail "corrupt frame: no error frame before close");
  (* 3. oversized declared payload length *)
  let fd = raw_connect addr in
  ignore (read_exact fd Wire.preamble_len : string);
  write_string fd Wire.preamble;
  let buf = Buffer.create 16 in
  Codec.put_varint buf (Wire.max_frame_payload + 1);
  write_string fd (Buffer.contents buf);
  let tail = read_to_eof fd in
  Unix.close fd;
  (match Frame.scan_frame tail ~pos:0 ~len:(String.length tail) with
  | Frame.Frame { payload; _ } -> (
    match Wire.decode_response payload with
    | Wire.Error_reply _ -> ()
    | _ -> Alcotest.fail "oversized length: expected Error_reply")
  | Frame.Incomplete -> Alcotest.fail "oversized length: no error frame before close");
  (* the server survived all three: a healthy client still works *)
  let c = Client.connect ~timeout:5. addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  Client.ping c;
  let st = Client.stats c in
  Alcotest.(check int) "nothing ingested by attackers" 0 st.Wire.total_points

let test_serve_slow_loris_reaped () =
  let shards, window, buckets, epsilon = geometry in
  with_temp_sock @@ fun addr ->
  let config = { Server.default_config with idle_timeout = 0.25 } in
  with_server ~config ~shards ~window ~buckets ~epsilon addr @@ fun () ->
  let fd = raw_connect addr in
  ignore (read_exact fd Wire.preamble_len : string);
  write_string fd Wire.preamble;
  (* half an ingest frame, then silence *)
  let frame = Wire.encode_request (Wire.Ingest [| (0, Array.make 64 1.0) |]) in
  write_string fd (String.sub frame 0 (String.length frame / 2));
  let tail = read_to_eof fd in
  (* the drain returns only because the server reaped us within the 5s
     receive timeout; a healthy client is unaffected throughout *)
  ignore (tail : string);
  Unix.close fd;
  let c = Client.connect ~timeout:5. addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  Client.ping c;
  let st = Client.stats c in
  Alcotest.(check int) "half-frame never ingested" 0 st.Wire.total_points

let test_serve_checkpoint_restart_reconnect () =
  let shards, window, buckets, epsilon = geometry in
  let ckpt = Filename.temp_file "shist_net" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove ckpt with Sys_error _ -> ())
  @@ fun () ->
  with_temp_sock @@ fun addr ->
  let rng = Rng.create ~seed:23 in
  let mk_groups () =
    Array.init 6 (fun _ ->
        let k = Rng.int rng shards in
        (k, Array.init (10 + Rng.int rng 30) (fun _ -> Float.of_int (Rng.int rng 100))))
  in
  let config = { Server.default_config with checkpoint = Some ckpt } in
  (* generation 1: ingest, checkpoint over the wire, shut down *)
  let points_before, lengths_before =
    let result = ref (0, [||]) in
    with_server ~config ~shards ~window ~buckets ~epsilon addr (fun () ->
        let c = Client.connect ~timeout:5. addr in
        Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
        for _ = 1 to 10 do
          ignore (Client.ingest c (mk_groups ()) : int)
        done;
        let path = Client.checkpoint c in
        Alcotest.(check string) "checkpoint path echoed" ckpt path;
        let st = Client.stats c in
        let lengths =
          Client.query c (Array.init shards (fun k -> (Qop.Key k, Qop.Window_length)))
        in
        result := (st.Wire.total_points, lengths);
        Client.shutdown c);
    !result
  in
  (* generation 2: restore from the checkpoint, same address; the client
     connects with a retry budget, as a restarting client would *)
  let listener = Server.listen addr in
  let srv =
    Domain.spawn (fun () ->
        Pool.with_pool ~domains:1 (fun pool ->
            let eng = SE.restore_from ~pool ~file:ckpt in
            Server.run ~engine:eng ~listeners:[ listener ] ()))
  in
  Fun.protect
    ~finally:(fun () ->
      ignore (Domain.join srv : Server.report);
      try Unix.close listener with Unix.Unix_error _ -> ())
  @@ fun () ->
  let c = Client.connect ~timeout:5. ~retries:25 ~retry_delay:0.1 addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let st = Client.stats c in
  Alcotest.(check int) "restored every checkpointed point" points_before
    st.Wire.total_points;
  let lengths = Client.query c (Array.init shards (fun k -> (Qop.Key k, Qop.Window_length))) in
  Array.iteri
    (fun k l ->
      if Int64.bits_of_float l <> Int64.bits_of_float lengths_before.(k) then
        Alcotest.failf "shard %d: window length %g after restore, %g before" k lengths.(k)
          lengths_before.(k))
    lengths_before;
  (* the restored engine keeps serving ingest *)
  let n = Client.ingest c [| (0, [| 1.0; 2.0; 3.0 |]) |] in
  Alcotest.(check int) "post-restore ingest acked" 3 n;
  Client.shutdown c

let () =
  Alcotest.run "net"
    [
      ("addr", [ Alcotest.test_case "parse/print" `Quick test_addr_parse ]);
      ( "wire",
        [
          Alcotest.test_case "request round trips" `Quick test_wire_request_round_trips;
          Alcotest.test_case "response round trips" `Quick test_wire_response_round_trips;
          Alcotest.test_case "rejects garbage" `Quick test_wire_rejects_garbage;
          Alcotest.test_case "preamble" `Quick test_preamble;
          prop_wire_ingest_round_trip;
          prop_wire_query_round_trip;
        ] );
      ( "scan",
        [
          Alcotest.test_case "every prefix is Incomplete" `Quick test_scan_every_prefix;
          Alcotest.test_case "two frames, positioned scan" `Quick test_scan_two_frames_and_pos;
          Alcotest.test_case "every bit flip detected" `Quick test_scan_bit_flips;
          Alcotest.test_case "oversized and overlong rejected" `Quick
            test_scan_oversized_and_overlong;
          prop_scan_split_stream;
        ] );
      ( "serve",
        [
          Alcotest.test_case "equivalence with in-process engine" `Quick
            test_serve_equivalence;
          Alcotest.test_case "backpressure drops nothing" `Quick
            test_serve_backpressure_no_drop;
          Alcotest.test_case "bad key rejected, connection survives" `Quick
            test_serve_rejects_bad_key_keeps_conn;
          Alcotest.test_case "malformed inputs rejected" `Quick test_serve_malformed_inputs;
          Alcotest.test_case "slow loris reaped" `Quick test_serve_slow_loris_reaped;
          Alcotest.test_case "checkpoint, restart, reconnect" `Quick
            test_serve_checkpoint_restart_reconnect;
        ] );
    ]
