module Grid = Sh_multidim.Grid
module Mhist = Sh_multidim.Mhist
module Rng = Sh_util.Rng

let gen_grid =
  QCheck2.Gen.(
    let* rows = int_range 1 8 in
    let* cols = int_range 1 8 in
    let* flat = array_size (return (rows * cols)) (int_range 0 50) in
    return (Array.init rows (fun r -> Array.init cols (fun c -> Float.of_int flat.((r * cols) + c)))))

let naive_block_sum cells r0 c0 r1 c1 =
  let acc = ref 0.0 in
  for r = r0 to r1 do
    for c = c0 to c1 do
      acc := !acc +. cells.(r).(c)
    done
  done;
  !acc

(* ----------------------------------------------------------------- Grid *)

let test_grid_basics () =
  let g = Grid.make [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Alcotest.(check int) "rows" 2 (Grid.rows g);
  Alcotest.(check int) "cols" 2 (Grid.cols g);
  Helpers.check_close "total" 10.0 (Grid.range_sum g ~r0:0 ~c0:0 ~r1:1 ~c1:1);
  Helpers.check_close "cell" 3.0 (Grid.range_sum g ~r0:1 ~c0:0 ~r1:1 ~c1:0);
  Helpers.check_close "row" 7.0 (Grid.range_sum g ~r0:1 ~c0:0 ~r1:1 ~c1:1);
  Helpers.check_close "empty" 0.0 (Grid.range_sum g ~r0:1 ~c0:1 ~r1:0 ~c1:0);
  Helpers.check_close "mean" 2.5 (Grid.mean g ~r0:0 ~c0:0 ~r1:1 ~c1:1)

let test_grid_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Grid.make: empty grid") (fun () ->
      ignore (Grid.make [||]));
  Alcotest.check_raises "ragged" (Invalid_argument "Grid.make: ragged grid") (fun () ->
      ignore (Grid.make [| [| 1.0 |]; [| 1.0; 2.0 |] |]));
  let g = Grid.make [| [| 1.0 |] |] in
  Alcotest.check_raises "oob" (Invalid_argument "Grid: block out of bounds") (fun () ->
      ignore (Grid.range_sum g ~r0:0 ~c0:0 ~r1:1 ~c1:0))

let prop_grid_matches_naive =
  Helpers.qcheck_case ~count:60 ~name:"2-D range sums match naive" gen_grid (fun cells ->
      let g = Grid.make cells in
      let nr = Array.length cells and nc = Array.length cells.(0) in
      let ok = ref true in
      for r0 = 0 to nr - 1 do
        for r1 = r0 to nr - 1 do
          for c0 = 0 to nc - 1 do
            for c1 = c0 to nc - 1 do
              if
                not
                  (Helpers.close ~eps:1e-6
                     (Grid.range_sum g ~r0 ~c0 ~r1 ~c1)
                     (naive_block_sum cells r0 c0 r1 c1))
              then ok := false
            done
          done
        done
      done;
      !ok)

let prop_grid_sse_nonneg_and_zero_on_constant =
  Helpers.qcheck_case ~count:40 ~name:"block SSE is non-negative; zero for constant blocks"
    gen_grid
    (fun cells ->
      let g = Grid.make cells in
      let nr = Array.length cells and nc = Array.length cells.(0) in
      let constant = Grid.make (Array.make_matrix nr nc 3.0) in
      Grid.sse g ~r0:0 ~c0:0 ~r1:(nr - 1) ~c1:(nc - 1) >= 0.0
      && Helpers.close (Grid.sse constant ~r0:0 ~c0:0 ~r1:(nr - 1) ~c1:(nc - 1)) 0.0)

(* ---------------------------------------------------------------- Mhist *)

(* A grid with four constant quadrants: 4 buckets should be exact. *)
let quadrant_grid n a b c d =
  Array.init (2 * n) (fun r ->
      Array.init (2 * n) (fun col ->
          match (r < n, col < n) with
          | true, true -> a
          | true, false -> b
          | false, true -> c
          | false, false -> d))

let test_mhist_quadrants_exact () =
  let cells = quadrant_grid 4 1.0 5.0 9.0 13.0 in
  let h = Mhist.build cells ~buckets:4 in
  Alcotest.(check int) "4 buckets" 4 (Mhist.bucket_count h);
  Helpers.check_close "exact" 0.0 (Mhist.sse h cells);
  Helpers.check_close "quadrant value" 13.0 (Mhist.point_estimate h ~row:7 ~col:7)

let test_mhist_single_bucket () =
  let cells = [| [| 1.0; 3.0 |]; [| 5.0; 7.0 |] |] in
  let h = Mhist.build cells ~buckets:1 in
  Alcotest.(check int) "1 bucket" 1 (Mhist.bucket_count h);
  Helpers.check_close "mean everywhere" 4.0 (Mhist.point_estimate h ~row:0 ~col:1)

let test_mhist_range_sum () =
  let cells = quadrant_grid 2 1.0 5.0 9.0 13.0 in
  let h = Mhist.build cells ~buckets:4 in
  (* exact partition -> exact range sums *)
  Helpers.check_close "full" (naive_block_sum cells 0 0 3 3)
    (Mhist.range_sum_estimate h ~r0:0 ~c0:0 ~r1:3 ~c1:3);
  Helpers.check_close "straddling" (naive_block_sum cells 1 1 2 2)
    (Mhist.range_sum_estimate h ~r0:1 ~c0:1 ~r1:2 ~c1:2)

let prop_mhist_tiles_and_respects_budget =
  Helpers.qcheck_case ~count:40 ~name:"MHIST tiles the grid within budget"
    QCheck2.Gen.(
      let* cells = gen_grid in
      let* b = int_range 1 10 in
      return (cells, b))
    (fun (cells, b) ->
      let h = Mhist.build cells ~buckets:b in
      let nr = Array.length cells and nc = Array.length cells.(0) in
      (* budget respected *)
      Mhist.bucket_count h <= b
      (* every cell covered exactly once: area adds up and point_estimate
         never hits the unreachable branch *)
      && Array.fold_left
           (fun acc bk ->
             acc + ((bk.Mhist.r1 - bk.Mhist.r0 + 1) * (bk.Mhist.c1 - bk.Mhist.c0 + 1)))
           0 h.Mhist.buckets
         = nr * nc
      &&
      (let ok = ref true in
       for r = 0 to nr - 1 do
         for c = 0 to nc - 1 do
           ignore (Mhist.point_estimate h ~row:r ~col:c)
         done
       done;
       !ok))

let prop_mhist_more_buckets_no_worse =
  Helpers.qcheck_case ~count:30 ~name:"more buckets never increase MHIST SSE" gen_grid
    (fun cells ->
      let sse b = Mhist.sse (Mhist.build cells ~buckets:b) cells in
      sse 8 <= sse 4 +. 1e-6 && sse 4 <= sse 2 +. 1e-6 && sse 2 <= sse 1 +. 1e-6)

let test_mhist_beats_independence_assumption () =
  (* Perfectly correlated attributes: all mass in the (low, low) and
     (high, high) quadrants.  The attribute-value-independence estimate
     (row marginal x column marginal) halves the top-left quadrant's mass;
     MHIST's joint buckets capture it exactly — the point of [PI97]. *)
  let n = 8 in
  let cells = quadrant_grid n 100.0 0.0 0.0 100.0 in
  let h = Mhist.build cells ~buckets:4 in
  let size = 2 * n in
  let total = naive_block_sum cells 0 0 (size - 1) (size - 1) in
  let row_m = naive_block_sum cells 0 0 (n - 1) (size - 1) /. total in
  let col_m = naive_block_sum cells 0 0 (size - 1) (n - 1) /. total in
  let independence = row_m *. col_m *. total in
  let truth = naive_block_sum cells 0 0 (n - 1) (n - 1) in
  let mhist = Mhist.range_sum_estimate h ~r0:0 ~c0:0 ~r1:(n - 1) ~c1:(n - 1) in
  Helpers.check_close "joint buckets are exact here" truth mhist;
  Alcotest.(check bool)
    (Printf.sprintf "independence %.0f misses truth %.0f" independence truth)
    true
    (Float.abs (mhist -. truth) < Float.abs (independence -. truth))

let test_mhist_validation () =
  Alcotest.check_raises "bad budget" (Invalid_argument "Mhist.build: buckets must be >= 1")
    (fun () -> ignore (Mhist.build [| [| 1.0 |] |] ~buckets:0));
  let h = Mhist.build [| [| 1.0 |] |] ~buckets:1 in
  Alcotest.check_raises "oob point" (Invalid_argument "Mhist.point_estimate: cell out of bounds")
    (fun () -> ignore (Mhist.point_estimate h ~row:1 ~col:0))

let () =
  Alcotest.run "sh_multidim"
    [
      ( "grid",
        [
          Alcotest.test_case "basics" `Quick test_grid_basics;
          Alcotest.test_case "validation" `Quick test_grid_validation;
          prop_grid_matches_naive;
          prop_grid_sse_nonneg_and_zero_on_constant;
        ] );
      ( "mhist",
        [
          Alcotest.test_case "quadrants exact" `Quick test_mhist_quadrants_exact;
          Alcotest.test_case "single bucket" `Quick test_mhist_single_bucket;
          Alcotest.test_case "range sums" `Quick test_mhist_range_sum;
          Alcotest.test_case "beats independence" `Quick test_mhist_beats_independence_assumption;
          Alcotest.test_case "validation" `Quick test_mhist_validation;
          prop_mhist_tiles_and_respects_budget;
          prop_mhist_more_buckets_no_worse;
        ] );
    ]
