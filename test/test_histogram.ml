module P = Sh_prefix.Prefix_sums
module H = Sh_histogram.Histogram
module V = Sh_histogram.Vopt
module Heur = Sh_histogram.Heuristics

(* ------------------------------------------------------------ Histogram *)

let test_make_validation () =
  let bucket lo hi value = { H.lo; hi; value } in
  Alcotest.check_raises "gap" (Invalid_argument "Histogram.make: buckets must be contiguous")
    (fun () -> ignore (H.make ~n:4 [| bucket 1 2 0.0; bucket 4 4 0.0 |]));
  Alcotest.check_raises "wrong start" (Invalid_argument "Histogram.make: first bucket must start at 1")
    (fun () -> ignore (H.make ~n:4 [| bucket 2 4 0.0 |]));
  Alcotest.check_raises "wrong end" (Invalid_argument "Histogram.make: last bucket must end at n")
    (fun () -> ignore (H.make ~n:4 [| bucket 1 3 0.0 |]));
  Alcotest.check_raises "no buckets" (Invalid_argument "Histogram.make: at least one bucket required")
    (fun () -> ignore (H.make ~n:4 [||]))

let test_of_boundaries () =
  let p = P.make [| 1.0; 3.0; 10.0; 20.0 |] in
  let h = H.of_boundaries p ~boundaries:[| 2; 4 |] in
  Alcotest.(check int) "buckets" 2 (H.bucket_count h);
  Helpers.check_close "first mean" 2.0 (H.point_estimate h 1);
  Helpers.check_close "second mean" 15.0 (H.point_estimate h 3)

let test_point_and_find () =
  let p = P.make (Array.init 10 Float.of_int) in
  let h = H.of_boundaries p ~boundaries:[| 3; 7; 10 |] in
  let b = H.find_bucket h 4 in
  Alcotest.(check int) "bucket lo" 4 b.H.lo;
  Alcotest.(check int) "bucket hi" 7 b.H.hi;
  Alcotest.check_raises "oob" (Invalid_argument "Histogram.find_bucket: index out of range")
    (fun () -> ignore (H.find_bucket h 11))

let test_range_sum_overlap () =
  (* buckets [1..2]=1.5 [3..4]=3.5; query [2..3] = 1.5 + 3.5 *)
  let p = P.make [| 1.0; 2.0; 3.0; 4.0 |] in
  let h = H.of_boundaries p ~boundaries:[| 2; 4 |] in
  Helpers.check_close "overlap" 5.0 (H.range_sum_estimate h ~lo:2 ~hi:3);
  Helpers.check_close "full" 10.0 (H.range_sum_estimate h ~lo:1 ~hi:4);
  Helpers.check_close "empty" 0.0 (H.range_sum_estimate h ~lo:3 ~hi:2);
  Helpers.check_close "avg" 2.5 (H.range_avg_estimate h ~lo:2 ~hi:3)

let test_to_series () =
  let p = P.make [| 1.0; 3.0; 5.0; 5.0 |] in
  let h = H.of_boundaries p ~boundaries:[| 2; 4 |] in
  Alcotest.(check (array (float 1e-9))) "series" [| 2.0; 2.0; 5.0; 5.0 |] (H.to_series h)

let prop_range_sum_matches_series =
  Helpers.qcheck_case ~name:"range_sum_estimate equals sum of to_series" (Helpers.gen_data ())
    (fun data ->
      let n = Array.length data in
      let p = P.make data in
      let b = max 1 (n / 3) in
      let h = V.build_prefix p ~buckets:b in
      let series = H.to_series h in
      let ok = ref true in
      for lo = 1 to n do
        for hi = lo to n do
          let direct = H.range_sum_estimate h ~lo ~hi in
          let via_series = Helpers.naive_range_sum series lo hi in
          if not (Helpers.close ~eps:1e-6 direct via_series) then ok := false
        done
      done;
      !ok)

let prop_sse_against_matches_naive =
  Helpers.qcheck_case ~name:"sse_against equals SSE of to_series" (Helpers.gen_data ())
    (fun data ->
      let p = P.make data in
      let h = V.build_prefix p ~buckets:3 in
      Helpers.close ~eps:1e-6 (H.sse_against h p) (Sh_util.Metrics.sse (H.to_series h) data))

(* ----------------------------------------------------------------- Vopt *)

let test_vopt_known () =
  (* 0,0,10,10 with 2 buckets: split at 2, zero error. *)
  let h = V.build [| 0.0; 0.0; 10.0; 10.0 |] ~buckets:2 in
  Alcotest.(check int) "buckets" 2 (H.bucket_count h);
  Helpers.check_close "zero error" 0.0 (H.sse_against h (P.make [| 0.0; 0.0; 10.0; 10.0 |]));
  let b = H.find_bucket h 1 in
  Alcotest.(check int) "boundary" 2 b.H.hi

let test_vopt_single_bucket () =
  let data = [| 1.0; 2.0; 3.0 |] in
  let p = P.make data in
  Helpers.check_close "B=1 error is SQERROR(1,n)" (P.sqerror p ~lo:1 ~hi:3)
    (V.optimal_error p ~buckets:1)

let test_vopt_enough_buckets_zero () =
  let data = [| 5.0; 1.0; 9.0; 2.0 |] in
  let p = P.make data in
  Helpers.check_close "B>=n zero" 0.0 (V.optimal_error p ~buckets:4);
  Helpers.check_close "B>n zero" 0.0 (V.optimal_error p ~buckets:10);
  let h = V.build_prefix p ~buckets:10 in
  Alcotest.(check int) "capped buckets" 4 (H.bucket_count h)

let prop_vopt_matches_brute_force =
  Helpers.qcheck_case ~count:60 ~name:"DP equals exhaustive enumeration"
    QCheck2.Gen.(
      let* data = Helpers.gen_data ~min_len:1 ~max_len:10 ~vmax:20 () in
      let* b = int_range 1 4 in
      return (data, b))
    (fun (data, b) ->
      let p = P.make data in
      let dp = V.optimal_error p ~buckets:b in
      let brute = Helpers.brute_force_optimal_error data b in
      Helpers.close ~eps:1e-6 dp brute)

let prop_vopt_build_achieves_error =
  Helpers.qcheck_case ~name:"built histogram SSE equals optimal_error"
    QCheck2.Gen.(
      let* data = Helpers.gen_data ~min_len:1 ~max_len:40 () in
      let* b = int_range 1 6 in
      return (data, b))
    (fun (data, b) ->
      let p = P.make data in
      let h = V.build_prefix p ~buckets:b in
      Helpers.close ~eps:1e-6 (H.sse_against h p) (V.optimal_error p ~buckets:b))

(* The paper's second monotonicity lemma: HERROR[i, k] is non-decreasing
   in i for fixed k. *)
let prop_herror_monotone =
  Helpers.qcheck_case ~name:"HERROR[i,k] non-decreasing in i"
    QCheck2.Gen.(
      let* data = Helpers.gen_data ~min_len:2 ~max_len:40 () in
      let* b = int_range 1 5 in
      return (data, b))
    (fun (data, b) ->
      let row = V.herror_row (P.make data) ~buckets:b in
      let ok = ref true in
      for i = 1 to Array.length row - 2 do
        if row.(i) > row.(i + 1) +. 1e-6 then ok := false
      done;
      !ok)

let prop_more_buckets_never_worse =
  Helpers.qcheck_case ~name:"optimal error decreases with more buckets"
    (Helpers.gen_data ~min_len:2 ~max_len:40 ())
    (fun data ->
      let p = P.make data in
      let ok = ref true in
      let prev = ref infinity in
      for b = 1 to 6 do
        let e = V.optimal_error p ~buckets:b in
        if e > !prev +. 1e-6 then ok := false;
        prev := e
      done;
      !ok)

(* ----------------------------------------------------------- Heuristics *)

let prop_heuristics_valid_and_dominated =
  Helpers.qcheck_case ~name:"heuristics are valid and never beat the optimum"
    QCheck2.Gen.(
      let* data = Helpers.gen_data ~min_len:1 ~max_len:40 () in
      let* b = int_range 1 6 in
      return (data, b))
    (fun (data, b) ->
      let p = P.make data in
      let opt = V.optimal_error p ~buckets:b in
      let check h =
        H.bucket_count h <= b && H.sse_against h p >= opt -. 1e-6
      in
      check (Heur.equi_width p ~buckets:b)
      && check (Heur.max_diff p ~values:data ~buckets:b)
      && check (Heur.greedy_merge p ~buckets:b))

let test_equi_width_exact_counts () =
  let p = P.make (Array.init 10 Float.of_int) in
  let h = Heur.equi_width p ~buckets:5 in
  Alcotest.(check int) "buckets" 5 (H.bucket_count h);
  Array.iter (fun b -> Alcotest.(check int) "width 2" 2 (b.H.hi - b.H.lo + 1))
    (h : H.t).H.buckets

let test_max_diff_places_boundary_at_jump () =
  let data = [| 1.0; 1.0; 1.0; 50.0; 50.0; 50.0 |] in
  let h = Heur.max_diff (P.make data) ~values:data ~buckets:2 in
  let b = H.find_bucket h 1 in
  Alcotest.(check int) "cut at the jump" 3 b.H.hi;
  Helpers.check_close "zero error" 0.0 (H.sse_against h (P.make data))

let test_greedy_merge_step_data () =
  let data = [| 2.0; 2.0; 2.0; 9.0; 9.0; 9.0; 4.0; 4.0 |] in
  let p = P.make data in
  let h = Heur.greedy_merge p ~buckets:3 in
  Alcotest.(check int) "buckets" 3 (H.bucket_count h);
  Helpers.check_close "perfect on step data" 0.0 (H.sse_against h p)

let () =
  Alcotest.run "sh_histogram"
    [
      ( "histogram",
        [
          Alcotest.test_case "make validation" `Quick test_make_validation;
          Alcotest.test_case "of_boundaries" `Quick test_of_boundaries;
          Alcotest.test_case "find bucket" `Quick test_point_and_find;
          Alcotest.test_case "range sum overlap" `Quick test_range_sum_overlap;
          Alcotest.test_case "to_series" `Quick test_to_series;
          prop_range_sum_matches_series;
          prop_sse_against_matches_naive;
        ] );
      ( "vopt",
        [
          Alcotest.test_case "known split" `Quick test_vopt_known;
          Alcotest.test_case "single bucket" `Quick test_vopt_single_bucket;
          Alcotest.test_case "enough buckets" `Quick test_vopt_enough_buckets_zero;
          prop_vopt_matches_brute_force;
          prop_vopt_build_achieves_error;
          prop_herror_monotone;
          prop_more_buckets_never_worse;
        ] );
      ( "heuristics",
        [
          Alcotest.test_case "equi-width counts" `Quick test_equi_width_exact_counts;
          Alcotest.test_case "max-diff boundary" `Quick test_max_diff_places_boundary_at_jump;
          Alcotest.test_case "greedy merge step" `Quick test_greedy_merge_step_data;
          prop_heuristics_valid_and_dominated;
        ] );
    ]
