module Seg = Sh_timeseries.Segments
module Paa = Sh_timeseries.Paa
module Apca = Sh_timeseries.Apca
module Sim = Sh_timeseries.Similarity
module W = Sh_gen.Workloads
module Rng = Sh_util.Rng

let gen_series ?(min_len = 2) ?(max_len = 64) () =
  QCheck2.Gen.(
    let* len = int_range min_len max_len in
    let* ints = array_size (return len) (int_range (-100) 100) in
    return (Array.map Float.of_int ints))

(* --------------------------------------------------------------- Segments *)

let test_segments_validation () =
  Alcotest.check_raises "wrong end" (Invalid_argument "Segments.make: last segment must end at n")
    (fun () -> ignore (Seg.make ~n:4 [| { Seg.hi = 3; value = 0.0 } |]));
  Alcotest.check_raises "not increasing"
    (Invalid_argument "Segments.make: endpoints must strictly increase") (fun () ->
      ignore (Seg.make ~n:2 [| { Seg.hi = 2; value = 0.0 }; { Seg.hi = 2; value = 0.0 } |]));
  Alcotest.check_raises "no segments" (Invalid_argument "Segments.make: at least one segment required")
    (fun () -> ignore (Seg.make ~n:4 [||]))

let test_segments_to_series () =
  let s = Seg.make ~n:5 [| { Seg.hi = 2; value = 1.0 }; { Seg.hi = 5; value = 9.0 } |] in
  Alcotest.(check (array (float 1e-9))) "series" [| 1.0; 1.0; 9.0; 9.0; 9.0 |] (Seg.to_series s);
  Alcotest.(check int) "count" 2 (Seg.segment_count s)

let test_segments_of_histogram () =
  let h = Sh_histogram.Vopt.build [| 1.0; 1.0; 7.0; 7.0 |] ~buckets:2 in
  let s = Seg.of_histogram h in
  Alcotest.(check (array (float 1e-9))) "series" [| 1.0; 1.0; 7.0; 7.0 |] (Seg.to_series s)

let test_euclidean_known () =
  Helpers.check_close "3-4-5" 5.0 (Seg.euclidean [| 0.0; 0.0 |] [| 3.0; 4.0 |])

(* The central correctness property of the whole similarity study: the
   lower-bounding distance never exceeds the true distance, for every
   synopsis construction in the repository. *)
let prop_lower_bound_sound =
  Helpers.qcheck_case ~count:60 ~name:"LB(Q, approx(C)) <= D(Q, C) for all synopses"
    QCheck2.Gen.(
      let* series = gen_series ~min_len:2 ~max_len:48 () in
      let* query_ints = array_size (return (Array.length series)) (int_range (-100) 100) in
      let* m = int_range 1 8 in
      return (series, Array.map Float.of_int query_ints, m))
    (fun (series, query, m) ->
      let d = Seg.euclidean query series in
      let check build =
        let s = build series in
        Seg.lower_bound_distance ~query s <= d +. 1e-6
      in
      check (fun c -> Paa.build c ~segments:m)
      && check (fun c -> Apca.build c ~segments:m)
      && check (fun c -> Apca.build_optimal c ~segments:m)
      && check (fun c -> Seg.of_histogram (Sh_histogram.Vopt.build c ~buckets:m)))

let prop_lower_bound_zero_on_self =
  Helpers.qcheck_case ~name:"LB of a series against its own synopsis is 0"
    QCheck2.Gen.(
      let* series = gen_series () in
      let* m = int_range 1 6 in
      return (series, m))
    (fun (series, m) ->
      let s = Apca.build series ~segments:m in
      Seg.lower_bound_distance ~query:series s <= 1e-9)

let test_sse_of_approximation () =
  let data = [| 1.0; 3.0; 10.0; 10.0 |] in
  let s = Seg.of_means data ~boundaries:[| 2; 4 |] in
  (* segment means 2 and 10: SSE = 1 + 1 + 0 + 0 *)
  Helpers.check_close "sse" 2.0 (Seg.sse_of_approximation data s)

(* -------------------------------------------------------------- PAA/APCA *)

let test_paa_equal_segments () =
  let s = Paa.build (Array.init 8 Float.of_int) ~segments:4 in
  Alcotest.(check int) "4 segments" 4 (Seg.segment_count s);
  Alcotest.(check (array (float 1e-9)))
    "pair means" [| 0.5; 0.5; 2.5; 2.5; 4.5; 4.5; 6.5; 6.5 |]
    (Seg.to_series s)

let prop_apca_budget =
  Helpers.qcheck_case ~name:"APCA respects the segment budget"
    QCheck2.Gen.(
      let* series = gen_series () in
      let* m = int_range 1 10 in
      return (series, m))
    (fun (series, m) ->
      Seg.segment_count (Apca.build series ~segments:m) <= m
      && Seg.segment_count (Apca.build_optimal series ~segments:m) <= m)

let prop_optimal_beats_heuristic =
  Helpers.qcheck_case ~count:60 ~name:"V-optimal segmentation SSE <= APCA heuristic SSE"
    QCheck2.Gen.(
      let* series = gen_series ~min_len:4 ~max_len:64 () in
      let* m = int_range 1 8 in
      return (series, m))
    (fun (series, m) ->
      let heur = Seg.sse_of_approximation series (Apca.build series ~segments:m) in
      let opt = Seg.sse_of_approximation series (Apca.build_optimal series ~segments:m) in
      opt <= heur +. 1e-6)

let test_apca_step_function_exact () =
  let data = Array.concat [ Array.make 8 1.0; Array.make 8 9.0 ] in
  let s = Apca.build data ~segments:2 in
  Helpers.check_close "step recovered exactly" 0.0 (Seg.sse_of_approximation data s)

(* ------------------------------------------------------------ Similarity *)

let family () =
  let rng = Rng.create ~seed:77 in
  W.series_family rng ~count:30 ~len:64 ~shapes:5 ~noise:3.0

let make_collections () =
  let series = family () in
  let apca = Sim.make_collection ~name:"apca" ~synopsis:(fun s -> Apca.build s ~segments:6) series in
  let hist =
    Sim.make_collection ~name:"hist"
      ~synopsis:(fun s -> Seg.of_histogram (Sh_histogram.Vopt.build s ~buckets:6))
      series
  in
  (series, apca, hist)

let brute_force_range series query radius =
  let hits = ref [] in
  Array.iteri (fun i s -> if Seg.euclidean query s <= radius then hits := i :: !hits) series;
  List.rev !hits

let test_range_search_no_false_dismissals () =
  let series, apca, hist = make_collections () in
  let query = series.(0) in
  List.iter
    (fun radius ->
      let expected = brute_force_range series query radius in
      let got_a, stats_a = Sim.range_search apca ~query ~radius in
      let got_h, stats_h = Sim.range_search hist ~query ~radius in
      Alcotest.(check (list int)) "apca exact results" expected (List.sort compare got_a);
      Alcotest.(check (list int)) "hist exact results" expected (List.sort compare got_h);
      Alcotest.(check int) "apca accounting" stats_a.Sim.candidates
        (stats_a.Sim.false_positives + stats_a.Sim.true_matches);
      Alcotest.(check int) "hist accounting" stats_h.Sim.candidates
        (stats_h.Sim.false_positives + stats_h.Sim.true_matches))
    [ 10.0; 50.0; 150.0; 1000.0 ]

let test_knn_matches_brute_force () =
  let series, apca, hist = make_collections () in
  let query = series.(7) in
  let brute =
    let ds = Array.mapi (fun i s -> (i, Seg.euclidean query s)) series in
    Array.sort (fun (_, a) (_, b) -> compare a b) ds;
    Array.sub ds 0 5
  in
  let check (results, _) =
    List.iteri
      (fun j (i, d) ->
        let bi, bd = brute.(j) in
        Helpers.check_close "distance" bd d;
        Alcotest.(check int) "index" bi i)
      results
  in
  check (Sim.knn_search apca ~query ~k:5);
  check (Sim.knn_search hist ~query ~k:5)

let test_knn_self_is_nearest () =
  let series, apca, _ = make_collections () in
  let results, _ = Sim.knn_search apca ~query:series.(3) ~k:1 in
  match results with
  | [ (i, d) ] ->
    Alcotest.(check int) "self" 3 i;
    Helpers.check_close "zero distance" 0.0 d
  | _ -> Alcotest.fail "expected exactly one result"

let test_pruning_power_positive () =
  (* With tight radii most of the collection must be pruned by synopses. *)
  let series, apca, hist = make_collections () in
  let query = series.(0) in
  let _, sa = Sim.range_search apca ~query ~radius:10.0 in
  let _, sh = Sim.range_search hist ~query ~radius:10.0 in
  Alcotest.(check bool) "apca prunes" true (sa.Sim.pruning_power > 0.5);
  Alcotest.(check bool) "hist prunes" true (sh.Sim.pruning_power > 0.5)

let test_sliding_windows () =
  let data = Array.init 10 Float.of_int in
  let ws = Sim.sliding_windows data ~w:4 ~step:3 in
  Alcotest.(check int) "count" 3 (Array.length ws);
  let start, first = ws.(0) in
  Alcotest.(check int) "first start" 0 start;
  Alcotest.(check (array (float 1e-9))) "first window" [| 0.0; 1.0; 2.0; 3.0 |] first;
  let start2, _ = ws.(2) in
  Alcotest.(check int) "last start" 6 start2

let test_subsequence_collection () =
  let rng = Rng.create ~seed:5 in
  let data = Sh_gen.Source.take (W.random_walk rng ()) 200 in
  let coll, starts =
    Sim.subsequence_collection ~name:"sub" ~synopsis:(fun s -> Paa.build s ~segments:4) ~data
      ~w:32 ~step:8
  in
  Alcotest.(check int) "one synopsis per window" (Array.length starts)
    (Array.length coll.Sim.series);
  (* A query equal to an actual window must be found at distance 0. *)
  let query = Array.sub data 64 32 in
  let hits, _ = Sim.range_search coll ~query ~radius:1e-9 in
  Alcotest.(check bool) "window found" true
    (List.exists (fun i -> starts.(i) = 64) hits)

let test_knn_validation () =
  let _, apca, _ = make_collections () in
  Alcotest.check_raises "bad k" (Invalid_argument "Similarity.knn_search: k must be >= 1")
    (fun () -> ignore (Sim.knn_search apca ~query:(Array.make 64 0.0) ~k:0))

(* ---------------------------------------------------------------- Kdtree *)

module Kd = Sh_timeseries.Kdtree
module PaaIdx = Sh_timeseries.Paa_index

let gen_points =
  QCheck2.Gen.(
    let* n = int_range 1 120 in
    let* dim = int_range 1 5 in
    let* flat = array_size (return (n * dim)) (int_range (-50) 50) in
    return (Array.init n (fun i -> Array.init dim (fun d -> Float.of_int flat.((i * dim) + d)))))

let brute_nearest points q =
  let best = ref (-1) and best_d = ref infinity in
  Array.iteri
    (fun i p ->
      let d = Seg.euclidean q p in
      if d < !best_d then begin
        best_d := d;
        best := i
      end)
    points;
  (!best, !best_d)

let prop_kdtree_nearest_matches_brute =
  Helpers.qcheck_case ~count:60 ~name:"kd-tree nearest equals brute force" gen_points
    (fun points ->
      let tree = Kd.build points in
      let rng = Rng.create ~seed:3 in
      let dim = Array.length points.(0) in
      List.for_all
        (fun _ ->
          let q = Array.init dim (fun _ -> Rng.uniform rng ~lo:(-60.0) ~hi:60.0) in
          let _, d_tree = Kd.nearest tree q in
          let _, d_brute = brute_nearest points q in
          Helpers.close ~eps:1e-9 d_tree d_brute)
        [ (); (); () ])

let prop_kdtree_within_matches_brute =
  Helpers.qcheck_case ~count:60 ~name:"kd-tree range equals brute force" gen_points
    (fun points ->
      let tree = Kd.build points in
      let q = points.(0) in
      List.for_all
        (fun radius ->
          let got = Kd.within tree q ~radius in
          let expect =
            List.filter
              (fun i -> Seg.euclidean q points.(i) <= radius)
              (List.init (Array.length points) Fun.id)
          in
          got = expect)
        [ 0.0; 5.0; 25.0; 1000.0 ])

let prop_kdtree_knn_sorted_and_exact =
  Helpers.qcheck_case ~count:40 ~name:"kd-tree k-NN distances match brute force" gen_points
    (fun points ->
      let tree = Kd.build points in
      let q = Array.map (fun v -> v +. 0.5) points.(Array.length points - 1) in
      let k = min 5 (Array.length points) in
      let got = List.map snd (Kd.k_nearest tree q ~k) in
      let brute =
        let ds = Array.map (Seg.euclidean q) points in
        Array.sort compare ds;
        Array.to_list (Array.sub ds 0 k)
      in
      List.for_all2 (fun a b -> Helpers.close ~eps:1e-9 a b) got brute)

let test_kdtree_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Kdtree.build: empty point set") (fun () ->
      ignore (Kd.build [||]));
  Alcotest.check_raises "ragged" (Invalid_argument "Kdtree.build: ragged point set") (fun () ->
      ignore (Kd.build [| [| 1.0 |]; [| 1.0; 2.0 |] |]));
  let tree = Kd.build [| [| 0.0; 0.0 |] |] in
  Alcotest.check_raises "query dim" (Invalid_argument "Kdtree: query dimension mismatch")
    (fun () -> ignore (Kd.nearest tree [| 0.0 |]))

(* -------------------------------------------------------------- Paa_index *)

let test_paa_index_feature_lower_bound () =
  let rng = Rng.create ~seed:91 in
  let series = W.step_family rng ~count:30 ~len:64 ~shapes:6 ~steps:10 ~noise:4.0 in
  let idx = PaaIdx.build ~segments:8 series in
  (* feature distance lower-bounds true distance for every pair *)
  let f = Array.map (PaaIdx.features idx) series in
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b ->
          if i < j then
            Alcotest.(check bool) "LB in feature space" true
              (Seg.euclidean f.(i) f.(j) <= Seg.euclidean a b +. 1e-6))
        series)
    series

let test_paa_index_range_matches_linear () =
  let rng = Rng.create ~seed:92 in
  let series = W.step_family rng ~count:50 ~len:64 ~shapes:10 ~steps:8 ~noise:5.0 in
  let idx = PaaIdx.build ~segments:8 series in
  let query = series.(3) in
  List.iter
    (fun radius ->
      let got, stats = PaaIdx.range_search idx ~query ~radius in
      let expect = brute_force_range series query radius in
      Alcotest.(check (list int)) "indexed = brute force" expect got;
      Alcotest.(check bool) "accounting" true
        (stats.Sim.candidates >= stats.Sim.true_matches))
    [ 1.0; 40.0; 120.0; 1e6 ]

let test_paa_index_knn_matches_brute () =
  let rng = Rng.create ~seed:93 in
  let series = W.step_family rng ~count:60 ~len:64 ~shapes:12 ~steps:8 ~noise:5.0 in
  let idx = PaaIdx.build ~segments:8 series in
  let query = series.(10) in
  let got, stats = PaaIdx.knn_search idx ~query ~k:5 in
  let brute =
    let ds = Array.mapi (fun i s -> (i, Seg.euclidean query s)) series in
    Array.sort (fun (_, a) (_, b) -> compare a b) ds;
    Array.to_list (Array.sub ds 0 5)
  in
  List.iteri
    (fun j (i, d) ->
      let bi, bd = List.nth brute j in
      Helpers.check_close "distance" bd d;
      Alcotest.(check int) "index" bi i)
    got;
  Alcotest.(check bool) "some pruning happened" true (stats.Sim.candidates < 60)

let test_paa_index_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Paa_index.build: empty collection")
    (fun () -> ignore (PaaIdx.build ~segments:4 [||]));
  let idx = PaaIdx.build ~segments:4 [| Array.make 16 0.0 |] in
  Alcotest.check_raises "query len" (Invalid_argument "Paa_index.features: query length mismatch")
    (fun () -> ignore (PaaIdx.range_search idx ~query:(Array.make 8 0.0) ~radius:1.0))

let () =
  Alcotest.run "sh_timeseries"
    [
      ( "segments",
        [
          Alcotest.test_case "validation" `Quick test_segments_validation;
          Alcotest.test_case "to_series" `Quick test_segments_to_series;
          Alcotest.test_case "of_histogram" `Quick test_segments_of_histogram;
          Alcotest.test_case "euclidean" `Quick test_euclidean_known;
          Alcotest.test_case "sse" `Quick test_sse_of_approximation;
          prop_lower_bound_sound;
          prop_lower_bound_zero_on_self;
        ] );
      ( "paa_apca",
        [
          Alcotest.test_case "paa segments" `Quick test_paa_equal_segments;
          Alcotest.test_case "apca step exact" `Quick test_apca_step_function_exact;
          prop_apca_budget;
          prop_optimal_beats_heuristic;
        ] );
      ( "similarity",
        [
          Alcotest.test_case "range no false dismissals" `Quick test_range_search_no_false_dismissals;
          Alcotest.test_case "knn matches brute force" `Quick test_knn_matches_brute_force;
          Alcotest.test_case "knn self" `Quick test_knn_self_is_nearest;
          Alcotest.test_case "pruning power" `Quick test_pruning_power_positive;
          Alcotest.test_case "sliding windows" `Quick test_sliding_windows;
          Alcotest.test_case "subsequence collection" `Quick test_subsequence_collection;
          Alcotest.test_case "knn validation" `Quick test_knn_validation;
        ] );
      ( "kdtree",
        [
          Alcotest.test_case "validation" `Quick test_kdtree_validation;
          prop_kdtree_nearest_matches_brute;
          prop_kdtree_within_matches_brute;
          prop_kdtree_knn_sorted_and_exact;
        ] );
      ( "paa_index",
        [
          Alcotest.test_case "feature lower bound" `Quick test_paa_index_feature_lower_bound;
          Alcotest.test_case "range matches linear" `Quick test_paa_index_range_matches_linear;
          Alcotest.test_case "knn matches brute" `Quick test_paa_index_knn_matches_brute;
          Alcotest.test_case "validation" `Quick test_paa_index_validation;
        ] );
    ]
